module nbcommit

go 1.22
