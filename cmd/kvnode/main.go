// Command kvnode runs one site of a distributed key-value store over TCP:
// the commit engine (2PC, 3PC or Paxos Commit; central-site or
// decentralized) with a
// file-backed write-ahead log, a heartbeat failure detector, the lock-based
// store, and — optionally — a line-oriented client API through which this
// node coordinates distributed transactions.
//
//	kvnode -id 1 -listen :7101 -client :8101 \
//	       -peers "2=host:7102,3=host:7103" -wal /tmp/n1.wal -proto 3pc
//
// See internal/nodeapi for the client protocol. Kill a node mid-transaction
// to watch 2PC block and 3PC terminate; restart it with the same -wal to
// watch the recovery protocol resolve in-doubt transactions.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/kv"
	"nbcommit/internal/metrics"
	"nbcommit/internal/nodeapi"
	"nbcommit/internal/obs"
	"nbcommit/internal/remote"
	"nbcommit/internal/shard"
	"nbcommit/internal/trace"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

func main() {
	var (
		id         = flag.Int("id", 1, "site ID (unique, positive)")
		listen     = flag.String("listen", ":7101", "cluster listen address")
		clientAddr = flag.String("client", "", "client API listen address (empty: none)")
		peersFlag  = flag.String("peers", "", "peer sites: \"2=host:port,3=host:port\"")
		walPath    = flag.String("wal", "", "write-ahead log file (required)")
		protoFlag  = flag.String("proto", "3pc", "commit protocol: 2pc, 3pc, or paxos")
		paradigm   = flag.String("paradigm", "central", "central or decentralized")
		timeout    = flag.Duration("timeout", 500*time.Millisecond, "protocol timeout")
		hbEvery    = flag.Duration("hb", 150*time.Millisecond, "heartbeat interval")
		hbTimeout  = flag.Duration("hb-timeout", 600*time.Millisecond, "failure suspicion timeout")
		forget     = flag.Duration("forget-after", 30*time.Second, "auto-forget settled transactions after this grace period (0: keep forever)")
		compactEvy = flag.Duration("compact-every", 0, "rewrite the WAL online at this interval, dropping forgotten transactions (0: only at startup)")
		walFlush   = flag.Duration("wal-flush-interval", 0, "group-commit window; 0 flushes as soon as the disk is free")
		walNoSync  = flag.Bool("wal-no-sync", false, "skip fsync (throughput experiments only; commits are NOT durable)")
		shardFile  = flag.String("shardmap", "", "shard map file (empty: deterministic default map over the site list)")
		shardsPer  = flag.Int("shards-per-site", 4, "shards per site for the default map (ignored with -shardmap)")
		obsAddr    = flag.String("obs-addr", "", "observability HTTP listener serving /metrics, /healthz and /debug/trace (empty: none)")
		traceLimit = flag.Int("trace-events", 4096, "protocol trace ring size for /debug/trace (0: tracing off)")
		tpCodec    = flag.String("transport-codec", "binary", "wire codec for outbound cluster messages: binary or gob (inbound auto-detects)")
		tpNoCoal   = flag.Bool("transport-no-coalesce", false, "write queued messages one per syscall instead of coalescing batches")
		tpQueue    = flag.Int("transport-queue", 0, "per-peer outbound queue capacity; a full queue drops, crash-stop style (0: default)")
		gcEvery    = flag.Duration("gc-every", 5*time.Second, "version-chain GC interval; superseded versions below the stable timestamp and all snapshot pins are dropped (0: never)")
	)
	flag.Parse()
	if *walPath == "" {
		log.Fatal("kvnode: -wal is required")
	}
	kind, err := engine.ParseProtocol(*protoFlag)
	if err != nil {
		log.Fatalf("kvnode: %v", err)
	}
	if *paradigm != "central" && *paradigm != "decentralized" {
		log.Fatalf("kvnode: unknown paradigm %q", *paradigm)
	}
	if kind == engine.PaxosCommit && *paradigm == "decentralized" {
		log.Fatal("kvnode: Paxos Commit has no decentralized variant")
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatal(err)
	}

	// Observability: one registry collects WAL, transport and engine series;
	// the commit-path families are registered for every protocol kind so a
	// scrape always exposes the full schema (only the active kind gets
	// samples). Tracing uses a bounded ring, safe to leave on indefinitely.
	// Built before the endpoint so the transport can feed its batch-size
	// histogram from the writer path.
	reg := metrics.NewRegistry()
	reg.Help("transport_batch_msgs", "Messages per coalesced write (1 with coalescing off).")
	batchHist := reg.Histogram("transport_batch_msgs")

	var codec transport.Codec
	switch *tpCodec {
	case "binary":
		codec = transport.CodecBinary
	case "gob":
		codec = transport.CodecGob
	default:
		log.Fatalf("kvnode: unknown transport codec %q", *tpCodec)
	}
	ep, err := transport.ListenTCPOpts(*id, *listen, peers, transport.TCPOptions{
		Codec:      codec,
		NoCoalesce: *tpNoCoal,
		QueueSize:  *tpQueue,
		BatchSize:  func(n int) { batchHist.Observe(time.Duration(n)) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	log.Printf("kvnode %d: cluster on %s (%s, %s, %s codec)", *id, ep.Addr(), kind, *paradigm, codec)

	reg.Help("transport_dropped_total", "Messages dropped, by cause: backoff window, failed dial, broken write, inbox overflow, full send queue.")
	for _, c := range transport.DropCauses {
		c := c
		reg.CounterFunc("transport_dropped_total", func() float64 { return float64(ep.DroppedCause(c)) }, "cause", c.String())
	}
	reg.Help("transport_redials_total", "Outbound dial attempts (connection churn).")
	reg.CounterFunc("transport_redials_total", func() float64 { return float64(ep.Redials()) })
	reg.Help("transport_inbox_depth", "Inbound messages queued but not yet consumed.")
	reg.GaugeFunc("transport_inbox_depth", func() float64 { return float64(ep.InboxDepth()) })
	reg.Help("transport_send_queue_depth", "Outbound messages queued per peer, awaiting the writer.")
	for p := range peers {
		p := p
		reg.GaugeFunc("transport_send_queue_depth", func() float64 { return float64(ep.QueueDepth(p)) }, "peer", strconv.Itoa(p))
	}
	var (
		walBatchHist = reg.Histogram("wal_batch_records")
		walSyncHist  = reg.Histogram("wal_sync_latency_seconds")
		walBytes     = reg.Counter("wal_log_bytes_total")
		walCompacts  = reg.Counter("wal_compactions_total")
		walKept      = reg.Gauge("wal_compaction_kept_records")
		walDropped   = reg.Counter("wal_compaction_dropped_total")
	)
	reg.Help("wal_batch_records", "Records per group-commit batch.")
	reg.Help("wal_sync_latency_seconds", "Write+fsync duration per batch.")
	reg.Help("wal_log_bytes_total", "Bytes written to the log.")
	reg.Help("wal_compaction_kept_records", "Records kept by the most recent compaction.")
	reg.Help("wal_compaction_dropped_total", "Records dropped across all compactions.")
	walMetrics := wal.Metrics{
		BatchRecords: func(n int) { walBatchHist.Observe(time.Duration(n)) },
		SyncLatency:  func(d time.Duration) { walSyncHist.Observe(d) },
		BatchBytes:   func(n int) { walBytes.Add(int64(n)) },
		Compaction: func(kept, dropped int) {
			walCompacts.Inc()
			walKept.Set(int64(kept))
			walDropped.Add(int64(dropped))
		},
	}
	// Expose every protocol family so a scrape always sees the full schema;
	// the engine samples only the active kind's series.
	var engineMetrics *engine.Metrics
	for _, k := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		m := engine.NewMetrics(reg, k)
		if k == kind {
			engineMetrics = m
		}
	}
	var recorder *trace.Recorder
	if *traceLimit > 0 {
		recorder = trace.NewBounded(*traceLimit)
	}

	ids := []int{*id}
	for p := range peers {
		ids = append(ids, p)
	}
	sort.Ints(ids)

	// The shard map must be identical at every node: either the same map
	// file is distributed to all of them, or every node derives the default
	// map from the (shared) site list.
	var smap *shard.Map
	if *shardFile != "" {
		smap, err = shard.Load(*shardFile)
		if err != nil {
			log.Fatalf("kvnode: %v", err)
		}
	} else {
		smap = shard.Default(ids, *shardsPer)
	}
	log.Printf("kvnode %d: shard map v%d: %d shards over sites %v", *id, smap.Version, len(smap.Shards), smap.Sites())

	hb := failure.NewHeartbeat(*id, ids, *hbEvery, *hbTimeout, func(to int) {
		_ = ep.Send(transport.Message{To: to, Kind: failure.HeartbeatKind})
	})
	hb.Start()
	defer hb.Stop()

	// Compact the log before opening: recovery replays the whole file, so
	// garbage-collected transactions are dropped first. A missing file is
	// fine (first boot).
	if _, statErr := os.Stat(*walPath); statErr == nil {
		if kept, droppedRecs, cerr := wal.Compact(*walPath); cerr != nil {
			log.Fatalf("kvnode: compact %s: %v", *walPath, cerr)
		} else if droppedRecs > 0 {
			log.Printf("kvnode %d: compacted WAL: kept %d records, dropped %d", *id, kept, droppedRecs)
		}
	}
	logFile, err := wal.OpenFileLog(*walPath, wal.FileLogOptions{
		NoSync:        *walNoSync,
		FlushInterval: *walFlush,
		Metrics:       walMetrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer logFile.Close()
	if *compactEvy > 0 {
		go func() {
			for range time.Tick(*compactEvy) {
				if kept, dropped, err := logFile.Compact(); err != nil {
					log.Printf("kvnode %d: online compact: %v", *id, err)
				} else if dropped > 0 {
					log.Printf("kvnode %d: online compact: kept %d records, dropped %d", *id, kept, dropped)
				}
			}
		}()
	}

	store := kv.NewStore(kv.Options{LockTimeout: 250 * time.Millisecond})
	reg.Help("kv_mvcc_keys", "Keys with at least one committed version.")
	reg.GaugeFunc("kv_mvcc_keys", func() float64 { k, _ := store.VersionStats(); return float64(k) })
	reg.Help("kv_mvcc_versions", "Committed versions retained across all keys (GC trims below the stable timestamp).")
	reg.GaugeFunc("kv_mvcc_versions", func() float64 { _, v := store.VersionStats(); return float64(v) })
	if *gcEvery > 0 {
		go func() {
			for range time.Tick(*gcEvery) {
				store.GC()
			}
		}()
	}
	server := &remote.Server{
		Store: store, Send: ep.Send, Map: smap,
		Paradigm: *paradigm, CommitWait: 20 * *timeout,
	}
	client := remote.NewClient(ep.Send, *timeout)
	client.MapVersion = smap.Version

	// Recover always: on an empty WAL it is a no-op; after a crash it
	// replays committed effects and launches the recovery protocol.
	site, err := engine.Recover(engine.Config{
		ID:          *id,
		Endpoint:    ep,
		Log:         logFile,
		Resource:    dtx.StoreResource{Store: store},
		Detector:    hb,
		Protocol:    kind,
		Timeout:     *timeout,
		ForgetAfter: *forget,
		Trace:       recorder,
		Metrics:     engineMetrics,
		// StoreResource's redo image is the encoded write set: empty means
		// read-only at this site, so the read-only vote is sound.
		ReadOnlyVotes: true,
		Unhandled: func(m transport.Message) {
			switch m.Kind {
			case failure.HeartbeatKind:
				hb.Observe(m.From)
			case remote.KindOp:
				go server.Handle(m) // store ops may wait on locks
			case remote.KindReply:
				client.Deliver(m)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Stop()
	server.SetSite(site) // forwarded commits coordinate on this engine
	if doubt := site.InDoubt(); len(doubt) > 0 {
		log.Printf("kvnode %d: recovering %d in-doubt transaction(s): %v", *id, len(doubt), doubt)
	}

	if *obsAddr != "" {
		bound, err := obs.ListenAndServe(*obsAddr, &obs.Server{
			Registry: reg,
			Trace:    recorder,
			Health: func() map[string]any {
				keys, versions := store.VersionStats()
				return map[string]any{
					"site":          *id,
					"protocol":      kind.String(),
					"paradigm":      *paradigm,
					"wal":           *walPath,
					"shard_version": smap.Version,
					"in_doubt":      len(site.InDoubt()),
					"tracked_txns":  len(site.Transactions()),
					// MVCC read-path state: where snapshot reads land
					// (stable_ts), the oldest unresolved prepare holding it
					// back (watermark, 0 when none), and chain bulk.
					"stable_ts":     store.StableTS(),
					"watermark":     store.Watermark(),
					"mvcc_keys":     keys,
					"mvcc_versions": versions,
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("kvnode %d: observability on %s (/metrics /healthz /debug/trace)", *id, bound)
	}

	if *clientAddr == "" {
		select {} // participant only
	}
	api := &nodeapi.API{
		Self: *id, Site: site, Store: store,
		Client: client, Timeout: *timeout, Paradigm: *paradigm,
		Router: &shard.Router{Map: smap},
	}
	ln, err := net.Listen("tcp", *clientAddr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("kvnode %d: client API on %s", *id, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go api.Serve(conn)
	}
}

func parsePeers(s string) (map[int]string, error) {
	peers := map[int]string{}
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		kvp := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kvp) != 2 {
			return nil, fmt.Errorf("kvnode: bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kvp[0])
		if err != nil {
			return nil, fmt.Errorf("kvnode: bad peer id %q", kvp[0])
		}
		peers[id] = kvp[1]
	}
	return peers, nil
}
