package main

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freePorts reserves n distinct TCP ports by listening and closing.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	var (
		listeners []net.Listener
		ports     []int
	)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

type testClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialAPI(t *testing.T, addr string) *testClient {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return &testClient{conn: conn, r: bufio.NewReader(conn)}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("client API %s never came up", addr)
	return nil
}

func (c *testClient) send(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(reply)
}

// TestClusterEndToEnd builds the kvnode binary, runs a 3-node cluster over
// real TCP, commits transactions, kills a node, keeps committing on the
// survivors, restarts the dead node from its WAL, and reads the recovered
// data back.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kvnode")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	ports := freePorts(t, 4)
	clusterAddr := func(i int) string { return fmt.Sprintf("127.0.0.1:%d", ports[i-1]) }
	clientAddr := fmt.Sprintf("127.0.0.1:%d", ports[3])
	peersOf := func(self int) string {
		var parts []string
		for i := 1; i <= 3; i++ {
			if i != self {
				parts = append(parts, fmt.Sprintf("%d=%s", i, clusterAddr(i)))
			}
		}
		return strings.Join(parts, ",")
	}

	start := func(id int, withClient bool) *exec.Cmd {
		args := []string{
			"-id", fmt.Sprint(id),
			"-listen", clusterAddr(id),
			"-peers", peersOf(id),
			"-wal", filepath.Join(dir, fmt.Sprintf("n%d.wal", id)),
			"-timeout", "300ms",
		}
		if withClient {
			args = append(args, "-client", clientAddr)
		}
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	n1 := start(1, true)
	n2 := start(2, false)
	n3 := start(3, false)
	t.Cleanup(func() {
		for _, c := range []*exec.Cmd{n1, n2, n3} {
			if c != nil && c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	})

	cl := dialAPI(t, clientAddr)
	defer cl.conn.Close()

	// Transaction across all three nodes.
	if got := cl.send(t, "BEGIN"); !strings.HasPrefix(got, "OK") {
		t.Fatalf("BEGIN = %q", got)
	}
	for site := 1; site <= 3; site++ {
		if got := cl.send(t, fmt.Sprintf("PUT %d shared v%d", site, site)); got != "OK" {
			t.Fatalf("PUT site %d = %q", site, got)
		}
	}
	if got := cl.send(t, "COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}

	// Kill node 3; the survivors keep committing (cohort {1,2}).
	n3.Process.Kill()
	n3.Wait()
	n3 = nil
	cl.send(t, "BEGIN")
	if got := cl.send(t, "PUT 2 after-kill yes"); got != "OK" {
		t.Fatalf("PUT after kill = %q", got)
	}
	if got := cl.send(t, "COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT after kill = %q", got)
	}

	// Restart node 3 from its WAL; the first transaction's data must be
	// there (recovery redo).
	n3 = start(3, false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl.send(t, "BEGIN")
		got := cl.send(t, "GET 3 shared")
		cl.send(t, "ABORT")
		if got == "VAL v3" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 3 never recovered: GET = %q", got)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
