package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return string(body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never succeeded: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestObsEndpoints starts a single-node kvnode with -obs-addr, commits a
// transaction through the client API, and scrapes /metrics, /healthz and
// /debug/trace — the CI smoke test for the observability layer.
func TestObsEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kvnode")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	ports := freePorts(t, 3)
	clientAddr := fmt.Sprintf("127.0.0.1:%d", ports[1])
	obsAddr := fmt.Sprintf("127.0.0.1:%d", ports[2])
	cmd := exec.Command(bin,
		"-id", "1",
		"-listen", fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"-client", clientAddr,
		"-obs-addr", obsAddr,
		"-wal", filepath.Join(dir, "n1.wal"),
		"-timeout", "300ms",
		"-forget-after", "100ms",
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	cl := dialAPI(t, clientAddr)
	defer cl.conn.Close()
	for i := 0; i < 3; i++ {
		if got := cl.send(t, "BEGIN"); !strings.HasPrefix(got, "OK") {
			t.Fatalf("BEGIN = %q", got)
		}
		if got := cl.send(t, fmt.Sprintf("PUT 1 k%d v%d", i, i)); got != "OK" {
			t.Fatalf("PUT = %q", got)
		}
		if got := cl.send(t, "COMMIT"); got != "COMMITTED" {
			t.Fatalf("COMMIT = %q", got)
		}
	}

	// The votes phase is observed at decision time; DEC-ACK settlement may
	// lag a moment, so poll until the core series carry samples.
	var metricsBody string
	deadline := time.Now().Add(10 * time.Second)
	for {
		metricsBody = httpGet(t, "http://"+obsAddr+"/metrics")
		if strings.Contains(metricsBody,
			`engine_phase_latency_seconds_count{phase="votes",protocol="3PC"} 3`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed 3 vote rounds:\n%s", metricsBody)
		}
		time.Sleep(100 * time.Millisecond)
	}
	for _, want := range []string{
		// Per-phase commit latency for the active protocol, and the full
		// schema (both kinds) even though only 3PC has samples.
		`engine_phase_latency_seconds{phase="votes",protocol="3PC",quantile="0.5"}`,
		`engine_phase_latency_seconds{phase="log_force",protocol="3PC",quantile="0.5"}`,
		`engine_phase_latency_seconds{phase="votes",protocol="2PC",quantile="0.5"}`,
		`engine_commit_latency_seconds_count{outcome="committed",protocol="3PC"} 3`,
		`engine_resolutions_total{outcome="committed",protocol="3PC"} 3`,
		"engine_transactions_tracked{site=\"1\"}",
		// WAL series.
		"# TYPE wal_batch_records summary",
		"# TYPE wal_sync_latency_seconds summary",
		"wal_log_bytes_total",
		// Transport series: drops split by cause, plus the coalescing
		// histogram fed from the writer path.
		"# TYPE transport_dropped_total counter",
		`transport_dropped_total{cause="backoff"}`,
		`transport_dropped_total{cause="dial"}`,
		`transport_dropped_total{cause="write"}`,
		`transport_dropped_total{cause="inbox_overflow"}`,
		`transport_dropped_total{cause="queue_full"}`,
		"# TYPE transport_batch_msgs summary",
		"# TYPE transport_redials_total counter",
		"transport_inbox_depth",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics body:\n%s", metricsBody)
	}

	health := httpGet(t, "http://"+obsAddr+"/healthz")
	var got map[string]any
	if err := json.Unmarshal([]byte(health), &got); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, health)
	}
	if got["status"] != "ok" || got["protocol"] != "3PC" || got["site"] != float64(1) {
		t.Fatalf("/healthz = %v", got)
	}

	tr := httpGet(t, "http://"+obsAddr+"/debug/trace")
	if !strings.Contains(tr, "events retained") || !strings.Contains(tr, "tx=") {
		t.Fatalf("/debug/trace missing protocol events:\n%s", tr)
	}
}
