// Command kvctl talks to a kvnode's client API.
//
//	kvctl -addr localhost:8101 put 2 color blue     # site-addressed one-shot
//	kvctl -addr localhost:8101 get 2 color
//	kvctl -addr localhost:8101 putk color blue      # key-addressed: the node
//	kvctl -addr localhost:8101 getk color           #   routes via its shard map
//	kvctl -addr localhost:8101 tx "putk a 1" "putk b 2"
//	kvctl -addr localhost:8101 -i                    # interactive session
//
// One-shot mode wraps the operation in BEGIN ... COMMIT; tx mode runs every
// quoted command in a single transaction; interactive mode forwards stdin
// lines verbatim (BEGIN/GET/PUT/DEL/GETK/PUTK/DELK/COMMIT/ABORT).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "localhost:8101", "kvnode client API address")
	interactive := flag.Bool("i", false, "interactive session on stdin")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			log.Fatal(err)
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		return strings.TrimSpace(reply)
	}

	if *interactive {
		sc := bufio.NewScanner(os.Stdin)
		fmt.Println("connected; commands: BEGIN, GET s k, PUT s k v, DEL s k, GETK k, PUTK k v, DELK k, COMMIT, ABORT")
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			fmt.Println(send(sc.Text()))
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("kvctl: need a command (get/put/del/getk/putk/delk/tx) or -i")
	}
	switch strings.ToLower(args[0]) {
	case "tx":
		run(send, args[1:]...)
	case "get", "put", "del", "getk", "putk", "delk":
		run(send, strings.Join(args, " "))
	default:
		log.Fatalf("kvctl: unknown command %q", args[0])
	}
}

// run executes the given commands inside one transaction.
func run(send func(string) string, cmds ...string) {
	reply := send("BEGIN")
	if !strings.HasPrefix(reply, "OK") {
		log.Fatalf("BEGIN: %s", reply)
	}
	fmt.Println(reply)
	for _, c := range cmds {
		reply := send(c)
		fmt.Printf("%s -> %s\n", c, reply)
		if strings.HasPrefix(reply, "ERR") {
			fmt.Println(send("ABORT"))
			os.Exit(1)
		}
	}
	fmt.Println(send("COMMIT"))
}
