package main

// Read-mix benchmark: the same 3-node cluster as -mode throughput, but the
// workload is a read/write mix (-read-ratio) over a prepopulated keyspace
// with optional zipf skew (-zipf) and optional open-loop arrivals
// (-arrival-rate). Every (protocol, read-path) cell runs the identical
// workload twice:
//
//   - protocol: every read is a keyed single-shard transaction — Begin,
//     shared-lock GET, then the full commit protocol (WAL force, vote and
//     decision rounds), the pre-MVCC behavior;
//   - snapshot: every read is a read-only fast-path transaction — a pinned
//     stable snapshot read, no locks, no protocol messages, no WAL.
//
// The per-protocol summary reports the read-throughput speedup and the
// write-commit-rate delta the fast path buys (writes stop queueing behind
// read locks and protocol traffic).

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
	"nbcommit/internal/metrics"
)

const (
	readPathSnapshot = "snapshot"
	readPathProtocol = "protocol"
)

type readMixResult struct {
	Protocol    string  `json:"protocol"`
	ReadPath    string  `json:"read_path"` // "snapshot" or "protocol"
	Clients     int     `json:"clients"`
	ReadRatio   float64 `json:"read_ratio"`
	ZipfS       float64 `json:"zipf_s"`       // 0: uniform key choice
	ArrivalRate float64 `json:"arrival_rate"` // ops/s; 0: closed loop
	Keys        int     `json:"keys"`
	DurationS   float64 `json:"duration_s"`

	Reads       int64   `json:"reads"`
	ReadErrors  int64   `json:"read_errors"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	ReadP50Ms   float64 `json:"read_p50_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`

	Commits       int64   `json:"commits"`
	Aborts        int64   `json:"aborts"`
	Errors        int64   `json:"errors"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	WriteP50Ms    float64 `json:"write_p50_ms"`
	WriteP99Ms    float64 `json:"write_p99_ms"`
}

// readMixSummary compares the two read paths for one protocol.
type readMixSummary struct {
	// ReadSpeedup is snapshot reads/s over protocol-enlisted reads/s — the
	// acceptance bar for the fast path is >=5x at 64 clients, 90/10 mix.
	ReadSpeedup float64 `json:"read_speedup"`
	// CommitRateDelta is the write commits/s ratio (snapshot mode over
	// protocol mode): how much write throughput the fast path frees up.
	CommitRateDelta float64 `json:"commit_rate_delta"`
}

type readMixConfig struct {
	clients     int
	duration    time.Duration
	warmup      time.Duration
	forget      time.Duration
	shards      int
	base        string
	readRatio   float64
	zipfS       float64
	arrivalRate float64
	keys        int
}

// runReadMix executes the read-mix matrix (3 protocols x 2 read paths, group
// WAL) and returns the per-cell results plus the per-protocol comparison.
func runReadMix(cfg readMixConfig) ([]readMixResult, map[string]readMixSummary, error) {
	var results []readMixResult
	summary := map[string]readMixSummary{}
	for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		var perPath [2]*readMixResult
		for i, path := range []string{readPathProtocol, readPathSnapshot} {
			res, err := runReadMixScenario(proto, path, cfg)
			if err != nil {
				return nil, nil, fmt.Errorf("%s %s reads: %w", proto, path, err)
			}
			results = append(results, *res)
			perPath[i] = res
			fmt.Printf("%-5s %-9s reads %9.0f/s  p50 %7.3fms  p99 %7.3fms  |  writes %7.0f commits/s\n",
				res.Protocol, res.ReadPath, res.ReadsPerSec, res.ReadP50Ms, res.ReadP99Ms, res.CommitsPerSec)
		}
		s := readMixSummary{}
		if perPath[0].ReadsPerSec > 0 {
			s.ReadSpeedup = perPath[1].ReadsPerSec / perPath[0].ReadsPerSec
		}
		if perPath[0].CommitsPerSec > 0 {
			s.CommitRateDelta = perPath[1].CommitsPerSec / perPath[0].CommitsPerSec
		}
		summary[proto.String()] = s
		fmt.Printf("%-5s snapshot-vs-protocol reads: %.1fx read throughput, %.2fx write commit rate\n",
			proto, s.ReadSpeedup, s.CommitRateDelta)
	}
	return results, summary, nil
}

func runReadMixScenario(proto engine.ProtocolKind, path string, cfg readMixConfig) (*readMixResult, error) {
	dir, err := os.MkdirTemp(cfg.base, fmt.Sprintf("readmix-%s-%s-", proto, path))
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cluster, err := dtx.NewCluster(3, dtx.Options{
		Protocol:    proto,
		Timeout:     500 * time.Millisecond,
		LockTimeout: time.Second,
		Dir:         dir,
		SyncWAL:     true,
		ForgetAfter: cfg.forget,
		Shards:      cfg.shards,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	// Prepopulate the keyspace at each key's owner site, below any
	// transaction (the redo path stamps committed versions directly).
	keys := make([]string, cfg.keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%05d", i)
		owner := cluster.Router().Site(keys[i])
		cluster.Node(owner).Store.ApplyRedo([]kv.WriteOp{{Key: keys[i], Value: "v0"}})
	}

	var (
		readHist   metrics.Histogram
		writeHist  metrics.Histogram
		reads      atomic.Int64
		readErrs   atomic.Int64
		commits    atomic.Int64
		aborts     atomic.Int64
		errsN      atomic.Int64
		measuring  atomic.Bool
		stop       atomic.Bool
		inFlightWG sync.WaitGroup
	)

	// Version-chain GC runs throughout, as a kvnode would run it: the bench
	// doubles as a GC-under-load exercise (the CI smoke runs it under -race).
	gcDone := make(chan struct{})
	go func() {
		defer close(gcDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			for _, id := range cluster.IDs() {
				cluster.Node(id).Store.GC()
			}
		}
	}()

	doRead := func(key string) {
		start := time.Now()
		var err error
		if path == readPathSnapshot {
			ro := cluster.BeginReadOnly()
			_, err = ro.GetK(key)
			ro.Close()
		} else {
			t := cluster.BeginKeyed()
			if _, err = t.GetK(key); err != nil {
				_ = t.Abort()
			} else {
				var o engine.Outcome
				o, err = t.Commit(10 * time.Second)
				if err == nil && o != engine.OutcomeCommitted {
					err = fmt.Errorf("read transaction %v", o)
				}
			}
		}
		if !measuring.Load() {
			return
		}
		if err != nil {
			readErrs.Add(1)
			return
		}
		reads.Add(1)
		readHist.Observe(time.Since(start))
	}
	doWrite := func(key string, seq int) {
		t := cluster.BeginKeyed()
		start := time.Now()
		var o engine.Outcome
		err := t.PutK(key, fmt.Sprintf("v%d", seq))
		if err != nil {
			_ = t.Abort()
		} else {
			o, err = t.Commit(10 * time.Second)
		}
		if !measuring.Load() {
			return
		}
		switch {
		case err != nil || o == engine.OutcomePending:
			errsN.Add(1)
		case o == engine.OutcomeCommitted:
			commits.Add(1)
			writeHist.Observe(time.Since(start))
		default:
			aborts.Add(1)
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			var zipf *rand.Zipf
			if cfg.zipfS > 1 {
				zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(keys)-1))
			}
			pick := func() string {
				if zipf != nil {
					return keys[zipf.Uint64()]
				}
				return keys[rng.Intn(len(keys))]
			}
			// Open-loop mode: ops are launched on an exponential arrival
			// schedule regardless of completion, so queueing delay shows up
			// in the latency histograms instead of throttling the offered
			// load (closed-loop coordinated omission).
			perClientRate := cfg.arrivalRate / float64(cfg.clients)
			next := time.Now()
			for i := 0; !stop.Load(); i++ {
				isRead := rng.Float64() < cfg.readRatio
				var key string
				if isRead {
					key = pick()
				} else {
					key = keys[rng.Intn(len(keys))]
				}
				if perClientRate > 0 {
					next = next.Add(time.Duration(rng.ExpFloat64() / perClientRate * float64(time.Second)))
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					inFlightWG.Add(1)
					go func(i int) {
						defer inFlightWG.Done()
						if isRead {
							doRead(key)
						} else {
							doWrite(key, i)
						}
					}(i)
					continue
				}
				if isRead {
					doRead(key)
				} else {
					doWrite(key, i)
				}
			}
		}(c)
	}

	time.Sleep(cfg.warmup)
	measuring.Store(true)
	measureStart := time.Now()
	time.Sleep(cfg.duration)
	measuring.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	inFlightWG.Wait()
	<-gcDone

	return &readMixResult{
		Protocol:      proto.String(),
		ReadPath:      path,
		Clients:       cfg.clients,
		ReadRatio:     cfg.readRatio,
		ZipfS:         cfg.zipfS,
		ArrivalRate:   cfg.arrivalRate,
		Keys:          cfg.keys,
		DurationS:     elapsed.Seconds(),
		Reads:         reads.Load(),
		ReadErrors:    readErrs.Load(),
		ReadsPerSec:   float64(reads.Load()) / elapsed.Seconds(),
		ReadP50Ms:     ms2(readHist.Quantile(0.50)),
		ReadP99Ms:     ms2(readHist.Quantile(0.99)),
		Commits:       commits.Load(),
		Aborts:        aborts.Load(),
		Errors:        errsN.Load(),
		CommitsPerSec: float64(commits.Load()) / elapsed.Seconds(),
		WriteP50Ms:    ms2(writeHist.Quantile(0.50)),
		WriteP99Ms:    ms2(writeHist.Quantile(0.99)),
	}, nil
}
