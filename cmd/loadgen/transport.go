// Transport microbenchmark (-mode transport): raw message throughput and
// latency between two real TCP endpoints on loopback, swept over the wire
// codec (gob vs binary), coalescing (on vs off) and body size. Each message
// carries its send timestamp in TxID, so the receiver measures end-to-end
// latency — enqueue, coalesced write, wire, decode, inbox — and validates
// the body byte-for-byte as a consistency check. The headline number is the
// speedup of binary+coalescing over the gob per-message-write baseline,
// which is the pre-rewrite transport.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/metrics"
	"nbcommit/internal/transport"
)

type transportScenario struct {
	Codec      string  `json:"codec"`
	Coalesce   bool    `json:"coalesce"`
	BodyBytes  int     `json:"body_bytes"`
	DurationS  float64 `json:"duration_s"`
	Delivered  int64   `json:"delivered"`
	Dropped    int64   `json:"dropped"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// Writes and MeanBatch expose the coalescing itself: with it off,
	// writes==messages; with it on, one write carries a whole queue drain.
	Writes         int64   `json:"writes"`
	MeanBatch      float64 `json:"mean_batch"`
	ConsistencyErr int64   `json:"consistency_errors"`
}

type transportReport struct {
	Senders   int                 `json:"senders"`
	DurationS float64             `json:"duration_s"`
	Scenarios []transportScenario `json:"scenarios"`
	// Speedups maps body size to msgs/s of binary+coalescing over
	// gob+no-coalescing (the seed transport's exact write path).
	Speedups map[int]float64 `json:"speedup_binary_coalesce_vs_gob"`
}

// runTransport sweeps the codec × coalescing × body-size grid and writes the
// report. It fails (for smoke use in CI) if any scenario delivers nothing or
// corrupts a body.
func runTransport(bodies []int, senders int, duration, warmup time.Duration, outPath string) error {
	rep := transportReport{Senders: senders, DurationS: duration.Seconds()}
	for _, codec := range []transport.Codec{transport.CodecGob, transport.CodecBinary} {
		for _, coalesce := range []bool{false, true} {
			for _, n := range bodies {
				res, err := runTransportScenario(codec, coalesce, n, senders, duration, warmup)
				if err != nil {
					return fmt.Errorf("transport %s coalesce=%v body=%d: %w", codec, coalesce, n, err)
				}
				if res.Delivered == 0 {
					return fmt.Errorf("transport %s coalesce=%v body=%d: zero throughput", codec, coalesce, n)
				}
				if res.ConsistencyErr > 0 {
					return fmt.Errorf("transport %s coalesce=%v body=%d: %d corrupted bodies", codec, coalesce, n, res.ConsistencyErr)
				}
				rep.Scenarios = append(rep.Scenarios, *res)
				fmt.Printf("%-6s coalesce=%-5v %3dB %9.0f msgs/s  p50 %6.3fms  p99 %6.3fms  mean batch %5.1f  drops %d\n",
					res.Codec, res.Coalesce, res.BodyBytes, res.MsgsPerSec, res.P50Ms, res.P99Ms, res.MeanBatch, res.Dropped)
			}
		}
	}

	rep.Speedups = map[int]float64{}
	for _, n := range bodies {
		var base, best float64
		for _, s := range rep.Scenarios {
			if s.BodyBytes != n {
				continue
			}
			if s.Codec == string(transport.CodecGob) && !s.Coalesce {
				base = s.MsgsPerSec
			}
			if s.Codec == string(transport.CodecBinary) && s.Coalesce {
				best = s.MsgsPerSec
			}
		}
		if base > 0 {
			rep.Speedups[n] = best / base
			fmt.Printf("binary+coalesce vs gob baseline at %dB: %.2fx\n", n, rep.Speedups[n])
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func runTransportScenario(codec transport.Codec, coalesce bool, bodyLen, senders int, duration, warmup time.Duration) (*transportScenario, error) {
	recv, err := transport.ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	defer recv.Close()
	snd, err := transport.ListenTCPOpts(1, "127.0.0.1:0", map[int]string{2: recv.Addr()},
		transport.TCPOptions{Codec: codec, NoCoalesce: !coalesce})
	if err != nil {
		return nil, err
	}
	defer snd.Close()

	body := make([]byte, bodyLen)
	for i := range body {
		body[i] = byte(i*7 + 11)
	}

	var (
		lat       metrics.Histogram
		delivered atomic.Int64
		badBody   atomic.Int64
		measuring atomic.Bool
		stop      atomic.Bool
	)
	go func() {
		for m := range recv.Recv() {
			if m.Kind != "BENCH" || !measuring.Load() {
				continue
			}
			ok := len(m.Body) == bodyLen
			for i := 0; ok && i < len(m.Body); i++ {
				ok = m.Body[i] == byte(i*7+11)
			}
			if !ok {
				badBody.Add(1)
				continue
			}
			if ns, err := strconv.ParseInt(m.TxID, 10, 64); err == nil {
				lat.Observe(time.Since(time.Unix(0, ns)))
			}
			delivered.Add(1)
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Light backpressure: the queue absorbs bursts (that is what
				// the coalescer drains), but driving it to the brim turns the
				// benchmark into a drop counter. Back off at half full.
				if snd.QueueDepth(2) > transport.DefaultQueueSize/2 {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				m := transport.Message{
					To: 2, Kind: "BENCH",
					TxID: strconv.FormatInt(time.Now().UnixNano(), 10),
					Body: body,
				}
				if err := snd.Send(m); err != nil {
					return
				}
			}
		}()
	}

	time.Sleep(warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	writes, msgs := snd.BatchStats()
	res := &transportScenario{
		Codec:          string(codec),
		Coalesce:       coalesce,
		BodyBytes:      bodyLen,
		DurationS:      elapsed.Seconds(),
		Delivered:      delivered.Load(),
		Dropped:        snd.Dropped() + recv.Dropped(),
		MsgsPerSec:     float64(delivered.Load()) / elapsed.Seconds(),
		P50Ms:          ms2(lat.Quantile(0.50)),
		P99Ms:          ms2(lat.Quantile(0.99)),
		Writes:         writes,
		ConsistencyErr: badBody.Load(),
	}
	if writes > 0 {
		res.MeanBatch = float64(msgs) / float64(writes)
	}
	return res, nil
}
