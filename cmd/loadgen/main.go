// Command loadgen measures sustained commit throughput. It has two modes:
//
// -mode throughput (default): a closed loop of N concurrent client sessions
// drives distributed transactions through a 3-node in-process cluster whose
// sites run file-backed, fsync-enabled write-ahead logs, for 2PC, 3PC and
// Paxos Commit and with group commit on and off (off = one serialized
// write+fsync per record, the pre-group-commit baseline). Each scenario
// reports commits/sec, p50/p95/p99 commit latency, WAL batch statistics, and
// steady-state memory.
//
// -mode scaleout: a keyed (shard-routed) workload against clusters of
// increasing size, sweeping the fraction of cross-shard transactions, to
// show that commit cost follows the touched cohort, not the cluster (see
// scaleout.go).
//
// -mode transport: raw TCP transport throughput and latency over loopback,
// swept over wire codec (gob vs binary), message coalescing (on vs off) and
// body size (see transport.go).
//
// -mode chaos: the hostile-environment matrix — the curated WAN/partition/
// gray-failure scenario table (internal/dst.HostileScenarios) swept over
// seeds for 2PC, 3PC and Paxos Commit, reporting blocking probability, commit
// availability during and after faults, and cross-region tail latency in
// virtual time (see chaos.go).
//
// Either way the run is written as JSON so the bench trajectory can track it.
//
//	loadgen -clients 64 -duration 5s -out BENCH_commit_throughput.json
//	loadgen -mode scaleout -sites 2,4,8 -cross-shard 0,0.25,1 -out BENCH_shard_scaleout.json
//	loadgen -mode transport -bodies 1,8,64 -out BENCH_transport.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/metrics"
	"nbcommit/internal/wal"
)

type scenarioResult struct {
	Protocol      string  `json:"protocol"`
	WAL           string  `json:"wal"` // "group" or "fsync-per-record"
	Clients       int     `json:"clients"`
	DurationS     float64 `json:"duration_s"`
	Commits       int64   `json:"commits"`
	Aborts        int64   `json:"aborts"`
	Errors        int64   `json:"errors"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	WALBatches    int64   `json:"wal_batches"`
	WALMeanBatch  float64 `json:"wal_mean_batch"`
	WALMaxBatch   int64   `json:"wal_max_batch"`
	// WALLazyRatio is the fraction of flushed WAL records that were lazy
	// riders (begin/end/settlement records under the forced-record diet):
	// they rode a forced batch instead of requiring a sync of their own.
	WALLazyRatio float64 `json:"wal_lazy_ratio"`
	SyncP99Ms    float64 `json:"sync_p99_ms"`
	// ForcedPerCommit is the mean count of WAL records forced per
	// transaction at one site, by role and outcome, from the
	// engine_wal_forced_records_per_commit histograms. The presumed-abort
	// headline numbers: 2PC coordinator_commit 1, participant_commit 2,
	// coordinator_abort 0.
	ForcedPerCommit map[string]float64 `json:"forced_records_per_commit"`
	// Steady-state checks: transactions still tracked across all sites
	// after the auto-forget grace period, and heap growth over the
	// measured window (both must stay flat run over run).
	TrackedTxns   int     `json:"tracked_txns_after_settle"`
	HeapStartMB   float64 `json:"heap_start_mb"`
	HeapEndMB     float64 `json:"heap_end_mb"`
	ForgetAfterMs float64 `json:"forget_after_ms"`
	// Phases is the commit-path breakdown sourced from the engine's metrics
	// registry: votes (begin→full vote round), acks (3PC prepare round),
	// log_force (WAL record staged→durable), settle (decision→DEC-ACKs).
	Phases map[string]phaseStats `json:"phase_latency"`
}

type phaseStats struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

type report struct {
	Clients    int              `json:"clients"`
	DurationS  float64          `json:"duration_s"`
	Scenarios  []scenarioResult `json:"scenarios"`
	Speedup2PC   float64        `json:"speedup_2pc"` // group vs fsync-per-record
	Speedup3PC   float64        `json:"speedup_3pc"`
	SpeedupPaxos float64        `json:"speedup_paxos"`
	// ReadMix holds the read/write-mix cells (-read-ratio > 0): for each
	// protocol, the identical workload with protocol-enlisted reads and with
	// snapshot fast-path reads. ReadFastPath summarizes the comparison per
	// protocol.
	ReadMix      []readMixResult           `json:"read_mix,omitempty"`
	ReadFastPath map[string]readMixSummary `json:"read_fastpath,omitempty"`
}

func main() {
	var (
		mode       = flag.String("mode", "throughput", "throughput (3-node WAL bench), scaleout (keyed sharding bench), transport (TCP wire microbench) or chaos (hostile-environment 2PC-vs-3PC matrix)")
		clients    = flag.Int("clients", 64, "concurrent closed-loop client sessions (scaleout: per site)")
		duration   = flag.Duration("duration", 5*time.Second, "measured window per scenario")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "unmeasured warm-up per scenario")
		out        = flag.String("out", "", "JSON report path (default per mode)")
		dir        = flag.String("dir", "", "WAL directory (default: a temp dir; use a real disk to measure real fsyncs)")
		forget     = flag.Duration("forget-after", 250*time.Millisecond, "engine auto-forget grace period")
		shards     = flag.Int("shards", 0, "engine event-loop shards per site (0 = GOMAXPROCS)")
		bodiesFlag = flag.String("bodies", "1,8,64", "transport: comma-separated message body sizes in bytes")
		senders    = flag.Int("senders", 8, "transport: concurrent sender goroutines")
		sitesFlag  = flag.String("sites", "2,4,8", "scaleout: comma-separated cluster sizes")
		crossFlag  = flag.String("cross-shard", "0,0.25,1", "scaleout: comma-separated fractions of cross-shard transactions, each in [0,1]")
		protoFlag  = flag.String("proto", "3pc", "scaleout: commit protocol (2pc, 3pc, or paxos)")
		chaosSeeds = flag.Int("chaos-seeds", 25, "chaos: seeds per (scenario, protocol) cell")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile covering every scenario run")
		readRatio  = flag.Float64("read-ratio", 0, "throughput: fraction of operations that are reads (0 skips the read-mix matrix); each protocol runs the mix once with protocol-enlisted reads and once with snapshot fast-path reads")
		zipfS      = flag.Float64("zipf", 1.1, "throughput read-mix: zipf skew parameter for read keys (<=1 means uniform)")
		arrival    = flag.Float64("arrival-rate", 0, "throughput read-mix: total open-loop arrivals/s across all clients (0 = closed loop)")
		keyCount   = flag.Int("keys", 1000, "throughput read-mix: prepopulated keyspace size")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	base := *dir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "loadgen-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(base)
	}

	switch *mode {
	case "chaos":
		if *out == "" {
			*out = "BENCH_chaos.json"
		}
		if err := runChaos(*chaosSeeds, *out); err != nil {
			log.Fatal(err)
		}
		return
	case "transport":
		bodies, err := parseInts(*bodiesFlag)
		if err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			*out = "BENCH_transport.json"
		}
		if err := runTransport(bodies, *senders, *duration, *warmup, *out); err != nil {
			log.Fatal(err)
		}
		return
	case "scaleout":
		proto, err := engine.ParseProtocol(*protoFlag)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		sites, err := parseInts(*sitesFlag)
		if err != nil {
			log.Fatal(err)
		}
		ratios, err := parseFloats(*crossFlag)
		if err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			*out = "BENCH_shard_scaleout.json"
		}
		if err := runScaleout(proto, sites, ratios, *clients, *duration, *warmup, *forget, *shards, base, *out); err != nil {
			log.Fatal(err)
		}
		return
	case "throughput":
	default:
		log.Fatalf("loadgen: unknown mode %q", *mode)
	}
	if *out == "" {
		*out = "BENCH_commit_throughput.json"
	}

	rep := report{Clients: *clients, DurationS: duration.Seconds()}
	for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		for _, group := range []bool{false, true} {
			res, err := runScenario(proto, group, *clients, *duration, *warmup, *forget, *shards, base)
			if err != nil {
				log.Fatalf("loadgen: %s group=%v: %v", proto, group, err)
			}
			rep.Scenarios = append(rep.Scenarios, *res)
			fmt.Printf("%-5s %-17s %8.0f commits/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  mean batch %.1f\n",
				res.Protocol, res.WAL, res.CommitsPerSec, res.P50Ms, res.P95Ms, res.P99Ms, res.WALMeanBatch)
			if line := phaseLine(res.Phases); line != "" {
				fmt.Printf("     phases:%s\n", line)
			}
		}
	}
	rep.Speedup2PC = speedup(rep.Scenarios, "2PC")
	rep.Speedup3PC = speedup(rep.Scenarios, "3PC")
	rep.SpeedupPaxos = speedup(rep.Scenarios, "Paxos")
	fmt.Printf("group-commit speedup: 2PC %.2fx, 3PC %.2fx, Paxos %.2fx\n",
		rep.Speedup2PC, rep.Speedup3PC, rep.SpeedupPaxos)

	if *readRatio > 0 {
		mix, summary, err := runReadMix(readMixConfig{
			clients:     *clients,
			duration:    *duration,
			warmup:      *warmup,
			forget:      *forget,
			shards:      *shards,
			base:        base,
			readRatio:   *readRatio,
			zipfS:       *zipfS,
			arrivalRate: *arrival,
			keys:        *keyCount,
		})
		if err != nil {
			log.Fatalf("loadgen: read-mix: %v", err)
		}
		rep.ReadMix = mix
		rep.ReadFastPath = summary
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func speedup(scenarios []scenarioResult, proto string) float64 {
	var group, base float64
	for _, s := range scenarios {
		if s.Protocol != proto {
			continue
		}
		if s.WAL == "group" {
			group = s.CommitsPerSec
		} else {
			base = s.CommitsPerSec
		}
	}
	if base == 0 {
		return 0
	}
	return group / base
}

func runScenario(proto engine.ProtocolKind, group bool, clients int, duration, warmup, forget time.Duration, shards int, base string) (*scenarioResult, error) {
	walName := "fsync-per-record"
	if group {
		walName = "group"
	}
	dir, err := os.MkdirTemp(base, fmt.Sprintf("%s-%s-", proto, walName))
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var batches, batchRecs, maxBatch, lazyRecs atomic.Int64
	var syncHist metrics.Histogram
	reg := metrics.NewRegistry()
	cluster, err := dtx.NewCluster(3, dtx.Options{
		Protocol:      proto,
		Timeout:       500 * time.Millisecond,
		LockTimeout:   time.Second,
		Dir:           dir,
		SyncWAL:       true,
		NoGroupCommit: !group,
		ForgetAfter:   forget,
		Shards:        shards,
		Registry:      reg,
		WALMetrics: wal.Metrics{
			BatchRecords: func(n int) {
				batches.Add(1)
				batchRecs.Add(int64(n))
				for {
					old := maxBatch.Load()
					if int64(n) <= old || maxBatch.CompareAndSwap(old, int64(n)) {
						break
					}
				}
			},
			BatchLazyRecords: func(n int) { lazyRecs.Add(int64(n)) },
			SyncLatency:      func(d time.Duration) { syncHist.Observe(d) },
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	var (
		lat       metrics.Histogram
		commits   atomic.Int64
		aborts    atomic.Int64
		errsN     atomic.Int64
		measuring atomic.Bool
		stop      atomic.Bool
		heapStart atomic.Int64
	)
	var wg sync.WaitGroup
	firstErr := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			coord := 1 + c%3
			for i := 0; !stop.Load(); i++ {
				t, err := cluster.Begin(coord)
				if err != nil {
					firstErr <- err
					return
				}
				ok := true
				for site := 1; site <= 3; site++ {
					if err := t.Put(site, fmt.Sprintf("c%d-s%d", c, site), fmt.Sprintf("v%d", i)); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					_ = t.Abort()
					errsN.Add(1)
					continue
				}
				start := time.Now()
				o, err := t.Commit(10 * time.Second)
				elapsed := time.Since(start)
				if !measuring.Load() {
					continue
				}
				switch {
				case err != nil || o == engine.OutcomePending:
					errsN.Add(1)
				case o == engine.OutcomeCommitted:
					commits.Add(1)
					lat.Observe(elapsed)
				default:
					aborts.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(warmup)
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapStart.Store(int64(ms.HeapAlloc))
	measuring.Store(true)
	measureStart := time.Now()
	time.Sleep(duration)
	measuring.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-firstErr:
		return nil, err
	default:
	}

	// Let auto-forget settle, then check what the sites still remember.
	time.Sleep(3 * forget)
	tracked := 0
	for _, id := range cluster.IDs() {
		tracked += len(cluster.Node(id).Site.Transactions())
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)

	res := &scenarioResult{
		Protocol:      proto.String(),
		WAL:           walName,
		Clients:       clients,
		DurationS:     elapsed.Seconds(),
		Commits:       commits.Load(),
		Aborts:        aborts.Load(),
		Errors:        errsN.Load(),
		CommitsPerSec: float64(commits.Load()) / elapsed.Seconds(),
		MeanMs:        ms2(lat.Mean()),
		P50Ms:         ms2(lat.Quantile(0.50)),
		P95Ms:         ms2(lat.Quantile(0.95)),
		P99Ms:         ms2(lat.Quantile(0.99)),
		MaxMs:         ms2(lat.Max()),
		WALBatches:    batches.Load(),
		WALMaxBatch:   maxBatch.Load(),
		SyncP99Ms:     ms2(syncHist.Quantile(0.99)),
		TrackedTxns:   tracked,
		HeapStartMB:   float64(heapStart.Load()) / (1 << 20),
		HeapEndMB:     float64(ms.HeapAlloc) / (1 << 20),
		ForgetAfterMs: float64(forget) / float64(time.Millisecond),
	}
	if b := batches.Load(); b > 0 {
		res.WALMeanBatch = float64(batchRecs.Load()) / float64(b)
	}
	if r := batchRecs.Load(); r > 0 {
		res.WALLazyRatio = float64(lazyRecs.Load()) / float64(r)
	}

	// Per-phase commit-path breakdown and forced-record accounting, straight
	// from the engine's registry (the same histograms a kvnode exports on
	// /metrics). The forced histograms observe plain counts as Durations, so
	// the mean converts 1:1 back to records.
	em := engine.NewMetrics(reg, proto)
	res.ForcedPerCommit = map[string]float64{}
	for _, rc := range []struct {
		name             string
		coord, committed bool
	}{
		{"coordinator_commit", true, true},
		{"participant_commit", false, true},
		{"coordinator_abort", true, false},
		{"participant_abort", false, false},
	} {
		if h := em.ForcedPerCommit(rc.coord, rc.committed); h.Count() > 0 {
			res.ForcedPerCommit[rc.name] = float64(h.Mean())
		}
	}
	res.Phases = map[string]phaseStats{}
	for phase, h := range em.Phases() {
		if h.Count() == 0 {
			continue
		}
		res.Phases[phase] = phaseStats{
			Count:  int64(h.Count()),
			MeanMs: ms2(h.Mean()),
			P50Ms:  ms2(h.Quantile(0.50)),
			P99Ms:  ms2(h.Quantile(0.99)),
		}
	}
	return res, nil
}

// phaseLine formats the phase breakdown for the console report, in
// commit-path order.
func phaseLine(phases map[string]phaseStats) string {
	var b strings.Builder
	for _, name := range []string{"votes", "acks", "log_force", "settle"} {
		p, ok := phases[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %s p50 %.2fms p99 %.2fms", name, p.P50Ms, p.P99Ms)
	}
	return b.String()
}

func ms2(d time.Duration) float64 {
	return float64(d.Round(10*time.Microsecond)) / float64(time.Millisecond)
}
