// Scale-out mode: keyed (shard-routed) transactions against clusters of
// increasing size, sweeping the cross-shard ratio. Every transaction addresses
// keys, not sites; the cluster's shard map routes each key to its owner and
// the commit cohort is exactly the set of touched owners, so a single-shard
// transaction engages one site however large the cluster is. The run fails
// (nonzero exit) if any scenario commits nothing, routes a single-shard
// transaction to more than one participant, or leaves a store inconsistent
// with the committed history — which makes this both a benchmark and the
// sharded smoke test CI runs.

package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/metrics"
)

type shardScenario struct {
	Sites           int     `json:"sites"`
	CrossShardRatio float64 `json:"cross_shard_ratio"`
	// Clients is the total closed-loop client count for this scenario:
	// clients-per-site × sites (weak scaling — offered load grows with the
	// cluster, keeping per-site load constant).
	Clients       int     `json:"clients"`
	DurationS     float64 `json:"duration_s"`
	Commits       int64   `json:"commits"`
	Aborts        int64   `json:"aborts"`
	Errors        int64   `json:"errors"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// MeanParticipants is the average commit cohort size over committed
	// transactions: 1.0 at ratio 0, rising toward the cross-shard fan-out as
	// the ratio grows. This is the number the paper's cost analysis prices.
	MeanParticipants float64 `json:"mean_participants"`
	SingleShardTxns  int64   `json:"single_shard_txns"`
	CrossShardTxns   int64   `json:"cross_shard_txns"`
	// RoutingViolations counts single-shard transactions whose cohort was not
	// exactly one site. Must be zero.
	RoutingViolations int64 `json:"routing_violations"`
	// ConsistencyViolations counts keys whose final store value differs from
	// the last committed write. Must be zero.
	ConsistencyViolations int `json:"consistency_violations"`
}

type scaleoutReport struct {
	Mode           string          `json:"mode"`
	Protocol       string          `json:"protocol"`
	ClientsPerSite int             `json:"clients_per_site"`
	DurationS      float64         `json:"duration_s"`
	Scenarios      []shardScenario `json:"scenarios"`
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("loadgen: bad site count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("loadgen: bad cross-shard ratio %q (want [0,1])", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func runScaleout(proto engine.ProtocolKind, sites []int, ratios []float64, clients int, duration, warmup, forget time.Duration, shards int, base, out string) error {
	rep := scaleoutReport{
		Mode: "scaleout", Protocol: proto.String(),
		ClientsPerSite: clients, DurationS: duration.Seconds(),
	}
	failed := false
	for _, n := range sites {
		for _, ratio := range ratios {
			res, err := runShardScenario(proto, n, ratio, clients, duration, warmup, forget, shards, base)
			if err != nil {
				return fmt.Errorf("loadgen: %d sites ratio %.2f: %w", n, ratio, err)
			}
			rep.Scenarios = append(rep.Scenarios, *res)
			fmt.Printf("%d sites  cross %.2f  %8.0f commits/s  p50 %6.2fms  p99 %6.2fms  mean cohort %.2f  violations %d\n",
				n, ratio, res.CommitsPerSec, res.P50Ms, res.P99Ms, res.MeanParticipants, res.ConsistencyViolations)
			if res.Commits == 0 || res.ConsistencyViolations > 0 || res.RoutingViolations > 0 {
				failed = true
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if failed {
		return fmt.Errorf("loadgen: scaleout failed: a scenario had zero commits or violations (see %s)", out)
	}
	return nil
}

// clientState is one client's record of what it committed; written only by
// that client's goroutine, read after the run to audit the stores.
type clientState struct {
	expected map[string]string // key -> last committed value
	tainted  map[string]bool   // keys whose last outcome was unresolved
}

func runShardScenario(proto engine.ProtocolKind, n int, ratio float64, perSite int, duration, warmup, forget time.Duration, shards int, base string) (*shardScenario, error) {
	clients := perSite * n // weak scaling: offered load grows with the cluster
	dir, err := os.MkdirTemp(base, fmt.Sprintf("scaleout-%d-", n))
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cluster, err := dtx.NewCluster(n, dtx.Options{
		Protocol:    proto,
		Timeout:     500 * time.Millisecond,
		LockTimeout: time.Second,
		Dir:         dir,
		SyncWAL:     true,
		ForgetAfter: forget,
		Shards:      shards,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	router := cluster.Router()

	// Pre-bucket each client's (disjoint) keyspace by owner site so the
	// workload can pick a single-shard or cross-shard key set directly.
	const keysPerOwner = 8
	buckets := make([]map[int][]string, clients)
	for c := 0; c < clients; c++ {
		buckets[c] = map[int][]string{}
		filled := 0
		for i := 0; filled < n; i++ {
			k := fmt.Sprintf("c%d-k%d", c, i)
			owner := router.Site(k)
			if len(buckets[c][owner]) >= keysPerOwner {
				continue
			}
			buckets[c][owner] = append(buckets[c][owner], k)
			if len(buckets[c][owner]) == keysPerOwner {
				filled++
			}
		}
	}

	var (
		lat             metrics.Histogram
		commits         atomic.Int64
		aborts          atomic.Int64
		errsN           atomic.Int64
		singleTxns      atomic.Int64
		crossTxns       atomic.Int64
		routingViol     atomic.Int64
		participantsSum atomic.Int64
		measuring       atomic.Bool
		stop            atomic.Bool
	)
	states := make([]*clientState, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		st := &clientState{expected: map[string]string{}, tainted: map[string]bool{}}
		states[c] = st
		go func(c int, st *clientState) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
			owners := make([]int, 0, n)
			for o := range buckets[c] {
				owners = append(owners, o)
			}
			sort.Ints(owners)
			for i := 0; !stop.Load(); i++ {
				cross := n > 1 && rng.Float64() < ratio
				var keys []string
				if cross {
					// One key at each of two distinct owner sites.
					a := owners[rng.Intn(len(owners))]
					b := owners[rng.Intn(len(owners))]
					for b == a {
						b = owners[rng.Intn(len(owners))]
					}
					keys = []string{
						buckets[c][a][rng.Intn(keysPerOwner)],
						buckets[c][b][rng.Intn(keysPerOwner)],
					}
				} else {
					// Two keys from one owner's bucket.
					o := owners[rng.Intn(len(owners))]
					keys = []string{
						buckets[c][o][rng.Intn(keysPerOwner)],
						buckets[c][o][rng.Intn(keysPerOwner)],
					}
				}
				val := fmt.Sprintf("v%d-%d", c, i)
				tx := cluster.BeginKeyed()
				ok := true
				for _, k := range keys {
					if err := tx.PutK(k, val); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					_ = tx.Abort()
					errsN.Add(1)
					continue
				}
				cohort := len(tx.Participants())
				if !cross && cohort != 1 {
					routingViol.Add(1)
				}
				start := time.Now()
				o, err := tx.Commit(10 * time.Second)
				elapsed := time.Since(start)
				switch {
				case err != nil || o == engine.OutcomePending:
					// Unresolved: the writes may or may not land, so these
					// keys can no longer be audited.
					for _, k := range keys {
						st.tainted[k] = true
					}
				case o == engine.OutcomeCommitted:
					for _, k := range keys {
						st.expected[k] = val
						delete(st.tainted, k)
					}
				}
				if !measuring.Load() {
					continue
				}
				switch {
				case err != nil || o == engine.OutcomePending:
					errsN.Add(1)
				case o == engine.OutcomeCommitted:
					commits.Add(1)
					lat.Observe(elapsed)
					participantsSum.Add(int64(cohort))
					if cross {
						crossTxns.Add(1)
					} else {
						singleTxns.Add(1)
					}
				default:
					aborts.Add(1)
				}
			}
		}(c, st)
	}

	time.Sleep(warmup)
	measuring.Store(true)
	measureStart := time.Now()
	time.Sleep(duration)
	measuring.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()

	// Audit: every key's value at its owner store must be the last value a
	// client committed there. Client keyspaces are disjoint, so each client's
	// record is authoritative for its keys.
	violations := 0
	for _, st := range states {
		for k, want := range st.expected {
			if st.tainted[k] {
				continue
			}
			got, ok := cluster.Node(router.Site(k)).Store.Read(k)
			if !ok || got != want {
				violations++
			}
		}
	}

	res := &shardScenario{
		Sites:                 n,
		CrossShardRatio:       ratio,
		Clients:               clients,
		DurationS:             elapsed.Seconds(),
		Commits:               commits.Load(),
		Aborts:                aborts.Load(),
		Errors:                errsN.Load(),
		CommitsPerSec:         float64(commits.Load()) / elapsed.Seconds(),
		MeanMs:                ms2(lat.Mean()),
		P50Ms:                 ms2(lat.Quantile(0.50)),
		P95Ms:                 ms2(lat.Quantile(0.95)),
		P99Ms:                 ms2(lat.Quantile(0.99)),
		SingleShardTxns:       singleTxns.Load(),
		CrossShardTxns:        crossTxns.Load(),
		RoutingViolations:     routingViol.Load(),
		ConsistencyViolations: violations,
	}
	if c := commits.Load(); c > 0 {
		res.MeanParticipants = float64(participantsSum.Load()) / float64(c)
	}
	return res, nil
}
