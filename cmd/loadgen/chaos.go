package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"nbcommit/internal/dst"
	"nbcommit/internal/engine"
	"nbcommit/internal/metrics"
)

// chaosCell is one (scenario, protocol) cell of the hostility matrix,
// aggregated over all seeds. Latencies are virtual milliseconds — the
// simulated WAN clock, not the host's.
type chaosCell struct {
	Protocol            string  `json:"protocol"`
	Seeds               int     `json:"seeds"`
	Txns                int     `json:"txns"`
	Answered            int     `json:"answered"`
	Resolved            int     `json:"resolved"`
	Committed           int     `json:"committed"`
	BlockedSeeds        int     `json:"blocked_seeds"`
	BlockingProbability float64 `json:"blocking_probability"`
	// Availability: fraction of txns some alive site could answer a client
	// about. AvailabilityFault restricts to txns launched inside the fault
	// window and requires the answer before the fault ends (before heal).
	Availability      float64 `json:"availability"`
	AvailabilityFault float64 `json:"availability_during_fault"`
	P50Ms               float64 `json:"p50_ms"`
	P95Ms               float64 `json:"p95_ms"`
	P99Ms               float64 `json:"p99_ms"`
	MaxMs               float64 `json:"max_ms"`
	SplitSeeds          int     `json:"split_seeds"`
	// FirstBlockedSeed replays a blocking run:
	//   go run ./cmd/dst -hostile <scenario> -protocol <p> -seed <s> -trace
	FirstBlockedSeed int64 `json:"first_blocked_seed,omitempty"`
}

// chaosScenarioResult is one scenario row: every protocol's cell.
type chaosScenarioResult struct {
	Name  string               `json:"name"`
	Desc  string               `json:"desc"`
	Cells map[string]chaosCell `json:"cells"`
}

type chaosReport struct {
	Topology     string                `json:"topology"`
	SeedsPerCell int                   `json:"seeds_per_cell"`
	Scenarios    []chaosScenarioResult `json:"scenarios"`
	// BlockingGapScenarios lists scenarios where 2PC blocked on some seed
	// and 3PC never did — the paper's nonblocking claim, measured.
	BlockingGapScenarios []string `json:"blocking_gap_scenarios"`
	// PaxosCleanScenarios lists scenarios Paxos Commit survived with zero
	// blocked seeds AND zero split decisions — the cells where 2PC blocks or
	// 3PC risks a split while the replicated decision stays both safe and
	// available.
	PaxosCleanScenarios []string `json:"paxos_clean_scenarios"`
}

// runChaos sweeps the curated hostile scenario table for all three protocol
// families over seedsPerCell seeds each and writes the aggregated matrix. It
// exits nonzero if 2PC or Paxos ever splits a decision (only 3PC may diverge,
// under partitions — its known quorum-less defect), if any harness-level
// failure surfaces (for Paxos that includes a single termination-protocol
// message), if no scenario exhibits the 2PC-blocks-3PC-terminates gap, or if
// Paxos's fault-free WAN p50 is not below 3PC's (the two-message-delay fast
// path is the point of the ballot-0 optimization).
func runChaos(seedsPerCell int, out string) error {
	scenarios := dst.HostileScenarios()
	rep := chaosReport{SeedsPerCell: seedsPerCell}
	if len(scenarios) > 0 {
		rep.Topology = scenarios[0].Topo.Name
	}

	for _, sc := range scenarios {
		row := chaosScenarioResult{Name: sc.Name, Desc: sc.Desc, Cells: map[string]chaosCell{}}
		for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
			cell := chaosCell{Protocol: proto.String(), Seeds: seedsPerCell}
			var lat metrics.Histogram
			faultTxns, faultAnswered := 0, 0
			faultEndMs := float64(sc.FaultEnd) / float64(time.Millisecond)
			for seed := int64(1); seed <= int64(seedsPerCell); seed++ {
				r := dst.RunHostile(sc.Config(proto, seed))
				// Violations beyond the consistency splits are harness-level
				// failures (recovery errors etc.) and always fatal.
				if len(r.Violations) > r.SplitTxns {
					return fmt.Errorf("chaos %s/%s seed %d harness failure: %v",
						sc.Name, proto, seed, r.Violations[r.SplitTxns:])
				}
				if r.SplitTxns > 0 {
					cell.SplitSeeds++
					if proto != engine.ThreePhase {
						// Only 3PC may split (under partitions); 2PC blocks
						// instead, and Paxos decides by majority consensus.
						return fmt.Errorf("chaos %s/%s seed %d split a decision: %v (replay: go run ./cmd/dst -hostile %s -protocol %s -seed %d -trace)",
							sc.Name, proto, seed, r.Violations, sc.Name, protoArg(proto), seed)
					}
				}
				if len(r.BlockedSites) > 0 {
					if cell.BlockedSeeds == 0 {
						cell.FirstBlockedSeed = seed
					}
					cell.BlockedSeeds++
				}
				for _, t := range r.Txns {
					cell.Txns++
					if t.DuringFault {
						faultTxns++
					}
					if t.Resolved {
						cell.Resolved++
					}
					if t.Answered {
						cell.Answered++
						if t.Outcome == "committed" {
							cell.Committed++
						}
						if t.DuringFault && t.AnswerMs < faultEndMs {
							faultAnswered++
						}
						lat.Observe(time.Duration(t.LatencyMs * float64(time.Millisecond)))
					}
				}
			}
			cell.BlockingProbability = ratio(cell.BlockedSeeds, seedsPerCell)
			cell.Availability = ratio(cell.Answered, cell.Txns)
			cell.AvailabilityFault = ratio(faultAnswered, faultTxns)
			if faultTxns == 0 {
				cell.AvailabilityFault = cell.Availability
			}
			cell.P50Ms = ms2(lat.Quantile(0.50))
			cell.P95Ms = ms2(lat.Quantile(0.95))
			cell.P99Ms = ms2(lat.Quantile(0.99))
			cell.MaxMs = ms2(lat.Max())
			row.Cells[proto.String()] = cell
		}
		rep.Scenarios = append(rep.Scenarios, row)

		two, three, px := row.Cells["2PC"], row.Cells["3PC"], row.Cells["Paxos"]
		if two.BlockedSeeds > 0 && three.BlockedSeeds == 0 {
			rep.BlockingGapScenarios = append(rep.BlockingGapScenarios, sc.Name)
		}
		if px.BlockedSeeds == 0 && px.SplitSeeds == 0 {
			rep.PaxosCleanScenarios = append(rep.PaxosCleanScenarios, sc.Name)
		}
		fmt.Printf("%-22s 2PC block=%.2f avail=%.2f p50=%6.1f | 3PC split=%d avail=%.2f p50=%6.1f | Paxos split=%d avail=%.2f p50=%6.1f\n",
			sc.Name,
			two.BlockingProbability, two.AvailabilityFault, two.P50Ms,
			three.SplitSeeds, three.AvailabilityFault, three.P50Ms,
			px.SplitSeeds, px.AvailabilityFault, px.P50Ms)
	}

	if len(rep.BlockingGapScenarios) == 0 {
		return fmt.Errorf("chaos: no scenario exhibits the 2PC-blocks-while-3PC-terminates gap — the matrix lost its negative control")
	}
	fmt.Printf("blocking gap (2PC blocks, 3PC terminates): %v\n", rep.BlockingGapScenarios)
	fmt.Printf("paxos clean (no blocking, no splits): %v\n", rep.PaxosCleanScenarios)
	for _, sc := range rep.Scenarios {
		if sc.Name != "wan-baseline" {
			continue
		}
		three, px := sc.Cells["3PC"], sc.Cells["Paxos"]
		if px.P50Ms >= three.P50Ms {
			return fmt.Errorf("chaos: fault-free WAN p50 regression: Paxos %.1fms >= 3PC %.1fms — the ballot-0 two-delay fast path is gone",
				px.P50Ms, three.P50Ms)
		}
		fmt.Printf("fault-free WAN p50: Paxos %.1fms < 3PC %.1fms (2PC %.1fms)\n",
			px.P50Ms, three.P50Ms, sc.Cells["2PC"].P50Ms)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// protoArg names a protocol the way the CLI -protocol flags spell it.
func protoArg(k engine.ProtocolKind) string {
	switch k {
	case engine.ThreePhase:
		return "3pc"
	case engine.PaxosCommit:
		return "paxos"
	}
	return "2pc"
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
