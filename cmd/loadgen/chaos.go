package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"nbcommit/internal/dst"
	"nbcommit/internal/engine"
	"nbcommit/internal/metrics"
)

// chaosCell is one (scenario, protocol) cell of the hostility matrix,
// aggregated over all seeds. Latencies are virtual milliseconds — the
// simulated WAN clock, not the host's.
type chaosCell struct {
	Protocol            string  `json:"protocol"`
	Seeds               int     `json:"seeds"`
	Txns                int     `json:"txns"`
	Answered            int     `json:"answered"`
	Resolved            int     `json:"resolved"`
	Committed           int     `json:"committed"`
	BlockedSeeds        int     `json:"blocked_seeds"`
	BlockingProbability float64 `json:"blocking_probability"`
	// Availability: fraction of txns some alive site could answer a client
	// about. AvailabilityFault restricts to txns launched inside the fault
	// window and requires the answer before the fault ends (before heal).
	Availability      float64 `json:"availability"`
	AvailabilityFault float64 `json:"availability_during_fault"`
	P50Ms               float64 `json:"p50_ms"`
	P95Ms               float64 `json:"p95_ms"`
	P99Ms               float64 `json:"p99_ms"`
	MaxMs               float64 `json:"max_ms"`
	SplitSeeds          int     `json:"split_seeds"`
	// FirstBlockedSeed replays a blocking run:
	//   go run ./cmd/dst -hostile <scenario> -protocol <p> -seed <s> -trace
	FirstBlockedSeed int64 `json:"first_blocked_seed,omitempty"`
}

// chaosScenarioResult is one scenario row: every protocol's cell.
type chaosScenarioResult struct {
	Name  string               `json:"name"`
	Desc  string               `json:"desc"`
	Cells map[string]chaosCell `json:"cells"`
}

type chaosReport struct {
	Topology     string                `json:"topology"`
	SeedsPerCell int                   `json:"seeds_per_cell"`
	Scenarios    []chaosScenarioResult `json:"scenarios"`
	// BlockingGapScenarios lists scenarios where 2PC blocked on some seed
	// and 3PC never did — the paper's nonblocking claim, measured.
	BlockingGapScenarios []string `json:"blocking_gap_scenarios"`
}

// runChaos sweeps the curated hostile scenario table for both protocols over
// seedsPerCell seeds each and writes the aggregated matrix. It exits nonzero
// if 2PC ever splits a decision (2PC must block, never diverge), if any
// harness-level failure surfaces, or if no scenario exhibits the
// 2PC-blocks-3PC-terminates gap.
func runChaos(seedsPerCell int, out string) error {
	scenarios := dst.HostileScenarios()
	rep := chaosReport{SeedsPerCell: seedsPerCell}
	if len(scenarios) > 0 {
		rep.Topology = scenarios[0].Topo.Name
	}

	for _, sc := range scenarios {
		row := chaosScenarioResult{Name: sc.Name, Desc: sc.Desc, Cells: map[string]chaosCell{}}
		for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
			cell := chaosCell{Protocol: proto.String(), Seeds: seedsPerCell}
			var lat metrics.Histogram
			faultTxns, faultAnswered := 0, 0
			faultEndMs := float64(sc.FaultEnd) / float64(time.Millisecond)
			for seed := int64(1); seed <= int64(seedsPerCell); seed++ {
				r := dst.RunHostile(sc.Config(proto, seed))
				// Violations beyond the consistency splits are harness-level
				// failures (recovery errors etc.) and always fatal.
				if len(r.Violations) > r.SplitTxns {
					return fmt.Errorf("chaos %s/%s seed %d harness failure: %v",
						sc.Name, proto, seed, r.Violations[r.SplitTxns:])
				}
				if r.SplitTxns > 0 {
					cell.SplitSeeds++
					if proto == engine.TwoPhase {
						return fmt.Errorf("chaos %s/2PC seed %d split a decision: %v (replay: go run ./cmd/dst -hostile %s -protocol 2pc -seed %d -trace)",
							sc.Name, seed, r.Violations, sc.Name, seed)
					}
				}
				if len(r.BlockedSites) > 0 {
					if cell.BlockedSeeds == 0 {
						cell.FirstBlockedSeed = seed
					}
					cell.BlockedSeeds++
				}
				for _, t := range r.Txns {
					cell.Txns++
					if t.DuringFault {
						faultTxns++
					}
					if t.Resolved {
						cell.Resolved++
					}
					if t.Answered {
						cell.Answered++
						if t.Outcome == "committed" {
							cell.Committed++
						}
						if t.DuringFault && t.AnswerMs < faultEndMs {
							faultAnswered++
						}
						lat.Observe(time.Duration(t.LatencyMs * float64(time.Millisecond)))
					}
				}
			}
			cell.BlockingProbability = ratio(cell.BlockedSeeds, seedsPerCell)
			cell.Availability = ratio(cell.Answered, cell.Txns)
			cell.AvailabilityFault = ratio(faultAnswered, faultTxns)
			if faultTxns == 0 {
				cell.AvailabilityFault = cell.Availability
			}
			cell.P50Ms = ms2(lat.Quantile(0.50))
			cell.P95Ms = ms2(lat.Quantile(0.95))
			cell.P99Ms = ms2(lat.Quantile(0.99))
			cell.MaxMs = ms2(lat.Max())
			row.Cells[proto.String()] = cell
		}
		rep.Scenarios = append(rep.Scenarios, row)

		two, three := row.Cells["2PC"], row.Cells["3PC"]
		if two.BlockedSeeds > 0 && three.BlockedSeeds == 0 {
			rep.BlockingGapScenarios = append(rep.BlockingGapScenarios, sc.Name)
		}
		fmt.Printf("%-22s 2PC block=%.2f avail=%.2f/%.2f p99=%7.1fms | 3PC block=%.2f avail=%.2f/%.2f p99=%7.1fms\n",
			sc.Name,
			two.BlockingProbability, two.AvailabilityFault, two.Availability, two.P99Ms,
			three.BlockingProbability, three.AvailabilityFault, three.Availability, three.P99Ms)
	}

	if len(rep.BlockingGapScenarios) == 0 {
		return fmt.Errorf("chaos: no scenario exhibits the 2PC-blocks-while-3PC-terminates gap — the matrix lost its negative control")
	}
	fmt.Printf("blocking gap (2PC blocks, 3PC terminates): %v\n", rep.BlockingGapScenarios)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
