// Command commitlab inspects and analyzes commit protocols with the
// machinery of Skeen's "Nonblocking Commit Protocols":
//
//	commitlab show  -proto c2pc -n 3            print the site automata
//	commitlab graph -proto c2pc -n 2 [-dot]     reachable global state graph
//	commitlab check -proto d3pc -n 3            fundamental theorem report
//	commitlab synth -n 3                        2PC -> 3PC buffer synthesis
//
// Protocols: 1pc, c2pc, d2pc, c3pc, d3pc (central/decentralized), and the
// canonical skeletons canon2pc, canon3pc (show/lemma only).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nbcommit/internal/core"
	"nbcommit/internal/protocol"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	proto := fs.String("proto", "c2pc", "protocol: 1pc, c2pc, d2pc, c3pc, d3pc, canon2pc, canon3pc")
	file := fs.String("file", "", "compile the protocol from a DSL file instead of -proto")
	n := fs.Int("n", 3, "number of participating sites")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text")
	fs.Parse(os.Args[2:])
	if *file != "" {
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "commitlab:", rerr)
			os.Exit(1)
		}
		dslSource = string(src)
		*proto = "file"
	}

	var err error
	switch cmd {
	case "show":
		err = show(*proto, *n, *dot)
	case "graph":
		err = graph(*proto, *n, *dot)
	case "check":
		err = check(*proto, *n)
	case "synth":
		err = synth(*n)
	case "term":
		err = term(*proto, *n)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "commitlab:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: commitlab <show|graph|check|synth|term> [-proto P] [-n N] [-dot]")
}

// dslSource holds the contents of a -file protocol definition.
var dslSource string

func buildProtocol(name string, n int) (*protocol.Protocol, error) {
	switch name {
	case "file":
		return protocol.Compile(dslSource, n)
	case "1pc":
		return protocol.OnePC(n), nil
	case "c2pc":
		return protocol.CentralTwoPC(n), nil
	case "d2pc":
		return protocol.DecentralizedTwoPC(n), nil
	case "c3pc":
		return protocol.CentralThreePC(n), nil
	case "d3pc":
		return protocol.DecentralizedThreePC(n), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func canonical(name string) *protocol.Automaton {
	switch name {
	case "canon2pc":
		return protocol.CanonicalTwoPC()
	case "canon3pc":
		return protocol.CanonicalThreePC()
	default:
		return nil
	}
}

func show(name string, n int, dot bool) error {
	if a := canonical(name); a != nil {
		if dot {
			return core.WriteAutomatonDOT(os.Stdout, a)
		}
		printAutomaton(a)
		viol := core.CheckLemma(a)
		if len(viol) == 0 {
			fmt.Println("lemma: satisfied (nonblocking under single-transition synchrony)")
		} else {
			fmt.Println("lemma violations:")
			for _, v := range viol {
				fmt.Println("  " + v.String())
			}
		}
		return nil
	}
	p, err := buildProtocol(name, n)
	if err != nil {
		return err
	}
	if err := protocol.Validate(p); err != nil {
		return err
	}
	if dot {
		for _, a := range p.Sites {
			if err := core.WriteAutomatonDOT(os.Stdout, a); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Println(p)
	phases, err := protocol.Phases(p)
	if err != nil {
		return err
	}
	fmt.Printf("phases: %d\n", phases)
	if err := protocol.CheckUnilateralAbort(p); err != nil {
		fmt.Printf("unilateral abort: NOT possible (%v)\n", err)
	} else {
		fmt.Println("unilateral abort: possible at every server")
	}
	seen := map[string]bool{}
	for _, a := range p.Sites {
		if seen[a.Name] {
			continue
		}
		seen[a.Name] = true
		printAutomaton(a)
	}
	return nil
}

func printAutomaton(a *protocol.Automaton) {
	fmt.Printf("\nsite %d (%s), initial=%s\n", a.Site, a.Name, a.Initial)
	for _, s := range a.StateIDs() {
		fmt.Printf("  state %-3s %s\n", s, a.States[s])
	}
	for _, t := range a.Transitions {
		fmt.Printf("  %s\n", t)
	}
}

func graph(name string, n int, dot bool) error {
	p, err := buildProtocol(name, n)
	if err != nil {
		return err
	}
	g, err := core.Build(p, core.BuildOptions{})
	if err != nil {
		return err
	}
	if dot {
		return core.WriteGraphDOT(os.Stdout, g)
	}
	s := g.Stats()
	fmt.Printf("%s reachable state graph\n", p.Name)
	fmt.Printf("  global states: %d\n  edges:         %d\n", s.States, s.Edges)
	fmt.Printf("  final:         %d (commit %d / abort %d)\n", s.FinalStates, s.CommitFinal, s.AbortFinal)
	fmt.Printf("  deadlocked:    %d\n  inconsistent:  %d\n", s.Deadlocked, s.Inconsistent)
	return nil
}

func check(name string, n int) error {
	p, err := buildProtocol(name, n)
	if err != nil {
		return err
	}
	g, err := core.Build(p, core.BuildOptions{})
	if err != nil {
		return err
	}
	r := core.CheckTheorem(g)
	fmt.Println(r)
	fmt.Printf("committable states: %s\n", core.CommittableSummary(r.Analysis))
	good := core.CheckResilience(g)
	if len(good) == p.N() {
		fmt.Println("corollary: every site obeys the theorem — nonblocking while any one site survives")
	} else {
		ids := make([]string, len(good))
		for i, s := range good {
			ids[i] = fmt.Sprintf("%d", int(s))
		}
		fmt.Printf("corollary: theorem-obeying sites: {%s}\n", strings.Join(ids, ","))
	}
	ok, counter, err := core.SynchronousWithinOne(p, core.BuildOptions{})
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("synchronous within one state transition: yes")
	} else {
		fmt.Printf("synchronous within one state transition: NO (%s)\n", counter)
	}
	return nil
}

func synth(n int) error {
	p2 := protocol.CentralTwoPC(n)
	fmt.Println(core.CheckTheorem(mustGraph(p2)))
	p3, err := core.SynthesizeCentralBuffer(p2)
	if err != nil {
		return err
	}
	fmt.Println(core.CheckTheorem(mustGraph(p3)))
	ref := protocol.CentralThreePC(n)
	for i := range p3.Sites {
		if !core.StructurallyEquivalent(p3.Sites[i], ref.Sites[i]) {
			return fmt.Errorf("site %d: synthesized skeleton differs from the paper's 3PC", i+1)
		}
	}
	fmt.Println("synthesized protocol is structurally the central-site 3PC of the paper")
	return nil
}

// term model-checks the backup-coordinator decision rule over every
// reachable global state and crash subset.
func term(name string, n int) error {
	p, err := buildProtocol(name, n)
	if err != nil {
		return err
	}
	g, err := core.Build(p, core.BuildOptions{})
	if err != nil {
		return err
	}
	viol := core.CheckTermination(g)
	if len(viol) == 0 {
		fmt.Printf("%s: termination decision rule SAFE over all %d reachable states and every crash subset\n",
			p.Name, len(g.Nodes))
		return nil
	}
	fmt.Printf("%s: %d termination counterexamples\n", p.Name, len(viol))
	max := len(viol)
	if max > 10 {
		max = 10
	}
	for _, v := range viol[:max] {
		fmt.Println("  " + v.String())
		if steps, perr := g.PathTo(v.State); perr == nil {
			fmt.Println("    witness: " + core.FormatPath(steps))
		}
	}
	if len(viol) > max {
		fmt.Printf("  ... and %d more\n", len(viol)-max)
	}
	return nil
}

func mustGraph(p *protocol.Protocol) *core.Graph {
	g, err := core.Build(p, core.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}
