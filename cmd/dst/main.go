// Command dst drives the deterministic simulation explorer from the command
// line: it exhaustively enumerates single-crash-point schedules and sweeps
// seeded random failure schedules over the real commit engine, checking the
// paper's consistency and nonblocking theorems on every run. Any violation
// prints a reproducer invocation and exits nonzero.
//
// Usage:
//
//	go run ./cmd/dst                      # enumerate + 500 random seeds, 2PC, 3PC and Paxos
//	go run ./cmd/dst -protocol paxos -seeds 5000
//	go run ./cmd/dst -protocol 3pc -seed 113 -trace   # replay one schedule
//	go run ./cmd/dst -regress                         # replay the pinned-bug seeds
//	go run ./cmd/dst -hostile coord-crash-prepared -protocol 2pc -seed 4 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"nbcommit/internal/dst"
	"nbcommit/internal/engine"
)

func main() {
	var (
		protocol = flag.String("protocol", "all", "protocol to explore: 2pc, 3pc, paxos, both (2pc+3pc), or all")
		sites    = flag.Int("sites", 3, "cohort size")
		seeds    = flag.Int("seeds", 500, "number of random schedules per protocol")
		seed     = flag.Int64("seed", -1, "replay a single random schedule instead of sweeping")
		enum     = flag.Bool("enum", true, "run the exhaustive single-crash-point enumeration")
		trace    = flag.Bool("trace", false, "print the event trace of every failing (or -seed) run")
		hostile  = flag.String("hostile", "", "replay one hostile scenario by name (see internal/dst.HostileScenarios)")
		regress  = flag.Bool("regress", false, "replay the pinned engine-bug regression seeds and exit")
	)
	flag.Parse()

	var kinds []engine.ProtocolKind
	switch *protocol {
	case "both":
		kinds = []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase}
	case "all":
		kinds = []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit}
	default:
		kind, err := engine.ParseProtocol(*protocol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dst: %v (or: both, all)\n", err)
			os.Exit(2)
		}
		kinds = []engine.ProtocolKind{kind}
	}

	if *regress {
		os.Exit(runRegress(*trace))
	}
	if *hostile != "" {
		os.Exit(runHostileReplay(*hostile, kinds, *seed, *trace))
	}

	failed := false
	for _, kind := range kinds {
		cfg := dst.Config{Protocol: kind, Sites: *sites}

		if *seed >= 0 {
			r := dst.RunRandom(cfg, *seed)
			printReport(r, *trace || len(r.Violations) > 0)
			failed = failed || len(r.Violations) > 0
			continue
		}

		if *enum {
			reports := dst.ExploreCrashPoints(cfg)
			blocked, bad := 0, 0
			for _, r := range reports {
				if r.Blocked {
					blocked++
				}
				if len(r.Violations) > 0 {
					bad++
					printReport(r, *trace)
					failed = true
				}
			}
			fmt.Printf("%s: enumerated %d single-crash schedules: %d blocking, %d violating\n",
				kind, len(reports), blocked, bad)
			if kind == engine.TwoPhase && blocked == 0 {
				fmt.Printf("%s: NEGATIVE CONTROL FAILED: no enumerated schedule blocks 2PC\n", kind)
				failed = true
			}
		}

		blocked, bad := 0, 0
		for s := int64(1); s <= int64(*seeds); s++ {
			r := dst.RunRandom(cfg, s)
			if r.Blocked {
				blocked++
			}
			if len(r.Violations) > 0 {
				bad++
				printReport(r, *trace)
				fmt.Printf("  replay: go run ./cmd/dst -protocol %s -sites %d -seed %d -trace\n",
					protoFlag(kind), *sites, s)
				failed = true
			}
		}
		fmt.Printf("%s: swept %d random schedules: %d blocking, %d violating\n",
			kind, *seeds, blocked, bad)
	}

	if failed {
		os.Exit(1)
	}
}

// runRegress replays every pinned engine-bug seed (internal/dst
// RegressionScenarios); any violation means a previously fixed bug regressed.
func runRegress(trace bool) int {
	code := 0
	for _, rs := range dst.RegressionScenarios() {
		for _, r := range dst.RunRegression(rs) {
			status := "ok"
			if len(r.Violations) > 0 {
				status = "REGRESSED"
				code = 1
			}
			fmt.Printf("%-28s %-6s %-48s %s\n", rs.Name, rs.Protocol, r.Scenario, status)
			if len(r.Violations) > 0 {
				fmt.Printf("  bug: %s\n", rs.Bug)
				printReport(r, trace)
			}
		}
	}
	return code
}

// runHostileReplay replays one curated hostile scenario for one seed,
// printing the per-transaction measurements (and the full trace with -trace).
func runHostileReplay(name string, kinds []engine.ProtocolKind, seed int64, trace bool) int {
	sc, ok := dst.HostileScenarioByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dst: unknown hostile scenario %q; available:\n", name)
		for _, s := range dst.HostileScenarios() {
			fmt.Fprintf(os.Stderr, "  %-22s %s\n", s.Name, s.Desc)
		}
		return 2
	}
	if seed < 0 {
		seed = 1
	}
	code := 0
	for _, kind := range kinds {
		r := dst.RunHostile(sc.Config(kind, seed))
		printReport(r.Report, trace)
		for _, txn := range r.Txns {
			state := "RESOLVED"
			switch {
			case txn.Blocked && !txn.Resolved:
				state = "BLOCKED"
			case !txn.Resolved:
				state = "unresolved"
			}
			fmt.Printf("  %-4s coord=%d launched=%7.1fms answer=%7.1fms resolved=%7.1fms outcome=%-9s %s\n",
				txn.ID, txn.Coord, txn.LaunchedMs, txn.AnswerMs, txn.ResolvedMs, txn.Outcome, state)
		}
		if len(r.BlockedSites) > 0 {
			fmt.Printf("  blocked sites: %v\n", r.BlockedSites)
		}
		if r.SplitTxns > 0 {
			fmt.Printf("  split decisions: %d\n", r.SplitTxns)
		}
		if len(r.Violations) > r.SplitTxns {
			code = 1
		}
	}
	return code
}

func printReport(r dst.Report, withTrace bool) {
	fmt.Printf("%s: %s (%d steps, blocked=%v, wal=%s)\n",
		r.Protocol, r.Scenario, r.Steps, r.Blocked, r.WALDigest)
	for _, v := range r.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	if withTrace {
		for i, line := range r.Trace {
			fmt.Printf("  %4d %s\n", i, line)
		}
	}
}

func protoFlag(k engine.ProtocolKind) string {
	switch k {
	case engine.ThreePhase:
		return "3pc"
	case engine.PaxosCommit:
		return "paxos"
	}
	return "2pc"
}
