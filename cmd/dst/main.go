// Command dst drives the deterministic simulation explorer from the command
// line: it exhaustively enumerates single-crash-point schedules and sweeps
// seeded random failure schedules over the real commit engine, checking the
// paper's consistency and nonblocking theorems on every run. Any violation
// prints a reproducer invocation and exits nonzero.
//
// Usage:
//
//	go run ./cmd/dst                      # enumerate + 500 random seeds, 2PC and 3PC
//	go run ./cmd/dst -protocol 3pc -seeds 5000
//	go run ./cmd/dst -protocol 3pc -seed 113 -trace   # replay one schedule
package main

import (
	"flag"
	"fmt"
	"os"

	"nbcommit/internal/dst"
	"nbcommit/internal/engine"
)

func main() {
	var (
		protocol = flag.String("protocol", "both", "protocol to explore: 2pc, 3pc, or both")
		sites    = flag.Int("sites", 3, "cohort size")
		seeds    = flag.Int("seeds", 500, "number of random schedules per protocol")
		seed     = flag.Int64("seed", -1, "replay a single random schedule instead of sweeping")
		enum     = flag.Bool("enum", true, "run the exhaustive single-crash-point enumeration")
		trace    = flag.Bool("trace", false, "print the event trace of every failing (or -seed) run")
	)
	flag.Parse()

	var kinds []engine.ProtocolKind
	switch *protocol {
	case "2pc":
		kinds = []engine.ProtocolKind{engine.TwoPhase}
	case "3pc":
		kinds = []engine.ProtocolKind{engine.ThreePhase}
	case "both":
		kinds = []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase}
	default:
		fmt.Fprintf(os.Stderr, "dst: unknown -protocol %q (want 2pc, 3pc, or both)\n", *protocol)
		os.Exit(2)
	}

	failed := false
	for _, kind := range kinds {
		cfg := dst.Config{Protocol: kind, Sites: *sites}

		if *seed >= 0 {
			r := dst.RunRandom(cfg, *seed)
			printReport(r, *trace || len(r.Violations) > 0)
			failed = failed || len(r.Violations) > 0
			continue
		}

		if *enum {
			reports := dst.ExploreCrashPoints(cfg)
			blocked, bad := 0, 0
			for _, r := range reports {
				if r.Blocked {
					blocked++
				}
				if len(r.Violations) > 0 {
					bad++
					printReport(r, *trace)
					failed = true
				}
			}
			fmt.Printf("%s: enumerated %d single-crash schedules: %d blocking, %d violating\n",
				kind, len(reports), blocked, bad)
			if kind == engine.TwoPhase && blocked == 0 {
				fmt.Printf("%s: NEGATIVE CONTROL FAILED: no enumerated schedule blocks 2PC\n", kind)
				failed = true
			}
		}

		blocked, bad := 0, 0
		for s := int64(1); s <= int64(*seeds); s++ {
			r := dst.RunRandom(cfg, s)
			if r.Blocked {
				blocked++
			}
			if len(r.Violations) > 0 {
				bad++
				printReport(r, *trace)
				fmt.Printf("  replay: go run ./cmd/dst -protocol %s -sites %d -seed %d -trace\n",
					protoFlag(kind), *sites, s)
				failed = true
			}
		}
		fmt.Printf("%s: swept %d random schedules: %d blocking, %d violating\n",
			kind, *seeds, blocked, bad)
	}

	if failed {
		os.Exit(1)
	}
}

func printReport(r dst.Report, withTrace bool) {
	fmt.Printf("%s: %s (%d steps, blocked=%v, wal=%s)\n",
		r.Protocol, r.Scenario, r.Steps, r.Blocked, r.WALDigest)
	for _, v := range r.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	if withTrace {
		for i, line := range r.Trace {
			fmt.Printf("  %4d %s\n", i, line)
		}
	}
}

func protoFlag(k engine.ProtocolKind) string {
	if k == engine.ThreePhase {
		return "3pc"
	}
	return "2pc"
}
