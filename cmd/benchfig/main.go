// Command benchfig regenerates every figure and table of the reproduction:
//
//	benchfig             print everything
//	benchfig -fig T1     print one experiment (F1..F8, T1..T6, A1, A2)
//	benchfig -trials N   sweep size for the statistical experiments
//
// See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nbcommit/internal/experiments"
	"nbcommit/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: F1..F8, T1..T6, A1, A2, or all")
	trials := flag.Int("trials", 2000, "trials per statistical sweep")
	seed := flag.Int64("seed", 1981, "random seed")
	txns := flag.Int("txns", 300, "transactions for the throughput run (T5)")
	flag.Parse()

	runners := map[string]func(){
		"F1": func() { fmt.Print(experiments.Fig1CentralSite2PC(3)) },
		"F2": func() { _, s := experiments.Fig2ReachableGraph2PC(); fmt.Print(s) },
		"F3": func() { fmt.Print(experiments.Fig3ConcurrencySets([]int{2, 3, 4})) },
		"F4": func() { fmt.Print(experiments.Fig4TheoremOn2PC(3)) },
		"F5": func() { fmt.Print(experiments.Fig5Synthesis(3)) },
		"F6": func() { fmt.Print(experiments.Fig6ThreePCNonblocking([]int{2, 3})) },
		"F7": func() { fmt.Print(experiments.Fig7TerminationRule()) },
		"F8": func() { fmt.Print(experiments.Fig8Resilience(3)) },
		"T1": func() { _, s := experiments.Tab1BlockingProbability([]int{3, 5, 9, 17}, *trials, *seed); fmt.Print(s) },
		"T2": func() { _, s := experiments.Tab2Availability(5, []int{1, 2, 3}, *trials, *seed); fmt.Print(s) },
		"T3": func() { _, s := experiments.Tab3MessageCost([]int{2, 4, 8, 16, 32, 64}); fmt.Print(s) },
		"T4": func() { _, s := experiments.Tab4Latency([]int{3, 5, 9}, 200, *seed); fmt.Print(s) },
		"T5": func() { _, s := experiments.Tab5Throughput(4, *txns, *seed); fmt.Print(s) },
		"T6": func() { _, s := experiments.Tab6Recovery(25); fmt.Print(s) },
		"T7": func() {
			_, s := experiments.Tab7BlockedTimeVsMTTR([]sim.Time{
				10 * sim.Millisecond, 20 * sim.Millisecond, 50 * sim.Millisecond,
				100 * sim.Millisecond, 200 * sim.Millisecond,
			}, *seed)
			fmt.Print(s)
		},
		"T8": func() { _, s := experiments.Tab8Contention(3, 8, 40, *seed); fmt.Print(s) },
		"A1": func() { _, _, s := experiments.Abl1BackupPhase1(); fmt.Print(s) },
		"A2": func() { _, _, s := experiments.Abl2NoBufferState(*trials, *seed); fmt.Print(s) },
		"A3": func() { _, _, _, s := experiments.Abl3PartitionQuorum(200); fmt.Print(s) },
	}
	order := []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
		"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "A1", "A2", "A3"}

	name := strings.ToUpper(*fig)
	if name == "ALL" {
		for _, id := range order {
			runners[id]()
			fmt.Println()
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q (want F1..F8, T1..T6, A1..A3, all)\n", *fig)
		os.Exit(2)
	}
	run()
}
