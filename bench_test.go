// Package nbcommit's benchmark harness: one testing.B benchmark per figure
// and table of the reproduction (see DESIGN.md for the index and
// EXPERIMENTS.md for paper-vs-measured). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark both measures the cost of regenerating its artifact and
// asserts the paper's qualitative claim, so a regression in either shows up
// here. Custom metrics report the headline quantity of each experiment.
package nbcommit

import (
	"testing"

	"nbcommit/internal/experiments"
	"nbcommit/internal/sim"
)

func BenchmarkFig1CentralSite2PC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig1CentralSite2PC(3); s == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig2ReachableGraph2PC(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		stats, _ := experiments.Fig2ReachableGraph2PC()
		if stats.Inconsistent != 0 || stats.Deadlocked != 0 {
			b.Fatalf("graph unsound: %+v", stats)
		}
		states = stats.States
	}
	b.ReportMetric(float64(states), "global-states")
}

func BenchmarkFig3ConcurrencySets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig3ConcurrencySets([]int{2, 3, 4}); s == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig4TheoremOn2PC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig4TheoremOn2PC(3); s == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig5Synthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig5Synthesis(3); s == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig6ThreePCNonblocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig6ThreePCNonblocking([]int{2, 3}); s == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig7Termination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig7TerminationRule(); s == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig8Resilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig8Resilience(3); s == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTab1BlockingProbability(b *testing.B) {
	var lastTwo, lastThree float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Tab1BlockingProbability([]int{3, 5}, 400, 1981)
		for _, r := range rows {
			if r.Inconsistent != 0 {
				b.Fatalf("n=%d: inconsistency", r.N)
			}
			if r.ThreePC != 0 {
				b.Fatalf("n=%d: 3PC blocked", r.N)
			}
			if r.TwoPCBlocked == 0 {
				b.Fatalf("n=%d: 2PC never blocked", r.N)
			}
			lastTwo, lastThree = r.TwoPCBlocked, r.ThreePC
		}
	}
	b.ReportMetric(100*lastTwo, "2pc-blocked-%")
	b.ReportMetric(100*lastThree, "3pc-blocked-%")
}

func BenchmarkTab2Availability(b *testing.B) {
	var worst3PC float64 = 1
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Tab2Availability(5, []int{1, 2}, 300, 1981)
		for _, r := range rows {
			if r.Inconsistent != 0 {
				b.Fatalf("%s k=%d: inconsistency", r.Protocol, r.K)
			}
			if r.Protocol == "central-3PC" || r.Protocol == "decentralized-3PC" {
				if r.Terminated < 1 {
					b.Fatalf("%s k=%d terminated %.3f", r.Protocol, r.K, r.Terminated)
				}
				if r.Terminated < worst3PC {
					worst3PC = r.Terminated
				}
			}
		}
	}
	b.ReportMetric(100*worst3PC, "3pc-availability-%")
}

func BenchmarkTab3MessageCost(b *testing.B) {
	var rows []experiments.Tab3Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.Tab3MessageCost([]int{2, 4, 8, 16})
		for _, r := range rows {
			n := r.N
			if r.C2PC != 3*(n-1) || r.C3PC != 5*(n-1) ||
				r.D2PC != n*(n-1) || r.D3PC != 2*n*(n-1) {
				b.Fatalf("message counts off at n=%d: %+v", n, r)
			}
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.C3PC), "c3pc-msgs@n16")
	b.ReportMetric(float64(last.D3PC), "d3pc-msgs@n16")
}

func BenchmarkTab4Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Tab4Latency([]int{3, 5}, 50, 1981)
		for _, r := range rows {
			if r.C3PC <= r.C2PC || r.D3PC <= r.D2PC {
				b.Fatalf("3PC should cost extra rounds: %+v", r)
			}
			if r.D2PC >= r.C2PC {
				b.Fatalf("decentralized should need fewer sequential hops: %+v", r)
			}
		}
	}
}

func BenchmarkTab5Throughput(b *testing.B) {
	var per2, per3 float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Tab5Throughput(4, 100, 1981)
		for _, r := range rows {
			if r.Committed == 0 {
				b.Fatalf("%s committed nothing", r.Protocol)
			}
			if r.Protocol == "central-site 2PC" {
				per2 = r.PerSecond
			}
			if r.Protocol == "central-site 3PC" {
				per3 = r.PerSecond
			}
		}
	}
	b.ReportMetric(per2, "2pc-txn/s")
	b.ReportMetric(per3, "3pc-txn/s")
}

func BenchmarkTab6Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		failures, report := experiments.Tab6Recovery(10)
		if failures != 0 {
			b.Fatalf("recovery failures:\n%s", report)
		}
	}
}

func BenchmarkAbl1BackupPhase1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withV, withoutV, report := experiments.Abl1BackupPhase1()
		if withV != 0 {
			b.Fatalf("phase 1 enabled yet inconsistent:\n%s", report)
		}
		if withoutV == 0 {
			b.Fatalf("ablation failed to break safety:\n%s", report)
		}
	}
}

func BenchmarkAbl2NoBufferState(b *testing.B) {
	var two float64
	for i := 0; i < b.N; i++ {
		twoBlocked, threeBlocked, _ := experiments.Abl2NoBufferState(400, 1981)
		if threeBlocked != 0 || twoBlocked == 0 {
			b.Fatalf("ablation shape wrong: 2pc=%.3f 3pc=%.3f", twoBlocked, threeBlocked)
		}
		two = twoBlocked
	}
	b.ReportMetric(100*two, "no-buffer-blocked-%")
}

func BenchmarkAbl3PartitionQuorum(b *testing.B) {
	var plain int
	for i := 0; i < b.N; i++ {
		plainV, quorumV, blocked, _ := experiments.Abl3PartitionQuorum(100)
		if quorumV != 0 {
			b.Fatalf("quorum 3PC violated atomicity %d times", quorumV)
		}
		if plainV == 0 {
			b.Fatal("plain 3PC never violated atomicity under partitions")
		}
		if blocked == 0 {
			b.Fatal("quorum never blocked a minority: sweep shape wrong")
		}
		plain = plainV
	}
	b.ReportMetric(float64(plain), "plain-3pc-violations")
}

func BenchmarkTab7BlockedTimeVsMTTR(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Tab7BlockedTimeVsMTTR([]sim.Time{
			20 * sim.Millisecond, 100 * sim.Millisecond,
		}, 1981)
		if len(rows) != 2 {
			b.Fatal("rows")
		}
		// 2PC tracks MTTR; 3PC is constant.
		if rows[1].TwoPCDone-rows[0].TwoPCDone < 50*sim.Millisecond {
			b.Fatalf("2PC should track MTTR: %+v", rows)
		}
		d := rows[1].ThreePDone - rows[0].ThreePDone
		if d < 0 {
			d = -d
		}
		if d > 2*sim.Millisecond {
			b.Fatalf("3PC should be MTTR-independent: %+v", rows)
		}
		ratio = float64(rows[1].TwoPCDone) / float64(rows[1].ThreePDone)
	}
	b.ReportMetric(ratio, "2pc/3pc-done-ratio@100ms")
}

func BenchmarkTab8Contention(b *testing.B) {
	var timeoutAbort, waitDieAbort float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Tab8Contention(3, 4, 25, 1981)
		if len(rows) != 2 {
			b.Fatal("rows")
		}
		for _, r := range rows {
			if r.Committed == 0 {
				b.Fatalf("%s committed nothing", r.Policy)
			}
		}
		timeoutAbort, waitDieAbort = rows[0].AbortPct, rows[1].AbortPct
	}
	b.ReportMetric(timeoutAbort, "timeout-abort-%")
	b.ReportMetric(waitDieAbort, "waitdie-abort-%")
}
