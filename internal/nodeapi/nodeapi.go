// Package nodeapi implements the line-oriented client protocol served by
// kvnode: a connected client opens one transaction at a time, issues reads
// and writes — site-addressed or key-addressed — and commits through the
// cluster's commit engines. Key-addressed verbs consult the node's shard
// map, so any node can serve any client without the client knowing data
// placement; the serving node executes remote operations through the data
// plane and the transaction commits across exactly the sites whose shards
// it touched (a single-shard transaction engages one site).
//
// Read-only transactions (BEGIN RO) ride the snapshot fast path: every read
// is served from a pinned multi-version snapshot at the key's owner site —
// no locks, no Begin/Prepare, and COMMIT succeeds without a single commit
// protocol message. SGETK is the one-shot form: a single-shard snapshot read
// is exactly one data-plane RPC (shard-map-version-stamped like every other
// data-plane request).
//
// Protocol (one line per request/response):
//
//	BEGIN [RO]            -> OK <txid>   (RO: read-only snapshot transaction)
//	GET <site> <key>      -> VAL <value> | ERR <msg>
//	PUT <site> <key> <v>  -> OK | ERR <msg>
//	DEL <site> <key>      -> OK | ERR <msg>
//	GETK <key>            -> VAL <value> | ERR <msg>
//	PUTK <key> <v>        -> OK | ERR <msg>
//	DELK <key>            -> OK | ERR <msg>
//	SGETK <key>           -> VAL <value> | ERR <msg>   (snapshot read, no transaction needed)
//	COMMIT                -> COMMITTED | ABORTED | ERR <msg>
//	ABORT                 -> OK
package nodeapi

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
	"nbcommit/internal/remote"
	"nbcommit/internal/shard"
)

var txSeq atomic.Uint64

// API coordinates client transactions on behalf of one node.
type API struct {
	// Self is the serving node's site ID.
	Self int
	// Site is the node's commit engine.
	Site *engine.Site
	// Store is the node's local store.
	Store *kv.Store
	// Client executes data-plane operations at peers.
	Client *remote.Client
	// Timeout is the engine's protocol timeout; COMMIT waits a multiple of
	// it.
	Timeout time.Duration
	// Paradigm selects central-site (default) or decentralized commitment.
	Paradigm string // "central" or "decentralized"
	// Router resolves key-addressed operations to owner sites. Nil disables
	// the GETK/PUTK/DELK verbs.
	Router *shard.Router
}

// Serve handles one client connection until it closes.
func (a *API) Serve(conn net.Conn) {
	defer conn.Close()
	s := &Session{api: a, touched: map[int]bool{}}
	defer s.Cleanup()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fmt.Fprintln(w, s.Execute(sc.Text()))
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Session is one client's transaction state.
type Session struct {
	api      *API
	mu       sync.Mutex
	txid     string
	readOnly bool
	touched  map[int]bool
	// snaps holds a read-only transaction's per-site snapshot timestamps,
	// pinned lazily on first touch. The local store's pin holds its GC
	// floor; remote snapshots are stateless timestamps (a peer GC racing a
	// long remote read surfaces as ErrSnapshotTooOld, never a wrong value).
	snaps map[int]uint64
}

// Cleanup aborts any transaction left open (e.g. the connection dropped).
func (s *Session) Cleanup() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txid != "" {
		s.abortLocked()
	}
}

func (s *Session) abortLocked() {
	if s.readOnly {
		s.releaseSnapsLocked()
	} else {
		for site := range s.touched {
			if site == s.api.Self {
				_ = s.api.Store.Abort(s.txid)
			} else {
				_, _ = s.api.Client.Call(site, s.txid, remote.OpAbort, "", "")
			}
		}
	}
	s.txid = ""
	s.readOnly = false
	s.touched = map[int]bool{}
}

// releaseSnapsLocked drops the local snapshot pin. Remote snapshots need no
// release: peers do not track them.
func (s *Session) releaseSnapsLocked() {
	if ts, ok := s.snaps[s.api.Self]; ok {
		s.api.Store.ReleaseSnapshot(ts)
	}
	s.snaps = nil
}

func (s *Session) enlist(site int) error {
	if s.touched[site] {
		return nil
	}
	var err error
	if site == s.api.Self {
		err = s.api.Store.Begin(s.txid)
	} else {
		_, err = s.api.Client.Call(site, s.txid, remote.OpBegin, "", "")
	}
	if err != nil {
		return err
	}
	s.touched[site] = true
	return nil
}

// Execute runs one protocol line and returns the response line.
func (s *Session) Execute(line string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	args := strings.Fields(line)
	if len(args) == 0 {
		return "ERR empty command"
	}
	switch cmd := strings.ToUpper(args[0]); cmd {
	case "BEGIN":
		return s.begin(args[1:])
	case "GET", "PUT", "DEL":
		return s.operate(cmd, args[1:])
	case "GETK", "PUTK", "DELK":
		return s.operateKeyed(cmd, args[1:])
	case "SGETK":
		return s.snapGetKeyed(args[1:])
	case "COMMIT":
		return s.commit()
	case "ABORT":
		if s.txid == "" {
			return "ERR no open transaction"
		}
		s.abortLocked()
		return "OK"
	default:
		return "ERR unknown command " + cmd
	}
}

// begin opens a transaction without enlisting any site: sites join the
// cohort on first touch, so a transaction whose keys all live elsewhere
// never includes the serving node in its commit. BEGIN RO opens a read-only
// transaction on the snapshot fast path instead: reads come from per-site
// pinned snapshots, writes are refused, and COMMIT involves no protocol.
func (s *Session) begin(args []string) string {
	if s.txid != "" {
		return "ERR transaction already open"
	}
	if len(args) > 0 {
		if !strings.EqualFold(args[0], "RO") {
			return "ERR usage: BEGIN [RO]"
		}
		s.readOnly = true
		s.snaps = map[int]uint64{}
		s.txid = fmt.Sprintf("ro-%d-%d", s.api.Self, txSeq.Add(1))
		return "OK " + s.txid
	}
	s.txid = fmt.Sprintf("tx-%d-%d", s.api.Self, txSeq.Add(1))
	return "OK " + s.txid
}

// snapRead reads key at site from the session's read-only snapshot, pinning
// the site's stable timestamp on first touch.
func (s *Session) snapRead(site int, key string) (string, error) {
	if site == s.api.Self {
		ts, ok := s.snaps[s.api.Self]
		if !ok {
			ts = s.api.Store.AcquireSnapshot()
			s.snaps[s.api.Self] = ts
		}
		return s.api.Store.ReadAt(ts, key)
	}
	v, rts, err := s.api.Client.SnapGet(site, key, s.snaps[site])
	if _, ok := s.snaps[site]; !ok && rts != 0 {
		s.snaps[site] = rts // pin even when the first read is a not-found
	}
	return v, err
}

// snapGetKeyed serves SGETK: a one-shot snapshot read of a key at its owner
// site — for a single-shard read, exactly one data-plane RPC, with no
// transaction and no commit-protocol traffic. Inside an open BEGIN RO
// transaction it reads from the transaction's pinned snapshot instead.
func (s *Session) snapGetKeyed(args []string) string {
	if s.api.Router == nil {
		return "ERR this node has no shard map"
	}
	if len(args) < 1 {
		return "ERR usage: SGETK <key>"
	}
	key := args[0]
	site := s.api.Router.Site(key)
	var v string
	var err error
	switch {
	case s.readOnly && s.txid != "":
		v, err = s.snapRead(site, key)
	case site == s.api.Self:
		v, _, err = s.api.Store.SnapshotGet(key)
	default:
		v, _, err = s.api.Client.SnapGet(site, key, 0)
	}
	if err != nil {
		return "ERR " + err.Error()
	}
	return "VAL " + v
}

func (s *Session) operate(cmd string, args []string) string {
	if s.txid == "" {
		return "ERR no open transaction (BEGIN first)"
	}
	if len(args) < 2 {
		return "ERR usage: " + cmd + " <site> <key> [value]"
	}
	site, err := strconv.Atoi(args[0])
	if err != nil || site < 1 {
		return "ERR bad site"
	}
	if s.readOnly {
		if cmd != "GET" {
			return "ERR read-only transaction"
		}
		v, err := s.snapRead(site, args[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		return "VAL " + v
	}
	if err := s.enlist(site); err != nil {
		return "ERR " + err.Error()
	}
	key := args[1]
	switch cmd {
	case "GET":
		v, err := s.opAt(site, remote.OpGet, key, "")
		if err != nil {
			return "ERR " + err.Error()
		}
		return "VAL " + v
	case "PUT":
		if len(args) < 3 {
			return "ERR usage: PUT <site> <key> <value>"
		}
		if _, err := s.opAt(site, remote.OpPut, key, strings.Join(args[2:], " ")); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	default: // DEL
		if _, err := s.opAt(site, remote.OpDelete, key, ""); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	}
}

// operateKeyed executes a key-addressed verb by routing the key to its
// owner site through the shard map.
func (s *Session) operateKeyed(cmd string, args []string) string {
	if s.api.Router == nil {
		return "ERR this node has no shard map (use site-addressed " + cmd[:3] + ")"
	}
	if s.txid == "" {
		return "ERR no open transaction (BEGIN first)"
	}
	if len(args) < 1 {
		return "ERR usage: " + cmd + " <key> [value]"
	}
	key := args[0]
	site := s.api.Router.Site(key)
	if s.readOnly {
		if cmd != "GETK" {
			return "ERR read-only transaction"
		}
		v, err := s.snapRead(site, key)
		if err != nil {
			return "ERR " + err.Error()
		}
		return "VAL " + v
	}
	if err := s.enlist(site); err != nil {
		return "ERR " + err.Error()
	}
	switch cmd {
	case "GETK":
		v, err := s.opAt(site, remote.OpGet, key, "")
		if err != nil {
			return "ERR " + err.Error()
		}
		return "VAL " + v
	case "PUTK":
		if len(args) < 2 {
			return "ERR usage: PUTK <key> <value>"
		}
		if _, err := s.opAt(site, remote.OpPut, key, strings.Join(args[1:], " ")); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	default: // DELK
		if _, err := s.opAt(site, remote.OpDelete, key, ""); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	}
}

func (s *Session) commit() string {
	if s.txid == "" {
		return "ERR no open transaction"
	}
	if s.readOnly {
		// The snapshot was consistent by construction: a read-only
		// transaction commits without Begin, Prepare, or any protocol
		// message — release the pins and report success.
		s.releaseSnapsLocked()
		s.txid = ""
		s.readOnly = false
		return "COMMITTED"
	}
	sites := make([]int, 0, len(s.touched))
	for site := range s.touched {
		sites = append(sites, site)
	}
	sort.Ints(sites)
	o, werr := s.runCommit(sites)
	s.txid = ""
	s.touched = map[int]bool{}
	if werr != nil {
		return "ERR " + werr.Error()
	}
	switch o {
	case engine.OutcomeCommitted:
		return "COMMITTED"
	case engine.OutcomeAborted:
		return "ABORTED"
	default:
		return "ERR still pending (possibly blocked)"
	}
}

// runCommit drives the commit protocol over the touched sites. The cohort
// is exactly the touched set: if this node holds touched data it
// coordinates itself; otherwise it forwards coordination to the
// lowest-numbered touched site, keeping bystander nodes out of the commit —
// a transaction confined to one shard commits at one site.
func (s *Session) runCommit(sites []int) (engine.Outcome, error) {
	if len(sites) == 0 {
		// A read-free, write-free transaction has nothing to commit.
		return engine.OutcomeCommitted, nil
	}
	wait := 20 * s.api.Timeout
	if !s.touched[s.api.Self] {
		return s.api.Client.Commit(sites[0], s.txid, sites, wait)
	}
	var err error
	if s.api.Paradigm == "decentralized" {
		err = s.api.Site.BeginPeer(s.txid, sites)
	} else {
		err = s.api.Site.Begin(s.txid, sites)
	}
	if err != nil {
		return engine.OutcomePending, err
	}
	return s.api.Site.WaitOutcome(s.txid, wait)
}

// opAt executes one data-plane operation locally or at a peer.
func (s *Session) opAt(site int, op, key, value string) (string, error) {
	if site == s.api.Self {
		switch op {
		case remote.OpGet:
			return s.api.Store.Get(s.txid, key)
		case remote.OpPut:
			return "", s.api.Store.Put(s.txid, key, value)
		case remote.OpDelete:
			return "", s.api.Store.Delete(s.txid, key)
		}
		return "", fmt.Errorf("bad op %s", op)
	}
	return s.api.Client.Call(site, s.txid, op, key, value)
}
