package nodeapi

import (
	"fmt"
	"strings"
	"testing"
)

// pickKey probes for a key the cluster's shard map places at the wanted
// site, so tests can address local and remote stores deliberately.
func pickKey(t *testing.T, s *Session, site int, taken map[string]bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("rok-%d", i)
		if taken[k] {
			continue
		}
		if s.api.Router.Site(k) == site {
			taken[k] = true
			return k
		}
	}
	t.Fatalf("no key found for site %d", site)
	return ""
}

func TestReadOnlySessionFastPath(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	taken := map[string]bool{}
	kLocal := pickKey(t, s, 1, taken)  // served from the local store
	kRemote := pickKey(t, s, 2, taken) // served via one OpSnapGet RPC

	// Seed through a normal transaction.
	s.Execute("BEGIN")
	if got := s.Execute("PUTK " + kLocal + " v-local"); got != "OK" {
		t.Fatalf("PUTK = %q", got)
	}
	if got := s.Execute("PUTK " + kRemote + " v-remote"); got != "OK" {
		t.Fatalf("PUTK = %q", got)
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("seed COMMIT = %q", got)
	}
	waitRead(t, nodes[1].store, kLocal, "v-local")
	waitRead(t, nodes[2].store, kRemote, "v-remote")

	// Read-only transaction: snapshot reads, writes refused, commit without
	// any protocol involvement.
	reply := s.Execute("BEGIN RO")
	if !strings.HasPrefix(reply, "OK ro-1-") {
		t.Fatalf("BEGIN RO = %q", reply)
	}
	roID := strings.TrimPrefix(reply, "OK ")
	if got := s.Execute("GETK " + kLocal); got != "VAL v-local" {
		t.Fatalf("RO GETK local = %q", got)
	}
	if got := s.Execute("GETK " + kRemote); got != "VAL v-remote" {
		t.Fatalf("RO GETK remote = %q", got)
	}
	for _, line := range []string{
		"PUTK " + kLocal + " nope",
		"DELK " + kLocal,
		"PUT 2 " + kRemote + " nope",
		"DEL 2 " + kRemote,
	} {
		if got := s.Execute(line); got != "ERR read-only transaction" {
			t.Fatalf("%q = %q, want read-only refusal", line, got)
		}
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("RO COMMIT = %q", got)
	}
	// The fast path never enlisted anywhere: no engine or store state for
	// the RO transaction at any site.
	for id, nd := range nodes {
		for _, tx := range nd.site.Transactions() {
			if tx == roID {
				t.Fatalf("site %d engine tracked read-only transaction %s", id, roID)
			}
		}
		for _, tx := range nd.store.Pending() {
			if tx == roID {
				t.Fatalf("site %d store enlisted read-only transaction %s", id, roID)
			}
		}
	}

	// SGETK: one-shot snapshot reads without any transaction open.
	if got := s.Execute("SGETK " + kLocal); got != "VAL v-local" {
		t.Fatalf("SGETK local = %q", got)
	}
	if got := s.Execute("SGETK " + kRemote); got != "VAL v-remote" {
		t.Fatalf("SGETK remote = %q", got)
	}
	if got := s.Execute("SGETK missing-key"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("SGETK missing = %q", got)
	}
}

// A read-only transaction's view is pinned at first touch per site: writes
// committed after the pin stay invisible until the next transaction.
func TestReadOnlySnapshotStability(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	writer := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	reader := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	taken := map[string]bool{}
	kLocal := pickKey(t, writer, 1, taken)
	kRemote := pickKey(t, writer, 2, taken)

	writer.Execute("BEGIN")
	writer.Execute("PUTK " + kLocal + " one")
	writer.Execute("PUTK " + kRemote + " one")
	if got := writer.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("seed COMMIT = %q", got)
	}
	waitRead(t, nodes[1].store, kLocal, "one")
	waitRead(t, nodes[2].store, kRemote, "one")

	reader.Execute("BEGIN RO")
	if got := reader.Execute("GETK " + kLocal); got != "VAL one" {
		t.Fatalf("RO first read local = %q", got)
	}
	if got := reader.Execute("GETK " + kRemote); got != "VAL one" {
		t.Fatalf("RO first read remote = %q", got)
	}

	// Overwrite both keys while the read-only transaction is open.
	writer.Execute("BEGIN")
	writer.Execute("PUTK " + kLocal + " two")
	writer.Execute("PUTK " + kRemote + " two")
	if got := writer.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("overwrite COMMIT = %q", got)
	}
	waitRead(t, nodes[1].store, kLocal, "two")
	waitRead(t, nodes[2].store, kRemote, "two")

	// The pinned snapshot still serves the old values, locally and remotely.
	if got := reader.Execute("GETK " + kLocal); got != "VAL one" {
		t.Fatalf("pinned local read moved: %q", got)
	}
	if got := reader.Execute("GETK " + kRemote); got != "VAL one" {
		t.Fatalf("pinned remote read moved: %q", got)
	}
	if got := reader.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("RO COMMIT = %q", got)
	}

	// A fresh snapshot sees the new state.
	if got := reader.Execute("SGETK " + kLocal); got != "VAL two" {
		t.Fatalf("fresh SGETK local = %q", got)
	}
	if got := reader.Execute("SGETK " + kRemote); got != "VAL two" {
		t.Fatalf("fresh SGETK remote = %q", got)
	}
}

// A missing key inside BEGIN RO still pins the site's snapshot: a key
// created afterwards stays invisible to this transaction (no phantom).
func TestReadOnlyMissingKeyPinsSnapshot(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	writer := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	reader := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	taken := map[string]bool{}
	kRemote := pickKey(t, writer, 2, taken)

	// Seed something unrelated at site 2 so its store has a nonzero stable
	// timestamp (a zero timestamp cannot be distinguished from "unpinned").
	seed := pickKey(t, writer, 2, taken)
	writer.Execute("BEGIN")
	writer.Execute("PUTK " + seed + " s")
	if got := writer.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("seed COMMIT = %q", got)
	}
	waitRead(t, nodes[2].store, seed, "s")

	reader.Execute("BEGIN RO")
	if got := reader.Execute("GETK " + kRemote); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("read of missing key = %q", got)
	}
	writer.Execute("BEGIN")
	writer.Execute("PUTK " + kRemote + " late")
	if got := writer.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("late COMMIT = %q", got)
	}
	waitRead(t, nodes[2].store, kRemote, "late")
	if got := reader.Execute("GETK " + kRemote); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("phantom: key created after the snapshot became visible: %q", got)
	}
	reader.Execute("COMMIT")
	if got := reader.Execute("SGETK " + kRemote); got != "VAL late" {
		t.Fatalf("fresh SGETK = %q", got)
	}
}
