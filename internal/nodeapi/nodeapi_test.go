package nodeapi

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/kv"
	"nbcommit/internal/remote"
	"nbcommit/internal/shard"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// node bundles one in-process site with its data plane, as kvnode wires it.
type node struct {
	id     int
	store  *kv.Store
	site   *engine.Site
	client *remote.Client
	server *remote.Server
}

// testCluster builds n nodes over the in-memory network with the oracle
// detector (the node wiring minus TCP and heartbeats). Every node holds the
// deterministic default shard map for the cluster.
func testCluster(t *testing.T, n int) (map[int]*node, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork()
	det := failure.NewOracle(net)
	ids := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		ids = append(ids, i)
	}
	smap := shard.Default(ids, 4)
	nodes := map[int]*node{}
	for i := 1; i <= n; i++ {
		i := i
		ep := net.Endpoint(i)
		store := kv.NewStore(kv.Options{LockTimeout: 50 * time.Millisecond})
		server := &remote.Server{Store: store, Send: ep.Send, Map: smap}
		client := remote.NewClient(ep.Send, 300*time.Millisecond)
		client.MapVersion = smap.Version
		site, err := engine.New(engine.Config{
			ID:       i,
			Endpoint: ep,
			Log:      wal.NewMemoryLog(),
			Resource: dtx.StoreResource{Store: store},
			Detector: det,
			Protocol: engine.ThreePhase,
			Timeout:  60 * time.Millisecond,
			Unhandled: func(m transport.Message) {
				switch m.Kind {
				case remote.KindOp:
					go server.Handle(m)
				case remote.KindReply:
					client.Deliver(m)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		server.SetSite(site)
		site.Start()
		nodes[i] = &node{id: i, store: store, site: site, client: client, server: server}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.site.Stop()
		}
	})
	return nodes, net
}

// waitRead polls a store until key holds want (COMMITTED means the decision
// is durable at the coordinator; participants apply it asynchronously).
func waitRead(t *testing.T, store *kv.Store, key, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := store.Read(key); ok && v == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, ok := store.Read(key)
	t.Fatalf("%s = %q/%v, want %q", key, v, ok, want)
}

// waitGone polls until key disappears from the store.
func waitGone(t *testing.T, store *kv.Store, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := store.Read(key); !ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s still present", key)
}

func api(nd *node) *API {
	return &API{
		Self: nd.id, Site: nd.site, Store: nd.store,
		Client: nd.client, Timeout: 60 * time.Millisecond,
		Router: &shard.Router{Map: nd.server.Map},
	}
}

func TestSessionLifecycle(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}

	reply := s.Execute("BEGIN")
	if !strings.HasPrefix(reply, "OK tx-1-") {
		t.Fatalf("BEGIN = %q", reply)
	}
	if got := s.Execute("PUT 2 color blue"); got != "OK" {
		t.Fatalf("PUT = %q", got)
	}
	if got := s.Execute("PUT 3 shape round here"); got != "OK" {
		t.Fatalf("PUT multiword = %q", got)
	}
	if got := s.Execute("GET 2 color"); got != "VAL blue" {
		t.Fatalf("GET = %q", got)
	}
	if got := s.Execute("GET 3 shape"); got != "VAL round here" {
		t.Fatalf("GET multiword = %q", got)
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	// Data becomes durable at the remote stores.
	waitRead(t, nodes[2].store, "color", "blue")
	waitRead(t, nodes[3].store, "shape", "round here")

	// Second transaction on the same session: delete.
	s.Execute("BEGIN")
	if got := s.Execute("DEL 2 color"); got != "OK" {
		t.Fatalf("DEL = %q", got)
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	waitGone(t, nodes[2].store, "color")
}

func TestSessionErrors(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}

	for line, wantPrefix := range map[string]string{
		"":          "ERR empty",
		"NOPE":      "ERR unknown command",
		"PUT 2 k v": "ERR no open transaction",
		"GET 2 k":   "ERR no open transaction",
		"COMMIT":    "ERR no open transaction",
		"ABORT":     "ERR no open transaction",
	} {
		if got := s.Execute(line); !strings.HasPrefix(got, wantPrefix) {
			t.Errorf("%q = %q, want prefix %q", line, got, wantPrefix)
		}
	}
	s.Execute("BEGIN")
	if got := s.Execute("BEGIN"); !strings.HasPrefix(got, "ERR transaction already open") {
		t.Fatalf("double BEGIN = %q", got)
	}
	if got := s.Execute("PUT x k v"); !strings.HasPrefix(got, "ERR bad site") {
		t.Fatalf("bad site = %q", got)
	}
	if got := s.Execute("PUT 2"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("short PUT = %q", got)
	}
	if got := s.Execute("PUT 2 k"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("valueless PUT = %q", got)
	}
	if got := s.Execute("GET 2 missing"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("missing key = %q", got)
	}
	if got := s.Execute("ABORT"); got != "OK" {
		t.Fatalf("ABORT = %q", got)
	}
}

func TestSessionAbortRollsBack(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	s.Execute("BEGIN")
	s.Execute("PUT 2 k v")
	if got := s.Execute("ABORT"); got != "OK" {
		t.Fatalf("ABORT = %q", got)
	}
	if _, ok := nodes[2].store.Read("k"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestSessionCleanupAbortsOpenTxn(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	s.Execute("BEGIN")
	s.Execute("PUT 2 k v")
	s.Cleanup() // connection dropped
	if _, ok := nodes[2].store.Read("k"); ok {
		t.Fatal("dangling write after cleanup")
	}
	if p := nodes[2].store.Pending(); len(p) != 0 {
		t.Fatalf("pending transactions after cleanup: %v", p)
	}
}

func TestSessionLockConflictSurfacesAsError(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s1 := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	s2 := &Session{api: api(nodes[2]), touched: map[int]bool{}}
	s1.Execute("BEGIN")
	if got := s1.Execute("PUT 2 hot v1"); got != "OK" {
		t.Fatalf("s1 PUT = %q", got)
	}
	s2.Execute("BEGIN")
	if got := s2.Execute("PUT 2 hot v2"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("conflicting PUT = %q", got)
	}
	s2.Execute("ABORT")
	if got := s1.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("s1 COMMIT = %q", got)
	}
	waitRead(t, nodes[2].store, "hot", "v1")
}

func TestServeOverRealConnection(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	a := api(nodes[1])
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			a.Serve(conn)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(reply)
	}
	if got := send("BEGIN"); !strings.HasPrefix(got, "OK") {
		t.Fatalf("BEGIN = %q", got)
	}
	if got := send("PUT 2 wire works"); got != "OK" {
		t.Fatalf("PUT = %q", got)
	}
	if got := send("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	waitRead(t, nodes[2].store, "wire", "works")
}

// keyOwnedBy finds a key the shard map places at the wanted site.
func keyOwnedBy(t *testing.T, r *shard.Router, owner int, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if r.Site(k) == owner {
			return k
		}
	}
	t.Fatalf("no key owned by site %d", owner)
	return ""
}

// TestKeyedSingleShardOneParticipant is the sharding acceptance check: a
// transaction whose only key lives at a remote site commits with a
// participant set of exactly that one site — the serving node and every
// bystander stay out of the commit entirely.
func TestKeyedSingleShardOneParticipant(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	a := api(nodes[1])
	s := &Session{api: a, touched: map[int]bool{}}

	key := keyOwnedBy(t, a.Router, 2, "solo")
	reply := s.Execute("BEGIN")
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("BEGIN = %q", reply)
	}
	txid := strings.TrimPrefix(reply, "OK ")
	if got := s.Execute("PUTK " + key + " v1"); got != "OK" {
		t.Fatalf("PUTK = %q", got)
	}
	if got := s.Execute("GETK " + key); got != "VAL v1" {
		t.Fatalf("GETK = %q", got)
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}

	if got := nodes[2].site.Participants(txid); len(got) != 1 || got[0] != 2 {
		t.Fatalf("participants at owner = %v, want [2]", got)
	}
	for _, bystander := range []int{1, 3} {
		if got := nodes[bystander].site.Participants(txid); got != nil {
			t.Fatalf("bystander site %d joined the commit: %v", bystander, got)
		}
	}
	waitRead(t, nodes[2].store, key, "v1")
}

// TestKeyedCrossShard: keys owned by two sites commit across exactly those
// two sites, with the serving node coordinating when it owns one of them.
func TestKeyedCrossShard(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	a := api(nodes[1])
	s := &Session{api: a, touched: map[int]bool{}}

	kLocal := keyOwnedBy(t, a.Router, 1, "local")
	kRemote := keyOwnedBy(t, a.Router, 3, "remote")
	reply := s.Execute("BEGIN")
	txid := strings.TrimPrefix(reply, "OK ")
	if got := s.Execute("PUTK " + kLocal + " a"); got != "OK" {
		t.Fatalf("PUTK local = %q", got)
	}
	if got := s.Execute("PUTK " + kRemote + " b"); got != "OK" {
		t.Fatalf("PUTK remote = %q", got)
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	if got := nodes[1].site.Participants(txid); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("participants = %v, want [1 3]", got)
	}
	if got := nodes[2].site.Participants(txid); got != nil {
		t.Fatalf("bystander site 2 joined the commit: %v", got)
	}
	waitRead(t, nodes[1].store, kLocal, "a")
	waitRead(t, nodes[3].store, kRemote, "b")
}

// TestKeyedReadYourWrites: a key committed through one node is readable
// key-addressed through another node.
func TestKeyedReadYourWrites(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	writer := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	key := keyOwnedBy(t, api(nodes[1]).Router, 3, "ryw")
	writer.Execute("BEGIN")
	if got := writer.Execute("PUTK " + key + " seen"); got != "OK" {
		t.Fatalf("PUTK = %q", got)
	}
	if got := writer.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	waitRead(t, nodes[3].store, key, "seen")

	reader := &Session{api: api(nodes[2]), touched: map[int]bool{}}
	reader.Execute("BEGIN")
	if got := reader.Execute("GETK " + key); got != "VAL seen" {
		t.Fatalf("GETK via other node = %q", got)
	}
	reader.Execute("ABORT")
}

// TestKeyedEmptyCommit: a transaction that touched nothing commits trivially
// without engaging any engine.
func TestKeyedEmptyCommit(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	reply := s.Execute("BEGIN")
	txid := strings.TrimPrefix(reply, "OK ")
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("empty COMMIT = %q", got)
	}
	for id, nd := range nodes {
		if got := nd.site.Participants(txid); got != nil {
			t.Fatalf("site %d tracked an empty transaction: %v", id, got)
		}
	}
}

// TestKeyedWithoutRouter: the keyed verbs fail cleanly on a node with no
// shard map.
func TestKeyedWithoutRouter(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	a := api(nodes[1])
	a.Router = nil
	s := &Session{api: a, touched: map[int]bool{}}
	s.Execute("BEGIN")
	if got := s.Execute("PUTK k v"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("PUTK without router = %q", got)
	}
	s.Execute("ABORT")
}

// TestKeyedVersionMismatch: a node routing under a stale shard map is
// rejected by the owner site instead of silently misplacing data.
func TestKeyedVersionMismatch(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	a := api(nodes[1])
	nodes[1].client.MapVersion = 99 // stale router
	defer func() { nodes[1].client.MapVersion = a.Router.Map.Version }()
	s := &Session{api: a, touched: map[int]bool{}}
	key := keyOwnedBy(t, a.Router, 2, "stale")
	s.Execute("BEGIN")
	got := s.Execute("PUTK " + key + " v")
	if !strings.HasPrefix(got, "ERR") || !strings.Contains(got, "version mismatch") {
		t.Fatalf("stale-map PUTK = %q, want version mismatch error", got)
	}
	s.Execute("ABORT")
}
