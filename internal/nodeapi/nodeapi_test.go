package nodeapi

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/kv"
	"nbcommit/internal/remote"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// node bundles one in-process site with its data plane, as kvnode wires it.
type node struct {
	id     int
	store  *kv.Store
	site   *engine.Site
	client *remote.Client
}

// testCluster builds n nodes over the in-memory network with the oracle
// detector (the node wiring minus TCP and heartbeats).
func testCluster(t *testing.T, n int) (map[int]*node, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork()
	det := failure.NewOracle(net)
	nodes := map[int]*node{}
	for i := 1; i <= n; i++ {
		i := i
		ep := net.Endpoint(i)
		store := kv.NewStore(kv.Options{LockTimeout: 50 * time.Millisecond})
		server := &remote.Server{Store: store, Send: ep.Send}
		client := remote.NewClient(ep.Send, 300*time.Millisecond)
		site, err := engine.New(engine.Config{
			ID:       i,
			Endpoint: ep,
			Log:      wal.NewMemoryLog(),
			Resource: dtx.StoreResource{Store: store},
			Detector: det,
			Protocol: engine.ThreePhase,
			Timeout:  60 * time.Millisecond,
			Unhandled: func(m transport.Message) {
				switch m.Kind {
				case remote.KindOp:
					go server.Handle(m)
				case remote.KindReply:
					client.Deliver(m)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		site.Start()
		nodes[i] = &node{id: i, store: store, site: site, client: client}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.site.Stop()
		}
	})
	return nodes, net
}

// waitRead polls a store until key holds want (COMMITTED means the decision
// is durable at the coordinator; participants apply it asynchronously).
func waitRead(t *testing.T, store *kv.Store, key, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := store.Read(key); ok && v == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, ok := store.Read(key)
	t.Fatalf("%s = %q/%v, want %q", key, v, ok, want)
}

// waitGone polls until key disappears from the store.
func waitGone(t *testing.T, store *kv.Store, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := store.Read(key); !ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s still present", key)
}

func api(nd *node) *API {
	return &API{
		Self: nd.id, Site: nd.site, Store: nd.store,
		Client: nd.client, Timeout: 60 * time.Millisecond,
	}
}

func TestSessionLifecycle(t *testing.T) {
	nodes, _ := testCluster(t, 3)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}

	reply := s.Execute("BEGIN")
	if !strings.HasPrefix(reply, "OK tx-1-") {
		t.Fatalf("BEGIN = %q", reply)
	}
	if got := s.Execute("PUT 2 color blue"); got != "OK" {
		t.Fatalf("PUT = %q", got)
	}
	if got := s.Execute("PUT 3 shape round here"); got != "OK" {
		t.Fatalf("PUT multiword = %q", got)
	}
	if got := s.Execute("GET 2 color"); got != "VAL blue" {
		t.Fatalf("GET = %q", got)
	}
	if got := s.Execute("GET 3 shape"); got != "VAL round here" {
		t.Fatalf("GET multiword = %q", got)
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	// Data becomes durable at the remote stores.
	waitRead(t, nodes[2].store, "color", "blue")
	waitRead(t, nodes[3].store, "shape", "round here")

	// Second transaction on the same session: delete.
	s.Execute("BEGIN")
	if got := s.Execute("DEL 2 color"); got != "OK" {
		t.Fatalf("DEL = %q", got)
	}
	if got := s.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	waitGone(t, nodes[2].store, "color")
}

func TestSessionErrors(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}

	for line, wantPrefix := range map[string]string{
		"":          "ERR empty",
		"NOPE":      "ERR unknown command",
		"PUT 2 k v": "ERR no open transaction",
		"GET 2 k":   "ERR no open transaction",
		"COMMIT":    "ERR no open transaction",
		"ABORT":     "ERR no open transaction",
	} {
		if got := s.Execute(line); !strings.HasPrefix(got, wantPrefix) {
			t.Errorf("%q = %q, want prefix %q", line, got, wantPrefix)
		}
	}
	s.Execute("BEGIN")
	if got := s.Execute("BEGIN"); !strings.HasPrefix(got, "ERR transaction already open") {
		t.Fatalf("double BEGIN = %q", got)
	}
	if got := s.Execute("PUT x k v"); !strings.HasPrefix(got, "ERR bad site") {
		t.Fatalf("bad site = %q", got)
	}
	if got := s.Execute("PUT 2"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("short PUT = %q", got)
	}
	if got := s.Execute("PUT 2 k"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("valueless PUT = %q", got)
	}
	if got := s.Execute("GET 2 missing"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("missing key = %q", got)
	}
	if got := s.Execute("ABORT"); got != "OK" {
		t.Fatalf("ABORT = %q", got)
	}
}

func TestSessionAbortRollsBack(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	s.Execute("BEGIN")
	s.Execute("PUT 2 k v")
	if got := s.Execute("ABORT"); got != "OK" {
		t.Fatalf("ABORT = %q", got)
	}
	if _, ok := nodes[2].store.Read("k"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestSessionCleanupAbortsOpenTxn(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	s.Execute("BEGIN")
	s.Execute("PUT 2 k v")
	s.Cleanup() // connection dropped
	if _, ok := nodes[2].store.Read("k"); ok {
		t.Fatal("dangling write after cleanup")
	}
	if p := nodes[2].store.Pending(); len(p) != 0 {
		t.Fatalf("pending transactions after cleanup: %v", p)
	}
}

func TestSessionLockConflictSurfacesAsError(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	s1 := &Session{api: api(nodes[1]), touched: map[int]bool{}}
	s2 := &Session{api: api(nodes[2]), touched: map[int]bool{}}
	s1.Execute("BEGIN")
	if got := s1.Execute("PUT 2 hot v1"); got != "OK" {
		t.Fatalf("s1 PUT = %q", got)
	}
	s2.Execute("BEGIN")
	if got := s2.Execute("PUT 2 hot v2"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("conflicting PUT = %q", got)
	}
	s2.Execute("ABORT")
	if got := s1.Execute("COMMIT"); got != "COMMITTED" {
		t.Fatalf("s1 COMMIT = %q", got)
	}
	waitRead(t, nodes[2].store, "hot", "v1")
}

func TestServeOverRealConnection(t *testing.T) {
	nodes, _ := testCluster(t, 2)
	a := api(nodes[1])
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			a.Serve(conn)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(reply)
	}
	if got := send("BEGIN"); !strings.HasPrefix(got, "OK") {
		t.Fatalf("BEGIN = %q", got)
	}
	if got := send("PUT 2 wire works"); got != "OK" {
		t.Fatalf("PUT = %q", got)
	}
	if got := send("COMMIT"); got != "COMMITTED" {
		t.Fatalf("COMMIT = %q", got)
	}
	waitRead(t, nodes[2].store, "wire", "works")
}
