package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
	"nbcommit/internal/sim"
	"nbcommit/internal/workload"
)

// Tab1 rows: blocking probability under a coordinator crash drawn uniformly
// over the protocol window, per cohort size. The paper's headline made
// quantitative: 2PC blocks with substantial probability, 3PC never.
type Tab1Row struct {
	N            int
	TwoPCBlocked float64
	ThreePC      float64
	Inconsistent int // across both protocols; must be 0
}

// Tab1BlockingProbability runs the coordinator-crash sweep.
func Tab1BlockingProbability(ns []int, trials int, seed int64) ([]Tab1Row, string) {
	var rows []Tab1Row
	var b strings.Builder
	b.WriteString("T1: blocking probability under coordinator crash (uniform over 20ms window)\n")
	b.WriteString("  n     2PC blocked   3PC blocked   inconsistent\n")
	for _, n := range ns {
		two := sim.CoordinatorCrashSweep(sim.Central2PC, n, trials, seed, 20*sim.Millisecond)
		three := sim.CoordinatorCrashSweep(sim.Central3PC, n, trials, seed, 20*sim.Millisecond)
		row := Tab1Row{
			N:            n,
			TwoPCBlocked: two.BlockedFrac,
			ThreePC:      three.BlockedFrac,
			Inconsistent: two.Inconsistent + three.Inconsistent,
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "  %-5d %10.1f%%  %10.1f%%   %d\n",
			n, 100*row.TwoPCBlocked, 100*row.ThreePC, row.Inconsistent)
	}
	return rows, b.String()
}

// Tab2Row: availability under k random site crashes — the fraction of
// trials in which every operational site terminated the transaction.
type Tab2Row struct {
	Protocol     string
	K            int
	Terminated   float64
	Inconsistent int
}

// Tab2Availability runs the random-crash sweep for each protocol and
// failure count.
func Tab2Availability(n int, ks []int, trials int, seed int64) ([]Tab2Row, string) {
	var rows []Tab2Row
	var b strings.Builder
	fmt.Fprintf(&b, "T2: termination availability, n=%d, k random crashes\n", n)
	b.WriteString("  protocol             k   all-operational-terminated   inconsistent\n")
	for _, proto := range []sim.Protocol{sim.Central2PC, sim.Central3PC, sim.Decentral2PC, sim.Decentral3PC} {
		for _, k := range ks {
			st := sim.RandomCrashSweep(proto, n, k, trials, seed, 20*sim.Millisecond)
			terminated := 1 - float64(st.Blocked+st.Undecided)/float64(st.Trials)
			rows = append(rows, Tab2Row{
				Protocol: proto.String(), K: k,
				Terminated: terminated, Inconsistent: st.Inconsistent,
			})
			fmt.Fprintf(&b, "  %-20s %d   %8.1f%%                    %d\n",
				proto, k, 100*terminated, st.Inconsistent)
		}
	}
	return rows, b.String()
}

// Tab3Row: failure-free message cost.
type Tab3Row struct {
	N          int
	C2PC, C3PC int
	D2PC, D3PC int
	Linear     int
}

// Tab3MessageCost counts failure-free messages per protocol and size.
// Expected: central linear (3(n-1) vs 5(n-1)), decentralized quadratic
// (n(n-1) vs 2n(n-1)).
func Tab3MessageCost(ns []int) ([]Tab3Row, string) {
	var rows []Tab3Row
	var b strings.Builder
	b.WriteString("T3: failure-free message cost per commit\n")
	b.WriteString("  n     linear c2PC   c3PC   d2PC    d3PC\n")
	for _, n := range ns {
		row := Tab3Row{
			N:      n,
			C2PC:   sim.FailureFree(sim.Central2PC, n, 1).Messages,
			C3PC:   sim.FailureFree(sim.Central3PC, n, 1).Messages,
			D2PC:   sim.FailureFree(sim.Decentral2PC, n, 1).Messages,
			D3PC:   sim.FailureFree(sim.Decentral3PC, n, 1).Messages,
			Linear: sim.FailureFree(sim.Linear2PC, n, 1).Messages,
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "  %-5d %-6d %-6d %-6d %-7d %-7d\n",
			n, row.Linear, row.C2PC, row.C3PC, row.D2PC, row.D3PC)
	}
	return rows, b.String()
}

// Tab4Row: failure-free commit latency (virtual time).
type Tab4Row struct {
	N                      int
	C2PC, C3PC, D2PC, D3PC sim.Time
	Linear                 sim.Time
}

// Tab4Latency measures the mean failure-free completion time: 3PC pays one
// extra round; decentralized variants need fewer sequential hops.
func Tab4Latency(ns []int, trials int, seed int64) ([]Tab4Row, string) {
	var rows []Tab4Row
	var b strings.Builder
	b.WriteString("T4: failure-free commit latency (virtual ms, mean)\n")
	b.WriteString("  n     linear  c2PC    c3PC    d2PC    d3PC\n")
	ms := func(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }
	for _, n := range ns {
		row := Tab4Row{
			N:      n,
			C2PC:   sim.CommitLatency(sim.Central2PC, n, trials, seed),
			C3PC:   sim.CommitLatency(sim.Central3PC, n, trials, seed),
			D2PC:   sim.CommitLatency(sim.Decentral2PC, n, trials, seed),
			D3PC:   sim.CommitLatency(sim.Decentral3PC, n, trials, seed),
			Linear: sim.CommitLatency(sim.Linear2PC, n, trials, seed),
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "  %-5d %-7.2f %-7.2f %-7.2f %-7.2f %-7.2f\n",
			n, ms(row.Linear), ms(row.C2PC), ms(row.C3PC), ms(row.D2PC), ms(row.D3PC))
	}
	return rows, b.String()
}

// Tab5Row: goroutine-runtime throughput on the bank workload.
type Tab5Row struct {
	Protocol   string
	Committed  int
	Aborted    int
	PerSecond  float64
	MeanCommit time.Duration
}

// Tab5Throughput drives the real runtime (engine + kv + WAL + in-memory
// transport) with the bank-transfer workload, across both protocols and
// both paradigms.
func Tab5Throughput(n, txns int, seed int64) ([]Tab5Row, string) {
	var rows []Tab5Row
	var b strings.Builder
	fmt.Fprintf(&b, "T5: runtime throughput, bank transfers, n=%d sites, %d txns\n", n, txns)
	b.WriteString("  protocol                     committed  aborted   txn/s      mean-latency\n")
	for _, paradigm := range []dtx.Paradigm{dtx.CentralSite, dtx.Decentralized} {
		for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
			row := runBank(kind, paradigm, n, txns, seed)
			rows = append(rows, row)
			fmt.Fprintf(&b, "  %-28s %-10d %-8d %-10.0f %v\n",
				row.Protocol, row.Committed, row.Aborted, row.PerSecond, row.MeanCommit)
		}
	}
	return rows, b.String()
}

func runBank(kind engine.ProtocolKind, paradigm dtx.Paradigm, n, txns int, seed int64) Tab5Row {
	cluster, err := dtx.NewCluster(n, dtx.Options{
		Protocol:    kind,
		Paradigm:    paradigm,
		Timeout:     250 * time.Millisecond,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Stop()
	gen := workload.NewBank(n, 64, seed)
	start := time.Now()
	var committed, aborted int
	var total time.Duration
	for i := 0; i < txns; i++ {
		w := gen.Next()
		tx, err := cluster.Begin(w.Coordinator)
		if err != nil {
			aborted++
			continue
		}
		failed := false
		for _, op := range w.Ops {
			if err := tx.Put(op.Site, op.Key, op.Value); err != nil {
				failed = true
				break
			}
		}
		if failed {
			tx.Abort()
			aborted++
			continue
		}
		t0 := time.Now()
		o, err := tx.Commit(5 * time.Second)
		if err == nil && o == engine.OutcomeCommitted {
			committed++
			total += time.Since(t0)
		} else {
			aborted++
		}
	}
	elapsed := time.Since(start)
	row := Tab5Row{
		Protocol:  fmt.Sprintf("%s %s", paradigm, kind),
		Committed: committed, Aborted: aborted,
	}
	if elapsed > 0 {
		row.PerSecond = float64(txns) / elapsed.Seconds()
	}
	if committed > 0 {
		row.MeanCommit = total / time.Duration(committed)
	}
	return row
}

// Tab6Recovery exercises crash+recovery end to end: commit with a
// participant crashing mid-protocol, recover it, and check that the store
// state matches the cohort's. Returns the number of trials and failures.
func Tab6Recovery(trials int) (failures int, report string) {
	var b strings.Builder
	fmt.Fprintf(&b, "T6: recovery correctness over %d crash/recover trials\n", trials)
	for i := 0; i < trials; i++ {
		if err := recoveryTrial(i); err != nil {
			failures++
			fmt.Fprintf(&b, "  trial %d FAILED: %v\n", i, err)
		}
	}
	fmt.Fprintf(&b, "  failures: %d/%d\n", failures, trials)
	return failures, b.String()
}

func recoveryTrial(i int) error {
	cluster, err := dtx.NewCluster(3, dtx.Options{
		Protocol: engine.ThreePhase,
		Timeout:  40 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()
	tx, err := cluster.Begin(1)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("k%d", i)
	if err := tx.Put(2, key, "v"); err != nil {
		return err
	}
	if err := tx.Put(3, key, "v"); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() { defer close(done); tx.Commit(5 * time.Second) }()
	// Crash participant 3 at a pseudo-random point in the protocol.
	time.Sleep(time.Duration(i%7) * 3 * time.Millisecond)
	cluster.Crash(3)
	<-done
	o2, err := cluster.Node(2).Site.WaitOutcome(tx.ID, 5*time.Second)
	if err != nil {
		return fmt.Errorf("site 2: %w", err)
	}
	if err := cluster.Recover(3); err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		o3, err := cluster.Node(3).Site.Outcome(tx.ID)
		if err == nil && o3 != engine.OutcomePending {
			if o3 != o2 {
				return fmt.Errorf("mixed outcomes: site2=%v site3=%v", o2, o3)
			}
			v3, ok := cluster.Node(3).Store.Read(key)
			if o2 == engine.OutcomeCommitted && (!ok || v3 != "v") {
				return fmt.Errorf("committed but site 3 store = %q/%v", v3, ok)
			}
			if o2 == engine.OutcomeAborted && ok {
				return fmt.Errorf("aborted but site 3 kept the write")
			}
			return nil
		}
		if err != nil && !strings.Contains(err.Error(), "does not know") {
			// A site that crashed before learning of the transaction has
			// nothing to recover; its store must simply lack the key.
			return err
		}
		if err != nil {
			// Site 3 never heard of the transaction: acceptable only if the
			// cohort aborted.
			if o2 == engine.OutcomeAborted {
				return nil
			}
			// Committed: the vote of site 3 was required. Keep waiting for
			// the record to appear (it must exist).
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("site 3 never resolved (site2=%v)", o2)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Abl1BackupPhase1 is the ablation for phase 1 of the backup protocol: with
// the deterministic schedule of the paper's failure argument, skipping
// phase 1 yields an inconsistent run; keeping it never does.
func Abl1BackupPhase1() (withViolations, withoutViolations int, report string) {
	base := sim.Config{
		N: 4, Protocol: sim.Central3PC, Seed: 7,
		LatencyMin: sim.Millisecond, LatencyMax: sim.Millisecond,
		Stagger: 2 * sim.Millisecond,
		CrashAt: map[int]sim.Time{
			1: 9 * sim.Millisecond,
			2: 15 * sim.Millisecond,
			3: 15*sim.Millisecond + 500*sim.Microsecond,
		},
	}
	with := sim.RunTransaction(base)
	base.SkipBackupPhase1 = true
	without := sim.RunTransaction(base)
	if !with.Consistent {
		withViolations++
	}
	if !without.Consistent {
		withoutViolations++
	}
	var b strings.Builder
	b.WriteString("A1: ablation — skip phase 1 of the backup protocol\n")
	fmt.Fprintf(&b, "  with phase 1:    consistent=%v\n", with.Consistent)
	fmt.Fprintf(&b, "  without phase 1: consistent=%v (mixed commit+abort=%v)\n",
		without.Consistent, without.Committed && without.Aborted)
	return withViolations, withoutViolations, b.String()
}

// Abl2NoBufferState ties the theory to the measurements: removing the
// buffer state (i.e. running 2PC) reintroduces exactly the blocking the
// theorem predicts.
func Abl2NoBufferState(trials int, seed int64) (twoBlocked, threeBlocked float64, report string) {
	two := sim.CoordinatorCrashSweep(sim.Central2PC, 4, trials, seed, 20*sim.Millisecond)
	three := sim.CoordinatorCrashSweep(sim.Central3PC, 4, trials, seed, 20*sim.Millisecond)
	var b strings.Builder
	b.WriteString("A2: ablation — remove the buffer state (3PC -> 2PC)\n")
	fmt.Fprintf(&b, "  theorem: 2PC violates both conditions at w; 3PC satisfies both\n")
	fmt.Fprintf(&b, "  measured blocking: with buffer state %.2f%%, without %.2f%%\n",
		100*three.BlockedFrac, 100*two.BlockedFrac)
	return two.BlockedFrac, three.BlockedFrac, b.String()
}

// Abl3PartitionQuorum steps outside the paper's model: its network "never
// fails", and A3 shows why that assumption is load-bearing. Under a network
// partition placed anywhere in the protocol window, plain 3PC termination
// can commit on one side and abort on the other; the quorum-based extension
// (the paper's [SKEE81a] reference) never loses atomicity — minority groups
// block instead.
func Abl3PartitionQuorum(points int) (plainViolations, quorumViolations, quorumBlocked int, report string) {
	for i := 0; i < points; i++ {
		at := sim.Time(i)*100*sim.Microsecond + 1
		base := sim.Config{
			N: 5, Seed: 3,
			LatencyMin: sim.Millisecond, LatencyMax: sim.Millisecond,
			Stagger:         2 * sim.Millisecond,
			PartitionAt:     at,
			PartitionGroups: [][]int{{1, 2}, {3, 4, 5}},
		}
		base.Protocol = sim.Central3PC
		if res := sim.RunTransaction(base); !res.Consistent {
			plainViolations++
		}
		base.Protocol = sim.Quorum3PC
		res := sim.RunTransaction(base)
		if !res.Consistent {
			quorumViolations++
		}
		if res.Blocked {
			quorumBlocked++
		}
	}
	var b strings.Builder
	b.WriteString("A3: extension — partitions (outside the paper's model) and the quorum fix\n")
	fmt.Fprintf(&b, "  partition times swept: %d (every 100us across the window)\n", points)
	fmt.Fprintf(&b, "  plain 3PC atomicity violations:  %d\n", plainViolations)
	fmt.Fprintf(&b, "  quorum 3PC atomicity violations: %d (minority blocked in %d sweeps)\n",
		quorumViolations, quorumBlocked)
	return plainViolations, quorumViolations, quorumBlocked, report + b.String()
}

// Tab7Row: survivor termination time as a function of coordinator MTTR.
type Tab7Row struct {
	MTTR       sim.Time
	TwoPCDone  sim.Time // when the last survivor terminated, 2PC
	ThreePDone sim.Time // same, 3PC
}

// Tab7BlockedTimeVsMTTR quantifies the cost of blocking: the coordinator
// crashes inside the uncertainty window and is repaired after MTTR. Under
// 2PC the survivors terminate only when the coordinator returns (blocked
// time ≈ MTTR); under 3PC they terminate in constant time (failure
// detection + termination protocol), independent of MTTR.
func Tab7BlockedTimeVsMTTR(mttrs []sim.Time, seed int64) ([]Tab7Row, string) {
	survivorDone := func(proto sim.Protocol, mttr sim.Time) sim.Time {
		crash := sim.Millisecond + 500*sim.Microsecond
		res := sim.RunTransaction(sim.Config{
			N: 3, Protocol: proto, Seed: seed,
			LatencyMin: sim.Millisecond, LatencyMax: sim.Millisecond,
			CrashAt:  map[int]sim.Time{1: crash},
			RepairAt: map[int]sim.Time{1: crash + mttr},
		})
		var last sim.Time
		for id, so := range res.Sites {
			if id != 1 && so.DecidedAt > last {
				last = so.DecidedAt
			}
		}
		return last
	}
	var rows []Tab7Row
	var b strings.Builder
	b.WriteString("T7: survivor termination time vs coordinator MTTR (virtual ms)\n")
	b.WriteString("  mttr    2PC-done   3PC-done\n")
	ms := func(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }
	for _, mttr := range mttrs {
		row := Tab7Row{
			MTTR:       mttr,
			TwoPCDone:  survivorDone(sim.Central2PC, mttr),
			ThreePDone: survivorDone(sim.Central3PC, mttr),
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "  %-7.0f %-10.2f %-10.2f\n", ms(mttr), ms(row.TwoPCDone), ms(row.ThreePDone))
	}
	return rows, b.String()
}

// Tab8Row: contention behavior of the runtime under a skewed workload.
type Tab8Row struct {
	Policy    string
	Clients   int
	Committed int
	Aborted   int
	AbortPct  float64
	PerSecond float64
}

// Tab8Contention drives concurrent clients over a small, Zipf-skewed
// keyspace and compares the two deadlock-handling policies of the store:
// lock-wait timeouts (the paper's "resolution of a deadlock, when a locking
// scheme is adopted" — slow but forgiving) and wait-die (immediate death of
// the younger transaction — deadlock-free, more aborts, no timeout
// latency). Aborted transactions are the unilateral NO votes the commit
// protocols exist to handle.
func Tab8Contention(sites, clients, txnsPerClient int, seed int64) ([]Tab8Row, string) {
	var rows []Tab8Row
	var b strings.Builder
	fmt.Fprintf(&b, "T8: contention (Zipf keys, %d sites, %d clients x %d txns, 3PC)\n",
		sites, clients, txnsPerClient)
	b.WriteString("  policy     committed  aborted  abort%   txn/s\n")
	for _, pol := range []kv.DeadlockPolicy{kv.TimeoutPolicy, kv.WaitDiePolicy} {
		row := runContention(pol, sites, clients, txnsPerClient, seed)
		rows = append(rows, row)
		fmt.Fprintf(&b, "  %-10s %-10d %-8d %-8.1f %-8.0f\n",
			row.Policy, row.Committed, row.Aborted, row.AbortPct, row.PerSecond)
	}
	return rows, b.String()
}

func runContention(pol kv.DeadlockPolicy, sites, clients, txnsPerClient int, seed int64) Tab8Row {
	cluster, err := dtx.NewCluster(sites, dtx.Options{
		Protocol:    engine.ThreePhase,
		Timeout:     250 * time.Millisecond,
		LockTimeout: 20 * time.Millisecond,
		Policy:      pol,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Stop()

	var committed, aborted atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewKV(workload.Config{
				Sites: sites, KeysPerSite: 8, OpsPerTxn: 2,
				Zipf: true, Seed: seed + int64(c),
			})
			for i := 0; i < txnsPerClient; i++ {
				w := gen.Next()
				tx, err := cluster.Begin(w.Coordinator)
				if err != nil {
					aborted.Add(1)
					continue
				}
				failed := false
				for _, op := range w.Ops {
					if op.Read {
						_, err = tx.Get(op.Site, op.Key)
						if err != nil && !strings.Contains(err.Error(), "not found") {
							failed = true
							break
						}
						continue
					}
					if err := tx.Put(op.Site, op.Key, op.Value); err != nil {
						failed = true
						break
					}
				}
				if failed {
					tx.Abort()
					aborted.Add(1)
					continue
				}
				if o, err := tx.Commit(5 * time.Second); err == nil && o == engine.OutcomeCommitted {
					committed.Add(1)
				} else {
					aborted.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := committed.Load() + aborted.Load()
	name := "timeout"
	if pol == kv.WaitDiePolicy {
		name = "wait-die"
	}
	row := Tab8Row{
		Policy: name, Clients: clients,
		Committed: int(committed.Load()), Aborted: int(aborted.Load()),
	}
	if total > 0 {
		row.AbortPct = 100 * float64(aborted.Load()) / float64(total)
	}
	if elapsed > 0 {
		row.PerSecond = float64(total) / elapsed.Seconds()
	}
	return row
}
