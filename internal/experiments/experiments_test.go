package experiments

import (
	"strings"
	"testing"
)

// TestFigureReports smoke-tests every figure generator: nonempty reports
// with the paper's headline phrases.
func TestFigureReports(t *testing.T) {
	checks := []struct {
		report string
		want   []string
	}{
		{Fig1CentralSite2PC(3), []string{"F1", "2 phases", "unilateral abort: true"}},
		{Fig3ConcurrencySets([]int{2, 3}), []string{"CS(w)={a,c,q,w}", "CS(c)={c,w}"}},
		{Fig4TheoremOn2PC(3), []string{"nonblocking=false", "condition-1", "condition-2"}},
		{Fig5Synthesis(3), []string{"equals canonical 3PC: true", "equals slide-35 3PC: true"}},
		{Fig6ThreePCNonblocking([]int{2}), []string{"nonblocking=true", "s1:{c,p}"}},
		{Fig7TerminationRule(), []string{"backup in p -> commit", "backup in w -> abort"}},
		{Fig8Resilience(3), []string{"[1 2 3] of 3", "[] of 3"}},
	}
	for i, c := range checks {
		for _, w := range c.want {
			if !strings.Contains(c.report, w) {
				t.Errorf("report %d missing %q:\n%s", i, w, c.report)
			}
		}
	}
	stats, rep := Fig2ReachableGraph2PC()
	if stats.States != 9 || !strings.Contains(rep, "global states 9") {
		t.Errorf("F2 = %+v\n%s", stats, rep)
	}
}

// TestTableReports runs every quantitative experiment at reduced scale and
// asserts the paper's shapes.
func TestTableReports(t *testing.T) {
	rows1, rep1 := Tab1BlockingProbability([]int{3}, 200, 7)
	if len(rows1) != 1 || rows1[0].Inconsistent != 0 || rows1[0].ThreePC != 0 ||
		rows1[0].TwoPCBlocked == 0 || !strings.Contains(rep1, "T1") {
		t.Errorf("T1 = %+v", rows1)
	}

	rows2, _ := Tab2Availability(5, []int{1}, 150, 7)
	for _, r := range rows2 {
		if r.Inconsistent != 0 {
			t.Errorf("T2 %s inconsistent", r.Protocol)
		}
		if strings.Contains(r.Protocol, "3PC") && r.Terminated < 1 {
			t.Errorf("T2 %s terminated %.2f", r.Protocol, r.Terminated)
		}
	}

	rows3, _ := Tab3MessageCost([]int{2, 4})
	for _, r := range rows3 {
		if r.C2PC != 3*(r.N-1) || r.D3PC != 2*r.N*(r.N-1) {
			t.Errorf("T3 row %+v", r)
		}
	}

	rows4, _ := Tab4Latency([]int{3}, 20, 7)
	if len(rows4) != 1 || rows4[0].C3PC <= rows4[0].C2PC {
		t.Errorf("T4 = %+v", rows4)
	}

	rows5, _ := Tab5Throughput(3, 30, 7)
	if len(rows5) != 4 {
		t.Fatalf("T5 rows = %d", len(rows5))
	}
	for _, r := range rows5 {
		if r.Committed == 0 {
			t.Errorf("T5 %s committed nothing", r.Protocol)
		}
	}

	if failures, rep := Tab6Recovery(4); failures != 0 {
		t.Errorf("T6 failures:\n%s", rep)
	}
}

// TestAblationReports asserts both ablations break/hold exactly as the
// paper predicts.
func TestAblationReports(t *testing.T) {
	withV, withoutV, rep := Abl1BackupPhase1()
	if withV != 0 || withoutV == 0 {
		t.Errorf("A1 = %d/%d\n%s", withV, withoutV, rep)
	}
	two, three, _ := Abl2NoBufferState(200, 7)
	if three != 0 || two == 0 {
		t.Errorf("A2 = %.3f/%.3f", two, three)
	}
	plain, quorum, blocked, _ := Abl3PartitionQuorum(150)
	if quorum != 0 || plain == 0 || blocked == 0 {
		t.Errorf("A3 = plain %d quorum %d blocked %d", plain, quorum, blocked)
	}
}

// TestContention: both deadlock policies make progress under a skewed
// workload; wait-die trades aborts for latency.
func TestContention(t *testing.T) {
	rows, rep := Tab8Contention(3, 4, 20, 7)
	if len(rows) != 2 || !strings.Contains(rep, "T8") {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r.Committed == 0 {
			t.Errorf("%s committed nothing: %+v", r.Policy, r)
		}
		if r.Committed+r.Aborted != 4*20 {
			t.Errorf("%s lost transactions: %+v", r.Policy, r)
		}
	}
}
