// Package experiments regenerates every figure and table of the paper's
// evaluation (and the claims its prose makes quantitative). Each function
// returns a printable report; cmd/benchfig prints them, the repository's
// bench_test.go measures them, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"nbcommit/internal/core"
	"nbcommit/internal/protocol"
)

func mustGraph(p *protocol.Protocol) *core.Graph {
	g, err := core.Build(p, core.BuildOptions{})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return g
}

// Fig1CentralSite2PC reproduces slide 15: the coordinator and slave FSAs of
// the central-site 2PC, machine-validated (structure, acyclicity,
// irreversible finals, unilateral abort, phase count, synchrony).
func Fig1CentralSite2PC(n int) string {
	p := protocol.CentralTwoPC(n)
	var b strings.Builder
	fmt.Fprintf(&b, "F1: %s (slide 15)\n", p.Name)
	if err := protocol.Validate(p); err != nil {
		fmt.Fprintf(&b, "  INVALID: %v\n", err)
		return b.String()
	}
	phases, _ := protocol.Phases(p)
	fmt.Fprintf(&b, "  validated FSAs: coordinator + %d slaves, %d phases\n", n-1, phases)
	fmt.Fprintf(&b, "  unilateral abort: %v (1PC fails this: %v)\n",
		protocol.CheckUnilateralAbort(p) == nil,
		protocol.CheckUnilateralAbort(protocol.OnePC(n)) != nil)
	ok, _, err := core.SynchronousWithinOne(p, core.BuildOptions{})
	fmt.Fprintf(&b, "  synchronous within one transition: %v (err=%v)\n", ok, err)
	slaveEq := core.StructurallyEquivalent(p.Sites[1], protocol.CanonicalTwoPC())
	fmt.Fprintf(&b, "  slave skeleton == canonical 2PC (slide 31): %v\n", slaveEq)
	return b.String()
}

// Fig2ReachableGraph2PC reproduces slide 18: the reachable state graph for
// the 2-site 2PC.
func Fig2ReachableGraph2PC() (core.Stats, string) {
	g := mustGraph(protocol.CentralTwoPC(2))
	s := g.Stats()
	var b strings.Builder
	b.WriteString("F2: reachable state graph, 2-site central 2PC (slide 18)\n")
	fmt.Fprintf(&b, "  global states %d, edges %d, final %d (commit %d / abort %d)\n",
		s.States, s.Edges, s.FinalStates, s.CommitFinal, s.AbortFinal)
	fmt.Fprintf(&b, "  inconsistent %d, deadlocked %d (both must be 0)\n", s.Inconsistent, s.Deadlocked)
	for _, n := range g.SortedNodes() {
		fmt.Fprintf(&b, "    %s\n", n)
	}
	return s, b.String()
}

// Fig3ConcurrencySets reproduces slide 32: the concurrency sets of the
// canonical 2PC, computed from the reachable graph for each n.
func Fig3ConcurrencySets(ns []int) string {
	var b strings.Builder
	b.WriteString("F3: concurrency sets of the canonical 2PC (slide 32)\n")
	b.WriteString("  paper: CS(q)={q,w,a}  CS(w)={q,w,a,c}  CS(a)={q,w,a}  CS(c)={w,c}\n")
	for _, n := range ns {
		a := core.Analyze(mustGraph(protocol.DecentralizedTwoPC(n)))
		parts := make([]string, 0, 4)
		for _, s := range []protocol.StateID{"q", "w", "a", "c"} {
			cs, err := a.Set(1, s)
			if err != nil {
				parts = append(parts, fmt.Sprintf("CS(%s)=ERR", s))
				continue
			}
			names := cs.Names()
			strs := make([]string, len(names))
			for i, x := range names {
				strs[i] = string(x)
			}
			parts = append(parts, fmt.Sprintf("CS(%s)={%s}", s, strings.Join(strs, ",")))
		}
		fmt.Fprintf(&b, "  n=%d: %s\n", n, strings.Join(parts, "  "))
	}
	return b.String()
}

// Fig4TheoremOn2PC reproduces slides 28/33: both 2PC paradigms violate both
// conditions of the fundamental nonblocking theorem, at state w only.
func Fig4TheoremOn2PC(n int) string {
	var b strings.Builder
	b.WriteString("F4: fundamental theorem on the 2PC paradigms (slides 28/33)\n")
	for _, p := range []*protocol.Protocol{
		protocol.CentralTwoPC(n), protocol.DecentralizedTwoPC(n),
	} {
		r := core.CheckTheorem(mustGraph(p))
		fmt.Fprintf(&b, "  %s: nonblocking=%v, violations=%d (all at w)\n",
			p.Name, r.Nonblocking(), len(r.Violations))
		kinds := map[core.ViolationKind]int{}
		for _, v := range r.Violations {
			kinds[v.Kind]++
			if v.State.State != protocol.StateW {
				fmt.Fprintf(&b, "    UNEXPECTED violation at %s\n", v.State)
			}
		}
		fmt.Fprintf(&b, "    condition-1 violations: %d, condition-2 violations: %d\n",
			kinds[core.MixedConcurrency], kinds[core.NoncommittableSeesCommit])
	}
	return b.String()
}

// Fig5Synthesis reproduces slide 34: inserting the buffer state p makes the
// canonical 2PC nonblocking, and the message-level construction applied to
// the central-site 2PC yields exactly the central-site 3PC.
func Fig5Synthesis(n int) string {
	var b strings.Builder
	b.WriteString("F5: buffer-state synthesis (slide 34)\n")
	skel, err := core.MakeNonblockingSkeleton(protocol.CanonicalTwoPC())
	if err != nil {
		fmt.Fprintf(&b, "  skeleton synthesis failed: %v\n", err)
		return b.String()
	}
	fmt.Fprintf(&b, "  canonical: lemma violations before=%d after=%d; equals canonical 3PC: %v\n",
		len(core.CheckLemma(protocol.CanonicalTwoPC())), len(core.CheckLemma(skel)),
		core.StructurallyEquivalent(skel, protocol.CanonicalThreePC()))
	syn, err := core.SynthesizeCentralBuffer(protocol.CentralTwoPC(n))
	if err != nil {
		fmt.Fprintf(&b, "  message-level synthesis failed: %v\n", err)
		return b.String()
	}
	r := core.CheckTheorem(mustGraph(syn))
	ref := protocol.CentralThreePC(n)
	same := true
	for i := range syn.Sites {
		if !core.StructurallyEquivalent(syn.Sites[i], ref.Sites[i]) {
			same = false
		}
	}
	fmt.Fprintf(&b, "  message-level (n=%d): nonblocking=%v, equals slide-35 3PC: %v\n",
		n, r.Nonblocking(), same)
	return b.String()
}

// Fig6ThreePCNonblocking reproduces slides 35/36: both 3PC protocols satisfy
// the theorem at every size checked, and have committable states {p, c}.
func Fig6ThreePCNonblocking(ns []int) string {
	var b strings.Builder
	b.WriteString("F6: 3PC satisfies the fundamental theorem (slides 35/36)\n")
	for _, n := range ns {
		for _, p := range []*protocol.Protocol{
			protocol.CentralThreePC(n), protocol.DecentralizedThreePC(n),
		} {
			r := core.CheckTheorem(mustGraph(p))
			fmt.Fprintf(&b, "  %s: nonblocking=%v, committable: %s\n",
				p.Name, r.Nonblocking(), core.CommittableSummary(r.Analysis))
		}
	}
	return b.String()
}

// Fig7TerminationRule reproduces slides 39/40: the backup coordinator's
// decision for every canonical state, derived from concurrency sets.
func Fig7TerminationRule() string {
	var b strings.Builder
	b.WriteString("F7: termination decision rule (slides 39/40)\n")
	b.WriteString("  paper: commit from {p, c}; abort from {q, w, a}\n")
	a := core.Analyze(mustGraph(protocol.DecentralizedThreePC(3)))
	for _, s := range []protocol.StateID{"q", "w", "p", "a", "c"} {
		d, err := core.TerminationRule(a, 1, s)
		if err != nil {
			fmt.Fprintf(&b, "  backup in %s -> ERR %v\n", s, err)
			continue
		}
		fmt.Fprintf(&b, "  backup in %s -> %s\n", s, d)
	}
	return b.String()
}

// Fig8Resilience reproduces slide 30's corollary: which sites obey the
// theorem per protocol — all of them for 3PC (nonblocking while one
// survives), only the coordinator for central 2PC, none for decentralized
// 2PC.
func Fig8Resilience(n int) string {
	var b strings.Builder
	b.WriteString("F8: k-resilience corollary (slide 30)\n")
	for _, p := range []*protocol.Protocol{
		protocol.CentralTwoPC(n), protocol.DecentralizedTwoPC(n),
		protocol.CentralThreePC(n), protocol.DecentralizedThreePC(n),
	} {
		good := core.CheckResilience(mustGraph(p))
		fmt.Fprintf(&b, "  %s: theorem-obeying sites %v of %d\n", p.Name, good, n)
	}
	return b.String()
}
