package chaos

import (
	"testing"
	"time"

	"nbcommit/internal/transport"
)

func TestTopologyGeometry(t *testing.T) {
	topo := DefaultWAN(3, 2)
	if topo.Sites() != 6 {
		t.Fatalf("sites = %d", topo.Sites())
	}
	if topo.Name != "wan-3x2" {
		t.Fatalf("name = %q", topo.Name)
	}
	wantRegion := map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2}
	for site, region := range wantRegion {
		if got := topo.Region(site); got != region {
			t.Fatalf("region(%d) = %d, want %d", site, got, region)
		}
	}
	if got := topo.RegionSites(1); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("regionSites(1) = %v", got)
	}
	// CrossPairs(0): 2 sites inside x 4 outside.
	pairs := topo.CrossPairs(0)
	if len(pairs) != 8 {
		t.Fatalf("crossPairs(0) = %d pairs, want 8", len(pairs))
	}
	for _, p := range pairs {
		if topo.Region(p[0]) != 0 || topo.Region(p[1]) == 0 {
			t.Fatalf("crossPairs(0) yielded %v", p)
		}
	}
}

// TestTopologyApply verifies the installed link models by measuring delivery
// delay: intra-region messages arrive within ~2ms, cross-region ones take tens
// of milliseconds.
func TestTopologyApply(t *testing.T) {
	topo := DefaultWAN(3, 2)
	cur := time.Unix(1000, 0)
	n := transport.NewSimNetwork()
	n.Seed(1)
	n.UseClock(func() time.Time { return cur })
	eps := map[int]transport.Endpoint{}
	for s := 1; s <= topo.Sites(); s++ {
		eps[s] = n.Endpoint(s)
	}
	topo.Apply(n)

	measure := func(from, to int) time.Duration {
		if err := eps[from].Send(transport.Message{To: to, Kind: "ping"}); err != nil {
			t.Fatal(err)
		}
		due, ok := n.NextDue()
		if !ok {
			t.Fatalf("%d->%d: message vanished", from, to)
		}
		d := due.Sub(cur)
		cur = cur.Add(time.Second) // make it deliverable and drain
		for {
			if _, ok := n.Take(0); !ok {
				break
			}
		}
		return d
	}

	if d := measure(1, 2); d < 500*time.Microsecond || d > 2*time.Millisecond {
		t.Fatalf("intra-region delay = %v, want ~0.5-1.7ms", d)
	}
	if d := measure(1, 3); d < 10*time.Millisecond {
		t.Fatalf("cross-region delay = %v, want tens of ms", d)
	}
}

func TestEventConstructorsAndStrings(t *testing.T) {
	cases := []struct {
		ev   Event
		kind EventKind
		str  string
	}{
		{PartitionRegion(2*time.Second, 0), EventPartitionRegion, "partition-region region=0 at=2s"},
		{HealRegion(5*time.Second, 0), EventHealRegion, "heal-region region=0 at=5s"},
		{IsolateOutbound(time.Second, 3), EventIsolateOutbound, "isolate-outbound site=3 at=1s"},
		{HealOutbound(2*time.Second, 3), EventHealOutbound, "heal-outbound site=3 at=2s"},
		{Gray(time.Second, 1, 25), EventGray, "gray site=1 factor=25.0 at=1s"},
		{ClearGray(3*time.Second, 1), EventClearGray, "clear-gray site=1 at=3s"},
		{Crash(time.Second, 4), EventCrash, "crash site=4 at=1s"},
		{Recover(4*time.Second, 4), EventRecover, "recover site=4 at=4s"},
		{SkewTimeout(time.Second, 2, 0.5), EventSkewTimeout, "skew-timeout site=2 factor=0.5 at=1s"},
	}
	for _, tc := range cases {
		if tc.ev.Kind != tc.kind {
			t.Fatalf("%v: kind = %v, want %v", tc.ev, tc.ev.Kind, tc.kind)
		}
		if got := tc.ev.String(); got != tc.str {
			t.Fatalf("String() = %q, want %q", got, tc.str)
		}
	}
}
