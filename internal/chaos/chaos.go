// Package chaos declares hostile network environments for the deterministic
// simulator: multi-region WAN topologies laid over a transport.SimNetwork
// (per-link delay distributions, loss, reorder), and a schedule DSL of timed
// events — partitions, heals, gray-outs, crashes, timeout skews — stamped in
// virtual time. The package only *describes* environments; internal/dst
// applies the events to a running cluster, and cmd/loadgen -mode chaos turns
// the resulting runs into the 2PC-vs-3PC hostility matrix (BENCH_chaos.json).
//
// Everything here is deterministic: delays and losses are sampled from the
// SimNetwork's seeded generator against the simulation's virtual clock, so a
// (topology, schedule, seed) triple replays byte-for-byte.
package chaos

import (
	"fmt"
	"time"

	"nbcommit/internal/transport"
)

// Topology is a multi-region cluster: Regions regions of PerRegion sites
// each, numbered 1..Regions*PerRegion in region order (region r owns sites
// r*PerRegion+1 .. (r+1)*PerRegion). Links inside a region use Intra; links
// crossing a region boundary use Cross.
type Topology struct {
	Name      string
	Regions   int
	PerRegion int
	Intra     transport.LinkModel
	Cross     transport.LinkModel
}

// WAN builds a topology with explicit link models.
func WAN(name string, regions, perRegion int, intra, cross transport.LinkModel) Topology {
	return Topology{Name: name, Regions: regions, PerRegion: perRegion, Intra: intra, Cross: cross}
}

// DefaultWAN is the canonical hostile geography: sub-millisecond uniform
// intra-region links and heavy-tailed 40–120ms cross-region links (lognormal
// around a 60ms median), with a small reorder window and light loss on the
// long haul.
func DefaultWAN(regions, perRegion int) Topology {
	return Topology{
		Name:      fmt.Sprintf("wan-%dx%d", regions, perRegion),
		Regions:   regions,
		PerRegion: perRegion,
		Intra: transport.LinkModel{
			Delay:         transport.UniformDelay(500*time.Microsecond, 1500*time.Microsecond),
			ReorderWindow: 200 * time.Microsecond,
		},
		Cross: transport.LinkModel{
			Delay:         transport.LognormalDelay(60*time.Millisecond, 0.35),
			Loss:          0.01,
			ReorderWindow: 2 * time.Millisecond,
		},
	}
}

// Sites returns the cluster size.
func (t Topology) Sites() int { return t.Regions * t.PerRegion }

// Region returns the 0-based region of a 1-based site ID.
func (t Topology) Region(site int) int { return (site - 1) / t.PerRegion }

// RegionSites returns the 1-based site IDs of one region.
func (t Topology) RegionSites(region int) []int {
	out := make([]int, 0, t.PerRegion)
	for s := region*t.PerRegion + 1; s <= (region+1)*t.PerRegion; s++ {
		out = append(out, s)
	}
	return out
}

// Apply installs the topology's link models on the network: Intra on every
// directed link within a region, Cross on every directed link between
// regions.
func (t Topology) Apply(n *transport.SimNetwork) {
	for a := 1; a <= t.Sites(); a++ {
		for b := 1; b <= t.Sites(); b++ {
			if a == b {
				continue
			}
			if t.Region(a) == t.Region(b) {
				n.SetLink(a, b, t.Intra)
			} else {
				n.SetLink(a, b, t.Cross)
			}
		}
	}
}

// CrossPairs returns every ordered site pair (a, b) with a inside the region
// and b outside — the directed links a symmetric region partition cuts in
// both directions, or an asymmetric one cuts outbound only.
func (t Topology) CrossPairs(region int) [][2]int {
	var out [][2]int
	for _, a := range t.RegionSites(region) {
		for b := 1; b <= t.Sites(); b++ {
			if t.Region(b) != region {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}

// EventKind enumerates the hostile schedule's timed event types.
type EventKind int

const (
	// EventPartitionRegion cuts every link between Region and the rest of
	// the cluster, both directions.
	EventPartitionRegion EventKind = iota
	// EventHealRegion restores every link between Region and the rest,
	// flushing held in-flight messages.
	EventHealRegion
	// EventIsolateOutbound blocks every link FROM Site while inbound links
	// keep delivering — the asymmetric partition: the site hears everyone,
	// nobody hears it.
	EventIsolateOutbound
	// EventHealOutbound restores Site's outbound links.
	EventHealOutbound
	// EventGray makes every link touching Site run Factor× slower while the
	// failure detector keeps reporting it alive.
	EventGray
	// EventClearGray restores Site to healthy speed.
	EventClearGray
	// EventCrash crash-stops Site (reliably reported, per the paper).
	EventCrash
	// EventRecover restarts Site from its WAL.
	EventRecover
	// EventSkewTimeout multiplies Site's protocol timeout by Factor — a
	// clock-skewed or misconfigured failure detector.
	EventSkewTimeout
)

func (k EventKind) String() string {
	switch k {
	case EventPartitionRegion:
		return "partition-region"
	case EventHealRegion:
		return "heal-region"
	case EventIsolateOutbound:
		return "isolate-outbound"
	case EventHealOutbound:
		return "heal-outbound"
	case EventGray:
		return "gray"
	case EventClearGray:
		return "clear-gray"
	case EventCrash:
		return "crash"
	case EventRecover:
		return "recover"
	case EventSkewTimeout:
		return "skew-timeout"
	}
	return "unknown"
}

// Event is one timed entry in a hostile schedule. At is virtual time from
// the start of the run.
type Event struct {
	At     time.Duration
	Kind   EventKind
	Region int     // EventPartitionRegion, EventHealRegion
	Site   int     // site-scoped events
	Factor float64 // EventGray, EventSkewTimeout
}

func (e Event) String() string {
	switch e.Kind {
	case EventPartitionRegion, EventHealRegion:
		return fmt.Sprintf("%s region=%d at=%s", e.Kind, e.Region, e.At)
	case EventGray, EventSkewTimeout:
		return fmt.Sprintf("%s site=%d factor=%.1f at=%s", e.Kind, e.Site, e.Factor, e.At)
	default:
		return fmt.Sprintf("%s site=%d at=%s", e.Kind, e.Site, e.At)
	}
}

// PartitionRegion cuts a region off at virtual time at.
func PartitionRegion(at time.Duration, region int) Event {
	return Event{At: at, Kind: EventPartitionRegion, Region: region}
}

// HealRegion reconnects a region at virtual time at.
func HealRegion(at time.Duration, region int) Event {
	return Event{At: at, Kind: EventHealRegion, Region: region}
}

// IsolateOutbound cuts a site's outbound links only (asymmetric partition).
func IsolateOutbound(at time.Duration, site int) Event {
	return Event{At: at, Kind: EventIsolateOutbound, Site: site}
}

// HealOutbound restores a site's outbound links.
func HealOutbound(at time.Duration, site int) Event {
	return Event{At: at, Kind: EventHealOutbound, Site: site}
}

// Gray slows every link touching site by factor from virtual time at.
func Gray(at time.Duration, site int, factor float64) Event {
	return Event{At: at, Kind: EventGray, Site: site, Factor: factor}
}

// ClearGray restores a gray site to healthy speed.
func ClearGray(at time.Duration, site int) Event {
	return Event{At: at, Kind: EventClearGray, Site: site}
}

// Crash crash-stops a site at virtual time at.
func Crash(at time.Duration, site int) Event {
	return Event{At: at, Kind: EventCrash, Site: site}
}

// Recover restarts a crashed site at virtual time at.
func Recover(at time.Duration, site int) Event {
	return Event{At: at, Kind: EventRecover, Site: site}
}

// SkewTimeout multiplies a site's protocol timeout by factor at virtual
// time at.
func SkewTimeout(at time.Duration, site int, factor float64) Event {
	return Event{At: at, Kind: EventSkewTimeout, Site: site, Factor: factor}
}
