package dst

import (
	"flag"
	"strings"
	"testing"

	"nbcommit/internal/engine"
)

var seedCount = flag.Int("dst.seeds", 500, "random schedules to explore per protocol")

func protoFlag(k engine.ProtocolKind) string {
	switch k {
	case engine.ThreePhase:
		return "3pc"
	case engine.PaxosCommit:
		return "paxos"
	}
	return "2pc"
}

// TestEnumerated3PCNonblocking exhaustively explores every single-crash-point
// schedule of a 3-site 3PC transaction — a crash after each WAL append and
// after each message delivery of the fault-free execution — and requires that
// no schedule blocks an operational site or splits the decision.
func TestEnumerated3PCNonblocking(t *testing.T) {
	reports := ExploreCrashPoints(Config{Protocol: engine.ThreePhase})
	if len(reports) < 10 {
		t.Fatalf("suspiciously small enumeration: %d crash points", len(reports))
	}
	for _, r := range reports {
		for _, v := range r.Violations {
			t.Errorf("%s: %s", r.Scenario, v)
		}
		if r.Blocked {
			t.Errorf("%s: an operational site reported blocked under 3PC", r.Scenario)
		}
	}
	t.Logf("explored %d single-crash 3PC schedules, all nonblocking and consistent", len(reports))
}

// TestEnumerated2PCFindsBlocking is the negative control: the same exhaustive
// enumeration over 2PC must discover at least one schedule on which the
// operational sites provably block (the protocol's known defect), while still
// never violating consistency.
func TestEnumerated2PCFindsBlocking(t *testing.T) {
	reports := ExploreCrashPoints(Config{Protocol: engine.TwoPhase})
	blocked := 0
	for _, r := range reports {
		for _, v := range r.Violations {
			t.Errorf("%s: %s", r.Scenario, v)
		}
		if r.Blocked {
			if blocked < 3 {
				t.Logf("2PC blocks on: %s", r.Scenario)
			}
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("negative control failed: no enumerated schedule blocks 2PC")
	}
	t.Logf("explored %d single-crash 2PC schedules; %d block, none inconsistent", len(reports), blocked)
}

// TestEnumeratedPaxosNonblocking exhaustively explores every single-crash-point
// schedule of a 3-site (2F+1 = 3 acceptors) Paxos Commit transaction — a crash
// after each WAL append (vote-yes and paxos-accept records included, i.e.
// acceptor crashes) and after each message delivery of the fault-free
// execution. No schedule may block an operational site, split the decision, or
// — the headline property, checked on every run by paxosNoTermination —
// exchange a single termination-protocol message: coordinator death is
// resolved by a survivor leading a higher ballot, never by the cohort
// termination protocol.
func TestEnumeratedPaxosNonblocking(t *testing.T) {
	reports := ExploreCrashPoints(Config{Protocol: engine.PaxosCommit})
	if len(reports) < 10 {
		t.Fatalf("suspiciously small enumeration: %d crash points", len(reports))
	}
	for _, r := range reports {
		for _, v := range r.Violations {
			t.Errorf("%s: %s", r.Scenario, v)
		}
		if r.Blocked {
			t.Errorf("%s: an operational site reported blocked under Paxos Commit", r.Scenario)
		}
	}
	t.Logf("explored %d single-crash Paxos schedules, all nonblocking, consistent, and termination-protocol-free", len(reports))
}

// TestRandomSchedules sweeps seeded random schedules (crashes, staggered
// recoveries, transient partitions, scripted NO votes, random delivery order)
// for both protocols. Any violation prints the reproducer command.
func TestRandomSchedules(t *testing.T) {
	for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		t.Run(proto.String(), func(t *testing.T) {
			blocked := 0
			for seed := int64(1); seed <= int64(*seedCount); seed++ {
				r := RunRandom(Config{Protocol: proto}, seed)
				if len(r.Violations) > 0 {
					t.Fatalf("seed %d violates invariants (replay: go run ./cmd/dst -protocol %s -seed %d):\n  %s",
						seed, protoFlag(proto), seed, strings.Join(r.Violations, "\n  "))
				}
				if r.Blocked {
					blocked++
				}
			}
			t.Logf("%d random %s schedules clean (%d blocked runs)", *seedCount, proto, blocked)
		})
	}
}

// TestRegressionSeeds replays the specific random schedules that exposed
// real engine bugs (see EXPERIMENTS.md, "Deterministic simulation testing"),
// so the fixes stay pinned even when the default sweep is small. Each seed
// once produced a stall, a livelock, or — for 1988/4504/31051 — a split
// decision.
func TestRegressionSeeds(t *testing.T) {
	cases := []struct {
		proto engine.ProtocolKind
		seeds []int64
	}{
		{engine.TwoPhase, []int64{59, 113, 570, 1988}},
		{engine.ThreePhase, []int64{59, 113, 570, 596, 1988, 2543, 4504, 31051}},
	}
	for _, c := range cases {
		for _, seed := range c.seeds {
			r := RunRandom(Config{Protocol: c.proto}, seed)
			if len(r.Violations) > 0 {
				t.Errorf("%s seed %d regressed (replay: go run ./cmd/dst -protocol %s -seed %d):\n  %s",
					c.proto, seed, protoFlag(c.proto), seed, strings.Join(r.Violations, "\n  "))
			}
		}
	}
}

// TestReplayDeterminism re-runs schedules and requires byte-identical traces
// and WAL digests — the property that makes every reported seed a reproducer.
func TestReplayDeterminism(t *testing.T) {
	for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		for _, seed := range []int64{1, 7, 42, 1234} {
			a := RunRandom(Config{Protocol: proto}, seed)
			b := RunRandom(Config{Protocol: proto}, seed)
			if a.WALDigest != b.WALDigest {
				t.Fatalf("%s seed %d: WAL digests differ across replays: %s vs %s",
					proto, seed, a.WALDigest, b.WALDigest)
			}
			if len(a.Trace) != len(b.Trace) {
				t.Fatalf("%s seed %d: trace lengths differ: %d vs %d", proto, seed, len(a.Trace), len(b.Trace))
			}
			for i := range a.Trace {
				if a.Trace[i] != b.Trace[i] {
					t.Fatalf("%s seed %d: traces diverge at step %d:\n  %s\n  %s",
						proto, seed, i, a.Trace[i], b.Trace[i])
				}
			}
		}
	}

	// Enumerated schedules replay identically too.
	pts := enumerateCrashPoints(Config{Protocol: engine.ThreePhase}.withDefaults())
	if len(pts) == 0 {
		t.Fatal("no crash points enumerated")
	}
	cp := pts[len(pts)/2]
	a := RunCrashPoint(Config{Protocol: engine.ThreePhase}, cp)
	b := RunCrashPoint(Config{Protocol: engine.ThreePhase}, cp)
	if a.WALDigest != b.WALDigest || len(a.Trace) != len(b.Trace) {
		t.Fatalf("crash point %s does not replay identically", cp)
	}
}
