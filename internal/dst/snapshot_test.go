package dst

import (
	"testing"

	"nbcommit/internal/engine"
)

// TestSnapshotConsistencyUnderCrashPoints is the MVCC acceptance gate: for
// every protocol family, every enumerated single-crash schedule of the
// kv-backed workload must keep stable snapshots consistent — never torn,
// never above the in-doubt watermark, never showing an aborted write set —
// while the usual protocol invariants (agreement, post-recovery liveness)
// continue to hold.
func TestSnapshotConsistencyUnderCrashPoints(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			reports := ExploreSnapshotCrashPoints(Config{Protocol: kind})
			if len(reports) == 0 {
				t.Fatal("no crash points enumerated")
			}
			failed := 0
			for _, r := range reports {
				for _, v := range r.Violations {
					t.Errorf("%s: %s", r.Scenario, v)
				}
				if len(r.Violations) > 0 {
					failed++
					if failed >= 5 {
						t.Fatalf("%d of %d schedules violated; stopping early", failed, len(reports))
					}
				}
			}
			t.Logf("%s: %d crash-point schedules, all snapshot-consistent", kind, len(reports))
		})
	}
}

// TestSnapshotSamplesInDoubtWindow guards the watermark invariant against
// vacuity: across the enumeration, at least one schedule must sample a store
// while it holds an unresolved prepare — the exact window (between Prepare
// and decision-apply) the invariant exists for.
func TestSnapshotSamplesInDoubtWindow(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		cfg := Config{Protocol: kind}.withDefaults()
		refHarness := newSnapHarness()
		ref := cfg
		ref.mkResource = refHarness.mkResource
		inDoubt := 0
		for _, cp := range enumerateCrashPointsFrom(ref, refHarness.launch) {
			h := newSnapHarness()
			run := cfg
			run.mkResource = h.mkResource
			r, c := runCrashPointFrom(run, cp, h.launch)
			h.finalCheck(c, &r)
			inDoubt += h.inDoubtSamples
		}
		if inDoubt == 0 {
			t.Errorf("%s: no schedule ever sampled a snapshot with an in-doubt prepare outstanding", kind)
		} else {
			t.Logf("%s: %d samples taken inside the in-doubt window", kind, inDoubt)
		}
	}
}

// TestSnapshotFaultFree pins the harness itself on the easy schedule: with
// no crash at all, both transactions resolve, t1's pair becomes visible
// everywhere, t2's never does, and sampling produced zero wire traffic.
func TestSnapshotFaultFree(t *testing.T) {
	h := newSnapHarness()
	cfg := Config{Protocol: engine.ThreePhase}.withDefaults()
	cfg.mkResource = h.mkResource
	c := newCluster(cfg, nil)
	r := Report{Scenario: "fault-free", Protocol: cfg.Protocol}
	if err := h.launch(c); err != nil {
		t.Fatal(err)
	}
	c.run(nil)
	checkConsistency(c, c.snapshot(), &r)
	h.finalCheck(c, &r)
	if h.samples == 0 {
		t.Fatal("observer never ran")
	}
	if len(h.visible["t1"]) != cfg.Sites {
		t.Errorf("t1 visible at %d sites, want %d", len(h.visible["t1"]), cfg.Sites)
	}
	if len(h.visible["t2"]) != 0 {
		t.Errorf("aborted t2 was visible at sites %v", h.visible["t2"])
	}
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
}
