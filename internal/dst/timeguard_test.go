package dst

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wallClockUse matches direct wall-clock calls that would make the engine's
// protocol behavior untestable under the virtual clock.
var wallClockUse = regexp.MustCompile(`\btime\.(Now|After|AfterFunc|Sleep|NewTimer|NewTicker|Tick|Since|Until)\b`)

// TestEngineUsesInjectedClockOnly enforces the determinism contract: no
// production file in internal/engine may reach for package time's clock —
// all protocol timing must flow through the injected clock.Clock, or the
// simulation harness cannot control it.
func TestEngineUsesInjectedClockOnly(t *testing.T) {
	dir := filepath.Join("..", "engine")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		checked++
		for i, line := range strings.Split(string(src), "\n") {
			if m := wallClockUse.FindString(line); m != "" {
				t.Errorf("%s:%d uses wall clock %s; route it through clock.Clock", name, i+1, m)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no engine source files found; wrong path?")
	}
}
