// Package dst is a deterministic simulation-testing harness for the commit
// engine: it runs the real internal/engine sites (central 2PC/3PC, the
// decentralized paradigm, termination and recovery protocols) over a virtual
// clock and a schedule-controlled in-memory transport, then systematically
// explores failure schedules — crash points at every WAL append and every
// message delivery, coordinator death at each phase, partitions, staggered
// recovery — and checks the paper's theorems on every explored schedule:
//
//   - consistency: no two sites ever decide a transaction differently;
//   - nonblocking: 3PC operational sites always terminate without waiting
//     for any crashed site to recover;
//   - blocking (negative control): 2PC provably blocks on at least one
//     enumerated schedule.
//
// Every run is driven from a single seed and replays byte-for-byte: the
// engine runs in deterministic mode (no internal goroutines), messages are
// captured into a transport.SimNetwork queue and delivered one at a time in
// a schedule-chosen order, and timeouts fire only when the scheduler
// advances the virtual clock.
package dst

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"nbcommit/internal/clock"
	"nbcommit/internal/engine"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Config sizes a simulated cluster.
type Config struct {
	// Protocol selects 2PC or 3PC.
	Protocol engine.ProtocolKind
	// Sites is the cohort size; sites are numbered 1..Sites. Default 3.
	Sites int
	// Timeout is the engine protocol timeout on the virtual clock.
	// Default 50ms (virtual — no real time passes).
	Timeout time.Duration
	// SiteTimeouts overrides Timeout per site — hostile topologies use it
	// to skew one site's failure suspicion relative to its peers.
	SiteTimeouts map[int]time.Duration
	// Shards is the engine shard count per site (0 = engine default). The
	// determinism tests vary it to prove traces are shard-count-invariant.
	Shards int
	// Horizon bounds the virtual time a run may consume. Default 60s.
	Horizon time.Duration
	// MaxSteps bounds scheduler steps per run. Default 50000.
	MaxSteps int

	// mkResource, when set, builds each site's engine resource in place of
	// the synthetic instant resource — the snapshot harness plugs in real
	// multi-version kv stores here. It is called again on recovery with a
	// fresh resource expected: volatile store state dies with the site and
	// is rebuilt from the WAL redo images, exactly as in production.
	mkResource func(site int, clk clock.Clock) engine.Resource

	// readOnlyVotes enables the engine's read-only participant optimization
	// (engine.Config.ReadOnlyVotes). Off by default, matching the engine's
	// own default: the synthetic resource always reports a write set, so
	// only harnesses that script empty-redo prepares turn this on.
	readOnlyVotes bool
}

func (c Config) withDefaults() Config {
	if c.Sites == 0 {
		c.Sites = 3
	}
	if c.Timeout == 0 {
		c.Timeout = 50 * time.Millisecond
	}
	if c.Horizon == 0 {
		c.Horizon = 60 * time.Second
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 50000
	}
	return c
}

// crashKind distinguishes the two families of enumerated crash points.
type crashKind int

const (
	// afterAppend crashes a site immediately after it forces a chosen WAL
	// record — between logging a transition and sending its messages, the
	// paper's "a site may only partially complete a transition before
	// failing".
	afterAppend crashKind = iota
	// afterDeliver crashes a site immediately after it finishes processing
	// its Nth inbound message — coordinator death at each phase falls out of
	// this family.
	afterDeliver
)

// CrashPoint identifies one instant at which a single site fails.
type CrashPoint struct {
	Site int
	kind crashKind
	Rec  wal.RecordType // afterAppend: crash after the Nth append of this type
	Nth  int
	Msg  int // afterDeliver: crash after processing the Nth inbound message
}

// String names the crash point for reports and reproducers.
func (p CrashPoint) String() string {
	if p.kind == afterAppend {
		return fmt.Sprintf("site %d crashes after WAL append %s#%d", p.Site, p.Rec, p.Nth)
	}
	return fmt.Sprintf("site %d crashes after processing message #%d", p.Site, p.Msg)
}

// resource is an instant, deterministic engine.Resource: Prepare succeeds
// with a synthetic redo image unless scripted to vote NO.
type resource struct {
	refuse    map[string]bool
	readonly  map[string]bool
	committed map[string]bool
}

func newResource() *resource {
	return &resource{refuse: map[string]bool{}, readonly: map[string]bool{}, committed: map[string]bool{}}
}

func (r *resource) Prepare(txid string) ([]byte, error) {
	if r.refuse[txid] {
		return nil, errors.New("scripted NO vote")
	}
	if r.readonly[txid] {
		return nil, nil // scripted empty write set: nothing at stake here
	}
	return []byte("redo:" + txid), nil
}

func (r *resource) Commit(txid string, redo []byte) error {
	r.committed[txid] = true
	return nil
}

func (r *resource) Abort(txid string) error { return nil }

func (r *resource) ApplyRedo(redo []byte) error {
	r.committed[strings.TrimPrefix(string(redo), "redo:")] = true
	return nil
}

// crashLog wraps a site's MemoryLog with a crash point: immediately after
// the trigger append the site falls silent (its subsequent appends are
// swallowed — the crash happened before them — and its sends stop escaping),
// and the scheduler completes the crash between steps. It also counts
// appends per record type, which is how the explorer enumerates crash
// points from a reference execution.
//
// Lazy appends are modelled with production FileLog semantics: AppendLazy
// stages the record in a volatile buffer that becomes durable only when the
// next forced append flushes it (riding that batch), and a crash loses the
// whole staged suffix — recoverSite discards this wrapper, buffer included,
// keeping only inner. Staged appends still count toward seen, so the
// explorer enumerates crash points inside the staged-but-unflushed windows
// that presumed-abort recovery must survive.
type crashLog struct {
	inner  *wal.MemoryLog
	c      *cluster
	site   int
	trig   *CrashPoint
	seen   map[wal.RecordType]int
	staged []wal.Record // lazy appends not yet carried by a forced batch
	dead   bool
}

func (l *crashLog) Append(rec wal.Record) (uint64, error) {
	if l.dead {
		// The site crashed mid-transition: this append and everything the
		// handler does afterwards is volatile work the crash destroyed. The
		// stale in-memory state is discarded when the site is stopped and
		// later rebuilt from the (truncated) log by recovery.
		return 0, nil
	}
	// Staged lazy records ride this forced batch: they become durable,
	// in stage order, together with the record that forced the flush.
	for _, lr := range l.staged {
		if _, err := l.inner.Append(lr); err != nil {
			return 0, err
		}
	}
	l.staged = l.staged[:0]
	lsn, err := l.inner.Append(rec)
	if err != nil {
		return lsn, err
	}
	l.seen[rec.Type]++
	if l.trig != nil && l.trig.kind == afterAppend &&
		l.trig.Rec == rec.Type && l.seen[rec.Type] == l.trig.Nth {
		l.dead = true
		l.c.tracef("crash point hit: %s", l.trig)
		l.c.trip(l.site)
	}
	return lsn, err
}

// AppendLazy implements wal.LazyLog. A trigger on a lazily appended record
// crashes the site inside the lazy window: the record is staged, counted,
// and then lost with the buffer — recovery sees a log without it.
func (l *crashLog) AppendLazy(rec wal.Record) error {
	if l.dead {
		return nil
	}
	l.staged = append(l.staged, rec)
	l.seen[rec.Type]++
	if l.trig != nil && l.trig.kind == afterAppend &&
		l.trig.Rec == rec.Type && l.seen[rec.Type] == l.trig.Nth {
		l.dead = true
		l.c.tracef("crash point hit: %s (lazy window: record staged, not durable)", l.trig)
		l.c.trip(l.site)
	}
	return nil
}

// Records matches FileLog semantics: a scan flushes the staged suffix first
// (recovery only ever runs on a fresh wrapper, whose buffer is empty).
func (l *crashLog) Records() ([]wal.Record, error) {
	if !l.dead {
		for _, lr := range l.staged {
			if _, err := l.inner.Append(lr); err != nil {
				return nil, err
			}
		}
		l.staged = l.staged[:0]
	}
	return l.inner.Records()
}

func (l *crashLog) Close() error { return l.inner.Close() }

// cluster is one simulated world: n engine sites in deterministic mode over
// a SimNetwork and a shared virtual clock, plus the fault bookkeeping the
// scheduler needs.
type cluster struct {
	cfg   Config
	net   *transport.SimNetwork
	clk   *clock.Virtual
	sites map[int]*engine.Site
	logs  map[int]*crashLog
	res   map[int]*resource
	kres   map[int]engine.Resource // cfg.mkResource-built resources, if any
	ids    []int
	txids  []string
	coords map[string]int // central transactions only: txid -> coordinator

	deliverTrip  *CrashPoint // armed afterDeliver crash point, if any
	down         map[int]bool
	everCrashed  map[int]bool
	pendingCrash []int
	delivered    map[int]int // messages processed per site
	deliveries   []transport.Message
	steps        int
	trace        []string
	failures     []string // harness-level failures (recovery errors, ...)

	// observe, when set, runs before every virtual-time advance and at run
	// exit — the instants at which the hostile harness samples outcomes and
	// blocked states without perturbing the schedule.
	observe func()
}

func newCluster(cfg Config, cp *CrashPoint) *cluster {
	c := &cluster{
		cfg:         cfg,
		net:         transport.NewSimNetwork(),
		clk:         clock.NewVirtual(),
		sites:       map[int]*engine.Site{},
		logs:        map[int]*crashLog{},
		res:         map[int]*resource{},
		kres:        map[int]engine.Resource{},
		down:        map[int]bool{},
		everCrashed: map[int]bool{},
		delivered:   map[int]int{},
		coords:      map[string]int{},
	}
	if cp != nil && cp.kind == afterDeliver {
		c.deliverTrip = cp
	}
	for id := 1; id <= cfg.Sites; id++ {
		c.ids = append(c.ids, id)
		var trig *CrashPoint
		if cp != nil && cp.kind == afterAppend && cp.Site == id {
			trig = cp
		}
		c.logs[id] = &crashLog{inner: wal.NewMemoryLog(), c: c, site: id, trig: trig, seen: map[wal.RecordType]int{}}
		c.res[id] = newResource()
		if cfg.mkResource != nil {
			c.kres[id] = cfg.mkResource(id, c.clk)
		}
		c.startSite(id)
	}
	return c
}

// timeoutFor returns the protocol timeout for one site, honoring the
// per-site skew table.
func (c *cluster) timeoutFor(id int) time.Duration {
	if d, ok := c.cfg.SiteTimeouts[id]; ok && d > 0 {
		return d
	}
	return c.cfg.Timeout
}

// resourceFor picks a site's engine resource: the mkResource-built one when
// the harness supplies real stores, the synthetic instant one otherwise.
func (c *cluster) resourceFor(id int) engine.Resource {
	if r, ok := c.kres[id]; ok {
		return r
	}
	return c.res[id]
}

func (c *cluster) startSite(id int) {
	s, err := engine.New(engine.Config{
		ID:            id,
		Endpoint:      c.net.Endpoint(id),
		Log:           c.logs[id],
		Resource:      c.resourceFor(id),
		Detector:      c.net,
		Protocol:      c.cfg.Protocol,
		Timeout:       c.timeoutFor(id),
		Shards:        c.cfg.Shards,
		Clock:         c.clk,
		Deterministic: true,
		ReadOnlyVotes: c.cfg.readOnlyVotes,
		// GC runs in-sim: resolved transactions are settled (DEC-ACK) and
		// forgotten after a grace period, so the explorer reaches the
		// settlement path — including the lazy end-record windows.
		ForgetAfter: 4 * c.timeoutFor(id),
	})
	if err != nil {
		panic(fmt.Sprintf("dst: cannot assemble site %d: %v", id, err)) // our own config; cannot fail
	}
	c.sites[id] = s
	s.Start()
}

func (c *cluster) tracef(format string, args ...any) {
	c.trace = append(c.trace, fmt.Sprintf(format, args...))
}

func (c *cluster) fail(format string, args ...any) {
	c.failures = append(c.failures, fmt.Sprintf(format, args...))
}

// begin launches a transaction over the full cluster cohort.
func (c *cluster) begin(coord int, txid string, peer bool) error {
	return c.beginSubset(coord, txid, c.ids, peer)
}

// beginSubset launches a transaction whose cohort is a chosen subset of the
// cluster — the sharded case, where only the owner sites of the touched
// shards participate and the rest of the cluster are bystanders.
func (c *cluster) beginSubset(coord int, txid string, cohort []int, peer bool) error {
	c.txids = append(c.txids, txid)
	c.tracef("begin %s coordinator=%d cohort=%v peer=%v", txid, coord, cohort, peer)
	if peer {
		return c.sites[coord].BeginPeer(txid, cohort)
	}
	c.coords[txid] = coord
	return c.sites[coord].Begin(txid, cohort)
}

// trip marks a site dead as of this instant (mid-transition): its sends stop
// escaping immediately; the full crash — halting the site and broadcasting
// the failure report — completes between scheduler steps.
func (c *cluster) trip(site int) {
	c.net.Silence(site)
	c.pendingCrash = append(c.pendingCrash, site)
}

func (c *cluster) settlePendingCrashes() {
	for len(c.pendingCrash) > 0 {
		site := c.pendingCrash[0]
		c.pendingCrash = c.pendingCrash[1:]
		c.crash(site)
	}
}

// crash fails a site: its event processing halts, queued messages to it are
// lost, and the network reliably reports the failure to the survivors.
func (c *cluster) crash(site int) {
	if c.down[site] {
		return
	}
	c.down[site] = true
	c.everCrashed[site] = true
	c.tracef("crash site %d", site)
	c.sites[site].Stop()
	c.net.Crash(site)
}

// recoverSite restarts a crashed site from its surviving WAL with a fresh
// resource, modelling the paper's recovery protocol.
func (c *cluster) recoverSite(site int) {
	if !c.down[site] {
		return
	}
	c.tracef("recover site %d", site)
	c.down[site] = false
	c.res[site] = newResource()
	if c.cfg.mkResource != nil {
		c.kres[site] = c.cfg.mkResource(site, c.clk)
	}
	c.logs[site] = &crashLog{inner: c.logs[site].inner, c: c, site: site, seen: map[wal.RecordType]int{}}
	s, err := engine.Recover(engine.Config{
		ID:            site,
		Endpoint:      c.net.Endpoint(site),
		Log:           c.logs[site],
		Resource:      c.resourceFor(site),
		Detector:      c.net,
		Protocol:      c.cfg.Protocol,
		Timeout:       c.timeoutFor(site),
		Shards:        c.cfg.Shards,
		Clock:         c.clk,
		Deterministic: true,
		ReadOnlyVotes: c.cfg.readOnlyVotes,
		ForgetAfter:   4 * c.timeoutFor(site),
	})
	if err != nil {
		c.fail("recovery of site %d failed: %v", site, err)
		c.down[site] = true
		return
	}
	c.sites[site] = s
}

// run executes the schedule until the cluster settles (every alive site has
// resolved — or, for 2PC, provably blocked on — every transaction it knows),
// the plan and all timers are exhausted, or the step/virtual-time budget
// runs out. A nil plan means FIFO delivery with no faults.
//
// Virtual time advances to whichever comes first: a timed schedule event, an
// in-flight message's delivery instant (hostile latency models), or the next
// engine timer. Deliverable messages always drain before time moves.
func (c *cluster) run(p *plan) {
	start := c.clk.Now()
	defer func() {
		if c.observe != nil {
			c.observe()
		}
	}()
	for c.steps < c.cfg.MaxSteps && c.clk.Now().Sub(start) < c.cfg.Horizon {
		c.steps++
		c.settlePendingCrashes()
		if p != nil {
			p.fire(c)
			p.fireTimed(c, start)
		}
		if n := c.net.Pending(); n > 0 {
			i := 0
			if p != nil && p.rng != nil && n > 1 {
				i = p.rng.Intn(n)
			}
			m, ok := c.net.Take(i)
			if !ok || c.down[m.To] {
				continue // lost with a crash that beat the delivery
			}
			if p != nil && p.maybeDrop(m) {
				c.tracef("drop %s", m)
				continue
			}
			c.tracef("deliver %s", m)
			c.deliveries = append(c.deliveries, m)
			c.sites[m.To].Deliver(m)
			c.delivered[m.To]++
			if t := c.deliverTrip; t != nil && t.Site == m.To && t.Msg == c.delivered[m.To] && !c.down[m.To] {
				c.tracef("crash point hit: %s", t)
				c.trip(m.To)
			}
			continue
		}
		if len(c.pendingCrash) > 0 {
			continue
		}
		if p != nil && p.fireNext(c) {
			continue // quiescent: pull the next scheduled fault forward
		}
		if c.allSettled() && (p == nil || p.timedDone()) {
			return
		}
		// Nothing deliverable now: advance virtual time to the next event —
		// a timed schedule entry, a message due instant, or a timer — and
		// let the observer sample the pre-advance state first.
		now := c.clk.Now()
		var next time.Time
		if p != nil {
			if at, ok := p.nextTimedAt(start); ok {
				next = at
			}
		}
		if due, ok := c.net.NextDue(); ok && due.After(now) && (next.IsZero() || due.Before(next)) {
			next = due
		}
		if dl, ok := c.clk.NextDeadline(); ok && (next.IsZero() || dl.Before(next)) {
			next = dl
		}
		if next.IsZero() {
			return // no messages, no timers, no events, not settled: stuck
		}
		if c.observe != nil {
			c.observe()
		}
		if !next.After(now) {
			// A timed event is already due (or a timer is due now): let the
			// clock fire timers up to now and loop to apply events.
			if c.clk.Step() {
				continue
			}
			continue
		}
		c.clk.Advance(next.Sub(now))
	}
}

// drainSettlement advances virtual time through the engines' settlement
// grace periods after the cluster has settled: run returns as soon as every
// outcome is resolved, which leaves the GC timers — DEC-ACK re-offers and
// the forget grace period that stages each site's lazy end record — still
// pending. Draining them makes the staged-but-unflushed settlement windows
// reachable by the crash-point enumerator. Sites that poll forever (blocked
// transactions, crashed peers) re-arm a timer on every firing, so the drain
// is bounded by rounds rather than by timer exhaustion.
func (c *cluster) drainSettlement() {
	for round := 0; round < 6; round++ {
		dl, ok := c.clk.NextDeadline()
		if !ok {
			return
		}
		if now := c.clk.Now(); dl.After(now) {
			c.clk.Advance(dl.Sub(now))
		} else if !c.clk.Step() {
			return
		}
		c.run(nil)
	}
}

// allSettled reports whether every alive site has concluded every
// transaction it knows: resolved, or (2PC) provably blocked awaiting
// coordinator recovery. Unknown transactions are vacuously settled.
//
// Blocked only counts as a conclusion while some site is actually down:
// once the whole cluster is up again (post-recovery), the blocked site's
// next status poll will resolve the transaction — under presumed abort a
// recovered no-trace coordinator answers inquiries but broadcasts nothing
// on its own, so the run must keep advancing time until that poll fires.
func (c *cluster) allSettled() bool {
	anyDown := false
	for _, id := range c.ids {
		if c.down[id] {
			anyDown = true
			break
		}
	}
	for _, id := range c.ids {
		if c.down[id] {
			continue
		}
		for _, txid := range c.txids {
			o, err := c.sites[id].Outcome(txid)
			if errors.Is(err, engine.ErrBlocked) {
				if !anyDown {
					return false // everyone is up: the next poll unblocks it
				}
				continue
			}
			if err != nil {
				continue // unknown: vacuously settled
			}
			if o == engine.OutcomePending {
				return false
			}
		}
	}
	return true
}

// view is one site's verdict on one transaction.
type view struct {
	known   bool
	outcome engine.Outcome
	blocked bool
}

// snapshot captures every alive site's verdict on every transaction.
func (c *cluster) snapshot() map[string]map[int]view {
	out := map[string]map[int]view{}
	for _, txid := range c.txids {
		views := map[int]view{}
		for _, id := range c.ids {
			if c.down[id] {
				continue
			}
			o, err := c.sites[id].Outcome(txid)
			switch {
			case errors.Is(err, engine.ErrBlocked):
				views[id] = view{known: true, outcome: engine.OutcomePending, blocked: true}
			case err != nil:
				views[id] = view{known: false}
			default:
				views[id] = view{known: true, outcome: o}
			}
		}
		out[txid] = views
	}
	return out
}

// durableOutcome reads a site's decision for txid from its durable WAL —
// the terminal evidence once the live engine has settled and forgotten the
// transaction (auto-forget runs in-sim). Returns pending when the log holds
// no decision record, which under presumed abort also covers aborts that
// never forced one.
func (c *cluster) durableOutcome(site int, txid string) engine.Outcome {
	recs, _ := c.logs[site].inner.Records()
	out := engine.OutcomePending
	for _, rec := range recs {
		if rec.TxID != txid {
			continue
		}
		switch rec.Type {
		case wal.RecCommitted:
			out = engine.OutcomeCommitted
		case wal.RecAborted:
			out = engine.OutcomeAborted
		}
	}
	return out
}

// walDigest fingerprints every site's durable state, for replay-identity
// checks: two runs of the same seed must produce identical digests. Lazy
// records still staged at run end are deliberately excluded — they are not
// durable yet.
func (c *cluster) walDigest() string {
	h := fnv.New64a()
	for _, id := range c.ids {
		recs, err := c.logs[id].inner.Records()
		if err != nil {
			recs = nil
		}
		fmt.Fprintf(h, "site%d:", id)
		for _, r := range recs {
			fmt.Fprintf(h, "%s/%s/%d;", r.Type, r.TxID, len(r.Payload))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// sortedTxids returns the transaction IDs in launch order (already
// deterministic); exposed as a helper for checkers.
func (c *cluster) sortedTxids() []string { return c.txids }

// aliveKnownPending lists alive sites whose verdict on txid is known but
// still pending (blocked or not), sorted.
func aliveKnownPending(views map[int]view, ids []int) []int {
	var out []int
	for _, id := range ids {
		v, ok := views[id]
		if ok && v.known && v.outcome == engine.OutcomePending {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
