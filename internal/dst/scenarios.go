package dst

import (
	"time"

	"nbcommit/internal/chaos"
	"nbcommit/internal/engine"
	"nbcommit/internal/wal"
)

// HostileScenario is one curated hostile environment: a topology, a timed
// fault schedule, and a timed workload, parameterized only by protocol and
// seed. The table below is the matrix every commit protocol in this repo is
// judged by (BENCH_chaos.json).
type HostileScenario struct {
	Name string
	Desc string
	Topo chaos.Topology
	// Build returns the events, launches and fault window for one run.
	Events               []chaos.Event
	Launches             []TxnLaunch
	FaultStart, FaultEnd time.Duration
	Timeout              time.Duration
	SiteTimeouts         map[int]time.Duration
	Horizon              time.Duration
}

// Config instantiates the scenario for one protocol and seed.
func (s HostileScenario) Config(proto engine.ProtocolKind, seed int64) HostileConfig {
	return HostileConfig{
		Protocol:     proto,
		Topology:     s.Topo,
		Events:       s.Events,
		Launches:     s.Launches,
		Seed:         seed,
		Timeout:      s.Timeout,
		SiteTimeouts: s.SiteTimeouts,
		FaultStart:   s.FaultStart,
		FaultEnd:     s.FaultEnd,
		Horizon:      s.Horizon,
	}
}

// wanLaunches spreads n transactions every gap across coordinators cycling
// through all regions (sites 1, 3, 5, 2, 4, 6 for a 3x2 topology), starting
// at t=0.
func wanLaunches(topo chaos.Topology, n int, gap time.Duration) []TxnLaunch {
	coords := make([]int, 0, topo.Sites())
	// Cycle region-first so consecutive launches come from different regions.
	for off := 0; off < topo.PerRegion; off++ {
		for r := 0; r < topo.Regions; r++ {
			coords = append(coords, r*topo.PerRegion+1+off)
		}
	}
	out := make([]TxnLaunch, n)
	for i := range out {
		out[i] = TxnLaunch{At: time.Duration(i) * gap, Coord: coords[i%len(coords)]}
	}
	return out
}

// HostileScenarios returns the curated scenario table: the four hostile
// cells the ISSUE's acceptance matrix requires, plus the blocking control.
// All scenarios run on the default 3-region x 2-site WAN with ~1ms
// intra-region and 40-120ms (lognormal, lossy) cross-region links.
func HostileScenarios() []HostileScenario {
	topo := chaos.DefaultWAN(3, 2)
	// Faults land at 300ms (mid-protocol for the early launches) and heal at
	// 2.5s: long enough that the 1s protocol timeout fires — and answers
	// clients — inside the fault window.
	const (
		faultAt = 300 * time.Millisecond
		healAt  = 2500 * time.Millisecond
	)
	launches := wanLaunches(topo, 8, 250*time.Millisecond)
	return []HostileScenario{
		{
			Name:     "wan-baseline",
			Desc:     "3 regions x 2 sites, heavy-tailed cross-region links, no faults: the cross-region tail-latency cost of each protocol's message rounds",
			Topo:     topo,
			Launches: launches,
		},
		{
			Name:       "partition-sym",
			Desc:       "region 0 (sites 1-2) cut off both ways mid-protocol, healed at 1.5s: commit availability during and after a symmetric partition",
			Topo:       topo,
			Events:     []chaos.Event{chaos.PartitionRegion(faultAt, 0), chaos.HealRegion(healAt, 0)},
			Launches:   launches,
			FaultStart: faultAt,
			FaultEnd:   healAt,
		},
		{
			Name: "partition-asym",
			Desc: "site 1's outbound links cut while inbound still delivers (asymmetric partition): coordinators hear votes nobody hears answered",
			Topo: topo,
			Events: []chaos.Event{
				chaos.IsolateOutbound(faultAt, 1),
				chaos.HealOutbound(healAt, 1),
			},
			Launches:   launches,
			FaultStart: faultAt,
			FaultEnd:   healAt,
		},
		{
			Name: "gray-coordinator",
			Desc: "site 1 stays alive per the failure detector but runs 25x slower, with site 3's timeout skewed to half: the slow-but-alive trap for timeout-based suspicion",
			Topo: topo,
			Events: []chaos.Event{
				chaos.Gray(100*time.Millisecond, 1, 25),
				chaos.SkewTimeout(100*time.Millisecond, 3, 0.5),
				chaos.ClearGray(1800*time.Millisecond, 1),
			},
			Launches:   launches,
			FaultStart: 100 * time.Millisecond,
			FaultEnd:   1800 * time.Millisecond,
		},
		{
			Name: "coord-crash-prepared",
			Desc: "coordinator crashes after the cohort is prepared, no recovery: the paper's blocking scenario — 2PC participants stay in doubt, 3PC terminates",
			Topo: topo,
			Events: []chaos.Event{
				chaos.Crash(110*time.Millisecond, 1),
			},
			Launches: append([]TxnLaunch{{At: 0, Coord: 1}},
				wanLaunches(topo, 4, 400*time.Millisecond)[1:]...),
			FaultStart: 110 * time.Millisecond,
			FaultEnd:   20 * time.Second,
		},
	}
}

// HostileScenarioByName finds one curated scenario.
func HostileScenarioByName(name string) (HostileScenario, bool) {
	for _, s := range HostileScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return HostileScenario{}, false
}

// RegressionScenario pins one previously fixed engine bug as a named,
// replayable schedule: the exact seeded random schedule that exposed it (see
// EXPERIMENTS.md, "Deterministic simulation testing"). Replaying it must
// produce zero violations forever; revert the fix and the listed seed fails
// again.
type RegressionScenario struct {
	Name     string
	Bug      string
	Protocol engine.ProtocolKind
	Seeds    []int64
	// Points replays enumerated single-crash schedules instead of seeded
	// random ones — used where the edge is a precise crash instant (a WAL
	// append) rather than a schedule the sweep happened to find.
	Points []CrashPoint
}

// RegressionScenarios returns the pinned-bug table.
func RegressionScenarios() []RegressionScenario {
	return []RegressionScenario{
		{
			Name:     "in-doubt-livelock",
			Bug:      "decentralized in-doubt recovered peer was retransmitted to forever; it must answer with its recovering status and route survivors into termination",
			Protocol: engine.ThreePhase,
			Seeds:    []int64{113},
		},
		{
			Name:     "lost-dxact-retransmission",
			Bug:      "peerTimeout rebroadcast votes but never the transaction distribution, so a peer that missed the initial D-XACT could never join",
			Protocol: engine.ThreePhase,
			Seeds:    []int64{59},
		},
		{
			Name:     "unsealed-q-2pc-split",
			Bug:      "a site answered a cooperative-termination STATUS-REQ with q, then voted on the late D-XACT anyway; answering from q must abort irrevocably first",
			Protocol: engine.TwoPhase,
			Seeds:    []int64{1988},
		},
		{
			Name:     "recovered-coordinator-stalemate",
			Bug:      "participants nudged a recovered-but-in-doubt coordinator with DECIDE-REQ forever; it must answer recovering and the nudger must run termination",
			Protocol: engine.ThreePhase,
			Seeds:    []int64{596, 2543},
		},
		{
			Name: "paxos-acceptor-recovery",
			Bug: "an acceptor that crashes after forcing an accept record but before its 2b reaches the leader must rebuild the durable accept on recovery; " +
				"the decision must remain learnable by any later ballot and consistent with what the acceptor promised",
			Protocol: engine.PaxosCommit,
			Points: []CrashPoint{
				// The vote-yes record IS the ballot-0 self-accept of the
				// site's own instance: crash the instant it is durable, with
				// the PX-2B/PX-2A that would announce it still unsent.
				{Site: 2, kind: afterAppend, Rec: wal.RecVoteYes, Nth: 1},
				{Site: 3, kind: afterAppend, Rec: wal.RecVoteYes, Nth: 1},
				// An accept taken from another instance's PX-2A, persisted
				// with the 2b reply lost in the crash — at each participant
				// and at the coordinator's co-located acceptor.
				{Site: 1, kind: afterAppend, Rec: wal.RecPaxosAccept, Nth: 1},
				{Site: 2, kind: afterAppend, Rec: wal.RecPaxosAccept, Nth: 1},
				{Site: 3, kind: afterAppend, Rec: wal.RecPaxosAccept, Nth: 1},
			},
		},
		{
			Name: "presumed-abort-recovery",
			Bug: "under presumed abort a 2PC coordinator that dies before deciding leaves no durable trace (its begin record is a lazy append that dies staged); " +
				"recovery must presume abort from the empty log and answer inquiries with no-trace, so in-doubt participants abort by presumption instead of blocking forever",
			Protocol: engine.TwoPhase,
			Points: []CrashPoint{
				// The lazy window itself: the coordinator dies with its begin
				// record staged but not yet flushed — recovery sees an empty
				// log and must not invent the transaction.
				{Site: 1, kind: afterAppend, Rec: wal.RecBegin, Nth: 1},
				// The coordinator dies after absorbing the first YES vote:
				// both participants hold forced vote records and are in
				// doubt, while the coordinator's only trace (the staged
				// begin) is lost with the crash. The recovered coordinator
				// must answer DECIDE-REQ with no-trace and the participants
				// must presume abort.
				{Site: 1, kind: afterDeliver, Msg: 1},
				// Settlement records are lazy in every protocol: crash each
				// role with its end record staged-but-unflushed and let
				// recovery re-run idempotent settlement from the durable
				// commit record.
				{Site: 1, kind: afterAppend, Rec: wal.RecEnd, Nth: 1},
				{Site: 2, kind: afterAppend, Rec: wal.RecEnd, Nth: 1},
			},
		},
		{
			Name:     "backup-protocol-drift",
			Bug:      "late in-flight messages advanced a synced site past the backup's phase-1 snapshot; the backup must decide from the state it broadcast, and synced sites are fenced",
			Protocol: engine.ThreePhase,
			Seeds:    []int64{4504, 31051, 570},
		},
	}
}

// RunRegression replays every seed and enumerated crash point of one pinned
// scenario, returning the reports in declaration order.
func RunRegression(rs RegressionScenario) []Report {
	var out []Report
	for _, seed := range rs.Seeds {
		out = append(out, RunRandom(Config{Protocol: rs.Protocol}, seed))
	}
	for _, cp := range rs.Points {
		out = append(out, RunCrashPoint(Config{Protocol: rs.Protocol}, cp))
	}
	return out
}
