package dst

import (
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/wal"
)

// The strict-subset schedules: a 5-site cluster in which a transaction's
// cohort is only sites {2,4}. The other three sites are bystanders — with
// keyspace sharding this is the common case, and the termination and
// recovery protocols must consult only the participants, never the
// bystanders.

const subsetTx = "t-subset"

var (
	subsetCohort     = []int{2, 4}
	subsetBystanders = []int{1, 3, 5}
)

func subsetConfig(kind engine.ProtocolKind) Config {
	return Config{Protocol: kind, Sites: 5}
}

func launchSubset(peer bool) func(*cluster) error {
	return func(c *cluster) error {
		return c.beginSubset(2, subsetTx, subsetCohort, peer)
	}
}

// assertBystandersUntouched fails if any bystander site ever received a
// message for the transaction, logged anything durable, or knows an outcome.
func assertBystandersUntouched(t *testing.T, c *cluster, scenario string) {
	t.Helper()
	for _, m := range c.deliveries {
		if m.TxID != subsetTx {
			continue
		}
		for _, id := range subsetBystanders {
			if m.To == id {
				t.Errorf("%s: bystander site %d received %s", scenario, id, m)
			}
		}
	}
	for _, id := range subsetBystanders {
		if recs, err := c.logs[id].inner.Records(); err != nil || len(recs) != 0 {
			t.Errorf("%s: bystander site %d has %d WAL records", scenario, id, len(recs))
		}
		if c.down[id] {
			continue
		}
		if _, err := c.sites[id].Outcome(subsetTx); err == nil {
			t.Errorf("%s: bystander site %d knows the transaction", scenario, id)
		}
	}
}

// TestSubsetFaultFree: with no faults, a 2-of-5 transaction resolves at both
// participants, in every protocol and paradigm, without involving bystanders.
func TestSubsetFaultFree(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		for _, peer := range []bool{false, true} {
			cfg := subsetConfig(kind).withDefaults()
			c := newCluster(cfg, nil)
			if err := launchSubset(peer)(c); err != nil {
				t.Fatalf("%s peer=%v: begin: %v", kind, peer, err)
			}
			c.run(nil)
			for _, id := range subsetCohort {
				o, err := c.sites[id].Outcome(subsetTx)
				if err != nil || o != engine.OutcomeCommitted {
					t.Fatalf("%s peer=%v: site %d outcome = %v, %v", kind, peer, id, o, err)
				}
			}
			if got := c.sites[2].Participants(subsetTx); len(got) != 2 || got[0] != 2 || got[1] != 4 {
				t.Fatalf("%s peer=%v: participants = %v, want [2 4]", kind, peer, got)
			}
			assertBystandersUntouched(t, c, kind.String())
		}
	}
}

// TestSubsetCrashPointsConsultOnlyParticipants enumerates every single-crash
// schedule of the 2-of-5 transaction — a crash after each WAL append and each
// message processing, followed by staggered recovery — and checks, on every
// schedule, that the protocol invariants hold AND that termination and
// recovery never touch a bystander. In particular every enumerated crash
// point lands on a participant: bystanders do no work that could crash.
func TestSubsetCrashPointsConsultOnlyParticipants(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		cfg := subsetConfig(kind)
		pts := enumerateCrashPointsFrom(cfg.withDefaults(), launchSubset(false))
		if len(pts) == 0 {
			t.Fatalf("%s: no crash points enumerated", kind)
		}
		for _, cp := range pts {
			if cp.Site != 2 && cp.Site != 4 {
				t.Fatalf("%s: crash point at bystander site: %s", kind, cp)
			}
		}
		blocked := 0
		for _, cp := range pts {
			r, c := runCrashPointFrom(cfg, cp, launchSubset(false))
			scenario := kind.String() + " " + cp.String()
			if r.Blocked {
				blocked++
				if kind == engine.ThreePhase {
					t.Errorf("%s: 3PC blocked", scenario)
				}
			}
			for _, v := range r.Violations {
				t.Errorf("%s: %s", scenario, v)
			}
			assertBystandersUntouched(t, c, scenario)
		}
		t.Logf("%s: %d crash points, %d blocked", kind, len(pts), blocked)
	}
}

// TestSubsetTerminationElectsWithinCohort: the coordinator (site 2, the
// lowest participant) dies mid-protocol; 3PC's termination protocol must
// elect the backup from the cohort — site 4, not bystander 1 or 3 — and
// resolve the transaction without bystander traffic.
func TestSubsetTerminationElectsWithinCohort(t *testing.T) {
	cfg := subsetConfig(engine.ThreePhase)
	pts := enumerateCrashPointsFrom(cfg.withDefaults(), launchSubset(false))
	ran := 0
	for _, cp := range pts {
		if cp.Site != 2 {
			continue // coordinator crashes only
		}
		ran++
		r, c := runCrashPointFrom(cfg, cp, launchSubset(false))
		for _, v := range r.Violations {
			t.Errorf("%s: %s", cp, v)
		}
		// The survivor must have terminated on its own before recovery ran:
		// outcome decided while site 2 was still down is recorded in the
		// trace, but the cheap check is that the settled run has both
		// participants agreeing and nobody else involved.
		o2, err2 := c.sites[2].Outcome(subsetTx)
		o4, err4 := c.sites[4].Outcome(subsetTx)
		if err4 != nil {
			// With auto-forget running in-sim, site 4 may have settled and
			// dropped the transaction before the run closed; its durable log
			// still records the decision it applied.
			if o4 = c.durableOutcome(4, subsetTx); o4 != engine.OutcomePending {
				err4 = nil
			}
		}
		if err2 != nil || err4 != nil || o2 != o4 || o2 == engine.OutcomePending {
			t.Errorf("%s: outcomes %v/%v (%v/%v)", cp, o2, o4, err2, err4)
		}
		assertBystandersUntouched(t, c, cp.String())
	}
	if ran == 0 {
		t.Fatal("no coordinator crash points enumerated")
	}
}

// TestSubsetRecoveryQueriesOnlyParticipants: a participant crashes, the rest
// of the world settles, and the crashed site recovers from its WAL — the
// recovery protocol's DECIDE-REQ round must go to its cohort only.
func TestSubsetRecoveryQueriesOnlyParticipants(t *testing.T) {
	cfg := subsetConfig(engine.ThreePhase).withDefaults()
	cfg.Timeout = 50 * time.Millisecond
	for _, victim := range subsetCohort {
		cp := CrashPoint{Site: victim, kind: afterAppend, Rec: prepareRecordType(t, cfg, victim), Nth: 1}
		r, c := runCrashPointFrom(cfg, cp, launchSubset(false))
		if !c.everCrashed[victim] {
			t.Fatalf("victim %d never crashed", victim)
		}
		for _, v := range r.Violations {
			t.Errorf("victim %d: %s", victim, v)
		}
		assertBystandersUntouched(t, c, cp.String())
	}
}

// prepareRecordType finds the first WAL record type the victim logs in a
// fault-free reference run, so the recovery test can crash right after it.
func prepareRecordType(t *testing.T, cfg Config, victim int) wal.RecordType {
	t.Helper()
	c := newCluster(cfg, nil)
	if err := launchSubset(false)(c); err != nil {
		t.Fatal(err)
	}
	c.run(nil)
	recs, err := c.logs[victim].inner.Records()
	if err != nil || len(recs) == 0 {
		t.Fatalf("reference run logged nothing at site %d: %v", victim, err)
	}
	return recs[0].Type
}
