package dst

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nbcommit/internal/chaos"
	"nbcommit/internal/engine"
)

// TxnLaunch schedules one transaction in a hostile run: launched at virtual
// time At from coordinator Coord over the full cluster cohort.
type TxnLaunch struct {
	At    time.Duration
	Coord int
}

// HostileConfig describes one hostile-environment run: a WAN topology laid
// over the SimNetwork, a timed schedule of faults, and a timed workload. The
// (config, Seed) pair replays byte-for-byte.
type HostileConfig struct {
	Protocol engine.ProtocolKind
	Topology chaos.Topology
	Events   []chaos.Event
	Launches []TxnLaunch
	Seed     int64
	// Timeout is the base protocol timeout (virtual). Default 1s — above the
	// DefaultWAN tail of a full multi-round commit (3PC needs ~4-6
	// cross-region hops at a 60ms heavy-tailed median), below the curated
	// fault windows so timeouts still fire inside them.
	Timeout time.Duration
	// SiteTimeouts skews individual sites' timeouts from the start; the
	// SkewTimeout event changes them mid-run.
	SiteTimeouts map[int]time.Duration
	// FaultStart/FaultEnd bracket the scenario's fault window, used only to
	// classify which launches count toward during-fault availability.
	FaultStart, FaultEnd time.Duration
	// Horizon bounds virtual time (default 20s); MaxSteps bounds scheduler
	// steps (default 200000).
	Horizon  time.Duration
	MaxSteps int
}

// TxnResult is the measured fate of one launched transaction. Two notions of
// done matter in a hostile environment: Answered is the client's view (the
// coordinator reached a decision — commit availability), Resolved is the
// cluster's (every alive site knows the outcome — the paper's termination).
type TxnResult struct {
	ID         string  `json:"id"`
	Coord      int     `json:"coord"`
	LaunchedMs float64 `json:"launched_ms"`
	// Answered: the coordinator decided; AnswerMs/LatencyMs time it.
	Answered  bool    `json:"answered"`
	AnswerMs  float64 `json:"answer_ms,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
	// Resolved: every alive site that knows the transaction decided it.
	Resolved    bool    `json:"resolved"`
	ResolvedMs  float64 `json:"resolved_ms,omitempty"`
	Outcome     string  `json:"outcome"`
	Blocked     bool    `json:"blocked"`      // some alive site reported ErrBlocked
	DuringFault bool    `json:"during_fault"` // launched inside the fault window
}

// HostileReport is the outcome of one hostile run: the usual Report plus the
// per-transaction availability and latency measurements the chaos bench
// aggregates into the 2PC-vs-3PC matrix.
type HostileReport struct {
	Report
	Scenario     string
	Txns         []TxnResult
	BlockedSites []int // sites ever observed in the blocked state
	// SplitTxns counts transactions decided differently by two sites — the
	// consistency findings a hostile environment can force (3PC under
	// partitions); they also appear in Violations.
	SplitTxns int
}

// txnProbe tracks one launch through the run.
type txnProbe struct {
	launch     TxnLaunch
	id         string
	launched   bool
	answered   bool // some alive site decided: a client could learn the outcome
	answeredAt time.Duration
	resolved   bool // every alive site that knows the txn decided it
	resolvedAt time.Duration
	outcome    engine.Outcome
	blocked    bool
}

// RunHostile executes one hostile schedule: builds the topology on the
// simulated network, launches the timed workload, applies the timed fault
// events, and measures per-transaction resolution, blocking and latency in
// virtual time. The existing checkers run at the end: consistency splits are
// recorded both as Violations and as the SplitTxns count, since under
// partitions a split is a protocol finding to measure, not a harness bug.
func RunHostile(hc HostileConfig) HostileReport {
	if hc.Timeout == 0 {
		hc.Timeout = time.Second
	}
	if hc.Horizon == 0 {
		hc.Horizon = 20 * time.Second
	}
	if hc.MaxSteps == 0 {
		hc.MaxSteps = 200000
	}
	cfg := Config{
		Protocol:     hc.Protocol,
		Sites:        hc.Topology.Sites(),
		Timeout:      hc.Timeout,
		SiteTimeouts: hc.SiteTimeouts,
		Horizon:      hc.Horizon,
		MaxSteps:     hc.MaxSteps,
	}
	c := newCluster(cfg, nil)
	hr := HostileReport{Report: Report{
		Scenario: fmt.Sprintf("hostile %s seed=%d", hc.Topology.Name, hc.Seed),
		Protocol: hc.Protocol,
		Seed:     hc.Seed,
	}}

	// The hostile substrate: seeded link model over the virtual clock.
	c.net.Seed(hc.Seed)
	c.net.UseClock(c.clk.Now)
	hc.Topology.Apply(c.net)

	start := c.clk.Now()
	p := &plan{rng: rand.New(rand.NewSource(hc.Seed))}

	// Timed workload: each launch is a schedule event.
	probes := make([]*txnProbe, len(hc.Launches))
	for i, l := range hc.Launches {
		pr := &txnProbe{launch: l, id: fmt.Sprintf("t%d", i+1)}
		probes[i] = pr
		p.timed = append(p.timed, tevent{
			at:   l.At,
			name: fmt.Sprintf("launch %s coord=%d", pr.id, l.Coord),
			apply: func(c *cluster) {
				pr.launched = true
				if c.down[pr.launch.Coord] {
					c.tracef("launch %s: coordinator %d is down", pr.id, pr.launch.Coord)
					c.txids = append(c.txids, pr.id) // count it: launched into an outage
					return
				}
				if err := c.begin(pr.launch.Coord, pr.id, false); err != nil {
					c.tracef("launch %s failed: %v", pr.id, err)
				}
			},
		})
	}

	// Timed faults.
	for _, e := range hc.Events {
		ev := e
		p.timed = append(p.timed, tevent{
			at:    ev.At,
			name:  ev.String(),
			apply: func(c *cluster) { applyChaosEvent(c, hc.Topology, ev) },
		})
	}
	sortTimed(p.timed)

	// Observe at every virtual-time boundary: record the instant each
	// transaction became resolved everywhere alive, and any blocked state.
	blockedSites := map[int]bool{}
	c.observe = func() {
		now := c.clk.Now().Sub(start)
		for _, pr := range probes {
			if !pr.launched || pr.resolved {
				continue
			}
			pending, decided := false, false
			for _, id := range c.ids {
				if c.down[id] {
					continue
				}
				o, err := c.sites[id].Outcome(pr.id)
				switch {
				case errors.Is(err, engine.ErrBlocked):
					pr.blocked = true
					blockedSites[id] = true
					pending = true
				case err != nil:
					// site does not know the transaction: vacuous
				case o == engine.OutcomePending:
					pending = true
				default:
					decided = true
					pr.outcome = o
				}
			}
			if decided && !pr.answered {
				pr.answered = true
				pr.answeredAt = now
			}
			if decided && !pending {
				pr.resolved = true
				pr.resolvedAt = now
			}
		}
	}

	c.run(p)

	// Final verdicts: the standard checkers, with splits counted as data.
	snap := c.snapshot()
	checkConsistency(c, snap, &hr.Report)
	hr.SplitTxns = len(hr.Report.Violations)
	for _, views := range snap {
		for _, v := range views {
			if v.blocked {
				hr.Report.Blocked = true
			}
		}
	}
	for id := range blockedSites {
		hr.Report.Blocked = true
		hr.BlockedSites = append(hr.BlockedSites, id)
	}
	sort.Ints(hr.BlockedSites)
	finishReport(c, &hr.Report)

	for _, pr := range probes {
		tr := TxnResult{
			ID:         pr.id,
			Coord:      pr.launch.Coord,
			LaunchedMs: durMs(pr.launch.At),
			Answered:   pr.answered,
			Resolved:   pr.resolved,
			Outcome:    "pending",
			Blocked:    pr.blocked,
			DuringFault: hc.FaultEnd > hc.FaultStart &&
				pr.launch.At >= hc.FaultStart && pr.launch.At < hc.FaultEnd,
		}
		if pr.answered {
			tr.AnswerMs = durMs(pr.answeredAt)
			tr.LatencyMs = durMs(pr.answeredAt - pr.launch.At)
			tr.Outcome = pr.outcome.String()
		}
		if pr.resolved {
			tr.ResolvedMs = durMs(pr.resolvedAt)
		}
		hr.Txns = append(hr.Txns, tr)
	}
	return hr
}

// applyChaosEvent maps one declarative chaos event onto the live cluster.
func applyChaosEvent(c *cluster, topo chaos.Topology, e chaos.Event) {
	switch e.Kind {
	case chaos.EventPartitionRegion:
		for _, pr := range topo.CrossPairs(e.Region) {
			c.net.BlockOneWay(pr[0], pr[1])
			c.net.BlockOneWay(pr[1], pr[0])
		}
	case chaos.EventHealRegion:
		for _, pr := range topo.CrossPairs(e.Region) {
			c.net.UnblockOneWay(pr[0], pr[1])
			c.net.UnblockOneWay(pr[1], pr[0])
		}
	case chaos.EventIsolateOutbound:
		for b := 1; b <= topo.Sites(); b++ {
			if b != e.Site {
				c.net.BlockOneWay(e.Site, b)
			}
		}
	case chaos.EventHealOutbound:
		for b := 1; b <= topo.Sites(); b++ {
			if b != e.Site {
				c.net.UnblockOneWay(e.Site, b)
			}
		}
	case chaos.EventGray:
		c.net.SetGray(e.Site, e.Factor)
	case chaos.EventClearGray:
		c.net.SetGray(e.Site, 1)
	case chaos.EventCrash:
		if !c.down[e.Site] && c.aliveCount() > 1 {
			c.crash(e.Site)
		}
	case chaos.EventRecover:
		c.recoverSite(e.Site)
	case chaos.EventSkewTimeout:
		if s := c.sites[e.Site]; s != nil && !c.down[e.Site] && e.Factor > 0 {
			s.SetTimeout(time.Duration(float64(c.timeoutFor(e.Site)) * e.Factor))
		}
	}
}

// sortTimed orders timed events by instant, stable so same-instant events
// keep declaration order (launches before faults declared after them).
func sortTimed(evs []tevent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
}

func durMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
