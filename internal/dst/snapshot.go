package dst

import (
	"errors"
	"fmt"
	"strings"

	"nbcommit/internal/clock"
	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
)

// This file plugs real multi-version kv stores into the simulated cluster
// and checks snapshot consistency across the crash-point enumeration: at
// every instant the scheduler is about to advance virtual time, every alive
// site's stable snapshot is sampled and must satisfy
//
//   - atomicity: a transaction's write set is visible all-or-nothing — a
//     snapshot never shows a torn write set;
//   - stability: the stable timestamp sits strictly below the site's oldest
//     in-doubt prepare, so a snapshot never reads around an unresolved write;
//   - monotonicity: a site's stable timestamp never moves backwards while
//     the site stays up (recovery rebuilds the store and restarts its clock,
//     so the baseline resets per incarnation);
//   - isolation from aborts: a write set whose transaction ultimately aborts
//     is never visible in any sample, at any site, at any instant;
//   - silence: snapshot reads exchange no commit-protocol messages — the
//     wire carries only the write transactions' traffic (the fast-path
//     analog of paxosNoTermination).
//
// The workload is two cross-site transactions over the full cohort, each
// writing a two-key pair (same value) at every site: t1 commits, t2 is
// scripted to abort by never being staged at the highest-numbered site, so
// that site's Prepare votes NO. Distinct keys per transaction keep the
// inline deterministic Prepare free of lock waits.

// snapKeys returns the two keys a workload transaction writes at every site.
func snapKeys(txid string) (string, string) { return "a-" + txid, "b-" + txid }

// snapHarness owns the kv stores behind a simulated cluster and accumulates
// sample-time evidence for the end-of-run checks.
type snapHarness struct {
	stores map[int]*kv.Store
	epoch  map[int]int // store incarnation; bumped by every (re)build
	txids  []string

	lastEpoch  map[int]int
	lastStable map[int]uint64
	visible    map[string]map[int]bool // txid -> sites where a sample saw it
	samples    int
	// inDoubtSamples counts samples taken while some site held an unresolved
	// prepare — evidence the watermark invariant was tested in anger, not
	// only on quiescent stores.
	inDoubtSamples int
	violations     []string
}

func newSnapHarness() *snapHarness {
	return &snapHarness{
		stores:     map[int]*kv.Store{},
		epoch:      map[int]int{},
		txids:      []string{"t1", "t2"},
		lastEpoch:  map[int]int{},
		lastStable: map[int]uint64{},
		visible:    map[string]map[int]bool{},
	}
}

func (h *snapHarness) violate(format string, args ...any) {
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
}

// mkResource is the Config.mkResource hook: a fresh store per site
// incarnation, on the cluster's virtual clock so nothing in the store ever
// consults real time.
func (h *snapHarness) mkResource(site int, clk clock.Clock) engine.Resource {
	st := kv.NewStore(kv.Options{Clock: clk})
	h.stores[site] = st
	h.epoch[site]++
	return snapResource{st}
}

// snapResource adapts kv.Store to engine.Resource exactly as the production
// wiring (dtx.StoreResource) does.
type snapResource struct{ st *kv.Store }

func (r snapResource) Prepare(txid string) ([]byte, error) {
	ops, err := r.st.Prepare(txid)
	if err != nil {
		return nil, err
	}
	return kv.EncodeWrites(ops)
}

func (r snapResource) Commit(txid string, _ []byte) error { return r.st.Commit(txid) }

// Abort tolerates unknown transactions: the staged state died with a crash
// (or was never staged — the scripted NO vote), and aborts are idempotent.
func (r snapResource) Abort(txid string) error { _ = r.st.Abort(txid); return nil }

func (r snapResource) ApplyRedo(redo []byte) error {
	ops, err := kv.DecodeWrites(redo)
	if err != nil {
		return err
	}
	r.st.ApplyRedo(ops)
	return nil
}

func (r snapResource) CommitTS() uint64  { return r.st.CommitTS() }
func (r snapResource) Watermark() uint64 { return r.st.Watermark() }

// launch stages the workload writes and starts both commit protocols. It
// also installs the sampling observer, which runs before every virtual-time
// advance and once at run exit.
func (h *snapHarness) launch(c *cluster) error {
	refuse := c.ids[len(c.ids)-1]
	for _, txid := range h.txids {
		a, b := snapKeys(txid)
		for _, id := range c.ids {
			if txid == "t2" && id == refuse {
				continue // never staged: Prepare at this site votes NO
			}
			st := h.stores[id]
			if err := st.Begin(txid); err != nil {
				return err
			}
			if err := st.Put(txid, a, txid); err != nil {
				return err
			}
			if err := st.Put(txid, b, txid); err != nil {
				return err
			}
		}
	}
	c.observe = func() { h.sample(c) }
	if err := c.begin(1, "t1", false); err != nil {
		return err
	}
	return c.begin(1, "t2", false)
}

// sample checks every alive site's stable snapshot at one instant.
func (h *snapHarness) sample(c *cluster) {
	wire := len(c.deliveries)
	for _, id := range c.ids {
		if c.down[id] {
			continue
		}
		st := h.stores[id]
		stable := st.StableTS()
		if w := st.Watermark(); w != 0 {
			h.inDoubtSamples++
			if stable >= w {
				h.violate("site %d stable timestamp %d not below in-doubt watermark %d", id, stable, w)
			}
		}
		if ep := h.epoch[id]; ep == h.lastEpoch[id] {
			if stable < h.lastStable[id] {
				h.violate("site %d stable timestamp moved backwards: %d -> %d", id, h.lastStable[id], stable)
			}
			h.lastStable[id] = stable
		} else {
			h.lastEpoch[id], h.lastStable[id] = ep, stable
		}
		for _, txid := range h.txids {
			a, b := snapKeys(txid)
			va, errA := st.ReadAt(stable, a)
			vb, errB := st.ReadAt(stable, b)
			switch {
			case errA == nil && errB == nil && va == txid && vb == txid:
				if h.visible[txid] == nil {
					h.visible[txid] = map[int]bool{}
				}
				h.visible[txid][id] = true
			case errors.Is(errA, kv.ErrNotFound) && errors.Is(errB, kv.ErrNotFound):
				// Not visible yet (or ever): fine.
			default:
				h.violate("torn snapshot of %s at site %d (ts %d): a=(%q,%v) b=(%q,%v)",
					txid, id, stable, va, errA, vb, errB)
			}
		}
	}
	if len(c.deliveries) != wire {
		h.violate("snapshot sampling generated %d protocol messages", len(c.deliveries)-wire)
	}
	h.samples++
}

// finalCheck runs once the schedule has settled (crashed site recovered,
// every transaction resolved everywhere) and folds the harness verdicts into
// the report.
func (h *snapHarness) finalCheck(c *cluster, r *Report) {
	snap := c.snapshot()
	for _, txid := range h.txids {
		// The global outcome: any site that decided (consistency across
		// sites is checked separately by checkConsistency). With garbage
		// collection running in-sim the whole cohort may have settled and
		// forgotten before the final check, so when no live view remembers,
		// fall back to durable evidence: commit records are always forced,
		// so a committed transaction leaves RecCommitted in some WAL; no
		// such record anywhere means the transaction did not commit and the
		// abort expectations below apply.
		outcome := engine.OutcomePending
		for _, v := range snap[txid] {
			if v.known && v.outcome != engine.OutcomePending {
				outcome = v.outcome
				break
			}
		}
		if outcome == engine.OutcomePending {
			for _, id := range c.ids {
				if c.durableOutcome(id, txid) == engine.OutcomeCommitted {
					outcome = engine.OutcomeCommitted
					break
				}
			}
		}
		if outcome == engine.OutcomeAborted && len(h.visible[txid]) > 0 {
			var sites []int
			for id := range h.visible[txid] {
				sites = append(sites, id)
			}
			h.violate("aborted %s was visible in a snapshot at sites %v", txid, sites)
		}
		a, b := snapKeys(txid)
		for _, id := range c.ids {
			if c.down[id] {
				continue
			}
			st := h.stores[id]
			stable := st.StableTS()
			va, errA := st.ReadAt(stable, a)
			vb, errB := st.ReadAt(stable, b)
			switch outcome {
			case engine.OutcomeCommitted:
				if errA != nil || errB != nil || va != txid || vb != txid {
					h.violate("committed %s missing from site %d's final snapshot: a=(%q,%v) b=(%q,%v)",
						txid, id, va, errA, vb, errB)
				}
			default: // aborted, or never decided anywhere
				if errA == nil || errB == nil {
					h.violate("%s (outcome %v) present in site %d's final snapshot", txid, outcome, id)
				}
			}
		}
	}
	// The fast-path silence scan: every message on the wire belongs to a
	// write transaction. Snapshot reads — h.samples rounds of them — sent
	// nothing, and no read-only transaction ID ("ro-" at the dtx/nodeapi
	// layers) ever appears in a delivery.
	writes := map[string]bool{}
	for _, txid := range h.txids {
		writes[txid] = true
	}
	for _, m := range c.deliveries {
		if m.TxID == "" {
			continue
		}
		if strings.HasPrefix(m.TxID, "ro-") {
			h.violate("read-only transaction on the wire: %s", m)
		} else if !writes[m.TxID] {
			h.violate("message for unknown transaction: %s", m)
		}
	}
	if h.samples == 0 {
		h.violate("observer never sampled a snapshot")
	}
	r.Violations = append(r.Violations, h.violations...)
}

// RunSnapshotCrashPoint executes one single-crash schedule of the snapshot
// workload over kv-backed resources and checks snapshot consistency on top
// of the protocol invariants.
func RunSnapshotCrashPoint(cfg Config, cp CrashPoint) Report {
	h := newSnapHarness()
	cfg.mkResource = h.mkResource
	r, c := runCrashPointFrom(cfg, cp, h.launch)
	h.finalCheck(c, &r)
	return r
}

// ExploreSnapshotCrashPoints enumerates every single-crash schedule of the
// snapshot workload — one crash per WAL append and per message delivery seen
// in the fault-free reference execution — and runs each with full snapshot
// sampling.
func ExploreSnapshotCrashPoints(cfg Config) []Report {
	cfg = cfg.withDefaults()
	refHarness := newSnapHarness()
	ref := cfg
	ref.mkResource = refHarness.mkResource
	var reports []Report
	for _, cp := range enumerateCrashPointsFrom(ref, refHarness.launch) {
		reports = append(reports, RunSnapshotCrashPoint(cfg, cp))
	}
	return reports
}
