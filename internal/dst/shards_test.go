package dst

// The engine's sharded runtime must be invisible to deterministic
// simulation: the same seed has to produce byte-identical traces and WAL
// digests whatever Config.Shards is, because the timer wheel is per site
// (not per shard) and crash reports visit transactions in globally sorted
// order. This is the property that lets a seed reported from a
// production-shaped (multi-shard) configuration be replayed anywhere.

import (
	"testing"

	"nbcommit/internal/engine"
)

func TestShardCountInvariantDeterminism(t *testing.T) {
	for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		for _, seed := range []int64{1, 7, 42, 1234, 99999} {
			base := RunRandom(Config{Protocol: proto, Shards: 1}, seed)
			for _, shards := range []int{2, 8} {
				got := RunRandom(Config{Protocol: proto, Shards: shards}, seed)
				if got.WALDigest != base.WALDigest {
					t.Fatalf("%s seed %d: WAL digest differs between 1 and %d shards: %s vs %s",
						proto, seed, shards, base.WALDigest, got.WALDigest)
				}
				if len(got.Trace) != len(base.Trace) {
					t.Fatalf("%s seed %d: trace length differs between 1 and %d shards: %d vs %d",
						proto, seed, shards, len(base.Trace), len(got.Trace))
				}
				for i := range base.Trace {
					if got.Trace[i] != base.Trace[i] {
						t.Fatalf("%s seed %d: traces diverge at step %d with %d shards:\n  %s\n  %s",
							proto, seed, i, shards, base.Trace[i], got.Trace[i])
					}
				}
			}
		}
	}

	// Crash-point schedules (mid-protocol crash + recovery) replay
	// identically across shard counts too.
	cfg := Config{Protocol: engine.ThreePhase}
	pts := enumerateCrashPoints(cfg.withDefaults())
	if len(pts) == 0 {
		t.Fatal("no crash points enumerated")
	}
	for _, cp := range []CrashPoint{pts[0], pts[len(pts)/2], pts[len(pts)-1]} {
		a := RunCrashPoint(Config{Protocol: engine.ThreePhase, Shards: 1}, cp)
		b := RunCrashPoint(Config{Protocol: engine.ThreePhase, Shards: 8}, cp)
		if a.WALDigest != b.WALDigest || len(a.Trace) != len(b.Trace) {
			t.Fatalf("crash point %s: 1-shard and 8-shard runs diverge", cp)
		}
	}
}
