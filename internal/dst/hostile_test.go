package dst

import (
	"testing"
	"time"

	"nbcommit/internal/chaos"
	"nbcommit/internal/engine"
)

// TestHostileScheduleDeterminism is the acceptance gate for the whole hostile
// layer: running the same (scenario, protocol, seed) twice must produce the
// identical delivery log, step count and durable state. Every scenario in the
// curated table is checked, both protocols.
func TestHostileScheduleDeterminism(t *testing.T) {
	for _, sc := range HostileScenarios() {
		for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
			t.Run(sc.Name+"/"+proto.String(), func(t *testing.T) {
				one := RunHostile(sc.Config(proto, 7))
				two := RunHostile(sc.Config(proto, 7))
				if one.Steps != two.Steps {
					t.Fatalf("steps diverged: %d vs %d", one.Steps, two.Steps)
				}
				if one.WALDigest != two.WALDigest {
					t.Fatalf("WAL digest diverged: %s vs %s", one.WALDigest, two.WALDigest)
				}
				if len(one.Trace) != len(two.Trace) {
					t.Fatalf("trace length diverged: %d vs %d", len(one.Trace), len(two.Trace))
				}
				for i := range one.Trace {
					if one.Trace[i] != two.Trace[i] {
						t.Fatalf("trace diverged at %d:\n  %s\n  %s", i, one.Trace[i], two.Trace[i])
					}
				}
			})
		}
	}
}

// TestHostileScenariosSafety: across the curated table, no run may produce a
// harness-level failure (for Paxos that includes any termination-protocol
// message), and only 3PC may ever split a decision — 2PC blocks instead, and
// Paxos decides by majority consensus.
func TestHostileScenariosSafety(t *testing.T) {
	for _, sc := range HostileScenarios() {
		for _, proto := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
			t.Run(sc.Name+"/"+proto.String(), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					r := RunHostile(sc.Config(proto, seed))
					if len(r.Violations) > r.SplitTxns {
						t.Fatalf("seed %d harness failure: %v", seed, r.Violations[r.SplitTxns:])
					}
					if proto != engine.ThreePhase && r.SplitTxns > 0 {
						t.Fatalf("seed %d: %s split a decision: %v", seed, proto, r.Violations)
					}
				}
			})
		}
	}
}

// TestCoordCrashBlockingGap measures the paper's central claim on the WAN
// topology: with the coordinator crashing after the cohort prepared, 2PC
// leaves participants in doubt on some seeds while 3PC terminates on every
// one of them.
func TestCoordCrashBlockingGap(t *testing.T) {
	sc, ok := HostileScenarioByName("coord-crash-prepared")
	if !ok {
		t.Fatal("scenario missing from the curated table")
	}
	twoBlocked := 0
	for seed := int64(1); seed <= 6; seed++ {
		two := RunHostile(sc.Config(engine.TwoPhase, seed))
		three := RunHostile(sc.Config(engine.ThreePhase, seed))
		px := RunHostile(sc.Config(engine.PaxosCommit, seed))
		if len(two.BlockedSites) > 0 {
			twoBlocked++
		}
		if len(three.BlockedSites) > 0 {
			t.Fatalf("seed %d: 3PC blocked at sites %v — nonblocking property lost", seed, three.BlockedSites)
		}
		for _, txn := range three.Txns {
			if !txn.Resolved {
				t.Fatalf("seed %d: 3PC left %s unresolved", seed, txn.ID)
			}
		}
		// Paxos survives the same coordinator crash without blocking and —
		// checked by paxosNoTermination inside every run — without a single
		// termination-protocol message: the survivors out-ballot the corpse.
		if len(px.BlockedSites) > 0 {
			t.Fatalf("seed %d: Paxos blocked at sites %v", seed, px.BlockedSites)
		}
		for _, txn := range px.Txns {
			if !txn.Resolved {
				t.Fatalf("seed %d: Paxos left %s unresolved", seed, txn.ID)
			}
		}
	}
	if twoBlocked == 0 {
		t.Fatal("2PC never blocked across seeds 1-6: the scenario lost its bite")
	}
}

// TestHostileTxnMeasurements sanity-checks the per-transaction bookkeeping on
// the no-fault baseline: everything launched is answered and resolves, answer
// precedes resolution, latencies are positive virtual milliseconds. The 1%
// cross-region loss can abort a transaction (a lost vote times the
// coordinator out — safe, and an answer), so outcomes must be decided but
// not necessarily committed.
func TestHostileTxnMeasurements(t *testing.T) {
	sc, ok := HostileScenarioByName("wan-baseline")
	if !ok {
		t.Fatal("scenario missing")
	}
	r := RunHostile(sc.Config(engine.ThreePhase, 3))
	if len(r.Txns) == 0 {
		t.Fatal("no transactions measured")
	}
	committed := 0
	for _, txn := range r.Txns {
		if !txn.Answered || !txn.Resolved {
			t.Fatalf("%s not answered/resolved on the fault-free baseline: %+v", txn.ID, txn)
		}
		if txn.LatencyMs <= 0 {
			t.Fatalf("%s latency = %v, want > 0 (virtual WAN round trips)", txn.ID, txn.LatencyMs)
		}
		if txn.AnswerMs > txn.ResolvedMs {
			t.Fatalf("%s answered at %.2fms after resolving at %.2fms", txn.ID, txn.AnswerMs, txn.ResolvedMs)
		}
		if txn.Outcome == "pending" {
			t.Fatalf("%s outcome pending despite being resolved", txn.ID)
		}
		if txn.Outcome == "committed" {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("nothing committed on the fault-free baseline")
	}
}

// TestSkewTimeoutEvent verifies the schedule's timeout skew actually lands on
// the engine: a run with a drastically shortened coordinator timeout aborts
// transactions the unskewed run commits.
func TestSkewTimeoutEvent(t *testing.T) {
	topo := chaos.DefaultWAN(3, 2)
	topo.Cross.Loss = 0 // no loss: the unskewed run must commit deterministically
	base := HostileConfig{
		Protocol: engine.ThreePhase,
		Topology: topo,
		Launches: []TxnLaunch{{At: 200 * time.Millisecond, Coord: 1}},
		Seed:     5,
	}
	r := RunHostile(base)
	if len(r.Txns) != 1 || r.Txns[0].Outcome != "committed" {
		t.Fatalf("unskewed run: %+v", r.Txns)
	}

	skewed := base
	// 0.01x of the 400ms default: far below one cross-region round trip.
	skewed.Events = []chaos.Event{chaos.SkewTimeout(0, 1, 0.01)}
	r = RunHostile(skewed)
	if len(r.Txns) != 1 || r.Txns[0].Outcome != "aborted" {
		t.Fatalf("skewed run should abort on timeout: %+v", r.Txns)
	}
}
