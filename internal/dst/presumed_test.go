package dst

import (
	"testing"

	"nbcommit/internal/clock"
	"nbcommit/internal/engine"
	"nbcommit/internal/wal"
)

// Presumed-abort and read-only-participant coverage: the forced-record diet
// must not change any decision. These tests drive the same enumeration
// machinery as dst_test.go but with the windows the diet opened — lazy
// (staged-but-unflushed) WAL appends and cohort members that drop out of
// phase 2 after a read-only vote.

const roTx = "t1"

// roConfig builds a 3-site cluster with read-only votes enabled and site 3
// scripted to prepare with an empty write set for every transaction.
func roConfig(kind engine.ProtocolKind) Config {
	cfg := Config{Protocol: kind, readOnlyVotes: true}
	cfg.mkResource = func(site int, clk clock.Clock) engine.Resource {
		r := newResource()
		if site == 3 {
			r.readonly[roTx] = true
		}
		return r
	}
	return cfg.withDefaults()
}

func launchRO(c *cluster) error { return c.begin(1, roTx, false) }

// TestReadOnlyParticipantSilent: in a fault-free run the read-only member
// answers phase 1 with READ-ONLY and is then completely done — it forces
// nothing, is skipped by the whole of phase 2 (PREPARE, decision broadcast,
// settlement), and retains no transaction state. The writers still commit.
func TestReadOnlyParticipantSilent(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		c := newCluster(roConfig(kind), nil)
		if err := launchRO(c); err != nil {
			t.Fatalf("%s: begin: %v", kind, err)
		}
		c.run(nil)
		for _, id := range []int{1, 2} {
			o, err := c.sites[id].Outcome(roTx)
			if err != nil || o != engine.OutcomeCommitted {
				t.Fatalf("%s: writer site %d outcome = %v, %v", kind, id, o, err)
			}
		}
		if recs, err := c.logs[3].inner.Records(); err != nil || len(recs) != 0 {
			t.Errorf("%s: read-only site logged %d records, want 0", kind, len(recs))
		}
		if _, err := c.sites[3].Outcome(roTx); err == nil {
			t.Errorf("%s: read-only site still tracks the transaction", kind)
		}
		sawRO := false
		for _, m := range c.deliveries {
			if m.TxID != roTx {
				continue
			}
			if m.From == 3 && m.Kind == engine.KindReadOnly {
				sawRO = true
			}
			if m.To == 3 && m.Kind != engine.KindVoteReq {
				t.Errorf("%s: read-only site received phase-2 traffic: %s", kind, m)
			}
		}
		if !sawRO {
			t.Errorf("%s: no READ-ONLY vote observed on the wire", kind)
		}
	}
}

// TestReadOnlyCrashPointsStayConsistent enumerates every single-crash
// schedule of the read-only workload for 2PC and 3PC. The read-only site
// forces nothing, so no afterAppend point may land on it; and no schedule —
// including coordinator death after the read-only member already dropped
// out — may split the decision or strand a site after recovery.
func TestReadOnlyCrashPointsStayConsistent(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		cfg := roConfig(kind)
		pts := enumerateCrashPointsFrom(cfg, launchRO)
		if len(pts) == 0 {
			t.Fatalf("%s: no crash points enumerated", kind)
		}
		blocked := 0
		for _, cp := range pts {
			if cp.Site == 3 && cp.kind == afterAppend {
				t.Fatalf("%s: read-only site has WAL appends to crash on: %s", kind, cp)
			}
			r, _ := runCrashPointFrom(cfg, cp, launchRO)
			scenario := kind.String() + " " + cp.String()
			if r.Blocked {
				blocked++
				if kind == engine.ThreePhase {
					t.Errorf("%s: 3PC blocked", scenario)
				}
			}
			for _, v := range r.Violations {
				t.Errorf("%s: %s", scenario, v)
			}
		}
		t.Logf("%s: %d read-only crash points, %d blocked", kind, len(pts), blocked)
	}
}

// TestTwoPCLazyBeginWindowEnumerated: the 2PC coordinator's begin record is
// a lazy append under presumed abort, and the explorer must reach the
// staged-but-unflushed window. Crashing there loses the record: after
// recovery the coordinator's log is empty (its transaction never existed,
// durably) and the run closes with no violations.
func TestTwoPCLazyBeginWindowEnumerated(t *testing.T) {
	cfg := Config{Protocol: engine.TwoPhase}.withDefaults()
	launch := func(c *cluster) error { return c.begin(1, "t1", false) }
	found := 0
	for _, cp := range enumerateCrashPointsFrom(cfg, launch) {
		if cp.Site != 1 || cp.kind != afterAppend || cp.Rec != wal.RecBegin {
			continue
		}
		found++
		r, c := runCrashPointFrom(cfg, cp, launch)
		for _, v := range r.Violations {
			t.Errorf("%s: %s", cp, v)
		}
		if recs, _ := c.logs[1].inner.Records(); len(recs) != 0 {
			t.Errorf("%s: staged begin record leaked into the durable log: %v", cp, recs)
		}
	}
	if found == 0 {
		t.Fatal("no RecBegin crash point at the 2PC coordinator: the lazy begin window is not being enumerated")
	}
}

// TestTwoPCSettlementWindowReconverges: end records are lazy everywhere.
// A participant that crashes with its end record staged recovers from a log
// whose last transaction record is the forced commit, so it re-runs
// settlement against a coordinator that may have forgotten the transaction
// entirely — and the run must still close resolved and consistent.
func TestTwoPCSettlementWindowReconverges(t *testing.T) {
	cfg := Config{Protocol: engine.TwoPhase}.withDefaults()
	launch := func(c *cluster) error { return c.begin(1, "t1", false) }
	found := 0
	for _, cp := range enumerateCrashPointsFrom(cfg, launch) {
		if cp.kind != afterAppend || cp.Rec != wal.RecEnd {
			continue
		}
		found++
		r, c := runCrashPointFrom(cfg, cp, launch)
		for _, v := range r.Violations {
			t.Errorf("%s: %s", cp, v)
		}
		o, err := c.sites[cp.Site].Outcome("t1")
		if err == nil && o == engine.OutcomePending {
			t.Errorf("%s: recovered site still pending", cp)
		}
	}
	if found == 0 {
		t.Fatal("no RecEnd crash points enumerated: the lazy settlement window is not being modelled")
	}
}
