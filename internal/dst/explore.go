package dst

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Report is the outcome of one explored schedule.
type Report struct {
	// Scenario names the schedule ("site 2 crashes after WAL append
	// vote-yes#1", "random schedule seed=41", ...).
	Scenario string
	Protocol engine.ProtocolKind
	// Seed reproduces the schedule for random runs; 0 for enumerated ones.
	Seed int64
	// Steps the scheduler executed.
	Steps int
	// Blocked records that some operational site reported ErrBlocked before
	// recovery — expected (and sought) for 2PC, a violation for 3PC.
	Blocked bool
	// Violations are invariant breaches; empty means the schedule passed.
	Violations []string
	// Trace is the full deterministic event journal, for replay diffing.
	Trace []string
	// WALDigest fingerprints all durable state at the end of the run.
	WALDigest string
}

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// action is one scripted fault in a random schedule.
type action struct {
	step int
	kind string // "crash", "recover", "block", "unblock"
	site int
	a, b int
}

// tevent is one virtual-time-stamped schedule entry (hostile schedules):
// unlike step-stamped actions it fires when the clock reaches its instant,
// never earlier.
type tevent struct {
	at    time.Duration // offset from run start
	name  string
	apply func(*cluster)
}

// plan drives a random schedule: an rng choosing delivery order plus a
// step-stamped fault script and an optional virtual-time-stamped hostile
// schedule (timed must be sorted by at).
type plan struct {
	rng     *rand.Rand
	actions []action
	next    int
	timed   []tevent
	tnext   int
	// lossy enables fair-loss message drops: each (kind, txid, from, to)
	// identity is dropped at most once, so retransmissions always get
	// through eventually — any stall under this model is a missing-retry
	// bug, not bad luck.
	lossy   bool
	dropped map[string]bool
}

// fireTimed applies every timed event whose virtual instant has arrived.
func (p *plan) fireTimed(c *cluster, start time.Time) {
	now := c.clk.Now()
	for p.tnext < len(p.timed) && !start.Add(p.timed[p.tnext].at).After(now) {
		ev := p.timed[p.tnext]
		p.tnext++
		c.tracef("event %s (t=%s)", ev.name, ev.at)
		ev.apply(c)
	}
}

// nextTimedAt returns the absolute instant of the next unfired timed event.
func (p *plan) nextTimedAt(start time.Time) (time.Time, bool) {
	if p.tnext >= len(p.timed) {
		return time.Time{}, false
	}
	return start.Add(p.timed[p.tnext].at), true
}

// timedDone reports whether every timed event has fired.
func (p *plan) timedDone() bool { return p.tnext >= len(p.timed) }

// maybeDrop decides whether to lose this message (fair-loss model).
func (p *plan) maybeDrop(m transport.Message) bool {
	if p == nil || !p.lossy || p.rng.Intn(8) != 0 {
		return false
	}
	key := fmt.Sprintf("%s|%s|%d|%d", m.Kind, m.TxID, m.From, m.To)
	if p.dropped[key] {
		return false
	}
	p.dropped[key] = true
	return true
}

// fire applies every action whose step has arrived.
func (p *plan) fire(c *cluster) {
	for p.next < len(p.actions) && p.actions[p.next].step <= c.steps {
		p.apply(c, p.actions[p.next])
		p.next++
	}
}

// fireNext pulls the next scheduled fault forward; used when the cluster
// goes quiescent before the script's step stamp is reached.
func (p *plan) fireNext(c *cluster) bool {
	if p.next >= len(p.actions) {
		return false
	}
	p.apply(c, p.actions[p.next])
	p.next++
	return true
}

func (p *plan) apply(c *cluster, a action) {
	switch a.kind {
	case "crash":
		if !c.down[a.site] && c.aliveCount() > 1 {
			c.crash(a.site)
		}
	case "recover":
		c.recoverSite(a.site)
	case "block":
		c.tracef("partition %d<->%d", a.a, a.b)
		c.net.Block(a.a, a.b)
	case "unblock":
		c.tracef("heal %d<->%d", a.a, a.b)
		c.net.Unblock(a.a, a.b)
	}
}

func (c *cluster) aliveCount() int {
	n := 0
	for _, id := range c.ids {
		if !c.down[id] {
			n++
		}
	}
	return n
}

// enumerateCrashPoints derives every single-crash schedule from a fault-free
// reference execution of the default workload (one full-cohort transaction).
func enumerateCrashPoints(cfg Config) []CrashPoint {
	return enumerateCrashPointsFrom(cfg, func(c *cluster) error {
		return c.begin(1, "t1", false)
	})
}

// enumerateCrashPointsFrom derives every single-crash schedule from a
// fault-free reference execution of the given workload: one crash point per
// WAL append and per message delivery observed anywhere in the cluster.
// Because the crash run is byte-identical to the reference run up to the
// trigger, every enumerated point is guaranteed to fire.
func enumerateCrashPointsFrom(cfg Config, launch func(*cluster) error) []CrashPoint {
	c := newCluster(cfg, nil)
	if err := launch(c); err != nil {
		panic(fmt.Sprintf("dst: reference begin failed: %v", err))
	}
	c.run(nil)
	c.drainSettlement()
	var pts []CrashPoint
	for _, id := range c.ids {
		var types []wal.RecordType
		for rt := range c.logs[id].seen {
			types = append(types, rt)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, rt := range types {
			for k := 1; k <= c.logs[id].seen[rt]; k++ {
				pts = append(pts, CrashPoint{Site: id, kind: afterAppend, Rec: rt, Nth: k})
			}
		}
		for j := 1; j <= c.delivered[id]; j++ {
			pts = append(pts, CrashPoint{Site: id, kind: afterDeliver, Msg: j})
		}
	}
	return pts
}

// ExploreCrashPoints runs the exhaustive single-crash-point enumeration for
// cfg: one transaction, FIFO delivery, a crash at every WAL append and every
// message processing observed in the fault-free execution, followed by
// staggered recovery of the crashed site.
func ExploreCrashPoints(cfg Config) []Report {
	cfg = cfg.withDefaults()
	var reports []Report
	for _, cp := range enumerateCrashPoints(cfg) {
		reports = append(reports, RunCrashPoint(cfg, cp))
	}
	return reports
}

// RunCrashPoint executes one enumerated single-crash schedule of the default
// workload and checks the invariants before and after recovering the crashed
// site.
func RunCrashPoint(cfg Config, cp CrashPoint) Report {
	r, _ := runCrashPointFrom(cfg, cp, func(c *cluster) error {
		return c.begin(1, "t1", false)
	})
	return r
}

// runCrashPointFrom executes one single-crash schedule of the given workload,
// checking the invariants before and after recovering the crashed site. The
// settled cluster is returned so callers can make workload-specific
// assertions (e.g. that bystander sites were never involved).
func runCrashPointFrom(cfg Config, cp CrashPoint, launch func(*cluster) error) (Report, *cluster) {
	cfg = cfg.withDefaults()
	c := newCluster(cfg, &cp)
	r := Report{Scenario: cp.String(), Protocol: cfg.Protocol}
	if err := launch(c); err != nil {
		r.violate("begin failed: %v", err)
		return r, c
	}
	c.run(nil)
	// Drain the settlement grace periods exactly as the reference execution
	// the crash point was enumerated from did: triggers inside the
	// settlement phase — the lazy end-record windows in particular — fire
	// here.
	c.drainSettlement()

	if !c.everCrashed[cp.Site] {
		// Every enumerated point comes from the reference execution, so a
		// trigger that never fires means the simulation diverged — a
		// determinism bug in the harness or the engine.
		r.violate("crash point never fired: %s", cp)
	}

	// Pre-recovery check at the operational sites.
	pre := c.snapshot()
	for _, txid := range c.sortedTxids() {
		for _, id := range aliveKnownPending(pre[txid], c.ids) {
			if pre[txid][id].blocked {
				r.Blocked = true
				if cfg.Protocol == engine.ThreePhase {
					r.violate("3PC nonblocking violated: site %d blocked on %s with one crash", id, txid)
				}
				continue
			}
			r.violate("%s: site %d stuck on %s before recovery (pending, no blocking verdict)",
				cfg.Protocol, id, txid)
		}
	}

	// Staggered recovery of the crashed site, then the final consistency and
	// liveness check.
	if c.down[cp.Site] {
		c.recoverSite(cp.Site)
		c.run(nil)
	}
	post := c.snapshot()
	checkConsistency(c, post, &r)
	for _, txid := range c.sortedTxids() {
		for _, id := range aliveKnownPending(post[txid], c.ids) {
			r.violate("%s unresolved at site %d after recovery", txid, id)
		}
	}
	finishReport(c, &r)
	return r, c
}

// RunRandom executes one seeded random schedule: 1-3 transactions (central
// or decentralized, with scripted NO votes), random delivery order, up to
// Sites-1 crashes with optional staggered recoveries, and an optional
// transient partition. The same (cfg, seed) pair replays byte-for-byte.
func RunRandom(cfg Config, seed int64) Report {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	c := newCluster(cfg, nil)
	r := Report{
		Scenario: fmt.Sprintf("random schedule seed=%d", seed),
		Protocol: cfg.Protocol,
		Seed:     seed,
	}

	// Script the workload.
	type txn struct {
		id    string
		coord int
		peer  bool
	}
	var txns []txn
	for i := 0; i < 1+rng.Intn(3); i++ {
		peer := rng.Intn(4) == 0
		if cfg.Protocol == engine.PaxosCommit {
			peer = false // Paxos Commit has no decentralized variant
		}
		tx := txn{
			id:    fmt.Sprintf("t%d", i+1),
			coord: 1 + rng.Intn(cfg.Sites),
			peer:  peer,
		}
		txns = append(txns, tx)
		for _, site := range c.ids {
			if rng.Intn(8) == 0 {
				c.res[site].refuse[tx.id] = true
				c.tracef("script: site %d votes NO on %s", site, tx.id)
			}
		}
	}

	// Script the faults: crash at most Sites-1 distinct sites (the paper's
	// nonblocking guarantee needs one operational site), each with a coin-flip
	// staggered recovery, plus an occasional transient partition.
	p := &plan{rng: rng, lossy: rng.Intn(2) == 0, dropped: map[string]bool{}}
	if p.lossy {
		c.tracef("script: fair-loss message drops enabled")
	}
	perm := rng.Perm(cfg.Sites)
	hasPartition := false
	for i := 0; i < rng.Intn(cfg.Sites); i++ {
		site := perm[i] + 1
		step := 1 + rng.Intn(80)
		p.actions = append(p.actions, action{step: step, kind: "crash", site: site})
		if rng.Intn(2) == 0 {
			p.actions = append(p.actions, action{step: step + 20 + rng.Intn(150), kind: "recover", site: site})
		}
	}
	if rng.Intn(4) == 0 && cfg.Sites >= 2 {
		a := 1 + rng.Intn(cfg.Sites)
		b := 1 + rng.Intn(cfg.Sites)
		if a != b {
			hasPartition = true
			s := 1 + rng.Intn(60)
			p.actions = append(p.actions, action{step: s, kind: "block", a: a, b: b})
			p.actions = append(p.actions, action{step: s + 10 + rng.Intn(80), kind: "unblock", a: a, b: b})
		}
	}
	sort.SliceStable(p.actions, func(i, j int) bool { return p.actions[i].step < p.actions[j].step })

	for _, tx := range txns {
		if err := c.begin(tx.coord, tx.id, tx.peer); err != nil {
			r.violate("begin %s failed: %v", tx.id, err)
		}
	}
	c.run(p)

	snap := c.snapshot()
	checkConsistency(c, snap, &r)
	for _, views := range snap {
		for _, v := range views {
			if v.blocked {
				r.Blocked = true
			}
		}
	}

	crashed := len(c.everCrashed) > 0
	majority := cfg.Sites/2 + 1
	for _, txid := range c.sortedTxids() {
		views := snap[txid]
		// A site that never failed and resolved the transaction can answer
		// any recovered site's DECIDE-REQ, so pending is then inexcusable
		// everywhere.
		resolvedByHealthy := false
		for _, id := range c.ids {
			v, ok := views[id]
			if ok && !c.everCrashed[id] && v.known && v.outcome != engine.OutcomePending {
				resolvedByHealthy = true
			}
		}
		for _, id := range aliveKnownPending(views, c.ids) {
			switch {
			case cfg.Protocol == engine.ThreePhase && !hasPartition && !c.everCrashed[id]:
				// The nonblocking theorem: an operational 3PC site terminates
				// regardless of how many others crashed.
				r.violate("3PC nonblocking violated: operational site %d pending on %s (blocked=%v)",
					id, txid, views[id].blocked)
			case cfg.Protocol == engine.ThreePhase && !hasPartition && resolvedByHealthy:
				r.violate("recovered site %d stuck on %s though a healthy site knows the outcome", id, txid)
			case cfg.Protocol == engine.PaxosCommit && !hasPartition && !c.everCrashed[id] && c.aliveCount() >= majority:
				// The replicated-decision theorem: with a majority of the
				// 2F+1 acceptors alive, any operational site terminates — no
				// crash pattern of F sites (the coordinator included) blocks.
				r.violate("paxos availability violated: never-crashed site %d pending on %s with a majority of acceptors alive",
					id, txid)
			case cfg.Protocol == engine.PaxosCommit && !hasPartition && resolvedByHealthy:
				r.violate("recovered site %d stuck on %s though a healthy site knows the outcome", id, txid)
			case cfg.Protocol == engine.TwoPhase && !crashed && !hasPartition:
				r.violate("2PC failed to resolve %s at site %d with no failures", txid, id)
			}
		}
	}
	finishReport(c, &r)
	return r
}

// checkConsistency asserts the fundamental invariant on a snapshot: no two
// sites decided the same transaction differently — and, for central 2PC,
// that presumed abort stayed sound: a COMMIT decision anywhere implies the
// coordinator's surviving log holds the forced commit record, so "no trace
// at the coordinator" is always a safe abort presumption.
func checkConsistency(c *cluster, snap map[string]map[int]view, r *Report) {
	for _, txid := range c.sortedTxids() {
		views := snap[txid]
		var committed, aborted []int
		for _, id := range c.ids {
			v, ok := views[id]
			if !ok || !v.known {
				continue
			}
			switch v.outcome {
			case engine.OutcomeCommitted:
				committed = append(committed, id)
			case engine.OutcomeAborted:
				aborted = append(aborted, id)
			}
		}
		if len(committed) > 0 && len(aborted) > 0 {
			r.violate("consistency violated on %s: sites %v committed, sites %v aborted",
				txid, committed, aborted)
		}
		// Presumption soundness. Only central 2PC presumes: 3PC termination
		// and Paxos ballots can legitimately decide commit while the dead
		// coordinator's log lacks the decision record.
		if len(committed) > 0 && c.cfg.Protocol == engine.TwoPhase {
			coord, ok := c.coords[txid]
			if !ok {
				continue // decentralized: every peer is its own coordinator
			}
			durable := false
			recs, _ := c.logs[coord].inner.Records()
			for _, rec := range recs {
				if rec.TxID == txid && rec.Type == wal.RecCommitted {
					durable = true
					break
				}
			}
			if !durable {
				r.violate("presumed-abort soundness violated on %s: sites %v committed but coordinator %d has no durable commit record",
					txid, committed, coord)
			}
		}
	}
}

func finishReport(c *cluster, r *Report) {
	paxosNoTermination(c, r)
	r.Violations = append(r.Violations, c.failures...)
	r.Steps = c.steps
	r.Trace = c.trace
	r.WALDigest = c.walDigest()
}

// paxosNoTermination asserts the headline Paxos Commit property on every
// finished schedule: the cohort termination protocols — 3PC backup rounds
// (TERM-STATE/TERM-ACK) and 2PC cooperative status queries
// (STATUS-REQ/STATUS-RES) — are never exchanged. Coordinator death is
// absorbed by the replicated decision (a survivor leads a higher ballot),
// never by electing a backup to re-drive cohort state.
func paxosNoTermination(c *cluster, r *Report) {
	if c.cfg.Protocol != engine.PaxosCommit {
		return
	}
	for _, m := range c.deliveries {
		switch m.Kind {
		case engine.KindTermState, engine.KindTermAck, engine.KindStatusReq, engine.KindStatusRes:
			r.violate("termination protocol invoked under Paxos Commit: %s", m)
		}
	}
}
