package dst

import "testing"

// TestPinnedEngineBugs replays the exact seeded schedules that exposed each
// previously fixed engine bug (EXPERIMENTS.md, "Bugs the harness caught").
// Every seed here once produced a violation or a hang; a failure in this test
// means one of those fixes regressed. The bug text on each scenario says what
// to look at.
func TestPinnedEngineBugs(t *testing.T) {
	for _, rs := range RegressionScenarios() {
		t.Run(rs.Name, func(t *testing.T) {
			for _, r := range RunRegression(rs) {
				if len(r.Violations) != 0 {
					t.Errorf("%s (%s): %v\nbug: %s", r.Scenario, rs.Protocol, r.Violations, rs.Bug)
				}
			}
		})
	}
}
