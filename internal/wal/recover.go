package wal

import "fmt"

// TxStatus is the commit-protocol position of a transaction as reconstructed
// from the log during recovery.
type TxStatus int

const (
	// StatusUnknown: no record seen (not a valid replay result).
	StatusUnknown TxStatus = iota
	// StatusBegun: a coordinator started the protocol but recorded no
	// outcome; upon recovery it aborts (the failure happened before its
	// commit point).
	StatusBegun
	// StatusVotedYes: the participant voted yes and crashed before learning
	// the outcome; it is in doubt and must run the recovery protocol.
	StatusVotedYes
	// StatusVotedNo: the participant voted no; the transaction aborted.
	StatusVotedNo
	// StatusPrepared: the participant reached the buffer state p; still in
	// doubt, but any operational 3PC cohort can resolve it.
	StatusPrepared
	// StatusCommitted: the commit record was forced; redo and finish.
	StatusCommitted
	// StatusAborted: the abort record was forced; undo and finish.
	StatusAborted
	// StatusEnded: fully applied; nothing to do.
	StatusEnded
)

// String names the status.
func (s TxStatus) String() string {
	switch s {
	case StatusBegun:
		return "begun"
	case StatusVotedYes:
		return "voted-yes"
	case StatusVotedNo:
		return "voted-no"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	case StatusEnded:
		return "ended"
	default:
		return fmt.Sprintf("TxStatus(%d)", int(s))
	}
}

// InDoubt reports whether a recovering site cannot decide the transaction
// from its own log and must consult operational sites.
func (s TxStatus) InDoubt() bool { return s == StatusVotedYes || s == StatusPrepared }

// Final reports whether the outcome is already durable locally.
func (s TxStatus) Final() bool {
	return s == StatusCommitted || s == StatusAborted || s == StatusEnded
}

// TxImage is the replayed per-transaction state.
type TxImage struct {
	TxID   string
	Status TxStatus
	// Begin holds the payload of the begin record (e.g. the participant
	// list), if one was logged at this site.
	Begin []byte
	// Last holds the payload of the most recent record.
	Last []byte
	// LastLSN is the LSN of the most recent record for the transaction.
	LastLSN uint64
	// Coordinator reports whether this site logged the begin record (i.e.
	// acted as the transaction's coordinator).
	Coordinator bool
}

// Replay folds a log's records into per-transaction images, implementing the
// local half of the recovery protocol: after Replay, transactions whose
// status is InDoubt must be resolved by asking operational sites; Begun
// coordinators abort; Final transactions need only local redo/undo.
func Replay(recs []Record) map[string]*TxImage {
	out := map[string]*TxImage{}
	for _, r := range recs {
		if r.Type == RecPaxosPromise || r.Type == RecPaxosAccept {
			// Paxos consensus records carry acceptor state, not a protocol
			// image; the engine rebuilds them from the raw records. Folding
			// them here would clobber Last, which in-doubt recovery decodes
			// as the vote payload.
			continue
		}
		img, ok := out[r.TxID]
		if !ok {
			img = &TxImage{TxID: r.TxID}
			out[r.TxID] = img
		}
		img.Last = r.Payload
		img.LastLSN = r.LSN
		switch r.Type {
		case RecBegin:
			img.Coordinator = true
			img.Begin = r.Payload
			if img.Status == StatusUnknown {
				img.Status = StatusBegun
			}
		case RecVoteYes:
			img.Status = StatusVotedYes
		case RecVoteNo:
			img.Status = StatusVotedNo
		case RecPrepared:
			img.Status = StatusPrepared
		case RecCommitted:
			img.Status = StatusCommitted
		case RecAborted:
			img.Status = StatusAborted
		case RecEnd:
			img.Status = StatusEnded
		}
	}
	return out
}
