package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFileLogConcurrentAppend hammers one log from many goroutines (run
// under -race in CI): every append must get a unique LSN and every record
// must survive a reopen, in an order consistent with LSN assignment.
func TestFileLogConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	lsns := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := l.Append(Record{Type: RecCommitted, TxID: fmt.Sprintf("tx-%d-%d", g, i)})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				lsns[g] = append(lsns[g], lsn)
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, gl := range lsns {
		for i, lsn := range gl {
			if seen[lsn] {
				t.Fatalf("duplicate LSN %d", lsn)
			}
			seen[lsn] = true
			if i > 0 && gl[i-1] >= lsn {
				t.Fatalf("LSNs not increasing within a goroutine: %d then %d", gl[i-1], lsn)
			}
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d LSNs, want %d", len(seen), goroutines*perG)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*perG {
		t.Fatalf("reopen found %d records, want %d", len(recs), goroutines*perG)
	}
}

// TestFileLogBatchCoalescing pins group commit actually batching: with a
// flush interval holding the flusher back, records staged together become
// one batch with one sync.
func TestFileLogBatchCoalescing(t *testing.T) {
	var batches []int
	var syncs atomic.Int64
	var mu sync.Mutex
	l, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), FileLogOptions{
		FlushInterval: 50 * time.Millisecond,
		Metrics: Metrics{
			BatchRecords: func(n int) { mu.Lock(); batches = append(batches, n); mu.Unlock() },
			SyncLatency:  func(time.Duration) { syncs.Add(1) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		l.AppendStaged(Record{Type: RecBegin, TxID: fmt.Sprintf("tx%d", i)}, func(lsn uint64, err error) {
			if err != nil {
				t.Errorf("staged append: %v", err)
			}
			done <- struct{}{}
		})
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for durability callbacks")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, b := range batches {
		total += b
	}
	if total != n {
		t.Fatalf("batches account for %d records, want %d", total, n)
	}
	if len(batches) != 1 {
		t.Fatalf("expected one coalesced batch, got %d: %v", len(batches), batches)
	}
	if syncs.Load() != int64(len(batches)) {
		t.Fatalf("got %d syncs for %d batches", syncs.Load(), len(batches))
	}
	l.Close()
}

// TestFileLogTornBatch truncates a batched-written log at every byte
// length and verifies reopening always recovers a clean record prefix.
func TestFileLogTornBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true, FlushInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		l.AppendStaged(Record{Type: RecVoteYes, TxID: fmt.Sprintf("tx%d", i), Payload: []byte{byte(i), 0xee}},
			func(uint64, error) { wg.Done() })
	}
	wg.Wait()
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(full) / n
	for cut := 0; cut <= len(full); cut++ {
		torn := filepath.Join(dir, "torn")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenFileLog(torn, FileLogOptions{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		recs, err := re.Records()
		re.Close()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if want := cut / recLen; len(recs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if r.TxID != fmt.Sprintf("tx%d", i) {
				t.Fatalf("cut %d: record %d is %q", cut, i, r.TxID)
			}
		}
	}
}

// TestFileLogRecordsFlushesStaged: Records must observe records staged
// before the call, without waiting for the flusher.
func TestFileLogRecordsFlushesStaged(t *testing.T) {
	l, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), FileLogOptions{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.AppendStaged(Record{Type: RecBegin, TxID: "tx1"}, func(uint64, error) {})
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TxID != "tx1" {
		t.Fatalf("Records = %+v, want the staged record", recs)
	}
}

// TestFileLogOnlineCompact compacts a live log while appenders keep
// running: ended transactions disappear, everything else survives.
func TestFileLogOnlineCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ended transactions: full life cycle including the end record.
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("old%d", i)
		for _, typ := range []RecordType{RecBegin, RecCommitted, RecEnd} {
			if _, err := l.Append(Record{Type: typ, TxID: id}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A live one.
	if _, err := l.Append(Record{Type: RecVoteYes, TxID: "live", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var appended atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := l.Append(Record{Type: RecBegin, TxID: fmt.Sprintf("new-%d-%d", g, i)}); err != nil {
					t.Errorf("append during compact: %v", err)
					return
				}
				appended.Add(1)
			}
		}(g)
	}
	kept, dropped, err := l.Compact()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 15 {
		t.Fatalf("dropped %d records, want 15", dropped)
	}
	if kept < 1 {
		t.Fatalf("kept %d records, want at least the live one", kept)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.Records()
	if err != nil {
		t.Fatal(err)
	}
	var live, news int
	for _, r := range recs {
		switch {
		case r.TxID == "live":
			live++
		case len(r.TxID) >= 3 && r.TxID[:3] == "new":
			news++
		case len(r.TxID) >= 3 && r.TxID[:3] == "old":
			t.Fatalf("ended transaction %s survived compaction", r.TxID)
		}
	}
	if live != 1 {
		t.Fatalf("live record count = %d, want 1", live)
	}
	if int64(news) != appended.Load() {
		t.Fatalf("found %d concurrent appends, want %d", news, appended.Load())
	}
}

// TestSynchronousWrapper: the baseline wrapper serializes appends and hides
// the StagedLog capability.
func TestSynchronousWrapper(t *testing.T) {
	inner, err := OpenFileLog(filepath.Join(t.TempDir(), "wal"), FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l := Synchronous(inner)
	if _, ok := l.(StagedLog); ok {
		t.Fatal("Synchronous wrapper must not expose AppendStaged")
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(Record{Type: RecBegin, TxID: fmt.Sprintf("tx%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Type: RecBegin, TxID: "late"}); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}
