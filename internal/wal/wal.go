// Package wal provides the stable storage substrate required by commit
// protocols: an append-only write-ahead log of protocol state transitions.
//
// The paper assumes "each site has a local recovery strategy that provides
// atomicity at the local level"; this package is that strategy. A site
// forces a record describing each protocol state change before acting on
// it, and on restart replays the log to rebuild the commit state of every
// transaction (the recovery protocol then resolves any transaction left
// in doubt).
//
// Two implementations are provided: a MemoryLog for tests and simulations,
// and a FileLog with CRC-protected, length-prefixed records and optional
// fsync for real deployments. Both tolerate a torn final record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// RecordType enumerates the protocol events a site persists.
type RecordType uint8

const (
	// RecBegin marks a coordinator starting a distributed commit.
	RecBegin RecordType = iota + 1
	// RecVoteYes marks a participant voting yes: it must not unilaterally
	// abort afterwards.
	RecVoteYes
	// RecVoteNo marks a participant voting no (unilateral abort).
	RecVoteNo
	// RecPrepared marks entry into the buffer state p (3PC only).
	RecPrepared
	// RecCommitted marks the irreversible commit decision.
	RecCommitted
	// RecAborted marks the irreversible abort decision.
	RecAborted
	// RecEnd marks that a transaction's effects have been applied and its
	// protocol state may be garbage collected.
	RecEnd
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecVoteYes:
		return "vote-yes"
	case RecVoteNo:
		return "vote-no"
	case RecPrepared:
		return "prepared"
	case RecCommitted:
		return "committed"
	case RecAborted:
		return "aborted"
	case RecEnd:
		return "end"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one log entry. Payload is opaque to the log (the engine stores
// participant lists; the kv store stages write sets).
type Record struct {
	LSN     uint64 // assigned by Append; 1-based
	Type    RecordType
	TxID    string
	Payload []byte
}

// Log is an append-only record store surviving crashes of its owner.
type Log interface {
	// Append durably adds a record and returns its log sequence number.
	Append(rec Record) (uint64, error)
	// Records returns every record in append order.
	Records() ([]Record, error)
	// Close releases resources; the log may be reopened (FileLog) or
	// reused (MemoryLog) afterwards.
	Close() error
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// MemoryLog is an in-memory Log. It survives simulated crashes (the owner
// discards its volatile state but keeps the MemoryLog, exactly as a disk
// would survive) and is safe for concurrent use.
type MemoryLog struct {
	mu     sync.Mutex
	recs   []Record
	closed bool
}

// NewMemoryLog returns an empty in-memory log.
func NewMemoryLog() *MemoryLog { return &MemoryLog{} }

// Append implements Log.
func (l *MemoryLog) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec.LSN = uint64(len(l.recs) + 1)
	rec.Payload = append([]byte(nil), rec.Payload...)
	l.recs = append(l.recs, rec)
	return rec.LSN, nil
}

// Records implements Log.
func (l *MemoryLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Close implements Log. A closed MemoryLog can be reopened with Reopen.
func (l *MemoryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Reopen makes a closed MemoryLog usable again, modelling a site restart
// that remounts its disk.
func (l *MemoryLog) Reopen() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = false
}

// FileLog is a disk-backed Log. Records are length-prefixed and protected
// by CRC-32; a torn or corrupt tail is truncated on open.
//
// On-disk record layout (little endian):
//
//	uint32 length of body
//	uint32 CRC-32 (IEEE) of body
//	body: uint8 type | uint16 len(txid) | txid | payload
type FileLog struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	next  uint64
	sync  bool
	recs  []Record // cached, in append order
	close bool
}

// FileLogOptions configures a FileLog.
type FileLogOptions struct {
	// NoSync disables fsync after each append. Faster, but a crash of the
	// host (not just the process) may lose the tail of the log.
	NoSync bool
}

// OpenFileLog opens or creates a file-backed log, replaying any existing
// records and truncating a torn tail.
func OpenFileLog(path string, opts FileLogOptions) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &FileLog{f: f, path: path, sync: !opts.NoSync}
	validLen, recs, err := scan(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.recs = recs
	l.next = uint64(len(recs) + 1)
	return l, nil
}

// scan reads records from the start of f, returning the byte length of the
// valid prefix and the decoded records. Corruption or truncation ends the
// scan without error: the tail is simply discarded.
func scan(f *os.File) (int64, []Record, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, err
	}
	var (
		recs  []Record
		valid int64
		hdr   [8]byte
		lsn   uint64
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return valid, recs, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 64<<20 {
			return valid, recs, nil // absurd length: corrupt tail
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(f, body); err != nil {
			return valid, recs, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return valid, recs, nil // corrupt body
		}
		rec, ok := decodeBody(body)
		if !ok {
			return valid, recs, nil
		}
		lsn++
		rec.LSN = lsn
		recs = append(recs, rec)
		valid += int64(8 + len(body))
	}
}

func encodeBody(rec Record) []byte {
	body := make([]byte, 0, 3+len(rec.TxID)+len(rec.Payload))
	body = append(body, byte(rec.Type))
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(rec.TxID)))
	body = append(body, tl[:]...)
	body = append(body, rec.TxID...)
	body = append(body, rec.Payload...)
	return body
}

func decodeBody(body []byte) (Record, bool) {
	if len(body) < 3 {
		return Record{}, false
	}
	rec := Record{Type: RecordType(body[0])}
	tl := int(binary.LittleEndian.Uint16(body[1:3]))
	if len(body) < 3+tl {
		return Record{}, false
	}
	rec.TxID = string(body[3 : 3+tl])
	if rest := body[3+tl:]; len(rest) > 0 {
		rec.Payload = append([]byte(nil), rest...)
	}
	return rec, true
}

// Append implements Log.
func (l *FileLog) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.close {
		return 0, ErrClosed
	}
	if len(rec.TxID) > 1<<16-1 {
		return 0, fmt.Errorf("wal: transaction ID too long (%d bytes)", len(rec.TxID))
	}
	body := encodeBody(rec)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := l.f.Write(body); err != nil {
		return 0, fmt.Errorf("wal: append body: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	rec.LSN = l.next
	l.next++
	rec.Payload = append([]byte(nil), rec.Payload...)
	l.recs = append(l.recs, rec)
	return rec.LSN, nil
}

// Records implements Log.
func (l *FileLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.close {
		return nil, ErrClosed
	}
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.close {
		return nil
	}
	l.close = true
	return l.f.Close()
}

// Path returns the log file's path.
func (l *FileLog) Path() string { return l.path }
