// Package wal provides the stable storage substrate required by commit
// protocols: an append-only write-ahead log of protocol state transitions.
//
// The paper assumes "each site has a local recovery strategy that provides
// atomicity at the local level"; this package is that strategy. A site
// forces a record describing each protocol state change before acting on
// it, and on restart replays the log to rebuild the commit state of every
// transaction (the recovery protocol then resolves any transaction left
// in doubt).
//
// Two implementations are provided: a MemoryLog for tests and simulations,
// and a FileLog with CRC-protected, length-prefixed records, optional
// fsync, and group commit for real deployments. Both tolerate a torn final
// record.
//
// Group commit: FileLog.AppendStaged stages a record and returns
// immediately; a background flusher coalesces everything staged into one
// write+fsync and then reports durability through per-record callbacks.
// Concurrent blocking Appends batch the same way (each is a staged append
// that waits for its callback), so N goroutines appending concurrently
// share fsyncs instead of serializing on them. The force-before-act
// discipline is preserved by the caller: it must not act on a state change
// until the callback fires.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// RecordType enumerates the protocol events a site persists.
type RecordType uint8

const (
	// RecBegin marks a coordinator starting a distributed commit.
	RecBegin RecordType = iota + 1
	// RecVoteYes marks a participant voting yes: it must not unilaterally
	// abort afterwards.
	RecVoteYes
	// RecVoteNo marks a participant voting no (unilateral abort).
	RecVoteNo
	// RecPrepared marks entry into the buffer state p (3PC only).
	RecPrepared
	// RecCommitted marks the irreversible commit decision.
	RecCommitted
	// RecAborted marks the irreversible abort decision.
	RecAborted
	// RecEnd marks that a transaction's effects have been applied and its
	// protocol state may be garbage collected.
	RecEnd
	// RecPaxosPromise marks a Paxos Commit acceptor promising a ballot
	// (forced before the 1b reply leaves the site).
	RecPaxosPromise
	// RecPaxosAccept marks a Paxos Commit acceptor accepting an instance
	// value (forced before the 2b reply leaves the site).
	RecPaxosAccept
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecVoteYes:
		return "vote-yes"
	case RecVoteNo:
		return "vote-no"
	case RecPrepared:
		return "prepared"
	case RecCommitted:
		return "committed"
	case RecAborted:
		return "aborted"
	case RecEnd:
		return "end"
	case RecPaxosPromise:
		return "paxos-promise"
	case RecPaxosAccept:
		return "paxos-accept"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one log entry. Payload is opaque to the log (the engine stores
// participant lists; the kv store stages write sets).
type Record struct {
	LSN     uint64 // assigned by Append; 1-based
	Type    RecordType
	TxID    string
	Payload []byte
}

// Log is an append-only record store surviving crashes of its owner.
type Log interface {
	// Append durably adds a record and returns its log sequence number.
	Append(rec Record) (uint64, error)
	// Records returns every record in append order.
	Records() ([]Record, error)
	// Close releases resources; the log may be reopened (FileLog) or
	// reused (MemoryLog) afterwards.
	Close() error
}

// StagedLog is a Log supporting asynchronous, group-committed appends. A
// staged record becomes durable together with its batch; the callback fires
// exactly once, after the batch's write+fsync completed (or with the error
// that prevented it). Callbacks for different records fire in LSN order.
type StagedLog interface {
	Log
	// AppendStaged stages rec for the next batch. fn must not call back
	// into the log; it runs on an internal goroutine.
	AppendStaged(rec Record, fn func(lsn uint64, err error))
}

// LazyLog is a Log supporting lazy (non-forced) appends. A lazy record is
// ordered into the log like any other, but the caller neither forces it nor
// waits for it: it rides whatever batch the next forced append, flush
// interval, Records scan, or Close triggers. A crash may lose a suffix of
// lazy records; callers must only append records lazily when recovery can
// reconstruct (or presume) their meaning — e.g. presumed-abort settlement
// records, whose loss merely re-runs idempotent garbage collection.
type LazyLog interface {
	Log
	// AppendLazy stages rec without forcing it. It returns immediately; any
	// write error surfaces on the batch that eventually carries the record.
	AppendLazy(rec Record) error
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// MemoryLog is an in-memory Log. It survives simulated crashes (the owner
// discards its volatile state but keeps the MemoryLog, exactly as a disk
// would survive) and is safe for concurrent use.
type MemoryLog struct {
	mu     sync.Mutex
	recs   []Record
	closed bool
}

// NewMemoryLog returns an empty in-memory log.
func NewMemoryLog() *MemoryLog { return &MemoryLog{} }

// Append implements Log.
func (l *MemoryLog) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec.LSN = uint64(len(l.recs) + 1)
	rec.Payload = append([]byte(nil), rec.Payload...)
	l.recs = append(l.recs, rec)
	return rec.LSN, nil
}

// AppendLazy implements LazyLog. Memory is always "durable" within the
// simulation model, so a lazy append is an ordinary append.
func (l *MemoryLog) AppendLazy(rec Record) error {
	_, err := l.Append(rec)
	return err
}

// Records implements Log.
func (l *MemoryLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Close implements Log. A closed MemoryLog can be reopened with Reopen.
func (l *MemoryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Reopen makes a closed MemoryLog usable again, modelling a site restart
// that remounts its disk.
func (l *MemoryLog) Reopen() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = false
}

// Metrics receives observations from a FileLog. Nil fields are skipped; the
// hooks are called on the observing goroutine (the callback runner for batch
// hooks, the compacting goroutine for Compaction) and must be fast.
type Metrics struct {
	// BatchRecords observes the number of records in each flushed batch.
	BatchRecords func(n int)
	// SyncLatency observes the write+fsync duration of each batch.
	SyncLatency func(d time.Duration)
	// BatchBytes observes the bytes written per flushed batch; summing it
	// gives the total log bytes written.
	BatchBytes func(n int)
	// BatchLazyRecords observes how many of each flushed batch's records
	// were lazy riders (staged with AppendLazy, forcing nothing themselves).
	// Together with BatchRecords it gives the forced-vs-lazy composition of
	// the log traffic.
	BatchLazyRecords func(n int)
	// Compaction observes each successful Compact: how many records the
	// rewrite kept and dropped.
	Compaction func(kept, dropped int)
}

// FileLog is a disk-backed StagedLog with group commit. Records are
// length-prefixed and protected by CRC-32; a torn or corrupt tail is
// truncated on open. Because batches are written front-to-back, a crash
// mid-batch leaves a clean prefix: every record whose durability callback
// fired is on disk, and no record is ever missing in front of one that
// survived.
//
// On-disk record layout (little endian):
//
//	uint32 length of body
//	uint32 CRC-32 (IEEE) of body
//	body: uint8 type | uint16 len(txid) | txid | payload
type FileLog struct {
	path     string
	syncOn   bool
	interval time.Duration
	maxBatch int
	metrics  Metrics

	// mu guards staging state: records not yet handed to the flusher, the
	// LSN counter and the closed flag.
	mu          sync.Mutex
	staged      []stagedRec
	stagedBytes int
	next        uint64
	closed      bool

	// wmu guards all file I/O (the handle itself, writes, syncs, scans,
	// compaction). Batches are written in the order wmu is acquired.
	wmu sync.Mutex
	f   *os.File

	// Durability callbacks run on a dedicated goroutine so the flusher can
	// start the next batch's write+fsync while the previous batch's
	// callbacks are still in flight. flush enqueues under cbMu while wmu
	// is still held, so queue order is batch (LSN) order and a later batch
	// can never report before an earlier one.
	cbMu sync.Mutex
	cbq  []cbBatch

	wake        chan struct{}
	quit        chan struct{}
	flusherDone chan struct{}
	cbWake      chan struct{}
	cbQuit      chan struct{}
	cbDone      chan struct{}
}

type stagedRec struct {
	lsn  uint64
	buf  []byte // header + body, ready to write
	fn   func(lsn uint64, err error)
	lazy bool // staged by AppendLazy: rides the batch, forces nothing
}

// cbBatch is one flushed batch awaiting callback delivery.
type cbBatch struct {
	recs    []stagedRec
	err     error
	nbytes  int
	elapsed time.Duration
}

// FileLogOptions configures a FileLog.
type FileLogOptions struct {
	// NoSync disables fsync after each batch. Faster, but a crash of the
	// host (not just the process) may lose the tail of the log.
	NoSync bool
	// FlushInterval bounds how long the flusher gathers a batch after the
	// first record is staged. Zero flushes as soon as the flusher is free:
	// batching then arises naturally while a previous batch's fsync is in
	// progress, adding no latency under light load.
	FlushInterval time.Duration
	// MaxBatchBytes splits batches larger than this (a single oversized
	// record still flushes alone). Zero means 1 MiB.
	MaxBatchBytes int
	// Metrics receives batch-size and sync-latency observations.
	Metrics Metrics
}

// OpenFileLog opens or creates a file-backed log, replaying any existing
// records and truncating a torn tail.
func OpenFileLog(path string, opts FileLogOptions) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	validLen, recs, err := scan(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	maxBatch := opts.MaxBatchBytes
	if maxBatch <= 0 {
		maxBatch = 1 << 20
	}
	l := &FileLog{
		path:        path,
		syncOn:      !opts.NoSync,
		interval:    opts.FlushInterval,
		maxBatch:    maxBatch,
		metrics:     opts.Metrics,
		f:           f,
		next:        uint64(len(recs) + 1),
		wake:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		flusherDone: make(chan struct{}),
		cbWake:      make(chan struct{}, 1),
		cbQuit:      make(chan struct{}),
		cbDone:      make(chan struct{}),
	}
	go l.flusher()
	go l.cbRunner()
	return l, nil
}

// scan reads records from the start of f, returning the byte length of the
// valid prefix and the decoded records. Corruption or truncation ends the
// scan without error: the tail is simply discarded.
func scan(f *os.File) (int64, []Record, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, err
	}
	var (
		recs  []Record
		valid int64
		hdr   [8]byte
		lsn   uint64
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return valid, recs, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 64<<20 {
			return valid, recs, nil // absurd length: corrupt tail
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(f, body); err != nil {
			return valid, recs, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return valid, recs, nil // corrupt body
		}
		rec, ok := decodeBody(body)
		if !ok {
			return valid, recs, nil
		}
		lsn++
		rec.LSN = lsn
		recs = append(recs, rec)
		valid += int64(8 + len(body))
	}
}

func encodeBody(rec Record) []byte {
	body := make([]byte, 0, 3+len(rec.TxID)+len(rec.Payload))
	body = append(body, byte(rec.Type))
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(rec.TxID)))
	body = append(body, tl[:]...)
	body = append(body, rec.TxID...)
	body = append(body, rec.Payload...)
	return body
}

func decodeBody(body []byte) (Record, bool) {
	if len(body) < 3 {
		return Record{}, false
	}
	rec := Record{Type: RecordType(body[0])}
	tl := int(binary.LittleEndian.Uint16(body[1:3]))
	if len(body) < 3+tl {
		return Record{}, false
	}
	rec.TxID = string(body[3 : 3+tl])
	if rest := body[3+tl:]; len(rest) > 0 {
		rec.Payload = append([]byte(nil), rest...)
	}
	return rec, true
}

// frame encodes a record with its on-disk header.
func frame(rec Record) []byte {
	body := encodeBody(rec)
	buf := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

// AppendStaged implements StagedLog: the record joins the next batch and fn
// fires once the batch is durable.
func (l *FileLog) AppendStaged(rec Record, fn func(lsn uint64, err error)) {
	if len(rec.TxID) > 1<<16-1 {
		fn(0, fmt.Errorf("wal: transaction ID too long (%d bytes)", len(rec.TxID)))
		return
	}
	buf := frame(rec)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		fn(0, ErrClosed)
		return
	}
	lsn := l.next
	l.next++
	l.staged = append(l.staged, stagedRec{lsn: lsn, buf: buf, fn: fn})
	l.stagedBytes += len(buf)
	l.mu.Unlock()
	l.signal()
}

// AppendLazy implements LazyLog: the record is staged in log order but the
// flusher is not woken for it, so it rides whatever batch the next forced
// append (or flush interval, Records scan, or Close) triggers. A crash
// before that batch loses the record.
func (l *FileLog) AppendLazy(rec Record) error {
	if len(rec.TxID) > 1<<16-1 {
		return fmt.Errorf("wal: transaction ID too long (%d bytes)", len(rec.TxID))
	}
	buf := frame(rec)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	lsn := l.next
	l.next++
	l.staged = append(l.staged, stagedRec{lsn: lsn, buf: buf, fn: nil, lazy: true})
	l.stagedBytes += len(buf)
	full := l.stagedBytes >= l.maxBatch
	l.mu.Unlock()
	// No signal: lazy records add no fsync of their own. The flush-interval
	// gather, the next forced append, Records, SyncNow, or Close will carry
	// them. Only a full batch forces a flush, bounding staged memory.
	if full {
		l.signal()
	}
	return nil
}

func (l *FileLog) signal() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Append implements Log: a staged append that waits for durability.
// Concurrent Appends coalesce into shared batches.
func (l *FileLog) Append(rec Record) (uint64, error) {
	type result struct {
		lsn uint64
		err error
	}
	ch := make(chan result, 1)
	l.AppendStaged(rec, func(lsn uint64, err error) { ch <- result{lsn, err} })
	r := <-ch
	return r.lsn, r.err
}

// flusher is the background goroutine turning staged records into batches.
func (l *FileLog) flusher() {
	defer close(l.flusherDone)
	for {
		select {
		case <-l.quit:
			l.flush() // drain whatever was staged before Close
			return
		case <-l.wake:
		}
		if l.interval > 0 {
			l.gather()
		}
		l.flush()
	}
}

// gather waits up to FlushInterval for more records, leaving early when the
// batch fills or the log closes.
func (l *FileLog) gather() {
	t := time.NewTimer(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-t.C:
			return
		case <-l.wake:
			l.mu.Lock()
			full := l.stagedBytes >= l.maxBatch
			l.mu.Unlock()
			if full {
				return
			}
		}
	}
}

// flush writes one batch: everything currently staged, up to MaxBatchBytes.
// Any goroutine may call it (the flusher, Records, SyncNow, Close); wmu
// orders the writes, and enqueueing to the callback runner under cbMu while
// wmu is still held orders the callbacks. flush returns once the batch is
// durable — its callbacks may still be running on the callback goroutine.
func (l *FileLog) flush() {
	l.wmu.Lock()
	l.mu.Lock()
	n, nbytes := 0, 0
	for n < len(l.staged) && (n == 0 || nbytes+len(l.staged[n].buf) <= l.maxBatch) {
		nbytes += len(l.staged[n].buf)
		n++
	}
	batch := l.staged[:n:n]
	l.staged = l.staged[n:]
	if len(l.staged) == 0 {
		l.staged = nil // release the drained backing array
	}
	l.stagedBytes -= nbytes
	remaining := len(l.staged) > 0
	l.mu.Unlock()
	if len(batch) == 0 {
		l.wmu.Unlock()
		return
	}

	buf := make([]byte, 0, nbytes)
	for _, r := range batch {
		buf = append(buf, r.buf...)
	}
	start := time.Now()
	_, err := l.f.Write(buf)
	if err == nil && l.syncOn {
		err = l.f.Sync()
	}
	elapsed := time.Since(start)
	if err != nil {
		err = fmt.Errorf("wal: append batch: %w", err)
	}

	l.cbMu.Lock()
	l.cbq = append(l.cbq, cbBatch{recs: batch, err: err, nbytes: nbytes, elapsed: elapsed})
	l.cbMu.Unlock()
	l.wmu.Unlock()
	select {
	case l.cbWake <- struct{}{}:
	default:
	}

	if remaining {
		l.signal()
	}
}

// cbRunner delivers durability callbacks in batch order, off the flusher's
// critical path: while it runs batch N's callbacks the flusher is already
// writing and syncing batch N+1.
func (l *FileLog) cbRunner() {
	defer close(l.cbDone)
	for {
		select {
		case <-l.cbWake:
			l.drainCallbacks()
		case <-l.cbQuit:
			// Close flushes the last batch before signalling cbQuit, so
			// one final drain empties the queue.
			l.drainCallbacks()
			return
		}
	}
}

func (l *FileLog) drainCallbacks() {
	for {
		l.cbMu.Lock()
		if len(l.cbq) == 0 {
			l.cbq = nil // release the drained backing array
			l.cbMu.Unlock()
			return
		}
		b := l.cbq[0]
		l.cbq[0] = cbBatch{}
		l.cbq = l.cbq[1:]
		l.cbMu.Unlock()
		if l.metrics.BatchRecords != nil {
			l.metrics.BatchRecords(len(b.recs))
		}
		if l.metrics.SyncLatency != nil {
			l.metrics.SyncLatency(b.elapsed)
		}
		if l.metrics.BatchBytes != nil {
			l.metrics.BatchBytes(b.nbytes)
		}
		if l.metrics.BatchLazyRecords != nil {
			lazy := 0
			for _, r := range b.recs {
				if r.lazy {
					lazy++
				}
			}
			l.metrics.BatchLazyRecords(lazy)
		}
		for _, r := range b.recs {
			if r.fn != nil {
				r.fn(r.lsn, b.err)
			}
		}
	}
}

// SyncNow flushes every staged record and forces the file to disk,
// regardless of the NoSync option.
func (l *FileLog) SyncNow() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	for {
		l.flush()
		l.mu.Lock()
		drained := len(l.staged) == 0
		l.mu.Unlock()
		if drained {
			break
		}
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return l.f.Sync()
}

// Records implements Log by scanning the file, so a long-running log holds
// no in-memory record cache. Staged records are flushed first. Note that
// LSNs are scan positions: after a Compact they restart from 1 even though
// in-flight appends keep their original, larger LSNs.
func (l *FileLog) Records() ([]Record, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	l.mu.Unlock()
	for {
		l.flush()
		l.mu.Lock()
		drained := len(l.staged) == 0
		l.mu.Unlock()
		if drained {
			break
		}
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	_, recs, err := scan(l.f)
	if err != nil {
		return nil, err
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return recs, nil
}

// Close implements Log. Staged records are flushed (and their callbacks
// run) before the file closes; closing twice is a no-op.
func (l *FileLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.flusherDone
	l.flush() // defensive: the flusher's final drain already emptied staging
	close(l.cbQuit)
	<-l.cbDone
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return l.f.Close()
}

// Path returns the log file's path.
func (l *FileLog) Path() string { return l.path }

// Synchronous wraps a log so that each Append completes before the next may
// start: with a FileLog underneath this restores the one-write-one-fsync
// discipline that group commit replaces. It also hides any StagedLog
// capability, making the engine fall back to synchronous logging. Used as
// the baseline in benchmarks and available as a conservative mode.
func Synchronous(inner Log) Log { return &syncLog{inner: inner} }

type syncLog struct {
	mu    sync.Mutex
	inner Log
}

func (s *syncLog) Append(rec Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Append(rec)
}

func (s *syncLog) Records() ([]Record, error) { return s.inner.Records() }
func (s *syncLog) Close() error               { return s.inner.Close() }

// AppendLazy implements LazyLog when the wrapped log does: even in the
// one-fsync-per-record baseline a lazy record must not pay a forced sync of
// its own, so it is handed straight to the inner log's lazy staging.
func (s *syncLog) AppendLazy(rec Record) error {
	if lz, ok := s.inner.(LazyLog); ok {
		return lz.AppendLazy(rec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.inner.Append(rec)
	return err
}
