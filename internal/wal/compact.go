package wal

import (
	"fmt"
	"os"
)

// Compact rewrites a file log, dropping every record of transactions whose
// replayed status is StatusEnded (fully applied and garbage-collected by the
// engine via Forget). Recovery time is proportional to log length, so
// long-running sites should compact periodically.
//
// The rewrite is crash-safe: records are written to path+".compact", synced,
// and atomically renamed over the original. The log must be closed; reopen
// it after compaction.
func Compact(path string) (kept, dropped int, err error) {
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		return 0, 0, err
	}
	recs, err := l.Records()
	if err != nil {
		l.Close()
		return 0, 0, err
	}
	l.Close()

	ended := map[string]bool{}
	for tx, img := range Replay(recs) {
		if img.Status == StatusEnded {
			ended[tx] = true
		}
	}

	tmpPath := path + ".compact"
	os.Remove(tmpPath)
	out, err := OpenFileLog(tmpPath, FileLogOptions{NoSync: true})
	if err != nil {
		return 0, 0, err
	}
	for _, r := range recs {
		if ended[r.TxID] {
			dropped++
			continue
		}
		if _, err := out.Append(Record{Type: r.Type, TxID: r.TxID, Payload: r.Payload}); err != nil {
			out.Close()
			os.Remove(tmpPath)
			return 0, 0, fmt.Errorf("wal: compact rewrite: %w", err)
		}
		kept++
	}
	if err := out.f.Sync(); err != nil {
		out.Close()
		os.Remove(tmpPath)
		return 0, 0, fmt.Errorf("wal: compact sync: %w", err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, 0, err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return 0, 0, fmt.Errorf("wal: compact rename: %w", err)
	}
	return kept, dropped, nil
}
