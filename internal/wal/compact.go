package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// syncDir fsyncs a directory, making a rename within it durable: without
// this, a crash just after the rename can roll the directory entry back to
// the old (now deleted) file on some filesystems. A package variable so the
// crash tests can observe and fail it.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// seekEnd positions a file at its end. A package variable so tests can fail
// the post-rename seek and check the log survives.
var seekEnd = func(f *os.File) (int64, error) { return f.Seek(0, io.SeekEnd) }

// Compact rewrites the log in place, dropping every record of transactions
// whose replayed status is StatusEnded (fully applied and garbage-collected
// by the engine via Forget). Recovery time is proportional to log length,
// so long-running sites should compact periodically.
//
// The log stays open and usable throughout: staged records are flushed
// first, the surviving records are written to path+".compact", synced, and
// atomically renamed over the original, and the log's handle is swapped to
// the new file. Appends staged while the rewrite runs are simply written
// after the swap. A crash at any point leaves either the old or the new
// file intact.
//
// On-disk LSNs restart from 1 after compaction (they are scan positions);
// LSNs handed to in-flight appends keep their original values, which only
// order records within one log generation.
func (l *FileLog) Compact() (kept, dropped int, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, 0, ErrClosed
	}
	l.mu.Unlock()
	l.flush()

	l.wmu.Lock()
	defer l.wmu.Unlock()

	_, recs, err := scan(l.f)
	if err != nil {
		return 0, 0, err
	}
	ended := map[string]bool{}
	for tx, img := range Replay(recs) {
		if img.Status == StatusEnded {
			ended[tx] = true
		}
	}

	tmpPath := l.path + ".compact"
	os.Remove(tmpPath)
	out, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: compact open: %w", err)
	}
	for _, r := range recs {
		if ended[r.TxID] {
			dropped++
			continue
		}
		if _, err := out.Write(frame(r)); err != nil {
			out.Close()
			os.Remove(tmpPath)
			return 0, 0, fmt.Errorf("wal: compact rewrite: %w", err)
		}
		kept++
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmpPath)
		return 0, 0, fmt.Errorf("wal: compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		out.Close()
		os.Remove(tmpPath)
		return 0, 0, fmt.Errorf("wal: compact rename: %w", err)
	}
	// The rename succeeded, so out IS the log now: swap the handle before
	// anything below can fail, or a later append would land on the old,
	// renamed-away inode and silently vanish. out's write position is
	// already at end-of-file (the rewrite loop left it there), so the log
	// stays appendable even if the defensive seek below fails.
	old := l.f
	l.f = out
	old.Close()
	// Make the rename itself durable: fsync the parent directory, or a
	// crash right here can lose the compacted file on some filesystems.
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		return kept, dropped, fmt.Errorf("wal: compact dir sync: %w", err)
	}
	if _, err := seekEnd(out); err != nil {
		return kept, dropped, fmt.Errorf("wal: compact seek: %w", err)
	}
	if l.metrics.Compaction != nil {
		l.metrics.Compaction(kept, dropped)
	}
	return kept, dropped, nil
}

// Compact rewrites a closed file log at path, dropping ended transactions.
// It is the offline variant of (*FileLog).Compact, used before a node opens
// its log for serving.
func Compact(path string) (kept, dropped int, err error) {
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()
	return l.Compact()
}
