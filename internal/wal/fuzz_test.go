package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScan feeds arbitrary bytes to the log scanner: it must never panic,
// never error (corrupt tails are silently discarded), and whatever it
// recovers must survive a rewrite + rescan round trip.
func FuzzScan(f *testing.F) {
	// Seed corpus: a valid log, a truncated one, and garbage.
	valid := func() []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.wal")
		l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
		if err != nil {
			f.Fatal(err)
		}
		l.Append(Record{Type: RecVoteYes, TxID: "tx", Payload: []byte("payload")})
		l.Append(Record{Type: RecCommitted, TxID: "tx"})
		l.Close()
		data, _ := os.ReadFile(path)
		return data
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte("garbage garbage garbage"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
		if err != nil {
			t.Fatalf("open must tolerate corrupt logs: %v", err)
		}
		recs, err := l.Records()
		if err != nil {
			t.Fatal(err)
		}
		// Appends after a corrupt tail land cleanly.
		if _, err := l.Append(Record{Type: RecBegin, TxID: "post"}); err != nil {
			t.Fatal(err)
		}
		l.Close()

		l2, err := OpenFileLog(path, FileLogOptions{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		recs2, err := l2.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen lost records: %d then %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs2[i].Type != recs[i].Type || recs2[i].TxID != recs[i].TxID ||
				string(recs2[i].Payload) != string(recs[i].Payload) {
				t.Fatalf("record %d changed across rescan", i)
			}
		}
	})
}
