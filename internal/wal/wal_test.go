package wal

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemoryLogAppendAndRead(t *testing.T) {
	l := NewMemoryLog()
	lsn, err := l.Append(Record{Type: RecBegin, TxID: "t1", Payload: []byte("p")})
	if err != nil || lsn != 1 {
		t.Fatalf("Append = %d, %v", lsn, err)
	}
	lsn, err = l.Append(Record{Type: RecCommitted, TxID: "t1"})
	if err != nil || lsn != 2 {
		t.Fatalf("Append = %d, %v", lsn, err)
	}
	recs, err := l.Records()
	if err != nil || len(recs) != 2 {
		t.Fatalf("Records = %v, %v", recs, err)
	}
	if recs[0].Type != RecBegin || string(recs[0].Payload) != "p" || recs[1].LSN != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestMemoryLogCloseReopen(t *testing.T) {
	l := NewMemoryLog()
	if _, err := l.Append(Record{Type: RecVoteYes, TxID: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Type: RecCommitted, TxID: "t"}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := l.Records(); err != ErrClosed {
		t.Fatalf("records after close: %v", err)
	}
	l.Reopen()
	if _, err := l.Append(Record{Type: RecCommitted, TxID: "t"}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	recs, err := l.Records()
	if err != nil || len(recs) != 2 {
		t.Fatalf("log lost records across close/reopen: %v %v", recs, err)
	}
}

func TestMemoryLogPayloadIsolation(t *testing.T) {
	l := NewMemoryLog()
	buf := []byte("abc")
	if _, err := l.Append(Record{Type: RecBegin, TxID: "t", Payload: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	recs, _ := l.Records()
	if string(recs[0].Payload) != "abc" {
		t.Fatal("log shares the caller's payload buffer")
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site1.wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Type: RecBegin, TxID: "tx-1", Payload: []byte("participants=2,3")},
		{Type: RecVoteYes, TxID: "tx-1"},
		{Type: RecPrepared, TxID: "tx-1", Payload: []byte{0, 1, 2}},
		{Type: RecCommitted, TxID: "tx-1"},
		{Type: RecEnd, TxID: "tx-1"},
	}
	for i, r := range want {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Type != want[i].Type || recs[i].TxID != want[i].TxID ||
			string(recs[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
	// Appends continue after reopen with the right LSN.
	lsn, err := l2.Append(Record{Type: RecBegin, TxID: "tx-2"})
	if err != nil || lsn != uint64(len(want)+1) {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestFileLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Record{Type: RecVoteYes, TxID: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-write: chop bytes off the end.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _ := l2.Records()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records after torn tail, want 2", len(recs))
	}
	// The torn record's space is reclaimed and new appends land cleanly.
	if _, err := l2.Append(Record{Type: RecCommitted, TxID: "t"}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	recs, _ = l3.Records()
	if len(recs) != 3 || recs[2].Type != RecCommitted {
		t.Fatalf("after repair: %+v", recs)
	}
}

func TestFileLogCorruptBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Type: RecVoteYes, TxID: "good"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Type: RecCommitted, TxID: "evil"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a byte in the second record's body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _ := l2.Records()
	if len(recs) != 1 || recs[0].TxID != "good" {
		t.Fatalf("recovered %+v, want only the good record", recs)
	}
}

func TestFileLogRejectsHugeTxID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	huge := make([]byte, 1<<16)
	for i := range huge {
		huge[i] = 'x'
	}
	if _, err := l.Append(Record{Type: RecBegin, TxID: string(huge)}); err == nil {
		t.Fatal("oversized TxID accepted")
	}
}

func TestFileLogClosedErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(Record{Type: RecBegin, TxID: "t"}); err != ErrClosed {
		t.Fatalf("append on closed log: %v", err)
	}
	if _, err := l.Records(); err != ErrClosed {
		t.Fatalf("records on closed log: %v", err)
	}
	if l.Path() != path {
		t.Fatalf("Path = %q", l.Path())
	}
}

func TestRecordTypeStrings(t *testing.T) {
	names := map[RecordType]string{
		RecBegin: "begin", RecVoteYes: "vote-yes", RecVoteNo: "vote-no",
		RecPrepared: "prepared", RecCommitted: "committed",
		RecAborted: "aborted", RecEnd: "end",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestReplay(t *testing.T) {
	recs := []Record{
		{LSN: 1, Type: RecBegin, TxID: "a", Payload: []byte("2,3")},
		{LSN: 2, Type: RecVoteYes, TxID: "b"},
		{LSN: 3, Type: RecPrepared, TxID: "b"},
		{LSN: 4, Type: RecCommitted, TxID: "a"},
		{LSN: 5, Type: RecVoteYes, TxID: "c"},
		{LSN: 6, Type: RecVoteNo, TxID: "d"},
		{LSN: 7, Type: RecEnd, TxID: "a"},
	}
	img := Replay(recs)
	if got := img["a"].Status; got != StatusEnded {
		t.Errorf("a: %v", got)
	}
	if !img["a"].Coordinator || string(img["a"].Begin) != "2,3" {
		t.Errorf("a image = %+v", img["a"])
	}
	if got := img["b"].Status; got != StatusPrepared || !got.InDoubt() {
		t.Errorf("b: %v", got)
	}
	if got := img["c"].Status; got != StatusVotedYes || !got.InDoubt() {
		t.Errorf("c: %v", got)
	}
	if got := img["d"].Status; got != StatusVotedNo || got.InDoubt() || got.Final() {
		t.Errorf("d: %v", got)
	}
	if img["b"].LastLSN != 3 {
		t.Errorf("b.LastLSN = %d", img["b"].LastLSN)
	}
}

func TestReplayCoordinatorBegunAborts(t *testing.T) {
	img := Replay([]Record{{LSN: 1, Type: RecBegin, TxID: "t"}})
	if img["t"].Status != StatusBegun || img["t"].Status.InDoubt() {
		t.Fatalf("begun coordinator image = %+v", img["t"])
	}
}

func TestStatusPredicates(t *testing.T) {
	if !StatusCommitted.Final() || !StatusAborted.Final() || !StatusEnded.Final() {
		t.Fatal("final statuses not final")
	}
	if StatusVotedYes.Final() || StatusBegun.Final() {
		t.Fatal("non-final statuses reported final")
	}
	for s := StatusUnknown; s <= StatusEnded; s++ {
		if s.String() == "" {
			t.Fatalf("empty name for %d", int(s))
		}
	}
}

// TestFileLogQuickRoundTrip is a property test: any sequence of records
// written to a FileLog is read back verbatim after close and reopen.
func TestFileLogQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(txids [][8]byte, payloads [][]byte, types []byte) bool {
		i++
		path := filepath.Join(dir, "q", "")
		_ = os.MkdirAll(path, 0o755)
		path = filepath.Join(path, "log"+string(rune('a'+i%26))+".wal")
		os.Remove(path)
		l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		n := len(txids)
		if len(payloads) < n {
			n = len(payloads)
		}
		if len(types) < n {
			n = len(types)
		}
		var want []Record
		for j := 0; j < n; j++ {
			r := Record{
				Type:    RecordType(types[j]%7 + 1),
				TxID:    string(txids[j][:]),
				Payload: payloads[j],
			}
			if _, err := l.Append(r); err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
		l.Close()
		l2, err := OpenFileLog(path, FileLogOptions{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		got, err := l2.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if got[j].Type != want[j].Type || got[j].TxID != want[j].TxID ||
				string(got[j].Payload) != string(want[j].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// tx1: full lifecycle, ended. tx2: committed but not ended. tx3: in
	// doubt.
	for _, r := range []Record{
		{Type: RecVoteYes, TxID: "tx1", Payload: []byte("p1")},
		{Type: RecVoteYes, TxID: "tx2"},
		{Type: RecCommitted, TxID: "tx1"},
		{Type: RecEnd, TxID: "tx1"},
		{Type: RecCommitted, TxID: "tx2", Payload: []byte("redo2")},
		{Type: RecVoteYes, TxID: "tx3", Payload: []byte("p3")},
	} {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	kept, dropped, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 3 || dropped != 3 {
		t.Fatalf("kept=%d dropped=%d, want 3/3", kept, dropped)
	}

	l2, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, _ := l2.Records()
	img := Replay(recs)
	if _, has := img["tx1"]; has {
		t.Fatal("ended transaction survived compaction")
	}
	if img["tx2"].Status != StatusCommitted || string(img["tx2"].Last) != "redo2" {
		t.Fatalf("tx2 image = %+v", img["tx2"])
	}
	if img["tx3"].Status != StatusVotedYes || string(img["tx3"].Last) != "p3" {
		t.Fatalf("tx3 image = %+v", img["tx3"])
	}
	// Appends continue after compaction.
	if _, err := l2.Append(Record{Type: RecAborted, TxID: "tx3"}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactEmptyAndIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.wal")
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	kept, dropped, err := Compact(path)
	if err != nil || kept != 0 || dropped != 0 {
		t.Fatalf("empty compact = %d/%d, %v", kept, dropped, err)
	}
	// Twice in a row is fine.
	if _, _, err := Compact(path); err != nil {
		t.Fatal(err)
	}
}
