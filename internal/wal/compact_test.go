package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// seedLog writes a log where tx-end-* are fully ended (compaction drops
// them) and tx-live-* are committed but not ended (compaction keeps them).
func seedLog(t *testing.T, path string, ended, live int) {
	t.Helper()
	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < ended; i++ {
		tx := fmt.Sprintf("tx-end-%d", i)
		for _, r := range []Record{
			{Type: RecVoteYes, TxID: tx},
			{Type: RecCommitted, TxID: tx},
			{Type: RecEnd, TxID: tx},
		} {
			if _, err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < live; i++ {
		tx := fmt.Sprintf("tx-live-%d", i)
		if _, err := l.Append(Record{Type: RecCommitted, TxID: tx, Payload: []byte("redo")}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactSyncsParentDir asserts the crash-durability step: after the
// rename, Compact must fsync the log's parent directory, or the rename
// itself can be lost on power failure.
func TestCompactSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.wal")
	seedLog(t, path, 2, 1)

	var synced []string
	orig := syncDir
	syncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	defer func() { syncDir = orig }()

	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("dir syncs = %v, want exactly [%s]", synced, dir)
	}
}

func TestCompactDirSyncFailureReported(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	seedLog(t, path, 1, 1)

	boom := errors.New("injected dir sync failure")
	orig := syncDir
	syncDir = func(string) error { return boom }
	defer func() { syncDir = orig }()

	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact err = %v, want wrapped %v", err, boom)
	}
	// The handle was swapped before the failing sync: appends still land in
	// the compacted file, not the renamed-away inode.
	if _, err := l.Append(Record{Type: RecVoteYes, TxID: "after"}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.TxID == "after" {
			found = true
		}
	}
	if !found {
		t.Fatal("append after failed dir sync vanished (handle not swapped)")
	}
}

// TestCompactSeekFailureKeepsNewHandle is the regression test for the
// handle-swap bug: when the post-rename seek fails, the log must already be
// on the new file — the old code left l.f pointing at the renamed-away
// inode, so every later append went to an unlinked file and silently
// vanished across restart.
func TestCompactSeekFailureKeepsNewHandle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	seedLog(t, path, 2, 1)

	boom := errors.New("injected seek failure")
	origSeek := seekEnd
	seekEnd = func(*os.File) (int64, error) { return 0, boom }
	defer func() { seekEnd = origSeek }()

	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact err = %v, want wrapped %v", err, boom)
	}
	if _, err := l.Append(Record{Type: RecCommitted, TxID: "post-seek", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// The append must survive reopen from the on-disk path.
	l2, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if img := Replay(recs); img["post-seek"].Status != StatusCommitted {
		t.Fatalf("append after failed seek lost across reopen: %+v", img)
	}
}

func TestCompactMetricsMatchReturn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	seedLog(t, path, 3, 2)

	var gotKept, gotDropped, calls int
	l, err := OpenFileLog(path, FileLogOptions{
		NoSync: true,
		Metrics: Metrics{Compaction: func(kept, dropped int) {
			calls++
			gotKept, gotDropped = kept, dropped
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	kept, dropped, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 || dropped != 9 {
		t.Fatalf("kept=%d dropped=%d, want 2/9", kept, dropped)
	}
	if calls != 1 || gotKept != kept || gotDropped != dropped {
		t.Fatalf("metrics hook saw %d/%d (%d calls), Compact returned %d/%d",
			gotKept, gotDropped, calls, kept, dropped)
	}
}

// TestCompactConcurrentWithAppendsAndReads hammers Append and Records from
// other goroutines while Compact rewrites the log; run under -race this
// guards the handle swap and the staged-append path.
func TestCompactConcurrentWithAppendsAndReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	seedLog(t, path, 50, 5)

	l, err := OpenFileLog(path, FileLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 3)
	// first closes once the appender has landed a record, so the compaction
	// loop below genuinely races with live appends; on one CPU the main
	// goroutine can otherwise finish all five Compacts before the appender
	// is ever scheduled.
	first := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.Append(Record{Type: RecCommitted, TxID: fmt.Sprintf("cc-%d", i)}); err != nil {
				errs <- err
				return
			}
			if i == 0 {
				close(first)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.Records(); err != nil {
				errs <- err
				return
			}
		}
	}()
	<-first
	for i := 0; i < 5; i++ {
		if _, _, err := l.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Everything appended concurrently must still be readable.
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	cc := 0
	for _, r := range recs {
		if strings.HasPrefix(r.TxID, "cc-") {
			cc++
		}
	}
	if cc == 0 {
		t.Fatal("no concurrent appends survived compaction")
	}
}
