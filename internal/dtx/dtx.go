// Package dtx binds the commit engine to the kv store: a distributed
// transaction manager in which a transaction reads and writes keys at
// several sites and is then committed atomically with 2PC, 3PC, or Paxos
// Commit.
//
// The data plane is direct (the client applies operations to each site's
// store as it executes); the commit protocol is what crosses the network.
// This mirrors the paper's model, where the mechanism distributing the
// transaction is not modelled — only the commit decision is.
package dtx

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/kv"
	"nbcommit/internal/metrics"
	"nbcommit/internal/shard"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// StoreResource adapts a kv.Store to the engine's Resource interface.
type StoreResource struct {
	Store *kv.Store
}

// Prepare votes by preparing the staged transaction; the redo image is the
// encoded write set.
func (r StoreResource) Prepare(txid string) ([]byte, error) {
	ops, err := r.Store.Prepare(txid)
	if err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		// No writes at this site: an empty (nil) redo image is the signal
		// the engine's read-only participant optimization keys on.
		return nil, nil
	}
	return kv.EncodeWrites(ops)
}

// Commit applies the prepared transaction.
func (r StoreResource) Commit(txid string, _ []byte) error {
	return r.Store.Commit(txid)
}

// Abort discards the transaction.
func (r StoreResource) Abort(txid string) error {
	return r.Store.Abort(txid)
}

// ApplyRedo replays a committed write set during recovery.
func (r StoreResource) ApplyRedo(redo []byte) error {
	ops, err := kv.DecodeWrites(redo)
	if err != nil {
		return err
	}
	r.Store.ApplyRedo(ops)
	return nil
}

// CommitTS and Watermark make StoreResource an engine.VersionedResource, so
// the engine publishes the store's apply progress and in-doubt bound.
func (r StoreResource) CommitTS() uint64 { return r.Store.CommitTS() }

// Watermark reports the store's oldest in-doubt prepare timestamp.
func (r StoreResource) Watermark() uint64 { return r.Store.Watermark() }

// Node is one site: a store, its WAL, and the commit engine.
type Node struct {
	ID    int
	Store *kv.Store
	Site  *engine.Site
	log   wal.Log
}

// Paradigm selects how commitment is coordinated.
type Paradigm int

const (
	// CentralSite uses a coordinator (the transaction's Begin site) and the
	// slave protocol at the other participants.
	CentralSite Paradigm = iota
	// Decentralized has every participant run the same peer protocol with
	// full message interchanges and no coordinator.
	Decentralized
)

// String names the paradigm.
func (p Paradigm) String() string {
	if p == Decentralized {
		return "decentralized"
	}
	return "central-site"
}

// Options configures a Cluster.
type Options struct {
	// Protocol selects the commit protocol family (2PC, 3PC, or Paxos
	// Commit). Default ThreePhase.
	Protocol engine.ProtocolKind
	// Paradigm selects central-site or decentralized commitment. Default
	// CentralSite.
	Paradigm Paradigm
	// Timeout is the engine's protocol timeout. Default 100ms.
	Timeout time.Duration
	// LockTimeout is each store's lock-wait bound. Default 100ms.
	LockTimeout time.Duration
	// Policy selects the stores' deadlock handling (timeout or wait-die).
	Policy kv.DeadlockPolicy
	// Dir, when set, stores each site's WAL in Dir/site<i>.wal instead of
	// memory.
	Dir string
	// SyncWAL makes file-backed WALs (Dir set) fsync their batches, so a
	// commit is durable when reported. Off by default: tests that only
	// exercise protocol logic skip the fsyncs.
	SyncWAL bool
	// NoGroupCommit forces one serialized write+fsync per WAL record
	// (wal.Synchronous), disabling group commit. This is the baseline the
	// group-commit speedup is measured against.
	NoGroupCommit bool
	// FlushInterval is the group-commit window of file-backed WALs; zero
	// flushes as soon as the flusher is free (natural batching).
	FlushInterval time.Duration
	// WALMetrics receives each site's batch-size and sync-latency samples.
	WALMetrics wal.Metrics
	// Registry, when set, instruments every site's commit path into one
	// shared metrics registry (per-phase latency, commit latency, gauges —
	// see engine.NewMetrics). Samples from all sites aggregate.
	Registry *metrics.Registry
	// ForgetAfter enables the engine's auto-forget of settled transactions
	// (see engine.Config.ForgetAfter). Zero keeps them forever.
	ForgetAfter time.Duration
	// Shards is each site's engine event-loop count (see
	// engine.Config.Shards). Zero uses the engine default (GOMAXPROCS).
	Shards int
	// ShardMap places keys for the keyed transaction API (BeginKeyed,
	// GetK/PutK/DelK). Nil defaults to the deterministic default map over
	// the cluster's sites.
	ShardMap *shard.Map
}

// Cluster is an in-process set of sites sharing a fault-injectable network.
type Cluster struct {
	Net      *transport.Network
	Detector *failure.OracleDetector
	opts     Options
	router   *shard.Router

	mu    sync.Mutex
	nodes map[int]*Node
	ids   []int
	txSeq atomic.Uint64
}

// NewCluster builds and starts sites 1..n.
func NewCluster(n int, opts Options) (*Cluster, error) {
	if opts.Timeout == 0 {
		opts.Timeout = 100 * time.Millisecond
	}
	if opts.LockTimeout == 0 {
		opts.LockTimeout = 100 * time.Millisecond
	}
	c := &Cluster{
		Net:   transport.NewNetwork(),
		opts:  opts,
		nodes: map[int]*Node{},
	}
	c.Detector = failure.NewOracle(c.Net)
	for i := 1; i <= n; i++ {
		c.ids = append(c.ids, i)
		if err := c.addNode(i, nil); err != nil {
			return nil, err
		}
	}
	if c.opts.ShardMap == nil {
		c.opts.ShardMap = shard.Default(c.ids, 4)
	}
	c.router = &shard.Router{Map: c.opts.ShardMap}
	return c, nil
}

// Router exposes the cluster's key placement, e.g. for workload generators
// that need to pre-bucket keys by owner site.
func (c *Cluster) Router() *shard.Router { return c.router }

// newLog opens the WAL for a site, reusing prior when restarting.
func (c *Cluster) newLog(id int, prior wal.Log) (wal.Log, error) {
	if prior != nil {
		if m, ok := prior.(*wal.MemoryLog); ok {
			m.Reopen()
			return m, nil
		}
		prior.Close()
	}
	if c.opts.Dir == "" {
		if prior != nil {
			return prior, nil
		}
		return wal.NewMemoryLog(), nil
	}
	fl, err := wal.OpenFileLog(filepath.Join(c.opts.Dir, fmt.Sprintf("site%d.wal", id)), wal.FileLogOptions{
		NoSync:        !c.opts.SyncWAL,
		FlushInterval: c.opts.FlushInterval,
		Metrics:       c.opts.WALMetrics,
	})
	if err != nil {
		return nil, err
	}
	if c.opts.NoGroupCommit {
		return wal.Synchronous(fl), nil
	}
	return fl, nil
}

// addNode creates (or recovers, when priorLog is non-nil) a node.
func (c *Cluster) addNode(id int, priorLog wal.Log) error {
	log, err := c.newLog(id, priorLog)
	if err != nil {
		return err
	}
	store := kv.NewStore(kv.Options{LockTimeout: c.opts.LockTimeout, Policy: c.opts.Policy})
	cfg := engine.Config{
		ID:          id,
		Endpoint:    c.Net.Endpoint(id),
		Log:         log,
		Resource:    StoreResource{Store: store},
		Detector:    c.Detector,
		Protocol:    c.opts.Protocol,
		Timeout:     c.opts.Timeout,
		ForgetAfter: c.opts.ForgetAfter,
		Shards:      c.opts.Shards,
		// StoreResource's redo image is exactly the encoded write set, so an
		// empty image genuinely means "no writes at this site" — the
		// condition the read-only participant optimization needs.
		ReadOnlyVotes: true,
	}
	if c.opts.Registry != nil {
		cfg.Metrics = engine.NewMetrics(c.opts.Registry, c.opts.Protocol)
	}
	var site *engine.Site
	if priorLog != nil {
		site, err = engine.Recover(cfg)
		if err != nil {
			return err
		}
	} else {
		site, err = engine.New(cfg)
		if err != nil {
			return err
		}
		site.Start()
	}
	c.mu.Lock()
	c.nodes[id] = &Node{ID: id, Store: store, Site: site, log: log}
	c.mu.Unlock()
	return nil
}

// Node returns the site with the given ID.
func (c *Cluster) Node(id int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// IDs returns all site IDs.
func (c *Cluster) IDs() []int { return append([]int(nil), c.ids...) }

// Crash fails a site: the network reports the crash, the engine halts, and
// the store's volatile state is lost (only the WAL survives).
func (c *Cluster) Crash(id int) {
	c.Net.Crash(id)
	if n := c.Node(id); n != nil {
		n.Site.Stop()
	}
}

// Recover restarts a crashed site from its WAL: committed effects are redone
// into a fresh store and in-doubt transactions are resolved by asking the
// cohort.
func (c *Cluster) Recover(id int) error {
	n := c.Node(id)
	if n == nil {
		return fmt.Errorf("dtx: no site %d", id)
	}
	return c.addNode(id, n.log)
}

// Stop shuts every site down.
func (c *Cluster) Stop() {
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Site.Stop()
		n.log.Close()
	}
}

// Txn is a client-side distributed transaction. It is not safe for
// concurrent use by multiple goroutines.
type Txn struct {
	ID          string
	c           *Cluster
	coordinator int
	touched     map[int]bool
	wrote       map[int]bool
	finished    bool
}

// Begin starts a distributed transaction coordinated by the given site.
func (c *Cluster) Begin(coordinator int) (*Txn, error) {
	n := c.Node(coordinator)
	if n == nil {
		return nil, fmt.Errorf("dtx: no site %d", coordinator)
	}
	id := fmt.Sprintf("tx-%d-%d", coordinator, c.txSeq.Add(1))
	t := &Txn{ID: id, c: c, coordinator: coordinator, touched: map[int]bool{}, wrote: map[int]bool{}}
	if err := t.enlist(coordinator); err != nil {
		return nil, err
	}
	return t, nil
}

// BeginKeyed starts a key-addressed distributed transaction: no site is
// enlisted up front; the owner sites of the keys it touches become the
// commit cohort, and the lowest-numbered touched site coordinates. A
// transaction confined to one shard therefore commits with a participant
// set of exactly one site.
func (c *Cluster) BeginKeyed() *Txn {
	id := fmt.Sprintf("txk-%d", c.txSeq.Add(1))
	return &Txn{ID: id, c: c, touched: map[int]bool{}, wrote: map[int]bool{}}
}

// GetK reads a key at its owner site under the transaction.
func (t *Txn) GetK(key string) (string, error) { return t.Get(t.c.router.Site(key), key) }

// PutK writes a key at its owner site under the transaction.
func (t *Txn) PutK(key, value string) error { return t.Put(t.c.router.Site(key), key, value) }

// DelK removes a key at its owner site under the transaction.
func (t *Txn) DelK(key string) error { return t.Delete(t.c.router.Site(key), key) }

// enlist starts the local transaction at a site on first touch.
func (t *Txn) enlist(site int) error {
	if t.touched[site] {
		return nil
	}
	n := t.c.Node(site)
	if n == nil {
		return fmt.Errorf("dtx: no site %d", site)
	}
	if err := n.Store.Begin(t.ID); err != nil {
		return err
	}
	t.touched[site] = true
	return nil
}

// Get reads a key at a site under the transaction.
func (t *Txn) Get(site int, key string) (string, error) {
	if err := t.enlist(site); err != nil {
		return "", err
	}
	return t.c.Node(site).Store.Get(t.ID, key)
}

// Put writes a key at a site under the transaction.
func (t *Txn) Put(site int, key, value string) error {
	if err := t.enlist(site); err != nil {
		return err
	}
	t.wrote[site] = true
	return t.c.Node(site).Store.Put(t.ID, key, value)
}

// Delete removes a key at a site under the transaction.
func (t *Txn) Delete(site int, key string) error {
	if err := t.enlist(site); err != nil {
		return err
	}
	t.wrote[site] = true
	return t.c.Node(site).Store.Delete(t.ID, key)
}

// Participants returns the sites the transaction has touched, including the
// coordinator.
func (t *Txn) Participants() []int {
	out := make([]int, 0, len(t.touched))
	for id := range t.touched {
		out = append(out, id)
	}
	return out
}

// Commit runs the configured commit protocol across the touched sites,
// waits up to timeout for the coordinator's decision, and then waits (within
// the same budget) for every still-operational participant to apply it, so
// that reads observe the outcome when Commit returns.
func (t *Txn) Commit(timeout time.Duration) (engine.Outcome, error) {
	if t.finished {
		return engine.OutcomePending, fmt.Errorf("dtx: transaction %s already finished", t.ID)
	}
	t.finished = true
	if t.coordinator == 0 {
		// Keyed transaction: the lowest touched site coordinates, so the
		// cohort is exactly the owner sites of the touched shards.
		for site := range t.touched {
			if t.coordinator == 0 || site < t.coordinator {
				t.coordinator = site
			}
		}
		if t.coordinator == 0 {
			return engine.OutcomeCommitted, nil // touched nothing
		}
	}
	deadline := time.Now().Add(timeout)
	coord := t.c.Node(t.coordinator)
	var err error
	if t.c.opts.Paradigm == Decentralized {
		err = coord.Site.BeginPeer(t.ID, t.Participants())
	} else {
		err = coord.Site.Begin(t.ID, t.Participants())
	}
	if err != nil {
		return engine.OutcomePending, err
	}
	o, err := coord.Site.WaitOutcome(t.ID, timeout)
	if err != nil || o == engine.OutcomePending {
		return o, err
	}
	for site := range t.touched {
		// This drain only exists so the outcome's effects are applied
		// everywhere before Commit returns. A site the transaction never
		// wrote to has no effects — and if it took the read-only vote it
		// has already dropped the transaction, so waiting on it would
		// stall for the full deadline.
		if site == t.coordinator || !t.wrote[site] || !t.c.Net.Alive(site) {
			continue
		}
		if n := t.c.Node(site); n != nil {
			_, _ = n.Site.WaitOutcome(t.ID, time.Until(deadline))
		}
	}
	return o, nil
}

// ROTxn is a read-only transaction on the snapshot fast path: every read is
// served from a pinned multi-version snapshot of its site, it never takes
// locks, never enlists in the commit protocol, and "commits" without a
// single protocol message — Begin/Prepare are skipped entirely. Per-site
// snapshots are pinned lazily on first touch and released by Close. Not safe
// for concurrent use by multiple goroutines.
//
// Consistency: each site's snapshot is stable (below that site's in-doubt
// watermark), so a read never observes a torn or undecided write set at any
// site. Snapshots at different sites are pinned independently — the paper's
// model has no global timestamp to align them.
type ROTxn struct {
	ID    string
	c     *Cluster
	snaps map[int]uint64
	done  bool
}

// BeginReadOnly starts a read-only transaction on the snapshot fast path.
func (c *Cluster) BeginReadOnly() *ROTxn {
	return &ROTxn{
		ID:    fmt.Sprintf("ro-%d", c.txSeq.Add(1)),
		c:     c,
		snaps: map[int]uint64{},
	}
}

// GetK reads a key at its owner site from the transaction's snapshot.
func (t *ROTxn) GetK(key string) (string, error) { return t.Get(t.c.router.Site(key), key) }

// Get reads a key at a site from the transaction's snapshot, pinning the
// site's stable timestamp on first touch.
func (t *ROTxn) Get(site int, key string) (string, error) {
	if t.done {
		return "", fmt.Errorf("dtx: read-only transaction %s already finished", t.ID)
	}
	n := t.c.Node(site)
	if n == nil {
		return "", fmt.Errorf("dtx: no site %d", site)
	}
	ts, ok := t.snaps[site]
	if !ok {
		ts = n.Store.AcquireSnapshot()
		t.snaps[site] = ts
	}
	return n.Store.ReadAt(ts, key)
}

// Close releases the pinned snapshots. A read-only transaction needs no
// commit: its snapshot was consistent by construction, so Close is both
// commit and abort. Idempotent.
func (t *ROTxn) Close() {
	if t.done {
		return
	}
	t.done = true
	for site, ts := range t.snaps {
		if n := t.c.Node(site); n != nil {
			n.Store.ReleaseSnapshot(ts)
		}
	}
}

// Abort rolls the transaction back at every touched site without running the
// commit protocol.
func (t *Txn) Abort() error {
	if t.finished {
		return nil
	}
	t.finished = true
	for site := range t.touched {
		if n := t.c.Node(site); n != nil {
			_ = n.Store.Abort(t.ID)
		}
	}
	return nil
}
