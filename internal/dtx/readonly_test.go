package dtx

import (
	"errors"
	"testing"

	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
)

// TestReadOnlyTxnFastPath: a read-only transaction reads a pinned snapshot
// per site, never enlists in the commit protocol, and leaves no transaction
// state anywhere.
func TestReadOnlyTxnFastPath(t *testing.T) {
	c := newTestCluster(t, 3, engine.TwoPhase)
	defer c.Stop()

	w, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(1, "x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(2, "y", "1"); err != nil {
		t.Fatal(err)
	}
	if o, err := w.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("seed commit: %v %v", o, err)
	}

	ro := c.BeginReadOnly()
	if v, err := ro.Get(1, "x"); err != nil || v != "1" {
		t.Fatalf("ro read x = %q, %v", v, err)
	}
	if v, err := ro.Get(2, "y"); err != nil || v != "1" {
		t.Fatalf("ro read y = %q, %v", v, err)
	}

	// Overwrite both keys while the read-only transaction is open: its view
	// must not move.
	w2, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Put(1, "x", "2"); err != nil {
		t.Fatal(err)
	}
	if err := w2.Put(2, "y", "2"); err != nil {
		t.Fatal(err)
	}
	if o, err := w2.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("overwrite commit: %v %v", o, err)
	}
	if v, err := ro.Get(1, "x"); err != nil || v != "1" {
		t.Fatalf("pinned read x moved: %q, %v", v, err)
	}
	if v, err := ro.Get(2, "y"); err != nil || v != "1" {
		t.Fatalf("pinned read y moved: %q, %v", v, err)
	}

	// The fast path skipped Begin/Prepare everywhere: no engine record, no
	// store enlistment for the read-only transaction at any site.
	for _, id := range c.IDs() {
		n := c.Node(id)
		for _, tx := range n.Site.Transactions() {
			if tx == ro.ID {
				t.Fatalf("site %d engine tracked %s", id, ro.ID)
			}
		}
		for _, tx := range n.Store.Pending() {
			if tx == ro.ID {
				t.Fatalf("site %d store enlisted %s", id, ro.ID)
			}
		}
	}

	ro.Close()
	if _, err := ro.Get(1, "x"); err == nil {
		t.Fatal("read after Close succeeded")
	}

	// A fresh snapshot sees the new values; snapshot reads coexist with an
	// in-flight writer holding exclusive locks.
	w3, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w3.Put(1, "x", "3"); err != nil {
		t.Fatal(err)
	}
	ro2 := c.BeginReadOnly()
	defer ro2.Close()
	if v, err := ro2.Get(1, "x"); err != nil || v != "2" {
		t.Fatalf("snapshot under writer lock = %q, %v", v, err)
	}
	if _, err := ro2.Get(1, "missing"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := w3.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestReadOnlyKeyedRouting: GetK routes snapshot reads through the shard map
// like every other keyed verb.
func TestReadOnlyKeyedRouting(t *testing.T) {
	c := newTestCluster(t, 3, engine.ThreePhase)
	defer c.Stop()

	w := c.BeginKeyed()
	if err := w.PutK("alpha", "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.PutK("beta", "b"); err != nil {
		t.Fatal(err)
	}
	if o, err := w.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("keyed commit: %v %v", o, err)
	}

	ro := c.BeginReadOnly()
	defer ro.Close()
	if v, err := ro.GetK("alpha"); err != nil || v != "a" {
		t.Fatalf("GetK alpha = %q, %v", v, err)
	}
	if v, err := ro.GetK("beta"); err != nil || v != "b" {
		t.Fatalf("GetK beta = %q, %v", v, err)
	}
}
