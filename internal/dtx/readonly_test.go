package dtx

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
	"nbcommit/internal/transport"
)

// TestReadOnlyTxnFastPath: a read-only transaction reads a pinned snapshot
// per site, never enlists in the commit protocol, and leaves no transaction
// state anywhere.
func TestReadOnlyTxnFastPath(t *testing.T) {
	c := newTestCluster(t, 3, engine.TwoPhase)
	defer c.Stop()

	w, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(1, "x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(2, "y", "1"); err != nil {
		t.Fatal(err)
	}
	if o, err := w.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("seed commit: %v %v", o, err)
	}

	ro := c.BeginReadOnly()
	if v, err := ro.Get(1, "x"); err != nil || v != "1" {
		t.Fatalf("ro read x = %q, %v", v, err)
	}
	if v, err := ro.Get(2, "y"); err != nil || v != "1" {
		t.Fatalf("ro read y = %q, %v", v, err)
	}

	// Overwrite both keys while the read-only transaction is open: its view
	// must not move.
	w2, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Put(1, "x", "2"); err != nil {
		t.Fatal(err)
	}
	if err := w2.Put(2, "y", "2"); err != nil {
		t.Fatal(err)
	}
	if o, err := w2.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("overwrite commit: %v %v", o, err)
	}
	if v, err := ro.Get(1, "x"); err != nil || v != "1" {
		t.Fatalf("pinned read x moved: %q, %v", v, err)
	}
	if v, err := ro.Get(2, "y"); err != nil || v != "1" {
		t.Fatalf("pinned read y moved: %q, %v", v, err)
	}

	// The fast path skipped Begin/Prepare everywhere: no engine record, no
	// store enlistment for the read-only transaction at any site.
	for _, id := range c.IDs() {
		n := c.Node(id)
		for _, tx := range n.Site.Transactions() {
			if tx == ro.ID {
				t.Fatalf("site %d engine tracked %s", id, ro.ID)
			}
		}
		for _, tx := range n.Store.Pending() {
			if tx == ro.ID {
				t.Fatalf("site %d store enlisted %s", id, ro.ID)
			}
		}
	}

	ro.Close()
	if _, err := ro.Get(1, "x"); err == nil {
		t.Fatal("read after Close succeeded")
	}

	// A fresh snapshot sees the new values; snapshot reads coexist with an
	// in-flight writer holding exclusive locks.
	w3, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w3.Put(1, "x", "3"); err != nil {
		t.Fatal(err)
	}
	ro2 := c.BeginReadOnly()
	defer ro2.Close()
	if v, err := ro2.Get(1, "x"); err != nil || v != "2" {
		t.Fatalf("snapshot under writer lock = %q, %v", v, err)
	}
	if _, err := ro2.Get(1, "missing"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := w3.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestReadOnlyKeyedRouting: GetK routes snapshot reads through the shard map
// like every other keyed verb.
func TestReadOnlyKeyedRouting(t *testing.T) {
	c := newTestCluster(t, 3, engine.ThreePhase)
	defer c.Stop()

	w := c.BeginKeyed()
	if err := w.PutK("alpha", "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.PutK("beta", "b"); err != nil {
		t.Fatal(err)
	}
	if o, err := w.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("keyed commit: %v %v", o, err)
	}

	ro := c.BeginReadOnly()
	defer ro.Close()
	if v, err := ro.GetK("alpha"); err != nil || v != "a" {
		t.Fatalf("GetK alpha = %q, %v", v, err)
	}
	if v, err := ro.GetK("beta"); err != nil || v != "b" {
		t.Fatalf("GetK beta = %q, %v", v, err)
	}
}

// TestReadOnlyMemberForcesNothing: a mixed read/write keyed transaction whose
// cohort includes a site it only read from. That member answers phase 1 with
// READ-ONLY, forces no WAL record, and sees no phase-2 traffic — the whole of
// its participation is one VOTE-REQ in and one READ-ONLY vote out. (Paxos
// Commit is excluded: there every vote is a ballot-0 consensus accept and
// must be durable, so the optimization does not apply.)
func TestReadOnlyMemberForcesNothing(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newTestCluster(t, 3, kind)
			keyAt := func(site int) string {
				for i := 0; i < 10000; i++ {
					k := fmt.Sprintf("mix-%d", i)
					if c.Router().Site(k) == site {
						return k
					}
				}
				t.Fatalf("no key maps to site %d", site)
				return ""
			}
			writeKey, readKey := keyAt(1), keyAt(3)

			seed := c.BeginKeyed()
			if err := seed.PutK(readKey, "ro-val"); err != nil {
				t.Fatal(err)
			}
			if o, err := seed.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
				t.Fatalf("seed commit: %v %v", o, err)
			}
			recsBefore, err := c.Node(3).log.Records()
			if err != nil {
				t.Fatal(err)
			}

			// Tap the wire for the mixed transaction's traffic at site 3.
			var mu sync.Mutex
			var toRO, fromRO []transport.Message
			w := c.BeginKeyed()
			c.Net.SetDropFunc(func(m transport.Message) bool {
				mu.Lock()
				defer mu.Unlock()
				if m.TxID == w.ID {
					if m.To == 3 {
						toRO = append(toRO, m)
					}
					if m.From == 3 {
						fromRO = append(fromRO, m)
					}
				}
				return false
			})
			defer c.Net.SetDropFunc(nil)

			if v, err := w.GetK(readKey); err != nil || v != "ro-val" {
				t.Fatalf("GetK = %q, %v", v, err)
			}
			if err := w.PutK(writeKey, "w-val"); err != nil {
				t.Fatal(err)
			}
			if o, err := w.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
				t.Fatalf("mixed commit: %v %v", o, err)
			}

			recsAfter, err := c.Node(3).log.Records()
			if err != nil {
				t.Fatal(err)
			}
			if len(recsAfter) != len(recsBefore) {
				t.Errorf("read-only member logged %d records for the mixed transaction",
					len(recsAfter)-len(recsBefore))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, m := range toRO {
				if m.Kind != engine.KindVoteReq {
					t.Errorf("phase-2 message reached the read-only member: %s", m)
				}
			}
			roVotes := 0
			for _, m := range fromRO {
				if m.Kind == engine.KindReadOnly {
					roVotes++
				} else {
					t.Errorf("unexpected message from the read-only member: %s", m)
				}
			}
			if roVotes != 1 {
				t.Errorf("READ-ONLY votes on the wire = %d, want 1", roVotes)
			}
			for _, tx := range c.Node(3).Site.Transactions() {
				if tx == w.ID {
					t.Errorf("read-only member still tracks %s", tx)
				}
			}
			// The write is durable where it belongs and the read site is
			// untouched by it.
			st := c.Node(1).Store
			if v, err := st.ReadAt(st.StableTS(), writeKey); err != nil || v != "w-val" {
				t.Errorf("write key = %q, %v", v, err)
			}
		})
	}
}
