package dtx_test

import (
	"fmt"
	"log"
	"time"

	"nbcommit/internal/dtx"
	"nbcommit/internal/engine"
)

// A distributed transaction across three sites, committed with the
// nonblocking three-phase commit protocol.
func Example() {
	cluster, err := dtx.NewCluster(3, dtx.Options{Protocol: engine.ThreePhase})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	tx, err := cluster.Begin(1)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Put(2, "user", "alice"); err != nil {
		log.Fatal(err)
	}
	if err := tx.Put(3, "balance", "100"); err != nil {
		log.Fatal(err)
	}
	outcome, err := tx.Commit(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outcome:", outcome)

	v, _ := cluster.Node(2).Store.Read("user")
	fmt.Println("site 2 user:", v)
	// Output:
	// outcome: committed
	// site 2 user: alice
}
