package dtx

import (
	"errors"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/kv"
	"nbcommit/internal/transport"
)

const waitLong = 5 * time.Second

func newTestCluster(t *testing.T, n int, kind engine.ProtocolKind) *Cluster {
	t.Helper()
	c, err := NewCluster(n, Options{
		Protocol:    kind,
		Timeout:     50 * time.Millisecond,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestDistributedCommit(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newTestCluster(t, 3, kind)
			tx, err := c.Begin(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Put(1, "a", "1"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Put(2, "b", "2"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Put(3, "c", "3"); err != nil {
				t.Fatal(err)
			}
			o, err := tx.Commit(waitLong)
			if err != nil || o != engine.OutcomeCommitted {
				t.Fatalf("commit = %v, %v", o, err)
			}
			for i, want := range map[int]string{1: "1", 2: "2", 3: "3"} {
				key := string(rune('a' + i - 1))
				if v, ok := c.Node(i).Store.Read(key); !ok || v != want {
					t.Fatalf("site %d %s = %q/%v, want %q", i, key, v, ok, want)
				}
			}
		})
	}
}

func TestLockConflictVotesNoAndAborts(t *testing.T) {
	c := newTestCluster(t, 3, engine.ThreePhase)
	// tx1 holds an exclusive lock on site 2's key.
	tx1, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Put(2, "hot", "tx1"); err != nil {
		t.Fatal(err)
	}
	// tx2 wants the same key; its Put times out (deadlock-resolution) and
	// the client aborts.
	tx2, err := c.Begin(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Put(2, "hot", "tx2"); !errors.Is(err, kv.ErrLockTimeout) {
		t.Fatalf("conflicting put: %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	// tx1 still commits.
	if o, err := tx1.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("tx1 commit = %v, %v", o, err)
	}
	if v, _ := c.Node(2).Store.Read("hot"); v != "tx1" {
		t.Fatalf("hot = %q", v)
	}
}

func TestReadYourWritesAcrossSites(t *testing.T) {
	c := newTestCluster(t, 2, engine.ThreePhase)
	tx, _ := c.Begin(1)
	if err := tx.Put(2, "k", "v"); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Get(2, "k")
	if err != nil || got != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := tx.Get(2, "missing"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if o, err := tx.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("commit = %v, %v", o, err)
	}
}

func TestAbortRollsBackEverywhere(t *testing.T) {
	c := newTestCluster(t, 3, engine.ThreePhase)
	tx, _ := c.Begin(1)
	tx.Put(1, "x", "1")
	tx.Put(2, "x", "2")
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 2} {
		if _, ok := c.Node(id).Store.Read("x"); ok {
			t.Fatalf("site %d kept aborted write", id)
		}
	}
	// Double-finish is a no-op / error.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(waitLong); err == nil {
		t.Fatal("commit after abort should fail")
	}
}

func TestDelete(t *testing.T) {
	c := newTestCluster(t, 2, engine.ThreePhase)
	tx, _ := c.Begin(1)
	tx.Put(2, "k", "v")
	if o, err := tx.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("seed commit = %v, %v", o, err)
	}
	tx2, _ := c.Begin(1)
	if err := tx2.Delete(2, "k"); err != nil {
		t.Fatal(err)
	}
	if o, err := tx2.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("delete commit = %v, %v", o, err)
	}
	if _, ok := c.Node(2).Store.Read("k"); ok {
		t.Fatal("deleted key survives")
	}
}

// TestCrashRecoveryPreservesCommits: a participant crashes after the cluster
// commits; recovery rebuilds its store from the WAL, including the
// transaction's writes.
func TestCrashRecoveryPreservesCommits(t *testing.T) {
	c := newTestCluster(t, 3, engine.ThreePhase)
	tx, _ := c.Begin(1)
	tx.Put(2, "durable", "yes")
	tx.Put(3, "durable", "yes")
	if o, err := tx.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("commit = %v, %v", o, err)
	}
	c.Crash(3)
	if err := c.Recover(3); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Node(3).Store.Read("durable"); !ok || v != "yes" {
		t.Fatalf("recovered store: durable = %q/%v", v, ok)
	}
}

// TestCoordinatorCrash3PCStillCommits: end-to-end version of the paper's
// headline — the coordinator dies after the prepare round and the surviving
// sites still commit via the termination protocol; the data is there.
func TestCoordinatorCrash3PCStillCommits(t *testing.T) {
	c := newTestCluster(t, 3, engine.ThreePhase)
	c.Net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && m.Kind == engine.KindCommit
	})
	tx, _ := c.Begin(1)
	tx.Put(2, "k", "v2")
	tx.Put(3, "k", "v3")
	done := make(chan struct{})
	go func() {
		defer close(done)
		tx.Commit(200 * time.Millisecond)
	}()
	// Wait for both participants to reach the buffer state, then kill the
	// coordinator.
	waitPhase(t, c, 2, tx.ID, "p")
	waitPhase(t, c, 3, tx.ID, "p")
	c.Crash(1)
	c.Net.SetDropFunc(nil)
	<-done

	for _, id := range []int{2, 3} {
		o, err := c.Node(id).Site.WaitOutcome(tx.ID, waitLong)
		if err != nil || o != engine.OutcomeCommitted {
			t.Fatalf("site %d: %v, %v", id, o, err)
		}
	}
	if v, _ := c.Node(2).Store.Read("k"); v != "v2" {
		t.Fatalf("site 2 k = %q", v)
	}
	if v, _ := c.Node(3).Store.Read("k"); v != "v3" {
		t.Fatalf("site 3 k = %q", v)
	}
}

func waitPhase(t *testing.T, c *Cluster, site int, txid, phase string) {
	t.Helper()
	deadline := time.Now().Add(waitLong)
	for time.Now().Before(deadline) {
		if c.Node(site).Site.Phase(txid) == phase {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("site %d tx %s never reached %s (now %s)", site, txid, phase, c.Node(site).Site.Phase(txid))
}

func TestBeginUnknownSite(t *testing.T) {
	c := newTestCluster(t, 2, engine.ThreePhase)
	if _, err := c.Begin(9); err == nil {
		t.Fatal("Begin at unknown site should fail")
	}
	tx, _ := c.Begin(1)
	if err := tx.Put(9, "k", "v"); err == nil {
		t.Fatal("Put at unknown site should fail")
	}
}

func TestIDs(t *testing.T) {
	c := newTestCluster(t, 3, engine.ThreePhase)
	ids := c.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestDecentralizedParadigm(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(3, Options{
				Protocol:    kind,
				Paradigm:    Decentralized,
				Timeout:     50 * time.Millisecond,
				LockTimeout: 50 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Stop)
			tx, err := c.Begin(2)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Put(1, "a", "1"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Put(3, "b", "2"); err != nil {
				t.Fatal(err)
			}
			o, err := tx.Commit(waitLong)
			if err != nil || o != engine.OutcomeCommitted {
				t.Fatalf("commit = %v, %v", o, err)
			}
			if v, _ := c.Node(1).Store.Read("a"); v != "1" {
				t.Fatalf("a = %q", v)
			}
			if v, _ := c.Node(3).Store.Read("b"); v != "2" {
				t.Fatalf("b = %q", v)
			}
		})
	}
}

func TestDecentralizedSurvivesPeerCrash(t *testing.T) {
	c, err := NewCluster(4, Options{
		Protocol:    engine.ThreePhase,
		Paradigm:    Decentralized,
		Timeout:     50 * time.Millisecond,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	// Swallow site 4's outgoing votes, then crash it: survivors terminate
	// by electing a backup among themselves.
	c.Net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 4 && (m.Kind == engine.KindDYes || m.Kind == engine.KindDNo)
	})
	tx, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	for site := 1; site <= 4; site++ {
		if err := tx.Put(site, "k", "v"); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { defer close(done); tx.Commit(300 * time.Millisecond) }()
	waitPhase(t, c, 1, tx.ID, "w")
	waitPhase(t, c, 2, tx.ID, "w")
	waitPhase(t, c, 3, tx.ID, "w")
	c.Crash(4)
	c.Net.SetDropFunc(nil)
	<-done
	for _, id := range []int{1, 2, 3} {
		o, err := c.Node(id).Site.WaitOutcome(tx.ID, waitLong)
		if err != nil || o != engine.OutcomeAborted {
			t.Fatalf("site %d: %v %v (survivors must abort, peer never voted)", id, o, err)
		}
	}
}
