package dtx

import (
	"strings"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/metrics"
)

// TestClusterMetricsPhaseBreakdown drives committed and aborted transactions
// through an instrumented cluster and checks the full observability path:
// phase histograms fill in, resolution counters count every site, and the
// Prometheus export carries the series a kvnode would serve on /metrics.
func TestClusterMetricsPhaseBreakdown(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		t.Run(kind.String(), func(t *testing.T) {
			reg := metrics.NewRegistry()
			c, err := NewCluster(3, Options{
				Protocol:    kind,
				Timeout:     50 * time.Millisecond,
				LockTimeout: 50 * time.Millisecond,
				ForgetAfter: 50 * time.Millisecond,
				Registry:    reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Stop)

			const commits = 3
			for i := 0; i < commits; i++ {
				tx, err := c.Begin(1)
				if err != nil {
					t.Fatal(err)
				}
				for site := 1; site <= 3; site++ {
					if err := tx.Put(site, "k", "v"); err != nil {
						t.Fatal(err)
					}
				}
				if o, err := tx.Commit(waitLong); err != nil || o != engine.OutcomeCommitted {
					t.Fatalf("commit = %v, %v", o, err)
				}
			}

			m := engine.NewMetrics(reg, kind)
			phases := m.Phases()
			if got := phases["votes"].Count(); got != commits {
				t.Fatalf("votes count = %d, want %d", got, commits)
			}
			if phases["log_force"].Count() == 0 {
				t.Fatal("no log-force samples")
			}
			if kind == engine.ThreePhase {
				if got := phases["acks"].Count(); got != commits {
					t.Fatalf("acks count = %d, want %d", got, commits)
				}
			} else if got := phases["acks"].Count(); got != 0 {
				t.Fatalf("2PC recorded %d ack samples", got)
			}

			// Settle closes when every participant's DEC-ACK is in.
			deadline := time.Now().Add(waitLong)
			for phases["settle"].Count() < commits {
				if time.Now().After(deadline) {
					t.Fatalf("settle count = %d, want %d", phases["settle"].Count(), commits)
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Every site resolves each transaction locally.
			committed := reg.Counter("engine_resolutions_total",
				"protocol", kind.String(), "outcome", "committed")
			if got := committed.Value(); got != 3*commits {
				t.Fatalf("committed resolutions = %d, want %d", got, 3*commits)
			}

			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			out := b.String()
			for _, want := range []string{
				`engine_phase_latency_seconds{phase="votes",protocol="` + kind.String() + `",quantile="0.5"}`,
				`engine_commit_latency_seconds_count{outcome="committed",protocol="` + kind.String() + `"} ` ,
				`engine_transactions_tracked{site="1"}`,
				`engine_timers_active{site="2"}`,
			} {
				if !strings.Contains(out, strings.TrimSpace(want)) {
					t.Errorf("export missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestClusterMetricsAbortOutcome checks the aborted-side series.
func TestClusterMetricsAbortOutcome(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := NewCluster(2, Options{
		Protocol:    engine.ThreePhase,
		Timeout:     50 * time.Millisecond,
		LockTimeout: 50 * time.Millisecond,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	// A transaction nobody staged: every store's Prepare fails, the cohort
	// votes NO, and the protocol aborts.
	if err := c.Node(1).Site.Begin("never-staged", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if o, err := c.Node(1).Site.WaitOutcome("never-staged", waitLong); err != nil || o != engine.OutcomeAborted {
		t.Fatalf("outcome = %v, %v, want aborted", o, err)
	}
	aborted := reg.Counter("engine_resolutions_total", "protocol", "3PC", "outcome", "aborted")
	deadline := time.Now().Add(waitLong)
	for aborted.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no aborted resolutions recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
