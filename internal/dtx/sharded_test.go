package dtx

import (
	"fmt"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/shard"
)

// keyAt finds a key the cluster's shard map places at the wanted site.
func keyAt(t *testing.T, r *shard.Router, owner int, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if r.Site(k) == owner {
			return k
		}
	}
	t.Fatalf("no key owned by site %d", owner)
	return ""
}

// TestKeyedSingleShardParticipantSetOne is the sharding acceptance test: a
// keyed transaction whose keys all live in one shard commits with a
// participant set of exactly one site; the other sites never hear of it.
func TestKeyedSingleShardParticipantSetOne(t *testing.T) {
	c, err := NewCluster(4, Options{Protocol: engine.ThreePhase})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	owner := 3
	tx := c.BeginKeyed()
	sh := c.Router().Map.ShardOf(keyAt(t, c.Router(), owner, "pin"))
	wrote := 0
	for i := 0; wrote < 3; i++ {
		k := fmt.Sprintf("pin-%d", i)
		if c.Router().Map.ShardOf(k).ID != sh.ID {
			continue // same shard, not merely same owner site
		}
		if err := tx.PutK(k, "v"); err != nil {
			t.Fatal(err)
		}
		wrote++
	}
	if got := tx.Participants(); len(got) != 1 || got[0] != owner {
		t.Fatalf("touched sites = %v, want [%d]", got, owner)
	}
	o, err := tx.Commit(5 * time.Second)
	if err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("commit = %v, %v", o, err)
	}
	if got := c.Node(owner).Site.Participants(tx.ID); len(got) != 1 || got[0] != owner {
		t.Fatalf("engine participant set = %v, want [%d]", got, owner)
	}
	for _, id := range c.IDs() {
		if id == owner {
			continue
		}
		if got := c.Node(id).Site.Participants(tx.ID); got != nil {
			t.Fatalf("bystander site %d joined the commit: %v", id, got)
		}
		if _, err := c.Node(id).Site.Outcome(tx.ID); err == nil {
			t.Fatalf("bystander site %d knows the transaction", id)
		}
	}
}

// TestKeyedCrossShardCohortIsTouchedSet: a keyed transaction spanning two
// owner sites commits across exactly those two sites.
func TestKeyedCrossShardCohortIsTouchedSet(t *testing.T) {
	c, err := NewCluster(4, Options{Protocol: engine.ThreePhase})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	k2 := keyAt(t, c.Router(), 2, "a")
	k4 := keyAt(t, c.Router(), 4, "b")
	tx := c.BeginKeyed()
	if err := tx.PutK(k2, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.PutK(k4, "y"); err != nil {
		t.Fatal(err)
	}
	o, err := tx.Commit(5 * time.Second)
	if err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("commit = %v, %v", o, err)
	}
	got := c.Node(2).Site.Participants(tx.ID)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("participants = %v, want [2 4]", got)
	}
	for _, id := range []int{1, 3} {
		if got := c.Node(id).Site.Participants(tx.ID); got != nil {
			t.Fatalf("bystander site %d joined the commit: %v", id, got)
		}
	}
	if v, _ := c.Node(2).Store.Read(k2); v != "x" {
		t.Fatalf("k2 = %q", v)
	}
	if v, _ := c.Node(4).Store.Read(k4); v != "y" {
		t.Fatalf("k4 = %q", v)
	}
}

// TestKeyedReadsRouteToOwner: a committed keyed write is read back through
// the keyed API, and an untouched keyed transaction commits trivially.
func TestKeyedReadsRouteToOwner(t *testing.T) {
	c, err := NewCluster(3, Options{Protocol: engine.TwoPhase})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	tx := c.BeginKeyed()
	if err := tx.PutK("color", "blue"); err != nil {
		t.Fatal(err)
	}
	if o, err := tx.Commit(5 * time.Second); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("commit = %v, %v", o, err)
	}

	rd := c.BeginKeyed()
	v, err := rd.GetK("color")
	if err != nil || v != "blue" {
		t.Fatalf("GetK = %q, %v", v, err)
	}
	if err := rd.DelK("color"); err != nil {
		t.Fatal(err)
	}
	if o, err := rd.Commit(5 * time.Second); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("commit = %v, %v", o, err)
	}
	owner := c.Router().Site("color")
	if _, ok := c.Node(owner).Store.Read("color"); ok {
		t.Fatal("deleted key still present at owner")
	}

	empty := c.BeginKeyed()
	if o, err := empty.Commit(time.Second); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("empty keyed commit = %v, %v", o, err)
	}
}

// TestKeyedRoutingAgreesAcrossClusters: two clusters of the same size place
// every key identically — the shard map is a pure function of the site list.
func TestKeyedRoutingAgreesAcrossClusters(t *testing.T) {
	a, err := NewCluster(5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := NewCluster(5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Router().Site(k) != b.Router().Site(k) {
			t.Fatalf("clusters disagree on owner of %q: %d vs %d", k, a.Router().Site(k), b.Router().Site(k))
		}
	}
}
