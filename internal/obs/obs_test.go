package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nbcommit/internal/metrics"
	"nbcommit/internal/trace"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Help("demo_total", "A demo counter.")
	reg.Counter("demo_total", "site", "1").Add(5)
	rec := trace.NewBounded(4)
	rec.Add(1, "VOTE-REQ", "t1", "")
	rec.Add(2, "YES", "t1", "")
	s := &Server{
		Registry: reg,
		Trace:    rec,
		Health:   func() map[string]any { return map[string]any{"site": 1} },
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body, resp := get(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# HELP demo_total A demo counter.",
		"# TYPE demo_total counter",
		`demo_total{site="1"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := get(t, ts.URL+"/healthz")
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if got["status"] != "ok" {
		t.Fatalf("status = %v", got["status"])
	}
	if got["site"] != float64(1) {
		t.Fatalf("caller field missing: %v", got)
	}
	if _, ok := got["uptime_s"]; !ok {
		t.Fatal("uptime_s missing")
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := get(t, ts.URL+"/debug/trace")
	if !strings.Contains(body, "# 2 events retained, 2 recorded, 0 overwritten") {
		t.Fatalf("trace header wrong:\n%s", body)
	}
	if !strings.Contains(body, "site 1: VOTE-REQ tx=t1") || !strings.Contains(body, "site 2: YES tx=t1") {
		t.Fatalf("trace events missing:\n%s", body)
	}
	// ?n= limits to the most recent K events.
	body, _ = get(t, ts.URL+"/debug/trace?n=1")
	if strings.Contains(body, "VOTE-REQ") || !strings.Contains(body, "YES") {
		t.Fatalf("?n=1 did not keep only the newest event:\n%s", body)
	}
}

func TestTraceEndpointDisabled(t *testing.T) {
	s := &Server{Registry: metrics.NewRegistry()}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := get(t, ts.URL+"/debug/trace")
	if !strings.Contains(body, "tracing disabled") {
		t.Fatalf("nil recorder body:\n%s", body)
	}
}

func TestListenAndServe(t *testing.T) {
	s := &Server{Registry: metrics.NewRegistry()}
	addr, err := ListenAndServe("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	body, resp := get(t, "http://"+addr+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
}
