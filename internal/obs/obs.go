// Package obs serves a node's observability endpoints over HTTP:
//
//	/metrics      Prometheus text exposition of a metrics.Registry
//	/healthz      liveness JSON (status, uptime, caller-supplied fields)
//	/debug/trace  the most recent protocol events from a trace.Recorder
//
// The handler is deliberately dependency-free (net/http only) and safe to
// leave enabled in production: /metrics walks fixed-size instruments and
// /debug/trace reads a bounded ring.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"nbcommit/internal/metrics"
	"nbcommit/internal/trace"
)

// Server assembles a node's observability endpoints.
type Server struct {
	// Registry backs /metrics. Required.
	Registry *metrics.Registry
	// Trace backs /debug/trace; nil serves an empty trace.
	Trace *trace.Recorder
	// Health, when set, contributes extra fields to the /healthz body
	// (site ID, protocol, in-doubt count, ...). Called per request.
	Health func() map[string]any

	start time.Time
}

// Handler returns the HTTP handler serving the three endpoints.
func (s *Server) Handler() http.Handler {
	s.start = time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/debug/trace", s.trace)
	return mux
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Registry != nil {
		_ = s.Registry.WritePrometheus(w)
	}
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	}
	if s.Health != nil {
		for k, v := range s.Health() {
			body[k] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

// trace renders the recorder's retained events, oldest first. ?n=K keeps
// only the last K lines.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Trace == nil {
		fmt.Fprintln(w, "# tracing disabled")
		return
	}
	evs := s.Trace.Events()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(evs) {
			evs = evs[len(evs)-n:]
		}
	}
	fmt.Fprintf(w, "# %d events retained, %d recorded, %d overwritten\n",
		len(evs), s.Trace.Total(), s.Trace.Dropped())
	for _, e := range evs {
		fmt.Fprintf(w, "%s %s\n", e.At.Format(time.RFC3339Nano), e)
	}
}

// ListenAndServe starts the observability listener on addr in a background
// goroutine, returning the bound address (useful with ":0"). The server
// lives until the process exits; errors after startup are ignored, matching
// the endpoint's best-effort role.
func ListenAndServe(addr string, s *Server) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
