// Package paxos holds the protocol-pure half of Paxos Commit (Gray &
// Lamport, "Consensus on Transaction Commit"): ballot arithmetic, per-site
// acceptor state, the leader's phase-1 merge and phase-2 tallies, quorum
// math, and the wire/WAL codecs for the 1a/1b/2a/2b message bodies.
//
// Paxos Commit runs one consensus instance per cohort member's vote: a
// transaction over N participants has N instances, each choosing 'y' (the
// participant prepared) or 'n' (it refused, crashed, or was timed out). The
// transaction commits iff every instance chooses 'y'. The same N sites act
// as the 2F+1 acceptors (N = 2F+1), so the decision survives any F site
// failures and a dead coordinator costs a leader change, not a termination
// protocol.
//
// Ballot 0 is special (the phase-1a-skip optimization of §5): every
// acceptor is born having promised ballot 0, and instance i's ballot-0
// proposer is participant i itself. The fault-free path is therefore two
// message delays: the participant proposes its own vote straight to the
// acceptors (2a), and the acceptors' 2b messages land at the leader — no
// phase 1 at all. Higher ballots belong to recovery leaders and carry the
// proposing site's cohort index in the low bits, so two concurrent leaders
// can never collide on a ballot number.
//
// The engine half — message handling on the sharded event loops, WAL
// forcing, leader election and timeout handling — lives in
// internal/engine/paxos.go.
package paxos

import (
	"encoding/binary"
	"errors"
)

// MaxInstances bounds the per-transaction instance count; it matches the
// engine's cohort limit so instance bitsets fit in one word.
const MaxInstances = 64

// Ballot is a Paxos ballot number: the round in the high bits and the
// proposing leader's cohort index in the low 6 bits. Ballot 0 is the fast
// ballot implicitly promised by every acceptor, owned per-instance by the
// instance's own participant.
type Ballot uint64

const leaderBits = 6 // log2(MaxInstances)

// Leader returns the cohort index of the ballot's proposer. Meaningless for
// ballot 0, whose proposer is per-instance.
func (b Ballot) Leader() int { return int(b & (1<<leaderBits - 1)) }

// Round returns the escalation round (0 for the fast ballot).
func (b Ballot) Round() uint64 { return uint64(b) >> leaderBits }

// Next returns the smallest ballot owned by leader that is strictly greater
// than after — the ballot a recovery leader picks when it has observed
// after as the highest ballot in the system.
func Next(after Ballot, leader int) Ballot {
	return Ballot((after.Round()+1)<<leaderBits) | Ballot(leader&(1<<leaderBits-1))
}

// Values an instance can choose.
const (
	ValNone  byte = 0   // no value accepted yet
	ValYes   byte = 'y' // the participant prepared
	ValAbort byte = 'n' // refused, crashed before voting, or timed out
)

// Accepted is one acceptor's accepted (ballot, value) pair for one instance.
type Accepted struct {
	Bal Ballot
	Val byte
}

// Acceptor is one site's durable consensus state for one transaction: a
// single promise covering all instances (promising more instances than a
// leader asked about only restricts, never breaks, safety — and it keeps
// the promise a single WAL record) plus the accepted vector. The engine
// forces a WAL record before every mutation that answers a peer.
type Acceptor struct {
	Promised Ballot
	Accepts  []Accepted // indexed by cohort instance
}

// NewAcceptor sizes acceptor state for an n-instance transaction.
func NewAcceptor(n int) *Acceptor {
	return &Acceptor{Accepts: make([]Accepted, n)}
}

// Promise adopts ballot b if it is at least as high as the current promise,
// reporting whether the promise was given.
func (a *Acceptor) Promise(b Ballot) bool {
	if b < a.Promised {
		return false
	}
	a.Promised = b
	return true
}

// Accept records value val for instance inst at ballot b if the acceptor's
// promise allows it, reporting whether the acceptance happened.
func (a *Acceptor) Accept(b Ballot, inst int, val byte) bool {
	if b < a.Promised || inst < 0 || inst >= len(a.Accepts) {
		return false
	}
	a.Promised = b
	if b >= a.Accepts[inst].Bal {
		a.Accepts[inst] = Accepted{Bal: b, Val: val}
	}
	return true
}

// Tally counts one instance's 2b messages for the leader. Within one ballot
// an instance has a unique proposer, so all 2b messages for (ballot,
// instance) carry the same value; a higher-ballot 2b resets the count.
type Tally struct {
	Bal   Ballot
	Val   byte
	Votes uint64 // bitset of acceptor cohort indexes
}

// Add folds one acceptor's 2b into the tally and returns the count of
// distinct acceptors at the tally's current ballot.
func (t *Tally) Add(b Ballot, val byte, acceptor int) int {
	if acceptor < 0 || acceptor >= MaxInstances {
		return t.Count()
	}
	if b > t.Bal || (t.Val == ValNone && t.Votes == 0) {
		t.Bal, t.Val, t.Votes = b, val, 0
	}
	if b == t.Bal && val == t.Val {
		t.Votes |= 1 << uint(acceptor)
	}
	return t.Count()
}

// Count returns the number of acceptors tallied at the current ballot.
func (t *Tally) Count() int {
	n := 0
	for v := t.Votes; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Majority returns the quorum size for n acceptors.
func Majority(n int) int { return n/2 + 1 }

// Tolerance returns F, the number of acceptor failures n = 2F+1 acceptors
// survive.
func Tolerance(n int) int { return (n - 1) / 2 }

// Merge folds one acceptor's 1b accepted vector into the leader's per-
// instance view, keeping the highest-ballot acceptance per instance. This
// is the phase-2 value rule: an instance with any surviving acceptance must
// be re-proposed with that value; a free instance may be proposed ValAbort.
func Merge(into []Accepted, from []Accepted) {
	for i := range from {
		if i >= len(into) {
			return
		}
		if from[i].Val != ValNone && (into[i].Val == ValNone || from[i].Bal > into[i].Bal) {
			into[i] = from[i]
		}
	}
}

var errBadBody = errors.New("paxos: malformed message body")

// --- codecs ---
//
// All bodies are flat varint layouts, engine-style: no reflection, no
// per-field allocations beyond the one output buffer. Cohort metadata
// (opaque to this package) rides at the tail of 1a/2a bodies so a site that
// has never heard of the transaction can still act as its acceptor.

// EncodeP1a encodes a phase-1a body: ballot + opaque cohort metadata.
func EncodeP1a(b Ballot, meta []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(meta))
	buf = binary.AppendUvarint(buf, uint64(b))
	return append(buf, meta...)
}

// DecodeP1a decodes a phase-1a body, returning the ballot and the trailing
// metadata bytes.
func DecodeP1a(p []byte) (Ballot, []byte, error) {
	b, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errBadBody
	}
	return Ballot(b), p[n:], nil
}

// EncodeP1b encodes a phase-1b body: the promised ballot plus the
// acceptor's full accepted vector.
func EncodeP1b(promised Ballot, accepts []Accepted) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(accepts)*(binary.MaxVarintLen64+1))
	buf = binary.AppendUvarint(buf, uint64(promised))
	buf = binary.AppendUvarint(buf, uint64(len(accepts)))
	for _, a := range accepts {
		buf = binary.AppendUvarint(buf, uint64(a.Bal))
		buf = append(buf, a.Val)
	}
	return buf
}

// DecodeP1b decodes a phase-1b body.
func DecodeP1b(p []byte) (Ballot, []Accepted, error) {
	promised, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errBadBody
	}
	off := n
	cnt, n := binary.Uvarint(p[off:])
	if n <= 0 || cnt > MaxInstances {
		return 0, nil, errBadBody
	}
	off += n
	accepts := make([]Accepted, cnt)
	for i := range accepts {
		b, n := binary.Uvarint(p[off:])
		if n <= 0 || off+n >= len(p) && i < len(accepts) && off+n+1 > len(p) {
			return 0, nil, errBadBody
		}
		off += n
		if off >= len(p) {
			return 0, nil, errBadBody
		}
		accepts[i] = Accepted{Bal: Ballot(b), Val: p[off]}
		off++
	}
	return Ballot(promised), accepts, nil
}

// EncodeP2a encodes a phase-2a body (and the RecPaxosAccept WAL payload):
// ballot, instance, value, trailing cohort metadata.
func EncodeP2a(b Ballot, inst int, val byte, meta []byte) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+1+len(meta))
	buf = binary.AppendUvarint(buf, uint64(b))
	buf = binary.AppendUvarint(buf, uint64(inst))
	buf = append(buf, val)
	return append(buf, meta...)
}

// DecodeP2a decodes a phase-2a body, returning ballot, instance, value and
// the trailing metadata bytes.
func DecodeP2a(p []byte) (Ballot, int, byte, []byte, error) {
	b, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, 0, nil, errBadBody
	}
	off := n
	inst, n := binary.Uvarint(p[off:])
	if n <= 0 || inst >= MaxInstances {
		return 0, 0, 0, nil, errBadBody
	}
	off += n
	if off >= len(p) {
		return 0, 0, 0, nil, errBadBody
	}
	return Ballot(b), int(inst), p[off], p[off+1:], nil
}

// EncodeP2b encodes a phase-2b body: ballot, instance, value. A nack (the
// acceptor's promise outranks the 2a) carries the acceptor's promised
// ballot and ValNone, telling the proposer what it must outbid.
func EncodeP2b(b Ballot, inst int, val byte) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+1)
	buf = binary.AppendUvarint(buf, uint64(b))
	buf = binary.AppendUvarint(buf, uint64(inst))
	return append(buf, val)
}

// DecodeP2b decodes a phase-2b body.
func DecodeP2b(p []byte) (Ballot, int, byte, error) {
	b, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, 0, errBadBody
	}
	off := n
	inst, n := binary.Uvarint(p[off:])
	if n <= 0 || inst >= MaxInstances {
		return 0, 0, 0, errBadBody
	}
	off += n
	if off != len(p)-1 {
		return 0, 0, 0, errBadBody
	}
	return Ballot(b), int(inst), p[off], nil
}

// EncodePromise encodes the RecPaxosPromise WAL payload: the promised
// ballot plus cohort metadata (so a pure acceptor can rebuild the cohort
// after a crash).
func EncodePromise(b Ballot, meta []byte) []byte { return EncodeP1a(b, meta) }

// DecodePromise decodes a RecPaxosPromise payload.
func DecodePromise(p []byte) (Ballot, []byte, error) { return DecodeP1a(p) }
