package paxos

import (
	"bytes"
	"testing"
)

func TestBallotArithmetic(t *testing.T) {
	if b := Ballot(0); b.Round() != 0 {
		t.Fatalf("ballot 0 round = %d", b.Round())
	}
	b := Next(0, 3)
	if b.Round() != 1 || b.Leader() != 3 {
		t.Fatalf("Next(0, 3) = round %d leader %d", b.Round(), b.Leader())
	}
	// Escalation from an observed ballot must strictly outrank it, whatever
	// the new leader's index.
	for _, leader := range []int{0, 1, 5, 63} {
		hi := Next(b, leader)
		if hi <= b {
			t.Fatalf("Next(%d, %d) = %d does not outrank", b, leader, hi)
		}
		if hi.Leader() != leader {
			t.Fatalf("Next leader = %d, want %d", hi.Leader(), leader)
		}
	}
	// Two leaders escalating from the same observation never collide.
	if Next(b, 1) == Next(b, 2) {
		t.Fatal("distinct leaders produced the same ballot")
	}
}

func TestAcceptorPromiseGuard(t *testing.T) {
	a := NewAcceptor(3)
	if !a.Promise(Next(0, 1)) {
		t.Fatal("fresh acceptor refused a higher promise")
	}
	high := a.Promised
	if a.Promise(0) {
		t.Fatal("acceptor demoted its promise to ballot 0")
	}
	if a.Promised != high {
		t.Fatalf("promise moved to %d after a refused demotion", a.Promised)
	}
	// Re-promising the same ballot is idempotent (duplicate 1a).
	if !a.Promise(high) {
		t.Fatal("acceptor refused its own promised ballot")
	}
}

func TestAcceptorAcceptGuard(t *testing.T) {
	a := NewAcceptor(3)
	// Ballot 0 is implicitly promised: the fast path needs no phase 1.
	if !a.Accept(0, 1, ValYes) {
		t.Fatal("fresh acceptor refused a ballot-0 accept")
	}
	if got := a.Accepts[1]; got.Val != ValYes || got.Bal != 0 {
		t.Fatalf("instance 1 = %+v", got)
	}
	// A higher promise blocks ballot-0 accepts afterwards...
	b1 := Next(0, 2)
	a.Promise(b1)
	if a.Accept(0, 2, ValYes) {
		t.Fatal("acceptor accepted below its promise")
	}
	if a.Accepts[2].Val != ValNone {
		t.Fatalf("refused accept still recorded: %+v", a.Accepts[2])
	}
	// ...but the promised ballot itself may overwrite an older acceptance.
	if !a.Accept(b1, 1, ValAbort) {
		t.Fatal("acceptor refused an accept at its promised ballot")
	}
	if got := a.Accepts[1]; got.Val != ValAbort || got.Bal != b1 {
		t.Fatalf("instance 1 after re-accept = %+v", got)
	}
	// Out-of-range instances are rejected, not a panic.
	if a.Accept(b1, 99, ValYes) || a.Accept(b1, -1, ValYes) {
		t.Fatal("acceptor accepted an out-of-range instance")
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	if n := tl.Add(0, ValYes, 0); n != 1 {
		t.Fatalf("first 2b counted %d", n)
	}
	// Duplicate 2b from the same acceptor must not double-count.
	if n := tl.Add(0, ValYes, 0); n != 1 {
		t.Fatalf("duplicate 2b counted %d", n)
	}
	if n := tl.Add(0, ValYes, 2); n != 2 {
		t.Fatalf("second acceptor counted %d", n)
	}
	// A higher-ballot 2b resets the tally to the new ballot's value.
	hi := Next(0, 1)
	if n := tl.Add(hi, ValAbort, 1); n != 1 {
		t.Fatalf("higher-ballot 2b tallied %d", n)
	}
	if tl.Bal != hi || tl.Val != ValAbort {
		t.Fatalf("tally did not adopt the higher ballot: %+v", tl)
	}
	// Stale low-ballot 2bs are ignored after the reset.
	if n := tl.Add(0, ValYes, 3); n != 1 {
		t.Fatalf("stale 2b tallied %d", n)
	}
}

func TestQuorumMath(t *testing.T) {
	for _, c := range []struct{ n, maj, f int }{
		{1, 1, 0}, {3, 2, 1}, {5, 3, 2}, {7, 4, 3}, {4, 3, 1},
	} {
		if m := Majority(c.n); m != c.maj {
			t.Fatalf("Majority(%d) = %d, want %d", c.n, m, c.maj)
		}
		if f := Tolerance(c.n); f != c.f {
			t.Fatalf("Tolerance(%d) = %d, want %d", c.n, f, c.f)
		}
	}
}

func TestMergeKeepsHighestBallot(t *testing.T) {
	b1, b2 := Next(0, 1), Next(Next(0, 1), 2)
	into := []Accepted{{}, {Bal: b1, Val: ValYes}, {Bal: b2, Val: ValYes}}
	from := []Accepted{{Bal: 0, Val: ValYes}, {Bal: b2, Val: ValAbort}, {Bal: b1, Val: ValAbort}}
	Merge(into, from)
	if into[0].Val != ValYes || into[0].Bal != 0 {
		t.Fatalf("free instance did not adopt the acceptance: %+v", into[0])
	}
	if into[1].Val != ValAbort || into[1].Bal != b2 {
		t.Fatalf("higher-ballot acceptance lost: %+v", into[1])
	}
	if into[2].Val != ValYes || into[2].Bal != b2 {
		t.Fatalf("lower-ballot acceptance overwrote: %+v", into[2])
	}
	// A longer source vector must not write past the destination.
	Merge(into[:1], from)
}

func TestCodecRoundTrips(t *testing.T) {
	meta := []byte("cohort-metadata")
	bal := Next(Next(0, 3), 5)

	b, m, err := DecodeP1a(EncodeP1a(bal, meta))
	if err != nil || b != bal || !bytes.Equal(m, meta) {
		t.Fatalf("1a round trip: %v %v %q", b, err, m)
	}

	accepts := []Accepted{{Bal: 0, Val: ValYes}, {}, {Bal: bal, Val: ValAbort}}
	pb, acc, err := DecodeP1b(EncodeP1b(bal, accepts))
	if err != nil || pb != bal || len(acc) != len(accepts) {
		t.Fatalf("1b round trip: %v %v %v", pb, acc, err)
	}
	for i := range accepts {
		if acc[i] != accepts[i] {
			t.Fatalf("1b instance %d: %+v vs %+v", i, acc[i], accepts[i])
		}
	}

	b, inst, val, m, err := DecodeP2a(EncodeP2a(bal, 2, ValYes, meta))
	if err != nil || b != bal || inst != 2 || val != ValYes || !bytes.Equal(m, meta) {
		t.Fatalf("2a round trip: %v %d %c %q %v", b, inst, val, m, err)
	}

	b, inst, val, err = DecodeP2b(EncodeP2b(bal, 7, ValAbort))
	if err != nil || b != bal || inst != 7 || val != ValAbort {
		t.Fatalf("2b round trip: %v %d %c %v", b, inst, val, err)
	}

	pb, m, err = DecodePromise(EncodePromise(bal, meta))
	if err != nil || pb != bal || !bytes.Equal(m, meta) {
		t.Fatalf("promise round trip: %v %q %v", pb, m, err)
	}
}

func TestCodecsRejectMalformed(t *testing.T) {
	if _, _, err := DecodeP1a(nil); err == nil {
		t.Fatal("1a decoded an empty body")
	}
	if _, _, err := DecodeP1b([]byte{1}); err == nil {
		t.Fatal("1b decoded a truncated body")
	}
	// A 1b claiming more instances than MaxInstances is an attack or
	// corruption, never legitimate.
	huge := EncodeP1b(0, make([]Accepted, 2))
	huge[1] = 200
	if _, _, err := DecodeP1b(huge); err == nil {
		t.Fatal("1b accepted an oversized instance count")
	}
	if _, _, _, _, err := DecodeP2a([]byte{0}); err == nil {
		t.Fatal("2a decoded a truncated body")
	}
	if _, _, _, err := DecodeP2b([]byte{0, 1}); err == nil {
		t.Fatal("2b decoded a body with no value byte")
	}
	if _, _, _, err := DecodeP2b(append(EncodeP2b(0, 1, ValYes), 'x')); err == nil {
		t.Fatal("2b accepted trailing garbage")
	}
}
