package engine

import (
	"fmt"

	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Message kinds of the decentralized paradigm: every site runs the same
// protocol and exchanges full rounds with every other site.
const (
	KindDXact    = "D-XACT" // transaction distribution (any site initiates)
	KindDYes     = "D-YES"  // vote broadcast
	KindDNo      = "D-NO"
	KindDPrepare = "D-PREPARE" // prepare round broadcast (3PC)
)

// BeginPeer starts a transaction under the decentralized protocol: this
// site distributes it to the whole cohort (including itself) and every site
// votes and exchanges rounds symmetrically — there is no coordinator, so
// TxMeta.Coordinator is zero and any site's failure triggers the
// termination protocol at the survivors.
func (s *Site) BeginPeer(txid string, participants []int) error {
	if s.kind == PaxosCommit {
		// Paxos Commit is inherently coordinator-replicated; the symmetric
		// peer rounds of the decentralized paradigm do not apply to it.
		return fmt.Errorf("engine: site %d: Paxos Commit has no decentralized variant", s.id)
	}
	cohort := normalizeCohort(s.id, participants)
	if len(cohort) > maxCohort {
		return fmt.Errorf("engine: cohort of %d exceeds the %d-site limit", len(cohort), maxCohort)
	}
	meta := TxMeta{Coordinator: 0, Participants: cohort}

	sh := s.shardFor(txid)
	sh.mu.Lock()
	if s.stopped.Load() {
		sh.mu.Unlock()
		return ErrStopped
	}
	if _, ok := sh.txns[txid]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("engine: site %d already has transaction %s", s.id, txid)
	}
	body := encodeMeta(meta)
	for _, p := range cohort {
		if p != s.id {
			sh.send(p, KindDXact, txid, body)
		}
	}
	sh.mu.Unlock()

	// Deliver our own copy directly.
	sh.onDXact(transport.Message{From: s.id, To: s.id, Kind: KindDXact, TxID: txid, Body: body})
	return nil
}

// onDXact receives the transaction at a peer and casts the local vote.
func (s *shard) onDXact(m transport.Message) {
	meta, err := decodeMeta(m.Body)
	if err != nil {
		return
	}
	s.mu.Lock()
	t := s.tx(m.TxID)
	if t.phase != phaseInit || t.voting || t.resolved() || t.fenced {
		s.mu.Unlock()
		return
	}
	t.meta = meta
	t.peer = true
	t.voting = true
	if t.dvotes == nil {
		t.dvotes = map[int]byte{}
	}
	s.mu.Unlock()

	s.castVote(m.TxID, false, true)
}

// onPeerVoteResult completes the peer's local vote and broadcasts it.
func (s *shard) onPeerVoteResult(v voteResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[v.txid]
	if !ok || t.resolved() || t.phase != phaseInit {
		return
	}
	if v.err != nil {
		// Unilateral abort: broadcast the NO and abort immediately — in the
		// decentralized protocol the site moves q -> a without waiting.
		s.mustLog(wal.Record{Type: wal.RecVoteNo, TxID: t.id})
		for _, p := range t.meta.Participants {
			if p != s.id {
				s.send(p, KindDNo, t.id, nil)
			}
		}
		s.resolve(t, OutcomeAborted)
		return
	}
	t.redo = v.redo
	s.mustLog(wal.Record{Type: wal.RecVoteYes, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
	t.phase = phaseWait
	t.dvotes[s.id] = 'y'
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindDYes, t.id, nil)
		}
	}
	s.armTimer(t, s.protoTimeout())
	s.maybePeerVotesDone(t)
}

// onDVote records a peer's vote. A site that has already resolved the
// transaction (e.g. it voted NO and aborted, and its NO was lost) answers a
// retransmitted vote with the outcome instead.
func (s *shard) onDVote(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok {
		return
	}
	if t.resolved() {
		s.sendOutcome(m.From, t)
		return
	}
	if t.recovering {
		// In doubt after a crash: we cannot rejoin the vote round, but the
		// sender must learn that — it will exclude us and run the termination
		// protocol among the operational sites instead of retransmitting
		// forever.
		s.send(m.From, KindStatusRes, t.id, []byte{statusRecovering})
		return
	}
	if t.fenced {
		return // under backup control: only the termination protocol moves us
	}
	if t.dvotes == nil {
		t.dvotes = map[int]byte{}
	}
	if m.Kind == KindDYes {
		t.dvotes[m.From] = 'y'
	} else {
		t.dvotes[m.From] = 'n'
	}
	s.maybePeerVotesDone(t)
}

// maybePeerVotesDone advances once a full vote round is in. A missing vote
// from a crashed peer is NOT waived — its vote may have reached other sites
// that already advanced, so only the termination protocol may resolve the
// gap. Requires s.mu held.
func (s *shard) maybePeerVotesDone(t *txState) {
	if t.phase != phaseWait || !t.peer {
		return
	}
	anyNo := false
	for _, p := range t.meta.Participants {
		v, ok := t.dvotes[p]
		if !ok {
			return
		}
		if v == 'n' {
			anyNo = true
		}
	}
	if anyNo {
		s.resolve(t, OutcomeAborted)
		return
	}
	if s.kind == TwoPhase {
		s.resolve(t, OutcomeCommitted)
		return
	}
	// 3PC: enter the buffer state and run the prepare interchange.
	s.mustLog(wal.Record{Type: wal.RecPrepared, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
	t.phase = phasePrepared
	if t.dprepares == nil {
		t.dprepares = map[int]bool{}
	}
	t.dprepares[s.id] = true
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindDPrepare, t.id, nil)
		}
	}
	s.armTimer(t, s.protoTimeout())
	s.maybePeerPreparesDone(t)
}

// onDPrepare records a peer's prepare broadcast, answering with the outcome
// when already resolved.
func (s *shard) onDPrepare(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok {
		return
	}
	if t.resolved() {
		s.sendOutcome(m.From, t)
		return
	}
	if t.recovering {
		s.send(m.From, KindStatusRes, t.id, []byte{statusRecovering})
		return
	}
	if t.fenced {
		return // under backup control: only the termination protocol moves us
	}
	if t.dprepares == nil {
		t.dprepares = map[int]bool{}
	}
	t.dprepares[m.From] = true
	s.maybePeerPreparesDone(t)
}

// maybePeerPreparesDone commits once every peer has prepared. Requires s.mu
// held.
func (s *shard) maybePeerPreparesDone(t *txState) {
	if t.phase != phasePrepared || !t.peer {
		return
	}
	for _, p := range t.meta.Participants {
		if !t.dprepares[p] {
			return
		}
	}
	s.resolve(t, OutcomeCommitted)
}

// peerTimeout drives a stuck decentralized transaction: retransmit to
// laggards while the whole cohort is operational, run the termination
// protocol once somebody has crashed. Requires s.mu held.
func (s *shard) peerTimeout(t *txState) {
	if t.resolved() || (t.phase != phaseWait && t.phase != phasePrepared) {
		return
	}
	if t.recovering {
		s.retryRecovery(t)
		return
	}
	if t.termActive || t.fenced {
		// Termination is under way (we are the backup, or fenced by one):
		// a crashed cohort member recovering must not drop us back into the
		// normal retransmission path — fenced sites ignore that traffic, so
		// only re-driving the termination protocol can still resolve.
		s.startTermination(t)
		return
	}
	allAlive := true
	for _, p := range t.meta.Participants {
		if !s.det.Alive(p) {
			allAlive = false
			break
		}
	}
	if allAlive && !t.blocked {
		// Slow or lossy peers: rebroadcast our own round messages — a peer
		// may have missed them even if we already hold its reply, so resend
		// unconditionally (receipt is idempotent). A peer we hold no vote
		// from may never have received the transaction at all (lost D-XACT),
		// and votes alone cannot tell it what to vote on — resend the
		// distribution too. Any site that voted holds the full meta, so any
		// site can do this, not just the initiator.
		for _, p := range t.meta.Participants {
			if p == s.id {
				continue
			}
			if _, voted := t.dvotes[p]; !voted {
				s.send(p, KindDXact, t.id, encodeMeta(t.meta))
			}
			s.send(p, KindDYes, t.id, nil)
			if t.phase == phasePrepared {
				s.send(p, KindDPrepare, t.id, nil)
			}
		}
		s.armTimer(t, s.protoTimeout())
		return
	}
	if s.kind == TwoPhase && t.queried {
		s.evaluateCooperative(t, true)
		if t.resolved() {
			return
		}
	}
	s.startTermination(t)
}
