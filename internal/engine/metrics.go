package engine

import (
	"fmt"

	"nbcommit/internal/metrics"
)

// Metrics instruments a site's commit path into a metrics.Registry:
//
//   - engine_phase_latency_seconds{protocol,phase} — the coordinator's view
//     of each protocol phase: "votes" (Begin until the full YES round is
//     in), "acks" (3PC only: vote round until the commit decision, i.e. the
//     paper's extra prepare round — the measurable price of nonblocking),
//     "settle" (decision forced until every participant's DEC-ACK arrived)
//     and "log_force" (a WAL record staged until its batch is durable).
//   - engine_commit_latency_seconds{protocol,outcome} — Begin to decision.
//   - engine_resolutions_total{protocol,outcome} — local resolutions at any
//     role, coordinator or participant.
//   - engine_transactions_tracked{site} / engine_timers_active{site} —
//     transaction-table and armed-timer gauges, registered per Site.
//
// NewMetrics is idempotent for the same registry and protocol kind (the
// registry dedups series), so any number of sites may share one Metrics —
// or one registry — and their samples aggregate.
type Metrics struct {
	reg       *metrics.Registry
	votes     *metrics.Histogram
	acks      *metrics.Histogram
	settle    *metrics.Histogram
	forceWait *metrics.Histogram
	commit    *metrics.Histogram
	abort     *metrics.Histogram
	committed *metrics.Counter
	aborted   *metrics.Counter
	// forced[role][outcome]: WAL records forced per transaction at this
	// site, observed at resolution — the protocol-cost number presumed
	// abort and the read-only optimization exist to shrink. role 0 is
	// participant, 1 coordinator; outcome 0 aborted, 1 committed.
	forced [2][2]*metrics.Histogram
}

// NewMetrics registers (or re-binds) the commit-path series for one
// protocol kind in reg. Pass the result to Config.Metrics.
func NewMetrics(reg *metrics.Registry, kind ProtocolKind) *Metrics {
	p := kind.String()
	reg.Help("engine_phase_latency_seconds", "Commit protocol per-phase latency, coordinator view.")
	reg.Help("engine_commit_latency_seconds", "Begin-to-decision latency at the coordinator.")
	reg.Help("engine_resolutions_total", "Transactions resolved locally, any role.")
	m := &Metrics{
		reg:       reg,
		votes:     reg.Histogram("engine_phase_latency_seconds", "protocol", p, "phase", "votes"),
		acks:      reg.Histogram("engine_phase_latency_seconds", "protocol", p, "phase", "acks"),
		settle:    reg.Histogram("engine_phase_latency_seconds", "protocol", p, "phase", "settle"),
		forceWait: reg.Histogram("engine_phase_latency_seconds", "protocol", p, "phase", "log_force"),
		commit:    reg.Histogram("engine_commit_latency_seconds", "protocol", p, "outcome", "committed"),
		abort:     reg.Histogram("engine_commit_latency_seconds", "protocol", p, "outcome", "aborted"),
		committed: reg.Counter("engine_resolutions_total", "protocol", p, "outcome", "committed"),
		aborted:   reg.Counter("engine_resolutions_total", "protocol", p, "outcome", "aborted"),
	}
	reg.Help("engine_wal_forced_records_per_commit", "WAL records forced per transaction at one site, by role and outcome.")
	for ri, role := range [2]string{"participant", "coordinator"} {
		for oi, outcome := range [2]string{"aborted", "committed"} {
			m.forced[ri][oi] = reg.Histogram("engine_wal_forced_records_per_commit",
				"protocol", p, "role", role, "outcome", outcome)
		}
	}
	return m
}

// ForcedPerCommit returns the forced-records histogram for a role/outcome
// pair, for report generators (cmd/loadgen's forced-record accounting).
func (m *Metrics) ForcedPerCommit(coordinator, committed bool) *metrics.Histogram {
	ri, oi := 0, 0
	if coordinator {
		ri = 1
	}
	if committed {
		oi = 1
	}
	return m.forced[ri][oi]
}

// Phases returns the per-phase latency histograms keyed by phase name, for
// report generators (cmd/loadgen's phase breakdown).
func (m *Metrics) Phases() map[string]*metrics.Histogram {
	return map[string]*metrics.Histogram{
		"votes":     m.votes,
		"acks":      m.acks,
		"settle":    m.settle,
		"log_force": m.forceWait,
	}
}

// registerSiteGauges binds the per-site transaction-table, timer and
// dropped-event series to s. The func-backed series replace their reader on
// re-registration, so a site recovered under the same ID takes its series
// over.
func (m *Metrics) registerSiteGauges(s *Site) {
	if m.reg == nil {
		return
	}
	site := fmt.Sprint(s.id)
	m.reg.Help("engine_transactions_tracked", "Transactions currently in the site's transaction table.")
	m.reg.GaugeFunc("engine_transactions_tracked", func() float64 {
		n := 0
		for _, sh := range s.shards {
			sh.mu.Lock()
			n += len(sh.txns)
			sh.mu.Unlock()
		}
		return float64(n)
	}, "site", site)
	m.reg.Help("engine_timers_active", "Transactions with an armed protocol or GC timer.")
	m.reg.GaugeFunc("engine_timers_active", func() float64 {
		return float64(s.wheel.Len())
	}, "site", site)
	m.reg.Help("engine_events_dropped_total", "Events discarded because the site had stopped.")
	m.reg.CounterFunc("engine_events_dropped_total", func() float64 {
		return float64(s.dropped.Load())
	}, "site", site)
	if vr, ok := s.shards[0].res.(VersionedResource); ok {
		m.reg.Help("engine_resource_commit_ts", "Newest commit timestamp applied at the site's multi-version resource.")
		m.reg.GaugeFunc("engine_resource_commit_ts", func() float64 {
			return float64(vr.CommitTS())
		}, "site", site)
		m.reg.Help("engine_resource_watermark", "Oldest in-doubt prepare timestamp at the site's resource (0 = none in doubt).")
		m.reg.GaugeFunc("engine_resource_watermark", func() float64 {
			return float64(vr.Watermark())
		}, "site", site)
	}
}
