package engine_test

import (
	"testing"

	"nbcommit/internal/engine"
	"nbcommit/internal/wal"
)

// crashpointLog wraps a MemoryLog and fires a callback immediately after a
// chosen record type is appended — simulating a site that crashes between
// forcing a log record and sending the messages of the same transition (the
// paper: "a site may only partially complete a transition before failing").
type crashpointLog struct {
	*wal.MemoryLog
	trigger wal.RecordType
	fired   bool
	onHit   func()
}

func (l *crashpointLog) Append(rec wal.Record) (uint64, error) {
	lsn, err := l.MemoryLog.Append(rec)
	if err == nil && !l.fired && rec.Type == l.trigger {
		l.fired = true
		l.onHit()
	}
	return lsn, err
}

// TestCrashAfterVoteRecordBeforeVoteSend: participant 3 forces its YES vote
// to the log and dies before the vote reaches the coordinator. The
// coordinator times out and aborts; on recovery, site 3 finds the in-doubt
// vote in its log, asks the cohort, and aborts consistently.
func TestCrashAfterVoteRecordBeforeVoteSend(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)

	// Rebuild site 3 with the crash-point log.
	c.sites[3].Stop()
	cpl := &crashpointLog{MemoryLog: c.logs[3], trigger: wal.RecVoteYes}
	cpl.onHit = func() { c.net.Crash(3) } // cut the network before the send
	s, err := engine.New(engine.Config{
		ID:       3,
		Endpoint: c.net.Endpoint(3),
		Log:      cpl,
		Resource: c.res[3],
		Detector: c.det,
		Protocol: engine.ThreePhase,
		Timeout:  testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.sites[3] = s
	s.Start()

	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	// The coordinator never hears site 3's vote and aborts.
	c.expect("t1", engine.OutcomeAborted, 1, 2)

	// Recover site 3: its log says voted-yes with no outcome — in doubt.
	c.sites[3].Stop()
	c.recoverSite(3)
	c.expect("t1", engine.OutcomeAborted, 3)
	if c.res[3].didCommit("t1") {
		t.Fatal("recovered site committed an aborted transaction")
	}
}

// TestCrashAfterCommitRecordBeforeBroadcast (2PC): the coordinator forces
// its COMMIT record and dies before any decision message leaves. The
// participants block; when the coordinator recovers it re-broadcasts the
// logged decision and everyone commits.
func TestCrashAfterCommitRecordBeforeBroadcast(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)

	c.sites[1].Stop()
	cpl := &crashpointLog{MemoryLog: c.logs[1], trigger: wal.RecCommitted}
	cpl.onHit = func() { c.net.Crash(1) }
	s, err := engine.New(engine.Config{
		ID:       1,
		Endpoint: c.net.Endpoint(1),
		Log:      cpl,
		Resource: c.res[1],
		Detector: c.det,
		Protocol: engine.TwoPhase,
		Timeout:  testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.sites[1] = s
	s.Start()

	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	// The commit record hit stable storage, no message escaped: both
	// participants are blocked.
	c.waitBlocked(2, "t1")
	c.waitBlocked(3, "t1")

	// Recovery re-broadcasts the logged decision: COMMIT.
	c.sites[1].Stop()
	c.recoverSite(1)
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)
	for _, id := range []int{2, 3} {
		if !c.res[id].didCommit("t1") {
			t.Fatalf("site %d did not apply the recovered commit", id)
		}
	}
}

// TestCrashAfterPreparedRecord (3PC coordinator): the coordinator logs the
// prepared record and dies before any PREPARE leaves; participants are in w
// and terminate with ABORT. The recovered coordinator is in doubt (its p is
// not a decision) and must adopt the cohort's abort.
func TestCrashAfterPreparedRecord(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)

	c.sites[1].Stop()
	cpl := &crashpointLog{MemoryLog: c.logs[1], trigger: wal.RecPrepared}
	cpl.onHit = func() { c.net.Crash(1) }
	s, err := engine.New(engine.Config{
		ID:       1,
		Endpoint: c.net.Endpoint(1),
		Log:      cpl,
		Resource: c.res[1],
		Detector: c.det,
		Protocol: engine.ThreePhase,
		Timeout:  testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.sites[1] = s
	s.Start()

	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	// Participants in w with a dead coordinator: termination aborts.
	c.expect("t1", engine.OutcomeAborted, 2, 3)

	// The coordinator recovers in doubt from its prepared record and must
	// learn the abort from the cohort.
	c.sites[1].Stop()
	c.recoverSite(1)
	c.expect("t1", engine.OutcomeAborted, 1)
	if c.res[1].didCommit("t1") {
		t.Fatal("recovered coordinator committed an aborted transaction")
	}
}
