package engine_test

import (
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/transport"
)

// TestBackupCrashDuringTermination kills the coordinator after the cohort
// reaches the buffer state, then kills the first backup coordinator right
// after it decides but before its outcome broadcast gets out. The remaining
// operational sites must elect the next backup and still terminate — the
// nonblocking guarantee holds across cascaded coordinator failures as long
// as one site stays up.
func TestBackupCrashDuringTermination(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	// Swallow every COMMIT from site 1 (the coordinator) and site 2 (the
	// backup-to-be): decisions are made but never announced.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.Kind == engine.KindCommit && (m.From == 1 || m.From == 2)
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "p")
	c.waitPhase(3, "t1", "p")
	c.waitPhase(4, "t1", "p")
	c.crash(1)

	// Site 2 becomes backup, runs the backup protocol, and decides commit
	// from its buffer state — but its broadcast is swallowed.
	c.expect("t1", engine.OutcomeCommitted, 2)
	c.crash(2)

	// Sites 3 and 4 must re-terminate under the next backup (site 3).
	c.expect("t1", engine.OutcomeCommitted, 3, 4)

	// Staggered recovery converges everyone on the same outcome.
	c.net.SetDropFunc(nil)
	c.recoverSite(1)
	c.recoverSite(2)
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3, 4)
}

// TestMinorityPartitionStaysSafe partitions the surviving cohort after the
// coordinator crashes: the deterministic election names site 2 the backup on
// BOTH sides of a {2} / {3,4} split (the failure detector still reports 2
// operational — it crashed nobody). The isolated backup cannot collect
// phase-1 acknowledgements, so no side may decide while the partition holds;
// after it heals the backup's retransmissions finish the termination
// protocol with a single consistent outcome.
func TestMinorityPartitionStaysSafe(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	part := func(site int) bool { return site == 2 }
	cross := func(m transport.Message) bool {
		return m.From != 1 && m.To != 1 && part(m.From) != part(m.To)
	}
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.Kind == engine.KindCommit && m.From == 1
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "p")
	c.waitPhase(3, "t1", "p")
	c.waitPhase(4, "t1", "p")

	// Cut {2} off from {3,4} before the coordinator dies, so the whole
	// termination protocol runs under the partition.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return (m.Kind == engine.KindCommit && m.From == 1) || cross(m)
	})
	c.crash(1)

	// Several timeout cycles of termination attempts on both sides: nobody
	// may decide without acknowledgements from all operational sites.
	time.Sleep(6 * testTimeout)
	for _, id := range []int{2, 3, 4} {
		if o, err := c.sites[id].Outcome("t1"); err == nil && o != engine.OutcomePending {
			t.Fatalf("site %d decided %s during the partition", id, o)
		}
	}

	// Heal: the backup's retransmitted phase-1 messages now reach everyone.
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 2, 3, 4)

	c.recoverSite(1)
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3, 4)
}
