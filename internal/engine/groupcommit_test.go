package engine_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// gatedLog is a StagedLog for tests: records of the gated type are held in
// memory — neither written nor acknowledged — until release() (the fsync
// completes) or discard() (the site crashes before the batch reached disk).
// Everything else goes straight through to the inner MemoryLog.
type gatedLog struct {
	mu    sync.Mutex
	inner *wal.MemoryLog
	gates map[wal.RecordType]bool
	held  []heldRec
}

type heldRec struct {
	rec wal.Record
	fn  func(uint64, error)
}

func newGatedLog(gate ...wal.RecordType) *gatedLog {
	g := &gatedLog{inner: wal.NewMemoryLog(), gates: map[wal.RecordType]bool{}}
	for _, t := range gate {
		g.gates[t] = true
	}
	return g
}

func (g *gatedLog) Append(rec wal.Record) (uint64, error) { return g.inner.Append(rec) }
func (g *gatedLog) Records() ([]wal.Record, error)        { return g.inner.Records() }
func (g *gatedLog) Close() error                          { return g.inner.Close() }

func (g *gatedLog) AppendStaged(rec wal.Record, fn func(uint64, error)) {
	g.mu.Lock()
	if g.gates[rec.Type] {
		g.held = append(g.held, heldRec{rec, fn})
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	lsn, err := g.inner.Append(rec)
	fn(lsn, err)
}

// AppendLazy stages a lazy record: gated types sit in the held buffer (the
// staged-but-unflushed window) with no callback, everything else lands
// directly.
func (g *gatedLog) AppendLazy(rec wal.Record) error {
	g.mu.Lock()
	if g.gates[rec.Type] {
		g.held = append(g.held, heldRec{rec, nil})
		g.mu.Unlock()
		return nil
	}
	g.mu.Unlock()
	_, err := g.inner.Append(rec)
	return err
}

// release makes the held batch durable and runs the callbacks, like a slow
// fsync finally completing.
func (g *gatedLog) release() {
	g.mu.Lock()
	held := g.held
	g.held = nil
	g.gates = map[wal.RecordType]bool{}
	g.mu.Unlock()
	for _, h := range held {
		lsn, err := g.inner.Append(h.rec)
		if h.fn != nil {
			h.fn(lsn, err)
		}
	}
}

// discard loses the held batch, like a crash before the fsync completed.
// The callbacks never run, and the gate lifts (the restarted site gets a
// normally-functioning log).
func (g *gatedLog) discard() {
	g.mu.Lock()
	g.held = nil
	g.gates = map[wal.RecordType]bool{}
	g.mu.Unlock()
}

// gatedCluster wires three sites where site 1 runs on a gatedLog and the
// rest on plain MemoryLogs.
type gatedCluster struct {
	t     *testing.T
	net   *transport.Network
	det   *failure.OracleDetector
	kind  engine.ProtocolKind
	gated *gatedLog
	logs  map[int]wal.Log
	res   map[int]*testResource
	sites map[int]*engine.Site
}

func newGatedCluster(t *testing.T, kind engine.ProtocolKind, gate ...wal.RecordType) *gatedCluster {
	t.Helper()
	c := &gatedCluster{
		t:     t,
		net:   transport.NewNetwork(),
		kind:  kind,
		gated: newGatedLog(gate...),
		logs:  map[int]wal.Log{},
		res:   map[int]*testResource{},
		sites: map[int]*engine.Site{},
	}
	c.det = failure.NewOracle(c.net)
	for i := 1; i <= 3; i++ {
		if i == 1 {
			c.logs[i] = c.gated
		} else {
			c.logs[i] = wal.NewMemoryLog()
		}
		c.res[i] = newTestResource()
		s, err := engine.New(engine.Config{
			ID:       i,
			Endpoint: c.net.Endpoint(i),
			Log:      c.logs[i],
			Resource: c.res[i],
			Detector: c.det,
			Protocol: kind,
			Timeout:  testTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.sites[i] = s
		s.Start()
	}
	t.Cleanup(func() {
		for _, s := range c.sites {
			s.Stop()
		}
	})
	return c
}

func (c *gatedCluster) waitPhase(id int, txid, phase string) {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.sites[id].Phase(txid) == phase {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("site %d tx %s: phase %s never reached (now %s)",
		id, txid, phase, c.sites[id].Phase(txid))
}

func (c *gatedCluster) expect(txid string, want engine.Outcome, siteIDs ...int) {
	c.t.Helper()
	for _, id := range siteIDs {
		got, err := c.sites[id].WaitOutcome(txid, 5*time.Second)
		if err != nil {
			c.t.Fatalf("site %d tx %s: %v", id, txid, err)
		}
		if got != want {
			c.t.Fatalf("site %d tx %s: outcome %s, want %s", id, txid, got, want)
		}
	}
}

// TestGroupCommitDefersDecision pins force-before-act at batch granularity:
// while the coordinator's commit record sits in a not-yet-durable batch, no
// COMMIT message escapes, the local resource is untouched, and waiters stay
// asleep — the participants sit in w exactly as if the fsync were still
// running. Releasing the batch lets everything proceed.
func TestGroupCommitDefersDecision(t *testing.T) {
	c := newGatedCluster(t, engine.TwoPhase, wal.RecCommitted)
	if err := c.sites[1].Begin("t1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The coordinator collects the votes and decides, but its RecCommitted
	// is gated: the participants must not learn the outcome.
	c.waitPhase(1, "t1", "c") // volatile state may advance immediately
	time.Sleep(100 * time.Millisecond)
	for _, id := range []int{2, 3} {
		if ph := c.sites[id].Phase("t1"); ph != "w" {
			t.Fatalf("site %d reached %q while the commit record was not durable", id, ph)
		}
	}
	if c.res[1].didCommit("t1") {
		t.Fatal("coordinator resource committed before the record was durable")
	}
	if o, err := c.sites[1].Outcome("t1"); err != nil || o != engine.OutcomeCommitted {
		// Volatile phase is c; Outcome may report it, that is fine — but it
		// must not error.
		if err != nil {
			t.Fatalf("coordinator outcome: %v", err)
		}
		_ = o
	}

	c.gated.release()
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)
	if !c.res[1].didCommit("t1") {
		t.Fatal("coordinator resource did not commit after release")
	}
}

// TestGroupCommitCrashMidBatch3PC loses the coordinator's staged commit
// record mid-batch (crash before the fsync) after the cohort prepared: no
// site may have acted on the non-durable record, so the termination
// protocol decides from p — and the recovered coordinator, whose log ends
// at prepared, resolves the same way. One consistent outcome everywhere.
func TestGroupCommitCrashMidBatch3PC(t *testing.T) {
	c := newGatedCluster(t, engine.ThreePhase, wal.RecCommitted)
	if err := c.sites[1].Begin("t1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "p")
	c.waitPhase(3, "t1", "p")
	c.waitPhase(1, "t1", "c") // decided in volatile state only
	if c.res[1].didCommit("t1") {
		t.Fatal("resource acted on a non-durable commit record")
	}

	// Crash before the batch reaches disk: the staged record is lost.
	c.gated.discard()
	c.net.Crash(1)
	c.sites[1].Stop()

	// Participants are in p; the backup coordinator commits from p.
	c.expect("t1", engine.OutcomeCommitted, 2, 3)

	// The coordinator's log ends at prepared: recovery is in doubt, asks
	// the cohort, and lands on the same outcome.
	c.res[1] = newTestResource()
	s, err := engine.Recover(engine.Config{
		ID:       1,
		Endpoint: c.net.Endpoint(1),
		Log:      c.logs[1],
		Resource: c.res[1],
		Detector: c.det,
		Protocol: engine.ThreePhase,
		Timeout:  testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.sites[1] = s
	c.expect("t1", engine.OutcomeCommitted, 1)
	if !c.res[1].didCommit("t1") {
		t.Fatal("recovered coordinator did not apply the redo image")
	}
}

// TestGroupCommitCrashMidBatchBeforePrepare loses the coordinator's staged
// prepared record: the PREPAREs deferred behind it never escaped, the
// participants are still in w, and termination must abort — again one
// consistent outcome, the opposite one.
func TestGroupCommitCrashMidBatchBeforePrepare(t *testing.T) {
	c := newGatedCluster(t, engine.ThreePhase, wal.RecPrepared)
	if err := c.sites[1].Begin("t1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	c.waitPhase(3, "t1", "w")
	// Give the coordinator time to collect votes and stage its prepared
	// record; the PREPAREs must stay behind the gate.
	time.Sleep(50 * time.Millisecond)
	for _, id := range []int{2, 3} {
		if ph := c.sites[id].Phase("t1"); ph != "w" {
			t.Fatalf("site %d reached %q behind a non-durable prepared record", id, ph)
		}
	}

	c.gated.discard()
	c.net.Crash(1)
	c.sites[1].Stop()
	c.expect("t1", engine.OutcomeAborted, 2, 3)

	c.res[1] = newTestResource()
	s, err := engine.Recover(engine.Config{
		ID:       1,
		Endpoint: c.net.Endpoint(1),
		Log:      c.logs[1],
		Resource: c.res[1],
		Detector: c.det,
		Protocol: engine.ThreePhase,
		Timeout:  testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.sites[1] = s
	c.expect("t1", engine.OutcomeAborted, 1)
	if c.res[1].didCommit("t1") {
		t.Fatal("recovered coordinator committed an aborted transaction")
	}
}

// TestGroupCommitVoteReqWaitsForBeginRecord: with the begin record gated,
// no VOTE-REQ escapes under 3PC — were the coordinator to crash, the cohort
// must never have heard of a transaction its recovered log does not know.
// (Presumed-abort 2PC no longer forces the begin record at all; see
// TestGroupCommitPresumedAbortBeginIsLazy.)
func TestGroupCommitVoteReqWaitsForBeginRecord(t *testing.T) {
	c := newGatedCluster(t, engine.ThreePhase, wal.RecBegin)
	if err := c.sites[1].Begin("t1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for _, id := range []int{2, 3} {
		if ph := c.sites[id].Phase("t1"); ph != "?" {
			t.Fatalf("site %d heard of t1 (phase %q) before the begin record was durable", id, ph)
		}
	}
	c.gated.release()
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)
}

// TestGroupCommitPresumedAbortBeginIsLazy: under presumed-abort 2PC the
// begin record is a lazy append. VOTE-REQs go out without waiting for it,
// and the decision depends only on the forced commit record: the whole
// transaction commits while the begin record is still held in the staging
// buffer.
func TestGroupCommitPresumedAbortBeginIsLazy(t *testing.T) {
	c := newGatedCluster(t, engine.TwoPhase, wal.RecBegin)
	if err := c.sites[1].Begin("t1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)
	recs, err := c.gated.inner.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == wal.RecBegin {
			t.Fatal("begin record reached the log while gated: it was forced, not lazy")
		}
	}
	c.gated.release()
}

// TestEnginePipelinesOverFileLog runs many concurrent transactions over a
// real group-committing file log with sync enabled: all must commit, and
// the per-site logs must show coalesced batches (more than one record per
// fsync), proving the event loop keeps staging while a flush is in flight.
func TestEnginePipelinesOverFileLog(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewNetwork()
	det := failure.NewOracle(net)
	var batchMu sync.Mutex
	maxBatch := 0
	sites := map[int]*engine.Site{}
	for i := 1; i <= 3; i++ {
		l, err := wal.OpenFileLog(filepath.Join(dir, fmt.Sprintf("site%d.wal", i)), wal.FileLogOptions{
			Metrics: wal.Metrics{BatchRecords: func(n int) {
				batchMu.Lock()
				if n > maxBatch {
					maxBatch = n
				}
				batchMu.Unlock()
			}},
			// A small window guarantees coalescing even on hardware where
			// the fsync itself is too fast to build a backlog.
			FlushInterval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		s, err := engine.New(engine.Config{
			ID:       i,
			Endpoint: net.Endpoint(i),
			Log:      l,
			Resource: newTestResource(),
			Detector: det,
			Protocol: engine.ThreePhase,
			Timeout:  500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		s.Start()
		defer s.Stop()
	}

	const clients, perClient = 16, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				txid := fmt.Sprintf("t-%d-%d", cl, i)
				if err := sites[1].Begin(txid, []int{1, 2, 3}); err != nil {
					errs <- err
					return
				}
				o, err := sites[1].WaitOutcome(txid, 10*time.Second)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", txid, err)
					return
				}
				if o != engine.OutcomeCommitted {
					errs <- fmt.Errorf("%s: outcome %s", txid, o)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	batchMu.Lock()
	defer batchMu.Unlock()
	if maxBatch < 2 {
		t.Fatalf("no batch held more than one record (max %d); group commit did not coalesce", maxBatch)
	}
}

// TestAutoForget: with ForgetAfter set, every site garbage-collects settled
// transactions — the coordinator once the whole cohort acknowledged the
// decision, participants after the grace period — and the WAL gains end
// records so recovery (and compaction) skip them. This is the leak fix: a
// long-lived site's transaction table returns to empty.
func TestAutoForget(t *testing.T) {
	net := transport.NewNetwork()
	det := failure.NewOracle(net)
	logs := map[int]*wal.MemoryLog{}
	res := map[int]*testResource{}
	sites := map[int]*engine.Site{}
	for i := 1; i <= 3; i++ {
		logs[i] = wal.NewMemoryLog()
		res[i] = newTestResource()
		s, err := engine.New(engine.Config{
			ID:          i,
			Endpoint:    net.Endpoint(i),
			Log:         logs[i],
			Resource:    res[i],
			Detector:    det,
			Protocol:    engine.TwoPhase,
			Timeout:     testTimeout,
			ForgetAfter: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		s.Start()
		defer s.Stop()
	}

	res[2].refuse("ta") // one aborted, one committed
	for _, txid := range []string{"tc", "ta"} {
		if err := sites[1].Begin(txid, []int{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if o, err := sites[1].WaitOutcome("tc", 5*time.Second); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("tc = %v, %v", o, err)
	}
	if o, err := sites[1].WaitOutcome("ta", 5*time.Second); err != nil || o != engine.OutcomeAborted {
		t.Fatalf("ta = %v, %v", o, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		empty := true
		for i := 1; i <= 3; i++ {
			if len(sites[i].Transactions()) != 0 {
				empty = false
			}
		}
		if empty {
			break
		}
		if time.Now().After(deadline) {
			for i := 1; i <= 3; i++ {
				t.Logf("site %d still tracks %v", i, sites[i].Transactions())
			}
			t.Fatal("transactions were not garbage-collected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every site's WAL must carry end records so recovery skips both
	// transactions entirely.
	for i := 1; i <= 3; i++ {
		recs, err := logs[i].Records()
		if err != nil {
			t.Fatal(err)
		}
		ends := map[string]bool{}
		for _, r := range recs {
			if r.Type == wal.RecEnd {
				ends[r.TxID] = true
			}
		}
		for _, txid := range []string{"tc", "ta"} {
			if !ends[txid] {
				t.Fatalf("site %d has no end record for %s", i, txid)
			}
		}
	}

	// The committed data survived the forgetting.
	for i := 1; i <= 3; i++ {
		if !res[i].didCommit("tc") {
			t.Fatalf("site %d lost the committed effects", i)
		}
	}
}

// TestAutoForgetReachesCrashedParticipant: a participant that was down when
// the decision went out still acknowledges after recovery, letting the
// coordinator forget; the recovered participant then forgets on its own.
func TestAutoForgetReachesCrashedParticipant(t *testing.T) {
	net := transport.NewNetwork()
	det := failure.NewOracle(net)
	logs := map[int]*wal.MemoryLog{}
	res := map[int]*testResource{}
	sites := map[int]*engine.Site{}
	mk := func(i int, recover bool) {
		res[i] = newTestResource()
		cfg := engine.Config{
			ID:          i,
			Endpoint:    net.Endpoint(i),
			Log:         logs[i],
			Resource:    res[i],
			Detector:    det,
			Protocol:    engine.ThreePhase,
			Timeout:     testTimeout,
			ForgetAfter: 25 * time.Millisecond,
		}
		var s *engine.Site
		var err error
		if recover {
			s, err = engine.Recover(cfg)
		} else {
			s, err = engine.New(cfg)
			if err == nil {
				s.Start()
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
	}
	for i := 1; i <= 3; i++ {
		logs[i] = wal.NewMemoryLog()
		mk(i, false)
	}
	defer func() {
		for _, s := range sites {
			s.Stop()
		}
	}()

	// Site 3 votes YES then crashes before hearing the decision.
	net.SetDropFunc(func(m transport.Message) bool {
		return m.To == 3 && m.Kind == engine.KindPrepare
	})
	if err := sites[1].Begin("t1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitSitePhase(t, sites[3], "t1", "w")
	net.Crash(3)
	sites[3].Stop()
	net.SetDropFunc(nil)
	if o, err := sites[1].WaitOutcome("t1", 5*time.Second); err != nil || o != engine.OutcomeCommitted {
		t.Fatalf("t1 = %v, %v", o, err)
	}

	// The coordinator must keep the outcome while site 3 is down (its
	// DEC-ACK is missing), then forget once the recovered site acknowledges.
	time.Sleep(80 * time.Millisecond)
	if got := sites[1].Transactions(); len(got) != 1 {
		t.Fatalf("coordinator forgot t1 with a participant still unacknowledged: %v", got)
	}

	mk(3, true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(sites[1].Transactions()) == 0 && len(sites[3].Transactions()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("not garbage-collected: coordinator %v, recovered %v",
				sites[1].Transactions(), sites[3].Transactions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !res[3].didCommit("t1") {
		t.Fatal("recovered participant did not apply the commit")
	}
}

func waitSitePhase(t *testing.T, s *engine.Site, txid, phase string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Phase(txid) == phase {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("site %d tx %s: phase %s never reached (now %s)", s.ID(), txid, phase, s.Phase(txid))
}
