package engine_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// countingLog wraps a MemoryLog and counts forced appends. Lazy appends ride
// the next force and are deliberately not counted — the whole point of the
// forced-record diet is that they cost no fsync of their own.
type countingLog struct {
	inner  *wal.MemoryLog
	forced atomic.Int64
}

func (l *countingLog) Append(rec wal.Record) (uint64, error) {
	l.forced.Add(1)
	return l.inner.Append(rec)
}

func (l *countingLog) AppendLazy(rec wal.Record) error { return l.inner.AppendLazy(rec) }
func (l *countingLog) Records() ([]wal.Record, error)  { return l.inner.Records() }
func (l *countingLog) Close() error                    { return l.inner.Close() }

// BenchmarkEngineForcedRecords measures WAL records forced per transaction,
// by role, for each protocol family plus the 2PC abort path. The counts are
// the protocol's forced-write cost model, independent of device speed, and
// the bench smoke gates them: presumed-abort 2PC must hold participants to
// <=2 forces per commit and the coordinator to 0 per abort.
func BenchmarkEngineForcedRecords(b *testing.B) {
	cases := []struct {
		name  string
		kind  engine.ProtocolKind
		abort bool
	}{
		{"2PC", engine.TwoPhase, false},
		{"3PC", engine.ThreePhase, false},
		{"Paxos", engine.PaxosCommit, false},
		{"2PC-abort", engine.TwoPhase, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			net := transport.NewNetwork()
			det := failure.NewOracle(net)
			const n = 3
			sites := make(map[int]*engine.Site, n)
			logs := make(map[int]*countingLog, n)
			resources := make(map[int]*testResource, n)
			var ids []int
			for i := 1; i <= n; i++ {
				ids = append(ids, i)
				logs[i] = &countingLog{inner: wal.NewMemoryLog()}
				resources[i] = newTestResource()
				s, err := engine.New(engine.Config{
					ID:       i,
					Endpoint: net.Endpoint(i),
					Log:      logs[i],
					Resource: resources[i],
					Detector: det,
					Protocol: tc.kind,
					Timeout:  time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				sites[i] = s
				s.Start()
			}
			defer func() {
				for _, s := range sites {
					s.Stop()
				}
			}()
			want := engine.OutcomeCommitted
			if tc.abort {
				want = engine.OutcomeAborted
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txid := fmt.Sprintf("forced-%d", i)
				if tc.abort {
					resources[2].refuse(txid)
				}
				if err := sites[1].Begin(txid, ids); err != nil {
					b.Fatal(err)
				}
				// Wait at every site so each op's forced writes are fully
				// accounted before the next op (and before the counters are
				// read).
				for _, id := range ids {
					if o, err := sites[id].WaitOutcome(txid, 5*time.Second); err != nil || o != want {
						b.Fatalf("%s at site %d: outcome %v err %v", txid, id, o, err)
					}
				}
			}
			b.StopTimer()
			coord := float64(logs[1].forced.Load()) / float64(b.N)
			part := 0.0
			for _, id := range ids[1:] {
				if f := float64(logs[id].forced.Load()) / float64(b.N); f > part {
					part = f
				}
			}
			b.ReportMetric(coord, "coord-forced/op")
			b.ReportMetric(part, "part-forced/op")
		})
	}
}
