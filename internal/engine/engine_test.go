package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// testResource is a scriptable Resource: it records every call and can be
// told to vote NO for chosen transactions.
type testResource struct {
	mu        sync.Mutex
	voteNo    map[string]bool
	prepared  map[string]bool
	committed map[string]string // txid -> redo applied
	aborted   map[string]bool
	redone    []string
}

func newTestResource() *testResource {
	return &testResource{
		voteNo:    map[string]bool{},
		prepared:  map[string]bool{},
		committed: map[string]string{},
		aborted:   map[string]bool{},
	}
}

func (r *testResource) refuse(txid string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.voteNo[txid] = true
}

func (r *testResource) Prepare(txid string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.voteNo[txid] {
		return nil, errors.New("resource refuses (lock conflict)")
	}
	r.prepared[txid] = true
	return []byte("redo:" + txid), nil
}

func (r *testResource) Commit(txid string, redo []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.committed[txid] = string(redo)
	return nil
}

func (r *testResource) Abort(txid string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aborted[txid] = true
	return nil
}

func (r *testResource) ApplyRedo(redo []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.redone = append(r.redone, string(redo))
	return nil
}

func (r *testResource) didCommit(txid string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.committed[txid]; ok {
		return true
	}
	for _, redo := range r.redone {
		if redo == "redo:"+txid {
			return true
		}
	}
	return false
}

// cluster wires n engine sites over an in-memory network with a perfect
// failure detector.
type cluster struct {
	t     *testing.T
	net   *transport.Network
	det   *failure.OracleDetector
	kind  engine.ProtocolKind
	sites map[int]*engine.Site
	logs  map[int]*wal.MemoryLog
	res   map[int]*testResource
	ids   []int
}

const testTimeout = 60 * time.Millisecond

func newCluster(t *testing.T, kind engine.ProtocolKind, n int) *cluster {
	t.Helper()
	c := &cluster{
		t:     t,
		net:   transport.NewNetwork(),
		kind:  kind,
		sites: map[int]*engine.Site{},
		logs:  map[int]*wal.MemoryLog{},
		res:   map[int]*testResource{},
	}
	c.det = failure.NewOracle(c.net)
	for i := 1; i <= n; i++ {
		c.ids = append(c.ids, i)
		c.logs[i] = wal.NewMemoryLog()
		c.res[i] = newTestResource()
		c.startSite(i)
	}
	t.Cleanup(func() {
		for _, s := range c.sites {
			s.Stop()
		}
	})
	return c
}

func (c *cluster) startSite(id int) {
	s, err := engine.New(engine.Config{
		ID:       id,
		Endpoint: c.net.Endpoint(id),
		Log:      c.logs[id],
		Resource: c.res[id],
		Detector: c.det,
		Protocol: c.kind,
		Timeout:  testTimeout,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.sites[id] = s
	s.Start()
}

// crash fails a site: the network reports it and its loop halts.
func (c *cluster) crash(id int) {
	c.net.Crash(id)
	c.sites[id].Stop()
}

// recover restarts a crashed site from its WAL with a fresh resource.
func (c *cluster) recoverSite(id int) {
	c.res[id] = newTestResource()
	s, err := engine.Recover(engine.Config{
		ID:       id,
		Endpoint: c.net.Endpoint(id),
		Log:      c.logs[id],
		Resource: c.res[id],
		Detector: c.det,
		Protocol: c.kind,
		Timeout:  testTimeout,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.sites[id] = s
}

// expect asserts that every given site resolves txid to the wanted outcome.
func (c *cluster) expect(txid string, want engine.Outcome, siteIDs ...int) {
	c.t.Helper()
	for _, id := range siteIDs {
		got, err := c.sites[id].WaitOutcome(txid, 5*time.Second)
		if err != nil {
			c.t.Fatalf("site %d tx %s: %v", id, txid, err)
		}
		if got != want {
			c.t.Fatalf("site %d tx %s: outcome %s, want %s", id, txid, got, want)
		}
	}
}

// waitPhase polls until the site reports the given canonical state letter.
func (c *cluster) waitPhase(id int, txid, phase string) {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.sites[id].Phase(txid) == phase {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("site %d tx %s: phase %s never reached (now %s)",
		id, txid, phase, c.sites[id].Phase(txid))
}

// waitBlocked polls until the site reports ErrBlocked for txid.
func (c *cluster) waitBlocked(id int, txid string) {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.sites[id].Outcome(txid); errors.Is(err, engine.ErrBlocked) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("site %d tx %s never blocked", id, txid)
}

func TestThreePCCommit(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3, 4)
	for _, id := range c.ids {
		if !c.res[id].didCommit("t1") {
			t.Fatalf("site %d resource did not commit", id)
		}
	}
}

func TestTwoPCCommit(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)
}

func TestUnilateralAbort(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newCluster(t, kind, 3)
			c.res[3].refuse("t1") // deadlock at site 3: vote NO
			if err := c.sites[1].Begin("t1", c.ids); err != nil {
				t.Fatal(err)
			}
			c.expect("t1", engine.OutcomeAborted, 1, 2, 3)
			if c.res[1].didCommit("t1") || c.res[2].didCommit("t1") {
				t.Fatal("aborted transaction committed somewhere")
			}
		})
	}
}

func TestCoordinatorOwnVoteNo(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	c.res[1].refuse("t1") // the coordinator itself votes NO: (no1)
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeAborted, 1, 2, 3)
}

func TestParticipantCrashBeforeVoteAborts(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	// Site 3 crashes before the transaction starts; its vote never arrives.
	c.crash(3)
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeAborted, 1, 2)
}

func TestDuplicateBeginRejected(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 2)
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	if err := c.sites[1].Begin("t1", c.ids); err == nil {
		t.Fatal("duplicate Begin accepted")
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2)
}

// TestTwoPCBlocks reproduces the paper's blocking scenario: the coordinator
// crashes after collecting YES votes but before any decision escapes; every
// operational participant sits in w and cannot decide.
func TestTwoPCBlocks(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	// Swallow the coordinator's decision messages, then crash it once both
	// participants have voted.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && (m.Kind == engine.KindCommit || m.Kind == engine.KindAbort)
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	c.waitPhase(3, "t1", "w")
	c.crash(1)
	c.net.SetDropFunc(nil)

	c.waitBlocked(2, "t1")
	c.waitBlocked(3, "t1")
}

// TestTwoPCUnblocksOnCoordinatorRecovery: the blocked participants resolve
// once the crashed coordinator recovers and re-broadcasts its (logged or
// default-abort) decision. The votes are swallowed so the coordinator
// provably never reaches its commit point: recovery must abort.
func TestTwoPCUnblocksOnCoordinatorRecovery(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		if m.To == 1 && (m.Kind == engine.KindYes || m.Kind == engine.KindNo) {
			return true
		}
		return m.From == 1 && (m.Kind == engine.KindCommit || m.Kind == engine.KindAbort)
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	c.waitPhase(3, "t1", "w")
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.waitBlocked(2, "t1")

	// The coordinator crashed before logging an outcome: recovery aborts
	// and re-broadcasts, releasing the participants.
	c.recoverSite(1)
	c.expect("t1", engine.OutcomeAborted, 1, 2, 3)
}

// TestTwoPCTerminationAbortsWhenSomeoneHasNotVoted: a cohort member still in
// q proves the coordinator never committed, so cooperative termination can
// abort. (2PC blocks only when everyone is in w.)
func TestTwoPCTerminationAbortsWhenSomeoneHasNotVoted(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	// Site 3 never receives VOTE-REQ, so it stays in q.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.Kind == engine.KindVoteReq && m.To == 3
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeAborted, 2)
}

// TestThreePCTerminationAbortFromW: coordinator crashes before sending any
// PREPARE; all participants are in w, the backup's concurrency set has no
// commit state, so termination aborts — no blocking.
func TestThreePCTerminationAbortFromW(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && m.Kind == engine.KindPrepare
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	c.waitPhase(3, "t1", "w")
	c.waitPhase(4, "t1", "w")
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeAborted, 2, 3, 4)
}

// TestThreePCTerminationCommitFromP: coordinator crashes after the prepare
// round; the backup is in p, so termination commits everywhere.
func TestThreePCTerminationCommitFromP(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && m.Kind == engine.KindCommit
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "p")
	c.waitPhase(3, "t1", "p")
	c.waitPhase(4, "t1", "p")
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 2, 3, 4)
	for _, id := range []int{2, 3, 4} {
		if !c.res[id].didCommit("t1") {
			t.Fatalf("site %d did not apply the commit", id)
		}
	}
}

// TestThreePCTerminationMixedWP: the PREPARE reached only site 2. The backup
// (site 2, in p) first synchronizes site 3 and 4 to p (phase 1 of the backup
// protocol), then commits.
func TestThreePCTerminationMixedWP(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	c.net.SetDropFunc(func(m transport.Message) bool {
		if m.From != 1 {
			return false
		}
		if m.Kind == engine.KindCommit {
			return true
		}
		return m.Kind == engine.KindPrepare && m.To != 2
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "p")
	c.waitPhase(3, "t1", "w")
	c.waitPhase(4, "t1", "w")
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 2, 3, 4)
}

// TestThreePCTerminationBackupAlreadyDecided: site 2 received COMMIT before
// the coordinator crashed; as backup it just propagates the decision
// (phase 1 omitted when the backup is in a final state).
func TestThreePCTerminationBackupAlreadyDecided(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && m.Kind == engine.KindCommit && m.To == 3
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2)
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 3)
}

// TestThreePCSuccessiveFailures: the coordinator crashes, then the first
// backup crashes mid-termination; the next backup still terminates the
// transaction consistently ("as long as one site remains operational").
func TestThreePCSuccessiveFailures(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && m.Kind == engine.KindCommit
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "p")
	c.waitPhase(3, "t1", "p")
	c.waitPhase(4, "t1", "p")
	c.crash(1)
	c.net.SetDropFunc(nil)
	// Site 2 becomes backup; kill it immediately, before it can finish.
	c.crash(2)
	c.expect("t1", engine.OutcomeCommitted, 3, 4)
}

// TestParticipantRecoveryLearnsCommit: a participant crashes after voting
// YES; the remaining cohort commits (3PC waives the dead site's ack). On
// recovery the participant asks the cohort and applies the redo image.
func TestParticipantRecoveryLearnsCommit(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	// Site 3 votes, then crashes before receiving PREPARE.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.To == 3 && m.Kind == engine.KindPrepare
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(3, "t1", "w")
	c.crash(3)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 1, 2)

	c.recoverSite(3)
	c.expect("t1", engine.OutcomeCommitted, 3)
	if !c.res[3].didCommit("t1") {
		t.Fatal("recovered site did not apply the redo image")
	}
}

// TestParticipantRecoveryLearnsAbort: as above but the cohort aborted.
func TestParticipantRecoveryLearnsAbort(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	c.res[2].refuse("t1")
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.To == 3 && (m.Kind == engine.KindAbort || m.Kind == engine.KindPrepare)
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(3, "t1", "w")
	c.crash(3)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeAborted, 1, 2)

	c.recoverSite(3)
	c.expect("t1", engine.OutcomeAborted, 3)
	if c.res[3].didCommit("t1") {
		t.Fatal("recovered site committed an aborted transaction")
	}
}

// TestRecoveredSiteRefusesBackupRole: with the coordinator down and the
// would-be backup freshly recovered (in doubt), termination falls to the
// next operational site, and everyone still terminates consistently.
func TestRecoveredSiteRefusesBackupRole(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	// Block PREPARE to 2 and 3; let 4... everyone in w except none.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && m.Kind == engine.KindPrepare
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	c.waitPhase(3, "t1", "w")
	c.waitPhase(4, "t1", "w")
	// Site 2 crashes and immediately recovers: it is in doubt and must
	// refuse the backup role.
	c.crash(2)
	c.recoverSiteKeepDrop(2)
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeAborted, 3, 4)
	c.expect("t1", engine.OutcomeAborted, 2)
}

// recoverSiteKeepDrop restarts a site without clearing the drop function.
func (c *cluster) recoverSiteKeepDrop(id int) {
	c.t.Helper()
	c.recoverSite(id)
}

// TestConcurrentTransactions drives several transactions with mixed
// outcomes through one cluster at once.
func TestConcurrentTransactions(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	const n = 8
	for i := 0; i < n; i++ {
		txid := fmt.Sprintf("t%d", i)
		if i%3 == 0 {
			c.res[1+i%4].refuse(txid)
		}
		if err := c.sites[1].Begin(txid, c.ids); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		txid := fmt.Sprintf("t%d", i)
		want := engine.OutcomeCommitted
		if i%3 == 0 {
			want = engine.OutcomeAborted
		}
		c.expect(txid, want, 1, 2, 3, 4)
	}
}

// TestNoMixedOutcomes is the atomicity invariant under randomized crashes:
// whatever happens, no two sites decide differently.
func TestNoMixedOutcomes(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		c := newCluster(t, engine.ThreePhase, 4)
		drop := seed
		c.net.SetDropFunc(func(m transport.Message) bool {
			// Deterministically drop a varying slice of coordinator
			// traffic.
			return m.From == 1 && (int(m.Kind[0])+m.To+drop)%3 == 0 &&
				m.Kind != engine.KindVoteReq
		})
		if err := c.sites[1].Begin("t1", c.ids); err != nil {
			t.Fatal(err)
		}
		time.Sleep(30 * time.Millisecond)
		c.crash(1)
		c.net.SetDropFunc(nil)

		outcomes := map[engine.Outcome]bool{}
		for _, id := range []int{2, 3, 4} {
			o, err := c.sites[id].WaitOutcome("t1", 5*time.Second)
			if err != nil {
				t.Fatalf("seed %d site %d: %v", seed, id, err)
			}
			outcomes[o] = true
		}
		if outcomes[engine.OutcomeCommitted] && outcomes[engine.OutcomeAborted] {
			t.Fatalf("seed %d: mixed outcomes — atomicity violated", seed)
		}
		for _, s := range c.sites {
			s.Stop()
		}
	}
}

func TestOutcomeStringAndErrors(t *testing.T) {
	if engine.OutcomeCommitted.String() != "committed" ||
		engine.OutcomeAborted.String() != "aborted" ||
		engine.OutcomePending.String() != "pending" {
		t.Fatal("Outcome.String mismatch")
	}
	if engine.TwoPhase.String() != "2PC" || engine.ThreePhase.String() != "3PC" {
		t.Fatal("ProtocolKind.String mismatch")
	}
	c := newCluster(t, engine.ThreePhase, 2)
	if _, err := c.sites[1].Outcome("nope"); err == nil {
		t.Fatal("unknown transaction should error")
	}
	if got := c.sites[1].Phase("nope"); got != "?" {
		t.Fatalf("Phase of unknown tx = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := engine.New(engine.Config{}); err == nil {
		t.Fatal("New with nil deps should fail")
	}
}

func TestForget(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 2)
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2)

	// Unresolved transactions cannot be forgotten.
	if err := c.sites[1].Begin("t2", c.ids); err != nil {
		t.Fatal(err)
	}
	// t2 will resolve quickly, but t1 is definitely resolved now.
	if err := c.sites[1].Forget("t1"); err != nil {
		t.Fatal(err)
	}
	if err := c.sites[1].Forget("t1"); err != nil {
		t.Fatal("double forget should be a no-op")
	}
	if _, err := c.sites[1].Outcome("t1"); err == nil {
		t.Fatal("forgotten transaction still known")
	}
	c.expect("t2", engine.OutcomeCommitted, 1, 2)
	txs := c.sites[1].Transactions()
	if len(txs) != 1 || txs[0] != "t2" {
		t.Fatalf("transactions = %v", txs)
	}

	// Recovery after forgetting replays nothing for t1 (end record).
	c.crash(1)
	c.recoverSite(1)
	for _, id := range c.sites[1].Transactions() {
		if id == "t1" {
			// t1 may appear as an ended image; it must be resolved, not in
			// doubt.
			if o, err := c.sites[1].Outcome("t1"); err != nil || o == engine.OutcomePending {
				t.Fatalf("recovered t1 = %v, %v", o, err)
			}
		}
	}
	if doubt := c.sites[1].InDoubt(); len(doubt) != 0 {
		t.Fatalf("in doubt after recovery: %v", doubt)
	}
}

func TestForgetUnresolvedRejected(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.To == 1 && (m.Kind == engine.KindYes || m.Kind == engine.KindNo)
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	if err := c.sites[2].Forget("t1"); err == nil {
		t.Fatal("forgetting an in-flight transaction must fail")
	}
}

// TestCohortSubset: transactions touch only a subset of the cluster's
// sites; non-members never hear about them, and concurrent subset
// transactions with disjoint cohorts proceed independently.
func TestCohortSubset(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 5)
	if err := c.sites[1].Begin("ta", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.sites[3].Begin("tb", []int{3, 4}); err != nil {
		t.Fatal(err)
	}
	c.expect("ta", engine.OutcomeCommitted, 1, 2)
	c.expect("tb", engine.OutcomeCommitted, 3, 4)
	// Site 5 heard about neither.
	if got := c.sites[5].Transactions(); len(got) != 0 {
		t.Fatalf("site 5 knows %v", got)
	}
	if got := c.sites[1].Phase("tb"); got != "?" {
		t.Fatalf("site 1 knows tb: %s", got)
	}
}

// TestCohortSubsetTerminationIgnoresOutsiders: a coordinator crash inside a
// 3-of-5 cohort elects the backup among the cohort only.
func TestCohortSubsetTermination(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 5)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 2 && m.Kind == engine.KindCommit
	})
	// Coordinator 2, cohort {2,4,5}.
	if err := c.sites[2].Begin("t1", []int{2, 4, 5}); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(4, "t1", "p")
	c.waitPhase(5, "t1", "p")
	c.crash(2)
	c.net.SetDropFunc(nil)
	// Backup must be site 4 (lowest operational cohort member), not 1 or 3.
	c.expect("t1", engine.OutcomeCommitted, 4, 5)
	if got := c.sites[1].Transactions(); len(got) != 0 {
		t.Fatalf("outsider 1 was dragged in: %v", got)
	}
	if got := c.sites[3].Transactions(); len(got) != 0 {
		t.Fatalf("outsider 3 was dragged in: %v", got)
	}
}
