// Package engine executes commit protocols at real sites: event-driven
// coordinators and participants exchanging messages over a transport,
// forcing protocol state to a write-ahead log, detecting site failures, and
// running the paper's termination protocol (backup-coordinator election plus
// the two-phase backup protocol) and recovery protocol.
//
// The engine implements the central-site paradigm for both two-phase commit
// (which blocks when the coordinator fails at the wrong moment) and
// three-phase commit (the paper's nonblocking protocol, with the buffer
// state "prepared"). The local states a site moves through are exactly the
// canonical q → w → (p) → c / a of the paper's FSAs; the wal records are
// their durable images.
//
// A site's runtime is a set of shards, each an independent event loop owning
// a txid-hash partition of the transaction table: messages, timer fires,
// vote results and durability notifications for a transaction all serialize
// onto its shard, so per-transaction state needs no cross-shard
// coordination. Timers multiplex onto one hierarchical timer wheel per site
// (clock.Wheel), with a generation token per arm so a stale fire that was
// already in flight when the timer was re-armed is rejected.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/clock"
	"nbcommit/internal/failure"
	"nbcommit/internal/trace"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// ProtocolKind selects the commit protocol a site runs.
type ProtocolKind int

const (
	// TwoPhase is the central-site 2PC of slide 15 (blocking).
	TwoPhase ProtocolKind = iota
	// ThreePhase is the central-site 3PC of slide 35 (nonblocking).
	ThreePhase
	// PaxosCommit replicates the coordinator's decision across 2F+1
	// acceptors (Gray & Lamport, "Consensus on Transaction Commit"): one
	// Paxos instance per participant's vote, nonblocking with 2PC-like
	// latency. See paxos.go.
	PaxosCommit
)

// String names the protocol.
func (k ProtocolKind) String() string {
	switch k {
	case ThreePhase:
		return "3PC"
	case PaxosCommit:
		return "Paxos"
	default:
		return "2PC"
	}
}

// ParseProtocol maps a protocol name to its ProtocolKind. It accepts the
// canonical flag spellings ("2pc", "3pc", "paxos") and the String() forms,
// case-insensitively — the single parse table shared by kvnode, loadgen,
// dst and every other protocol flag, so adding a protocol family is one
// entry here.
func ParseProtocol(name string) (ProtocolKind, error) {
	switch strings.ToLower(name) {
	case "2pc", "two-phase", "twophase":
		return TwoPhase, nil
	case "3pc", "three-phase", "threephase":
		return ThreePhase, nil
	case "paxos", "paxos-commit", "paxoscommit":
		return PaxosCommit, nil
	}
	return 0, fmt.Errorf("engine: unknown protocol %q (want 2pc, 3pc, or paxos)", name)
}

// Outcome is the resolution of a transaction at a site.
type Outcome int

const (
	// OutcomePending: the protocol has not resolved the transaction yet.
	OutcomePending Outcome = iota
	// OutcomeCommitted: the transaction committed.
	OutcomeCommitted
	// OutcomeAborted: the transaction aborted.
	OutcomeAborted
)

// String returns "pending", "committed" or "aborted".
func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	default:
		return "pending"
	}
}

// ErrBlocked is reported when a 2PC participant is stuck in the uncertainty
// window: it voted YES, the coordinator failed, and every operational cohort
// member is equally uncertain. The transaction can only be resolved when the
// coordinator recovers. 3PC never returns this.
var ErrBlocked = errors.New("engine: transaction blocked awaiting coordinator recovery")

// ErrStopped is returned when the site has been stopped or crashed.
var ErrStopped = errors.New("engine: site is stopped")

// maxCohort bounds the commit cohort so per-transaction vote/ack/DEC-ACK
// collection fits in one word (cohortSet). Sixty-four sites in a single
// commit cohort is far beyond any deployment this engine targets.
const maxCohort = 64

// Resource is the local resource manager whose changes the protocol makes
// atomic. Prepare is the participant's vote: returning an error votes NO.
// The redo image returned by Prepare is forced to the WAL and handed back on
// Commit. ApplyRedo replays a committed redo image during recovery, when the
// resource no longer holds the live transaction.
type Resource interface {
	Prepare(txid string) (redo []byte, err error)
	Commit(txid string, redo []byte) error
	Abort(txid string) error
	ApplyRedo(redo []byte) error
}

// VersionedResource is the optional extension implemented by multi-version
// resources. The engine publishes both series as per-site gauges and exposes
// them via Site.ResourceVersion so snapshot readers can see how far the
// apply path has advanced: CommitTS is the newest commit timestamp stamped
// at decision-apply time, and Watermark is the oldest in-doubt prepare
// reservation (0 when nothing is prepared-but-undecided) — the bound below
// which snapshot reads are final.
type VersionedResource interface {
	Resource
	CommitTS() uint64
	Watermark() uint64
}

// Message kinds exchanged by the engine.
const (
	KindVoteReq   = "VOTE-REQ"   // coordinator: transaction + cohort metadata
	KindYes       = "YES"        // participant vote
	KindNo        = "NO"         // participant vote (unilateral abort)
	KindReadOnly  = "READ-ONLY"  // participant vote: no writes, drop me from phase 2
	KindPrepare   = "PREPARE"    // coordinator: enter the buffer state (3PC)
	KindAck       = "ACK"        // participant: acknowledged prepare
	KindCommit    = "COMMIT"     // final decision
	KindAbort     = "ABORT"      // final decision
	KindTermState = "TERM-STATE" // backup phase 1: move to my state
	KindTermAck   = "TERM-ACK"   // phase-1 acknowledgement
	KindStatusReq = "STATUS-REQ" // 2PC cooperative termination query
	KindStatusRes = "STATUS-RES" // reply: local phase
	KindDecideReq = "DECIDE-REQ" // recovery: what happened to tx?
	KindDecideRes = "DECIDE-RES" // reply: outcome if known
	KindDecAck    = "DEC-ACK"    // participant: decision applied durably (GC)
	KindPx1a      = "PX-1A"      // Paxos Commit: new leader's prepare (ballot)
	KindPx1b      = "PX-1B"      // acceptor: promise + accepted vector
	KindPx2a      = "PX-2A"      // proposer: accept this value for an instance
	KindPx2b      = "PX-2B"      // acceptor: value accepted (to the leader)
	KindPxNudge   = "PX-NUDGE"   // participant: wake the elected Paxos leader
)

// TxMeta describes a transaction's cohort; the coordinator ships it with
// VOTE-REQ so every participant can run termination and recovery without it.
type TxMeta struct {
	Coordinator  int
	Participants []int // full cohort, coordinator included
}

// encodeMeta/decodeMeta serialize TxMeta for message bodies with a flat
// varint layout (coordinator, participant count, participants). The commit
// hot path encodes a meta per message, so this avoids the per-call encoder
// allocations and reflection of a generic codec.
func encodeMeta(m TxMeta) []byte {
	buf := make([]byte, 0, 2+2*len(m.Participants))
	buf = binary.AppendUvarint(buf, uint64(m.Coordinator))
	buf = binary.AppendUvarint(buf, uint64(len(m.Participants)))
	for _, p := range m.Participants {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	return buf
}

var errBadMeta = errors.New("engine: malformed transaction metadata")

// readMeta decodes a TxMeta from the front of p, returning the bytes
// consumed.
func readMeta(p []byte) (TxMeta, int, error) {
	var m TxMeta
	coord, n := binary.Uvarint(p)
	if n <= 0 {
		return TxMeta{}, 0, errBadMeta
	}
	off := n
	cnt, n := binary.Uvarint(p[off:])
	if n <= 0 || cnt > uint64(len(p)) || cnt > maxCohort {
		return TxMeta{}, 0, errBadMeta
	}
	off += n
	m.Coordinator = int(coord)
	m.Participants = make([]int, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return TxMeta{}, 0, errBadMeta
		}
		off += n
		m.Participants = append(m.Participants, int(v))
	}
	return m, off, nil
}

func decodeMeta(p []byte) (TxMeta, error) {
	m, n, err := readMeta(p)
	if err != nil {
		return TxMeta{}, err
	}
	if n != len(p) {
		return TxMeta{}, errBadMeta
	}
	return m, nil
}

// phase is the canonical local state of the paper's FSAs.
type phase int

const (
	phaseInit      phase = iota // q: transaction known, not yet voted
	phaseWait                   // w: voted YES, outcome unknown
	phasePrepared               // p: buffer state (3PC only)
	phaseCommitted              // c
	phaseAborted                // a
)

// String names the phase with the paper's state letters.
func (p phase) String() string {
	switch p {
	case phaseInit:
		return "q"
	case phaseWait:
		return "w"
	case phasePrepared:
		return "p"
	case phaseCommitted:
		return "c"
	case phaseAborted:
		return "a"
	default:
		return "?"
	}
}

// cohortSet is a bitset over cohort positions (indexes into
// TxMeta.Participants): the zero-allocation replacement for the per-site
// vote/ack/DEC-ACK maps on the commit hot path.
type cohortSet uint64

func (c cohortSet) has(i int) bool { return i >= 0 && c&(1<<uint(i)) != 0 }

func (c *cohortSet) add(i int) {
	if i >= 0 {
		*c |= 1 << uint(i)
	}
}

// txState is a site's view of one transaction.
type txState struct {
	id    string
	meta  TxMeta
	phase phase
	redo  []byte

	coordinator bool
	votes       cohortSet // coordinator: YES votes received
	acks        cohortSet // coordinator: ACKs received
	decAcks     cohortSet // coordinator: DEC-ACKs received (auto-forget)
	readonly    cohortSet // coordinator: read-only voters, out of phase 2
	ownYes      bool      // coordinator: local prepare succeeded
	noVote      bool      // coordinator: some participant voted NO
	forced      uint32    // WAL records forced for this transaction here

	noTrace cohortSet // recovering: cohort members that answered "no trace"

	termAcks   cohortSet // backup coordinator: phase-1 acks
	termActive bool      // backup coordinator: termination underway
	termPhase  phase     // backup coordinator: state broadcast in phase 1
	// fenced is set once this site is under a backup coordinator's control
	// (it acked a TERM-STATE sync, or is the backup itself). From then on
	// only the termination protocol may move the transaction: late
	// normal-protocol messages still in flight from a dead site could
	// otherwise advance us past the state the backup synchronized, and a
	// cascading backup would decide from the drifted state.
	fenced     bool
	statuses   map[int]byte // 2PC cooperative termination: cohort phases
	queried    bool         // 2PC cooperative termination started
	excluded   map[int]bool // sites refusing the backup role (recovering)
	blocked    bool         // 2PC uncertainty: termination could not decide
	recovering bool         // in-doubt after restart; refuses the backup role
	detached   bool         // resource no longer tracks this txn (recovery)
	voting     bool         // participant: local prepare in flight
	peer       bool         // decentralized paradigm (no coordinator)
	dvotes     map[int]byte // decentralized: vote round ('y'/'n' per site)
	dprepares  map[int]bool // decentralized 3PC: prepare round
	px         *paxosTx     // Paxos Commit: acceptor + leader state (paxos.go)

	// timer is the transaction's single protocol/GC timer, an entry in the
	// site's timer wheel; gen is its arm generation. Every (re-)arm and
	// cancel bumps gen, and a timeout event carrying a stale generation is
	// ignored: a fire already collected by the wheel when the transaction
	// changed phase can never drive the re-armed transaction.
	timer clock.WheelTimer
	gen   uint64
	done  chan struct{}

	// Metrics timestamps (zero unless Config.Metrics is set and this site
	// coordinates the transaction): Begin time, vote-round completion,
	// decision time, and whether settle latency was already observed.
	begunAt   time.Time
	votesAt   time.Time
	decidedAt time.Time
	settled   bool
}

func (t *txState) resolved() bool {
	return t.phase == phaseCommitted || t.phase == phaseAborted
}

// cohortIdx maps a site ID to its position in the cohort, or -1. The cohort
// is small and sorted; a linear scan beats a map here.
func (t *txState) cohortIdx(site int) int {
	for i, p := range t.meta.Participants {
		if p == site {
			return i
		}
	}
	return -1
}

// Config assembles a site's dependencies.
type Config struct {
	// ID is the site's identifier (1-based; any positive int).
	ID int
	// Endpoint attaches the site to the network.
	Endpoint transport.Endpoint
	// Log is the site's stable storage.
	Log wal.Log
	// Resource is the local resource manager. Required.
	Resource Resource
	// Detector reports site failures.
	Detector failure.Detector
	// Protocol selects the commit protocol family (2PC, 3PC, or Paxos
	// Commit).
	Protocol ProtocolKind
	// Timeout bounds each wait for a protocol message before suspecting a
	// failure and (for participants) invoking the termination protocol.
	// Zero means 200ms.
	Timeout time.Duration
	// ForgetAfter, when positive, garbage-collects resolved transactions
	// in the central-site paradigm: a participant acknowledges the
	// decision (DEC-ACK) once its outcome record is durable and forgets
	// the transaction after this grace period; the coordinator re-sends
	// the decision until every participant has acknowledged it — crashed
	// participants included, which re-acknowledge after recovery — and
	// only then forgets, so some site always knows the outcome while
	// anyone may still ask. Zero keeps transactions until Site.Forget is
	// called. Decentralized (peer) transactions have no acknowledgement
	// collection point and are never auto-forgotten.
	ForgetAfter time.Duration
	// ReadOnlyVotes enables the read-only participant optimization (2PC and
	// 3PC): a participant whose Resource.Prepare returns an empty redo image
	// answers the vote request with READ-ONLY, forces nothing to its WAL,
	// releases the resource immediately and drops out of the second phase
	// entirely — the coordinator skips it in every later round. Off by
	// default: only enable it for resources where an empty redo image
	// genuinely means "this site has nothing at stake in the outcome".
	ReadOnlyVotes bool
	// Shards is the number of event-loop workers, each owning a txid-hash
	// partition of the transaction table (rounded up to a power of two).
	// Zero means GOMAXPROCS — or one in deterministic mode, where shards
	// share the injector's goroutine anyway.
	Shards int
	// Clock supplies time to every protocol path (timers, deadlines). Nil
	// means the wall clock; deterministic simulation (internal/dst) injects
	// a virtual clock so timeouts fire only when the simulation advances it.
	Clock clock.Clock
	// Deterministic disables the engine's internal concurrency for
	// simulation testing: no event-loop goroutines are started,
	// Resource.Prepare runs inline, and every message, timer callback and
	// crash report is processed synchronously on the goroutine that injects
	// it. The simulation driver feeds messages in via Site.Deliver and must
	// use a Clock whose callbacks fire on the driver's goroutine (a virtual
	// clock). Real deployments leave this false.
	Deterministic bool
	// Unhandled, when set, receives every message whose kind the engine
	// does not recognize — heartbeats, application data-plane traffic, and
	// anything else multiplexed onto the site's endpoint. Called on the
	// owning shard's event loop; keep it fast.
	Unhandled func(transport.Message)
	// Trace, when set, records the site's protocol events (votes, state
	// transitions, termination and recovery milestones). Production nodes
	// should use a bounded recorder (trace.NewBounded) so the trace can stay
	// on indefinitely.
	Trace *trace.Recorder
	// Metrics, when set, instruments the commit path: per-phase latency
	// histograms, commit latency, resolution counters, and per-site
	// transaction-table/timer gauges (see NewMetrics). Nil disables all
	// instrumentation at zero cost.
	Metrics *Metrics
}

// Site executes commit protocols for one node. Create with New, start with
// Start, and stop with Stop (graceful) or Crash (fault injection). Protocol
// state lives in the site's shards; the Site itself holds only what is
// shared across them.
type Site struct {
	id        int
	ep        transport.Endpoint
	det       failure.Detector
	clk       clock.Clock
	kind      ProtocolKind
	timeoutNs atomic.Int64 // protocol timeout; read via protoTimeout
	forget    time.Duration
	determin  bool
	metrics   *Metrics

	shards    []*shard
	shardMask uint32
	wheel     *clock.Wheel // all shards' transaction timers, one per site

	live    atomic.Bool   // Start has run; staged logging may be used
	stopped atomic.Bool   // Stop has run; new events are dropped
	dropped atomic.Uint64 // events discarded after Stop (observability)

	quit chan struct{}
	wg   sync.WaitGroup
}

// shard owns one txid-hash partition of a site's transaction table and the
// event loop that serializes all activity on it. The site's dependencies
// are duplicated onto every shard so handlers never indirect through the
// Site on the hot path.
type shard struct {
	site *Site

	id          int
	ep          transport.Endpoint
	log         wal.Log
	slog        wal.StagedLog // non-nil: group-commit staging is active
	lazy        wal.LazyLog   // non-nil: lazy (non-forced) appends are supported
	res         Resource
	det         failure.Detector
	kind        ProtocolKind
	forgetAfter time.Duration
	clk         clock.Clock
	determin    bool
	roVotes     bool
	unhandled   func(transport.Message)
	trace       *trace.Recorder
	metrics     *Metrics

	mu       sync.Mutex
	txns     map[string]*txState
	pending  []*actGroup // actions deferred behind staged WAL records (FIFO)
	arrivals map[string]*arrival

	events chan event
	// recv, set only on single-shard sites, lets the one event loop select
	// on the endpoint directly instead of paying a demux hop per message.
	recv <-chan transport.Message

	groups  []*actGroup // recycled actGroups, capped
	release []*actGroup // onDurable scratch (event-loop-owned)
}

// evKind tags an event with what it carries; the explicit discriminant is
// what lets every payload — including site ID 0 in a crash report — be a
// legal value.
type evKind uint8

const (
	evMsg     evKind = iota + 1 // a protocol message arrived
	evTimeout                   // a transaction's wheel timer fired
	evCrash                     // the detector reported a site crash
	evVote                      // a Resource.Prepare finished
	evDurable                   // a staged WAL record's batch became durable
)

// event is an internal occurrence handled on a shard's event loop. It is a
// value type: events move through channels and handlers by copy, so the hot
// path never allocates one.
type event struct {
	kind    evKind
	msg     transport.Message // evMsg
	txid    string            // evTimeout
	gen     uint64            // evTimeout: arm generation of the fire
	site    int               // evCrash
	vote    voteResult        // evVote
	durable *actGroup         // evDurable
}

// action is one externally visible effect deferred behind WAL durability:
// either a message send (the overwhelmingly common case, stored flat so no
// closure is allocated per send) or an arbitrary function.
type action struct {
	msg transport.Message
	fn  func()
}

// actGroup collects the externally visible actions deferred behind one
// staged WAL record: message sends, resource commits/aborts and waiter
// wakeups attach to the newest staged record and run only once that
// record's batch is durable, in staging order. This is what lets the
// engine pipeline many transactions through one group-committed log
// without ever acting on a state change that could still be lost — the
// paper's force-before-act discipline, enforced at batch granularity.
type actGroup struct {
	acts    []action
	durable bool
	err     error
}

// arrival wakes WaitOutcome callers waiting for a transaction this site
// has not heard of yet.
type arrival struct {
	ch   chan struct{}
	refs int
}

// voteResult carries a Resource.Prepare outcome back onto the event loop.
type voteResult struct {
	txid string
	redo []byte
	err  error
	own  bool // the coordinator's local vote rather than a participant's
	peer bool // a decentralized peer's local vote
}

// votePayload is the durable image a participant forces with its YES vote:
// enough to run termination and recovery without the coordinator.
type votePayload struct {
	Meta TxMeta
	Redo []byte
}

func encodeVotePayload(meta TxMeta, redo []byte) []byte {
	mb := encodeMeta(meta)
	buf := make([]byte, 0, 2+len(mb)+len(redo))
	buf = binary.AppendUvarint(buf, uint64(len(mb)))
	buf = append(buf, mb...)
	buf = append(buf, redo...)
	return buf
}

func decodeVotePayload(p []byte) (votePayload, error) {
	ml, n := binary.Uvarint(p)
	if n <= 0 || ml > uint64(len(p)-n) {
		return votePayload{}, errBadMeta
	}
	meta, err := decodeMeta(p[n : n+int(ml)])
	if err != nil {
		return votePayload{}, err
	}
	v := votePayload{Meta: meta}
	if rest := p[n+int(ml):]; len(rest) > 0 {
		v.Redo = append([]byte(nil), rest...)
	}
	return v, nil
}

// New assembles a site. Call Start to begin processing.
func New(cfg Config) (*Site, error) {
	if cfg.Endpoint == nil || cfg.Log == nil || cfg.Resource == nil || cfg.Detector == nil {
		return nil, errors.New("engine: Endpoint, Log, Resource and Detector are required")
	}
	if cfg.ID <= 0 {
		return nil, fmt.Errorf("engine: site ID must be positive, got %d", cfg.ID)
	}
	to := cfg.Timeout
	if to == 0 {
		to = 200 * time.Millisecond
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Wall
	}
	n := cfg.Shards
	if n <= 0 {
		if cfg.Deterministic {
			n = 1
		} else {
			n = runtime.GOMAXPROCS(0)
		}
	}
	n = ceilPow2(n)
	s := &Site{
		id:        cfg.ID,
		ep:        cfg.Endpoint,
		det:       cfg.Detector,
		clk:       clk,
		kind:      cfg.Protocol,
		forget:    cfg.ForgetAfter,
		determin:  cfg.Deterministic,
		metrics:   cfg.Metrics,
		shardMask: uint32(n - 1),
		quit:      make(chan struct{}),
	}
	s.timeoutNs.Store(int64(to))
	// The wheel's tick only sets bucketing granularity (fires are exact):
	// a fraction of the protocol timeout keeps cascades rare.
	tick := to / 16
	if tick > 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	s.wheel = clock.NewWheel(clk, tick, s.onTimerFire)
	// Group commit needs real concurrency: the deterministic simulator
	// processes everything on one goroutine and must observe each append
	// synchronously, so staging is only used outside deterministic mode.
	var slog wal.StagedLog
	if sl, ok := cfg.Log.(wal.StagedLog); ok && !cfg.Deterministic {
		slog = sl
	}
	// Lazy appends need no callback, so they are usable in deterministic mode
	// too (the simulator's log models the staged-but-unflushed crash window).
	lazy, _ := cfg.Log.(wal.LazyLog)
	s.shards = make([]*shard, n)
	for i := range s.shards {
		s.shards[i] = &shard{
			site:        s,
			id:          cfg.ID,
			ep:          cfg.Endpoint,
			log:         cfg.Log,
			slog:        slog,
			lazy:        lazy,
			res:         cfg.Resource,
			det:         cfg.Detector,
			kind:        cfg.Protocol,
			forgetAfter: cfg.ForgetAfter,
			clk:         clk,
			determin:    cfg.Deterministic,
			roVotes:     cfg.ReadOnlyVotes,
			unhandled:   cfg.Unhandled,
			trace:       cfg.Trace,
			metrics:     cfg.Metrics,
			txns:        map[string]*txState{},
			arrivals:    map[string]*arrival{},
			events:      make(chan event, 1024),
		}
	}
	if n == 1 && !cfg.Deterministic {
		s.shards[0].recv = cfg.Endpoint.Recv()
	}
	if s.metrics != nil {
		s.metrics.registerSiteGauges(s)
	}
	return s, nil
}

// ceilPow2 rounds n up to the next power of two (for the shard mask).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ID returns the site's identifier.
func (s *Site) ID() int { return s.id }

// ResourceVersion reports the resource's newest applied commit timestamp and
// its in-doubt watermark when the resource is multi-version; ok is false for
// plain resources. Every shard shares the one configured resource, so the
// first shard's view is the site's view.
func (s *Site) ResourceVersion() (commitTS, watermark uint64, ok bool) {
	vr, ok := s.shards[0].res.(VersionedResource)
	if !ok {
		return 0, 0, false
	}
	return vr.CommitTS(), vr.Watermark(), true
}

// shardFor routes a transaction ID to its owning shard (FNV-1a).
func (s *Site) shardFor(txid string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(txid); i++ {
		h ^= uint32(txid[i])
		h *= 16777619
	}
	return s.shards[h&s.shardMask]
}

// protoTimeout returns the current protocol timeout.
func (s *shard) protoTimeout() time.Duration {
	return time.Duration(s.site.timeoutNs.Load())
}

// SetTimeout changes the protocol timeout used for every timer armed from
// now on (already armed timers keep their original deadline). Hostile
// simulations use it to skew one site's failure suspicion relative to its
// peers — a clock-skewed or misconfigured detector.
func (s *Site) SetTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	s.timeoutNs.Store(int64(d))
}

// DroppedEvents reports how many events were discarded because the site had
// stopped — the count behind the engine_events_dropped_total metric. While
// the site is live the count never moves: shutdown is the only path that
// sheds events.
func (s *Site) DroppedEvents() uint64 { return s.dropped.Load() }

// Start launches the shard event loops and subscribes to crash reports. In
// deterministic mode no goroutines are started: events are processed
// synchronously as the simulation driver injects them.
func (s *Site) Start() {
	s.live.Store(true)
	s.det.Watch(s.onCrashReport)
	if s.determin {
		return
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.loop()
	}
	if len(s.shards) > 1 {
		s.wg.Add(1)
		go s.recvLoop()
	}
}

// onCrashReport reacts to a failure report from the detector. In
// deterministic mode the whole site handles it synchronously, visiting
// transactions in globally sorted ID order — the shard-count-invariant
// order the simulation's reproducibility (and its traces) depend on. In
// concurrent mode every shard is told and scans its own partition.
func (s *Site) onCrashReport(site int) {
	if s.determin {
		if s.stopped.Load() {
			s.dropped.Add(1)
			return
		}
		s.handleCrashAll(site)
		return
	}
	for _, sh := range s.shards {
		sh.enqueue(event{kind: evCrash, site: site})
	}
}

// handleCrashAll applies a crash report to every transaction of every shard
// in one globally sorted pass (deterministic mode only).
func (s *Site) handleCrashAll(site int) {
	var ids []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id := range sh.txns {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh := s.shardFor(id)
		sh.mu.Lock()
		if t, ok := sh.txns[id]; ok {
			sh.crashCheckTx(t, site)
		}
		sh.mu.Unlock()
	}
}

// onTimerFire is the site wheel's expiry callback: route the timeout to the
// transaction's shard, generation token attached.
func (s *Site) onTimerFire(txid string, gen uint64) {
	s.shardFor(txid).enqueue(event{kind: evTimeout, txid: txid, gen: gen})
}

// enqueue routes an event to the shard's event loop — or, in deterministic
// mode, processes it synchronously on the caller's goroutine (protocol state
// is mutex-protected, and the single-threaded simulation driver is the only
// injector, so handlers never run concurrently). Once the site has stopped,
// events are dropped and counted: losing one while the site is live would be
// a protocol bug, so the loss is never silent.
func (s *shard) enqueue(ev event) {
	if s.determin {
		if s.site.stopped.Load() {
			s.site.dropped.Add(1)
			return
		}
		s.handleEvent(ev)
		return
	}
	select {
	case s.events <- ev:
	case <-s.site.quit:
		s.site.dropped.Add(1)
	}
}

// Deliver synchronously processes one inbound message on the caller's
// goroutine. It is the injection point used by deterministic simulation
// (Config.Deterministic); sites wired to a live transport receive messages
// through their endpoint instead.
func (s *Site) Deliver(m transport.Message) {
	s.shardFor(m.TxID).enqueue(event{kind: evMsg, msg: m})
}

// castVote runs Resource.Prepare and feeds the result back as an event —
// asynchronously in normal operation (Prepare may wait on locks and must not
// stall the event loop), inline in deterministic mode.
func (s *shard) castVote(txid string, own, peer bool) {
	if s.determin {
		s.castVoteNow(txid, own, peer)
		return
	}
	go s.castVoteNow(txid, own, peer)
}

func (s *shard) castVoteNow(txid string, own, peer bool) {
	redo, err := s.res.Prepare(txid)
	s.enqueue(event{kind: evVote, vote: voteResult{txid: txid, redo: redo, err: err, own: own, peer: peer}})
}

// Stop shuts the site down gracefully. In-flight transactions stay
// unresolved locally; events still queued when the loops exit are counted
// as dropped.
func (s *Site) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.wheel.Stop()
	close(s.quit)
	s.wg.Wait()
	for _, sh := range s.shards {
		for {
			select {
			case <-sh.events:
				s.dropped.Add(1)
				continue
			default:
			}
			break
		}
	}
}

// recvLoop demultiplexes the endpoint onto the shards (multi-shard sites
// only; a single-shard site's loop reads the endpoint directly).
func (s *Site) recvLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case m, ok := <-s.ep.Recv():
			if !ok {
				// Endpoint closed under us: the site crashed.
				return
			}
			s.shardFor(m.TxID).enqueue(event{kind: evMsg, msg: m})
		}
	}
}

// loop is a shard's event loop; all state changes of the shard's
// transactions happen here. Events are dequeued in batches: once the loop
// wakes it drains whatever else is already queued before going back to
// sleep, amortizing the channel synchronization.
func (sh *shard) loop() {
	defer sh.site.wg.Done()
	var batch [64]event
	for {
		var ev event
		select {
		case <-sh.site.quit:
			return
		case ev = <-sh.events:
		case m, ok := <-sh.recv:
			if !ok {
				// Endpoint closed under us: the site crashed.
				return
			}
			ev = event{kind: evMsg, msg: m}
		}
		n := 0
		batch[n] = ev
		n++
		for n < len(batch) {
			select {
			case ev := <-sh.events:
				batch[n] = ev
				n++
				continue
			default:
			}
			break
		}
		for i := 0; i < n; i++ {
			sh.handleEvent(batch[i])
			batch[i] = event{} // drop payload references until the next use
		}
	}
}

func (s *shard) handleEvent(ev event) {
	switch ev.kind {
	case evMsg:
		s.handleMessage(ev.msg)
	case evTimeout:
		s.handleTimeout(ev.txid, ev.gen)
	case evCrash:
		s.handleCrash(ev.site)
	case evDurable:
		s.onDurable(ev.durable)
	case evVote:
		switch {
		case ev.vote.own:
			s.onOwnVote(ev.vote)
		case ev.vote.peer:
			s.onPeerVoteResult(ev.vote)
		default:
			s.onPrepareResult(ev.vote)
		}
	}
}

// handleMessage dispatches a protocol message by kind.
func (s *shard) handleMessage(m transport.Message) {
	switch m.Kind {
	case KindVoteReq:
		s.onVoteReq(m)
	case KindYes, KindNo, KindReadOnly:
		s.onVote(m)
	case KindPrepare:
		s.onPrepareMsg(m)
	case KindAck:
		s.onAck(m)
	case KindCommit:
		s.onDecision(m, OutcomeCommitted)
	case KindAbort:
		s.onDecision(m, OutcomeAborted)
	case KindTermState:
		s.onTermState(m)
	case KindTermAck:
		s.onTermAck(m)
	case KindStatusReq:
		s.onStatusReq(m)
	case KindStatusRes:
		s.onStatusRes(m)
	case KindDecideReq:
		s.onDecideReq(m)
	case KindDecideRes:
		s.onDecideRes(m)
	case KindDecAck:
		s.onDecAck(m)
	case KindPx1a:
		s.onPx1a(m)
	case KindPx1b:
		s.onPx1b(m)
	case KindPx2a:
		s.onPx2a(m)
	case KindPx2b:
		s.onPx2b(m)
	case KindPxNudge:
		s.onPxNudge(m)
	case KindDXact:
		s.onDXact(m)
	case KindDYes, KindDNo:
		s.onDVote(m)
	case KindDPrepare:
		s.onDPrepare(m)
	default:
		if s.unhandled != nil {
			s.unhandled(m)
		}
	}
}

// send transmits a protocol message, ignoring delivery failures (crash-stop
// losses are handled by timeouts and the termination protocol). While any
// staged WAL record is awaiting durability the message is deferred behind
// it: what we say to other sites must never outrun what we have forced to
// stable storage. Requires s.mu held.
func (s *shard) send(to int, kind, txid string, body []byte) {
	m := transport.Message{To: to, Kind: kind, TxID: txid, Body: body}
	if n := len(s.pending); n > 0 {
		g := s.pending[n-1]
		g.acts = append(g.acts, action{msg: m})
		return
	}
	_ = s.ep.Send(m)
}

// act runs fn now when nothing is pending durability, and otherwise
// attaches it to the newest staged WAL record so it runs — on the event
// loop, in order — once that record's batch is durable. fn must not take
// s.mu. Requires s.mu held.
func (s *shard) act(fn func()) {
	if n := len(s.pending); n > 0 {
		g := s.pending[n-1]
		g.acts = append(g.acts, action{fn: fn})
		return
	}
	fn()
}

// onDurable runs on the event loop when a staged record's batch became
// durable; it releases the deferred actions of every group up to the
// newest durable one, preserving FIFO order, and recycles the spent groups.
func (s *shard) onDurable(g *actGroup) {
	if g.err != nil {
		panic(fmt.Sprintf("engine: site %d cannot write WAL: %v", s.id, g.err))
	}
	s.mu.Lock()
	g.durable = true
	run := s.release[:0]
	for len(s.pending) > 0 && s.pending[0].durable {
		run = append(run, s.pending[0])
		s.pending = s.pending[1:]
	}
	if len(s.pending) == 0 {
		s.pending = nil
	}
	s.mu.Unlock()
	for _, g := range run {
		for _, a := range g.acts {
			if a.fn != nil {
				a.fn()
			} else {
				_ = s.ep.Send(a.msg)
			}
		}
	}
	s.mu.Lock()
	for i, g := range run {
		if len(s.groups) < 64 {
			g.acts = g.acts[:0]
			g.durable = false
			s.groups = append(s.groups, g)
		}
		run[i] = nil
	}
	s.release = run[:0]
	s.mu.Unlock()
}

// newGroup takes an actGroup from the shard's freelist (or allocates one).
// Requires s.mu held.
func (s *shard) newGroup() *actGroup {
	if n := len(s.groups); n > 0 {
		g := s.groups[n-1]
		s.groups = s.groups[:n-1]
		return g
	}
	return &actGroup{}
}

// record emits a trace event if tracing is enabled.
func (s *shard) record(kind, txid, note string) {
	if s.trace != nil {
		s.trace.Add(s.id, kind, txid, note)
	}
}

// mustLog forces a WAL record; a stable-storage failure is fatal for the
// site (it can no longer uphold its guarantees), surfaced as a panic in
// this reference implementation.
//
// With a group-committing log the record is only staged: volatile protocol
// state may advance immediately, but every externally visible action of
// this handler (and of later handlers) is deferred via act() until the
// record's batch is durable, so the event loop keeps processing — and
// staging further records into the same batch — while the fsync runs.
// Before Start (recovery) and in deterministic mode the append is
// synchronous. Requires s.mu held.
func (s *shard) mustLog(rec wal.Record) {
	if t, ok := s.txns[rec.TxID]; ok {
		t.forced++
	}
	if s.slog != nil && s.site.live.Load() {
		g := s.newGroup()
		s.pending = append(s.pending, g)
		var stagedAt time.Time
		if s.metrics != nil {
			stagedAt = s.clk.Now()
		}
		s.slog.AppendStaged(rec, func(_ uint64, err error) {
			if s.metrics != nil {
				s.metrics.forceWait.Observe(s.clk.Now().Sub(stagedAt))
			}
			g.err = err
			s.enqueue(event{kind: evDurable, durable: g})
		})
		return
	}
	var start time.Time
	if s.metrics != nil {
		start = s.clk.Now()
	}
	if _, err := s.log.Append(rec); err != nil {
		panic(fmt.Sprintf("engine: site %d cannot write WAL: %v", s.id, err))
	}
	if s.metrics != nil {
		s.metrics.forceWait.Observe(s.clk.Now().Sub(start))
	}
}

// mustLogLazy appends a WAL record without forcing it: the record is ordered
// into the log but rides a later batch, no actGroup is created, and nothing
// is deferred behind it — subsequent sends and acts run immediately. Only
// records whose loss recovery can tolerate may be logged this way: presumed
// (2PC) abort-path records, whose absence recovery reads as abort, and end
// records, whose loss merely re-runs idempotent garbage collection. A closed
// log is tolerated (shutdown race): the record was best-effort by contract.
// Requires s.mu held.
func (s *shard) mustLogLazy(rec wal.Record) {
	if s.lazy != nil {
		if err := s.lazy.AppendLazy(rec); err != nil && !errors.Is(err, wal.ErrClosed) {
			panic(fmt.Sprintf("engine: site %d cannot write WAL: %v", s.id, err))
		}
		return
	}
	// The log has no lazy capability: fall back to a forced append so the
	// record is never silently dropped (it still does not count against the
	// transaction's forced budget — the protocol did not require the force).
	if _, err := s.log.Append(rec); err != nil && !errors.Is(err, wal.ErrClosed) {
		panic(fmt.Sprintf("engine: site %d cannot write WAL: %v", s.id, err))
	}
}

// presumedAbort reports whether this transaction's abort path runs under the
// presumed-abort discipline: 2PC, central-site paradigm. The recovery rule —
// no committed record means abort — makes every abort-path force redundant:
// the coordinator keeps no trace of aborted transactions at all, and
// participants append their abort records lazily. Requires s.mu held.
func (s *shard) presumedAbort(t *txState) bool {
	return s.kind == TwoPhase && !t.peer
}

// armTimer (re)starts the transaction's protocol timer. The new arm's
// generation invalidates any timeout event from a previous arm that is
// still in flight. Requires s.mu held.
func (s *shard) armTimer(t *txState, d time.Duration) {
	t.timer.Stop()
	t.gen++
	t.timer = s.site.wheel.Schedule(d, t.id, t.gen)
}

// stopTimer cancels the transaction's timer and invalidates in-flight
// fires. Requires s.mu held.
func (s *shard) stopTimer(t *txState) {
	t.timer.Stop()
	t.timer = clock.WheelTimer{}
	t.gen++
}

// Outcome reports the site's local resolution of a transaction.
// ErrBlocked is returned while a 2PC participant sits in the uncertainty
// window with no way to decide.
func (s *Site) Outcome(txid string) (Outcome, error) {
	sh := s.shardFor(txid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.txns[txid]
	if !ok {
		return OutcomePending, fmt.Errorf("engine: site %d does not know transaction %s", s.id, txid)
	}
	switch t.phase {
	case phaseCommitted:
		return OutcomeCommitted, nil
	case phaseAborted:
		return OutcomeAborted, nil
	default:
		if t.blocked {
			return OutcomePending, ErrBlocked
		}
		return OutcomePending, nil
	}
}

// WaitOutcome blocks until the transaction resolves locally or the timeout
// elapses. A transaction this site has not heard of yet is waited for (its
// VOTE-REQ may still be in flight) through an arrival notification — no
// polling. A blocked 2PC transaction keeps WaitOutcome waiting (it may
// unblock when the coordinator recovers); use Outcome to poll for
// ErrBlocked. The result is read from the transaction record itself, so it
// stays correct even if the site auto-forgets the transaction the moment
// it settles.
func (s *Site) WaitOutcome(txid string, timeout time.Duration) (Outcome, error) {
	// An AfterFunc stopped on return, not clk.After: a timer channel would
	// stay live in the runtime for the full timeout — under load, tens of
	// thousands of them — long after the typical call returns in
	// milliseconds.
	timedOut := make(chan struct{})
	tm := s.clk.AfterFunc(timeout, func() { close(timedOut) })
	defer tm.Stop()
	sh := s.shardFor(txid)
	for {
		sh.mu.Lock()
		t, ok := sh.txns[txid]
		if ok {
			done := t.done
			sh.mu.Unlock()
			select {
			case <-done:
			case <-timedOut:
			case <-s.quit:
				return OutcomePending, ErrStopped
			}
			sh.mu.Lock()
			defer sh.mu.Unlock()
			switch t.phase {
			case phaseCommitted:
				return OutcomeCommitted, nil
			case phaseAborted:
				return OutcomeAborted, nil
			default:
				if t.blocked {
					return OutcomePending, ErrBlocked
				}
				return OutcomePending, nil
			}
		}
		a := sh.arrivals[txid]
		if a == nil {
			a = &arrival{ch: make(chan struct{})}
			sh.arrivals[txid] = a
		}
		a.refs++
		sh.mu.Unlock()
		select {
		case <-a.ch:
			sh.releaseArrival(txid, a)
		case <-timedOut:
			sh.releaseArrival(txid, a)
			return OutcomePending, fmt.Errorf("engine: site %d does not know transaction %s", s.id, txid)
		case <-s.quit:
			sh.releaseArrival(txid, a)
			return OutcomePending, ErrStopped
		}
	}
}

// releaseArrival drops one waiter's interest in a transaction's arrival,
// removing the notification entry with the last reference so unknown
// transaction IDs cannot accumulate.
func (s *shard) releaseArrival(txid string, a *arrival) {
	s.mu.Lock()
	a.refs--
	if a.refs == 0 && s.arrivals[txid] == a {
		delete(s.arrivals, txid)
	}
	s.mu.Unlock()
}

// Phase returns the canonical local state letter (q/w/p/c/a) of the
// transaction at this site, or "?" if unknown. Exposed for tests and the
// termination protocol's observers.
func (s *Site) Phase(txid string) string {
	sh := s.shardFor(txid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t, ok := sh.txns[txid]; ok {
		return t.phase.String()
	}
	return "?"
}

// resolve finishes a transaction locally: forces the outcome record, then
// applies the outcome to the resource and wakes waiters — both deferred
// behind the record's durability when the log group-commits, because they
// are externally visible (a woken client may immediately read the data).
// Requires s.mu held.
func (s *shard) resolve(t *txState, o Outcome) {
	if t.resolved() {
		return
	}
	s.observeResolve(t, o)
	id, redo, detached := t.id, t.redo, t.detached
	if o == OutcomeCommitted {
		s.record("commit", t.id, "")
		s.mustLog(wal.Record{Type: wal.RecCommitted, TxID: t.id, Payload: t.redo})
		t.phase = phaseCommitted
		s.act(func() {
			if detached {
				// The resource no longer tracks this transaction (it was
				// rebuilt by recovery); apply the redo image directly.
				if len(redo) > 0 {
					if err := s.res.ApplyRedo(redo); err != nil {
						panic(fmt.Sprintf("engine: site %d cannot redo %s: %v", s.id, id, err))
					}
				}
			} else if err := s.res.Commit(id, redo); err != nil {
				panic(fmt.Sprintf("engine: site %d cannot commit prepared transaction %s: %v", s.id, id, err))
			}
		})
	} else {
		s.record("abort", t.id, "")
		switch {
		case s.presumedAbort(t) && t.coordinator:
			// Presumed abort: the coordinator writes nothing for an aborted
			// transaction. Recovery finding no trace presumes abort, and any
			// in-doubt participant that asks is answered with the no-trace
			// status ('n'), which from the coordinator means abort.
		case s.presumedAbort(t):
			// Participant abort records are only an inquiry shortcut under
			// the presumption; losing one re-runs the (cheap) inquiry.
			s.mustLogLazy(wal.Record{Type: wal.RecAborted, TxID: t.id})
		default:
			s.mustLog(wal.Record{Type: wal.RecAborted, TxID: t.id})
		}
		t.phase = phaseAborted
		if !t.detached {
			s.act(func() { _ = s.res.Abort(id) }) // aborts are idempotent
		}
	}
	t.blocked = false
	s.stopTimer(t)
	done := t.done
	s.act(func() { close(done) })
	s.observeForced(t, o)
	s.scheduleGC(t)
}

// observeResolve records resolution metrics for a transaction about to be
// resolved: outcome counters at every role, and — at the coordinator —
// begin→decision latency plus the 3PC ack-round phase. Requires s.mu held.
func (s *shard) observeResolve(t *txState, o Outcome) {
	if s.metrics == nil {
		return
	}
	now := s.clk.Now()
	t.decidedAt = now
	if o == OutcomeCommitted {
		s.metrics.committed.Inc()
	} else {
		s.metrics.aborted.Inc()
	}
	if !t.coordinator || t.begunAt.IsZero() {
		return
	}
	if o == OutcomeCommitted {
		s.metrics.commit.Observe(now.Sub(t.begunAt))
	} else {
		s.metrics.abort.Observe(now.Sub(t.begunAt))
	}
	if s.kind == ThreePhase && !t.votesAt.IsZero() {
		s.metrics.acks.Observe(now.Sub(t.votesAt))
	}
}

// observeForced records how many WAL records this site forced for the
// transaction, sampled at resolution (the end record is lazy and never
// counts). The histogram abuses the duration-valued Histogram as a plain
// integer distribution: one "nanosecond" is one forced record. Requires
// s.mu held and t.phase final.
func (s *shard) observeForced(t *txState, o Outcome) {
	if s.metrics == nil {
		return
	}
	s.metrics.ForcedPerCommit(t.coordinator, o == OutcomeCommitted).Observe(time.Duration(t.forced))
}

// observeSettle records decision→full-DEC-ACK latency once per coordinated
// transaction, when the last participant's acknowledgement arrives.
// Requires s.mu held.
func (s *shard) observeSettle(t *txState) {
	if s.metrics == nil || t.settled || t.decidedAt.IsZero() {
		return
	}
	t.settled = true
	s.metrics.settle.Observe(s.clk.Now().Sub(t.decidedAt))
}

// tx returns (creating if needed) the transaction record. Requires s.mu
// held.
func (s *shard) tx(txid string) *txState {
	t, ok := s.txns[txid]
	if !ok {
		t = &txState{id: txid, phase: phaseInit, done: make(chan struct{})}
		s.txns[txid] = t
		if a, ok := s.arrivals[txid]; ok {
			close(a.ch)
			delete(s.arrivals, txid)
		}
	}
	return t
}

// Forget garbage-collects a resolved transaction: it forces an end record
// (so recovery skips the transaction entirely) and drops the in-memory
// state. Forgetting an unresolved transaction is an error — its protocol
// state is still load-bearing.
func (s *Site) Forget(txid string) error {
	sh := s.shardFor(txid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.txns[txid]
	if !ok {
		return nil // already forgotten
	}
	if !t.resolved() {
		return fmt.Errorf("engine: site %d cannot forget unresolved transaction %s (phase %s)",
			s.id, txid, t.phase)
	}
	sh.forgetLocked(t)
	return nil
}

// Participants returns the commit cohort of a transaction this site tracks
// (coordinator included), or nil if the site does not know the transaction.
// Exposed for observability and for tests asserting cohort sizes — e.g.
// that a single-shard transaction engaged exactly one site.
func (s *Site) Participants(txid string) []int {
	sh := s.shardFor(txid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.txns[txid]
	if !ok {
		return nil
	}
	return append([]int(nil), t.meta.Participants...)
}

// Transactions returns the IDs of the transactions this site currently
// tracks, for observability and tests.
func (s *Site) Transactions() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id := range sh.txns {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}
