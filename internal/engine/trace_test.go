package engine_test

import (
	"strings"
	"testing"

	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/trace"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// tracedCluster builds sites that share one trace recorder.
func tracedCluster(t *testing.T, kind engine.ProtocolKind, n int) (*cluster, *trace.Recorder) {
	t.Helper()
	rec := &trace.Recorder{}
	c := &cluster{
		t:     t,
		net:   transport.NewNetwork(),
		kind:  kind,
		sites: map[int]*engine.Site{},
		logs:  map[int]*wal.MemoryLog{},
		res:   map[int]*testResource{},
	}
	c.det = failure.NewOracle(c.net)
	for i := 1; i <= n; i++ {
		c.ids = append(c.ids, i)
		c.logs[i] = wal.NewMemoryLog()
		c.res[i] = newTestResource()
		s, err := engine.New(engine.Config{
			ID:       i,
			Endpoint: c.net.Endpoint(i),
			Log:      c.logs[i],
			Resource: c.res[i],
			Detector: c.det,
			Protocol: kind,
			Timeout:  testTimeout,
			Trace:    rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.sites[i] = s
		s.Start()
	}
	t.Cleanup(func() {
		for _, s := range c.sites {
			s.Stop()
		}
	})
	return c, rec
}

// seq extracts the ordered event kinds for one site.
func seq(rec *trace.Recorder, site int) []string {
	var out []string
	for _, e := range rec.Filter(func(e trace.Event) bool { return e.Site == site }) {
		out = append(out, e.Kind)
	}
	return out
}

// TestTraceHappyPath3PC asserts the exact per-site event sequence of a
// failure-free 3PC commit: participants vote-yes -> prepared -> commit; the
// coordinator commits after collecting the acks.
func TestTraceHappyPath3PC(t *testing.T) {
	c, rec := tracedCluster(t, engine.ThreePhase, 3)
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)

	for _, site := range []int{2, 3} {
		got := seq(rec, site)
		want := []string{"vote-yes", "prepared", "commit"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("site %d sequence = %v, want %v", site, got, want)
		}
	}
	if got := seq(rec, 1); strings.Join(got, ",") != "commit" {
		t.Errorf("coordinator sequence = %v, want [commit]", got)
	}
}

// TestTraceUnilateralAbort: the refusing site records vote-no then abort;
// the others record vote-yes then abort; nobody commits.
func TestTraceUnilateralAbort(t *testing.T) {
	c, rec := tracedCluster(t, engine.ThreePhase, 3)
	c.res[3].refuse("t1")
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeAborted, 1, 2, 3)

	got3 := seq(rec, 3)
	if strings.Join(got3, ",") != "vote-no,abort" {
		t.Errorf("refusing site sequence = %v", got3)
	}
	for _, e := range rec.Events() {
		if e.Kind == "commit" {
			t.Fatalf("aborted transaction committed at site %d", e.Site)
		}
	}
	// The vote-no event carries the resource's reason.
	noEvents := rec.Filter(func(e trace.Event) bool { return e.Kind == "vote-no" })
	if len(noEvents) != 1 || !strings.Contains(noEvents[0].Note, "refuses") {
		t.Errorf("vote-no events = %v", noEvents)
	}
}

// TestTraceTermination: a coordinator crash produces a backup event at
// exactly one surviving site, followed by consistent outcomes.
func TestTraceTermination(t *testing.T) {
	c, rec := tracedCluster(t, engine.ThreePhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && m.Kind == engine.KindCommit
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "p")
	c.waitPhase(3, "t1", "p")
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 2, 3)

	backups := rec.Filter(func(e trace.Event) bool { return e.Kind == "backup" })
	if len(backups) == 0 {
		t.Fatal("no backup event recorded")
	}
	if backups[0].Site != 2 {
		t.Errorf("backup ran at site %d, want 2 (lowest operational)", backups[0].Site)
	}
	if !strings.Contains(backups[0].Note, "state p") {
		t.Errorf("backup note = %q, want state p", backups[0].Note)
	}
}

// TestTraceBlocked: the 2PC uncertainty window records a blocked event.
func TestTraceBlocked(t *testing.T) {
	c, rec := tracedCluster(t, engine.TwoPhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 1 && (m.Kind == engine.KindCommit || m.Kind == engine.KindAbort)
	})
	if err := c.sites[1].Begin("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(2, "t1", "w")
	c.waitPhase(3, "t1", "w")
	c.crash(1)
	c.net.SetDropFunc(nil)
	c.waitBlocked(2, "t1")
	c.waitBlocked(3, "t1")

	blocked := rec.Filter(func(e trace.Event) bool { return e.Kind == "blocked" })
	if len(blocked) < 2 {
		t.Fatalf("blocked events = %v, want one per survivor", blocked)
	}
}
