package engine_test

import (
	"flag"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/transport"
)

// chaosSeed pins the chaos test to a single seed for reproducing a failure:
//
//	go test ./internal/engine -run TestChaosMultiCoordinator -chaos.seed=7
var chaosSeed = flag.Int64("chaos.seed", 0, "run only this chaos seed (0 = default sweep)")

// TestChaosMultiCoordinator drives many concurrent transactions initiated
// from different coordinators over a lossy network, crashes a site
// mid-stream and recovers it, and then verifies the global invariant: for
// every transaction, no two sites decided differently — and after the dust
// settles every operational site that knows a transaction has resolved it.
func TestChaosMultiCoordinator(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Logf("chaos seed %d (replay: go test ./internal/engine -run TestChaosMultiCoordinator -chaos.seed=%d)", seed, seed)
			const (
				nSites = 5
				nTxns  = 24
			)
			c := newCluster(t, engine.ThreePhase, nSites)
			rng := rand.New(rand.NewSource(seed))

			// Lossy network: lose the FIRST copy of ~10% of protocol
			// messages (selected deterministically by message identity);
			// retransmissions get through, as on a real fair-loss link.
			var dropMu sync.Mutex
			droppedOnce := map[string]bool{}
			c.net.SetDropFunc(func(m transport.Message) bool {
				if m.Kind == engine.KindVoteReq || m.Kind == engine.KindDXact {
					return false // keep the cohort informed of the txn
				}
				h := int64(len(m.Kind)) * 131
				for _, ch := range m.TxID {
					h = h*31 + int64(ch)
				}
				h += int64(m.From*7 + m.To*13)
				if (h+seed)%10 != 0 {
					return false
				}
				key := fmt.Sprintf("%s|%s|%d|%d", m.Kind, m.TxID, m.From, m.To)
				dropMu.Lock()
				defer dropMu.Unlock()
				if droppedOnce[key] {
					return false
				}
				droppedOnce[key] = true
				return true
			})

			// Launch transactions from rotating coordinators, mixing the
			// central and decentralized paradigms and sprinkling NO votes.
			txids := make([]string, 0, nTxns)
			crashedSite := 0
			for i := 0; i < nTxns; i++ {
				txid := fmt.Sprintf("chaos-%d-%d", seed, i)
				txids = append(txids, txid)
				coord := 1 + i%nSites
				if coord == crashedSite {
					coord = 1 // a dead site cannot coordinate
				}
				if rng.Intn(4) == 0 {
					c.res[1+rng.Intn(nSites)].refuse(txid)
				}
				var err error
				if i%2 == 0 {
					err = c.sites[coord].Begin(txid, c.ids)
				} else {
					err = c.sites[coord].BeginPeer(txid, c.ids)
				}
				if err != nil {
					t.Fatal(err)
				}
				if i == nTxns/2 {
					// Mid-stream crash of a non-coordinating site.
					c.crash(5)
					crashedSite = 5
				}
			}

			// Let the protocols and termination attempts settle, then heal.
			time.Sleep(150 * time.Millisecond)
			c.net.SetDropFunc(nil)
			c.recoverSite(5)
			time.Sleep(300 * time.Millisecond)

			for _, txid := range txids {
				outcomes := map[engine.Outcome]bool{}
				for _, id := range c.ids {
					// A site that was down when a transaction ran may never
					// have heard of it (its VOTE-REQ was lost with the
					// crash); such a site holds no state to check.
					if _, oerr := c.sites[id].Outcome(txid); oerr != nil &&
						strings.Contains(oerr.Error(), "does not know") {
						continue
					}
					o, err := c.sites[id].WaitOutcome(txid, 10*time.Second)
					if err != nil {
						t.Fatalf("site %d tx %s: %v", id, txid, err)
					}
					if o == engine.OutcomePending {
						t.Fatalf("site %d tx %s still pending", id, txid)
					}
					outcomes[o] = true
				}
				if outcomes[engine.OutcomeCommitted] && outcomes[engine.OutcomeAborted] {
					t.Fatalf("tx %s: mixed outcomes — atomicity violated", txid)
				}
			}
		})
	}
}
