package engine

import (
	"sort"

	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// onVoteReq handles the coordinator's transaction distribution: the
// participant decides its vote by preparing the local resource.
func (s *shard) onVoteReq(m transport.Message) {
	meta, err := decodeMeta(m.Body)
	if err != nil {
		return // malformed; the coordinator will time out and abort
	}
	s.mu.Lock()
	t := s.tx(m.TxID)
	if t.phase != phaseInit || t.coordinator || t.voting {
		s.mu.Unlock()
		return // duplicate delivery
	}
	t.meta = meta
	t.voting = true
	s.mu.Unlock()

	// Vote off the event loop: Prepare may wait on locks.
	s.castVote(m.TxID, false, false)
}

// onPrepareResult finishes the participant's vote once the local prepare
// resolves.
func (s *shard) onPrepareResult(v voteResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[v.txid]
	if !ok || t.resolved() || t.phase != phaseInit {
		return // e.g. the coordinator timed out and aborted us meanwhile
	}
	if v.err != nil {
		// Unilateral abort: vote NO (deadlock resolution, validation
		// failure, ...), then abort immediately — the outcome is decided
		// for us. Safe under Paxos Commit too: this site is its own
		// instance's only ballot-0 proposer and never proposed 'y', so
		// commit is unreachable. Under presumed abort the NO-vote record
		// need not be forced: a crash that loses it leaves no trace, and
		// no trace already means abort.
		s.record("vote-no", t.id, v.err.Error())
		if s.presumedAbort(t) {
			s.mustLogLazy(wal.Record{Type: wal.RecVoteNo, TxID: t.id})
		} else {
			s.mustLog(wal.Record{Type: wal.RecVoteNo, TxID: t.id})
		}
		s.send(t.meta.Coordinator, KindNo, t.id, nil)
		s.resolve(t, OutcomeAborted)
		return
	}
	if s.kind == PaxosCommit {
		s.paxosVoteYes(t, v.redo)
		return
	}
	if s.roVotes && !t.peer && len(v.redo) == 0 {
		// Read-only participant optimization: with no writes to make
		// atomic, this site's vote cannot constrain the outcome and its
		// recovery needs no record of the transaction. Vote READ-ONLY,
		// release the resource now, and drop out of the protocol entirely —
		// no forced record, no phase 2, no timer, no DEC-ACK. If a backup
		// coordinator or recovered site asks later, the no-state answer
		// ('n') excludes us, exactly as if we had already been forgotten.
		s.record("vote-ro", t.id, "")
		id, done := t.id, t.done
		t.phase = phaseCommitted
		s.send(t.meta.Coordinator, KindReadOnly, t.id, nil)
		s.act(func() { _ = s.res.Abort(id) }) // releases locks; no writes to keep
		s.act(func() { close(done) })
		s.stopTimer(t)
		delete(s.txns, t.id)
		return
	}
	t.redo = v.redo
	s.record("vote-yes", t.id, "")
	s.mustLog(wal.Record{Type: wal.RecVoteYes, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
	t.phase = phaseWait
	s.send(t.meta.Coordinator, KindYes, t.id, nil)
	s.armTimer(t, s.protoTimeout())
}

// onPrepareMsg moves a participant into the buffer state p (3PC).
func (s *shard) onPrepareMsg(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok {
		return
	}
	if t.fenced {
		return // under backup control: only the termination protocol moves us
	}
	switch t.phase {
	case phaseWait:
		s.record("prepared", t.id, "")
		s.mustLog(wal.Record{Type: wal.RecPrepared, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
		t.phase = phasePrepared
		s.send(m.From, KindAck, t.id, nil)
		s.armTimer(t, s.protoTimeout())
	case phasePrepared:
		s.send(m.From, KindAck, t.id, nil) // duplicate PREPARE: re-ack
	}
}

// onDecision applies a COMMIT/ABORT from the coordinator (or a backup
// coordinator, or a recovered site re-broadcasting).
func (s *shard) onDecision(m transport.Message, o Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok {
		if o == OutcomeCommitted {
			// A commit for a transaction we never saw can only follow a lost
			// VOTE-REQ (we never voted YES, so no correct cohort commits) —
			// or, with auto-forget on, a decision re-sent after we already
			// applied it durably and forgot. Acknowledge so the coordinator
			// can stop, but never build state from it.
			if s.forgetAfter > 0 {
				s.send(m.From, KindDecAck, m.TxID, nil)
			}
			return
		}
		// Abort for an unknown transaction: record it so repeated queries
		// resolve instantly, with no resource attached.
		t = s.tx(m.TxID)
		t.detached = true
	}
	if t.resolved() {
		// Duplicate decision: with auto-forget on, the sender is most
		// likely a coordinator still missing our DEC-ACK — re-acknowledge,
		// and make sure our own grace timer is (re-)armed so the record
		// does not linger here forever (recovered sites restore resolved
		// transactions without one). Presumed (2PC) aborts have no
		// collector: nobody is waiting for an acknowledgement.
		if s.forgetAfter > 0 && !t.peer && !t.coordinator {
			if !(t.phase == phaseAborted && s.presumedAbort(t)) {
				s.send(m.From, KindDecAck, m.TxID, nil)
			}
			if !t.timer.Armed() {
				s.armTimer(t, s.forgetAfter)
			}
		}
		return
	}
	s.resolve(t, o)
	if !ok && s.forgetAfter > 0 && !t.coordinator {
		// The freshly created detached record has no cohort metadata, so
		// resolve's scheduleGC could not route the acknowledgement; the
		// sender of the decision is the one collecting it. Presumed (2PC)
		// aborts are not collected at all.
		if !(o == OutcomeAborted && s.presumedAbort(t)) {
			s.send(m.From, KindDecAck, m.TxID, nil)
		}
	}
}

// handleTimeout drives a transaction whose protocol wait expired. gen is
// the arm generation the fire was collected with: a fire that was already
// in flight when the transaction re-armed (or stopped) its timer carries a
// stale generation and must not drive the new wait.
func (s *shard) handleTimeout(txid string, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[txid]
	if !ok || t.gen != gen {
		return
	}
	if t.resolved() {
		s.gcTimeout(t)
		return
	}
	if t.coordinator {
		s.coordinatorTimeout(t)
		return
	}
	if t.peer {
		s.peerTimeout(t)
		return
	}
	s.participantTimeout(t)
}

// participantTimeout fires for a participant stuck in w or p (or re-fires
// while blocked/recovering). Requires s.mu held.
func (s *shard) participantTimeout(t *txState) {
	if t.phase != phaseWait && t.phase != phasePrepared {
		// A detached site in q only ever arms its timer when a termination
		// attempt touched it (TERM-STATE) or it was engaged as a Paxos
		// acceptor; the timer expiring means the decision broadcast was
		// lost — fall through and chase it.
		if t.phase != phaseInit || (!t.detached && t.px == nil) {
			return
		}
	}
	if t.recovering {
		s.retryRecovery(t)
		return
	}
	if s.kind == PaxosCommit {
		s.paxosParticipantTimeout(t)
		return
	}
	if t.meta.Coordinator != 0 && s.det.Alive(t.meta.Coordinator) {
		// The coordinator is operational, just slow or its message was
		// lost; nudge it for the decision and keep waiting.
		s.send(t.meta.Coordinator, KindDecideReq, t.id, nil)
		s.armTimer(t, s.protoTimeout())
		return
	}
	if s.kind == TwoPhase && t.queried {
		// Close the cooperative collection window: if every operational
		// site answered "uncertain", the transaction is blocked.
		s.evaluateCooperative(t, true)
		if t.resolved() {
			return
		}
	}
	// Coordinator crash detected: invoke the termination protocol (retrying
	// the status query if already blocked — the coordinator may recover).
	s.startTermination(t)
}

// inCohort reports whether site participates in t.
func inCohort(t *txState, site int) bool {
	return t.cohortIdx(site) >= 0
}

// handleCrash reacts to a failure report from the detector, scanning this
// shard's partition. Transactions are visited in sorted ID order so that
// the reactions (and the messages they emit) are reproducible.
func (s *shard) handleCrash(site int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.txns))
	for id := range s.txns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.crashCheckTx(s.txns[id], site)
	}
}

// crashCheckTx applies a crash report to one transaction. Requires s.mu
// held.
func (s *shard) crashCheckTx(t *txState, site int) {
	if t.resolved() {
		return
	}
	if t.coordinator {
		s.coordinatorCrashCheck(t, site)
		return
	}
	if t.recovering {
		return // recovery resolves via DECIDE-REQ retries
	}
	if s.kind == PaxosCommit {
		if t.px != nil && t.px.leading {
			return // the ballot timer supervises quorum loss
		}
		// Coordinator death is the event Paxos Commit exists for: a
		// survivor leads a higher ballot instead of running the cohort
		// termination protocol. Bystander acceptors (detached, still in q)
		// react too — they may be the elected takeover site.
		if t.meta.Coordinator != 0 && !s.det.Alive(t.meta.Coordinator) &&
			(t.phase == phaseWait || t.phase == phasePrepared || t.detached || t.px != nil) {
			s.paxosTakeover(t)
		}
		return
	}
	if t.peer {
		// Any cohort crash impairs the decentralized protocol.
		if inCohort(t, site) && (t.phase == phaseWait || t.phase == phasePrepared) {
			s.startTermination(t)
		}
		return
	}
	if site == t.meta.Coordinator && (t.phase == phaseWait || t.phase == phasePrepared) {
		s.startTermination(t)
		return
	}
	if t.termActive || t.phase == phaseWait || t.phase == phasePrepared {
		// The crash may have taken the backup coordinator down or
		// changed the cohort; re-evaluate termination.
		if t.meta.Coordinator != 0 && !s.det.Alive(t.meta.Coordinator) {
			s.startTermination(t)
		}
	}
}
