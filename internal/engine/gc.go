package engine

import (
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Distributed garbage collection of resolved transactions
// (Config.ForgetAfter). The protocols themselves never say when a site may
// stop remembering an outcome, so without GC every site's transaction table
// and WAL grow without bound — the leak that caps sustained throughput.
//
// The scheme is an acknowledged decision broadcast: each participant sends
// DEC-ACK to the coordinator once its own outcome record is durable, then
// forgets the transaction after a grace period (forcing an end record so
// recovery skips it). The coordinator re-sends the decision until every
// participant — crashed ones included, which re-acknowledge after recovery —
// has acknowledged, and only then forgets. The invariant this keeps: as long
// as any site might still ask about the outcome, some site still knows it.
//
// Decentralized (peer) transactions have no collection point and are never
// auto-forgotten on the normal path.

// scheduleGC begins garbage collection for a freshly resolved transaction.
// Called from resolve, so the DEC-ACK defers behind the outcome record's
// durability like any other send — the ack must not outrun the record it
// acknowledges. Requires s.mu held.
func (s *shard) scheduleGC(t *txState) {
	if s.forgetAfter <= 0 || t.peer {
		return
	}
	if t.phase == phaseAborted && s.presumedAbort(t) {
		// Presumed abort has no settlement: the coordinator keeps no state
		// to re-offer and nobody retains the outcome — the no-trace
		// presumption answers any future inquiry. Just run out the local
		// grace period so waiters can still read the result.
		s.armTimer(t, s.forgetAfter)
		return
	}
	if t.coordinator {
		if s.decAcksComplete(t) {
			s.observeSettle(t) // single-site cohort: nothing to collect
		}
		s.armTimer(t, s.forgetAfter)
		return
	}
	if c := t.meta.Coordinator; c != 0 && c != s.id {
		s.send(c, KindDecAck, t.id, nil)
	}
	s.armTimer(t, s.forgetAfter)
}

// gcTimeout fires for a transaction that is already resolved: a
// participant's grace period expired (forget), or the coordinator re-offers
// the decision to participants that have not acknowledged it yet. Requires
// s.mu held.
func (s *shard) gcTimeout(t *txState) {
	if s.forgetAfter <= 0 || t.peer {
		return
	}
	if !t.coordinator {
		s.forgetLocked(t)
		return
	}
	if t.phase == phaseAborted && s.presumedAbort(t) {
		s.forgetLocked(t) // presumed abort: nothing to re-offer
		return
	}
	if s.decAcksComplete(t) {
		s.forgetLocked(t)
		return
	}
	for i, p := range t.meta.Participants {
		if p != s.id && !t.decAcks.has(i) && !t.readonly.has(i) && s.det.Alive(p) {
			s.sendOutcome(p, t)
		}
	}
	s.armTimer(t, s.forgetAfter)
}

// decAcksComplete reports whether every other participant has acknowledged
// the decision. Crashed participants are NOT waived: they re-acknowledge
// after recovery, and until then the coordinator must keep the outcome.
// Requires s.mu held.
func (s *shard) decAcksComplete(t *txState) bool {
	for i, p := range t.meta.Participants {
		if p != s.id && !t.decAcks.has(i) && !t.readonly.has(i) {
			return false
		}
	}
	return true
}

// onDecAck collects a participant's decision acknowledgement at the
// coordinator; once the whole cohort has acknowledged, nobody will ever ask
// about this transaction again and it can be forgotten.
func (s *shard) onDecAck(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.coordinator || !t.resolved() {
		return
	}
	t.decAcks.add(t.cohortIdx(m.From))
	if s.decAcksComplete(t) {
		s.observeSettle(t)
		// Do not forget inline: give local waiters the same grace period the
		// participants get — an in-process cohort can acknowledge before the
		// client that started the transaction has even asked for the outcome.
		s.armTimer(t, s.forgetAfter)
	}
}

// forgetLocked garbage-collects a resolved transaction: it appends an end
// record (so recovery — and WAL compaction — skip the transaction entirely)
// and drops the in-memory state. The end record is lazy, never forced:
// losing it in a crash merely makes recovery re-read the transaction's
// records and re-run idempotent garbage collection. Requires s.mu held and
// t resolved.
func (s *shard) forgetLocked(t *txState) {
	s.mustLogLazy(wal.Record{Type: wal.RecEnd, TxID: t.id})
	s.stopTimer(t)
	delete(s.txns, t.id)
}
