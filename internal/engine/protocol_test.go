package engine_test

import (
	"strings"
	"testing"

	"nbcommit/internal/engine"
)

// ParseProtocol is the single parse table behind every protocol flag
// (kvnode, loadgen, dst); String() feeds benchmark row keys and log lines.
// The two must round-trip for each protocol family, and the canonical flag
// spellings must keep parsing.
func TestParseProtocolRoundTrip(t *testing.T) {
	kinds := []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit}
	for _, k := range kinds {
		got, err := engine.ParseProtocol(k.String())
		if err != nil {
			t.Fatalf("ParseProtocol(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseProtocol(%q) = %v, want %v", k.String(), got, k)
		}
	}
	for spelling, want := range map[string]engine.ProtocolKind{
		"2pc": engine.TwoPhase, "3pc": engine.ThreePhase, "paxos": engine.PaxosCommit,
		"2PC": engine.TwoPhase, "Paxos": engine.PaxosCommit, "paxos-commit": engine.PaxosCommit,
	} {
		got, err := engine.ParseProtocol(spelling)
		if err != nil || got != want {
			t.Fatalf("ParseProtocol(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	if _, err := engine.ParseProtocol("4pc"); err == nil {
		t.Fatal("ParseProtocol accepted an unknown protocol")
	} else if !strings.Contains(err.Error(), "paxos") {
		t.Fatalf("error does not name the accepted spellings: %v", err)
	}
	// Distinct kinds must keep distinct names: the DST reports, benchmark
	// JSON rows and metrics labels are all keyed by String().
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Fatalf("duplicate String() %q", k.String())
		}
		seen[k.String()] = true
	}
}
