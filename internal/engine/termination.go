package engine

import (
	"nbcommit/internal/election"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Status letters carried in STATUS-RES and DECIDE-RES bodies: the canonical
// state letters plus "r" for a recovering site that refuses the backup role
// and "n" for a site with no trace of the transaction at all. "n" is the
// load-bearing letter of presumed abort: from the 2PC coordinator it means
// the transaction aborted (a commit would have left a forced record); from
// anyone else it only means "no information — exclude me" (the answerer may
// be an ex-read-only member of a committed transaction, or may simply have
// forgotten a settled one).
const (
	statusRecovering = byte('r')
	statusNoTrace    = byte('n')
)

// startTermination runs when a participant detects that the coordinator
// crashed while the transaction is unresolved. For 3PC it is the paper's
// central-site termination protocol: elect a backup coordinator, have it
// decide from its own local state (the decision rule of slide 39), and
// execute the 2-phase backup protocol. For 2PC it is cooperative
// termination, which blocks when every operational site is uncertain.
// Requires s.mu held.
func (s *shard) startTermination(t *txState) {
	if t.resolved() || t.recovering {
		return
	}
	if s.kind == PaxosCommit {
		// Paxos Commit never runs the cohort termination protocol: the
		// decision is replicated across the acceptors, so a takeover ballot
		// replaces the TERM-STATE/TERM-ACK synchronization entirely.
		s.paxosTakeover(t)
		return
	}
	if s.kind == TwoPhase {
		s.startCooperative(t)
		return
	}

	backup, ok := s.electBackup(t)
	if !ok {
		// No operational candidate but ourselves ever exists (we are one);
		// defensive re-arm.
		s.armTimer(t, s.protoTimeout())
		return
	}
	if backup == s.id {
		s.runBackup(t)
		return
	}
	// Nudge the backup (it may be in q and not even know the transaction),
	// then wait for it to drive phases 1 and 2.
	s.send(backup, KindStatusReq, t.id, encodeMeta(t.meta))
	s.armTimer(t, s.protoTimeout())
}

// electBackup picks the backup coordinator: the lowest-numbered operational,
// non-recovering cohort member, excluding the failed coordinator. Under the
// paper's reliable failure reporting every operational site computes the
// same site. Requires s.mu held.
func (s *shard) electBackup(t *txState) (int, bool) {
	var candidates []int
	for _, p := range t.meta.Participants {
		if p != t.meta.Coordinator && !t.excluded[p] {
			candidates = append(candidates, p)
		}
	}
	return election.Deterministic(s.det.Alive, candidates)
}

// runBackup makes this site the backup coordinator. Requires s.mu held.
func (s *shard) runBackup(t *txState) {
	s.record("backup", t.id, "state "+t.phase.String())
	t.termActive = true
	if t.resolved() {
		s.broadcastOutcome(t)
		return
	}
	// Phase 1 of the backup protocol: ask every operational site to make a
	// transition to the backup's local state and wait for acknowledgements.
	// (The paper permits omitting phase 1 when the backup is already in a
	// final state — handled above by broadcasting directly.)
	//
	// The decision in phase 2 must come from the state broadcast HERE, not
	// from whatever t.phase is by then: a stale in-flight PREPARE from the
	// dead coordinator (or a late vote completing a decentralized round) can
	// move this site w -> p mid-round, and deciding commit from the drifted
	// state while the cohort was synchronized to w lets a subsequent backup
	// decide the other way. Snapshot it.
	t.termPhase = t.phase
	t.fenced = true
	t.termAcks = 0
	body := append([]byte{t.phase.letter()}, encodeMeta(t.meta)...)
	for _, p := range t.meta.Participants {
		if p != s.id && p != t.meta.Coordinator && s.det.Alive(p) {
			s.send(p, KindTermState, t.id, body)
		}
	}
	s.armTimer(t, s.protoTimeout())
	s.maybeTermPhase2(t)
}

// letter renders the phase as the canonical state byte.
func (p phase) letter() byte {
	switch p {
	case phaseInit:
		return 'q'
	case phaseWait:
		return 'w'
	case phasePrepared:
		return 'p'
	case phaseCommitted:
		return 'c'
	default:
		return 'a'
	}
}

// onTermState handles phase 1 of the backup protocol at a participant:
// adopt the backup coordinator's local state and acknowledge.
func (s *shard) onTermState(m transport.Message) {
	if len(m.Body) < 1 {
		return
	}
	target := m.Body[0]
	meta, err := decodeMeta(m.Body[1:])
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tx(m.TxID)
	if len(t.meta.Participants) == 0 {
		t.meta = meta
		t.detached = true // we never executed this transaction locally
	}
	if t.recovering {
		s.send(m.From, KindStatusRes, t.id, []byte{statusRecovering})
		return
	}
	if t.resolved() {
		// Inform the backup of the decided outcome instead of acking.
		s.sendOutcome(m.From, t)
		return
	}
	switch {
	case target == 'p' && t.phase == phaseWait:
		s.mustLog(wal.Record{Type: wal.RecPrepared, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
		t.phase = phasePrepared
	case target == 'w' && t.phase == phasePrepared:
		// Retreat from the buffer state: p and w differ only in knowledge,
		// no irreversible action has occurred, so the synchronizing move is
		// safe. The WAL keeps the prepared record; recovery treats both as
		// in-doubt.
		t.phase = phaseWait
	}
	t.fenced = true
	s.send(m.From, KindTermAck, t.id, nil)
	s.armTimer(t, s.protoTimeout())
}

// onTermAck collects phase-1 acknowledgements at the backup coordinator.
func (s *shard) onTermAck(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.termActive {
		return
	}
	t.termAcks.add(t.cohortIdx(m.From))
	s.maybeTermPhase2(t)
}

// maybeTermPhase2 fires phase 2 of the backup protocol once every
// operational cohort site has acknowledged phase 1 (crashed sites are
// waived: they resolve via the recovery protocol). Requires s.mu held.
func (s *shard) maybeTermPhase2(t *txState) {
	if t.resolved() || !t.termActive {
		return
	}
	for i, p := range t.meta.Participants {
		if p == s.id || p == t.meta.Coordinator || t.excluded[p] {
			continue
		}
		if !t.termAcks.has(i) && s.det.Alive(p) {
			return
		}
	}
	// Decision rule for backup coordinators (slide 39): commit iff the
	// concurrency set of the backup's state contains a commit state — for
	// the canonical 3PC, commit from {p, c}, abort from {q, w, a}. Decide
	// from the phase-1 snapshot, which is what the cohort was synchronized
	// to (see runBackup).
	//
	// The deciding backup also claims the settlement collection point (see
	// decideCommit): it keeps the outcome and re-offers it until every
	// cohort member — the dead coordinator included, after it recovers —
	// has acknowledged, so late recovery never meets a cohort that forgot.
	t.coordinator = true
	if t.termPhase == phasePrepared {
		s.resolve(t, OutcomeCommitted)
	} else {
		s.resolve(t, OutcomeAborted)
	}
	s.broadcastOutcome(t)
}

// broadcastOutcome sends the resolved decision to every other cohort member.
// Requires s.mu held and t resolved.
func (s *shard) broadcastOutcome(t *txState) {
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.sendOutcome(p, t)
		}
	}
}

// sendOutcome transmits t's decision to one site. Requires t resolved.
func (s *shard) sendOutcome(to int, t *txState) {
	kind := KindAbort
	if t.phase == phaseCommitted {
		kind = KindCommit
	}
	s.send(to, kind, t.id, nil)
}

// --- 2PC cooperative termination ---

// startCooperative begins (or retries) the 2PC termination attempt: query
// every operational cohort member's state and decide if any response breaks
// the uncertainty. Requires s.mu held.
func (s *shard) startCooperative(t *txState) {
	t.queried = true
	t.statuses = map[int]byte{}
	for _, p := range t.meta.Participants {
		if p != s.id && s.det.Alive(p) {
			s.send(p, KindStatusReq, t.id, encodeMeta(t.meta))
		}
	}
	s.armTimer(t, s.protoTimeout())
}

// onStatusReq answers a state query (2PC cooperative termination) or a
// backup nudge (3PC: the chosen backup may not know the transaction yet).
func (s *shard) onStatusReq(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.txns[m.TxID]; !ok && s.roVotes {
		// No trace of this transaction, and read-only votes are enabled
		// here: we may be an ex-read-only member of a COMMITTED transaction
		// that dropped out after phase 1, so the seal-abort below — which
		// reads no-state as "never voted, abort is safe" — would be
		// unsound. Answer 'n' without building state: it is never decisive
		// at the querier (it excludes us or blocks), so no decision can be
		// assembled from our ignorance. Deployments that keep ReadOnlyVotes
		// off keep the stronger seal-abort answer, where no-trace really
		// does imply never-voted (or a settled, forgettable outcome).
		s.send(m.From, KindStatusRes, m.TxID, []byte{statusNoTrace})
		return
	}
	t := s.tx(m.TxID)
	if len(t.meta.Participants) == 0 && len(m.Body) > 0 {
		if meta, err := decodeMeta(m.Body); err == nil {
			t.meta = meta
			t.detached = true
		}
	}
	switch {
	case t.recovering:
		s.send(m.From, KindStatusRes, t.id, []byte{statusRecovering})
	case t.resolved():
		s.sendOutcome(m.From, t)
	case t.phase == phaseInit:
		// A status query means a termination attempt is under way, and the
		// querier will read q as "this site never voted, so no site can have
		// committed" — and abort. That reading is only sound if it stays
		// true: seal the state by unilaterally aborting from q now, so a
		// late-arriving transaction distribution cannot revive the vote and
		// assemble a commit behind the termination decision.
		s.record("seal-abort", t.id, "status query while in q")
		if t.coordinator {
			s.decideAbort(t) // broadcasts, reaching the querier too
			return
		}
		s.resolve(t, OutcomeAborted)
		s.sendOutcome(m.From, t)
	default:
		s.send(m.From, KindStatusRes, t.id, []byte{t.phase.letter()})
		// A 3PC backup learns of its role through this nudge. For the
		// central paradigm that requires the coordinator to be down; in the
		// decentralized paradigm (Coordinator == 0) the nudge itself is the
		// signal.
		if s.kind == ThreePhase && len(t.meta.Participants) > 0 &&
			(t.meta.Coordinator == 0 || !s.det.Alive(t.meta.Coordinator)) {
			if backup, ok := s.electBackup(t); ok && backup == s.id {
				s.runBackup(t)
			}
		}
	}
}

// onStatusRes folds a cohort member's state into the 2PC cooperative
// decision (or, for 3PC, handles a "recovering" refusal of the backup
// role).
func (s *shard) onStatusRes(m transport.Message) {
	if len(m.Body) < 1 {
		return
	}
	st := m.Body[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || t.resolved() {
		return
	}
	if st == statusNoTrace {
		// From the 2PC coordinator, no trace IS the verdict: it never
		// forced a commit record, so no COMMIT was ever sent — presume
		// abort. From anyone else it carries no information; exclude the
		// site from backup candidacy and fold it into the cooperative
		// tally as an answered-but-uninformative status.
		if s.kind == TwoPhase && !t.peer && t.meta.Coordinator != 0 && m.From == t.meta.Coordinator {
			s.record("presume-abort", t.id, "coordinator has no trace")
			t.recovering = false
			s.resolve(t, OutcomeAborted)
			s.broadcastOutcome(t)
			return
		}
		if t.excluded == nil {
			t.excluded = map[int]bool{}
		}
		t.excluded[m.From] = true
		if s.kind == ThreePhase {
			s.startTermination(t) // recompute the backup without it
			return
		}
		if s.kind == TwoPhase && t.queried {
			t.statuses[m.From] = st
			s.evaluateCooperative(t, false)
		}
		return
	}
	if st == statusRecovering {
		if t.excluded == nil {
			t.excluded = map[int]bool{}
		}
		t.excluded[m.From] = true
		if s.kind == ThreePhase {
			s.startTermination(t) // recompute the backup without it
		}
		return
	}
	if s.kind != TwoPhase || !t.queried {
		return
	}
	t.statuses[m.From] = st
	s.evaluateCooperative(t, false)
}

// evaluateCooperative applies the cooperative termination rule. final marks
// the end of a collection window (timer expiry): if every operational site
// has answered and all are uncertain, the transaction is blocked. Requires
// s.mu held.
func (s *shard) evaluateCooperative(t *txState, final bool) {
	if t.resolved() {
		return
	}
	anyUnknown := false
	for _, p := range t.meta.Participants {
		if p == s.id || !s.det.Alive(p) {
			continue
		}
		st, ok := t.statuses[p]
		if !ok {
			anyUnknown = true
			continue
		}
		switch st {
		case 'c':
			// Should arrive as a COMMIT message, but accept either way.
			s.resolve(t, OutcomeCommitted)
			s.broadcastOutcome(t)
			return
		case 'a':
			s.resolve(t, OutcomeAborted)
			s.broadcastOutcome(t)
			return
		case 'q':
			// A site that has not voted: the coordinator cannot have
			// committed, so abort is safe.
			s.resolve(t, OutcomeAborted)
			s.broadcastOutcome(t)
			return
		case statusRecovering:
			anyUnknown = true
		case statusNoTrace:
			// Answered, but uninformative: an ex-read-only member or a site
			// that already forgot. Not counted as unknown — a collection
			// window where everyone answered w/'n' still closes blocked.
		}
	}
	if final && !anyUnknown {
		// Every operational site is in w: this is the 2PC blocking
		// situation. Stay armed — only the coordinator's recovery can
		// resolve the transaction.
		if !t.blocked {
			s.record("blocked", t.id, "all operational sites uncertain")
		}
		t.blocked = true
		s.armTimer(t, s.protoTimeout())
	}
}
