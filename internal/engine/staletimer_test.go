package engine

// Internal regression test for the stale-timer race: before the timer-wheel
// generations, armTimer stopped the old clock.Timer but a timeout event whose
// callback had already fired stayed deliverable, and handleTimeout would run
// it against the re-armed transaction. The wheel hands every fire the
// generation it was armed with, and handleTimeout rejects mismatches. This
// test injects exactly that interleaving — a phase transition re-arms the
// timer while the previous arm's fire is still "in flight" — and requires
// the stale fire to be a no-op.

import (
	"testing"
	"time"

	"nbcommit/internal/clock"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

type nopResource struct{}

func (nopResource) Prepare(txid string) ([]byte, error) { return []byte("r:" + txid), nil }
func (nopResource) Commit(string, []byte) error         { return nil }
func (nopResource) Abort(string) error                  { return nil }
func (nopResource) ApplyRedo([]byte) error              { return nil }

// deadDetector reports every peer as crashed, so any genuine participant
// timeout immediately invokes the termination protocol.
type deadDetector struct{ self int }

func (d deadDetector) Alive(site int) bool  { return site == d.self }
func (d deadDetector) Watch(func(site int)) {}

func TestStaleTimerGenerationRejected(t *testing.T) {
	clk := clock.NewVirtual()
	net := transport.NewNetwork()
	s, err := New(Config{
		ID:            2,
		Endpoint:      net.Endpoint(2),
		Log:           wal.NewMemoryLog(),
		Resource:      nopResource{},
		Detector:      deadDetector{self: 2},
		Protocol:      ThreePhase,
		Timeout:       50 * time.Millisecond,
		Clock:         clk,
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	// Participant receives the transaction and votes YES: phase w, timer
	// armed (generation G).
	meta := TxMeta{Coordinator: 1, Participants: []int{1, 2}}
	s.Deliver(transport.Message{From: 1, To: 2, Kind: KindVoteReq, TxID: "tx1", Body: encodeMeta(meta)})
	sh := s.shardFor("tx1")
	sh.mu.Lock()
	tx := sh.txns["tx1"]
	staleGen := tx.gen
	if tx.phase != phaseWait || staleGen == 0 {
		sh.mu.Unlock()
		t.Fatalf("setup: phase=%v gen=%d, want w with armed timer", tx.phase, staleGen)
	}
	sh.mu.Unlock()

	// Phase transition w -> p re-arms the timer: the pending fire for
	// generation G is now stale.
	s.Deliver(transport.Message{From: 1, To: 2, Kind: KindPrepare, TxID: "tx1"})
	sh.mu.Lock()
	if tx.phase != phasePrepared {
		sh.mu.Unlock()
		t.Fatalf("setup: phase=%v, want p after PREPARE", tx.phase)
	}
	if tx.gen == staleGen {
		sh.mu.Unlock()
		t.Fatal("phase transition did not advance the timer generation")
	}
	liveGen := tx.gen
	sh.mu.Unlock()

	// The stale fire arrives late. The coordinator is reported dead, so a
	// timeout taken at face value would run the termination protocol and —
	// this site being the only operational cohort member in p — commit the
	// transaction on the spot. The generation check must make it a no-op.
	sh.handleTimeout("tx1", staleGen)
	sh.mu.Lock()
	phase := tx.phase
	sh.mu.Unlock()
	if phase != phasePrepared {
		t.Fatalf("stale timeout moved the transaction: phase=%v, want p", phase)
	}

	// The current generation's fire is honored: termination runs and, from
	// the buffer state with every peer dead, decides commit.
	sh.handleTimeout("tx1", liveGen)
	if o, _ := s.Outcome("tx1"); o != OutcomeCommitted {
		t.Fatalf("live timeout ignored: outcome=%v, want committed", o)
	}
}

// A timeout fire collected just before resolve must not re-drive a resolved
// transaction's GC timer either — resolve bumps the generation when it stops
// the timer.
func TestStaleTimerAfterResolve(t *testing.T) {
	clk := clock.NewVirtual()
	net := transport.NewNetwork()
	s, err := New(Config{
		ID:            2,
		Endpoint:      net.Endpoint(2),
		Log:           wal.NewMemoryLog(),
		Resource:      nopResource{},
		Detector:      deadDetector{self: 2},
		Protocol:      TwoPhase,
		Timeout:       50 * time.Millisecond,
		ForgetAfter:   time.Second,
		Clock:         clk,
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	meta := TxMeta{Coordinator: 1, Participants: []int{1, 2}}
	s.Deliver(transport.Message{From: 1, To: 2, Kind: KindVoteReq, TxID: "tx2", Body: encodeMeta(meta)})
	sh := s.shardFor("tx2")
	sh.mu.Lock()
	tx := sh.txns["tx2"]
	staleGen := tx.gen
	sh.mu.Unlock()

	// The decision lands; resolve stops the protocol timer and arms the GC
	// grace timer under a new generation.
	s.Deliver(transport.Message{From: 1, To: 2, Kind: KindCommit, TxID: "tx2"})

	// A stale protocol-timeout fire must not run gcTimeout: forgetting now
	// would cut the grace period the participant owes late queriers.
	sh.handleTimeout("tx2", staleGen)
	sh.mu.Lock()
	_, known := sh.txns["tx2"]
	sh.mu.Unlock()
	if !known {
		t.Fatal("stale timeout garbage-collected the transaction early")
	}
}
