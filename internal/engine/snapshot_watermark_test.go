package engine

// Engine-level coverage for snapshot-vs-writer interleavings: a snapshot
// taken between Prepare and decision-apply must read below the in-doubt
// watermark and never return the prepared-but-undecided value. The test
// drives a lone participant directly with Deliver so the window between the
// vote and the decision stays open for as long as the test wants.

import (
	"errors"
	"testing"
	"time"

	"nbcommit/internal/failure"
	"nbcommit/internal/kv"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// kvResource adapts kv.Store to the engine's Resource (the same shape
// internal/dtx uses), so the test exercises a real multi-version store.
type kvResource struct{ s *kv.Store }

func (r kvResource) Prepare(txid string) ([]byte, error) {
	ops, err := r.s.Prepare(txid)
	if err != nil {
		return nil, err
	}
	return kv.EncodeWrites(ops)
}

func (r kvResource) Commit(txid string, redo []byte) error { return r.s.Commit(txid) }
func (r kvResource) Abort(txid string) error               { return r.s.Abort(txid) }

func (r kvResource) ApplyRedo(redo []byte) error {
	ops, err := kv.DecodeWrites(redo)
	if err != nil {
		return err
	}
	r.s.ApplyRedo(ops)
	return nil
}

func (r kvResource) CommitTS() uint64  { return r.s.CommitTS() }
func (r kvResource) Watermark() uint64 { return r.s.Watermark() }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func newInDoubtParticipant(t *testing.T, kind ProtocolKind) (*Site, *kv.Store) {
	t.Helper()
	net := transport.NewNetwork()
	store := kv.NewStore(kv.Options{LockTimeout: time.Second})
	store.ApplyRedo([]kv.WriteOp{{Key: "a", Value: "old"}})
	s, err := New(Config{
		ID:       1,
		Endpoint: net.Endpoint(1),
		Log:      wal.NewMemoryLog(),
		Resource: kvResource{store},
		Detector: failure.NewOracle(net),
		Protocol: kind,
		Timeout:  time.Minute, // keep termination out of the in-doubt window
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	return s, store
}

func deliverVoteReq(s *Site, txid string) {
	s.Deliver(transport.Message{
		From: 9, To: 1, Kind: KindVoteReq, TxID: txid,
		Body: encodeMeta(TxMeta{Coordinator: 9, Participants: []int{9, 1}}),
	})
}

func TestSnapshotReadsBelowWatermarkWhileInDoubt(t *testing.T) {
	s, store := newInDoubtParticipant(t, TwoPhase)

	// Stage the writer's mutation, then let the engine prepare it. The
	// coordinator (site 9) never answers, so the transaction sits in the
	// in-doubt window indefinitely.
	if err := store.Begin("w"); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("w", "a", "new"); err != nil {
		t.Fatal(err)
	}
	deliverVoteReq(s, "w")
	waitFor(t, "prepare to reserve the watermark", func() bool { return store.Watermark() != 0 })

	// The published view: commit ts from the seed apply, watermark above it.
	cts, wm, ok := s.ResourceVersion()
	if !ok {
		t.Fatal("kv-backed site does not report as versioned")
	}
	if wm == 0 || cts >= wm {
		t.Fatalf("published commit ts %d, watermark %d: apply point not below the in-doubt reservation", cts, wm)
	}

	// A snapshot inside the window reads strictly below the watermark and
	// sees the old value — never the prepared-but-undecided write.
	v, ts, err := store.SnapshotGet("a")
	if err != nil || v != "old" {
		t.Fatalf("snapshot during in-doubt window = %q, %v", v, err)
	}
	if ts >= wm {
		t.Fatalf("snapshot ts %d not below watermark %d", ts, wm)
	}

	// Decision applies: the watermark clears and the write becomes stable.
	s.Deliver(transport.Message{From: 9, To: 1, Kind: KindCommit, TxID: "w"})
	waitFor(t, "decision apply", func() bool { return store.Watermark() == 0 })
	if v, _, err := store.SnapshotGet("a"); err != nil || v != "new" {
		t.Fatalf("snapshot after decision-apply = %q, %v", v, err)
	}
	if cts2, _, _ := s.ResourceVersion(); cts2 <= cts {
		t.Fatalf("commit ts not published at apply: %d then %d", cts, cts2)
	}
}

func TestSnapshotUnaffectedByAbortedInDoubt(t *testing.T) {
	s, store := newInDoubtParticipant(t, TwoPhase)

	if err := store.Begin("w"); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("w", "a", "never"); err != nil {
		t.Fatal(err)
	}
	deliverVoteReq(s, "w")
	waitFor(t, "prepare to reserve the watermark", func() bool { return store.Watermark() != 0 })

	s.Deliver(transport.Message{From: 9, To: 1, Kind: KindAbort, TxID: "w"})
	waitFor(t, "abort to clear the watermark", func() bool { return store.Watermark() == 0 })
	if v, _, err := store.SnapshotGet("a"); err != nil || v != "old" {
		t.Fatalf("snapshot after abort = %q, %v", v, err)
	}
	if _, ok := store.Read("a"); !ok {
		t.Fatal("committed state lost across the aborted window")
	}
}

// Sanity for the error contract the fast path depends on: a snapshot read
// never waits on writer locks, even while the writer holds them exclusively.
func TestSnapshotReadNeverBlocksOnLocks(t *testing.T) {
	_, store := newInDoubtParticipant(t, TwoPhase)
	if err := store.Begin("w"); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("w", "a", "new"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, _, err := store.SnapshotGet("a"); err != nil || v != "old" {
			t.Errorf("snapshot under exclusive lock = %q, %v", v, err)
		}
		if _, err := store.ReadAt(store.StableTS(), "missing"); !errors.Is(err, kv.ErrNotFound) {
			t.Errorf("missing key: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("snapshot read blocked behind a writer lock")
	}
}
