package engine_test

import (
	"fmt"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/transport"
)

func TestPeerThreePCCommit(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	if err := c.sites[2].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3, 4)
	for _, id := range c.ids {
		if !c.res[id].didCommit("t1") {
			t.Fatalf("site %d resource did not commit", id)
		}
	}
}

func TestPeerTwoPCCommit(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)
}

func TestPeerUnilateralAbort(t *testing.T) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newCluster(t, kind, 3)
			c.res[2].refuse("t1")
			if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
				t.Fatal(err)
			}
			c.expect("t1", engine.OutcomeAborted, 1, 2, 3)
		})
	}
}

func TestPeerDuplicateBeginRejected(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 2)
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	if err := c.sites[1].BeginPeer("t1", c.ids); err == nil {
		t.Fatal("duplicate BeginPeer accepted")
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2)
}

// TestPeerThreePCTerminationAbort: a peer crashes before voting; the
// survivors cannot wait for its vote and the termination protocol aborts at
// every operational site — no blocking.
func TestPeerThreePCTerminationAbort(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 4)
	// Site 4's votes never leave it: equivalent to crashing pre-broadcast.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 4 && (m.Kind == engine.KindDYes || m.Kind == engine.KindDNo)
	})
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(1, "t1", "w")
	c.waitPhase(2, "t1", "w")
	c.waitPhase(3, "t1", "w")
	c.crash(4)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeAborted, 1, 2, 3)
}

// TestPeerThreePCTerminationCommit: a peer crashes after the vote round but
// its prepare broadcast is lost; the surviving backup is in p, so the
// termination protocol commits everywhere.
func TestPeerThreePCTerminationCommit(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 3 && m.Kind == engine.KindDPrepare
	})
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(1, "t1", "p")
	c.waitPhase(2, "t1", "p")
	// Site 3 receives everyone else's prepares plus its own and commits by
	// itself; its outgoing prepares are lost, leaving 1 and 2 in p.
	c.expect("t1", engine.OutcomeCommitted, 3)
	c.crash(3)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 1, 2)
}

// TestPeerTwoPCBlocks: a peer crashes before anyone hears its vote; under
// decentralized 2PC every survivor voted YES and is uncertain — blocked.
func TestPeerTwoPCBlocks(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 3 && (m.Kind == engine.KindDYes || m.Kind == engine.KindDNo)
	})
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.waitPhase(1, "t1", "w")
	c.waitPhase(2, "t1", "w")
	c.crash(3)
	c.net.SetDropFunc(nil)
	c.waitBlocked(1, "t1")
	c.waitBlocked(2, "t1")
}

// TestPeerTwoPCUnblocksWhenWitnessDecides: as above, but the crashed peer's
// vote reached one survivor, which completes its round, commits, and is
// discovered by the blocked site's retried status query.
func TestPeerTwoPCUnblocksWhenWitnessDecides(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 3)
	// Site 3's vote reaches site 1 but not site 2.
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.From == 3 && m.To == 2 && m.Kind == engine.KindDYes
	})
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	// Site 1 has the full round and commits.
	c.expect("t1", engine.OutcomeCommitted, 1)
	c.crash(3)
	c.net.SetDropFunc(nil)
	// Site 2's cooperative termination finds site 1 committed.
	c.expect("t1", engine.OutcomeCommitted, 2)
}

// TestPeerRecovery: a peer crashes in doubt (voted YES, prepare lost);
// the survivors commit through termination; the recovered peer learns the
// outcome and applies its redo.
func TestPeerRecovery(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	c.net.SetDropFunc(func(m transport.Message) bool {
		return m.To == 3 && m.Kind == engine.KindDPrepare
	})
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	// Site 3 completes the vote round and enters p itself (it broadcasts its
	// own prepare), but never sees the others' prepares.
	c.waitPhase(3, "t1", "p")
	c.crash(3)
	c.net.SetDropFunc(nil)
	c.expect("t1", engine.OutcomeCommitted, 1, 2)

	c.recoverSite(3)
	c.expect("t1", engine.OutcomeCommitted, 3)
	if !c.res[3].didCommit("t1") {
		t.Fatal("recovered peer did not apply the redo image")
	}
}

// TestPeerRetransmission: with a lossy network that drops 30% of first
// deliveries, retransmission still completes the rounds.
func TestPeerRetransmission(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	dropped := map[string]bool{}
	c.net.SetDropFunc(func(m transport.Message) bool {
		if m.Kind != engine.KindDYes && m.Kind != engine.KindDPrepare {
			return false
		}
		key := fmt.Sprintf("%d-%d-%s", m.From, m.To, m.Kind)
		if !dropped[key] {
			dropped[key] = true
			return true // lose the first copy of every round message
		}
		return false
	})
	if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
		t.Fatal(err)
	}
	c.expect("t1", engine.OutcomeCommitted, 1, 2, 3)
}

// TestPeerNoMixedOutcomesUnderCrashes: randomized crash/drop schedules never
// yield mixed outcomes in the decentralized 3PC.
func TestPeerNoMixedOutcomesUnderCrashes(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		c := newCluster(t, engine.ThreePhase, 4)
		drop := seed
		c.net.SetDropFunc(func(m transport.Message) bool {
			return m.From == 4 && (int(m.Kind[0])+m.To+drop)%3 == 0 && m.Kind != engine.KindDXact
		})
		if err := c.sites[1].BeginPeer("t1", c.ids); err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
		c.crash(4)
		c.net.SetDropFunc(nil)
		outcomes := map[engine.Outcome]bool{}
		for _, id := range []int{1, 2, 3} {
			o, err := c.sites[id].WaitOutcome("t1", 5*time.Second)
			if err != nil {
				t.Fatalf("seed %d site %d: %v", seed, id, err)
			}
			outcomes[o] = true
		}
		if outcomes[engine.OutcomeCommitted] && outcomes[engine.OutcomeAborted] {
			t.Fatalf("seed %d: mixed outcomes", seed)
		}
		for _, s := range c.sites {
			s.Stop()
		}
	}
}
