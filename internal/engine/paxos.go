package engine

import (
	"fmt"
	"math/bits"

	"nbcommit/internal/paxos"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit") on the
// engine substrate. One Paxos consensus instance per cohort member's vote;
// the cohort members themselves are the 2F+1 acceptors (N = 2F+1 for an
// N-site cohort), so the decision is replicated and the death of the
// coordinator — or of any F sites — never invokes a termination protocol:
// a surviving site simply leads a higher ballot, learns what the acceptors
// durably hold, and completes the decision.
//
// Fault-free flow (ballot 0, the phase-1a skip: every acceptor is born
// having promised ballot 0, and instance i's ballot-0 proposer is
// participant i itself):
//
//	coordinator          participant i           other acceptors
//	  │── VOTE-REQ ────────►│                        │
//	  │                     │ prepare, force         │
//	  │                     │ vote-yes record        │
//	  │                     │ (= accept (0,i,'y')    │
//	  │                     │  at its own acceptor)  │
//	  │◄─── PX-2B(0,i,'y') ─┤── PX-2A(0,i,'y') ─────►│ force accept record
//	  │◄────────────────────┼──── PX-2B(0,i,'y') ────┤
//	  │ majority per instance → all 'y' → commit     │
//	  │── COMMIT ──────────►│                        │
//
// The coordinator is itself an acceptor: its own vote-yes record doubles as
// the ballot-0 accept of its instance, and its co-located acceptor's 2b
// messages are delivered inline. The decision needs only a majority of 2b
// messages per instance, so with N = 3 the coordinator decides from its own
// acceptor plus each instance owner's — two message delays after VOTE-REQ,
// the same as 2PC and two fewer than 3PC.
//
// Abort safety without consensus: a decision to abort is safe exactly when
// commit is provably unreachable, because every leader that completes the
// decision by the chosen-value rule then also decides abort. Commit is
// unreachable whenever some instance can never choose 'y', which holds when
//   - the instance's owner voted NO (it is the only ballot-0 proposer of
//     its instance and never proposes 'y'; recovery leaders propose 'y'
//     only when merging an accepted 'y', which then cannot exist), or
//   - 'n' was chosen for the instance (consensus chooses one value).
// A leader that merely PROPOSES 'n' (it saw the instance free in phase 1)
// must still wait for 'n' to be chosen: a competing leader may legitimately
// learn a surviving ballot-0 'y' that this leader's quorum missed.
//
// Ballot escalation: a leader timeout, an observed coordinator crash, or a
// PX-NUDGE at the deterministically elected takeover site starts phase 1 at
// a ballot above everything seen, with the site's cohort index in the low
// bits so concurrent leaders never collide on a number. Phase 1 merges the
// highest accepted value per instance from a majority of 1b replies;
// phase 2 re-proposes merged values ('n' for free instances).
//
// Durability: acceptors force RecPaxosPromise / RecPaxosAccept records
// through the group-commit WAL before their 1b/2b replies leave the site
// (the engine's standard force-before-act discipline — replies are staged
// behind the record's batch), and recovery rebuilds acceptor state by
// replaying those records in log order.

// paxosTx is a site's Paxos Commit state for one transaction: its acceptor
// half (always present) and, when this site drives the decision, the leader
// half.
type paxosTx struct {
	acc *paxos.Acceptor // durable via RecVoteYes/RecPaxosPromise/RecPaxosAccept

	leading  bool             // this site currently drives the decision
	ballot   paxos.Ballot     // ballot we lead at (0: coordinator fast path)
	proms    cohortSet        // phase 1: acceptors that promised our ballot
	merged   []paxos.Accepted // phase 1: highest accepted value per instance
	proposed bool             // phase 2 underway for our ballot
	tallies  []paxos.Tally    // per-instance 2b counts
	chosen   []byte           // per-instance chosen value (ValNone until majority)
	maxSeen  paxos.Ballot     // highest ballot observed anywhere (for Next)
}

// ensurePaxos attaches (creating if needed) the transaction's Paxos state.
// The cohort must be known. Requires s.mu held.
func (s *shard) ensurePaxos(t *txState) *paxosTx {
	if t.px == nil {
		n := len(t.meta.Participants)
		t.px = &paxosTx{
			acc:     paxos.NewAcceptor(n),
			tallies: make([]paxos.Tally, n),
			chosen:  make([]byte, n),
		}
	}
	return t.px
}

// paxosLeaderOf resolves a ballot's leader site: ballot 0 belongs to the
// coordinator (each participant proposes only its own instance under it);
// higher ballots carry the leader's cohort index.
func (s *shard) paxosLeaderOf(t *txState, bal paxos.Ballot) int {
	if bal == 0 {
		return t.meta.Coordinator
	}
	if i := bal.Leader(); i < len(t.meta.Participants) {
		return t.meta.Participants[i]
	}
	return t.meta.Coordinator
}

// adoptPaxosMeta installs cohort metadata carried by a Paxos message on a
// transaction this site has never executed (its VOTE-REQ was lost, or it is
// being engaged purely as an acceptor). Requires s.mu held.
func adoptPaxosMeta(t *txState, metaBytes []byte) bool {
	if len(t.meta.Participants) > 0 {
		return true
	}
	meta, err := decodeMeta(metaBytes)
	if err != nil || len(meta.Participants) == 0 || len(meta.Participants) > maxCohort {
		return false
	}
	t.meta = meta
	t.detached = true
	return true
}

// paxosOwnVote finishes the coordinator's local prepare under Paxos Commit:
// the vote-yes record doubles as the co-located acceptor's ballot-0 accept
// of the coordinator's own instance, the instance is proposed to the other
// acceptors, and the coordinator starts tallying 2b messages as the
// ballot-0 leader. Requires s.mu held.
func (s *shard) paxosOwnVote(t *txState, redo []byte) {
	px := s.ensurePaxos(t)
	t.redo = redo
	t.ownYes = true
	if px.acc.Promised > 0 {
		// A recovery ballot already outbid the fast path (we were slow or
		// partitioned); the consensus in flight decides. Keep supervising.
		s.armTimer(t, s.protoTimeout())
		return
	}
	me := t.cohortIdx(s.id)
	s.record("vote-yes", t.id, "")
	s.mustLog(wal.Record{Type: wal.RecVoteYes, TxID: t.id, Payload: encodeVotePayload(t.meta, redo)})
	px.acc.Accept(0, me, paxos.ValYes)
	px.leading, px.ballot = true, 0
	body := paxos.EncodeP2a(0, me, paxos.ValYes, encodeMeta(t.meta))
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindPx2a, t.id, body)
		}
	}
	s.armTimer(t, s.protoTimeout())
	// The co-located acceptor's 2b, delivered inline (may already decide a
	// single-site cohort).
	s.paxos2b(t, 0, me, paxos.ValYes, s.id)
}

// paxosVoteYes finishes a participant's local prepare under Paxos Commit:
// force the vote-yes record (the ballot-0 self-accept of this site's own
// instance), send the co-located acceptor's 2b to the ballot-0 leader, and
// propose the instance to the remaining acceptors. Requires s.mu held.
func (s *shard) paxosVoteYes(t *txState, redo []byte) {
	px := s.ensurePaxos(t)
	// The resource holds this transaction prepared from here on; the
	// eventual decision must reach it even if this site was first engaged
	// as a detached acceptor.
	t.detached = false
	if px.acc.Promised > 0 {
		// A recovery ballot outbid our unborn ballot-0 proposal: the
		// self-accept is no longer permitted, so the vote is moot. The
		// consensus in flight can only choose 'n' for our instance (nobody
		// ever proposed 'y' for it); wait for the abort.
		s.armTimer(t, s.protoTimeout())
		return
	}
	t.redo = redo
	me := t.cohortIdx(s.id)
	s.record("vote-yes", t.id, "")
	s.mustLog(wal.Record{Type: wal.RecVoteYes, TxID: t.id, Payload: encodeVotePayload(t.meta, redo)})
	px.acc.Accept(0, me, paxos.ValYes)
	t.phase = phaseWait
	s.send(t.meta.Coordinator, KindPx2b, t.id, paxos.EncodeP2b(0, me, paxos.ValYes))
	// Every other cohort member — the ballot-0 leader included, whose
	// acceptor learns the instance through its PX-2A copy — accepts and
	// replies 2b to the leader.
	body := paxos.EncodeP2a(0, me, paxos.ValYes, encodeMeta(t.meta))
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindPx2a, t.id, body)
		}
	}
	s.armTimer(t, s.protoTimeout())
}

// onPx1a answers a recovery leader's phase-1a at this site's acceptor:
// promise the ballot (forced to the WAL before the reply leaves) and report
// everything accepted so far.
func (s *shard) onPx1a(m transport.Message) {
	bal, metaBytes, err := paxos.DecodeP1a(m.Body)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tx(m.TxID)
	if !adoptPaxosMeta(t, metaBytes) {
		return
	}
	if t.resolved() {
		s.sendOutcome(m.From, t)
		return
	}
	px := s.ensurePaxos(t)
	if prev := px.acc.Promised; px.acc.Promise(bal) && bal > prev {
		s.record("px-promise", t.id, fmt.Sprintf("ballot %d", bal))
		s.mustLog(wal.Record{Type: wal.RecPaxosPromise, TxID: t.id, Payload: m.Body})
	}
	s.send(m.From, KindPx1b, t.id, paxos.EncodeP1b(px.acc.Promised, px.acc.Accepts))
	if !t.timer.Armed() {
		s.armTimer(t, s.protoTimeout())
	}
}

// onPx1b folds an acceptor's phase-1b into this leader's merge; a majority
// of promises starts phase 2.
func (s *shard) onPx1b(m transport.Message) {
	promised, accepts, err := paxos.DecodeP1b(m.Body)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || t.resolved() || t.px == nil || !t.px.leading {
		return
	}
	px := t.px
	if promised > px.ballot {
		// Outbid: a higher leader is active. Stand down and supervise —
		// the timer re-elects (and escalates) if it stalls.
		px.maxSeen = promised
		px.leading = false
		s.armTimer(t, s.protoTimeout())
		return
	}
	if promised < px.ballot {
		return // stale reply from an earlier round
	}
	idx := t.cohortIdx(m.From)
	if idx < 0 {
		return
	}
	paxos.Merge(px.merged, accepts)
	px.proms.add(idx)
	if !px.proposed && bits.OnesCount64(uint64(px.proms)) >= paxos.Majority(len(t.meta.Participants)) {
		s.paxosPropose(t)
	}
}

// paxosPropose runs phase 2 for every instance at this leader's ballot:
// re-propose the merged value where one survives, 'n' where the instance is
// free (its ballot-0 'y' can no longer reach a majority once our promise
// quorum saw it free). Requires s.mu held.
func (s *shard) paxosPropose(t *txState) {
	px := t.px
	px.proposed = true
	meta := encodeMeta(t.meta)
	s.record("px-propose", t.id, fmt.Sprintf("ballot %d", px.ballot))
	for i := range t.meta.Participants {
		val := paxos.ValAbort
		if px.merged[i].Val == paxos.ValYes {
			val = paxos.ValYes
		}
		// Self-accept first, forced to the WAL like any acceptor's.
		if !px.acc.Accept(px.ballot, i, val) {
			// Our own acceptor promised past us mid-round: stand down.
			px.maxSeen = px.acc.Promised
			px.leading = false
			s.armTimer(t, s.protoTimeout())
			return
		}
		body := paxos.EncodeP2a(px.ballot, i, val, meta)
		s.mustLog(wal.Record{Type: wal.RecPaxosAccept, TxID: t.id, Payload: body})
		for _, p := range t.meta.Participants {
			if p != s.id {
				s.send(p, KindPx2a, t.id, body)
			}
		}
		s.paxos2b(t, px.ballot, i, val, s.id)
		if t.resolved() {
			return
		}
	}
	s.armTimer(t, s.protoTimeout())
}

// onPx2a accepts (or rejects) a proposed instance value at this site's
// acceptor, forcing the accept record before the 2b reply leaves.
func (s *shard) onPx2a(m transport.Message) {
	bal, inst, val, metaBytes, err := paxos.DecodeP2a(m.Body)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tx(m.TxID)
	if !adoptPaxosMeta(t, metaBytes) {
		return
	}
	if t.resolved() {
		s.sendOutcome(m.From, t)
		return
	}
	px := s.ensurePaxos(t)
	if inst >= len(px.acc.Accepts) {
		return
	}
	if !px.acc.Accept(bal, inst, val) {
		// Our promise outranks the proposal: tell the proposer what it
		// must outbid.
		s.send(m.From, KindPx2b, t.id, paxos.EncodeP2b(px.acc.Promised, inst, paxos.ValNone))
		return
	}
	s.mustLog(wal.Record{Type: wal.RecPaxosAccept, TxID: t.id, Payload: m.Body})
	if leader := s.paxosLeaderOf(t, bal); leader == s.id {
		s.paxos2b(t, bal, inst, val, s.id)
	} else {
		s.send(leader, KindPx2b, t.id, paxos.EncodeP2b(bal, inst, val))
	}
	if !t.resolved() && !t.timer.Armed() {
		s.armTimer(t, s.protoTimeout())
	}
}

// onPx2b tallies an acceptor's 2b at the ballot leader.
func (s *shard) onPx2b(m transport.Message) {
	bal, inst, val, err := paxos.DecodeP2b(m.Body)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || t.resolved() || len(t.meta.Participants) == 0 {
		return
	}
	s.ensurePaxos(t)
	s.paxos2b(t, bal, inst, val, m.From)
}

// paxos2b folds one acceptor's 2b (possibly this site's own, delivered
// inline) into the tallies; a majority chooses the instance's value, and
// chosen values decide the transaction. Requires s.mu held.
func (s *shard) paxos2b(t *txState, bal paxos.Ballot, inst int, val byte, from int) {
	px := t.px
	if px == nil || t.resolved() || inst >= len(px.tallies) {
		return
	}
	if val == paxos.ValNone {
		// Nack: an acceptor's promise outranks the ballot we proposed at.
		if bal > px.maxSeen {
			px.maxSeen = bal
		}
		if px.leading && bal > px.ballot {
			px.leading = false
			s.armTimer(t, s.protoTimeout())
		}
		return
	}
	if bal > px.maxSeen {
		px.maxSeen = bal
	}
	if val == paxos.ValAbort && bal == 0 {
		// Ballot-0 'n' comes only from the instance owner's unilateral NO;
		// the owner never proposes 'y', so commit is unreachable and abort
		// is safe without waiting for the value to be chosen.
		s.record("px-abort", t.id, "owner voted no")
		s.decideAbort(t)
		return
	}
	if px.chosen[inst] != paxos.ValNone {
		return
	}
	if px.tallies[inst].Add(bal, val, t.cohortIdx(from)) >= paxos.Majority(len(t.meta.Participants)) {
		px.chosen[inst] = px.tallies[inst].Val
		s.maybeDecidePaxos(t)
	}
}

// maybeDecidePaxos completes the decision from chosen instance values:
// abort the moment any instance chooses 'n' (consensus forecloses 'y' for
// it, so commit is unreachable), commit when every instance chose 'y'.
// Requires s.mu held.
func (s *shard) maybeDecidePaxos(t *txState) {
	px := t.px
	all := true
	for i := range t.meta.Participants {
		switch px.chosen[i] {
		case paxos.ValAbort:
			s.record("px-abort", t.id, "instance chose n")
			s.decideAbort(t)
			return
		case paxos.ValNone:
			all = false
		}
	}
	if all {
		s.record("px-commit", t.id, "all instances chose y")
		s.decideCommit(t)
	}
}

// startPaxosBallot makes this site the leader at ballot b: promise b at the
// co-located acceptor (forced), fold its own accepts into the merge, and
// run phase 1a against the rest of the cohort. Requires s.mu held.
func (s *shard) startPaxosBallot(t *txState, b paxos.Ballot) {
	if t.resolved() {
		return
	}
	px := s.ensurePaxos(t)
	if !px.acc.Promise(b) {
		// Our own acceptor has promised someone higher; supervise them.
		if px.acc.Promised > px.maxSeen {
			px.maxSeen = px.acc.Promised
		}
		s.armTimer(t, s.protoTimeout())
		return
	}
	s.record("px-lead", t.id, fmt.Sprintf("ballot %d", b))
	meta := encodeMeta(t.meta)
	s.mustLog(wal.Record{Type: wal.RecPaxosPromise, TxID: t.id, Payload: paxos.EncodePromise(b, meta)})
	px.leading, px.ballot, px.proposed = true, b, false
	px.proms = 0
	px.merged = make([]paxos.Accepted, len(t.meta.Participants))
	paxos.Merge(px.merged, px.acc.Accepts)
	px.proms.add(t.cohortIdx(s.id))
	if b > px.maxSeen {
		px.maxSeen = b
	}
	body := paxos.EncodeP1a(b, meta)
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindPx1a, t.id, body)
		}
	}
	s.armTimer(t, s.protoTimeout())
	if bits.OnesCount64(uint64(px.proms)) >= paxos.Majority(len(t.meta.Participants)) {
		s.paxosPropose(t) // single-site cohort: our own promise is a majority
	}
}

// paxosEscalate starts (or restarts) leadership above every ballot this
// site has seen. Requires s.mu held.
func (s *shard) paxosEscalate(t *txState) {
	px := s.ensurePaxos(t)
	high := px.maxSeen
	if px.acc.Promised > high {
		high = px.acc.Promised
	}
	if px.ballot > high {
		high = px.ballot
	}
	s.startPaxosBallot(t, paxos.Next(high, t.cohortIdx(s.id)))
}

// paxosLeaderCrashCheck re-evaluates a coordinated Paxos transaction after
// cohort member idx crashed. If the crashed site's instance already chose a
// value the decision no longer needs it (a majority of acceptors survives
// any F = (N-1)/2 crashes); otherwise its ballot-0 self-accept may be
// stranded in its log, so escalate and learn what the surviving acceptors
// hold. Requires s.mu held.
func (s *shard) paxosLeaderCrashCheck(t *txState, idx int) {
	if t.px != nil && idx < len(t.px.chosen) && t.px.chosen[idx] != paxos.ValNone {
		return
	}
	s.paxosEscalate(t)
}

// paxosTakeover reacts to a dead (or refusing) coordinator: the
// deterministically elected survivor leads a recovery ballot; everyone else
// nudges it and supervises. This replaces the cohort termination protocol —
// no TERM-STATE/TERM-ACK round ever runs under Paxos Commit. Requires s.mu
// held.
func (s *shard) paxosTakeover(t *txState) {
	if t.resolved() || t.recovering {
		return
	}
	leader, ok := s.electBackup(t)
	if !ok {
		s.armTimer(t, s.protoTimeout())
		return
	}
	if leader == s.id {
		s.paxosEscalate(t)
		return
	}
	s.send(leader, KindPxNudge, t.id, encodeMeta(t.meta))
	s.armTimer(t, s.protoTimeout())
}

// onPxNudge wakes the elected takeover site: a peer observed the
// coordinator dead and this site is its choice of leader.
func (s *shard) onPxNudge(m transport.Message) {
	meta, err := decodeMeta(m.Body)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tx(m.TxID)
	if len(t.meta.Participants) == 0 {
		t.meta = meta
		t.detached = true
	}
	if t.resolved() {
		s.sendOutcome(m.From, t)
		return
	}
	if t.recovering {
		// In doubt after our own crash: refuse leadership so the nudger
		// excludes us and re-elects.
		s.send(m.From, KindDecideRes, t.id, []byte{statusRecovering})
		return
	}
	if leader, ok := s.electBackup(t); ok && leader == s.id && (t.px == nil || !t.px.leading) {
		s.paxosEscalate(t)
		return
	}
	if !t.timer.Armed() {
		s.armTimer(t, s.protoTimeout())
	}
}

// paxosParticipantTimeout drives a Paxos transaction whose wait expired at
// a non-coordinator site: an active leader escalates its ballot; otherwise
// a live coordinator is nudged for the decision, and a dead one triggers
// takeover. Requires s.mu held.
func (s *shard) paxosParticipantTimeout(t *txState) {
	if t.px != nil && t.px.leading {
		s.paxosEscalate(t)
		return
	}
	if c := t.meta.Coordinator; c != 0 && s.det.Alive(c) {
		s.send(c, KindDecideReq, t.id, nil)
		s.armTimer(t, s.protoTimeout())
		return
	}
	s.paxosTakeover(t)
}
