package engine

import (
	"fmt"
	"sort"

	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Begin starts a distributed commit with this site as the coordinator.
// participants is the full cohort; the coordinator is added if absent. The
// call returns once the protocol is underway; use WaitOutcome to collect the
// decision.
//
// The coordinator votes too (the paper's parenthesized (yes1)/(no1)): its
// own Resource.Prepare must succeed for the transaction to commit.
func (s *Site) Begin(txid string, participants []int) error {
	cohort := normalizeCohort(s.id, participants)
	if len(cohort) > maxCohort {
		return fmt.Errorf("engine: cohort of %d exceeds the %d-site limit", len(cohort), maxCohort)
	}
	meta := TxMeta{Coordinator: s.id, Participants: cohort}

	sh := s.shardFor(txid)
	sh.mu.Lock()
	if s.stopped.Load() {
		sh.mu.Unlock()
		return ErrStopped
	}
	if _, ok := sh.txns[txid]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("engine: site %d already has transaction %s", s.id, txid)
	}
	t := sh.tx(txid)
	t.coordinator = true
	t.meta = meta
	if s.metrics != nil {
		t.begunAt = s.clk.Now()
	}
	// One encoding serves both the begin record and every VOTE-REQ body.
	body := encodeMeta(meta)
	sh.mustLog(wal.Record{Type: wal.RecBegin, TxID: txid, Payload: body})
	sh.armTimer(t, sh.protoTimeout())

	// First phase: distribute the transaction ("Start Xact" / VOTE-REQ).
	// Still under sh.mu so the sends defer behind the begin record's
	// durability: were a VOTE-REQ to outrun it and the coordinator to
	// crash, the recovered coordinator would not even know the transaction
	// it asked the cohort to vote on.
	for _, p := range cohort {
		if p != s.id {
			sh.send(p, KindVoteReq, txid, body)
		}
	}
	sh.mu.Unlock()

	// The coordinator's own vote, off the event loop so a slow local
	// prepare doesn't stall message processing (inline in deterministic
	// mode).
	sh.castVote(txid, true, false)
	return nil
}

// normalizeCohort sorts, deduplicates, and ensures self is present.
func normalizeCohort(self int, participants []int) []int {
	seen := map[int]bool{self: true}
	out := []int{self}
	for _, p := range participants {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// onVote handles YES/NO from a participant (coordinator role).
func (s *shard) onVote(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.coordinator || t.resolved() {
		return
	}
	if m.Kind == KindNo {
		t.noVote = true
		s.decideAbort(t)
		return
	}
	t.votes.add(t.cohortIdx(m.From))
	s.maybeAllVotes(t)
}

// onOwnVote handles the coordinator's local prepare result.
func (s *shard) onOwnVote(v voteResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[v.txid]
	if !ok || !t.coordinator || t.resolved() {
		return
	}
	if v.err != nil {
		// Unilateral abort is safe under every family — for Paxos Commit
		// because the coordinator is its own instance's only ballot-0
		// proposer and never proposed 'y', so commit is unreachable.
		t.noVote = true
		s.decideAbort(t)
		return
	}
	if s.kind == PaxosCommit {
		s.paxosOwnVote(t, v.redo)
		return
	}
	t.redo = v.redo
	t.ownYes = true
	s.maybeAllVotes(t)
}

// maybeAllVotes advances when the coordinator holds a YES from every other
// participant plus its own. Requires s.mu held.
func (s *shard) maybeAllVotes(t *txState) {
	if t.phase != phaseInit || !t.ownYes || s.kind == PaxosCommit {
		return // Paxos decides from 2b tallies, never from YES counting
	}
	for i, p := range t.meta.Participants {
		if p != s.id && !t.votes.has(i) {
			return
		}
	}
	if s.metrics != nil && !t.begunAt.IsZero() {
		t.votesAt = s.clk.Now()
		s.metrics.votes.Observe(t.votesAt.Sub(t.begunAt))
	}
	if s.kind == TwoPhase {
		s.decideCommit(t)
		return
	}
	// 3PC: enter the buffer state and run the prepare round.
	s.mustLog(wal.Record{Type: wal.RecPrepared, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
	t.phase = phasePrepared
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindPrepare, t.id, nil)
		}
	}
	s.armTimer(t, s.protoTimeout())
	s.maybeAllAcks(t) // a 2-site cohort with a crashed slave resolves now
}

// onAck handles a participant's PREPARE acknowledgement. Requires 3PC.
func (s *shard) onAck(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.coordinator || t.phase != phasePrepared {
		return
	}
	t.acks.add(t.cohortIdx(m.From))
	s.maybeAllAcks(t)
}

// maybeAllAcks commits once every operational participant has acknowledged
// the prepare. Crashed participants are waived: they voted YES, so their
// recovery protocol will learn the commit from the cohort. Requires s.mu
// held.
func (s *shard) maybeAllAcks(t *txState) {
	if t.phase != phasePrepared || !t.coordinator {
		return
	}
	for i, p := range t.meta.Participants {
		if p != s.id && !t.acks.has(i) && s.det.Alive(p) {
			return
		}
	}
	s.decideCommit(t)
}

// decideCommit records and broadcasts the commit decision. Requires s.mu
// held.
func (s *shard) decideCommit(t *txState) {
	s.resolve(t, OutcomeCommitted)
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindCommit, t.id, nil)
		}
	}
}

// decideAbort records and broadcasts the abort decision. Requires s.mu held.
func (s *shard) decideAbort(t *txState) {
	s.resolve(t, OutcomeAborted)
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindAbort, t.id, nil)
		}
	}
}

// coordinatorTimeout fires when vote or ack collection stalls. Requires
// s.mu held.
func (s *shard) coordinatorTimeout(t *txState) {
	if s.kind == PaxosCommit {
		// The Paxos coordinator must NOT unilaterally abort on a stall:
		// every instance may already be chosen 'y' at the acceptors with
		// only the 2b messages lost, and a takeover leader would then
		// decide commit. Escalate the ballot instead — phase 1 learns the
		// durable truth and the decision comes out of consensus (free
		// instances end in 'n', so a genuinely missing vote still aborts).
		s.paxosEscalate(t)
		return
	}
	switch t.phase {
	case phaseInit:
		// Missing votes: abort. A crashed or partitioned participant is
		// indistinguishable from a NO for commit purposes.
		s.decideAbort(t)
	case phasePrepared:
		// Resend PREPARE to laggards and re-check with crashed sites
		// waived.
		s.maybeAllAcks(t)
		if t.resolved() {
			return
		}
		for i, p := range t.meta.Participants {
			if p != s.id && !t.acks.has(i) && s.det.Alive(p) {
				s.send(p, KindPrepare, t.id, nil)
			}
		}
		s.armTimer(t, s.protoTimeout())
	}
}

// coordinatorCrashCheck re-evaluates a coordinator transaction after a
// participant crash. Requires s.mu held.
func (s *shard) coordinatorCrashCheck(t *txState, crashed int) {
	if t.resolved() {
		return
	}
	idx := t.cohortIdx(crashed)
	if idx < 0 {
		return
	}
	if s.kind == PaxosCommit {
		s.paxosLeaderCrashCheck(t, idx)
		return
	}
	switch t.phase {
	case phaseInit:
		if !t.votes.has(idx) {
			// The participant crashed before voting: it will abort on
			// recovery (failure before the commit point), so the
			// transaction must abort.
			s.decideAbort(t)
		}
	case phasePrepared:
		s.maybeAllAcks(t)
	}
}
