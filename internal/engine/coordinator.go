package engine

import (
	"fmt"
	"sort"

	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Begin starts a distributed commit with this site as the coordinator.
// participants is the full cohort; the coordinator is added if absent. The
// call returns once the protocol is underway; use WaitOutcome to collect the
// decision.
//
// The coordinator votes too (the paper's parenthesized (yes1)/(no1)): its
// own Resource.Prepare must succeed for the transaction to commit.
func (s *Site) Begin(txid string, participants []int) error {
	cohort := normalizeCohort(s.id, participants)
	if len(cohort) > maxCohort {
		return fmt.Errorf("engine: cohort of %d exceeds the %d-site limit", len(cohort), maxCohort)
	}
	meta := TxMeta{Coordinator: s.id, Participants: cohort}

	sh := s.shardFor(txid)
	sh.mu.Lock()
	if s.stopped.Load() {
		sh.mu.Unlock()
		return ErrStopped
	}
	if _, ok := sh.txns[txid]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("engine: site %d already has transaction %s", s.id, txid)
	}
	t := sh.tx(txid)
	t.coordinator = true
	t.meta = meta
	if s.metrics != nil {
		t.begunAt = s.clk.Now()
	}
	// One encoding serves both the begin record and every VOTE-REQ body.
	body := encodeMeta(meta)
	if sh.presumedAbort(t) {
		// Presumed-abort 2PC: the begin record need not be forced. A
		// recovered coordinator with no trace answers in-doubt inquiries
		// with 'n' (no trace), which participants read as abort — exactly
		// the outcome a pre-commit coordinator crash produces anyway.
		sh.mustLogLazy(wal.Record{Type: wal.RecBegin, TxID: txid, Payload: body})
	} else {
		sh.mustLog(wal.Record{Type: wal.RecBegin, TxID: txid, Payload: body})
	}
	sh.armTimer(t, sh.protoTimeout())

	// First phase: distribute the transaction ("Start Xact" / VOTE-REQ).
	// Still under sh.mu so (when the begin record is forced) the sends
	// defer behind its durability: were a VOTE-REQ to outrun it and the
	// coordinator to crash, the recovered coordinator would not even know
	// the transaction it asked the cohort to vote on. Under presumed abort
	// the sends go out immediately — "I don't know this transaction" and
	// "abort" are the same answer.
	for _, p := range cohort {
		if p != s.id {
			sh.send(p, KindVoteReq, txid, body)
		}
	}
	sh.mu.Unlock()

	// The coordinator's own vote, off the event loop so a slow local
	// prepare doesn't stall message processing (inline in deterministic
	// mode).
	sh.castVote(txid, true, false)
	return nil
}

// normalizeCohort sorts, deduplicates, and ensures self is present.
func normalizeCohort(self int, participants []int) []int {
	seen := map[int]bool{self: true}
	out := []int{self}
	for _, p := range participants {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// onVote handles YES/NO/READ-ONLY from a participant (coordinator role).
func (s *shard) onVote(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.coordinator || t.resolved() {
		return
	}
	if m.Kind == KindNo {
		t.noVote = true
		s.decideAbort(t)
		return
	}
	idx := t.cohortIdx(m.From)
	if m.Kind == KindReadOnly {
		// The participant had no writes: it already released its locks and
		// forgot the transaction. It counts as a YES for the decision but
		// drops out of every later round — prepares, the decision fan-out,
		// and DEC-ACK settlement all skip it.
		t.readonly.add(idx)
		s.record("ro-vote", t.id, fmt.Sprintf("site %d read-only", m.From))
	}
	t.votes.add(idx)
	s.maybeAllVotes(t)
}

// onOwnVote handles the coordinator's local prepare result.
func (s *shard) onOwnVote(v voteResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[v.txid]
	if !ok || !t.coordinator || t.resolved() {
		return
	}
	if v.err != nil {
		// Unilateral abort is safe under every family — for Paxos Commit
		// because the coordinator is its own instance's only ballot-0
		// proposer and never proposed 'y', so commit is unreachable.
		t.noVote = true
		s.decideAbort(t)
		return
	}
	if s.kind == PaxosCommit {
		s.paxosOwnVote(t, v.redo)
		return
	}
	t.redo = v.redo
	t.ownYes = true
	s.maybeAllVotes(t)
}

// maybeAllVotes advances when the coordinator holds a YES from every other
// participant plus its own. Requires s.mu held.
func (s *shard) maybeAllVotes(t *txState) {
	if t.phase != phaseInit || !t.ownYes || s.kind == PaxosCommit {
		return // Paxos decides from 2b tallies, never from YES counting
	}
	for i, p := range t.meta.Participants {
		if p != s.id && !t.votes.has(i) {
			return
		}
	}
	if s.metrics != nil && !t.begunAt.IsZero() {
		t.votesAt = s.clk.Now()
		s.metrics.votes.Observe(t.votesAt.Sub(t.begunAt))
	}
	if s.kind == TwoPhase {
		s.decideCommit(t)
		return
	}
	// 3PC: enter the buffer state and run the prepare round. Read-only
	// voters are already gone and skip the buffer state entirely.
	s.mustLog(wal.Record{Type: wal.RecPrepared, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
	t.phase = phasePrepared
	for i, p := range t.meta.Participants {
		if p != s.id && !t.readonly.has(i) {
			s.send(p, KindPrepare, t.id, nil)
		}
	}
	s.armTimer(t, s.protoTimeout())
	s.maybeAllAcks(t) // a 2-site cohort with a crashed slave resolves now
}

// onAck handles a participant's PREPARE acknowledgement. Requires 3PC.
func (s *shard) onAck(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.coordinator || t.phase != phasePrepared {
		return
	}
	t.acks.add(t.cohortIdx(m.From))
	s.maybeAllAcks(t)
}

// maybeAllAcks commits once every operational participant has acknowledged
// the prepare. Crashed participants are waived: they voted YES, so their
// recovery protocol will learn the commit from the cohort. Requires s.mu
// held.
func (s *shard) maybeAllAcks(t *txState) {
	if t.phase != phasePrepared || !t.coordinator {
		return
	}
	for i, p := range t.meta.Participants {
		if p != s.id && !t.acks.has(i) && !t.readonly.has(i) && s.det.Alive(p) {
			return
		}
	}
	s.decideCommit(t)
}

// decideCommit records and broadcasts the commit decision. Read-only voters
// dropped out of the cohort after phase 1 and receive nothing. Requires s.mu
// held.
//
// Whoever DECIDES also claims the settlement collection point (a no-op for
// the original coordinator): a Paxos takeover leader deciding in place of a
// dead coordinator must collect the cohort's DEC-ACKs itself — if the
// survivors merely acknowledged the corpse and forgot after the grace
// period, the coordinator's eventual recovery would find a cohort with no
// memory of the outcome.
func (s *shard) decideCommit(t *txState) {
	t.coordinator = true
	s.resolve(t, OutcomeCommitted)
	for i, p := range t.meta.Participants {
		if p != s.id && !t.readonly.has(i) {
			s.send(p, KindCommit, t.id, nil)
		}
	}
}

// decideAbort records and broadcasts the abort decision, claiming the
// settlement collection point like decideCommit. Requires s.mu held.
func (s *shard) decideAbort(t *txState) {
	t.coordinator = true
	s.resolve(t, OutcomeAborted)
	for i, p := range t.meta.Participants {
		if p != s.id && !t.readonly.has(i) {
			s.send(p, KindAbort, t.id, nil)
		}
	}
}

// coordinatorTimeout fires when vote or ack collection stalls. Requires
// s.mu held.
func (s *shard) coordinatorTimeout(t *txState) {
	if s.kind == PaxosCommit {
		// The Paxos coordinator must NOT unilaterally abort on a stall:
		// every instance may already be chosen 'y' at the acceptors with
		// only the 2b messages lost, and a takeover leader would then
		// decide commit. Escalate the ballot instead — phase 1 learns the
		// durable truth and the decision comes out of consensus (free
		// instances end in 'n', so a genuinely missing vote still aborts).
		s.paxosEscalate(t)
		return
	}
	switch t.phase {
	case phaseInit:
		// Missing votes: abort. A crashed or partitioned participant is
		// indistinguishable from a NO for commit purposes.
		s.decideAbort(t)
	case phasePrepared:
		// Resend PREPARE to laggards and re-check with crashed sites
		// waived.
		s.maybeAllAcks(t)
		if t.resolved() {
			return
		}
		for i, p := range t.meta.Participants {
			if p != s.id && !t.acks.has(i) && !t.readonly.has(i) && s.det.Alive(p) {
				s.send(p, KindPrepare, t.id, nil)
			}
		}
		s.armTimer(t, s.protoTimeout())
	}
}

// coordinatorCrashCheck re-evaluates a coordinator transaction after a
// participant crash. Requires s.mu held.
func (s *shard) coordinatorCrashCheck(t *txState, crashed int) {
	if t.resolved() {
		return
	}
	idx := t.cohortIdx(crashed)
	if idx < 0 {
		return
	}
	if s.kind == PaxosCommit {
		s.paxosLeaderCrashCheck(t, idx)
		return
	}
	switch t.phase {
	case phaseInit:
		if !t.votes.has(idx) {
			// The participant crashed before voting: it will abort on
			// recovery (failure before the commit point), so the
			// transaction must abort.
			s.decideAbort(t)
		}
	case phasePrepared:
		s.maybeAllAcks(t)
	}
}
