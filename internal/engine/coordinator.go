package engine

import (
	"fmt"
	"sort"

	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Begin starts a distributed commit with this site as the coordinator.
// participants is the full cohort; the coordinator is added if absent. The
// call returns once the protocol is underway; use WaitOutcome to collect the
// decision.
//
// The coordinator votes too (the paper's parenthesized (yes1)/(no1)): its
// own Resource.Prepare must succeed for the transaction to commit.
func (s *Site) Begin(txid string, participants []int) error {
	cohort := normalizeCohort(s.id, participants)
	meta := TxMeta{Coordinator: s.id, Participants: cohort}

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if _, ok := s.txns[txid]; ok {
		s.mu.Unlock()
		return fmt.Errorf("engine: site %d already has transaction %s", s.id, txid)
	}
	t := s.tx(txid)
	t.coordinator = true
	t.meta = meta
	t.votes = map[int]bool{}
	t.acks = map[int]bool{}
	if s.metrics != nil {
		t.begunAt = s.clk.Now()
	}
	s.mustLog(wal.Record{Type: wal.RecBegin, TxID: txid, Payload: encodeMeta(meta)})
	s.armTimer(t, s.protoTimeout())

	// First phase: distribute the transaction ("Start Xact" / VOTE-REQ).
	// Still under s.mu so the sends defer behind the begin record's
	// durability: were a VOTE-REQ to outrun it and the coordinator to
	// crash, the recovered coordinator would not even know the transaction
	// it asked the cohort to vote on.
	body := encodeMeta(meta)
	for _, p := range cohort {
		if p != s.id {
			s.send(p, KindVoteReq, txid, body)
		}
	}
	s.mu.Unlock()

	// The coordinator's own vote, off the event loop so a slow local
	// prepare doesn't stall message processing (inline in deterministic
	// mode).
	s.castVote(txid, true, false)
	return nil
}

// normalizeCohort sorts, deduplicates, and ensures self is present.
func normalizeCohort(self int, participants []int) []int {
	seen := map[int]bool{self: true}
	out := []int{self}
	for _, p := range participants {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// onVote handles YES/NO from a participant (coordinator role).
func (s *Site) onVote(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.coordinator || t.resolved() {
		return
	}
	if m.Kind == KindNo {
		t.noVote = true
		s.decideAbort(t)
		return
	}
	if t.votes == nil {
		t.votes = map[int]bool{}
	}
	t.votes[m.From] = true
	s.maybeAllVotes(t)
}

// onOwnVote handles the coordinator's local prepare result.
func (s *Site) onOwnVote(v *voteResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[v.txid]
	if !ok || !t.coordinator || t.resolved() {
		return
	}
	if v.err != nil {
		t.noVote = true
		s.decideAbort(t)
		return
	}
	t.redo = v.redo
	t.ownYes = true
	s.maybeAllVotes(t)
}

// maybeAllVotes advances when the coordinator holds a YES from every other
// participant plus its own. Requires s.mu held.
func (s *Site) maybeAllVotes(t *txState) {
	if t.phase != phaseInit || !t.ownYes {
		return
	}
	for _, p := range t.meta.Participants {
		if p != s.id && !t.votes[p] {
			return
		}
	}
	if s.metrics != nil && !t.begunAt.IsZero() {
		t.votesAt = s.clk.Now()
		s.metrics.votes.Observe(t.votesAt.Sub(t.begunAt))
	}
	if s.kind == TwoPhase {
		s.decideCommit(t)
		return
	}
	// 3PC: enter the buffer state and run the prepare round.
	s.mustLog(wal.Record{Type: wal.RecPrepared, TxID: t.id, Payload: encodeVotePayload(t.meta, t.redo)})
	t.phase = phasePrepared
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindPrepare, t.id, nil)
		}
	}
	s.armTimer(t, s.protoTimeout())
	s.maybeAllAcks(t) // a 2-site cohort with a crashed slave resolves now
}

// onAck handles a participant's PREPARE acknowledgement. Requires 3PC.
func (s *Site) onAck(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || !t.coordinator || t.phase != phasePrepared {
		return
	}
	if t.acks == nil {
		t.acks = map[int]bool{}
	}
	t.acks[m.From] = true
	s.maybeAllAcks(t)
}

// maybeAllAcks commits once every operational participant has acknowledged
// the prepare. Crashed participants are waived: they voted YES, so their
// recovery protocol will learn the commit from the cohort. Requires s.mu
// held.
func (s *Site) maybeAllAcks(t *txState) {
	if t.phase != phasePrepared || !t.coordinator {
		return
	}
	for _, p := range t.meta.Participants {
		if p != s.id && !t.acks[p] && s.det.Alive(p) {
			return
		}
	}
	s.decideCommit(t)
}

// decideCommit records and broadcasts the commit decision. Requires s.mu
// held.
func (s *Site) decideCommit(t *txState) {
	s.resolve(t, OutcomeCommitted)
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindCommit, t.id, nil)
		}
	}
}

// decideAbort records and broadcasts the abort decision. Requires s.mu held.
func (s *Site) decideAbort(t *txState) {
	s.resolve(t, OutcomeAborted)
	for _, p := range t.meta.Participants {
		if p != s.id {
			s.send(p, KindAbort, t.id, nil)
		}
	}
}

// coordinatorTimeout fires when vote or ack collection stalls. Requires
// s.mu held.
func (s *Site) coordinatorTimeout(t *txState) {
	switch t.phase {
	case phaseInit:
		// Missing votes: abort. A crashed or partitioned participant is
		// indistinguishable from a NO for commit purposes.
		s.decideAbort(t)
	case phasePrepared:
		// Resend PREPARE to laggards and re-check with crashed sites
		// waived.
		s.maybeAllAcks(t)
		if t.resolved() {
			return
		}
		for _, p := range t.meta.Participants {
			if p != s.id && !t.acks[p] && s.det.Alive(p) {
				s.send(p, KindPrepare, t.id, nil)
			}
		}
		s.armTimer(t, s.protoTimeout())
	}
}

// coordinatorCrashCheck re-evaluates a coordinator transaction after a
// participant crash. Requires s.mu held.
func (s *Site) coordinatorCrashCheck(t *txState, crashed int) {
	if t.resolved() {
		return
	}
	inCohort := false
	for _, p := range t.meta.Participants {
		if p == crashed {
			inCohort = true
			break
		}
	}
	if !inCohort {
		return
	}
	switch t.phase {
	case phaseInit:
		if !t.votes[crashed] {
			// The participant crashed before voting: it will abort on
			// recovery (failure before the commit point), so the
			// transaction must abort.
			s.decideAbort(t)
		}
	case phasePrepared:
		s.maybeAllAcks(t)
	}
}
