package engine_test

// Tests for the sharded event-driven core: configuration validation,
// dropped-event accounting across shutdown, and a -race stress run driving
// every shard concurrently.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nbcommit/internal/engine"
	"nbcommit/internal/failure"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Site IDs must be positive: ID 0 used to be unreportable in crash events
// because the event struct discriminated on a zero-value sentinel.
func TestNewRejectsNonPositiveID(t *testing.T) {
	net := transport.NewNetwork()
	det := failure.NewOracle(net)
	for _, id := range []int{0, -1} {
		_, err := engine.New(engine.Config{
			ID:       id,
			Endpoint: net.Endpoint(1),
			Log:      wal.NewMemoryLog(),
			Resource: newTestResource(),
			Detector: det,
			Protocol: engine.TwoPhase,
		})
		if err == nil {
			t.Fatalf("New accepted site ID %d", id)
		}
	}
}

func TestBeginRejectsOversizedCohort(t *testing.T) {
	c := newCluster(t, engine.TwoPhase, 1)
	cohort := make([]int, 0, 70)
	for i := 1; i <= 70; i++ {
		cohort = append(cohort, i)
	}
	if err := c.sites[1].Begin("big", cohort); err == nil {
		t.Fatal("Begin accepted a cohort larger than 64 sites")
	}
}

// While a site is live, no event may be dropped — only shutdown sheds
// events, and every shed event must be counted.
func TestShutdownDropAccounting(t *testing.T) {
	c := newCluster(t, engine.ThreePhase, 3)
	for i := 0; i < 20; i++ {
		txid := fmt.Sprintf("drop-%d", i)
		if err := c.sites[1].Begin(txid, c.ids); err != nil {
			t.Fatal(err)
		}
		if o, err := c.sites[1].WaitOutcome(txid, 2*time.Second); err != nil || o != engine.OutcomeCommitted {
			t.Fatalf("%s: outcome %v err %v", txid, o, err)
		}
	}
	for id, s := range c.sites {
		if n := s.DroppedEvents(); n != 0 {
			t.Fatalf("site %d dropped %d events while live", id, n)
		}
	}

	// After Stop, late traffic is discarded — and accounted for.
	s := c.sites[2]
	s.Stop()
	for i := 0; i < 5; i++ {
		s.Deliver(transport.Message{From: 1, To: 2, Kind: engine.KindVoteReq, TxID: fmt.Sprintf("late-%d", i)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.DroppedEvents() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.DroppedEvents(); n == 0 {
		t.Fatal("no dropped events counted after Stop")
	}
}

// TestShardedStress drives every shard of a multi-shard cluster from many
// goroutines at once — concurrent Begins, waiters, duplicate deliveries and
// crash reports — and is meant to run under -race.
func TestShardedStress(t *testing.T) {
	net := transport.NewNetwork()
	det := failure.NewOracle(net)
	const n = 3
	sites := make(map[int]*engine.Site, n)
	resources := map[int]*testResource{}
	var ids []int
	for i := 1; i <= n; i++ {
		ids = append(ids, i)
		resources[i] = newTestResource()
		s, err := engine.New(engine.Config{
			ID:          i,
			Endpoint:    net.Endpoint(i),
			Log:         wal.NewMemoryLog(),
			Resource:    resources[i],
			Detector:    det,
			Protocol:    engine.ThreePhase,
			Timeout:     100 * time.Millisecond,
			ForgetAfter: 50 * time.Millisecond,
			Shards:      4, // force multiple shards even on one core
		})
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		s.Start()
	}
	defer func() {
		for _, s := range sites {
			s.Stop()
		}
	}()

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			coord := sites[w%n+1]
			for i := 0; i < perWorker; i++ {
				txid := fmt.Sprintf("stress-%d-%d", w, i)
				if err := coord.Begin(txid, ids); err != nil {
					errs <- fmt.Errorf("%s: %w", txid, err)
					return
				}
				o, err := coord.WaitOutcome(txid, 5*time.Second)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", txid, err)
					return
				}
				if o != engine.OutcomeCommitted {
					errs <- fmt.Errorf("%s: outcome %v", txid, o)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for id, s := range sites {
		if n := s.DroppedEvents(); n != 0 {
			t.Fatalf("site %d dropped %d events while live", id, n)
		}
	}
}

// BenchmarkEngineCommitAllocs measures allocations per full three-site
// commit (Begin through decision at the coordinator) over an in-memory
// network and WAL — the engine twin of the internal/remote codec alloc
// benchmarks. Guarded by the bench smoke's allocs/op threshold.
func BenchmarkEngineCommitAllocs(b *testing.B) {
	for _, kind := range []engine.ProtocolKind{engine.TwoPhase, engine.ThreePhase, engine.PaxosCommit} {
		b.Run(kind.String(), func(b *testing.B) {
			net := transport.NewNetwork()
			det := failure.NewOracle(net)
			const n = 3
			sites := make(map[int]*engine.Site, n)
			var ids []int
			for i := 1; i <= n; i++ {
				ids = append(ids, i)
				s, err := engine.New(engine.Config{
					ID:          i,
					Endpoint:    net.Endpoint(i),
					Log:         wal.NewMemoryLog(),
					Resource:    newTestResource(),
					Detector:    det,
					Protocol:    kind,
					Timeout:     time.Second,
					ForgetAfter: 10 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				sites[i] = s
				s.Start()
			}
			defer func() {
				for _, s := range sites {
					s.Stop()
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txid := fmt.Sprintf("bench-%d", i)
				if err := sites[1].Begin(txid, ids); err != nil {
					b.Fatal(err)
				}
				if o, err := sites[1].WaitOutcome(txid, 5*time.Second); err != nil || o != engine.OutcomeCommitted {
					b.Fatalf("%s: outcome %v err %v", txid, o, err)
				}
			}
		})
	}
}
