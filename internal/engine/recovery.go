package engine

import (
	"fmt"
	"sort"

	"nbcommit/internal/paxos"
	"nbcommit/internal/transport"
	"nbcommit/internal/wal"
)

// Recover builds a Site from its surviving write-ahead log after a crash,
// implementing the paper's recovery protocol ("invoked by a crashed site to
// resume transaction processing upon recovery"):
//
//   - committed transactions are redone into the fresh resource (redo from
//     the log, no checkpointing in this reference implementation);
//   - transactions this site coordinated without reaching an outcome are
//     aborted (the failure occurred before the commit point) and the abort
//     is broadcast to the cohort — this is what eventually unblocks 2PC
//     participants stuck in their uncertainty window;
//   - transactions this site coordinated to an outcome are re-broadcast, in
//     case the decision messages were lost in the crash;
//   - in-doubt participant transactions (voted YES / prepared, no outcome)
//     enter the recovering state: the site queries the cohort with
//     DECIDE-REQ until some operational site reports the outcome, and it
//     refuses the backup-coordinator role meanwhile.
//
// The returned site is started; callers should not call Start again.
func Recover(cfg Config) (*Site, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	log := s.shards[0].log
	recs, err := log.Records()
	if err != nil {
		return nil, fmt.Errorf("engine: recovery cannot read WAL: %w", err)
	}

	// Redo committed effects in log order.
	for _, r := range recs {
		if r.Type == wal.RecCommitted && len(r.Payload) > 0 {
			if err := s.shards[0].res.ApplyRedo(r.Payload); err != nil {
				return nil, fmt.Errorf("engine: recovery redo of %s: %w", r.TxID, err)
			}
		}
	}

	images := wal.Replay(recs)
	// Deterministic iteration keeps recovery reproducible.
	ids := make([]string, 0, len(images))
	for id := range images {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var pending []*txState // resolved coordinator txns: re-broadcast outcome
	var inDoubt []*txState

	for _, id := range ids {
		img := images[id]
		sh := s.shardFor(id)
		sh.mu.Lock()
		t := sh.tx(id)
		t.detached = true
		t.coordinator = img.Coordinator
		if img.Coordinator && len(img.Begin) > 0 {
			if meta, err := decodeMeta(img.Begin); err == nil {
				t.meta = meta
			}
		}
		switch img.Status {
		case wal.StatusCommitted, wal.StatusEnded:
			t.phase = phaseCommitted
			close(t.done)
			if img.Status == wal.StatusEnded {
				// Already garbage-collected before the crash: the cohort
				// acknowledged the decision, so do not resume the
				// coordinator's re-send duty for it.
				t.coordinator = false
			} else if img.Coordinator {
				pending = append(pending, t)
			}
		case wal.StatusAborted, wal.StatusVotedNo:
			if img.Status == wal.StatusVotedNo {
				// Crashed between logging the NO vote and the abort record.
				sh.mustLog(wal.Record{Type: wal.RecAborted, TxID: id})
			}
			t.phase = phaseAborted
			close(t.done)
			if img.Coordinator {
				pending = append(pending, t)
			}
		case wal.StatusBegun:
			// Coordinator crashed before its commit point: abort. Under
			// presumed-abort 2PC the abort needs no record — no committed
			// record already reads as abort, and in-doubt participants that
			// ask are answered with 'n'. Other families force the decision
			// so their re-broadcast duty survives a second crash.
			if !(cfg.Protocol == TwoPhase && img.Coordinator) {
				sh.mustLog(wal.Record{Type: wal.RecAborted, TxID: id})
			}
			t.phase = phaseAborted
			close(t.done)
			pending = append(pending, t)
		case wal.StatusVotedYes, wal.StatusPrepared:
			vp, err := decodeVotePayload(img.Last)
			if err != nil {
				sh.mu.Unlock()
				return nil, fmt.Errorf("engine: recovery cannot decode vote payload of %s: %w", id, err)
			}
			t.meta = vp.Meta
			t.redo = vp.Redo
			if img.Status == wal.StatusPrepared {
				t.phase = phasePrepared
			} else {
				t.phase = phaseWait
			}
			if img.Coordinator {
				// A 3PC coordinator that crashed after logging prepared:
				// it is in doubt like any participant (the cohort may have
				// terminated either way... only commit is possible from p,
				// but a backup may have moved the cohort; ask).
				t.coordinator = false
			}
			t.recovering = true
			inDoubt = append(inDoubt, t)
		}
		sh.mu.Unlock()
	}

	// Rebuild Paxos acceptor state by replaying the consensus records in
	// log order — the promise/accept guards re-apply exactly as they were
	// originally taken, so the rebuilt state equals the pre-crash state. At
	// a Paxos site the vote-yes record doubles as the co-located ballot-0
	// accept of the site's own instance. Transactions known only through
	// acceptor records (this site never executed them) are chased after
	// start so a decision broadcast lost in the crash cannot strand them.
	chase := map[string]bool{}
	for _, r := range recs {
		isPaxos := r.Type == wal.RecPaxosPromise || r.Type == wal.RecPaxosAccept
		if !isPaxos && !(r.Type == wal.RecVoteYes && cfg.Protocol == PaxosCommit) {
			continue
		}
		sh := s.shardFor(r.TxID)
		sh.mu.Lock()
		t := sh.tx(r.TxID)
		known := len(t.meta.Participants) > 0
		switch r.Type {
		case wal.RecPaxosPromise:
			if bal, mb, err := paxos.DecodePromise(r.Payload); err == nil {
				if !known {
					known = adoptPaxosMeta(t, mb)
				}
				if known {
					sh.ensurePaxos(t).acc.Promise(bal)
				}
			}
		case wal.RecPaxosAccept:
			if bal, inst, val, mb, err := paxos.DecodeP2a(r.Payload); err == nil {
				if !known {
					known = adoptPaxosMeta(t, mb)
				}
				if known {
					sh.ensurePaxos(t).acc.Accept(bal, inst, val)
				}
			}
		case wal.RecVoteYes:
			if me := t.cohortIdx(s.id); known && me >= 0 {
				sh.ensurePaxos(t).acc.Accept(0, me, paxos.ValYes)
			}
		}
		if t.px != nil && !t.resolved() && !t.recovering {
			chase[r.TxID] = true
		}
		sh.mu.Unlock()
	}

	s.Start()

	// Post-start actions go through the normal send path, each under its
	// transaction's owning shard.
	for _, t := range pending {
		sh := s.shardFor(t.id)
		sh.mu.Lock()
		sh.broadcastOutcome(t)
		sh.mu.Unlock()
	}
	for _, t := range inDoubt {
		sh := s.shardFor(t.id)
		sh.mu.Lock()
		sh.queryOutcome(t)
		sh.mu.Unlock()
	}
	if len(chase) > 0 {
		cids := make([]string, 0, len(chase))
		for id := range chase {
			cids = append(cids, id)
		}
		sort.Strings(cids)
		for _, id := range cids {
			sh := s.shardFor(id)
			sh.mu.Lock()
			if t, ok := sh.txns[id]; ok && !t.resolved() && !t.recovering {
				sh.armTimer(t, sh.protoTimeout())
			}
			sh.mu.Unlock()
		}
	}
	if s.forget > 0 {
		// Resume garbage collection for resolved transactions that survived
		// the crash: coordinators re-collect DEC-ACKs, participants forget
		// after the grace period. Decentralized transactions (known cohort,
		// no coordinator) stay: with no collection point, forgetting could
		// strand a recovering peer with nobody who remembers the outcome.
		for _, id := range ids {
			sh := s.shardFor(id)
			sh.mu.Lock()
			t, ok := sh.txns[id]
			if !ok || !t.resolved() {
				sh.mu.Unlock()
				continue
			}
			if t.meta.Coordinator == 0 && !t.coordinator && len(t.meta.Participants) > 0 {
				sh.mu.Unlock()
				continue
			}
			sh.armTimer(t, s.forget)
			sh.mu.Unlock()
		}
	}
	return s, nil
}

// queryOutcome asks every operational cohort member for the transaction's
// outcome. Requires s.mu held.
func (s *shard) queryOutcome(t *txState) {
	for _, p := range t.meta.Participants {
		if p != s.id && s.det.Alive(p) {
			s.send(p, KindDecideReq, t.id, nil)
		}
	}
	s.armTimer(t, s.protoTimeout())
}

// retryRecovery re-queries the cohort for an in-doubt transaction. Requires
// s.mu held.
func (s *shard) retryRecovery(t *txState) {
	s.queryOutcome(t)
}

// onDecideReq answers an outcome query: from a recovering site, a blocked
// participant nudging its coordinator, or anyone else.
func (s *shard) onDecideReq(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok {
		// No trace at all. Under presumed abort this is itself an answer:
		// from the 2PC coordinator the asker reads it as abort (a commit
		// would have left a forced record); from anyone else it means "no
		// information, stop waiting on me". Distinct from '?', which says
		// "in progress, ask again".
		s.send(m.From, KindDecideRes, m.TxID, []byte{statusNoTrace})
		return
	}
	switch {
	case t.phase == phaseCommitted:
		s.send(m.From, KindDecideRes, m.TxID, []byte{'c'})
	case t.phase == phaseAborted:
		s.send(m.From, KindDecideRes, m.TxID, []byte{'a'})
	case t.recovering:
		// In doubt after a crash: unlike a merely slow site, we can NEVER
		// resolve this on our own, so "no answer yet" would make the asker
		// wait on us forever. Say so explicitly.
		s.send(m.From, KindDecideRes, m.TxID, []byte{statusRecovering})
	default:
		s.send(m.From, KindDecideRes, m.TxID, []byte{'?'})
	}
}

// onDecideRes resolves an in-doubt transaction when a peer knows the
// outcome.
func (s *shard) onDecideRes(m transport.Message) {
	if len(m.Body) < 1 || m.Body[0] == '?' {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[m.TxID]
	if !ok || t.resolved() {
		return
	}
	switch m.Body[0] {
	case 'c':
		t.recovering = false
		s.resolve(t, OutcomeCommitted)
	case 'a':
		t.recovering = false
		s.resolve(t, OutcomeAborted)
	case statusNoTrace:
		// The answering site has no trace of the transaction. From the 2PC
		// coordinator that is the presumed-abort verdict: it never forced a
		// commit record, so it never sent COMMIT. From anyone else (an
		// ex-read-only member, a site that already forgot a settled abort)
		// it is no information: an in-doubt asker keeps querying until
		// someone who knows — ultimately the coordinator — answers, and a
		// non-recovering asker excludes the site and terminates among the
		// rest.
		if s.kind == TwoPhase && !t.peer && t.meta.Coordinator != 0 && m.From == t.meta.Coordinator {
			s.record("presume-abort", t.id, "coordinator has no trace")
			t.recovering = false
			s.resolve(t, OutcomeAborted)
			return
		}
		if t.recovering {
			// Generalized presumption, any protocol: every commit-deciding
			// path (coordinator, 3PC backup, Paxos takeover leader) claims
			// the settlement collection point and retains the outcome until
			// this site acknowledges it, so a commit this site might still
			// ask about always has a living witness. An abort does not — a
			// unilateral NO-voter settles as an ordinary participant and the
			// whole cohort may forget. So once every other cohort member has
			// answered "no trace", no commit witness exists and the
			// transaction cannot have committed anywhere: presume abort.
			if !t.peer {
				t.noTrace.add(t.cohortIdx(m.From))
				all := true
				for i, p := range t.meta.Participants {
					if p != s.id && !t.noTrace.has(i) {
						all = false
						break
					}
				}
				if all {
					s.record("presume-abort", t.id, "no cohort member has any trace")
					t.recovering = false
					s.resolve(t, OutcomeAborted)
					return
				}
			}
			return // keep querying; someone who knows must answer
		}
		if t.excluded == nil {
			t.excluded = map[int]bool{}
		}
		t.excluded[m.From] = true
		if s.kind == PaxosCommit {
			s.paxosTakeover(t)
			return
		}
		s.startTermination(t)
	case statusRecovering:
		// The site we were waiting on is itself in doubt after a crash —
		// typically a recovered coordinator we keep nudging. It will never
		// decide on its own; exclude it and run the termination protocol
		// among the operational sites instead.
		if t.recovering {
			return // both in doubt: keep querying, someone else must know
		}
		if t.excluded == nil {
			t.excluded = map[int]bool{}
		}
		t.excluded[m.From] = true
		if s.kind == PaxosCommit {
			s.paxosTakeover(t) // re-elect the takeover leader without it
			return
		}
		s.startTermination(t)
	}
}

// InDoubt reports the transactions this site cannot yet resolve after
// recovery, sorted by ID.
func (s *Site) InDoubt() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, t := range sh.txns {
			if t.recovering && !t.resolved() {
				out = append(out, id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}
