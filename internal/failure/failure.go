// Package failure provides site-failure detection, realizing the paper's
// network assumption that "the underlying network can detect the failure of
// a site and reliably report it to an operational site".
//
// Two detectors are provided. OracleDetector is a perfect failure detector
// wired to the in-memory transport.Network's crash state; it exactly matches
// the paper's model and is used by tests, examples, and benchmarks.
// HeartbeatDetector approximates the assumption over real transports by
// exchanging periodic heartbeats and declaring a peer crashed after a
// timeout.
package failure

import (
	"sync"
	"time"

	"nbcommit/internal/transport"
)

// Detector reports which sites are operational and notifies watchers of
// crashes.
type Detector interface {
	// Alive reports whether the site is currently believed operational.
	Alive(site int) bool
	// Watch registers a callback invoked once per detected crash.
	Watch(cb func(site int))
}

// OracleDetector is a perfect failure detector over an in-memory Network: it
// reports exactly the network's crash state with no false suspicions and no
// delay.
type OracleDetector struct {
	net *transport.Network

	mu       sync.Mutex
	watchers []func(int)
}

// NewOracle returns a perfect detector bound to net.
func NewOracle(net *transport.Network) *OracleDetector {
	d := &OracleDetector{net: net}
	net.WatchCrashes(func(site int) {
		d.mu.Lock()
		ws := append([]func(int){}, d.watchers...)
		d.mu.Unlock()
		for _, w := range ws {
			w(site)
		}
	})
	return d
}

// Alive implements Detector.
func (d *OracleDetector) Alive(site int) bool { return d.net.Alive(site) }

// Watch implements Detector.
func (d *OracleDetector) Watch(cb func(site int)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.watchers = append(d.watchers, cb)
}

// HeartbeatKind is the transport message kind used for heartbeats; message
// loops should route messages of this kind to HeartbeatDetector.Observe.
const HeartbeatKind = "HB"

// HeartbeatDetector suspects peers that stop sending heartbeats. It sends
// its own heartbeats through a caller-provided send function (so it composes
// with any transport) and is told about inbound heartbeats via Observe.
//
// A peer declared crashed stays crashed until Observe sees it again, at
// which point it is reinstated (a restarted site).
type HeartbeatDetector struct {
	self     int
	peers    []int
	interval time.Duration
	timeout  time.Duration
	send     func(to int)

	mu       sync.Mutex
	lastSeen map[int]time.Time
	dead     map[int]bool
	watchers []func(int)
	stop     chan struct{}
	done     chan struct{}
}

// NewHeartbeat creates a detector for self among peers. send must transmit a
// heartbeat message to the given site (typically wrapping Endpoint.Send with
// Kind=HeartbeatKind). Call Start to begin, Stop to halt.
func NewHeartbeat(self int, peers []int, interval, timeout time.Duration, send func(to int)) *HeartbeatDetector {
	d := &HeartbeatDetector{
		self:     self,
		peers:    append([]int(nil), peers...),
		interval: interval,
		timeout:  timeout,
		send:     send,
		lastSeen: map[int]time.Time{},
		dead:     map[int]bool{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	now := time.Now()
	for _, p := range d.peers {
		d.lastSeen[p] = now
	}
	return d
}

// Start launches the heartbeat/checking loop.
func (d *HeartbeatDetector) Start() {
	go func() {
		defer close(d.done)
		ticker := time.NewTicker(d.interval)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
				for _, p := range d.peers {
					if p != d.self {
						d.send(p)
					}
				}
				d.check()
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit.
func (d *HeartbeatDetector) Stop() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
}

// Observe records a heartbeat (or any message) from a peer, refuting any
// suspicion of it.
func (d *HeartbeatDetector) Observe(from int) {
	d.mu.Lock()
	d.lastSeen[from] = time.Now()
	delete(d.dead, from)
	d.mu.Unlock()
}

func (d *HeartbeatDetector) check() {
	now := time.Now()
	var newlyDead []int
	d.mu.Lock()
	for _, p := range d.peers {
		if p == d.self || d.dead[p] {
			continue
		}
		if now.Sub(d.lastSeen[p]) > d.timeout {
			d.dead[p] = true
			newlyDead = append(newlyDead, p)
		}
	}
	ws := append([]func(int){}, d.watchers...)
	d.mu.Unlock()
	for _, p := range newlyDead {
		for _, w := range ws {
			w(p)
		}
	}
}

// Alive implements Detector.
func (d *HeartbeatDetector) Alive(site int) bool {
	if site == d.self {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.dead[site]
}

// Watch implements Detector.
func (d *HeartbeatDetector) Watch(cb func(site int)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.watchers = append(d.watchers, cb)
}
