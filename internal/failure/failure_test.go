package failure

import (
	"sync"
	"testing"
	"time"

	"nbcommit/internal/transport"
)

func TestOracleAliveTracksNetwork(t *testing.T) {
	net := transport.NewNetwork()
	net.Endpoint(1)
	net.Endpoint(2)
	d := NewOracle(net)
	if !d.Alive(1) || !d.Alive(2) {
		t.Fatal("sites should be alive")
	}
	net.Crash(2)
	if d.Alive(2) {
		t.Fatal("site 2 should be dead")
	}
	if !d.Alive(1) {
		t.Fatal("site 1 should be alive")
	}
}

func TestOracleWatch(t *testing.T) {
	net := transport.NewNetwork()
	net.Endpoint(1)
	net.Endpoint(2)
	net.Endpoint(3)
	d := NewOracle(net)

	var mu sync.Mutex
	var seen []int
	d.Watch(func(site int) {
		mu.Lock()
		seen = append(seen, site)
		mu.Unlock()
	})
	net.Crash(3)
	net.Crash(2)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 2 {
		t.Fatalf("watched crashes = %v", seen)
	}
}

func TestHeartbeatDetectsSilence(t *testing.T) {
	var mu sync.Mutex
	sent := map[int]int{}
	d := NewHeartbeat(1, []int{1, 2, 3}, 5*time.Millisecond, 25*time.Millisecond,
		func(to int) {
			mu.Lock()
			sent[to]++
			mu.Unlock()
		})
	crashes := make(chan int, 8)
	d.Watch(func(site int) { crashes <- site })
	d.Start()
	defer d.Stop()

	// Keep site 2 alive; let site 3 go silent.
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(3 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				d.Observe(2)
			}
		}
	}()
	defer close(stop)

	select {
	case site := <-crashes:
		if site != 3 {
			t.Fatalf("detected crash of %d, want 3", site)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crash of silent site not detected")
	}
	if d.Alive(3) {
		t.Fatal("site 3 should be suspected")
	}
	if !d.Alive(2) {
		t.Fatal("site 2 should be alive")
	}
	if !d.Alive(1) {
		t.Fatal("self is always alive")
	}
	mu.Lock()
	defer mu.Unlock()
	if sent[2] == 0 || sent[3] == 0 {
		t.Fatalf("heartbeats not sent: %v", sent)
	}
	if sent[1] != 0 {
		t.Fatal("detector heartbeats itself")
	}
}

func TestHeartbeatReinstatesOnObserve(t *testing.T) {
	d := NewHeartbeat(1, []int{1, 2}, 5*time.Millisecond, 20*time.Millisecond, func(int) {})
	crashes := make(chan int, 8)
	d.Watch(func(site int) { crashes <- site })
	d.Start()
	defer d.Stop()

	select {
	case <-crashes:
	case <-time.After(2 * time.Second):
		t.Fatal("no crash detected")
	}
	d.Observe(2)
	if !d.Alive(2) {
		t.Fatal("site 2 should be reinstated after Observe")
	}
	// And it can be re-suspected after going silent again.
	select {
	case site := <-crashes:
		if site != 2 {
			t.Fatalf("re-detected %d", site)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("site not re-suspected")
	}
}

func TestHeartbeatStopIsIdempotent(t *testing.T) {
	d := NewHeartbeat(1, []int{1, 2}, time.Millisecond, 10*time.Millisecond, func(int) {})
	d.Start()
	d.Stop()
	d.Stop()
}
