package protocol

import (
	"fmt"
	"strconv"
	"strings"
)

// Compile builds a Protocol from a textual definition, so new commit
// protocols can be designed and analyzed without writing Go. The language
// mirrors the paper's figures: roles, states with initial/commit/abort
// markers, and message-driven transitions.
//
// Example (the central-site 2PC of slide 15):
//
//	protocol my-2pc
//	roles coordinator@1 slave@rest
//	init request@1
//
//	role coordinator
//	  states q* w a! c+
//	  q -> w : recv request@env          ; send xact@slaves
//	  w -> c : recv yes@slaves           ; send commit@slaves ; vote yes
//	  w -> a : recv yes@slaves           ; send abort@slaves  ; vote no
//	  w -> a : recv no@any               ; send abort@slaves
//
//	role slave
//	  states q* w a! c+
//	  q -> w : recv xact@coordinator     ; send yes@coordinator ; vote yes
//	  q -> a : recv xact@coordinator     ; send no@coordinator  ; vote no
//	  w -> c : recv commit@coordinator
//	  w -> a : recv abort@coordinator
//
// Destinations: @env (the environment; recv/init only), @any (wildcard
// sender; recv only), @self, @all (every site including self), @peers
// (every other site), @coordinator / @<rolename> (every site bound to that
// role, excluding self), @slaves (alias for the non-first role), or @<n>
// (a literal site number). `roles r@1 s@rest` binds r to site 1 and s to
// the remaining sites; `roles p@all` declares a single symmetric role.
// State markers: `*` initial, `+` commit, `!` abort; unmarked states are
// intermediate. Lines starting with # are comments.
//
// n is the number of participating sites the protocol is instantiated for.
func Compile(src string, n int) (*Protocol, error) {
	if n < 2 {
		return nil, fmt.Errorf("protocol: need at least 2 sites, got %d", n)
	}
	c := &compiler{n: n, roles: map[string][]SiteID{}}
	if err := c.parse(src); err != nil {
		return nil, err
	}
	return c.build()
}

type dslTransition struct {
	from, to StateID
	recvs    []dslMsg
	sends    []dslMsg
	vote     Vote
	line     int
}

type dslMsg struct {
	name string
	dest string // raw destination token, resolved per site at build time
}

type dslRole struct {
	name   string
	states map[StateID]StateKind
	order  []StateID
	init   StateID
	trans  []dslTransition
}

type compiler struct {
	n        int
	name     string
	roles    map[string][]SiteID // role name -> bound sites
	roleSeq  []string
	sections []*dslRole
	inits    []dslMsg
}

func (c *compiler) parse(src string) error {
	var cur *dslRole
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		ln := lineNo + 1
		switch fields[0] {
		case "protocol":
			if len(fields) != 2 {
				return fmt.Errorf("line %d: usage: protocol <name>", ln)
			}
			c.name = fields[1]
		case "roles":
			if err := c.parseRoles(fields[1:], ln); err != nil {
				return err
			}
		case "init":
			msgs, err := parseMsgSpecs(fields[1:], ln)
			if err != nil {
				return err
			}
			c.inits = append(c.inits, msgs...)
		case "role":
			if len(fields) != 2 {
				return fmt.Errorf("line %d: usage: role <name>", ln)
			}
			if _, ok := c.roles[fields[1]]; !ok {
				return fmt.Errorf("line %d: role %q not declared in roles", ln, fields[1])
			}
			cur = &dslRole{name: fields[1], states: map[StateID]StateKind{}}
			c.sections = append(c.sections, cur)
		case "states":
			if cur == nil {
				return fmt.Errorf("line %d: states outside a role section", ln)
			}
			if err := cur.parseStates(fields[1:], ln); err != nil {
				return err
			}
		default:
			if cur == nil {
				return fmt.Errorf("line %d: unexpected %q outside a role section", ln, fields[0])
			}
			if err := cur.parseTransition(line, ln); err != nil {
				return err
			}
		}
	}
	if c.name == "" {
		return fmt.Errorf("protocol: missing `protocol <name>` line")
	}
	if len(c.roleSeq) == 0 {
		return fmt.Errorf("protocol: missing `roles` line")
	}
	return nil
}

func (c *compiler) parseRoles(tokens []string, ln int) error {
	if len(tokens) == 0 {
		return fmt.Errorf("line %d: roles needs at least one binding", ln)
	}
	bound := map[SiteID]bool{}
	var rest string
	for _, tok := range tokens {
		parts := strings.SplitN(tok, "@", 2)
		if len(parts) != 2 {
			return fmt.Errorf("line %d: bad role binding %q (want name@site)", ln, tok)
		}
		name, where := parts[0], parts[1]
		if _, dup := c.roles[name]; dup {
			return fmt.Errorf("line %d: role %q bound twice", ln, name)
		}
		c.roleSeq = append(c.roleSeq, name)
		switch where {
		case "all":
			if len(tokens) != 1 {
				return fmt.Errorf("line %d: @all must be the only role", ln)
			}
			for i := 1; i <= c.n; i++ {
				c.roles[name] = append(c.roles[name], SiteID(i))
			}
		case "rest":
			if rest != "" {
				return fmt.Errorf("line %d: only one role may bind @rest", ln)
			}
			rest = name
			c.roles[name] = nil // filled below
		default:
			id, err := strconv.Atoi(where)
			if err != nil || id < 1 || id > c.n {
				return fmt.Errorf("line %d: bad site %q in role binding", ln, where)
			}
			if bound[SiteID(id)] {
				return fmt.Errorf("line %d: site %d bound twice", ln, id)
			}
			bound[SiteID(id)] = true
			c.roles[name] = append(c.roles[name], SiteID(id))
		}
	}
	if rest != "" {
		for i := 1; i <= c.n; i++ {
			if !bound[SiteID(i)] {
				c.roles[rest] = append(c.roles[rest], SiteID(i))
			}
		}
		if len(c.roles[rest]) == 0 {
			return fmt.Errorf("line %d: @rest binds no sites for n=%d", ln, c.n)
		}
	}
	return nil
}

func (r *dslRole) parseStates(tokens []string, ln int) error {
	if len(tokens) == 0 {
		return fmt.Errorf("line %d: states needs at least one state", ln)
	}
	for _, tok := range tokens {
		kind := KindIntermediate
		name := tok
		switch {
		case strings.HasSuffix(tok, "*"):
			kind = KindInitial
			name = strings.TrimSuffix(tok, "*")
		case strings.HasSuffix(tok, "+"):
			kind = KindCommit
			name = strings.TrimSuffix(tok, "+")
		case strings.HasSuffix(tok, "!"):
			kind = KindAbort
			name = strings.TrimSuffix(tok, "!")
		}
		if name == "" {
			return fmt.Errorf("line %d: empty state name in %q", ln, tok)
		}
		id := StateID(name)
		if _, dup := r.states[id]; dup {
			return fmt.Errorf("line %d: state %q declared twice", ln, name)
		}
		r.states[id] = kind
		r.order = append(r.order, id)
		if kind == KindInitial {
			if r.init != "" {
				return fmt.Errorf("line %d: two initial states (%s, %s)", ln, r.init, name)
			}
			r.init = id
		}
	}
	return nil
}

// parseTransition handles "from -> to : recv ... [; send ...] [; vote yes]".
func (r *dslRole) parseTransition(line string, ln int) error {
	head, rest, ok := strings.Cut(line, ":")
	if !ok {
		return fmt.Errorf("line %d: transition needs `from -> to : ...`", ln)
	}
	fromTo := strings.Split(head, "->")
	if len(fromTo) != 2 {
		return fmt.Errorf("line %d: bad transition head %q", ln, strings.TrimSpace(head))
	}
	tr := dslTransition{
		from: StateID(strings.TrimSpace(fromTo[0])),
		to:   StateID(strings.TrimSpace(fromTo[1])),
		line: ln,
	}
	for _, clause := range strings.Split(rest, ";") {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "recv":
			msgs, err := parseMsgSpecs(fields[1:], ln)
			if err != nil {
				return err
			}
			tr.recvs = append(tr.recvs, msgs...)
		case "send":
			msgs, err := parseMsgSpecs(fields[1:], ln)
			if err != nil {
				return err
			}
			tr.sends = append(tr.sends, msgs...)
		case "vote":
			if len(fields) != 2 {
				return fmt.Errorf("line %d: usage: vote yes|no", ln)
			}
			switch fields[1] {
			case "yes":
				tr.vote = VoteYes
			case "no":
				tr.vote = VoteNo
			default:
				return fmt.Errorf("line %d: bad vote %q", ln, fields[1])
			}
		default:
			return fmt.Errorf("line %d: unknown clause %q", ln, fields[0])
		}
	}
	if len(tr.recvs) == 0 {
		return fmt.Errorf("line %d: transition reads no messages", ln)
	}
	r.trans = append(r.trans, tr)
	return nil
}

func parseMsgSpecs(tokens []string, ln int) ([]dslMsg, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("line %d: empty message list", ln)
	}
	var out []dslMsg
	for _, tok := range tokens {
		name, dest, ok := strings.Cut(tok, "@")
		if !ok || name == "" || dest == "" {
			return nil, fmt.Errorf("line %d: bad message %q (want name@dest)", ln, tok)
		}
		out = append(out, dslMsg{name: name, dest: dest})
	}
	return out, nil
}

// resolve expands a destination token for a given site into site IDs.
// Wildcards and env return the pseudo-IDs AnySite / Env.
func (c *compiler) resolve(dest string, self SiteID) ([]SiteID, error) {
	switch dest {
	case "env":
		return []SiteID{Env}, nil
	case "any":
		return []SiteID{AnySite}, nil
	case "self":
		return []SiteID{self}, nil
	case "all":
		out := make([]SiteID, 0, c.n)
		for i := 1; i <= c.n; i++ {
			out = append(out, SiteID(i))
		}
		return out, nil
	case "peers":
		out := make([]SiteID, 0, c.n-1)
		for i := 1; i <= c.n; i++ {
			if SiteID(i) != self {
				out = append(out, SiteID(i))
			}
		}
		return out, nil
	case "slaves":
		if len(c.roleSeq) < 2 {
			return nil, fmt.Errorf("@slaves needs a second role")
		}
		dest = c.roleSeq[1]
	}
	if sites, ok := c.roles[dest]; ok {
		var out []SiteID
		for _, s := range sites {
			if s != self {
				out = append(out, s)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("destination @%s resolves to no sites from site %d", dest, int(self))
		}
		return out, nil
	}
	if id, err := strconv.Atoi(dest); err == nil {
		if id < 1 || id > c.n {
			return nil, fmt.Errorf("destination @%d out of range", id)
		}
		return []SiteID{SiteID(id)}, nil
	}
	return nil, fmt.Errorf("unknown destination @%s", dest)
}

func (c *compiler) build() (*Protocol, error) {
	sections := map[string]*dslRole{}
	for _, sec := range c.sections {
		sections[sec.name] = sec
	}
	for _, name := range c.roleSeq {
		if sections[name] == nil {
			return nil, fmt.Errorf("protocol %s: role %q has no section", c.name, name)
		}
		if sections[name].init == "" {
			return nil, fmt.Errorf("protocol %s: role %q has no initial state", c.name, name)
		}
	}

	sites := make([]*Automaton, c.n)
	for _, name := range c.roleSeq {
		sec := sections[name]
		for _, self := range c.roles[name] {
			a := &Automaton{
				Site: self, Name: name, Initial: sec.init,
				States: map[StateID]StateKind{},
			}
			for id, k := range sec.states {
				a.States[id] = k
			}
			for _, tr := range sec.trans {
				t := Transition{From: tr.from, To: tr.to, Vote: tr.vote}
				for _, m := range tr.recvs {
					froms, err := c.resolve(m.dest, self)
					if err != nil {
						return nil, fmt.Errorf("protocol %s line %d: %v", c.name, tr.line, err)
					}
					for _, f := range froms {
						t.Reads = append(t.Reads, Pattern{Name: m.name, From: f})
					}
				}
				for _, m := range tr.sends {
					tos, err := c.resolve(m.dest, self)
					if err != nil {
						return nil, fmt.Errorf("protocol %s line %d: %v", c.name, tr.line, err)
					}
					for _, to := range tos {
						if to == Env || to == AnySite {
							return nil, fmt.Errorf("protocol %s line %d: cannot send to @%s", c.name, tr.line, m.dest)
						}
						t.Sends = append(t.Sends, Msg{Name: m.name, From: self, To: to})
					}
				}
				a.Transitions = append(a.Transitions, t)
			}
			sites[int(self)-1] = a
		}
	}
	for i, a := range sites {
		if a == nil {
			return nil, fmt.Errorf("protocol %s: site %d bound to no role", c.name, i+1)
		}
	}

	p := &Protocol{Name: fmt.Sprintf("%s (n=%d)", c.name, c.n), Sites: sites}
	for _, m := range c.inits {
		dests, err := c.resolve(m.dest, 0)
		if err != nil {
			return nil, fmt.Errorf("protocol %s: init: %v", c.name, err)
		}
		for _, d := range dests {
			if d == Env || d == AnySite {
				return nil, fmt.Errorf("protocol %s: init cannot target @%s", c.name, m.dest)
			}
			p.Initial = append(p.Initial, Msg{Name: m.name, From: Env, To: d})
		}
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}
