package protocol

import "testing"

// FuzzCompile: arbitrary DSL sources never panic the compiler, and whatever
// compiles also validates.
func FuzzCompile(f *testing.F) {
	f.Add("protocol p\nroles a@all\ninit x@all\nrole a\n  states q* c+ a!\n  q -> c : recv x@env", 3)
	f.Add("protocol p\nroles a@1 b@rest\nrole a\n states q*", 2)
	f.Add("", 2)
	f.Add("garbage\n###", 4)
	f.Fuzz(func(t *testing.T, src string, n int) {
		if n < 2 || n > 6 {
			n = 2 + (n%5+5)%5
		}
		p, err := Compile(src, n)
		if err != nil {
			return
		}
		if verr := Validate(p); verr != nil {
			t.Fatalf("compiled protocol fails validation: %v\nsource:\n%s", verr, src)
		}
	})
}
