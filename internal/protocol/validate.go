package protocol

import (
	"errors"
	"fmt"
)

// Validate checks the structural properties that the paper requires of
// distributed commit protocol FSAs (slide "Properties of the FSAs"):
//
//  1. every automaton has exactly one initial state and at least one final
//     state, and its final states partition into commit and abort states;
//  2. every transition references known states, reads a nonempty message
//     string, and never leaves a final state (commit and abort are
//     irreversible);
//  3. the state diagram is acyclic;
//  4. message destinations and read patterns reference participating sites
//     (or the environment / wildcard).
//
// It returns an error describing the first violation found.
func Validate(p *Protocol) error {
	if p.N() < 2 {
		return fmt.Errorf("protocol %s: fewer than 2 sites", p.Name)
	}
	for i, a := range p.Sites {
		if want := SiteID(i + 1); a.Site != want {
			return fmt.Errorf("protocol %s: automaton %d has site ID %d, want %d",
				p.Name, i, int(a.Site), int(want))
		}
		if err := validateAutomaton(a, p.N()); err != nil {
			return fmt.Errorf("protocol %s: %w", p.Name, err)
		}
	}
	for _, m := range p.Initial {
		if m.From != Env {
			return fmt.Errorf("protocol %s: initial message %s not from the environment", p.Name, m)
		}
		if int(m.To) < 1 || int(m.To) > p.N() {
			return fmt.Errorf("protocol %s: initial message %s addressed to unknown site", p.Name, m)
		}
	}
	if len(p.Initial) == 0 {
		return fmt.Errorf("protocol %s: no initial environment messages; no site can ever move", p.Name)
	}
	return nil
}

func validateAutomaton(a *Automaton, n int) error {
	if len(a.States) == 0 {
		return fmt.Errorf("site %d: no states", a.Site)
	}
	initials, commits, aborts := 0, 0, 0
	for id, k := range a.States {
		switch k {
		case KindInitial:
			initials++
			if id != a.Initial {
				return fmt.Errorf("site %d: state %q marked initial but automaton initial is %q", a.Site, id, a.Initial)
			}
		case KindCommit:
			commits++
		case KindAbort:
			aborts++
		}
	}
	if initials != 1 {
		return fmt.Errorf("site %d: %d initial states, want exactly 1", a.Site, initials)
	}
	if _, ok := a.States[a.Initial]; !ok {
		return fmt.Errorf("site %d: initial state %q not declared", a.Site, a.Initial)
	}
	if commits == 0 && aborts == 0 {
		return fmt.Errorf("site %d: no final states", a.Site)
	}
	for _, t := range a.Transitions {
		fromKind, ok := a.States[t.From]
		if !ok {
			return fmt.Errorf("site %d: transition from unknown state %q", a.Site, t.From)
		}
		if _, ok := a.States[t.To]; !ok {
			return fmt.Errorf("site %d: transition to unknown state %q", a.Site, t.To)
		}
		if fromKind.Final() {
			return fmt.Errorf("site %d: transition %s leaves final state %q (commit/abort are irreversible)",
				a.Site, t, t.From)
		}
		if len(t.Reads) == 0 {
			return fmt.Errorf("site %d: transition %s reads an empty message string", a.Site, t)
		}
		for _, r := range t.Reads {
			if r.From != AnySite && r.From != Env && (int(r.From) < 1 || int(r.From) > n) {
				return fmt.Errorf("site %d: transition %s reads from unknown site %d", a.Site, t, int(r.From))
			}
		}
		for _, m := range t.Sends {
			if m.From != a.Site {
				return fmt.Errorf("site %d: transition %s sends message with forged sender %d", a.Site, t, int(m.From))
			}
			if int(m.To) < 1 || int(m.To) > n {
				return fmt.Errorf("site %d: transition %s sends to unknown site %d", a.Site, t, int(m.To))
			}
		}
	}
	if cyc := findCycle(a); cyc != "" {
		return fmt.Errorf("site %d: state diagram is cyclic (%s)", a.Site, cyc)
	}
	return nil
}

// findCycle returns a description of a cycle in the automaton's state
// diagram, or "" if the diagram is acyclic.
func findCycle(a *Automaton) string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[StateID]int{}
	var visit func(s StateID) string
	visit = func(s StateID) string {
		color[s] = gray
		for _, t := range a.Transitions {
			if t.From != s {
				continue
			}
			switch color[t.To] {
			case gray:
				return fmt.Sprintf("%s -> %s closes a cycle", s, t.To)
			case white:
				if msg := visit(t.To); msg != "" {
					return msg
				}
			}
		}
		color[s] = black
		return ""
	}
	for id := range a.States {
		if color[id] == white {
			if msg := visit(id); msg != "" {
				return msg
			}
		}
	}
	return ""
}

// ErrNoUnilateralAbort is returned by CheckUnilateralAbort for protocols, such
// as 1PC, in which some site cannot abort of its own accord after the
// transaction has been distributed to it.
var ErrNoUnilateralAbort = errors.New("protocol: a site cannot unilaterally abort")

// CheckUnilateralAbort verifies that every non-coordinator automaton has a
// vote-no transition, i.e. that a server may refuse to commit its part of a
// transaction (needed, e.g., to resolve deadlocks under locking or failed
// validation under optimistic concurrency control). 1PC fails this check;
// that is the paper's argument for its inadequacy.
func CheckUnilateralAbort(p *Protocol) error {
	for _, a := range p.Sites {
		if a.Name == "coordinator" {
			continue
		}
		hasNo := false
		for _, t := range a.Transitions {
			if t.Vote == VoteNo {
				hasNo = true
				break
			}
		}
		if !hasNo {
			return fmt.Errorf("%w: site %d (%s) in %s", ErrNoUnilateralAbort, a.Site, a.Name, p.Name)
		}
	}
	return nil
}

// Depth returns the length of the longest transition path from the
// automaton's initial state to s. A state may be reachable by paths of
// different lengths (the abort state of 2PC is entered from q or from w);
// the longest path is what bounds a complete execution. The initial state
// has depth 0; unreachable states yield an error.
func (a *Automaton) Depth(s StateID) (int, error) {
	depth := map[StateID]int{a.Initial: 0}
	// The diagram is acyclic and small; iterate to the longest-path fixed
	// point.
	changed := true
	for changed {
		changed = false
		for _, t := range a.Transitions {
			d, ok := depth[t.From]
			if !ok {
				continue
			}
			if prev, ok := depth[t.To]; !ok || d+1 > prev {
				depth[t.To] = d + 1
				changed = true
			}
		}
	}
	d, ok := depth[s]
	if !ok {
		return 0, fmt.Errorf("protocol: site %d state %q unreachable from %q", a.Site, s, a.Initial)
	}
	return d, nil
}

// Phases returns the number of phases of the protocol: the maximum number of
// transitions any site makes on a complete execution ("a phase occurs when
// all sites executing the protocol make a state transition"). 2PC has two
// phases, 3PC has three.
func Phases(p *Protocol) (int, error) {
	max := 0
	for _, a := range p.Sites {
		for id, k := range a.States {
			if !k.Final() {
				continue
			}
			d, err := a.Depth(id)
			if err != nil {
				return 0, err
			}
			if d > max {
				max = d
			}
		}
	}
	return max, nil
}
