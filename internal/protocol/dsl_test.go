package protocol

import (
	"strings"
	"testing"
)

const dsl2PC = `
# The central-site 2PC of slide 15.
protocol my-2pc
roles coordinator@1 slave@rest
init request@1

role coordinator
  states q* w a! c+
  q -> w : recv request@env ; send xact@slaves
  w -> c : recv yes@slaves  ; send commit@slaves ; vote yes
  w -> a : recv yes@slaves  ; send abort@slaves  ; vote no
  w -> a : recv no@any      ; send abort@slaves

role slave
  states q* w a! c+
  q -> w : recv xact@coordinator ; send yes@coordinator ; vote yes
  q -> a : recv xact@coordinator ; send no@coordinator  ; vote no
  w -> c : recv commit@coordinator
  w -> a : recv abort@coordinator
`

const dslDecentral3PC = `
protocol my-d3pc
roles peer@all
init xact@all

role peer
  states q* w p a! c+
  q -> w : recv xact@env ; send yes@all ; vote yes
  q -> a : recv xact@env ; send no@all  ; vote no
  w -> p : recv yes@all  ; send prepare@all
  w -> a : recv no@any
  p -> c : recv prepare@all
`

func TestCompileCentral2PC(t *testing.T) {
	p, err := Compile(dsl2PC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 || !strings.HasPrefix(p.Name, "my-2pc") {
		t.Fatalf("protocol = %v", p)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	// The coordinator reads a vote from each slave on its commit edge.
	coord := p.Sites[0]
	if coord.Name != "coordinator" {
		t.Fatalf("site 1 role = %s", coord.Name)
	}
	var commit *Transition
	for i := range coord.Transitions {
		if coord.Transitions[i].To == "c" {
			commit = &coord.Transitions[i]
		}
	}
	if commit == nil || len(commit.Reads) != 2 || commit.Vote != VoteYes {
		t.Fatalf("commit transition = %+v", commit)
	}
	if len(commit.Sends) != 2 {
		t.Fatalf("commit sends = %v", commit.Sends)
	}
	// Slaves are slaves.
	for _, site := range p.Sites[1:] {
		if site.Name != "slave" {
			t.Fatalf("site %d role = %s", site.Site, site.Name)
		}
	}
	// The initial environment message targets the coordinator.
	if len(p.Initial) != 1 || p.Initial[0].To != 1 || p.Initial[0].Name != "request" {
		t.Fatalf("initial = %v", p.Initial)
	}
	// And phases come out right.
	if ph, err := Phases(p); err != nil || ph != 2 {
		t.Fatalf("phases = %d, %v", ph, err)
	}
}

func TestCompileDecentralized3PC(t *testing.T) {
	p, err := Compile(dslDecentral3PC, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Initial) != 4 {
		t.Fatalf("initial = %v", p.Initial)
	}
	for _, a := range p.Sites {
		if a.Name != "peer" {
			t.Fatalf("site %d role = %s", a.Site, a.Name)
		}
		// @all includes self: the vote broadcast has 4 destinations.
		for _, tr := range a.Transitions {
			if tr.Vote == VoteYes && len(tr.Sends) != 4 {
				t.Fatalf("site %d yes-vote sends %d messages", a.Site, len(tr.Sends))
			}
		}
	}
	if ph, err := Phases(p); err != nil || ph != 3 {
		t.Fatalf("phases = %d, %v", ph, err)
	}
}

func TestCompileWildcardAndSelf(t *testing.T) {
	p, err := Compile(dsl2PC, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := p.Sites[0]
	found := false
	for _, tr := range coord.Transitions {
		for _, r := range tr.Reads {
			if r.From == AnySite && r.Name == "no" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("@any did not compile to a wildcard pattern")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no protocol", "roles p@all\nrole p\n  states q* c+\n  q -> c : recv x@env", "missing `protocol"},
		{"no roles", "protocol x", "missing `roles`"},
		{"bad binding", "protocol x\nroles p", "bad role binding"},
		{"dup role", "protocol x\nroles p@1 p@rest", "bound twice"},
		{"dup site", "protocol x\nroles p@1 q@1", "bound twice"},
		{"two rest", "protocol x\nroles p@rest q@rest", "only one role may bind @rest"},
		{"all plus", "protocol x\nroles p@all q@1", "@all must be the only role"},
		{"undeclared role", "protocol x\nroles p@all\nrole z", `role "z" not declared`},
		{"states outside", "protocol x\nroles p@all\nstates q*", "outside a role"},
		{"trans outside", "protocol x\nroles p@all\nq -> c : recv x@env", "outside a role"},
		{"two initials", "protocol x\nroles p@all\nrole p\n  states q* w* c+", "two initial states"},
		{"dup state", "protocol x\nroles p@all\nrole p\n  states q* q c+", "declared twice"},
		{"no recv", "protocol x\nroles p@all\nrole p\n  states q* c+\n  q -> c : send x@all", "reads no messages"},
		{"bad msg", "protocol x\nroles p@all\nrole p\n  states q* c+\n  q -> c : recv x", "bad message"},
		{"bad vote", "protocol x\nroles p@all\nrole p\n  states q* c+\n  q -> c : recv x@env ; vote maybe", "bad vote"},
		{"bad clause", "protocol x\nroles p@all\nrole p\n  states q* c+\n  q -> c : frobnicate x@env", "unknown clause"},
		{"bad dest", "protocol x\nroles p@all\ninit m@all\nrole p\n  states q* c+\n  q -> c : recv m@env ; send y@bogus", "unknown destination"},
		{"send to env", "protocol x\nroles p@all\ninit m@all\nrole p\n  states q* c+\n  q -> c : recv m@env ; send y@env", "cannot send to @env"},
		{"missing section", "protocol x\nroles p@1 q@rest\nrole p\n  states q* c+\n  q -> c : recv m@env", `role "q" has no section`},
		{"no initial", "protocol x\nroles p@all\nrole p\n  states w c+\n  w -> c : recv m@env", "no initial state"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, 3)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
	if _, err := Compile(dsl2PC, 1); err == nil {
		t.Fatal("n=1 should fail")
	}
}
