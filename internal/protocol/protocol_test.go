package protocol

import (
	"strings"
	"testing"
)

func TestBuildersValidate(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for _, p := range []*Protocol{
			OnePC(n), CentralTwoPC(n), DecentralizedTwoPC(n),
			CentralThreePC(n), DecentralizedThreePC(n),
		} {
			if err := Validate(p); err != nil {
				t.Errorf("n=%d %s: %v", n, p.Name, err)
			}
		}
	}
}

func TestSiteLookup(t *testing.T) {
	p := CentralTwoPC(3)
	a, err := p.Site(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Site != 2 || a.Name != "slave" {
		t.Fatalf("Site(2) = %v/%s", a.Site, a.Name)
	}
	if _, err := p.Site(0); err == nil {
		t.Fatal("Site(0) should fail")
	}
	if _, err := p.Site(4); err == nil {
		t.Fatal("Site(4) should fail")
	}
}

func TestStateKinds(t *testing.T) {
	if KindCommit.String() != "commit" || KindAbort.String() != "abort" ||
		KindInitial.String() != "initial" || KindIntermediate.String() != "intermediate" {
		t.Fatal("StateKind.String mismatch")
	}
	if !KindCommit.Final() || !KindAbort.Final() {
		t.Fatal("final kinds not final")
	}
	if KindInitial.Final() || KindIntermediate.Final() {
		t.Fatal("non-final kinds reported final")
	}
}

func TestMsgAndPatternString(t *testing.T) {
	m := Msg{Name: "yes", From: 2, To: 1}
	if got := m.String(); got != "yes[2->1]" {
		t.Fatalf("Msg.String = %q", got)
	}
	env := Msg{Name: "xact", From: Env, To: 3}
	if got := env.String(); got != "xact[env->3]" {
		t.Fatalf("env Msg.String = %q", got)
	}
	if got := (Pattern{Name: "no", From: AnySite}).String(); got != "no[*]" {
		t.Fatalf("wildcard Pattern.String = %q", got)
	}
	if got := (Pattern{Name: "xact", From: Env}).String(); got != "xact[env]" {
		t.Fatalf("env Pattern.String = %q", got)
	}
	if got := (Pattern{Name: "yes", From: 4}).String(); got != "yes[4]" {
		t.Fatalf("Pattern.String = %q", got)
	}
}

func TestTransitionString(t *testing.T) {
	tr := Transition{
		From:  StateW,
		To:    StateC,
		Reads: []Pattern{{Name: "yes", From: 2}},
		Sends: []Msg{{Name: "commit", From: 1, To: 2}},
	}
	s := tr.String()
	if !strings.Contains(s, "w --") || !strings.Contains(s, "--> c") {
		t.Fatalf("Transition.String = %q", s)
	}
}

func TestCentralTwoPCShape(t *testing.T) {
	p := CentralTwoPC(4)
	coord := p.Sites[0]
	if coord.Name != "coordinator" || coord.Initial != StateQ {
		t.Fatalf("coordinator malformed: %+v", coord)
	}
	// Slide 15: q->w, w->c (all yes + own yes), w->a (all yes + own no),
	// plus one w->a per combination of responses containing a NO (the
	// coordinator waits for a response from every slave each phase):
	// 3 + (2^3 - 1) = 10 for n=4.
	if got := len(coord.Transitions); got != 10 {
		t.Fatalf("coordinator transitions = %d, want 10", got)
	}
	// The commit transition must read a yes from every slave.
	var commitT *Transition
	for i := range coord.Transitions {
		if coord.Transitions[i].To == StateC {
			commitT = &coord.Transitions[i]
		}
	}
	if commitT == nil {
		t.Fatal("coordinator has no commit transition")
	}
	if len(commitT.Reads) != 3 {
		t.Fatalf("commit reads %d votes, want 3", len(commitT.Reads))
	}
	if commitT.Vote != VoteYes {
		t.Fatal("coordinator commit transition must carry its own yes vote")
	}
	if len(commitT.Sends) != 3 {
		t.Fatalf("commit sends %d messages, want 3", len(commitT.Sends))
	}
	// Slaves vote yes or no upon receiving the transaction.
	slave := p.Sites[1]
	yes, no := false, false
	for _, tr := range slave.Transitions {
		if tr.Vote == VoteYes {
			yes = true
		}
		if tr.Vote == VoteNo {
			no = true
		}
	}
	if !yes || !no {
		t.Fatal("slave missing yes/no vote transitions")
	}
}

func TestDecentralizedIncludesSelfMessages(t *testing.T) {
	// As in the paper, sites send messages to themselves during an
	// interchange.
	p := DecentralizedTwoPC(3)
	a := p.Sites[1] // site 2
	for _, tr := range a.Transitions {
		if tr.Vote != VoteYes {
			continue
		}
		foundSelf := false
		for _, m := range tr.Sends {
			if m.To == a.Site {
				foundSelf = true
			}
		}
		if !foundSelf {
			t.Fatal("yes-vote round does not include a self message")
		}
		if len(tr.Sends) != 3 {
			t.Fatalf("vote round sends %d messages, want 3", len(tr.Sends))
		}
	}
}

func TestPhases(t *testing.T) {
	cases := []struct {
		p    *Protocol
		want int
	}{
		{OnePC(3), 1},
		{CentralTwoPC(3), 2},
		{DecentralizedTwoPC(3), 2},
		{CentralThreePC(3), 3},
		{DecentralizedThreePC(3), 3},
	}
	for _, c := range cases {
		got, err := Phases(c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.p.Name, err)
		}
		if got != c.want {
			t.Errorf("%s: phases = %d, want %d", c.p.Name, got, c.want)
		}
	}
}

func TestDepth(t *testing.T) {
	a := CanonicalThreePC()
	for _, c := range []struct {
		s    StateID
		want int
	}{{StateQ, 0}, {StateW, 1}, {StateP, 2}, {StateC, 3}, {StateA, 2}} {
		got, err := a.Depth(c.s)
		if err != nil {
			t.Fatalf("Depth(%s): %v", c.s, err)
		}
		if got != c.want {
			t.Errorf("Depth(%s) = %d, want %d", c.s, got, c.want)
		}
	}
	if _, err := a.Depth("zz"); err == nil {
		t.Fatal("Depth of unknown state should fail")
	}
}

func TestUnilateralAbort(t *testing.T) {
	// 1PC is inadequate: no unilateral abort (slide 8).
	if err := CheckUnilateralAbort(OnePC(3)); err == nil {
		t.Fatal("1PC should fail the unilateral abort check")
	}
	for _, p := range []*Protocol{
		CentralTwoPC(3), DecentralizedTwoPC(3), CentralThreePC(3), DecentralizedThreePC(3),
	} {
		if err := CheckUnilateralAbort(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Protocol { return CentralTwoPC(2) }

	p := base()
	p.Sites[1].Transitions = append(p.Sites[1].Transitions,
		Transition{From: StateC, To: StateA, Reads: []Pattern{{Name: "x", From: 1}}})
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "irreversible") {
		t.Fatalf("leaving a final state must be rejected, got %v", err)
	}

	p = base()
	p.Sites[1].Transitions = append(p.Sites[1].Transitions,
		Transition{From: StateW, To: StateQ, Reads: []Pattern{{Name: "x", From: 1}}})
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("cycles must be rejected, got %v", err)
	}

	p = base()
	p.Sites[1].Transitions[0].Reads = nil
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "empty message") {
		t.Fatalf("empty reads must be rejected, got %v", err)
	}

	p = base()
	p.Sites[1].Transitions[0].Sends = []Msg{{Name: "x", From: 9, To: 1}}
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "forged sender") {
		t.Fatalf("forged senders must be rejected, got %v", err)
	}

	p = base()
	p.Sites[1].Transitions[0].Sends = []Msg{{Name: "x", From: 2, To: 9}}
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "unknown site") {
		t.Fatalf("unknown destinations must be rejected, got %v", err)
	}

	p = base()
	p.Sites[1].Transitions[0].To = "zz"
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "unknown state") {
		t.Fatalf("unknown states must be rejected, got %v", err)
	}

	p = base()
	p.Initial = nil
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "initial environment") {
		t.Fatalf("missing initial messages must be rejected, got %v", err)
	}

	p = base()
	p.Initial = []Msg{{Name: MsgRequest, From: 2, To: 1}}
	if err := Validate(p); err == nil || !strings.Contains(err.Error(), "environment") {
		t.Fatalf("non-env initial messages must be rejected, got %v", err)
	}
}

func TestAdjacent(t *testing.T) {
	a := CanonicalTwoPC()
	adj := a.Adjacent(StateQ)
	if len(adj) != 2 || adj[0] != StateA || adj[1] != StateW {
		t.Fatalf("Adjacent(q) = %v", adj)
	}
	if got := a.Adjacent(StateC); len(got) != 0 {
		t.Fatalf("Adjacent(c) = %v, want none", got)
	}
}

func TestStateIDsOrder(t *testing.T) {
	a := CanonicalThreePC()
	ids := a.StateIDs()
	// initial first, intermediates next, abort, then commit.
	want := []StateID{StateQ, StateP, StateW, StateA, StateC}
	if len(ids) != len(want) {
		t.Fatalf("StateIDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("StateIDs = %v, want %v", ids, want)
		}
	}
}

func TestKindErrors(t *testing.T) {
	a := CanonicalTwoPC()
	if _, err := a.Kind("nope"); err == nil {
		t.Fatal("Kind of unknown state should fail")
	}
	k, err := a.Kind(StateC)
	if err != nil || k != KindCommit {
		t.Fatalf("Kind(c) = %v, %v", k, err)
	}
}

func TestLinearTwoPC(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		p := LinearTwoPC(n)
		if err := Validate(p); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := CheckUnilateralAbort(p); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	// The decision wave makes the protocol deep: phases grow with n.
	ph, err := Phases(LinearTwoPC(4))
	if err != nil {
		t.Fatal(err)
	}
	if ph < 2 {
		t.Fatalf("phases = %d", ph)
	}
}
