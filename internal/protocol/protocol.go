// Package protocol defines the finite-state-automaton (FSA) model of
// distributed commit protocols from Skeen, "Nonblocking Commit Protocols"
// (SIGMOD 1981).
//
// Transaction execution at each site is modelled as a nondeterministic FSA
// whose transitions read a nonempty multiset of messages addressed to the
// site, write a multiset of messages, and move to the next local state. The
// network serves as a common input/output tape for all sites. Final states
// are partitioned into commit states and abort states; state diagrams are
// acyclic.
//
// A Protocol is a collection of per-site automata plus the messages that are
// outstanding initially (the transaction request arriving from the
// environment). Builders in this package construct the protocols studied in
// the paper: one-phase commit, the central-site and decentralized two-phase
// commit protocols, their nonblocking three-phase extensions, and the
// canonical single-site skeletons used in the paper's lemma.
package protocol

import (
	"fmt"
	"sort"
	"strings"
)

// SiteID identifies a participating site. Sites are numbered 1..N as in the
// paper; site 1 is the coordinator in central-site protocols.
type SiteID int

// Env is the pseudo-site used as the sender of messages that arrive from the
// environment, such as the initial transaction request ("xact" messages have
// sender x in the paper's notation).
const Env SiteID = 0

// AnySite is a wildcard sender in a read pattern: the transition fires on a
// matching message from any site.
const AnySite SiteID = -1

// StateKind classifies a local state. Final states are partitioned into
// commit and abort states (slide "Properties of the FSAs"); committing and
// aborting are irreversible.
type StateKind int

const (
	// KindInitial marks the automaton's start state (q).
	KindInitial StateKind = iota
	// KindIntermediate marks a non-final, non-initial state (w, p).
	KindIntermediate
	// KindCommit marks a final commit state (c).
	KindCommit
	// KindAbort marks a final abort state (a).
	KindAbort
)

// String returns a short human-readable name for the kind.
func (k StateKind) String() string {
	switch k {
	case KindInitial:
		return "initial"
	case KindIntermediate:
		return "intermediate"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	default:
		return fmt.Sprintf("StateKind(%d)", int(k))
	}
}

// Final reports whether the kind is a final (commit or abort) state.
func (k StateKind) Final() bool { return k == KindCommit || k == KindAbort }

// StateID names a local state within one site's automaton, e.g. "q", "w",
// "p", "a", "c". IDs need only be unique within a single automaton.
type StateID string

// Vote records whether taking a transition constitutes the site's vote on
// committing the transaction. Votes are used to derive committable states: a
// local state is committable iff its occupancy by any site implies that all
// sites have voted yes.
type Vote int

const (
	// VoteNone marks a transition that carries no vote.
	VoteNone Vote = iota
	// VoteYes marks a transition by which the site votes to commit.
	VoteYes
	// VoteNo marks a transition by which the site votes to abort
	// (unilateral abort).
	VoteNo
)

// String returns "yes", "no" or "".
func (v Vote) String() string {
	switch v {
	case VoteYes:
		return "yes"
	case VoteNo:
		return "no"
	default:
		return ""
	}
}

// Msg is a concrete protocol message: a named payload from one site to
// another. The paper writes messages with two subscripts, sender then
// receiver (e.g. yes_{i1}); Msg{Name: "yes", From: i, To: 1} is the same
// thing.
type Msg struct {
	Name string
	From SiteID
	To   SiteID
}

// String formats the message in the paper's subscript style, e.g.
// "yes[2->1]". Environment messages print as "xact[env->2]".
func (m Msg) String() string {
	from := fmt.Sprintf("%d", int(m.From))
	if m.From == Env {
		from = "env"
	}
	return fmt.Sprintf("%s[%s->%d]", m.Name, from, int(m.To))
}

// Pattern matches messages addressed to the transitioning site. From may be
// AnySite to match a sender-independent message (e.g. "abort on the first NO
// vote received, whoever sent it").
type Pattern struct {
	Name string
	From SiteID
}

// String formats the pattern, using "*" for a wildcard sender.
func (p Pattern) String() string {
	if p.From == AnySite {
		return p.Name + "[*]"
	}
	if p.From == Env {
		return p.Name + "[env]"
	}
	return fmt.Sprintf("%s[%d]", p.Name, int(p.From))
}

// Transition is one edge of a site's automaton. In the absence of failures a
// transition is atomic: it consumes every message matched by Reads (all
// addressed to this site), emits every message in Sends, and moves the site
// from From to To.
type Transition struct {
	From  StateID
	To    StateID
	Reads []Pattern // multiset of patterns, all must be satisfiable at once
	Sends []Msg     // messages written to the network
	Vote  Vote      // whether this transition casts the site's vote
}

// String renders the transition as "w --yes[2],yes[3]/commit[1->2]--> c".
func (t Transition) String() string {
	reads := make([]string, len(t.Reads))
	for i, r := range t.Reads {
		reads[i] = r.String()
	}
	sends := make([]string, len(t.Sends))
	for i, s := range t.Sends {
		sends[i] = s.String()
	}
	return fmt.Sprintf("%s --%s / %s--> %s",
		t.From, strings.Join(reads, ","), strings.Join(sends, ","), t.To)
}

// Automaton is the FSA executed by a single site.
type Automaton struct {
	Site        SiteID
	Name        string // role label: "coordinator", "slave", "peer"
	Initial     StateID
	States      map[StateID]StateKind
	Transitions []Transition
}

// Kind returns the kind of a state, or an error if the state is unknown.
func (a *Automaton) Kind(s StateID) (StateKind, error) {
	k, ok := a.States[s]
	if !ok {
		return 0, fmt.Errorf("protocol: automaton for site %d has no state %q", a.Site, s)
	}
	return k, nil
}

// From returns the transitions leaving state s.
func (a *Automaton) From(s StateID) []Transition {
	var out []Transition
	for _, t := range a.Transitions {
		if t.From == s {
			out = append(out, t)
		}
	}
	return out
}

// StateIDs returns the automaton's states in deterministic order: initial
// first, then intermediates, then final states, alphabetically within each
// group.
func (a *Automaton) StateIDs() []StateID {
	ids := make([]StateID, 0, len(a.States))
	for id := range a.States {
		ids = append(ids, id)
	}
	rank := func(id StateID) int {
		switch a.States[id] {
		case KindInitial:
			return 0
		case KindIntermediate:
			return 1
		case KindAbort:
			return 2
		default:
			return 3
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		ri, rj := rank(ids[i]), rank(ids[j])
		if ri != rj {
			return ri < rj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Adjacent returns the set of states reachable from s by exactly one
// transition (the successors of s). Used by the paper's lemma for protocols
// synchronous within one state transition.
func (a *Automaton) Adjacent(s StateID) []StateID {
	seen := map[StateID]bool{}
	var out []StateID
	for _, t := range a.Transitions {
		if t.From == s && !seen[t.To] {
			seen[t.To] = true
			out = append(out, t.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Protocol is a complete distributed commit protocol: one automaton per
// participating site plus the environment messages present in the network
// before any site moves (the transaction request).
type Protocol struct {
	Name    string
	Sites   []*Automaton // indexed 0..n-1, automaton i has Site == i+1
	Initial []Msg        // environment messages outstanding at the start
}

// N returns the number of participating sites.
func (p *Protocol) N() int { return len(p.Sites) }

// Site returns the automaton for the given site ID.
func (p *Protocol) Site(id SiteID) (*Automaton, error) {
	idx := int(id) - 1
	if idx < 0 || idx >= len(p.Sites) {
		return nil, fmt.Errorf("protocol: %s has no site %d", p.Name, int(id))
	}
	return p.Sites[idx], nil
}

// String summarizes the protocol.
func (p *Protocol) String() string {
	return fmt.Sprintf("%s (%d sites)", p.Name, p.N())
}
