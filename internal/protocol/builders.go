package protocol

import "fmt"

// Message names used by the protocols in the paper.
const (
	MsgRequest = "request" // client request delivered to the coordinator
	MsgXact    = "xact"    // transaction distributed to a site
	MsgYes     = "yes"     // vote to commit
	MsgNo      = "no"      // vote to abort (unilateral abort)
	MsgPrepare = "prepare" // enter the buffer state (prepare to commit)
	MsgAck     = "ack"     // acknowledge the prepare
	MsgCommit  = "commit"  // final commit decision
	MsgAbort   = "abort"   // final abort decision
)

// Canonical state names (slides 32, 34, 40).
const (
	StateQ StateID = "q" // initial
	StateW StateID = "w" // wait (voted, awaiting outcome)
	StateP StateID = "p" // prepared to commit (the buffer state)
	StateA StateID = "a" // abort (final)
	StateC StateID = "c" // commit (final)
)

func mustSites(n int) {
	if n < 2 {
		panic(fmt.Sprintf("protocol: need at least 2 sites, got %d", n))
	}
}

// othersOf returns every site ID except self, in ascending order.
func othersOf(n int, self SiteID) []SiteID {
	out := make([]SiteID, 0, n-1)
	for i := 1; i <= n; i++ {
		if SiteID(i) != self {
			out = append(out, SiteID(i))
		}
	}
	return out
}

// sendAll builds one message per destination.
func sendAll(name string, from SiteID, to []SiteID) []Msg {
	out := make([]Msg, len(to))
	for i, d := range to {
		out[i] = Msg{Name: name, From: from, To: d}
	}
	return out
}

// readAll builds one pattern per sender.
func readAll(name string, from []SiteID) []Pattern {
	out := make([]Pattern, len(from))
	for i, f := range from {
		out[i] = Pattern{Name: name, From: f}
	}
	return out
}

// allOf returns site IDs 1..n.
func allOf(n int) []SiteID {
	out := make([]SiteID, n)
	for i := range out {
		out[i] = SiteID(i + 1)
	}
	return out
}

// maxVoteCollectors bounds the protocols built with explicit full-round vote
// collection: the abort alternatives enumerate the nonempty subsets of NO
// voters, which is exponential in the number of voters. The FSA builders are
// meant for state-graph analysis at small n; the runtime engine and
// simulator handle large site counts without FSAs.
const maxVoteCollectors = 16

// abortRounds enumerates, for a site collecting one vote from each sender,
// every read multiset that contains at least one NO: for each nonempty
// subset S of senders, a NO from every member of S and a YES from the rest.
// Per the central-site model's property 4 (and the decentralized model's
// rounds), a site waits for a response from every peer before moving, which
// is what keeps the protocols synchronous within one state transition.
func abortRounds(senders []SiteID) [][]Pattern {
	if len(senders) > maxVoteCollectors {
		panic(fmt.Sprintf("protocol: vote collection over %d senders would enumerate 2^%d abort rounds",
			len(senders), len(senders)))
	}
	var out [][]Pattern
	for mask := 1; mask < 1<<len(senders); mask++ {
		reads := make([]Pattern, len(senders))
		for i, s := range senders {
			name := MsgYes
			if mask&(1<<i) != 0 {
				name = MsgNo
			}
			reads[i] = Pattern{Name: name, From: s}
		}
		out = append(out, reads)
	}
	return out
}

// OnePC builds the one-phase commit protocol for n sites (slide 8). The
// coordinator (site 1) receives the client's decision and relays it; slaves
// obey unconditionally. 1PC is inadequate because it does not allow a
// unilateral abort by a server; see Validate's unilateral-abort check.
func OnePC(n int) *Protocol {
	mustSites(n)
	coord := &Automaton{
		Site: 1, Name: "coordinator", Initial: StateQ,
		States: map[StateID]StateKind{
			StateQ: KindInitial, StateA: KindAbort, StateC: KindCommit,
		},
		Transitions: []Transition{
			{From: StateQ, To: StateC,
				Reads: []Pattern{{Name: MsgCommit, From: Env}},
				Sends: sendAll(MsgCommit, 1, othersOf(n, 1))},
			{From: StateQ, To: StateA,
				Reads: []Pattern{{Name: MsgAbort, From: Env}},
				Sends: sendAll(MsgAbort, 1, othersOf(n, 1))},
		},
	}
	sites := []*Automaton{coord}
	for i := 2; i <= n; i++ {
		id := SiteID(i)
		sites = append(sites, &Automaton{
			Site: id, Name: "slave", Initial: StateQ,
			States: map[StateID]StateKind{
				StateQ: KindInitial, StateA: KindAbort, StateC: KindCommit,
			},
			Transitions: []Transition{
				{From: StateQ, To: StateC, Reads: []Pattern{{Name: MsgCommit, From: 1}}},
				{From: StateQ, To: StateA, Reads: []Pattern{{Name: MsgAbort, From: 1}}},
			},
		})
	}
	return &Protocol{
		Name:  fmt.Sprintf("central-site 1PC (n=%d)", n),
		Sites: sites,
		// The environment nondeterministically requests commit or abort;
		// both messages are offered, the coordinator consumes one.
		Initial: []Msg{
			{Name: MsgCommit, From: Env, To: 1},
			{Name: MsgAbort, From: Env, To: 1},
		},
	}
}

// CentralTwoPC builds the central-site two-phase commit protocol for n sites
// (slide 15). Site 1 is the coordinator; sites 2..n execute the slave
// protocol. The coordinator's own vote appears as nondeterminism in state w1
// (the parenthesized (yes1)/(no1) of the slide).
func CentralTwoPC(n int) *Protocol {
	mustSites(n)
	others := othersOf(n, 1)
	coordTransitions := []Transition{
		{From: StateQ, To: StateW,
			Reads: []Pattern{{Name: MsgRequest, From: Env}},
			Sends: sendAll(MsgXact, 1, others)},
		// All slaves voted yes and the coordinator votes yes: commit.
		{From: StateW, To: StateC, Vote: VoteYes,
			Reads: readAll(MsgYes, others),
			Sends: sendAll(MsgCommit, 1, others)},
		// All slaves voted yes but the coordinator votes no: abort.
		{From: StateW, To: StateA, Vote: VoteNo,
			Reads: readAll(MsgYes, others),
			Sends: sendAll(MsgAbort, 1, others)},
	}
	// Some slave voted no: the coordinator still collects every response
	// (property 4 of the central-site model) and then aborts.
	for _, reads := range abortRounds(others) {
		coordTransitions = append(coordTransitions, Transition{
			From: StateW, To: StateA, Reads: reads,
			Sends: sendAll(MsgAbort, 1, others),
		})
	}
	coord := &Automaton{
		Site: 1, Name: "coordinator", Initial: StateQ,
		States: map[StateID]StateKind{
			StateQ: KindInitial, StateW: KindIntermediate,
			StateA: KindAbort, StateC: KindCommit,
		},
		Transitions: coordTransitions,
	}
	sites := []*Automaton{coord}
	for i := 2; i <= n; i++ {
		id := SiteID(i)
		sites = append(sites, &Automaton{
			Site: id, Name: "slave", Initial: StateQ,
			States: map[StateID]StateKind{
				StateQ: KindInitial, StateW: KindIntermediate,
				StateA: KindAbort, StateC: KindCommit,
			},
			Transitions: []Transition{
				{From: StateQ, To: StateW, Vote: VoteYes,
					Reads: []Pattern{{Name: MsgXact, From: 1}},
					Sends: []Msg{{Name: MsgYes, From: id, To: 1}}},
				{From: StateQ, To: StateA, Vote: VoteNo,
					Reads: []Pattern{{Name: MsgXact, From: 1}},
					Sends: []Msg{{Name: MsgNo, From: id, To: 1}}},
				{From: StateW, To: StateC, Reads: []Pattern{{Name: MsgCommit, From: 1}}},
				{From: StateW, To: StateA, Reads: []Pattern{{Name: MsgAbort, From: 1}}},
			},
		})
	}
	return &Protocol{
		Name:    fmt.Sprintf("central-site 2PC (n=%d)", n),
		Sites:   sites,
		Initial: []Msg{{Name: MsgRequest, From: Env, To: 1}},
	}
}

// DecentralizedTwoPC builds the fully decentralized two-phase commit protocol
// for n sites (slide 26). All sites run the same protocol and exchange votes
// in a full round; as in the paper, each site also sends its messages to
// itself as part of a message interchange.
func DecentralizedTwoPC(n int) *Protocol {
	mustSites(n)
	all := allOf(n)
	sites := make([]*Automaton, 0, n)
	for i := 1; i <= n; i++ {
		id := SiteID(i)
		trans := []Transition{
			{From: StateQ, To: StateW, Vote: VoteYes,
				Reads: []Pattern{{Name: MsgXact, From: Env}},
				Sends: sendAll(MsgYes, id, all)},
			{From: StateQ, To: StateA, Vote: VoteNo,
				Reads: []Pattern{{Name: MsgXact, From: Env}},
				Sends: sendAll(MsgNo, id, all)},
			{From: StateW, To: StateC, Reads: readAll(MsgYes, all)},
		}
		// In state w the site has already sent itself a yes; it collects a
		// full round of votes and aborts if any other site voted no.
		for _, reads := range abortRounds(othersOf(n, id)) {
			trans = append(trans, Transition{
				From: StateW, To: StateA,
				Reads: append([]Pattern{{Name: MsgYes, From: id}}, reads...),
			})
		}
		sites = append(sites, &Automaton{
			Site: id, Name: "peer", Initial: StateQ,
			States: map[StateID]StateKind{
				StateQ: KindInitial, StateW: KindIntermediate,
				StateA: KindAbort, StateC: KindCommit,
			},
			Transitions: trans,
		})
	}
	return &Protocol{
		Name:    fmt.Sprintf("decentralized 2PC (n=%d)", n),
		Sites:   sites,
		Initial: sendAll(MsgXact, Env, all),
	}
}

// CentralThreePC builds the nonblocking central-site three-phase commit
// protocol for n sites (slide 35). It is the central-site 2PC with the
// buffer state p ("prepare to commit") inserted between w and c at every
// site, plus the prepare/ack message round that realizes the extra phase.
func CentralThreePC(n int) *Protocol {
	mustSites(n)
	others := othersOf(n, 1)
	coordTransitions := []Transition{
		{From: StateQ, To: StateW,
			Reads: []Pattern{{Name: MsgRequest, From: Env}},
			Sends: sendAll(MsgXact, 1, others)},
		{From: StateW, To: StateP, Vote: VoteYes,
			Reads: readAll(MsgYes, others),
			Sends: sendAll(MsgPrepare, 1, others)},
		{From: StateW, To: StateA, Vote: VoteNo,
			Reads: readAll(MsgYes, others),
			Sends: sendAll(MsgAbort, 1, others)},
		{From: StateP, To: StateC,
			Reads: readAll(MsgAck, others),
			Sends: sendAll(MsgCommit, 1, others)},
	}
	for _, reads := range abortRounds(others) {
		coordTransitions = append(coordTransitions, Transition{
			From: StateW, To: StateA, Reads: reads,
			Sends: sendAll(MsgAbort, 1, others),
		})
	}
	coord := &Automaton{
		Site: 1, Name: "coordinator", Initial: StateQ,
		States: map[StateID]StateKind{
			StateQ: KindInitial, StateW: KindIntermediate, StateP: KindIntermediate,
			StateA: KindAbort, StateC: KindCommit,
		},
		Transitions: coordTransitions,
	}
	sites := []*Automaton{coord}
	for i := 2; i <= n; i++ {
		id := SiteID(i)
		sites = append(sites, &Automaton{
			Site: id, Name: "slave", Initial: StateQ,
			States: map[StateID]StateKind{
				StateQ: KindInitial, StateW: KindIntermediate, StateP: KindIntermediate,
				StateA: KindAbort, StateC: KindCommit,
			},
			Transitions: []Transition{
				{From: StateQ, To: StateW, Vote: VoteYes,
					Reads: []Pattern{{Name: MsgXact, From: 1}},
					Sends: []Msg{{Name: MsgYes, From: id, To: 1}}},
				{From: StateQ, To: StateA, Vote: VoteNo,
					Reads: []Pattern{{Name: MsgXact, From: 1}},
					Sends: []Msg{{Name: MsgNo, From: id, To: 1}}},
				{From: StateW, To: StateP,
					Reads: []Pattern{{Name: MsgPrepare, From: 1}},
					Sends: []Msg{{Name: MsgAck, From: id, To: 1}}},
				{From: StateW, To: StateA, Reads: []Pattern{{Name: MsgAbort, From: 1}}},
				{From: StateP, To: StateC, Reads: []Pattern{{Name: MsgCommit, From: 1}}},
			},
		})
	}
	return &Protocol{
		Name:    fmt.Sprintf("central-site 3PC (n=%d)", n),
		Sites:   sites,
		Initial: []Msg{{Name: MsgRequest, From: Env, To: 1}},
	}
}

// DecentralizedThreePC builds the nonblocking decentralized three-phase
// commit protocol for n sites (slide 36): a vote round, a prepare round, and
// final commitment.
func DecentralizedThreePC(n int) *Protocol {
	mustSites(n)
	all := allOf(n)
	sites := make([]*Automaton, 0, n)
	for i := 1; i <= n; i++ {
		id := SiteID(i)
		trans := []Transition{
			{From: StateQ, To: StateW, Vote: VoteYes,
				Reads: []Pattern{{Name: MsgXact, From: Env}},
				Sends: sendAll(MsgYes, id, all)},
			{From: StateQ, To: StateA, Vote: VoteNo,
				Reads: []Pattern{{Name: MsgXact, From: Env}},
				Sends: sendAll(MsgNo, id, all)},
			{From: StateW, To: StateP,
				Reads: readAll(MsgYes, all),
				Sends: sendAll(MsgPrepare, id, all)},
			{From: StateP, To: StateC, Reads: readAll(MsgPrepare, all)},
		}
		for _, reads := range abortRounds(othersOf(n, id)) {
			trans = append(trans, Transition{
				From: StateW, To: StateA,
				Reads: append([]Pattern{{Name: MsgYes, From: id}}, reads...),
			})
		}
		sites = append(sites, &Automaton{
			Site: id, Name: "peer", Initial: StateQ,
			States: map[StateID]StateKind{
				StateQ: KindInitial, StateW: KindIntermediate, StateP: KindIntermediate,
				StateA: KindAbort, StateC: KindCommit,
			},
			Transitions: trans,
		})
	}
	return &Protocol{
		Name:    fmt.Sprintf("decentralized 3PC (n=%d)", n),
		Sites:   sites,
		Initial: sendAll(MsgXact, Env, all),
	}
}

// CanonicalTwoPC returns the canonical 2PC skeleton (slide 32): the
// message-free state diagram q -> w -> {a, c} with a unilateral abort edge
// q -> a, common to both 2PC paradigms (their "structural equivalence").
// The skeleton is returned as a single automaton; instantiate it across n
// sites with Canonicalize.
func CanonicalTwoPC() *Automaton {
	return &Automaton{
		Site: 1, Name: "canonical-2pc", Initial: StateQ,
		States: map[StateID]StateKind{
			StateQ: KindInitial, StateW: KindIntermediate,
			StateA: KindAbort, StateC: KindCommit,
		},
		Transitions: []Transition{
			{From: StateQ, To: StateW, Vote: VoteYes},
			{From: StateQ, To: StateA, Vote: VoteNo},
			{From: StateW, To: StateC},
			{From: StateW, To: StateA},
		},
	}
}

// CanonicalThreePC returns the canonical 3PC skeleton (slide 34): canonical
// 2PC with the buffer state p ("prepare to commit") inserted between w and c.
func CanonicalThreePC() *Automaton {
	return &Automaton{
		Site: 1, Name: "canonical-3pc", Initial: StateQ,
		States: map[StateID]StateKind{
			StateQ: KindInitial, StateW: KindIntermediate, StateP: KindIntermediate,
			StateA: KindAbort, StateC: KindCommit,
		},
		Transitions: []Transition{
			{From: StateQ, To: StateW, Vote: VoteYes},
			{From: StateQ, To: StateA, Vote: VoteNo},
			{From: StateW, To: StateP},
			{From: StateW, To: StateA},
			{From: StateP, To: StateC},
		},
	}
}

// LinearTwoPC builds the linear ("nested" / chained) two-phase commit: an
// extension beyond the paper's two paradigms, included for contrast. Sites
// form a chain; a forward wave carries the accumulated YES votes rightward,
// and the decision travels back leftward. The cheapest protocol in messages
// (2(n-1) on commit) and the most expensive in latency (2(n-1) sequential
// delays); like all 2PCs it is blocking.
//
// A NO vote at site i aborts in both directions so that every site reaches
// a final state (sites right of i never voted; they simply learn the
// abort).
func LinearTwoPC(n int) *Protocol {
	mustSites(n)
	sites := make([]*Automaton, 0, n)
	for i := 1; i <= n; i++ {
		id := SiteID(i)
		left, right := id-1, id+1
		a := &Automaton{
			Site: id, Name: "link", Initial: StateQ,
			States: map[StateID]StateKind{
				StateQ: KindInitial, StateW: KindIntermediate,
				StateA: KindAbort, StateC: KindCommit,
			},
		}
		switch {
		case i == 1:
			a.Transitions = []Transition{
				// Site 1 votes by starting (or not starting) the wave.
				{From: StateQ, To: StateW, Vote: VoteYes,
					Reads: []Pattern{{Name: MsgRequest, From: Env}},
					Sends: []Msg{{Name: MsgXact, From: id, To: right}}},
				{From: StateQ, To: StateA, Vote: VoteNo,
					Reads: []Pattern{{Name: MsgRequest, From: Env}},
					Sends: []Msg{{Name: MsgAbort, From: id, To: right}}},
				{From: StateW, To: StateC, Reads: []Pattern{{Name: MsgCommit, From: right}}},
				{From: StateW, To: StateA, Reads: []Pattern{{Name: MsgAbort, From: right}}},
			}
		case i == n:
			a.Transitions = []Transition{
				// The last site completes the vote wave and decides.
				{From: StateQ, To: StateC, Vote: VoteYes,
					Reads: []Pattern{{Name: MsgXact, From: left}},
					Sends: []Msg{{Name: MsgCommit, From: id, To: left}}},
				{From: StateQ, To: StateA, Vote: VoteNo,
					Reads: []Pattern{{Name: MsgXact, From: left}},
					Sends: []Msg{{Name: MsgAbort, From: id, To: left}}},
				{From: StateQ, To: StateA, Reads: []Pattern{{Name: MsgAbort, From: left}}},
			}
		default:
			a.Transitions = []Transition{
				{From: StateQ, To: StateW, Vote: VoteYes,
					Reads: []Pattern{{Name: MsgXact, From: left}},
					Sends: []Msg{{Name: MsgXact, From: id, To: right}}},
				{From: StateQ, To: StateA, Vote: VoteNo,
					Reads: []Pattern{{Name: MsgXact, From: left}},
					Sends: []Msg{
						{Name: MsgAbort, From: id, To: left},
						{Name: MsgAbort, From: id, To: right},
					}},
				// The abort wave from the left sweeps rightward through
				// sites that never voted.
				{From: StateQ, To: StateA,
					Reads: []Pattern{{Name: MsgAbort, From: left}},
					Sends: []Msg{{Name: MsgAbort, From: id, To: right}}},
				{From: StateW, To: StateC,
					Reads: []Pattern{{Name: MsgCommit, From: right}},
					Sends: []Msg{{Name: MsgCommit, From: id, To: left}}},
				{From: StateW, To: StateA,
					Reads: []Pattern{{Name: MsgAbort, From: right}},
					Sends: []Msg{{Name: MsgAbort, From: id, To: left}}},
			}
		}
		sites = append(sites, a)
	}
	return &Protocol{
		Name:    fmt.Sprintf("linear 2PC (n=%d)", n),
		Sites:   sites,
		Initial: []Msg{{Name: MsgRequest, From: Env, To: 1}},
	}
}
