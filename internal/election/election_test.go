package election

import (
	"sync"
	"testing"
	"time"
)

func TestDeterministic(t *testing.T) {
	alive := func(s int) bool { return s != 2 }
	got, ok := Deterministic(alive, []int{3, 2, 4})
	if !ok || got != 3 {
		t.Fatalf("Deterministic = %d, %v", got, ok)
	}
	got, ok = Deterministic(func(int) bool { return true }, []int{9, 5, 7})
	if !ok || got != 5 {
		t.Fatalf("Deterministic = %d, %v", got, ok)
	}
	if _, ok := Deterministic(func(int) bool { return false }, []int{1, 2}); ok {
		t.Fatal("no alive candidates should report failure")
	}
	if _, ok := Deterministic(func(int) bool { return true }, nil); ok {
		t.Fatal("empty candidate list should report failure")
	}
}

// bullyCluster wires n Bully instances through an in-process message bus,
// with per-site delivery that can be severed to simulate crashes.
type bullyCluster struct {
	mu      sync.Mutex
	bullies map[int]*Bully
	dead    map[int]bool
	cut     map[[2]int]bool
}

func newBullyCluster(ids []int, timeout time.Duration) *bullyCluster {
	c := &bullyCluster{bullies: map[int]*Bully{}, dead: map[int]bool{}, cut: map[[2]int]bool{}}
	for _, id := range ids {
		id := id
		c.bullies[id] = NewBully(id, ids, timeout, func(to int, kind string) {
			c.mu.Lock()
			dst, deadSrc, deadDst := c.bullies[to], c.dead[id], c.dead[to]
			severed := c.cut[link(id, to)]
			c.mu.Unlock()
			if dst == nil || deadSrc || deadDst || severed {
				return
			}
			go dst.Observe(id, kind)
		})
	}
	return c
}

func link(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (c *bullyCluster) kill(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead[id] = true
}

// sever cuts the link between two sites in both directions without killing
// either — a network partition rather than a crash.
func (c *bullyCluster) sever(a, b int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut[link(a, b)] = true
}

func (c *bullyCluster) runAlive(t *testing.T) map[int]int {
	t.Helper()
	c.mu.Lock()
	var alive []int
	for id := range c.bullies {
		if !c.dead[id] {
			alive = append(alive, id)
		}
	}
	c.mu.Unlock()

	results := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range alive {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.bullies[id].Run()
			mu.Lock()
			results[id] = w
			mu.Unlock()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("election did not terminate")
	}
	return results
}

func TestBullyAllAlive(t *testing.T) {
	c := newBullyCluster([]int{1, 2, 3, 4}, 50*time.Millisecond)
	results := c.runAlive(t)
	for id, w := range results {
		if w != 4 {
			t.Errorf("site %d elected %d, want 4 (highest)", id, w)
		}
	}
}

func TestBullyHighestDead(t *testing.T) {
	c := newBullyCluster([]int{1, 2, 3, 4}, 50*time.Millisecond)
	c.kill(4)
	results := c.runAlive(t)
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	for id, w := range results {
		if w != 3 {
			t.Errorf("site %d elected %d, want 3", id, w)
		}
	}
}

func TestBullySingleSurvivor(t *testing.T) {
	c := newBullyCluster([]int{1, 2, 3}, 30*time.Millisecond)
	c.kill(2)
	c.kill(3)
	results := c.runAlive(t)
	if w := results[1]; w != 1 {
		t.Fatalf("lone survivor elected %d, want itself", w)
	}
}

func TestBullyWinnerBeforeAndAfter(t *testing.T) {
	b := NewBully(2, []int{1, 2}, 20*time.Millisecond, func(int, string) {})
	if _, ok := b.Winner(); ok {
		t.Fatal("winner before Run")
	}
	if w := b.Run(); w != 2 {
		t.Fatalf("Run = %d", w)
	}
	if w, ok := b.Winner(); !ok || w != 2 {
		t.Fatalf("Winner = %d, %v", w, ok)
	}
}

func TestBullyObserveCoordinatorShortCircuits(t *testing.T) {
	b := NewBully(1, []int{1, 2, 3}, time.Second, func(int, string) {})
	go func() {
		time.Sleep(10 * time.Millisecond)
		b.Observe(3, KindCoord)
	}()
	start := time.Now()
	if w := b.Run(); w != 3 {
		t.Fatalf("Run = %d, want 3", w)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("announcement did not short-circuit the timeout")
	}
}

// TestBullyOKThenSilenceReclaims covers a higher site acknowledging the
// challenge and then crashing before announcing a winner: the challenger must
// re-challenge up to maxRounds and finally claim the election itself instead
// of hanging on the dead site's promise.
func TestBullyOKThenSilenceReclaims(t *testing.T) {
	var mu sync.Mutex
	elects := 0
	var b *Bully
	b = NewBully(2, []int{2, 3}, 15*time.Millisecond, func(to int, kind string) {
		if kind != KindElect || to != 3 {
			return
		}
		mu.Lock()
		elects++
		first := elects == 1
		mu.Unlock()
		if first {
			// Site 3 answers the first challenge... and is never heard from
			// again.
			go b.Observe(3, KindOK)
		}
	})
	if w := b.Run(); w != 2 {
		t.Fatalf("Run = %d, want 2 (reclaimed from silent higher site)", w)
	}
	mu.Lock()
	defer mu.Unlock()
	if elects != maxRounds {
		t.Fatalf("challenges sent = %d, want %d re-challenge rounds", elects, maxRounds)
	}
}

// TestBullyMinorityPartition splits {1,2} from {3,4}: each side elects its
// own highest reachable site. The bully election alone offers no quorum
// safety under partitions — which is why the commit engine's termination
// protocol still withholds any decision until the elected backup collects
// acknowledgements from every operational cohort site.
func TestBullyMinorityPartition(t *testing.T) {
	c := newBullyCluster([]int{1, 2, 3, 4}, 30*time.Millisecond)
	for _, a := range []int{1, 2} {
		for _, b := range []int{3, 4} {
			c.sever(a, b)
		}
	}
	results := c.runAlive(t)
	for _, id := range []int{1, 2} {
		if results[id] != 2 {
			t.Errorf("minority site %d elected %d, want 2", id, results[id])
		}
	}
	for _, id := range []int{3, 4} {
		if results[id] != 4 {
			t.Errorf("majority site %d elected %d, want 4", id, results[id])
		}
	}
}

func TestBullyLowerChallengeGetsOK(t *testing.T) {
	var mu sync.Mutex
	sent := map[string]int{}
	b := NewBully(5, []int{1, 5}, 20*time.Millisecond, func(to int, kind string) {
		mu.Lock()
		sent[kind] = to
		mu.Unlock()
	})
	b.Observe(1, KindElect)
	mu.Lock()
	defer mu.Unlock()
	if sent[KindOK] != 1 {
		t.Fatalf("no OK sent to challenger: %v", sent)
	}
}
