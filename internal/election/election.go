// Package election chooses a backup coordinator among operational sites.
//
// The paper's central-site termination protocol begins: "When a coordinator
// crash is detected, a backup coordinator will be selected from the set of
// operational sites. Any distributed election mechanism can be used." This
// package provides two: a deterministic rule over a failure detector's view
// (sufficient under the paper's perfect failure-reporting assumption, since
// all operational sites compute the same answer), and a message-driven bully
// election for deployments with merely approximate detectors.
package election

import (
	"sort"
	"sync"
	"time"
)

// Deterministic returns the lowest-numbered candidate that the given
// liveness view reports operational. Under reliable failure reporting every
// operational site computes the same backup, so no messages are needed. The
// second result is false when no candidate is alive.
func Deterministic(alive func(site int) bool, candidates []int) (int, bool) {
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	for _, c := range sorted {
		if alive(c) {
			return c, true
		}
	}
	return 0, false
}

// Message kinds used by the bully election. Owners of a transport inbox
// should route these kinds to Bully.Observe.
const (
	KindElect = "ELECT"       // challenge to all higher-numbered sites
	KindOK    = "ELECT-OK"    // a higher site is alive and takes over
	KindCoord = "ELECT-COORD" // the winner announces itself
)

// Bully runs a bully election: every site challenges all higher-numbered
// peers; a site that hears no OK declares itself the coordinator and
// announces it. The highest operational site wins.
type Bully struct {
	self       int
	candidates []int
	timeout    time.Duration
	send       func(to int, kind string)

	mu      sync.Mutex
	winner  int
	decided chan struct{}
	gotOK   chan struct{}
	once    sync.Once
	okOnce  sync.Once
}

// NewBully prepares an election for self among candidates. send transmits an
// election message of the given kind; timeout bounds each waiting phase.
func NewBully(self int, candidates []int, timeout time.Duration, send func(to int, kind string)) *Bully {
	return &Bully{
		self:       self,
		candidates: append([]int(nil), candidates...),
		timeout:    timeout,
		send:       send,
		decided:    make(chan struct{}),
		gotOK:      make(chan struct{}),
	}
}

// Observe feeds an election message received from a peer into the protocol.
func (b *Bully) Observe(from int, kind string) {
	switch kind {
	case KindElect:
		// A lower site is running an election; if we outrank it, suppress it
		// and (lazily) rely on our own Run to take over.
		if from < b.self {
			b.send(from, KindOK)
		}
	case KindOK:
		b.okOnce.Do(func() { close(b.gotOK) })
	case KindCoord:
		b.declare(from)
	}
}

func (b *Bully) declare(winner int) {
	b.once.Do(func() {
		b.mu.Lock()
		b.winner = winner
		b.mu.Unlock()
		close(b.decided)
	})
}

// maxRounds bounds re-challenges when a higher site acknowledged the
// election but crashed before announcing a winner.
const maxRounds = 3

// Run executes the election and returns the winner's site ID. It blocks
// until a coordinator is announced or self wins; callers typically run every
// operational site's Run concurrently.
func (b *Bully) Run() int {
	suppressed := false
	for round := 0; round < maxRounds; round++ {
		higher := false
		for _, c := range b.candidates {
			if c > b.self {
				higher = true
				b.send(c, KindElect)
			}
		}
		if !higher {
			break
		}
		select {
		case <-b.gotOK:
			suppressed = true
			// A higher site took over; await its announcement, but don't
			// wait forever — it may have crashed mid-election, in which
			// case we re-challenge.
			select {
			case <-b.decided:
				b.mu.Lock()
				defer b.mu.Unlock()
				return b.winner
			case <-time.After(b.timeout):
				continue
			}
		case <-b.decided:
			b.mu.Lock()
			defer b.mu.Unlock()
			return b.winner
		case <-time.After(b.timeout):
			// No higher site answered: we win.
			suppressed = false
		}
		break
	}
	if suppressed {
		// Exhausted the rounds without an announcement; claim the election
		// rather than hang — a surviving higher site will re-announce.
		b.okOnce.Do(func() {})
	}
	for _, c := range b.candidates {
		if c != b.self {
			b.send(c, KindCoord)
		}
	}
	b.declare(b.self)
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.winner
}

// Winner returns the elected coordinator once Run (here or at a peer whose
// announcement was observed) has decided, and whether a decision was made.
func (b *Bully) Winner() (int, bool) {
	select {
	case <-b.decided:
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.winner, true
	default:
		return 0, false
	}
}
