// Package trace records structured protocol events for debugging and for
// tests that assert exact message sequences.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	At   time.Time
	Site int
	Kind string
	TxID string
	Note string
}

// String renders "site 2: PREPARE tx=t1 (moved w->p)".
func (e Event) String() string {
	s := fmt.Sprintf("site %d: %s", e.Site, e.Kind)
	if e.TxID != "" {
		s += " tx=" + e.TxID
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// Recorder accumulates events; safe for concurrent use. The zero value is
// ready to use and keeps every event — right for tests asserting exact
// sequences, wrong for a long-running node. NewBounded returns a recorder
// that retains only the most recent events in a fixed-size ring, so tracing
// can stay enabled in production without leaking memory.
type Recorder struct {
	mu     sync.Mutex
	limit  int // >0: ring capacity; 0: unbounded
	events []Event
	start  int    // ring read position once events is full
	total  uint64 // events ever recorded, including overwritten ones
}

// NewBounded returns a Recorder that keeps only the most recent limit
// events, overwriting the oldest once full. A non-positive limit is
// unbounded.
func NewBounded(limit int) *Recorder {
	if limit < 0 {
		limit = 0
	}
	return &Recorder{limit: limit}
}

// Add records an event with the current wall time.
func (r *Recorder) Add(site int, kind, txid, note string) {
	e := Event{At: time.Now(), Site: site, Kind: kind, TxID: txid, Note: note}
	r.mu.Lock()
	if r.limit > 0 && len(r.events) == r.limit {
		r.events[r.start] = e
		r.start = (r.start + 1) % r.limit
	} else {
		r.events = append(r.events, e)
	}
	r.total++
	r.mu.Unlock()
}

// Events returns a copy of everything retained, oldest first. With a bound,
// that is the most recent Limit events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Total returns how many events were ever recorded, including any the ring
// has since overwritten.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events the bound has overwritten.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.events))
}

// Kinds returns the sequence of event kinds, convenient for assertions.
func (r *Recorder) Kinds() []string {
	evs := r.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Kind
	}
	return out
}

// Filter returns the events matching the predicate.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all recorded events and counters, keeping the bound.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.start = 0
	r.total = 0
	r.mu.Unlock()
}

// Dump renders every event, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
