// Package trace records structured protocol events for debugging and for
// tests that assert exact message sequences.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	At   time.Time
	Site int
	Kind string
	TxID string
	Note string
}

// String renders "site 2: PREPARE tx=t1 (moved w->p)".
func (e Event) String() string {
	s := fmt.Sprintf("site %d: %s", e.Site, e.Kind)
	if e.TxID != "" {
		s += " tx=" + e.TxID
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// Recorder accumulates events; safe for concurrent use. The zero value is
// ready to use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Add records an event with the current wall time.
func (r *Recorder) Add(site int, kind, txid, note string) {
	r.mu.Lock()
	r.events = append(r.events, Event{At: time.Now(), Site: site, Kind: kind, TxID: txid, Note: note})
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far, in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Kinds returns the sequence of event kinds, convenient for assertions.
func (r *Recorder) Kinds() []string {
	evs := r.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Kind
	}
	return out
}

// Filter returns the events matching the predicate.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// Dump renders every event, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
