package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Add(1, "VOTE-REQ", "t1", "")
	r.Add(2, "YES", "t1", "voted")
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != "VOTE-REQ" || evs[1].Note != "voted" {
		t.Fatalf("events = %v", evs)
	}
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != "VOTE-REQ" || kinds[1] != "YES" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Site: 2, Kind: "PREPARE", TxID: "t1", Note: "moved w->p"}
	if got := e.String(); got != "site 2: PREPARE tx=t1 (moved w->p)" {
		t.Fatalf("String = %q", got)
	}
	bare := Event{Site: 1, Kind: "HB"}
	if got := bare.String(); got != "site 1: HB" {
		t.Fatalf("String = %q", got)
	}
}

func TestFilterAndReset(t *testing.T) {
	var r Recorder
	r.Add(1, "A", "t1", "")
	r.Add(2, "B", "t1", "")
	r.Add(1, "C", "t2", "")
	only1 := r.Filter(func(e Event) bool { return e.Site == 1 })
	if len(only1) != 2 {
		t.Fatalf("filtered = %v", only1)
	}
	if !strings.Contains(r.Dump(), "site 2: B tx=t1") {
		t.Fatalf("dump = %q", r.Dump())
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestBoundedRecorderOverwritesOldest(t *testing.T) {
	r := NewBounded(3)
	for i := 0; i < 5; i++ {
		r.Add(1, string(rune('A'+i)), "t", "")
	}
	kinds := r.Kinds()
	if len(kinds) != 3 || kinds[0] != "C" || kinds[1] != "D" || kinds[2] != "E" {
		t.Fatalf("kinds = %v, want [C D E]", kinds)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
}

func TestBoundedRecorderUnderLimit(t *testing.T) {
	r := NewBounded(10)
	r.Add(1, "A", "t", "")
	r.Add(2, "B", "t", "")
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != "A" || kinds[1] != "B" {
		t.Fatalf("kinds = %v", kinds)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestBoundedRecorderReset(t *testing.T) {
	r := NewBounded(2)
	for i := 0; i < 5; i++ {
		r.Add(1, "E", "t", "")
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatalf("reset left state: events=%d total=%d dropped=%d",
			len(r.Events()), r.Total(), r.Dropped())
	}
	// The bound survives a reset.
	for i := 0; i < 5; i++ {
		r.Add(1, "F", "t", "")
	}
	if len(r.Events()) != 2 {
		t.Fatalf("bound lost after reset: %d events", len(r.Events()))
	}
}

func TestBoundedRecorderConcurrent(t *testing.T) {
	r := NewBounded(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Add(site, "E", "t", "")
				_ = r.Events()
			}
		}(i)
	}
	wg.Wait()
	if got := len(r.Events()); got != 64 {
		t.Fatalf("retained = %d, want 64", got)
	}
	if r.Total() != 1600 || r.Dropped() != 1600-64 {
		t.Fatalf("total = %d dropped = %d", r.Total(), r.Dropped())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(site, "E", "t", "")
			}
		}(i)
	}
	wg.Wait()
	if len(r.Events()) != 800 {
		t.Fatalf("events = %d", len(r.Events()))
	}
}
