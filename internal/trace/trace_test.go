package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Add(1, "VOTE-REQ", "t1", "")
	r.Add(2, "YES", "t1", "voted")
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != "VOTE-REQ" || evs[1].Note != "voted" {
		t.Fatalf("events = %v", evs)
	}
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != "VOTE-REQ" || kinds[1] != "YES" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Site: 2, Kind: "PREPARE", TxID: "t1", Note: "moved w->p"}
	if got := e.String(); got != "site 2: PREPARE tx=t1 (moved w->p)" {
		t.Fatalf("String = %q", got)
	}
	bare := Event{Site: 1, Kind: "HB"}
	if got := bare.String(); got != "site 1: HB" {
		t.Fatalf("String = %q", got)
	}
}

func TestFilterAndReset(t *testing.T) {
	var r Recorder
	r.Add(1, "A", "t1", "")
	r.Add(2, "B", "t1", "")
	r.Add(1, "C", "t2", "")
	only1 := r.Filter(func(e Event) bool { return e.Site == 1 })
	if len(only1) != 2 {
		t.Fatalf("filtered = %v", only1)
	}
	if !strings.Contains(r.Dump(), "site 2: B tx=t1") {
		t.Fatalf("dump = %q", r.Dump())
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(site, "E", "t", "")
			}
		}(i)
	}
	wg.Wait()
	if len(r.Events()) != 800 {
		t.Fatalf("events = %d", len(r.Events()))
	}
}
