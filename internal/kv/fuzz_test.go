package kv

import "testing"

// FuzzDecodeWrites: arbitrary payloads never panic the decoder, and valid
// encodings round-trip.
func FuzzDecodeWrites(f *testing.F) {
	good, _ := EncodeWrites([]WriteOp{{Key: "a", Value: "1"}, {Key: "b", Delete: true}})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeWrites(data)
		if err != nil {
			return // rejected, fine
		}
		re, err := EncodeWrites(ops)
		if err != nil {
			t.Fatalf("re-encode of decoded ops failed: %v", err)
		}
		ops2, err := DecodeWrites(re)
		if err != nil {
			t.Fatalf("decode of re-encoded ops failed: %v", err)
		}
		if len(ops2) != len(ops) {
			t.Fatalf("round trip changed length: %d vs %d", len(ops), len(ops2))
		}
	})
}
