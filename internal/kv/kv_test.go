package kv

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestStore() *Store {
	return NewStore(Options{LockTimeout: 50 * time.Millisecond})
}

func TestBasicTxnLifecycle(t *testing.T) {
	s := newTestStore()
	if err := s.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("t1"); !errors.Is(err, ErrTxnExists) {
		t.Fatalf("duplicate begin: %v", err)
	}
	if err := s.Put("t1", "a", "1"); err != nil {
		t.Fatal(err)
	}
	// Own writes visible inside the transaction, invisible outside.
	v, err := s.Get("t1", "a")
	if err != nil || v != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, ok := s.Read("a"); ok {
		t.Fatal("uncommitted write visible outside txn")
	}
	if err := s.Commit("t1"); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Read("a"); !ok || v != "1" {
		t.Fatalf("Read after commit = %q, %v", v, ok)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := newTestStore()
	s.Begin("t1")
	s.Put("t1", "a", "1")
	if err := s.Abort("t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Read("a"); ok {
		t.Fatal("aborted write visible")
	}
	// Idempotent.
	if err := s.Abort("t1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort("never-existed"); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	s := newTestStore()
	s.Begin("t0")
	s.Put("t0", "a", "1")
	s.Commit("t0")

	s.Begin("t1")
	if err := s.Delete("t1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("t1", "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("own delete not observed: %v", err)
	}
	s.Commit("t1")
	if _, ok := s.Read("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestGetMissingKey(t *testing.T) {
	s := newTestStore()
	s.Begin("t1")
	if _, err := s.Get("t1", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownTxnErrors(t *testing.T) {
	s := newTestStore()
	if _, err := s.Get("zz", "a"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Get: %v", err)
	}
	if err := s.Put("zz", "a", "1"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Prepare("zz"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Prepare: %v", err)
	}
	if err := s.Commit("zz"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Commit: %v", err)
	}
}

func TestWriteConflictTimesOut(t *testing.T) {
	s := newTestStore()
	s.Begin("t1")
	s.Begin("t2")
	if err := s.Put("t1", "a", "1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := s.Put("t2", "a", "2")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("conflicting put: %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("lock timeout returned too early")
	}
}

func TestSharedReadersCoexist(t *testing.T) {
	s := newTestStore()
	s.Begin("t0")
	s.Put("t0", "a", "1")
	s.Commit("t0")

	s.Begin("t1")
	s.Begin("t2")
	if _, err := s.Get("t1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("t2", "a"); err != nil {
		t.Fatal(err)
	}
	// A writer must wait for both readers.
	s.Begin("t3")
	if err := s.Put("t3", "a", "2"); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("writer vs readers: %v", err)
	}
	s.Abort("t1")
	s.Abort("t2")
	if err := s.Put("t3", "a", "2"); err != nil {
		t.Fatal(err)
	}
}

func TestLockReleaseWakesWaiter(t *testing.T) {
	s := NewStore(Options{LockTimeout: 2 * time.Second})
	s.Begin("t1")
	s.Begin("t2")
	s.Put("t1", "a", "1")
	done := make(chan error, 1)
	go func() { done <- s.Put("t2", "a", "2") }()
	time.Sleep(20 * time.Millisecond)
	s.Commit("t1")
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken by release")
	}
	s.Commit("t2")
	if v, _ := s.Read("a"); v != "2" {
		t.Fatalf("a = %q", v)
	}
}

func TestDeadlockResolvedByTimeout(t *testing.T) {
	// t1 holds a and wants b; t2 holds b and wants a. One of them must time
	// out (the paper's deadlock-resolution reason for voting NO).
	s := newTestStore()
	s.Begin("t1")
	s.Begin("t2")
	if err := s.Put("t1", "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("t2", "b", "2"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- s.Put("t1", "b", "x") }()
	go func() { errs <- s.Put("t2", "a", "x") }()
	e1, e2 := <-errs, <-errs
	if !errors.Is(e1, ErrLockTimeout) && !errors.Is(e2, ErrLockTimeout) {
		t.Fatalf("deadlock not broken: %v, %v", e1, e2)
	}
}

func TestPrepareFreezesTxn(t *testing.T) {
	s := newTestStore()
	s.Begin("t1")
	s.Put("t1", "a", "1")
	s.Put("t1", "b", "2")
	s.Delete("t1", "c")
	ops, err := s.Prepare("t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || ops[0].Key != "a" || ops[1].Key != "b" || !ops[2].Delete {
		t.Fatalf("write set = %+v", ops)
	}
	// Mutations after prepare are rejected.
	if err := s.Put("t1", "d", "3"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("put after prepare: %v", err)
	}
	if _, err := s.Get("t1", "a"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("get after prepare: %v", err)
	}
	if _, err := s.Prepare("t1"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double prepare: %v", err)
	}
	// Prepared transactions keep their locks.
	s.Begin("t2")
	if err := s.Put("t2", "a", "9"); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("prepared locks not held: %v", err)
	}
	if err := s.Commit("t1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read("a"); v != "1" {
		t.Fatalf("a = %q", v)
	}
}

func TestEncodeDecodeWrites(t *testing.T) {
	ops := []WriteOp{{Key: "a", Value: "1"}, {Key: "b", Delete: true}}
	p, err := EncodeWrites(ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("round trip = %+v", got)
	}
	if got, err := DecodeWrites(nil); err != nil || got != nil {
		t.Fatalf("empty payload: %v %v", got, err)
	}
	if _, err := DecodeWrites([]byte("garbage")); err == nil {
		t.Fatal("garbage should fail")
	}
}

// WAL payloads written before the binary write-set format were gob streams;
// DecodeWrites must still replay them.
func TestDecodeWritesLegacyGob(t *testing.T) {
	ops := []WriteOp{{Key: "a", Value: "1"}, {Key: "b", Delete: true}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ops); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWrites(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("legacy gob round trip = %+v", got)
	}
}

func TestApplyRedo(t *testing.T) {
	s := newTestStore()
	s.Begin("t0")
	s.Put("t0", "gone", "x")
	s.Commit("t0")
	s.ApplyRedo([]WriteOp{{Key: "a", Value: "1"}, {Key: "gone", Delete: true}})
	if v, _ := s.Read("a"); v != "1" {
		t.Fatalf("a = %q", v)
	}
	if _, ok := s.Read("gone"); ok {
		t.Fatal("redo delete not applied")
	}
}

func TestSnapshotKeysPending(t *testing.T) {
	s := newTestStore()
	s.Begin("t0")
	s.Put("t0", "b", "2")
	s.Put("t0", "a", "1")
	s.Commit("t0")
	snap := s.Snapshot()
	if len(snap) != 2 || snap["a"] != "1" {
		t.Fatalf("snapshot = %v", snap)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	s.Begin("t1")
	s.Begin("t2")
	if p := s.Pending(); len(p) != 2 || p[0] != "t1" {
		t.Fatalf("pending = %v", p)
	}
}

func TestConcurrentDisjointTxns(t *testing.T) {
	s := NewStore(Options{LockTimeout: time.Second})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", i)
			if err := s.Begin(id); err != nil {
				t.Error(err)
				return
			}
			key := fmt.Sprintf("k%d", i)
			if err := s.Put(id, key, id); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Prepare(id); err != nil {
				t.Error(err)
				return
			}
			if err := s.Commit(id); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if len(s.Snapshot()) != 16 {
		t.Fatalf("snapshot = %v", s.Snapshot())
	}
}

// TestQuickLastWriterWins: committing transactions serially, the store holds
// exactly the last committed value for every key.
func TestQuickLastWriterWins(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		s := NewStore(Options{LockTimeout: time.Second})
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := map[string]string{}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("t%d", i)
			k := fmt.Sprintf("k%d", keys[i]%8)
			v := fmt.Sprintf("v%d", vals[i])
			if err := s.Begin(id); err != nil {
				return false
			}
			if err := s.Put(id, k, v); err != nil {
				return false
			}
			if err := s.Commit(id); err != nil {
				return false
			}
			want[k] = v
		}
		snap := s.Snapshot()
		if len(snap) != len(want) {
			return false
		}
		for k, v := range want {
			if snap[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	s := NewStore(Options{LockTimeout: time.Second, Policy: WaitDiePolicy})
	s.Begin("old") // seq 1
	s.Begin("new") // seq 2
	if err := s.Put("old", "k", "1"); err != nil {
		t.Fatal(err)
	}
	// The younger transaction dies immediately, no timeout wait.
	start := time.Now()
	err := s.Put("new", "k", "2")
	if !errors.Is(err, ErrWaitDie) {
		t.Fatalf("younger put = %v", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("wait-die should not wait")
	}
}

func TestWaitDieOlderWaits(t *testing.T) {
	s := NewStore(Options{LockTimeout: time.Second, Policy: WaitDiePolicy})
	s.Begin("old")
	s.Begin("new")
	if err := s.Put("new", "k", "1"); err != nil {
		t.Fatal(err)
	}
	// The older transaction is allowed to wait; release unblocks it.
	done := make(chan error, 1)
	go func() { done <- s.Put("old", "k", "2") }()
	time.Sleep(20 * time.Millisecond)
	if err := s.Commit("new"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("older waiter not granted after release")
	}
	if err := s.Commit("old"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read("k"); v != "2" {
		t.Fatalf("k = %q", v)
	}
}

func TestWaitDieNoDeadlock(t *testing.T) {
	// The classic cycle: t1 holds a wants b; t2 holds b wants a. Under
	// wait-die exactly the younger one dies, immediately.
	s := NewStore(Options{LockTimeout: 5 * time.Second, Policy: WaitDiePolicy})
	s.Begin("t1") // older
	s.Begin("t2") // younger
	if err := s.Put("t1", "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("t2", "b", "2"); err != nil {
		t.Fatal(err)
	}
	// Younger wants older's lock: dies at once.
	if err := s.Put("t2", "a", "x"); !errors.Is(err, ErrWaitDie) {
		t.Fatalf("t2 = %v", err)
	}
	s.Abort("t2")
	// Older can now take b without any timeout.
	if err := s.Put("t1", "b", "y"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("t1"); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDieSharedReadersUnaffected(t *testing.T) {
	s := NewStore(Options{LockTimeout: time.Second, Policy: WaitDiePolicy})
	s.Begin("t0")
	s.Put("t0", "k", "v")
	s.Commit("t0")
	s.Begin("old")
	s.Begin("new")
	if _, err := s.Get("old", "k"); err != nil {
		t.Fatal(err)
	}
	// A younger reader coexists with an older reader: no conflict, no die.
	if _, err := s.Get("new", "k"); err != nil {
		t.Fatal(err)
	}
}
