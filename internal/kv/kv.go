// Package kv implements a per-site transactional key-value store with strict
// two-phase locking for writers and multi-version storage for readers. It is
// the local resource manager beneath the commit protocols: a participant
// votes YES by preparing a transaction here, and the paper's motivation for
// unilateral abort — "the resolution of a deadlock, when a locking scheme is
// adopted" — appears as lock-wait timeouts that force a NO vote.
//
// Committed values are kept as per-key version chains stamped with a
// site-local commit timestamp allocated at decision-apply time. Prepare
// reserves a timestamp for the transaction and records it in an in-doubt set;
// the watermark (the oldest in-doubt prepare) bounds snapshot reads so a
// snapshot can never read around an unresolved write: snapshots are taken at
// StableTS = min(latest commit, oldest in-doubt prepare − 1), below which no
// future commit can land because timestamps are allocated monotonically.
// Snapshot reads therefore never block on writer locks and never observe a
// prepared-but-undecided write set.
package kv

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nbcommit/internal/clock"
)

// Common errors.
var (
	// ErrLockTimeout means a lock could not be acquired in time; the caller
	// should abort the transaction (and vote NO). This is the deadlock
	// resolution strategy: timeouts break wait cycles.
	ErrLockTimeout = errors.New("kv: lock wait timed out")
	// ErrWaitDie means the wait-die policy killed a younger transaction
	// that wanted a lock held by an older one; the caller should abort and
	// retry with a new transaction (which will be older the second time
	// relative to new arrivals).
	ErrWaitDie = errors.New("kv: wait-die: younger transaction must abort")
	// ErrNoTxn means the transaction is unknown at this store.
	ErrNoTxn = errors.New("kv: no such transaction")
	// ErrTxnExists means Begin was called twice for the same ID.
	ErrTxnExists = errors.New("kv: transaction already exists")
	// ErrNotActive means the operation requires an active (unprepared)
	// transaction.
	ErrNotActive = errors.New("kv: transaction is not active")
	// ErrNotFound means the key does not exist.
	ErrNotFound = errors.New("kv: key not found")
	// ErrSnapshotTooOld means a snapshot read asked for a timestamp whose
	// versions were already garbage-collected. Pin snapshots with
	// AcquireSnapshot to hold the GC floor, or retry at a fresh timestamp.
	ErrSnapshotTooOld = errors.New("kv: snapshot too old: versions garbage-collected")
)

type txnState int

const (
	stateActive txnState = iota
	statePrepared
)

type lockMode int

const (
	lockShared lockMode = iota
	lockExclusive
)

// WriteOp is one staged mutation; a transaction's write set is its redo
// image, returned by Prepare for the engine to force to the WAL.
type WriteOp struct {
	Key    string
	Value  string
	Delete bool
}

// Write-set encoding tags. A gob stream can never start with either byte:
// gob's first message is a type descriptor preceded by its byte count, which
// is always larger than 2.
const (
	// writesFormatV1: per op, two uvarint-length-prefixed strings plus a
	// single raw flags byte. Still decoded so logs written before the
	// versioned format replay.
	writesFormatV1 = 0x01
	// writesFormatV2: per op, three uvarint-prefixed fields — key, value,
	// and a flags varint that carries versioning metadata (bit 0: delete;
	// remaining bits reserved for future per-op version hints).
	writesFormatV2 = 0x02
)

// opFlagDelete marks a tombstone in the v2 per-op flags varint.
const opFlagDelete = 1 << 0

// EncodeWrites serializes a write set for a WAL payload. The format is a tag
// byte, a uvarint op count, then per op THREE uvarint-prefixed fields:
// length-prefixed key, length-prefixed value, and a flags varint. Prepare
// runs this for every transaction, so the capacity reservation below must
// cover the worst case — an append-driven resize on the prepare hot path
// would show up directly in commit latency. TestEncodeWritesNoResize pins
// the math.
func EncodeWrites(ops []WriteOp) ([]byte, error) {
	size := 1 + binary.MaxVarintLen64
	for _, op := range ops {
		// Three varint-prefixed fields per op: key length, value length,
		// and the flags varint itself.
		size += 3*binary.MaxVarintLen64 + len(op.Key) + len(op.Value)
	}
	buf := make([]byte, 1, size)
	buf[0] = writesFormatV2
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
		var flags uint64
		if op.Delete {
			flags |= opFlagDelete
		}
		buf = binary.AppendUvarint(buf, flags)
	}
	return buf, nil
}

// DecodeWrites parses a write set from a WAL payload. Payloads tagged with
// the v1 format (pre-versioning) and untagged legacy gob streams still
// decode, so logs written before the format changes replay.
func DecodeWrites(p []byte) ([]WriteOp, error) {
	if len(p) == 0 {
		return nil, nil
	}
	if p[0] != writesFormatV1 && p[0] != writesFormatV2 {
		var ops []WriteOp
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&ops); err != nil {
			return nil, fmt.Errorf("kv: decode writes: %w", err)
		}
		return ops, nil
	}
	format := p[0]
	rest := p[1:]
	n, cnt, err := decodeUvarint(rest)
	if err != nil {
		return nil, err
	}
	rest = rest[n:]
	if cnt > uint64(len(rest)) { // each op needs at least 3 bytes
		return nil, fmt.Errorf("kv: decode writes: op count %d exceeds payload", cnt)
	}
	ops := make([]WriteOp, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		var op WriteOp
		if op.Key, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if op.Value, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		switch format {
		case writesFormatV1:
			if len(rest) == 0 {
				return nil, fmt.Errorf("kv: decode writes: truncated flags")
			}
			op.Delete = rest[0]&1 != 0
			rest = rest[1:]
		case writesFormatV2:
			var flags uint64
			if n, flags, err = decodeUvarint(rest); err != nil {
				return nil, fmt.Errorf("kv: decode writes: flags: %w", err)
			}
			rest = rest[n:]
			op.Delete = flags&opFlagDelete != 0
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func decodeUvarint(p []byte) (int, uint64, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, fmt.Errorf("kv: decode writes: bad varint")
	}
	return n, v, nil
}

func decodeString(p []byte) (string, []byte, error) {
	n, l, err := decodeUvarint(p)
	if err != nil {
		return "", nil, err
	}
	p = p[n:]
	if l > uint64(len(p)) {
		return "", nil, fmt.Errorf("kv: decode writes: truncated string")
	}
	return string(p[:l]), p[l:], nil
}

type txn struct {
	id     string
	seq    uint64 // begin order: smaller is older (wait-die priority)
	state  txnState
	prepTS uint64             // timestamp reserved at Prepare (in-doubt marker)
	writes map[string]WriteOp // staged, keyed by key
	order  []string           // staging order for deterministic write sets
	locks  map[string]lockMode
}

type lockEntry struct {
	holders map[string]lockMode
}

// version is one committed value of a key. Chains are kept in ascending
// commit-timestamp order; the last element is the latest committed state.
type version struct {
	ts      uint64
	value   string
	deleted bool // tombstone: the key did not exist at this version
}

// DeadlockPolicy selects how lock waits that might form cycles are broken.
type DeadlockPolicy int

const (
	// TimeoutPolicy (default): waiters give up after LockTimeout. Simple,
	// but a real deadlock costs a full timeout and may kill both parties.
	TimeoutPolicy DeadlockPolicy = iota
	// WaitDiePolicy: a transaction may wait only for locks held exclusively
	// by younger transactions; wanting a lock held by an older transaction
	// kills the requester immediately (ErrWaitDie). Deadlock-free by
	// construction, no timeout latency, but more aborts under contention.
	WaitDiePolicy
)

// Store is a transactional key-value store. The zero value is not usable;
// call NewStore.
type Store struct {
	mu          sync.Mutex
	data        map[string][]version // per-key version chains, ascending ts
	locks       map[string]*lockEntry
	txns        map[string]*txn
	waitCh      chan struct{} // closed and replaced on every lock release
	lockTimeout time.Duration
	policy      DeadlockPolicy
	clk         clock.Clock
	beginSeq    uint64

	ts         uint64            // monotone timestamp counter (prepare + commit stamps)
	lastCommit uint64            // newest commit timestamp applied
	inDoubt    map[string]uint64 // prepared-but-undecided txid → reserved prepare ts
	snaps      map[uint64]int    // pinned snapshot ts → refcount (GC floor)
	gcFloor    uint64            // versions at or below are merged; older reads fail
}

// Options configures a Store.
type Options struct {
	// LockTimeout bounds lock waits; expiry resolves deadlocks by forcing
	// the waiter to abort. Zero means a default of 100ms.
	LockTimeout time.Duration
	// Policy selects the deadlock handling strategy.
	Policy DeadlockPolicy
	// Clock is the time source for lock-wait deadlines. Nil means the wall
	// clock; deterministic simulation injects a virtual clock so deadlock
	// resolution timing replays from a seed.
	Clock clock.Clock
}

// NewStore returns an empty store.
func NewStore(opts Options) *Store {
	to := opts.LockTimeout
	if to == 0 {
		to = 100 * time.Millisecond
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Wall
	}
	return &Store{
		data:        map[string][]version{},
		locks:       map[string]*lockEntry{},
		txns:        map[string]*txn{},
		waitCh:      make(chan struct{}),
		lockTimeout: to,
		policy:      opts.Policy,
		clk:         clk,
		inDoubt:     map[string]uint64{},
		snaps:       map[uint64]int{},
	}
}

// Begin starts a transaction.
func (s *Store) Begin(txid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.txns[txid]; ok {
		return fmt.Errorf("%w: %s", ErrTxnExists, txid)
	}
	s.beginSeq++
	s.txns[txid] = &txn{
		id:     txid,
		seq:    s.beginSeq,
		writes: map[string]WriteOp{},
		locks:  map[string]lockMode{},
	}
	return nil
}

// grantable reports whether tx may take the lock on key in the given mode.
// Requires s.mu held.
func (s *Store) grantable(key string, txid string, mode lockMode) bool {
	e := s.locks[key]
	if e == nil || len(e.holders) == 0 {
		return true
	}
	if held, ok := e.holders[txid]; ok && len(e.holders) == 1 {
		_ = held // sole holder may upgrade or re-take
		return true
	}
	if mode == lockExclusive {
		return false
	}
	for _, m := range e.holders {
		if m == lockExclusive {
			return false
		}
	}
	return true
}

// mustDie reports whether, under wait-die, t is forbidden to wait for the
// current holders of key (some conflicting holder is older than t).
// Requires s.mu held.
func (s *Store) mustDie(t *txn, key string, mode lockMode) bool {
	e := s.locks[key]
	if e == nil {
		return false
	}
	for holder, hm := range e.holders {
		if holder == t.id {
			continue
		}
		if mode == lockShared && hm == lockShared {
			continue // no conflict with a fellow reader
		}
		if h := s.txns[holder]; h != nil && h.seq < t.seq {
			return true // conflicting older holder: the younger dies
		}
	}
	return false
}

// acquire blocks until the lock is granted or the store's lock timeout
// expires (deadlock resolution). Deadlines and timers come from the injected
// clock so lock-wait timing is deterministic under simulation.
func (s *Store) acquire(t *txn, key string, mode lockMode) error {
	deadline := s.clk.Now().Add(s.lockTimeout)
	s.mu.Lock()
	for {
		if t.state != stateActive {
			s.mu.Unlock()
			return ErrNotActive
		}
		if s.grantable(key, t.id, mode) {
			e := s.locks[key]
			if e == nil {
				e = &lockEntry{holders: map[string]lockMode{}}
				s.locks[key] = e
			}
			if cur, held := e.holders[t.id]; !held || (cur == lockShared && mode == lockExclusive) {
				e.holders[t.id] = mode // grant or upgrade
			}
			if prev, held := t.locks[key]; !held || (prev == lockShared && mode == lockExclusive) {
				t.locks[key] = mode
			}
			s.mu.Unlock()
			return nil
		}
		if s.policy == WaitDiePolicy && s.mustDie(t, key, mode) {
			s.mu.Unlock()
			return fmt.Errorf("%w (key %s)", ErrWaitDie, key)
		}
		ch := s.waitCh
		s.mu.Unlock()
		remain := deadline.Sub(s.clk.Now())
		if remain <= 0 {
			return ErrLockTimeout
		}
		expired := make(chan struct{})
		timer := s.clk.AfterFunc(remain, func() { close(expired) })
		select {
		case <-ch:
			timer.Stop()
		case <-expired:
			return ErrLockTimeout
		}
		s.mu.Lock()
	}
}

// releaseLocks drops every lock held by t and wakes waiters. Requires s.mu
// held.
func (s *Store) releaseLocks(t *txn) {
	for key := range t.locks {
		if e := s.locks[key]; e != nil {
			delete(e.holders, t.id)
			if len(e.holders) == 0 {
				delete(s.locks, key)
			}
		}
	}
	t.locks = map[string]lockMode{}
	close(s.waitCh)
	s.waitCh = make(chan struct{})
}

func (s *Store) activeTxn(txid string) (*txn, error) {
	t, ok := s.txns[txid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTxn, txid)
	}
	if t.state != stateActive {
		return nil, fmt.Errorf("%w: %s", ErrNotActive, txid)
	}
	return t, nil
}

// latest returns the newest committed version of key, or nil. Requires s.mu
// held.
func (s *Store) latest(key string) *version {
	vs := s.data[key]
	if len(vs) == 0 {
		return nil
	}
	return &vs[len(vs)-1]
}

// Get reads key under a shared lock, observing the transaction's own staged
// writes first: a GET after the transaction's own PUT returns the staged
// value, and a GET after its own DELETE returns ErrNotFound, regardless of
// the committed version underneath.
func (s *Store) Get(txid, key string) (string, error) {
	s.mu.Lock()
	t, err := s.activeTxn(txid)
	s.mu.Unlock()
	if err != nil {
		return "", err
	}
	if err := s.acquire(t, key, lockShared); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if op, ok := t.writes[key]; ok {
		if op.Delete {
			return "", fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return op.Value, nil
	}
	v := s.latest(key)
	if v == nil || v.deleted {
		return "", fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return v.value, nil
}

// Put stages a write under an exclusive lock.
func (s *Store) Put(txid, key, value string) error {
	return s.stage(txid, WriteOp{Key: key, Value: value})
}

// Delete stages a deletion under an exclusive lock.
func (s *Store) Delete(txid, key string) error {
	return s.stage(txid, WriteOp{Key: key, Delete: true})
}

func (s *Store) stage(txid string, op WriteOp) error {
	s.mu.Lock()
	t, err := s.activeTxn(txid)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.acquire(t, op.Key, lockExclusive); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := t.writes[op.Key]; !ok {
		t.order = append(t.order, op.Key)
	}
	t.writes[op.Key] = op
	return nil
}

// Prepare moves the transaction into the prepared state and returns its
// write set (the redo image to force to the WAL before voting YES). A
// prepared transaction keeps its locks and can no longer be mutated; only
// Commit or Abort resolve it. Prepare also reserves a timestamp and records
// the transaction as in-doubt: until the decision applies, the snapshot
// watermark stays below this reservation, so no snapshot can read around the
// unresolved write set.
func (s *Store) Prepare(txid string) ([]WriteOp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.activeTxn(txid)
	if err != nil {
		return nil, err
	}
	t.state = statePrepared
	s.ts++
	t.prepTS = s.ts
	s.inDoubt[txid] = t.prepTS
	ops := make([]WriteOp, 0, len(t.order))
	for _, k := range t.order {
		ops = append(ops, t.writes[k])
	}
	return ops, nil
}

// applyLocked appends one committed version. Requires s.mu held.
func (s *Store) applyLocked(op WriteOp, cts uint64) {
	vs := s.data[op.Key]
	if op.Delete && len(vs) == 0 {
		return // deleting a key that never existed needs no tombstone
	}
	s.data[op.Key] = append(vs, version{ts: cts, value: op.Value, deleted: op.Delete})
}

// Commit applies the staged writes as a new version of every written key,
// stamped with a commit timestamp allocated here (decision-apply time), and
// releases locks. Committing an unknown transaction is an error; committing
// an active (unprepared) transaction is allowed for single-site use.
func (s *Store) Commit(txid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[txid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTxn, txid)
	}
	s.ts++
	cts := s.ts
	for _, k := range t.order {
		s.applyLocked(t.writes[k], cts)
	}
	s.lastCommit = cts
	delete(s.inDoubt, txid)
	s.releaseLocks(t)
	delete(s.txns, txid)
	return nil
}

// Abort discards the staged writes, clears any in-doubt reservation, and
// releases locks. Aborting an unknown transaction is a no-op (idempotent
// aborts simplify recovery).
func (s *Store) Abort(txid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inDoubt, txid)
	t, ok := s.txns[txid]
	if !ok {
		return nil
	}
	s.releaseLocks(t)
	delete(s.txns, txid)
	return nil
}

// ApplyRedo applies a recovered write set directly (recovery redo of a
// transaction whose commit record is in the log but whose effects were lost
// with volatile state). Each redo gets a fresh commit timestamp; replaying
// in log order therefore reproduces the pre-crash version order.
func (s *Store) ApplyRedo(ops []WriteOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ts++
	cts := s.ts
	for _, op := range ops {
		s.applyLocked(op, cts)
	}
	s.lastCommit = cts
}

// stableTSLocked computes the newest timestamp safe to read: everything at
// or below it is final. Requires s.mu held.
func (s *Store) stableTSLocked() uint64 {
	st := s.lastCommit
	for _, p := range s.inDoubt {
		if p-1 < st {
			st = p - 1
		}
	}
	return st
}

// StableTS returns the newest snapshot-safe timestamp:
// min(latest commit, oldest in-doubt prepare − 1). The counter is monotone
// and every in-doubt transaction reserved a timestamp above this value, so
// no future commit can ever land at or below StableTS — a snapshot taken
// here is final.
func (s *Store) StableTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stableTSLocked()
}

// Watermark returns the oldest in-doubt prepare timestamp, or 0 when no
// transaction is prepared-but-undecided. Snapshots never read at or above a
// nonzero watermark.
func (s *Store) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var w uint64
	for _, p := range s.inDoubt {
		if w == 0 || p < w {
			w = p
		}
	}
	return w
}

// CommitTS returns the newest commit timestamp applied at this store.
func (s *Store) CommitTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCommit
}

// AcquireSnapshot pins the current stable timestamp against garbage
// collection and returns it. Reads via ReadAt at the returned timestamp stay
// valid until ReleaseSnapshot. Pins are refcounted, so concurrent snapshots
// at the same timestamp share one entry.
func (s *Store) AcquireSnapshot() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.stableTSLocked()
	s.snaps[ts]++
	return ts
}

// ReleaseSnapshot drops a pin taken by AcquireSnapshot. Releasing an
// unknown timestamp is a no-op.
func (s *Store) ReleaseSnapshot(ts uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.snaps[ts]; ok {
		if n <= 1 {
			delete(s.snaps, ts)
		} else {
			s.snaps[ts] = n - 1
		}
	}
}

// ReadAt returns the value of key as of snapshot timestamp ts: the newest
// version at or below ts. It takes no locks beyond the store mutex — a
// snapshot read never waits for a writer and never sees a
// prepared-but-undecided write. Reading below the GC floor returns
// ErrSnapshotTooOld.
func (s *Store) ReadAt(ts uint64, key string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readAtLocked(ts, key)
}

func (s *Store) readAtLocked(ts uint64, key string) (string, error) {
	if ts < s.gcFloor {
		return "", fmt.Errorf("%w: ts %d < floor %d", ErrSnapshotTooOld, ts, s.gcFloor)
	}
	vs := s.data[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].ts > ts {
			continue
		}
		if vs[i].deleted {
			return "", fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return vs[i].value, nil
	}
	return "", fmt.Errorf("%w: %s", ErrNotFound, key)
}

// SnapshotGet is the one-shot snapshot read: it resolves the current stable
// timestamp and reads key at it atomically, returning the timestamp used so
// a session can pin later reads to the same snapshot. No transaction, no
// locks, no commit protocol.
func (s *Store) SnapshotGet(key string) (string, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.stableTSLocked()
	v, err := s.readAtLocked(ts, key)
	return v, ts, err
}

// GC merges version chains up to the garbage-collection floor — the oldest
// timestamp any pinned snapshot (or the stable timestamp, if lower) can
// still read. For every key it drops versions superseded by a newer version
// at or below the floor, and removes keys whose entire surviving history is
// a tombstone. It returns surviving and dropped version counts.
func (s *Store) GC() (kept, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	floor := s.stableTSLocked()
	for ts := range s.snaps {
		if ts < floor {
			floor = ts
		}
	}
	if floor < s.gcFloor {
		floor = s.gcFloor // the floor never moves backwards
	}
	s.gcFloor = floor
	for k, vs := range s.data {
		// base: newest version at or below the floor; everything before it
		// is unreadable by any permissible snapshot.
		base := 0
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].ts <= floor {
				base = i
				break
			}
		}
		if base == 0 && !(len(vs) == 1 && vs[0].deleted && vs[0].ts <= floor) {
			kept += len(vs)
			continue
		}
		if len(vs)-base == 1 && vs[base].deleted && vs[base].ts <= floor {
			// Sole surviving version is a settled tombstone: drop the key.
			dropped += len(vs)
			delete(s.data, k)
			continue
		}
		nv := make([]version, len(vs)-base)
		copy(nv, vs[base:])
		s.data[k] = nv
		dropped += base
		kept += len(nv)
	}
	return kept, dropped
}

// VersionStats reports the number of keys and total retained versions, for
// observability and GC tests.
func (s *Store) VersionStats() (keys, versions int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, vs := range s.data {
		versions += len(vs)
	}
	return len(s.data), versions
}

// Read returns the committed value of key, outside any transaction.
func (s *Store) Read(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.latest(key)
	if v == nil || v.deleted {
		return "", false
	}
	return v.value, true
}

// Snapshot copies the latest committed state, for tests and examples.
func (s *Store) Snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.data))
	for k, vs := range s.data {
		if n := len(vs); n > 0 && !vs[n-1].deleted {
			out[k] = vs[n-1].value
		}
	}
	return out
}

// Keys returns the committed keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k, vs := range s.data {
		if n := len(vs); n > 0 && !vs[n-1].deleted {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Pending returns the IDs of transactions known to the store (active or
// prepared), sorted.
func (s *Store) Pending() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.txns))
	for id := range s.txns {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
