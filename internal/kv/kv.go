// Package kv implements a per-site transactional key-value store with strict
// two-phase locking. It is the local resource manager beneath the commit
// protocols: a participant votes YES by preparing a transaction here, and
// the paper's motivation for unilateral abort — "the resolution of a
// deadlock, when a locking scheme is adopted" — appears as lock-wait
// timeouts that force a NO vote.
package kv

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Common errors.
var (
	// ErrLockTimeout means a lock could not be acquired in time; the caller
	// should abort the transaction (and vote NO). This is the deadlock
	// resolution strategy: timeouts break wait cycles.
	ErrLockTimeout = errors.New("kv: lock wait timed out")
	// ErrWaitDie means the wait-die policy killed a younger transaction
	// that wanted a lock held by an older one; the caller should abort and
	// retry with a new transaction (which will be older the second time
	// relative to new arrivals).
	ErrWaitDie = errors.New("kv: wait-die: younger transaction must abort")
	// ErrNoTxn means the transaction is unknown at this store.
	ErrNoTxn = errors.New("kv: no such transaction")
	// ErrTxnExists means Begin was called twice for the same ID.
	ErrTxnExists = errors.New("kv: transaction already exists")
	// ErrNotActive means the operation requires an active (unprepared)
	// transaction.
	ErrNotActive = errors.New("kv: transaction is not active")
	// ErrNotFound means the key does not exist.
	ErrNotFound = errors.New("kv: key not found")
)

type txnState int

const (
	stateActive txnState = iota
	statePrepared
)

type lockMode int

const (
	lockShared lockMode = iota
	lockExclusive
)

// WriteOp is one staged mutation; a transaction's write set is its redo
// image, returned by Prepare for the engine to force to the WAL.
type WriteOp struct {
	Key    string
	Value  string
	Delete bool
}

// writesFormatV1 tags the hand-rolled binary write-set encoding. A gob
// stream can never start with this byte: gob's first message is a type
// descriptor preceded by its byte count, which is always larger than 1.
const writesFormatV1 = 0x01

// EncodeWrites serializes a write set for a WAL payload. The format is a
// tag byte, a uvarint op count, then per op uvarint-length-prefixed key and
// value and a flags byte — Prepare runs it for every transaction, and the
// previous gob encoding spent most of its time re-sending type descriptors
// from a fresh encoder per call.
func EncodeWrites(ops []WriteOp) ([]byte, error) {
	size := 1 + binary.MaxVarintLen64
	for _, op := range ops {
		size += 2*binary.MaxVarintLen64 + len(op.Key) + len(op.Value) + 1
	}
	buf := make([]byte, 1, size)
	buf[0] = writesFormatV1
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
		var flags byte
		if op.Delete {
			flags = 1
		}
		buf = append(buf, flags)
	}
	return buf, nil
}

// DecodeWrites parses a write set from a WAL payload. Payloads not tagged
// with the binary format fall back to the legacy gob decoding, so logs
// written before the format change still replay.
func DecodeWrites(p []byte) ([]WriteOp, error) {
	if len(p) == 0 {
		return nil, nil
	}
	if p[0] != writesFormatV1 {
		var ops []WriteOp
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&ops); err != nil {
			return nil, fmt.Errorf("kv: decode writes: %w", err)
		}
		return ops, nil
	}
	rest := p[1:]
	n, cnt, err := decodeUvarint(rest)
	if err != nil {
		return nil, err
	}
	rest = rest[n:]
	if cnt > uint64(len(rest)) { // each op needs at least 3 bytes
		return nil, fmt.Errorf("kv: decode writes: op count %d exceeds payload", cnt)
	}
	ops := make([]WriteOp, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		var op WriteOp
		if op.Key, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if op.Value, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if len(rest) == 0 {
			return nil, fmt.Errorf("kv: decode writes: truncated flags")
		}
		op.Delete = rest[0]&1 != 0
		rest = rest[1:]
		ops = append(ops, op)
	}
	return ops, nil
}

func decodeUvarint(p []byte) (int, uint64, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, fmt.Errorf("kv: decode writes: bad varint")
	}
	return n, v, nil
}

func decodeString(p []byte) (string, []byte, error) {
	n, l, err := decodeUvarint(p)
	if err != nil {
		return "", nil, err
	}
	p = p[n:]
	if l > uint64(len(p)) {
		return "", nil, fmt.Errorf("kv: decode writes: truncated string")
	}
	return string(p[:l]), p[l:], nil
}

type txn struct {
	id     string
	seq    uint64 // begin order: smaller is older (wait-die priority)
	state  txnState
	writes map[string]WriteOp // staged, keyed by key
	order  []string           // staging order for deterministic write sets
	locks  map[string]lockMode
}

type lockEntry struct {
	holders map[string]lockMode
}

// DeadlockPolicy selects how lock waits that might form cycles are broken.
type DeadlockPolicy int

const (
	// TimeoutPolicy (default): waiters give up after LockTimeout. Simple,
	// but a real deadlock costs a full timeout and may kill both parties.
	TimeoutPolicy DeadlockPolicy = iota
	// WaitDiePolicy: a transaction may wait only for locks held exclusively
	// by younger transactions; wanting a lock held by an older transaction
	// kills the requester immediately (ErrWaitDie). Deadlock-free by
	// construction, no timeout latency, but more aborts under contention.
	WaitDiePolicy
)

// Store is a transactional key-value store. The zero value is not usable;
// call NewStore.
type Store struct {
	mu          sync.Mutex
	data        map[string]string
	locks       map[string]*lockEntry
	txns        map[string]*txn
	waitCh      chan struct{} // closed and replaced on every lock release
	lockTimeout time.Duration
	policy      DeadlockPolicy
	beginSeq    uint64
}

// Options configures a Store.
type Options struct {
	// LockTimeout bounds lock waits; expiry resolves deadlocks by forcing
	// the waiter to abort. Zero means a default of 100ms.
	LockTimeout time.Duration
	// Policy selects the deadlock handling strategy.
	Policy DeadlockPolicy
}

// NewStore returns an empty store.
func NewStore(opts Options) *Store {
	to := opts.LockTimeout
	if to == 0 {
		to = 100 * time.Millisecond
	}
	return &Store{
		data:        map[string]string{},
		locks:       map[string]*lockEntry{},
		txns:        map[string]*txn{},
		waitCh:      make(chan struct{}),
		lockTimeout: to,
		policy:      opts.Policy,
	}
}

// Begin starts a transaction.
func (s *Store) Begin(txid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.txns[txid]; ok {
		return fmt.Errorf("%w: %s", ErrTxnExists, txid)
	}
	s.beginSeq++
	s.txns[txid] = &txn{
		id:     txid,
		seq:    s.beginSeq,
		writes: map[string]WriteOp{},
		locks:  map[string]lockMode{},
	}
	return nil
}

// grantable reports whether tx may take the lock on key in the given mode.
// Requires s.mu held.
func (s *Store) grantable(key string, txid string, mode lockMode) bool {
	e := s.locks[key]
	if e == nil || len(e.holders) == 0 {
		return true
	}
	if held, ok := e.holders[txid]; ok && len(e.holders) == 1 {
		_ = held // sole holder may upgrade or re-take
		return true
	}
	if mode == lockExclusive {
		return false
	}
	for _, m := range e.holders {
		if m == lockExclusive {
			return false
		}
	}
	return true
}

// mustDie reports whether, under wait-die, t is forbidden to wait for the
// current holders of key (some conflicting holder is older than t).
// Requires s.mu held.
func (s *Store) mustDie(t *txn, key string, mode lockMode) bool {
	e := s.locks[key]
	if e == nil {
		return false
	}
	for holder, hm := range e.holders {
		if holder == t.id {
			continue
		}
		if mode == lockShared && hm == lockShared {
			continue // no conflict with a fellow reader
		}
		if h := s.txns[holder]; h != nil && h.seq < t.seq {
			return true // conflicting older holder: the younger dies
		}
	}
	return false
}

// acquire blocks until the lock is granted or the store's lock timeout
// expires (deadlock resolution).
func (s *Store) acquire(t *txn, key string, mode lockMode) error {
	deadline := time.Now().Add(s.lockTimeout)
	s.mu.Lock()
	for {
		if t.state != stateActive {
			s.mu.Unlock()
			return ErrNotActive
		}
		if s.grantable(key, t.id, mode) {
			e := s.locks[key]
			if e == nil {
				e = &lockEntry{holders: map[string]lockMode{}}
				s.locks[key] = e
			}
			if cur, held := e.holders[t.id]; !held || (cur == lockShared && mode == lockExclusive) {
				e.holders[t.id] = mode // grant or upgrade
			}
			if prev, held := t.locks[key]; !held || (prev == lockShared && mode == lockExclusive) {
				t.locks[key] = mode
			}
			s.mu.Unlock()
			return nil
		}
		if s.policy == WaitDiePolicy && s.mustDie(t, key, mode) {
			s.mu.Unlock()
			return fmt.Errorf("%w (key %s)", ErrWaitDie, key)
		}
		ch := s.waitCh
		s.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrLockTimeout
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return ErrLockTimeout
		}
		s.mu.Lock()
	}
}

// releaseLocks drops every lock held by t and wakes waiters. Requires s.mu
// held.
func (s *Store) releaseLocks(t *txn) {
	for key := range t.locks {
		if e := s.locks[key]; e != nil {
			delete(e.holders, t.id)
			if len(e.holders) == 0 {
				delete(s.locks, key)
			}
		}
	}
	t.locks = map[string]lockMode{}
	close(s.waitCh)
	s.waitCh = make(chan struct{})
}

func (s *Store) activeTxn(txid string) (*txn, error) {
	t, ok := s.txns[txid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTxn, txid)
	}
	if t.state != stateActive {
		return nil, fmt.Errorf("%w: %s", ErrNotActive, txid)
	}
	return t, nil
}

// Get reads key under a shared lock, observing the transaction's own staged
// writes first.
func (s *Store) Get(txid, key string) (string, error) {
	s.mu.Lock()
	t, err := s.activeTxn(txid)
	s.mu.Unlock()
	if err != nil {
		return "", err
	}
	if err := s.acquire(t, key, lockShared); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if op, ok := t.writes[key]; ok {
		if op.Delete {
			return "", fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return op.Value, nil
	}
	v, ok := s.data[key]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return v, nil
}

// Put stages a write under an exclusive lock.
func (s *Store) Put(txid, key, value string) error {
	return s.stage(txid, WriteOp{Key: key, Value: value})
}

// Delete stages a deletion under an exclusive lock.
func (s *Store) Delete(txid, key string) error {
	return s.stage(txid, WriteOp{Key: key, Delete: true})
}

func (s *Store) stage(txid string, op WriteOp) error {
	s.mu.Lock()
	t, err := s.activeTxn(txid)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.acquire(t, op.Key, lockExclusive); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := t.writes[op.Key]; !ok {
		t.order = append(t.order, op.Key)
	}
	t.writes[op.Key] = op
	return nil
}

// Prepare moves the transaction into the prepared state and returns its
// write set (the redo image to force to the WAL before voting YES). A
// prepared transaction keeps its locks and can no longer be mutated; only
// Commit or Abort resolve it.
func (s *Store) Prepare(txid string) ([]WriteOp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.activeTxn(txid)
	if err != nil {
		return nil, err
	}
	t.state = statePrepared
	ops := make([]WriteOp, 0, len(t.order))
	for _, k := range t.order {
		ops = append(ops, t.writes[k])
	}
	return ops, nil
}

// Commit applies the staged writes and releases locks. Committing an
// unknown transaction is an error; committing an active (unprepared)
// transaction is allowed for single-site use.
func (s *Store) Commit(txid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[txid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTxn, txid)
	}
	for _, k := range t.order {
		op := t.writes[k]
		if op.Delete {
			delete(s.data, op.Key)
		} else {
			s.data[op.Key] = op.Value
		}
	}
	s.releaseLocks(t)
	delete(s.txns, txid)
	return nil
}

// Abort discards the staged writes and releases locks. Aborting an unknown
// transaction is a no-op (idempotent aborts simplify recovery).
func (s *Store) Abort(txid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[txid]
	if !ok {
		return nil
	}
	s.releaseLocks(t)
	delete(s.txns, txid)
	return nil
}

// ApplyRedo applies a recovered write set directly (recovery redo of a
// transaction whose commit record is in the log but whose effects were lost
// with volatile state).
func (s *Store) ApplyRedo(ops []WriteOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range ops {
		if op.Delete {
			delete(s.data, op.Key)
		} else {
			s.data[op.Key] = op.Value
		}
	}
}

// Read returns the committed value of key, outside any transaction.
func (s *Store) Read(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, ok
}

// Snapshot copies the committed state, for tests and examples.
func (s *Store) Snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Keys returns the committed keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Pending returns the IDs of transactions known to the store (active or
// prepared), sorted.
func (s *Store) Pending() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.txns))
	for id := range s.txns {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
