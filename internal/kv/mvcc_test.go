package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"nbcommit/internal/clock"
)

// commitOne runs a full single-key transaction and returns the commit
// timestamp it was stamped with.
func commitOne(t *testing.T, s *Store, id, key, val string) uint64 {
	t.Helper()
	if err := s.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(id, key, val); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(id); err != nil {
		t.Fatal(err)
	}
	return s.CommitTS()
}

// --- Satellite: read-your-own-writes audit -------------------------------

func TestReadYourOwnWrites(t *testing.T) {
	type step struct {
		op   string // "put", "del", "get"
		val  string // for put; expected value for get
		err  error  // expected error for get
	}
	cases := []struct {
		name      string
		committed string // pre-committed value for key "k" ("" = absent)
		steps     []step
	}{
		{name: "put then get", steps: []step{
			{op: "put", val: "v1"},
			{op: "get", val: "v1"},
		}},
		{name: "put overwrites committed", committed: "old", steps: []step{
			{op: "get", val: "old"},
			{op: "put", val: "new"},
			{op: "get", val: "new"},
		}},
		{name: "delete hides committed", committed: "old", steps: []step{
			{op: "del"},
			{op: "get", err: ErrNotFound},
		}},
		{name: "put then delete", steps: []step{
			{op: "put", val: "v1"},
			{op: "del"},
			{op: "get", err: ErrNotFound},
		}},
		{name: "delete then put resurrects", committed: "old", steps: []step{
			{op: "del"},
			{op: "put", val: "v2"},
			{op: "get", val: "v2"},
		}},
		{name: "staged empty value is a value", steps: []step{
			{op: "put", val: ""},
			{op: "get", val: ""},
		}},
		{name: "no staged op falls through to committed", committed: "old", steps: []step{
			{op: "get", val: "old"},
		}},
		{name: "delete of absent key", steps: []step{
			{op: "del"},
			{op: "get", err: ErrNotFound},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestStore()
			if tc.committed != "" || tc.name == "put overwrites committed" {
				if tc.committed != "" {
					commitOne(t, s, "setup", "k", tc.committed)
				}
			}
			if err := s.Begin("t1"); err != nil {
				t.Fatal(err)
			}
			for i, st := range tc.steps {
				switch st.op {
				case "put":
					if err := s.Put("t1", "k", st.val); err != nil {
						t.Fatalf("step %d put: %v", i, err)
					}
				case "del":
					if err := s.Delete("t1", "k"); err != nil {
						t.Fatalf("step %d del: %v", i, err)
					}
				case "get":
					v, err := s.Get("t1", "k")
					if st.err != nil {
						if !errors.Is(err, st.err) {
							t.Fatalf("step %d get err = %v, want %v", i, err, st.err)
						}
					} else if err != nil || v != st.val {
						t.Fatalf("step %d get = %q, %v, want %q", i, v, err, st.val)
					}
				}
			}
			// Staged state must stay invisible outside the transaction.
			if v, ok := s.Read("k"); ok != (tc.committed != "") || v != tc.committed {
				t.Fatalf("committed view = %q, %v, want %q", v, ok, tc.committed)
			}
		})
	}
}

// --- Satellite: lock waits on the injected clock --------------------------

// TestLockTimeoutUsesInjectedClock pins the determinism fix: with a virtual
// clock injected, a lock wait must not expire on real time — only advancing
// the virtual clock fires the timeout. Before the fix, acquire() used
// time.Now/time.NewTimer and deadlock-resolution timing escaped simulation
// control.
func TestLockTimeoutUsesInjectedClock(t *testing.T) {
	vc := clock.NewVirtual()
	s := NewStore(Options{LockTimeout: 100 * time.Millisecond, Clock: vc})
	s.Begin("t1")
	s.Begin("t2")
	if err := s.Put("t1", "a", "1"); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() { res <- s.Put("t2", "a", "2") }()
	// Wait until the contender parks on a virtual timer.
	deadline := time.Now().Add(5 * time.Second)
	for vc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never scheduled a virtual-clock timer")
		}
		time.Sleep(time.Millisecond)
	}
	// Real time passes well beyond LockTimeout; the virtual clock stands
	// still, so the wait must not resolve.
	select {
	case err := <-res:
		t.Fatalf("lock wait resolved off the virtual clock: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	vc.Advance(100 * time.Millisecond)
	select {
	case err := <-res:
		if !errors.Is(err, ErrLockTimeout) {
			t.Fatalf("after virtual advance: %v, want ErrLockTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("virtual advance did not fire the lock timeout")
	}
}

// TestVirtualClockReleaseStillWakes: the wake-on-release path is
// channel-based and independent of the clock; a commit must grant the
// waiter without any virtual-time advance.
func TestVirtualClockReleaseStillWakes(t *testing.T) {
	vc := clock.NewVirtual()
	s := NewStore(Options{LockTimeout: 100 * time.Millisecond, Clock: vc})
	s.Begin("t1")
	s.Begin("t2")
	if err := s.Put("t1", "a", "1"); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() { res <- s.Put("t2", "a", "2") }()
	deadline := time.Now().Add(5 * time.Second)
	for vc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never scheduled a virtual-clock timer")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Commit("t1"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("waiter after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not wake the waiter without a clock advance")
	}
}

// --- Tentpole: version chains, watermark, snapshots, GC -------------------

func TestVersionChainsAndReadAt(t *testing.T) {
	s := newTestStore()
	ts1 := commitOne(t, s, "t1", "a", "1")
	ts2 := commitOne(t, s, "t2", "a", "2")
	if ts2 <= ts1 {
		t.Fatalf("commit timestamps not monotone: %d then %d", ts1, ts2)
	}
	if v, err := s.ReadAt(ts1, "a"); err != nil || v != "1" {
		t.Fatalf("ReadAt(ts1) = %q, %v", v, err)
	}
	if v, err := s.ReadAt(ts2, "a"); err != nil || v != "2" {
		t.Fatalf("ReadAt(ts2) = %q, %v", v, err)
	}
	if _, err := s.ReadAt(ts1-1, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadAt before first version: %v", err)
	}
	// Tombstones are versions too: reads above see the delete, reads below
	// still see history.
	s.Begin("t3")
	if err := s.Delete("t3", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare("t3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("t3"); err != nil {
		t.Fatal(err)
	}
	ts3 := s.CommitTS()
	if _, err := s.ReadAt(ts3, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadAt after delete: %v", err)
	}
	if v, err := s.ReadAt(ts2, "a"); err != nil || v != "2" {
		t.Fatalf("history below tombstone: %q, %v", v, err)
	}
	if _, ok := s.Read("a"); ok {
		t.Fatal("latest view should see the delete")
	}
}

func TestWatermarkExcludesInDoubtPrepare(t *testing.T) {
	s := newTestStore()
	commitOne(t, s, "t0", "a", "old")
	base := s.StableTS()
	if base != s.CommitTS() {
		t.Fatalf("stable %d != commit %d with nothing in doubt", base, s.CommitTS())
	}
	// Prepare but do not decide: the transaction is in doubt.
	s.Begin("w")
	if err := s.Put("w", "a", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare("w"); err != nil {
		t.Fatal(err)
	}
	wm := s.Watermark()
	if wm == 0 {
		t.Fatal("watermark should mark the in-doubt prepare")
	}
	st := s.StableTS()
	if st >= wm {
		t.Fatalf("stable ts %d not below watermark %d", st, wm)
	}
	// A snapshot taken now must read below the watermark: the old value,
	// never the prepared-but-undecided one.
	v, ts, err := s.SnapshotGet("a")
	if err != nil || v != "old" {
		t.Fatalf("SnapshotGet during in-doubt = %q, %v", v, err)
	}
	if ts != st {
		t.Fatalf("snapshot ts %d != stable %d", ts, st)
	}
	// Decision applies: watermark clears, the new value becomes stable.
	if err := s.Commit("w"); err != nil {
		t.Fatal(err)
	}
	if s.Watermark() != 0 {
		t.Fatalf("watermark %d after decision", s.Watermark())
	}
	if v, _, err := s.SnapshotGet("a"); err != nil || v != "new" {
		t.Fatalf("SnapshotGet after commit = %q, %v", v, err)
	}
	if s.StableTS() != s.CommitTS() {
		t.Fatalf("stable %d != commit %d after resolve", s.StableTS(), s.CommitTS())
	}
	// Abort clears the reservation too.
	s.Begin("w2")
	if err := s.Put("w2", "a", "never"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare("w2"); err != nil {
		t.Fatal(err)
	}
	if s.Watermark() == 0 {
		t.Fatal("second prepare not in doubt")
	}
	if err := s.Abort("w2"); err != nil {
		t.Fatal(err)
	}
	if s.Watermark() != 0 {
		t.Fatal("abort left the watermark set")
	}
	if v, _, err := s.SnapshotGet("a"); err != nil || v != "new" {
		t.Fatalf("SnapshotGet after abort = %q, %v", v, err)
	}
}

func TestSnapshotIsStableUnderLaterWrites(t *testing.T) {
	s := newTestStore()
	commitOne(t, s, "t1", "a", "1")
	ts := s.AcquireSnapshot()
	defer s.ReleaseSnapshot(ts)
	commitOne(t, s, "t2", "a", "2")
	commitOne(t, s, "t3", "a", "3")
	if v, err := s.ReadAt(ts, "a"); err != nil || v != "1" {
		t.Fatalf("pinned snapshot moved: %q, %v", v, err)
	}
}

func TestGCDropsSupersededVersions(t *testing.T) {
	s := newTestStore()
	commitOne(t, s, "t1", "a", "1")
	ts1 := s.CommitTS()
	commitOne(t, s, "t2", "a", "2")
	commitOne(t, s, "t3", "a", "3")
	if keys, vers := s.VersionStats(); keys != 1 || vers != 3 {
		t.Fatalf("stats = %d keys, %d versions", keys, vers)
	}
	kept, dropped := s.GC()
	if kept != 1 || dropped != 2 {
		t.Fatalf("GC = kept %d, dropped %d", kept, dropped)
	}
	if v, _, err := s.SnapshotGet("a"); err != nil || v != "3" {
		t.Fatalf("after GC = %q, %v", v, err)
	}
	// Reads below the floor are refused, not silently wrong.
	if _, err := s.ReadAt(ts1, "a"); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("read below GC floor: %v", err)
	}
}

func TestGCRespectsSnapshotPins(t *testing.T) {
	s := newTestStore()
	commitOne(t, s, "t1", "a", "1")
	pin := s.AcquireSnapshot()
	commitOne(t, s, "t2", "a", "2")
	commitOne(t, s, "t3", "a", "3")
	if _, dropped := s.GC(); dropped != 0 {
		t.Fatalf("GC dropped %d versions readable by a pinned snapshot", dropped)
	}
	if v, err := s.ReadAt(pin, "a"); err != nil || v != "1" {
		t.Fatalf("pinned read after GC = %q, %v", v, err)
	}
	s.ReleaseSnapshot(pin)
	if _, dropped := s.GC(); dropped != 2 {
		t.Fatal("release did not unpin the GC floor")
	}
	if _, err := s.ReadAt(pin, "a"); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("read at released pin: %v", err)
	}
}

func TestGCDropsSettledTombstones(t *testing.T) {
	s := newTestStore()
	commitOne(t, s, "t1", "a", "1")
	s.Begin("t2")
	if err := s.Delete("t2", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("t2"); err != nil {
		t.Fatal(err)
	}
	s.GC()
	if keys, vers := s.VersionStats(); keys != 0 || vers != 0 {
		t.Fatalf("settled tombstone survived GC: %d keys, %d versions", keys, vers)
	}
	if _, ok := s.Read("a"); ok {
		t.Fatal("deleted key readable after GC")
	}
}

func TestSnapshotPinsAreRefcounted(t *testing.T) {
	s := newTestStore()
	commitOne(t, s, "t1", "a", "1")
	p1 := s.AcquireSnapshot()
	p2 := s.AcquireSnapshot()
	if p1 != p2 {
		t.Fatalf("same stable ts pinned twice: %d, %d", p1, p2)
	}
	commitOne(t, s, "t2", "a", "2")
	s.ReleaseSnapshot(p1)
	if _, dropped := s.GC(); dropped != 0 {
		t.Fatal("GC ignored the second refcount holder")
	}
	s.ReleaseSnapshot(p2)
	if _, dropped := s.GC(); dropped != 1 {
		t.Fatal("fully released pin still held the floor")
	}
}

func TestApplyRedoStampsVersions(t *testing.T) {
	s := newTestStore()
	s.ApplyRedo([]WriteOp{{Key: "a", Value: "1"}})
	ts1 := s.CommitTS()
	s.ApplyRedo([]WriteOp{{Key: "a", Value: "2"}})
	ts2 := s.CommitTS()
	if ts2 <= ts1 {
		t.Fatalf("redo timestamps not monotone: %d, %d", ts1, ts2)
	}
	if v, err := s.ReadAt(ts1, "a"); err != nil || v != "1" {
		t.Fatalf("redo history = %q, %v", v, err)
	}
}

// --- Satellite: EncodeWrites capacity math ---------------------------------

// encodedWritesCap mirrors the reservation formula in EncodeWrites. If the
// two drift, the cap assertion below catches the resize.
func encodedWritesCap(ops []WriteOp) int {
	size := 1 + binary.MaxVarintLen64
	for _, op := range ops {
		size += 3*binary.MaxVarintLen64 + len(op.Key) + len(op.Value)
	}
	return size
}

// TestEncodeWritesNoResize asserts the single up-front allocation is never
// grown by append: the returned slice's capacity must be exactly the
// reservation (a resize would round up to an allocator size class), and the
// whole encode costs one allocation.
func TestEncodeWritesNoResize(t *testing.T) {
	long := make([]byte, 1<<12)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	cases := [][]WriteOp{
		nil,
		{{Key: "a", Value: "1"}},
		{{Key: "a", Value: "1"}, {Key: "b", Delete: true}, {Key: "", Value: ""}},
		{{Key: string(long), Value: string(long)}, {Key: "k", Value: string(long), Delete: false}},
	}
	// 32 small ops: the case where per-op underestimation compounds.
	var many []WriteOp
	for i := 0; i < 32; i++ {
		many = append(many, WriteOp{Key: fmt.Sprintf("key-%02d", i), Value: fmt.Sprintf("val-%02d", i), Delete: i%3 == 0})
	}
	cases = append(cases, many)

	for i, ops := range cases {
		p, err := EncodeWrites(ops)
		if err != nil {
			t.Fatal(err)
		}
		if want := encodedWritesCap(ops); cap(p) != want {
			t.Fatalf("case %d: cap = %d, want the reservation %d (append resized on the prepare hot path)", i, cap(p), want)
		}
		if len(p) > cap(p) {
			t.Fatalf("case %d: len %d > cap %d", i, len(p), cap(p))
		}
		got, err := DecodeWrites(p)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(got) != len(ops) {
			t.Fatalf("case %d: round trip length %d != %d", i, len(got), len(ops))
		}
		for j := range ops {
			if got[j] != ops[j] {
				t.Fatalf("case %d op %d: %+v != %+v", i, j, got[j], ops[j])
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := EncodeWrites(many); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("EncodeWrites costs %.0f allocs, want 1", allocs)
	}
}

// TestDecodeWritesV1Compat: payloads in the pre-versioning v1 format (two
// varint-prefixed strings plus a raw flags byte per op) must still decode,
// so WALs written before the format change replay.
func TestDecodeWritesV1Compat(t *testing.T) {
	ops := []WriteOp{{Key: "a", Value: "1"}, {Key: "b", Delete: true}}
	buf := []byte{writesFormatV1}
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
		var flags byte
		if op.Delete {
			flags = 1
		}
		buf = append(buf, flags)
	}
	got, err := DecodeWrites(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("v1 round trip = %+v", got)
	}
}

// --- Race coverage: snapshots, writers, and GC concurrently ----------------

// TestConcurrentSnapshotsWritersGC exercises the new snapshot and GC paths
// under the race detector: writers commit pairs of keys atomically, readers
// pin snapshots and must see each pair whole, GC runs throughout.
func TestConcurrentSnapshotsWritersGC(t *testing.T) {
	s := NewStore(Options{LockTimeout: 5 * time.Second})
	const writers, iters = 4, 50
	var wg, wgWriters sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			ka, kb := fmt.Sprintf("w%d-a", w), fmt.Sprintf("w%d-b", w)
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("w%d-t%d", w, i)
				v := strconv.Itoa(i)
				if err := s.Begin(id); err != nil {
					t.Error(err)
					return
				}
				if err := s.Put(id, ka, v); err != nil {
					t.Error(err)
					return
				}
				if err := s.Put(id, kb, v); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Prepare(id); err != nil {
					t.Error(err)
					return
				}
				if err := s.Commit(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := r % writers
				ka, kb := fmt.Sprintf("w%d-a", w), fmt.Sprintf("w%d-b", w)
				ts := s.AcquireSnapshot()
				va, ea := s.ReadAt(ts, ka)
				vb, eb := s.ReadAt(ts, kb)
				s.ReleaseSnapshot(ts)
				if errors.Is(ea, ErrSnapshotTooOld) || errors.Is(eb, ErrSnapshotTooOld) {
					t.Errorf("pinned snapshot %d GCed under reader", ts)
					return
				}
				if (ea == nil) != (eb == nil) || (ea == nil && va != vb) {
					t.Errorf("torn snapshot at %d: %q(%v) vs %q(%v)", ts, va, ea, vb, eb)
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.GC()
			}
		}
	}()

	// Writers finish on their own; then stop readers and GC.
	wgWriters.Wait()
	close(stop)
	wg.Wait()

	s.GC()
	for w := 0; w < writers; w++ {
		want := strconv.Itoa(iters - 1)
		if v, _ := s.Read(fmt.Sprintf("w%d-a", w)); v != want {
			t.Fatalf("w%d-a = %q, want %q", w, v, want)
		}
	}
}
