package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/metrics"
)

// Redial backoff bounds: after a dial failure the peer is not dialled again
// until the backoff window passes, doubling per consecutive failure from
// DefaultBackoffBase up to DefaultBackoffMax.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// peerDial tracks redial backoff for one unreachable peer.
type peerDial struct {
	failures int       // consecutive dial failures
	retryAt  time.Time // no dialing before this
}

// TCPEndpoint attaches a site to a real network: it listens for inbound
// connections from peers and dials peers on demand, encoding messages with
// encoding/gob. Connections are cached per destination and re-dialled on
// failure with bounded exponential backoff; delivery to an unreachable peer
// is dropped (matching the crash-stop semantics of the in-memory Network)
// and counted, so an operator can tell a quiet peer from a dead one.
type TCPEndpoint struct {
	id    int
	ln    net.Listener
	inbox chan Message

	// backoffBase and backoffMax bound the redial backoff, in nanoseconds;
	// zero means the defaults. Atomic so SetBackoff is safe at any time,
	// including concurrently with Send.
	backoffBase atomic.Int64
	backoffMax  atomic.Int64

	mu      sync.Mutex
	peers   map[int]string // site ID -> address
	conns   map[int]*gob.Encoder
	raw     map[int]net.Conn
	inbound map[net.Conn]bool
	backoff map[int]*peerDial
	closed  bool

	dropped metrics.Counter
	redials metrics.Counter

	wg sync.WaitGroup
}

// SetBackoff bounds the redial backoff: after a dial failure the peer is
// not dialled again until the window passes, doubling per consecutive
// failure from base up to max. Non-positive values select the defaults.
// Safe to call at any time, even concurrently with Send.
func (e *TCPEndpoint) SetBackoff(base, max time.Duration) {
	e.backoffBase.Store(int64(base))
	e.backoffMax.Store(int64(max))
}

// ListenTCP starts a TCP endpoint for site id on addr (e.g. "127.0.0.1:0").
// peers maps every other site ID to its address; entries may be added later
// with AddPeer.
func ListenTCP(id int, addr string, peers map[int]string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		id:      id,
		ln:      ln,
		inbox:   make(chan Message, inboxSize),
		peers:   map[int]string{},
		conns:   map[int]*gob.Encoder{},
		raw:     map[int]net.Conn{},
		inbound: map[net.Conn]bool{},
		backoff: map[int]*peerDial{},
	}
	for p, a := range peers {
		e.peers[p] = a
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's listening address, useful when listening on
// port 0.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// AddPeer registers or updates the address of a peer site. A new address
// clears any redial backoff accumulated against the old one.
func (e *TCPEndpoint) AddPeer(id int, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[id] = addr
	delete(e.backoff, id)
}

// Dropped returns how many messages this endpoint has dropped: sends to a
// peer that is unreachable or in redial backoff, sends on a broken
// connection, and inbound messages discarded on inbox overflow.
func (e *TCPEndpoint) Dropped() int64 { return e.dropped.Value() }

// Redials returns how many outbound dials this endpoint has attempted —
// connection churn: a healthy cluster dials each peer once, so a growing
// count means peers are flapping or unreachable.
func (e *TCPEndpoint) Redials() int64 { return e.redials.Value() }

// InboxDepth returns how many inbound messages are queued but not yet
// consumed; a depth pinned near the inbox capacity precedes overflow drops.
func (e *TCPEndpoint) InboxDepth() int { return len(e.inbox) }

// ID implements Endpoint.
func (e *TCPEndpoint) ID() int { return e.id }

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() <-chan Message { return e.inbox }

// Send implements Endpoint. Failure to reach the peer drops the message (the
// cached connection is discarded so a later send re-dials), counts the drop,
// and backs off redialling so a dead peer costs one dial attempt per backoff
// window instead of one per message.
func (e *TCPEndpoint) Send(m Message) error {
	m.From = e.id
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	enc, ok := e.conns[m.To]
	if !ok {
		addr, known := e.peers[m.To]
		if !known {
			return fmt.Errorf("transport: no address for site %d", m.To)
		}
		if b := e.backoff[m.To]; b != nil && time.Now().Before(b.retryAt) {
			e.dropped.Inc()
			return nil // backing off: message lost, crash-stop semantics
		}
		e.redials.Inc()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			e.noteDialFailure(m.To)
			e.dropped.Inc()
			return nil // peer down: message lost, crash-stop semantics
		}
		delete(e.backoff, m.To)
		enc = gob.NewEncoder(conn)
		e.conns[m.To] = enc
		e.raw[m.To] = conn
	}
	if err := enc.Encode(m); err != nil {
		if c := e.raw[m.To]; c != nil {
			c.Close()
		}
		delete(e.conns, m.To)
		delete(e.raw, m.To)
		e.dropped.Inc()
		return nil // connection broke: message lost
	}
	return nil
}

// noteDialFailure doubles the peer's redial backoff, bounded by the
// SetBackoff maximum. Caller holds e.mu.
func (e *TCPEndpoint) noteDialFailure(to int) {
	base := time.Duration(e.backoffBase.Load())
	max := time.Duration(e.backoffMax.Load())
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	b := e.backoff[to]
	if b == nil {
		b = &peerDial{}
		e.backoff[to] = b
	}
	d := max
	if b.failures < 16 { // beyond 2^16 the shift is past any sane max
		if d = base << b.failures; d > max {
			d = max
		}
	}
	b.failures++
	b.retryAt = time.Now().Add(d)
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, c := range e.raw {
		c.Close()
	}
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()
	e.ln.Close()
	e.wg.Wait()
	close(e.inbox)
	return nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.inbound[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		select {
		case e.inbox <- m:
		default:
			// Inbox overflow: drop, as the in-memory transport does.
			e.dropped.Inc()
		}
	}
}
