package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nbcommit/internal/metrics"
)

// Redial backoff bounds: after a dial failure the peer is not dialled again
// until the backoff window passes, doubling per consecutive failure from
// DefaultBackoffBase up to DefaultBackoffMax.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// Defaults for TCPOptions zero values.
const (
	DefaultQueueSize   = 1024
	DefaultMaxBatch    = 128
	DefaultDialTimeout = time.Second
)

// Codec selects the wire encoding of a TCPEndpoint's outbound connections.
// The receive side always auto-detects per connection, so endpoints with
// different codecs interoperate.
type Codec string

const (
	// CodecBinary is the compact length-prefixed varint framing (wire.go).
	CodecBinary Codec = "binary"
	// CodecGob is the legacy encoding/gob stream, kept for compatibility
	// and as the benchmark baseline.
	CodecGob Codec = "gob"
)

// DropCause classifies why the endpoint dropped a message, so an operator
// can tell a receive-side overflow from a send-side dead peer.
type DropCause int

const (
	// DropBackoff: the destination is inside its redial backoff window.
	DropBackoff DropCause = iota
	// DropDial: a dial attempt to the destination failed.
	DropDial
	// DropWrite: the cached connection broke mid-write.
	DropWrite
	// DropInboxOverflow: an inbound message arrived with the inbox full.
	DropInboxOverflow
	// DropQueueFull: the destination's outbound queue was full at enqueue.
	DropQueueFull
	numDropCauses
)

// DropCauses lists every cause, for metric registration loops.
var DropCauses = [numDropCauses]DropCause{
	DropBackoff, DropDial, DropWrite, DropInboxOverflow, DropQueueFull,
}

func (c DropCause) String() string {
	switch c {
	case DropBackoff:
		return "backoff"
	case DropDial:
		return "dial"
	case DropWrite:
		return "write"
	case DropInboxOverflow:
		return "inbox_overflow"
	case DropQueueFull:
		return "queue_full"
	}
	return "unknown"
}

// TCPOptions tunes a TCPEndpoint. The zero value selects the binary codec
// with coalescing on and the default queue bounds.
type TCPOptions struct {
	// Codec selects the outbound wire encoding; empty means CodecBinary.
	Codec Codec
	// NoCoalesce disables batching of queued messages into a single write:
	// every message costs its own syscall, the pre-rewrite behavior.
	NoCoalesce bool
	// QueueSize bounds each peer's outbound queue; a full queue drops the
	// message (DropQueueFull). Zero means DefaultQueueSize.
	QueueSize int
	// MaxBatch caps how many queued messages one write may coalesce. Zero
	// means DefaultMaxBatch.
	MaxBatch int
	// DialTimeout bounds each dial attempt. Zero means DefaultDialTimeout.
	DialTimeout time.Duration
	// BatchSize, when set, observes the message count of every coalesced
	// batch actually written (metrics hook).
	BatchSize func(n int)
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.Codec == "" {
		o.Codec = CodecBinary
	}
	if o.QueueSize <= 0 {
		o.QueueSize = DefaultQueueSize
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	return o
}

// peerDial tracks redial backoff for one unreachable peer.
type peerDial struct {
	failures int       // consecutive dial failures
	retryAt  time.Time // no dialing before this
}

// peerWriter is the send side for one destination: a bounded queue drained
// by a dedicated goroutine that owns the connection. Send enqueues and
// returns; dialing, backoff and write stalls for this peer are absorbed
// here and never delay the caller or sends to other peers.
type peerWriter struct {
	to    int
	queue chan Message
}

// TCPEndpoint attaches a site to a real network: it listens for inbound
// connections from peers and dials peers on demand. Each peer gets an
// asynchronous writer goroutine with a bounded outbound queue; queued
// messages are coalesced into a single buffered write, so a commit round's
// N small messages to the same site cost one syscall instead of N. Messages
// are framed with a compact varint binary codec (wire.go) by default, or
// legacy gob; the receive side auto-detects either. Delivery to an
// unreachable peer is dropped (matching the crash-stop semantics of the
// in-memory Network) and counted by cause, so an operator can tell a quiet
// peer from a dead one.
type TCPEndpoint struct {
	id    int
	ln    net.Listener
	inbox chan Message
	opts  TCPOptions

	// ctx is cancelled by Close: it wakes idle writers and aborts in-flight
	// dials so Close never waits out a dial timeout.
	ctx    context.Context
	cancel context.CancelFunc

	// backoffBase and backoffMax bound the redial backoff, in nanoseconds;
	// zero means the defaults. Atomic so SetBackoff is safe at any time,
	// including concurrently with Send.
	backoffBase atomic.Int64
	backoffMax  atomic.Int64

	mu      sync.Mutex
	peers   map[int]string      // site ID -> address
	writers map[int]*peerWriter // created lazily on first Send
	conns   map[int]net.Conn    // writers' live connections, closed by Close
	inbound map[net.Conn]bool
	backoff map[int]*peerDial
	closed  bool

	drops   [numDropCauses]metrics.Counter
	redials metrics.Counter

	// Coalescing stats: batches written and messages they carried.
	batches   metrics.Counter
	batchMsgs metrics.Counter

	wg sync.WaitGroup
}

// ListenTCP starts a TCP endpoint for site id on addr (e.g. "127.0.0.1:0")
// with default options. peers maps every other site ID to its address;
// entries may be added later with AddPeer.
func ListenTCP(id int, addr string, peers map[int]string) (*TCPEndpoint, error) {
	return ListenTCPOpts(id, addr, peers, TCPOptions{})
}

// ListenTCPOpts starts a TCP endpoint with explicit options.
func ListenTCPOpts(id int, addr string, peers map[int]string, opts TCPOptions) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &TCPEndpoint{
		id:      id,
		ln:      ln,
		inbox:   make(chan Message, inboxSize),
		opts:    opts.withDefaults(),
		ctx:     ctx,
		cancel:  cancel,
		peers:   map[int]string{},
		writers: map[int]*peerWriter{},
		conns:   map[int]net.Conn{},
		inbound: map[net.Conn]bool{},
		backoff: map[int]*peerDial{},
	}
	for p, a := range peers {
		e.peers[p] = a
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// SetBackoff bounds the redial backoff: after a dial failure the peer is
// not dialled again until the window passes, doubling per consecutive
// failure from base up to max. Non-positive values select the defaults.
// Safe to call at any time, even concurrently with Send.
func (e *TCPEndpoint) SetBackoff(base, max time.Duration) {
	e.backoffBase.Store(int64(base))
	e.backoffMax.Store(int64(max))
}

// Addr returns the endpoint's listening address, useful when listening on
// port 0.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// AddPeer registers or updates the address of a peer site. A new address
// clears any redial backoff accumulated against the old one.
func (e *TCPEndpoint) AddPeer(id int, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[id] = addr
	delete(e.backoff, id)
}

// Dropped returns how many messages this endpoint has dropped, summed over
// every cause — see DroppedCause for the breakdown.
func (e *TCPEndpoint) Dropped() int64 {
	var total int64
	for i := range e.drops {
		total += e.drops[i].Value()
	}
	return total
}

// DroppedCause returns how many messages were dropped for one cause.
func (e *TCPEndpoint) DroppedCause(c DropCause) int64 {
	if c < 0 || c >= numDropCauses {
		return 0
	}
	return e.drops[c].Value()
}

// Redials returns how many outbound dials this endpoint has attempted —
// connection churn: a healthy cluster dials each peer once, so a growing
// count means peers are flapping or unreachable.
func (e *TCPEndpoint) Redials() int64 { return e.redials.Value() }

// InboxDepth returns how many inbound messages are queued but not yet
// consumed; a depth pinned near the inbox capacity precedes overflow drops.
func (e *TCPEndpoint) InboxDepth() int { return len(e.inbox) }

// QueueDepth returns how many outbound messages are queued for peer but not
// yet written; a depth pinned near the queue capacity precedes
// DropQueueFull drops.
func (e *TCPEndpoint) QueueDepth(peer int) int {
	e.mu.Lock()
	w := e.writers[peer]
	e.mu.Unlock()
	if w == nil {
		return 0
	}
	return len(w.queue)
}

// BatchStats returns how many coalesced batches have been written and how
// many messages they carried; msgs/batches is the mean coalescing factor.
func (e *TCPEndpoint) BatchStats() (batches, msgs int64) {
	return e.batches.Value(), e.batchMsgs.Value()
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() int { return e.id }

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() <-chan Message { return e.inbox }

// Send implements Endpoint. It is a non-blocking enqueue onto the
// destination's writer queue: a dead, dialling or stalled peer never blocks
// the caller or delays sends to other peers. A full queue drops the message
// (DropQueueFull), matching crash-stop semantics.
func (e *TCPEndpoint) Send(m Message) error {
	m.From = e.id
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	w := e.writers[m.To]
	if w == nil {
		if _, known := e.peers[m.To]; !known {
			e.mu.Unlock()
			return fmt.Errorf("transport: no address for site %d", m.To)
		}
		w = &peerWriter{to: m.To, queue: make(chan Message, e.opts.QueueSize)}
		e.writers[m.To] = w
		e.wg.Add(1)
		go e.runWriter(w)
	}
	e.mu.Unlock()
	select {
	case w.queue <- m:
	default:
		e.drops[DropQueueFull].Inc()
	}
	return nil
}

// writerConn is a peer writer's connection state, owned by its goroutine.
type writerConn struct {
	conn      net.Conn
	needMagic bool          // binary codec: magic not yet written
	bufw      *bufio.Writer // gob codec only
	genc      *gob.Encoder  // gob codec only
}

// runWriter drains one peer's queue: it takes a message, optionally
// coalesces whatever else is already queued (up to MaxBatch), and writes
// the batch with a single flush. It exits when the endpoint closes.
func (e *TCPEndpoint) runWriter(w *peerWriter) {
	defer e.wg.Done()
	var wc writerConn
	defer e.dropConn(w.to, &wc)
	batch := make([]Message, 0, e.opts.MaxBatch)
	done := e.ctx.Done()
	for {
		select {
		case m := <-w.queue:
			batch = append(batch[:0], m)
			if !e.opts.NoCoalesce {
			drain:
				for len(batch) < e.opts.MaxBatch {
					select {
					case m2 := <-w.queue:
						batch = append(batch, m2)
					default:
						break drain
					}
				}
			}
			e.flushBatch(w, &wc, batch)
		case <-done:
			return
		}
	}
}

// flushBatch writes one coalesced batch, connecting first if needed. A
// failure anywhere drops the whole batch under the matching cause: under
// crash-stop semantics a lost message is not an error, only a statistic.
func (e *TCPEndpoint) flushBatch(w *peerWriter, wc *writerConn, batch []Message) {
	if wc.conn == nil {
		if cause, ok := e.connect(w, wc); !ok {
			e.drops[cause].Add(int64(len(batch)))
			return
		}
	}
	var err error
	switch e.opts.Codec {
	case CodecGob:
		for _, m := range batch {
			if err = wc.genc.Encode(m); err != nil {
				break
			}
		}
		if err == nil {
			err = wc.bufw.Flush()
		}
	default: // CodecBinary
		bufp := wireBufPool.Get().(*[]byte)
		buf := (*bufp)[:0]
		if wc.needMagic {
			buf = append(buf, wireMagic[:]...)
		}
		for _, m := range batch {
			buf = appendMessage(buf, m)
		}
		_, err = wc.conn.Write(buf)
		*bufp = buf[:0]
		wireBufPool.Put(bufp)
		if err == nil {
			wc.needMagic = false
		}
	}
	if err != nil {
		e.dropConn(w.to, wc)
		e.drops[DropWrite].Add(int64(len(batch)))
		return
	}
	e.batches.Inc()
	e.batchMsgs.Add(int64(len(batch)))
	if e.opts.BatchSize != nil {
		e.opts.BatchSize(len(batch))
	}
}

// connect establishes the writer's connection, honoring the redial backoff.
// On failure it returns the cause the pending batch should be dropped under.
func (e *TCPEndpoint) connect(w *peerWriter, wc *writerConn) (DropCause, bool) {
	e.mu.Lock()
	addr, known := e.peers[w.to]
	if !known {
		e.mu.Unlock()
		return DropDial, false
	}
	if b := e.backoff[w.to]; b != nil && time.Now().Before(b.retryAt) {
		e.mu.Unlock()
		return DropBackoff, false
	}
	e.mu.Unlock()

	e.redials.Inc()
	d := net.Dialer{Timeout: e.opts.DialTimeout}
	conn, err := d.DialContext(e.ctx, "tcp", addr)
	if err != nil {
		e.mu.Lock()
		e.noteDialFailure(w.to)
		e.mu.Unlock()
		return DropDial, false
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		conn.Close()
		return DropDial, false
	}
	delete(e.backoff, w.to)
	e.conns[w.to] = conn
	e.mu.Unlock()

	wc.conn = conn
	if e.opts.Codec == CodecGob {
		wc.bufw = bufio.NewWriterSize(conn, 64<<10)
		wc.genc = gob.NewEncoder(wc.bufw)
	} else {
		wc.needMagic = true
	}
	return 0, true
}

// dropConn tears down a writer's connection (if any) and deregisters it.
func (e *TCPEndpoint) dropConn(to int, wc *writerConn) {
	if wc.conn == nil {
		return
	}
	wc.conn.Close()
	e.mu.Lock()
	if e.conns[to] == wc.conn {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	*wc = writerConn{}
}

// noteDialFailure doubles the peer's redial backoff, bounded by the
// SetBackoff maximum. Caller holds e.mu.
func (e *TCPEndpoint) noteDialFailure(to int) {
	base := time.Duration(e.backoffBase.Load())
	max := time.Duration(e.backoffMax.Load())
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	b := e.backoff[to]
	if b == nil {
		b = &peerDial{}
		e.backoff[to] = b
	}
	d := max
	if b.failures < 16 { // beyond 2^16 the shift is past any sane max
		if d = base << b.failures; d > max {
			d = max
		}
	}
	b.failures++
	b.retryAt = time.Now().Add(d)
}

// Close implements Endpoint. It interrupts blocked writes and in-flight
// dials, waits for every writer and reader goroutine to drain, and discards
// messages still queued but unsent (crash-stop: they are simply lost).
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns)+len(e.inbound))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	e.cancel() // wakes idle writers, aborts in-flight dials
	for _, c := range conns {
		c.Close() // unblocks writers stuck in Write and readers in Read
	}
	e.ln.Close()
	e.wg.Wait()
	close(e.inbox)
	return nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.inbound[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// readLoop decodes one inbound connection. The codec is detected from the
// first bytes: a binary-codec sender opens with wireMagic, anything else is
// a legacy gob stream, so mixed-codec clusters interoperate.
func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	head, err := br.Peek(len(wireMagic))
	if err != nil {
		return
	}
	if bytes.Equal(head, wireMagic[:]) {
		br.Discard(len(wireMagic))
		e.readBinary(br)
		return
	}
	e.readGob(br)
}

func (e *TCPEndpoint) readBinary(br *bufio.Reader) {
	bufp := wireBufPool.Get().(*[]byte)
	scratch := *bufp
	defer func() {
		*bufp = scratch[:0]
		wireBufPool.Put(bufp)
	}()
	for {
		var m Message
		var err error
		m, scratch, err = readWireMessage(br, scratch[:cap(scratch)])
		if err == errUnknownVersion {
			continue // frame consumed; a newer sender costs us only its frames
		}
		if err != nil {
			return
		}
		e.deliver(m)
	}
}

func (e *TCPEndpoint) readGob(br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		e.deliver(m)
	}
}

// deliver hands an inbound message to the inbox, dropping on overflow as
// the in-memory transport does. Readers hold the waitgroup, so the inbox
// cannot be closed underneath them.
func (e *TCPEndpoint) deliver(m Message) {
	select {
	case e.inbox <- m:
	default:
		e.drops[DropInboxOverflow].Inc()
	}
}
