package transport

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"nbcommit/internal/metrics"
)

// blackholeListener accepts connections and never reads from them: the
// sender's kernel buffers fill and its writes block — the shape of a hung
// (not crashed) peer. release() starts draining every connection.
func blackholeListener(t *testing.T) (addr string, release func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	released := make(chan struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go func(c net.Conn) {
				<-released
				io.Copy(io.Discard, c)
			}(c)
		}
	}()
	var once sync.Once
	t.Cleanup(func() {
		ln.Close()
		once.Do(func() { close(released) })
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	return ln.Addr().String(), func() { once.Do(func() { close(released) }) }
}

// bigPayload is large enough that a handful of messages overwhelm loopback
// socket buffers and block the peer's writer goroutine mid-Write. Shared
// across tests; the transport never mutates message bodies.
var bigPayload = make([]byte, 4<<20)

// TestTCPCloseWithQueuedMessages: Close must return promptly — interrupting
// a writer blocked in Write and discarding queued unsent messages — with
// every goroutine drained (Close returning IS the wg.Wait proof).
func TestTCPCloseWithQueuedMessages(t *testing.T) {
	addr, _ := blackholeListener(t)
	a, err := ListenTCPOpts(1, "127.0.0.1:0", map[int]string{2: addr}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := a.Send(Message{To: 2, Kind: "BIG", Body: bigPayload}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the writer is demonstrably wedged: messages stuck in queue.
	waitFor(t, "a blocked writer", func() bool { return a.QueueDepth(2) > 0 })

	done := make(chan error, 1)
	go func() { done <- a.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return with queued unsent messages")
	}
	if err := a.Send(Message{To: 2}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

// TestTCPQueueFullDropAccounting: a stalled peer fills its bounded queue and
// further sends are dropped under DropQueueFull — and the per-cause split
// sums to Dropped().
func TestTCPQueueFullDropAccounting(t *testing.T) {
	addr, _ := blackholeListener(t)
	a, err := ListenTCPOpts(1, "127.0.0.1:0", map[int]string{2: addr}, TCPOptions{QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 40; i++ {
		if err := a.Send(Message{To: 2, Kind: "BIG", Body: bigPayload}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "queue-full drops", func() bool { return a.DroppedCause(DropQueueFull) > 0 })
	var sum int64
	for _, c := range DropCauses {
		sum += a.DroppedCause(c)
	}
	if got := a.Dropped(); got != sum {
		t.Fatalf("Dropped() = %d, sum of causes = %d", got, sum)
	}
}

// TestTCPBlackholedPeerDoesNotBlockHealthyPeer is the regression test for
// the old single-mutex Send: with one peer wedged mid-Write, sends to a
// healthy peer must still be delivered with ordinary latency. Under the
// pre-rewrite transport this test deadlocks until the blackholed write's
// kernel buffers drain — the mutex was held across the blocked syscall.
func TestTCPBlackholedPeerDoesNotBlockHealthyPeer(t *testing.T) {
	dead, _ := blackholeListener(t)
	b, err := ListenTCP(3, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(1, "127.0.0.1:0", map[int]string{2: dead, 3: b.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Wedge peer 2's writer.
	for i := 0; i < 8; i++ {
		if err := a.Send(Message{To: 2, Kind: "BIG", Body: bigPayload}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "the blackholed writer to wedge", func() bool { return a.QueueDepth(2) > 0 })

	// Healthy peer: 200 request/response-paced sends, each timed.
	var lat metrics.Histogram
	for i := 0; i < 200; i++ {
		start := time.Now()
		if err := a.Send(Message{To: 3, Kind: "PING", TxID: "t"}); err != nil {
			t.Fatal(err)
		}
		if m := recvOne(t, b); m.Kind != "PING" {
			t.Fatalf("got %v", m)
		}
		lat.Observe(time.Since(start))
	}
	if p99 := lat.Quantile(0.99); p99 > 500*time.Millisecond {
		t.Fatalf("healthy-peer p99 = %v with a blackholed peer; sends are being delayed", p99)
	}
}

// TestTCPCoalescingBatchesQueuedMessages: messages that pile up behind a
// stalled write are flushed as coalesced batches — observably fewer writes
// than messages — and all of them are accounted to batches.
func TestTCPCoalescingBatchesQueuedMessages(t *testing.T) {
	addr, release := blackholeListener(t)
	a, err := ListenTCPOpts(1, "127.0.0.1:0", map[int]string{2: addr}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Block the writer — keep feeding it big messages until at least one is
	// stuck in the queue — then pile 50 small messages behind the stall.
	sent := 0
	for a.QueueDepth(2) == 0 {
		if err := a.Send(Message{To: 2, Kind: "BIG", Body: bigPayload}); err != nil {
			t.Fatal(err)
		}
		if sent++; sent > 100 {
			t.Fatal("writer never wedged against the blackholed peer")
		}
	}
	for i := 0; i < 50; i++ {
		if err := a.Send(Message{To: 2, Kind: "SMALL", TxID: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	release()
	total := int64(sent + 50)
	waitFor(t, "the queue to drain", func() bool {
		_, msgs := a.BatchStats()
		return msgs == total && a.QueueDepth(2) == 0
	})
	batches, msgs := a.BatchStats()
	if msgs != total || batches >= msgs {
		t.Fatalf("batches=%d msgs=%d: expected coalescing (fewer writes than messages)", batches, msgs)
	}
}

// TestTCPNoCoalesceWritesPerMessage: with coalescing disabled every message
// is its own write, the pre-rewrite baseline the benchmark compares against.
func TestTCPNoCoalesceWritesPerMessage(t *testing.T) {
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCPOpts(1, "127.0.0.1:0", map[int]string{2: b.Addr()}, TCPOptions{NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send(Message{To: 2, Kind: "M"}); err != nil {
			t.Fatal(err)
		}
		recvOne(t, b)
	}
	batches, msgs := a.BatchStats()
	if batches != 10 || msgs != 10 {
		t.Fatalf("batches=%d msgs=%d, want 10/10 without coalescing", batches, msgs)
	}
}

// TestTCPCodecInterop: the receive side auto-detects the codec per
// connection, so a gob sender and a binary sender both reach the same
// receiver — mixed-version clusters keep talking.
func TestTCPCodecInterop(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run(string(codec), func(t *testing.T) {
			recv, err := ListenTCP(2, "127.0.0.1:0", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer recv.Close()
			send, err := ListenTCPOpts(1, "127.0.0.1:0", map[int]string{2: recv.Addr()}, TCPOptions{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			defer send.Close()
			want := Message{To: 2, Kind: "VOTE-REQ", TxID: "x", Body: []byte("payload")}
			if err := send.Send(want); err != nil {
				t.Fatal(err)
			}
			m := recvOne(t, recv)
			if m.From != 1 || m.Kind != want.Kind || m.TxID != want.TxID || string(m.Body) != "payload" {
				t.Fatalf("got %+v", m)
			}
		})
	}
}

// TestTCPBatchSizeHook: the BatchSize metrics hook observes every written
// batch.
func TestTCPBatchSizeHook(t *testing.T) {
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var mu sync.Mutex
	var observed []int
	a, err := ListenTCPOpts(1, "127.0.0.1:0", map[int]string{2: b.Addr()}, TCPOptions{
		BatchSize: func(n int) { mu.Lock(); observed = append(observed, n); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(Message{To: 2, Kind: "M"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	mu.Lock()
	defer mu.Unlock()
	if len(observed) == 0 || observed[0] < 1 {
		t.Fatalf("BatchSize hook observed %v", observed)
	}
}

// TestTCPConcurrentSendAddPeerSetBackoffClose races every mutating entry
// point against Send, under -race in CI: concurrent sends to live and dead
// peers, peer re-addressing, backoff reconfiguration, stat reads, then
// Close in the middle of it all.
func TestTCPConcurrentSendAddPeerSetBackoffClose(t *testing.T) {
	live, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	go func() { // drain
		for range live.Recv() {
		}
	}()
	dead := deadAddr
	a, err := ListenTCP(1, "127.0.0.1:0", map[int]string{2: live.Addr(), 3: dead})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 300; i++ {
				to := 2 + (i+g)%2 // alternate live and dead peers
				if err := a.Send(Message{To: to, Kind: "X", TxID: "t"}); err != nil && err != ErrClosed {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 100; i++ {
			a.AddPeer(2, live.Addr())
			a.AddPeer(3, dead)
			a.SetBackoff(time.Duration(i+1)*time.Millisecond, time.Second)
			_ = a.Dropped()
			_ = a.QueueDepth(2)
			_, _ = a.BatchStats()
			_ = a.Redials()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(5 * time.Millisecond)
		if err := a.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	if err := a.Send(Message{To: 2}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}
