package transport

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// simClock is a hand-cranked virtual clock for link-model tests.
type simClock struct{ cur time.Time }

func newSimClock() *simClock          { return &simClock{cur: time.Unix(1000, 0)} }
func (c *simClock) now() time.Time    { return c.cur }
func (c *simClock) advance(d time.Duration) { c.cur = c.cur.Add(d) }

// drain advances the clock to each NextDue instant and takes every message as
// it becomes deliverable, returning "kind@offset" delivery records.
func drain(n *SimNetwork, clk *simClock) []string {
	start := clk.cur
	var out []string
	for {
		for {
			m, ok := n.Take(0)
			if !ok {
				break
			}
			out = append(out, fmt.Sprintf("%s@%v", m.Kind, clk.cur.Sub(start)))
		}
		due, ok := n.NextDue()
		if !ok {
			return out
		}
		clk.cur = due
	}
}

func TestDelayDistSample(t *testing.T) {
	n := NewSimNetwork() // for its seeded rng
	cases := []struct {
		name     string
		d        DelayDist
		min, max time.Duration
	}{
		{"none", DelayDist{}, 0, 0},
		{"fixed", FixedDelay(7 * time.Millisecond), 7 * time.Millisecond, 7 * time.Millisecond},
		{"uniform", UniformDelay(time.Millisecond, 3*time.Millisecond), time.Millisecond, 3 * time.Millisecond},
		{"uniform-degenerate", UniformDelay(5*time.Millisecond, time.Millisecond), 5 * time.Millisecond, 5 * time.Millisecond},
		{"lognormal", LognormalDelay(40*time.Millisecond, 0.35), time.Nanosecond, time.Hour},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 200; i++ {
				got := tc.d.sample(n.rng)
				if got < tc.min || got > tc.max {
					t.Fatalf("sample %d = %v outside [%v, %v]", i, got, tc.min, tc.max)
				}
			}
		})
	}
}

// TestLinkScheduleDeterminism: same seed + same send sequence = the exact same
// delivery schedule, across delay shapes, loss and reorder jitter.
func TestLinkScheduleDeterminism(t *testing.T) {
	build := func(seed int64) []string {
		clk := newSimClock()
		n := NewSimNetwork()
		n.Seed(seed)
		n.UseClock(clk.now)
		e1 := n.Endpoint(1)
		e2 := n.Endpoint(2)
		n.Endpoint(3)
		n.SetLink(1, 2, LinkModel{Delay: UniformDelay(time.Millisecond, 4*time.Millisecond), Loss: 0.2})
		n.SetLink(1, 3, LinkModel{Delay: LognormalDelay(60*time.Millisecond, 0.35), ReorderWindow: 5 * time.Millisecond})
		n.SetLink(2, 3, LinkModel{Delay: FixedDelay(2 * time.Millisecond)})
		for i := 0; i < 24; i++ {
			e1.Send(Message{To: 2, Kind: fmt.Sprintf("a%d", i)})
			e1.Send(Message{To: 3, Kind: fmt.Sprintf("b%d", i)})
			e2.Send(Message{To: 3, Kind: fmt.Sprintf("c%d", i)})
		}
		return drain(n, clk)
	}

	one, two := build(42), build(42)
	if len(one) == 0 {
		t.Fatal("no deliveries")
	}
	if fmt.Sprint(one) != fmt.Sprint(two) {
		t.Fatalf("same seed diverged:\n%v\n%v", one, two)
	}
	other := build(43)
	if fmt.Sprint(one) == fmt.Sprint(other) {
		t.Fatal("different seeds produced the identical delivery schedule")
	}
}

// TestBlockOneWayAsymmetric: cutting 1 -> 2 drops exactly that direction at
// send time; 2 -> 1 keeps delivering.
func TestBlockOneWayAsymmetric(t *testing.T) {
	n := NewSimNetwork()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)

	n.BlockOneWay(1, 2)
	e1.Send(Message{To: 2, Kind: "forward"})
	e2.Send(Message{To: 1, Kind: "reverse"})

	if got := n.Pending(); got != 1 {
		t.Fatalf("pending = %d, want only the reverse message", got)
	}
	if m, _ := n.Peek(0); m.Kind != "reverse" || m.From != 2 {
		t.Fatalf("deliverable = %+v, want the 2->1 message", m)
	}
	if got := n.DroppedCause(SimDropPartition); got != 1 {
		t.Fatalf("partition drops = %d, want 1", got)
	}

	n.UnblockOneWay(1, 2)
	e1.Send(Message{To: 2, Kind: "healed"})
	if got := n.Pending(); got != 2 {
		t.Fatalf("pending after heal = %d", got)
	}
}

// TestHealFlushesHeldMessages: messages already in flight when the link is cut
// are held — invisible to Pending/Take and NextDue — and delivered, not
// dropped, once the link heals.
func TestHealFlushesHeldMessages(t *testing.T) {
	clk := newSimClock()
	n := NewSimNetwork()
	n.UseClock(clk.now)
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	n.SetLink(1, 2, LinkModel{Delay: FixedDelay(10 * time.Millisecond)})

	e1.Send(Message{To: 2, Kind: "in-flight"})
	n.BlockOneWay(1, 2)
	clk.advance(time.Second) // due long passed, link still cut

	if got := n.Pending(); got != 0 {
		t.Fatalf("held message deliverable through a cut link (pending = %d)", got)
	}
	if _, ok := n.NextDue(); ok {
		t.Fatal("NextDue exposes a held message: a scheduler would spin on it")
	}
	if got := n.InFlight(); got != 1 {
		t.Fatalf("in-flight = %d, the held message was lost", got)
	}

	n.UnblockOneWay(1, 2)
	m, ok := n.Take(0)
	if !ok || m.Kind != "in-flight" {
		t.Fatalf("heal did not flush the held message: %+v, %v", m, ok)
	}
	if _, dropped := n.Stats(); dropped != 0 {
		t.Fatalf("heal dropped %d held messages, want 0", dropped)
	}
}

// TestGraySlowdown: a gray site stays Alive while every link touching it runs
// factor times slower; clearing the gray state restores the base delay.
func TestGraySlowdown(t *testing.T) {
	clk := newSimClock()
	n := NewSimNetwork()
	n.UseClock(clk.now)
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	n.SetDefaultLink(LinkModel{Delay: FixedDelay(10 * time.Millisecond)})

	n.SetGray(1, 25)
	if !n.Alive(1) {
		t.Fatal("gray flipped Alive: gray means slow, not dead")
	}
	e1.Send(Message{To: 2, Kind: "slow"})
	due, ok := n.NextDue()
	if !ok || due.Sub(clk.cur) != 250*time.Millisecond {
		t.Fatalf("gray x25 delay = %v, want 250ms", due.Sub(clk.cur))
	}

	n.SetGray(1, 1) // clear
	if !n.Alive(1) {
		t.Fatal("clearing gray flipped Alive")
	}
	clk.advance(time.Second)
	drain(n, clk)
	e1.Send(Message{To: 2, Kind: "fast"})
	due, ok = n.NextDue()
	if !ok || due.Sub(clk.cur) != 10*time.Millisecond {
		t.Fatalf("post-gray delay = %v, want 10ms", due.Sub(clk.cur))
	}
}

// TestDropCauseSumInvariant mirrors the TCP transport's
// transport_dropped_total{cause} contract: the per-cause counters partition
// the dropped total exactly.
func TestDropCauseSumInvariant(t *testing.T) {
	n := NewSimNetwork()
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	n.Endpoint(3)

	// loss: a certain-loss link eats both sends.
	n.SetLink(1, 2, LinkModel{Loss: 1.0})
	e1.Send(Message{To: 2, Kind: "lost-1"})
	e1.Send(Message{To: 2, Kind: "lost-2"})

	// partition: a blocked direction drops at send.
	n.BlockOneWay(1, 3)
	e1.Send(Message{To: 3, Kind: "cut"})
	n.UnblockOneWay(1, 3)

	// crash: one queued message purged by the crash, one sent at a dead site.
	e1.Send(Message{To: 3, Kind: "queued"})
	n.Crash(3)
	e1.Send(Message{To: 3, Kind: "to-the-dead"})

	want := map[SimDropCause]uint64{SimDropLoss: 2, SimDropPartition: 1, SimDropCrash: 2}
	var sum uint64
	for _, c := range SimDropCauses {
		if got := n.DroppedCause(c); got != want[c] {
			t.Fatalf("dropped{cause=%s} = %d, want %d", c, got, want[c])
		}
		sum += n.DroppedCause(c)
	}
	if _, dropped := n.Stats(); dropped != sum {
		t.Fatalf("cause counters sum to %d, Stats reports %d dropped", sum, dropped)
	}
	if sum != 5 {
		t.Fatalf("total drops = %d, want 5", sum)
	}
}

// TestReorderWindowOvertake: reorder jitter lets messages on one link overtake
// each other without the base delay changing, and stays seed-deterministic.
func TestReorderWindowOvertake(t *testing.T) {
	clk := newSimClock()
	n := NewSimNetwork()
	n.Seed(7)
	n.UseClock(clk.now)
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	n.SetLink(1, 2, LinkModel{Delay: FixedDelay(time.Millisecond), ReorderWindow: 10 * time.Millisecond})

	for i := 0; i < 16; i++ {
		e1.Send(Message{To: 2, Kind: fmt.Sprintf("m%d", i)})
	}
	order := drain(n, clk)
	if len(order) != 16 {
		t.Fatalf("delivered %d of 16", len(order))
	}
	inOrder := true
	for i, rec := range order {
		if !strings.HasPrefix(rec, fmt.Sprintf("m%d@", i)) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("reorder window never reordered 16 messages — jitter not applied")
	}
}
