package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math/bits"
	"sync"
)

// Binary wire codec (version 1).
//
// The commit protocols this repo reproduces are priced in messages and
// message delays, so the per-message cost of the wire is the unit of account
// for everything the benchmarks measure. gob charges every connection a type
// preamble and every message a reflective walk; this codec writes a Message
// as a handful of varints instead.
//
// A connection carrying the binary codec opens with a 4-byte magic (so a
// receiver can tell it apart from a legacy gob stream and keep accepting
// either) followed by a sequence of frames:
//
//	uvarint  frame length (count of bytes that follow)
//	byte     codec version (wireV1)
//	varint   From
//	varint   To
//	uvarint  len(Kind)  then Kind bytes
//	uvarint  len(TxID)  then TxID bytes
//	uvarint  len(Body)  then Body bytes
//
// A frame with an unknown version byte is skipped, not fatal: its length is
// already known, so a newer sender only costs an older receiver the frames
// it cannot parse.

// wireMagic prefixes every binary-codec connection. The first byte is
// deliberately >= 0x80: a gob stream opens with the byte count of its first
// type-definition frame, which for any sane frame is a single byte < 0x80,
// so a legacy stream cannot alias the magic.
var wireMagic = [4]byte{0xFB, 'N', 'B', 'C'}

const (
	wireV1 = 1
	// maxWireFrame bounds a frame so a corrupt or hostile length prefix
	// cannot make the reader allocate without bound.
	maxWireFrame = 16 << 20
)

var (
	errFrameLength    = errors.New("transport: wire frame exceeds size bound")
	errUnknownVersion = errors.New("transport: unknown wire codec version")
	errTruncatedFrame = errors.New("transport: truncated wire frame")
)

// wireBufPool recycles encode buffers across writer flushes and decode
// scratch across connections, so the steady-state hot path allocates only
// the decoded Message fields themselves.
var wireBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

func varintLen(x int64) int { return uvarintLen(uint64(x)<<1 ^ uint64(x>>63)) }

// appendMessage appends m's wire frame to buf and returns the extended
// slice. The frame length is computed up front, so encoding is a single
// append pass with no intermediate buffer.
func appendMessage(buf []byte, m Message) []byte {
	n := 1 + varintLen(int64(m.From)) + varintLen(int64(m.To)) +
		uvarintLen(uint64(len(m.Kind))) + len(m.Kind) +
		uvarintLen(uint64(len(m.TxID))) + len(m.TxID) +
		uvarintLen(uint64(len(m.Body))) + len(m.Body)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = append(buf, wireV1)
	buf = binary.AppendVarint(buf, int64(m.From))
	buf = binary.AppendVarint(buf, int64(m.To))
	buf = binary.AppendUvarint(buf, uint64(len(m.Kind)))
	buf = append(buf, m.Kind...)
	buf = binary.AppendUvarint(buf, uint64(len(m.TxID)))
	buf = append(buf, m.TxID...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Body)))
	buf = append(buf, m.Body...)
	return buf
}

// readWireMessage reads one frame from br, reusing scratch for the frame
// body, and returns the decoded message plus the (possibly grown) scratch.
// An errUnknownVersion return means the frame was consumed but not decoded;
// the caller may continue with the next frame.
func readWireMessage(br *bufio.Reader, scratch []byte) (Message, []byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return Message{}, scratch, err
	}
	if n > maxWireFrame {
		return Message{}, scratch, errFrameLength
	}
	if uint64(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	p := scratch[:n]
	if _, err := io.ReadFull(br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Message{}, scratch, err
	}
	m, err := decodeWirePayload(p)
	return m, scratch, err
}

// decodeWirePayload parses one frame body (everything after the length
// prefix). It never panics on garbage: every length is bounds-checked
// against the remaining payload.
func decodeWirePayload(p []byte) (Message, error) {
	if len(p) == 0 {
		return Message{}, errTruncatedFrame
	}
	if p[0] != wireV1 {
		return Message{}, errUnknownVersion
	}
	p = p[1:]
	from, p, err := readWireVarint(p)
	if err != nil {
		return Message{}, err
	}
	to, p, err := readWireVarint(p)
	if err != nil {
		return Message{}, err
	}
	kind, p, err := readWireString(p)
	if err != nil {
		return Message{}, err
	}
	txid, p, err := readWireString(p)
	if err != nil {
		return Message{}, err
	}
	body, p, err := readWireBytes(p)
	if err != nil {
		return Message{}, err
	}
	if len(p) != 0 {
		return Message{}, errTruncatedFrame
	}
	return Message{From: int(from), To: int(to), Kind: kind, TxID: txid, Body: body}, nil
}

func readWireVarint(p []byte) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, p, errTruncatedFrame
	}
	return v, p[n:], nil
}

func readWireUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, errTruncatedFrame
	}
	return v, p[n:], nil
}

func readWireString(p []byte) (string, []byte, error) {
	n, p, err := readWireUvarint(p)
	if err != nil || uint64(len(p)) < n {
		return "", p, errTruncatedFrame
	}
	return string(p[:n]), p[n:], nil
}

// readWireBytes copies the field out of the frame scratch: the returned
// slice escapes into the delivered Message and must not alias the reusable
// buffer.
func readWireBytes(p []byte) ([]byte, []byte, error) {
	n, p, err := readWireUvarint(p)
	if err != nil || uint64(len(p)) < n {
		return nil, p, errTruncatedFrame
	}
	if n == 0 {
		return nil, p, nil
	}
	b := make([]byte, n)
	copy(b, p[:n])
	return b, p[n:], nil
}
