package transport

import (
	"bufio"
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzWireCodec drives the binary wire codec two ways at once: (1) any
// Message built from the fuzzed fields must survive an encode→decode round
// trip bit-exactly, and (2) the decoder fed arbitrary bytes must never
// panic, never allocate beyond the frame bound, and always terminate —
// corrupt frames are an error (or a skipped unknown version), not a crash.
func FuzzWireCodec(f *testing.F) {
	f.Add(int64(1), int64(3), "PREPARE", "t42", []byte("hi"), []byte{})
	f.Add(int64(-9), int64(0), "", "", []byte(nil), []byte("garbage garbage"))
	f.Add(int64(1<<40), int64(-1), "VOTE-REQ", "tx-ünïcode", bytes.Repeat([]byte{0xAB}, 200),
		appendMessage(nil, Message{From: 7, To: 8, Kind: "ACK", TxID: "t"}))
	f.Add(int64(2), int64(2), "K", "t", []byte{0}, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3})

	f.Fuzz(func(t *testing.T, from, to int64, kind, txid string, body, raw []byte) {
		// Round trip.
		m := Message{From: int(from), To: int(to), Kind: kind, TxID: txid, Body: body}
		enc := appendMessage(nil, m)
		br := bufio.NewReader(bytes.NewReader(enc))
		got, _, err := readWireMessage(br, nil)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(got.Body) == 0 {
			got.Body = nil
		}
		if len(m.Body) == 0 {
			m.Body = nil
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
		if _, _, err := readWireMessage(br, nil); err != io.EOF {
			t.Fatalf("trailing bytes after a single frame: %v", err)
		}

		// Garbage: decode raw as a frame stream until it errors out. Must not
		// panic; unknown-version frames are skipped, everything else ends the
		// stream. Bounded by the input length, so it always terminates.
		gbr := bufio.NewReader(bytes.NewReader(raw))
		var scratch []byte
		for {
			var err error
			_, scratch, err = readWireMessage(gbr, scratch)
			if err == errUnknownVersion {
				continue
			}
			if err != nil {
				break
			}
		}
	})
}
