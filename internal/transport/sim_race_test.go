package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSimNetworkConcurrentChaos drives concurrent schedule-event application
// (block/unblock, gray, link swaps, crash/re-attach) against concurrent
// senders and a Take/Peek scheduler loop. It asserts nothing beyond internal
// consistency — its job is to fail under -race if any chaos mutator touches
// SimNetwork state outside the lock.
func TestSimNetworkConcurrentChaos(t *testing.T) {
	clk := struct {
		mu  sync.Mutex
		cur time.Time
	}{cur: time.Unix(1000, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.cur
	}

	n := NewSimNetwork()
	n.Seed(11)
	n.UseClock(now)
	const sites = 4
	eps := make([]Endpoint, sites+1)
	for id := 1; id <= sites; id++ {
		eps[id] = n.Endpoint(id)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Senders: every site sprays every other site.
	for id := 1; id <= sites; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				to := 1 + (id+i)%sites
				if to == id {
					to = 1 + to%sites
				}
				eps[id].Send(Message{To: to, Kind: fmt.Sprintf("m%d-%d", id, i)})
			}
		}(id)
	}

	// Chaos applier: timed-schedule events arriving while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			a, b := 1+i%sites, 1+(i+1)%sites
			switch i % 6 {
			case 0:
				n.BlockOneWay(a, b)
			case 1:
				n.UnblockOneWay(a, b)
			case 2:
				n.SetGray(a, 10)
			case 3:
				n.SetGray(a, 1)
			case 4:
				n.SetLink(a, b, LinkModel{Delay: UniformDelay(time.Millisecond, 5*time.Millisecond), Loss: 0.05})
			case 5:
				n.Block(a, b)
				n.Unblock(a, b)
			}
		}
		// One full crash + revive cycle mid-traffic. The sender keeps its old
		// endpoint handle, which re-attaching makes valid again.
		n.Crash(2)
		n.Endpoint(2)
	}()

	// Scheduler: advances the clock and consumes deliverable messages.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := n.Take(0); ok {
				continue
			}
			n.Peek(0)
			n.Pending()
			n.InFlight()
			if due, ok := n.NextDue(); ok {
				clk.mu.Lock()
				if due.After(clk.cur) {
					clk.cur = due
				}
				clk.mu.Unlock()
			}
		}
	}()

	// Metrics reader racing the mutators.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			n.Stats()
			for _, c := range SimDropCauses {
				n.DroppedCause(c)
			}
			n.Alive(1 + i%sites)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		close(stop)
		t.Fatal("concurrent chaos deadlocked")
	}
	close(stop)

	// Conservation: everything sent was delivered, dropped, or is in flight.
	sent, dropped := n.Stats()
	if sent+dropped == 0 {
		t.Fatal("no traffic flowed")
	}
	// Drain what's left (heal everything first so held messages flush).
	for a := 1; a <= sites; a++ {
		for b := 1; b <= sites; b++ {
			if a != b {
				n.UnblockOneWay(a, b)
			}
		}
	}
	clk.mu.Lock()
	clk.cur = clk.cur.Add(time.Hour)
	clk.mu.Unlock()
	for {
		if _, ok := n.Take(0); !ok {
			break
		}
	}
	if left := n.InFlight(); left != 0 {
		t.Fatalf("%d messages neither deliverable nor dropped after full heal", left)
	}
}
