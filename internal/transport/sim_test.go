package transport

import "testing"

func TestSimNetworkCaptureAndTake(t *testing.T) {
	n := NewSimNetwork()
	e1 := n.Endpoint(1)
	n.Endpoint(2)

	if err := e1.Send(Message{To: 2, Kind: "A", TxID: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := e1.Send(Message{To: 2, Kind: "B", TxID: "t"}); err != nil {
		t.Fatal(err)
	}
	if n.Pending() != 2 {
		t.Fatalf("pending = %d", n.Pending())
	}
	if m, ok := n.Peek(1); !ok || m.Kind != "B" {
		t.Fatalf("peek = %v, %v", m, ok)
	}
	m, ok := n.Take(0)
	if !ok || m.Kind != "A" || m.From != 1 || m.To != 2 {
		t.Fatalf("take = %v, %v", m, ok)
	}
	if n.Pending() != 1 {
		t.Fatalf("pending after take = %d", n.Pending())
	}
	if _, ok := n.Take(5); ok {
		t.Fatal("out-of-range take succeeded")
	}
}

func TestSimNetworkCrashSemantics(t *testing.T) {
	n := NewSimNetwork()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	n.Endpoint(3)

	var crashes []int
	n.Watch(func(site int) { crashes = append(crashes, site) })

	e1.Send(Message{To: 2, Kind: "TO-VICTIM"})
	e2.Send(Message{To: 3, Kind: "FROM-VICTIM"})

	// Silence stops new traffic both ways but reports nothing.
	n.Silence(2)
	if n.Alive(2) {
		t.Fatal("silenced site still alive")
	}
	if err := e2.Send(Message{To: 3, Kind: "late"}); err != ErrClosed {
		t.Fatalf("send from silenced site: %v", err)
	}
	e1.Send(Message{To: 2, Kind: "lost"}) // dropped, not queued
	if len(crashes) != 0 {
		t.Fatalf("silence reported a crash: %v", crashes)
	}
	if n.Pending() != 2 {
		t.Fatalf("pending = %d", n.Pending())
	}

	// Crash drops the victim's queued inbox, keeps its in-flight sends, and
	// fires the watchers exactly once.
	n.Crash(2)
	n.Crash(2)
	if len(crashes) != 1 || crashes[0] != 2 {
		t.Fatalf("crash reports = %v", crashes)
	}
	if n.Pending() != 1 {
		t.Fatalf("pending after crash = %d", n.Pending())
	}
	if m, _ := n.Peek(0); m.Kind != "FROM-VICTIM" {
		t.Fatalf("survivor message = %v", m)
	}

	// Re-attaching revives the site.
	n.Endpoint(2)
	if !n.Alive(2) {
		t.Fatal("re-attached site not alive")
	}
}

func TestSimNetworkBlock(t *testing.T) {
	n := NewSimNetwork()
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	n.Block(1, 2)
	e1.Send(Message{To: 2, Kind: "cut"})
	if n.Pending() != 0 {
		t.Fatal("blocked link delivered")
	}
	n.Unblock(1, 2)
	e1.Send(Message{To: 2, Kind: "ok"})
	if n.Pending() != 1 {
		t.Fatal("unblocked link dropped")
	}
	sent, dropped := n.Stats()
	if sent != 1 || dropped != 1 {
		t.Fatalf("stats = %d sent, %d dropped", sent, dropped)
	}
}
