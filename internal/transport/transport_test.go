package transport

import (
	"sync"
	"testing"
	"time"
)

func recvOne(t *testing.T, ep Endpoint) Message {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint channel closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	return Message{}
}

func TestNetworkDelivery(t *testing.T) {
	n := NewNetwork()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	if err := e1.Send(Message{To: 2, Kind: "PING", TxID: "t"}); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, e2)
	if m.From != 1 || m.Kind != "PING" || m.TxID != "t" {
		t.Fatalf("got %v", m)
	}
	if d, _ := n.Stats(); d != 1 {
		t.Fatalf("delivered = %d", d)
	}
}

func TestNetworkSenderStamped(t *testing.T) {
	n := NewNetwork()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	// A forged From is overwritten.
	if err := e1.Send(Message{From: 99, To: 2, Kind: "X"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, e2); m.From != 1 {
		t.Fatalf("From = %d", m.From)
	}
}

func TestNetworkCrash(t *testing.T) {
	n := NewNetwork()
	e1 := n.Endpoint(1)
	n.Endpoint(2)

	var mu sync.Mutex
	var crashed []int
	n.WatchCrashes(func(site int) {
		mu.Lock()
		crashed = append(crashed, site)
		mu.Unlock()
	})

	n.Crash(2)
	if n.Alive(2) {
		t.Fatal("site 2 alive after crash")
	}
	if !n.Alive(1) {
		t.Fatal("site 1 should be alive")
	}
	// Sends to a crashed site are dropped, not errors.
	if err := e1.Send(Message{To: 2, Kind: "X"}); err != nil {
		t.Fatal(err)
	}
	if _, dropped := n.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(crashed) != 1 || crashed[0] != 2 {
		t.Fatalf("crash watchers saw %v", crashed)
	}
	// Crashing twice notifies once.
	n.Crash(2)
	if len(crashed) != 1 {
		t.Fatalf("duplicate crash notification: %v", crashed)
	}
}

func TestNetworkCrashClosesInbox(t *testing.T) {
	n := NewNetwork()
	n.Endpoint(1)
	e2 := n.Endpoint(2)
	n.Crash(2)
	select {
	case _, ok := <-e2.Recv():
		if ok {
			t.Fatal("unexpected message")
		}
	case <-time.After(time.Second):
		t.Fatal("inbox not closed on crash")
	}
	if err := e2.Send(Message{To: 1}); err != ErrClosed {
		t.Fatalf("send from crashed site: %v", err)
	}
}

func TestNetworkRestart(t *testing.T) {
	n := NewNetwork()
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	n.Crash(2)
	e2b := n.Endpoint(2) // restart
	if !n.Alive(2) {
		t.Fatal("site 2 should be alive after restart")
	}
	if err := e1.Send(Message{To: 2, Kind: "HELLO"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, e2b); m.Kind != "HELLO" {
		t.Fatalf("got %v", m)
	}
}

func TestNetworkPartition(t *testing.T) {
	n := NewNetwork()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	n.Block(1, 2)
	if err := e1.Send(Message{To: 2}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Send(Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	if _, dropped := n.Stats(); dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
	n.Unblock(2, 1) // order-insensitive
	if err := e1.Send(Message{To: 2, Kind: "OK"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, e2); m.Kind != "OK" {
		t.Fatalf("got %v", m)
	}
}

func TestNetworkDropFunc(t *testing.T) {
	n := NewNetwork()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	n.SetDropFunc(func(m Message) bool { return m.Kind == "EVIL" })
	e1.Send(Message{To: 2, Kind: "EVIL"})
	e1.Send(Message{To: 2, Kind: "GOOD"})
	if m := recvOne(t, e2); m.Kind != "GOOD" {
		t.Fatalf("got %v", m)
	}
	n.SetDropFunc(nil)
	e1.Send(Message{To: 2, Kind: "EVIL"})
	if m := recvOne(t, e2); m.Kind != "EVIL" {
		t.Fatalf("got %v", m)
	}
}

func TestEndpointClose(t *testing.T) {
	n := NewNetwork()
	e1 := n.Endpoint(1)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e1.Send(Message{To: 2}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if n.Alive(1) {
		t.Fatal("closed endpoint still alive")
	}
}

func TestMessageString(t *testing.T) {
	m := Message{From: 1, To: 3, Kind: "PREPARE", TxID: "t42"}
	if got := m.String(); got != "PREPARE[1->3 tx=t42]" {
		t.Fatalf("String = %q", got)
	}
}

func TestTCPEndpointRoundTrip(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[int]string{1: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())

	if err := a.Send(Message{To: 2, Kind: "VOTE-REQ", TxID: "x", Body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if m.From != 1 || m.Kind != "VOTE-REQ" || string(m.Body) != "hi" {
		t.Fatalf("got %+v", m)
	}
	// Reply over b's own dialled connection.
	if err := b.Send(Message{To: 1, Kind: "YES", TxID: "x"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, a); m.Kind != "YES" || m.From != 2 {
		t.Fatalf("got %+v", m)
	}
	if a.ID() != 1 || b.ID() != 2 {
		t.Fatal("IDs wrong")
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(Message{To: 9}); err == nil {
		t.Fatal("send to unknown peer should fail")
	}
}

func TestTCPSendToDeadPeerIsDropped(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", map[int]string{2: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Port 1 refuses connections: crash-stop semantics say drop silently.
	if err := a.Send(Message{To: 2, Kind: "X"}); err != nil {
		t.Fatalf("send to dead peer: %v", err)
	}
}

func TestTCPCloseIsIdempotentAndStopsSends(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Message{To: 2}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestTCPPeerReconnect(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	if err := a.Send(Message{To: 2, Kind: "ONE"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	addr := b.Addr()
	b.Close()

	// First send after the peer dies is lost (broken cached connection or
	// failed dial) ...
	a.Send(Message{To: 2, Kind: "LOST"})
	a.Send(Message{To: 2, Kind: "LOST"})

	// ... then the peer restarts on the same address and delivery resumes.
	b2, err := ListenTCP(2, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(Message{To: 2, Kind: "BACK"}); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-b2.Recv():
			if m.Kind == "BACK" {
				return
			}
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatal("delivery did not resume after peer restart")
}

func TestNetworkConcurrentSends(t *testing.T) {
	n := NewNetwork()
	eps := make([]Endpoint, 8)
	for i := range eps {
		eps[i] = n.Endpoint(i + 1)
	}
	var wg sync.WaitGroup
	const perSender = 100
	for i := range eps {
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for k := 0; k < perSender; k++ {
				ep.Send(Message{To: 1, Kind: "M"})
			}
		}(eps[i])
	}
	done := make(chan struct{})
	got := 0
	go func() {
		defer close(done)
		for got < len(eps)*perSender {
			select {
			case <-eps[0].Recv():
				got++
			case <-time.After(2 * time.Second):
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got != len(eps)*perSender {
		t.Fatalf("received %d of %d", got, len(eps)*perSender)
	}
}
