package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
	"testing/iotest"
)

func wireRoundTrip(t *testing.T, m Message) Message {
	t.Helper()
	enc := appendMessage(nil, m)
	br := bufio.NewReader(bytes.NewReader(enc))
	got, _, err := readWireMessage(br, nil)
	if err != nil {
		t.Fatalf("decode %+v: %v", m, err)
	}
	return got
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []Message{
		{},
		{From: 1, To: 3, Kind: "PREPARE", TxID: "t42"},
		{From: -7, To: 1 << 30, Kind: "K", TxID: "", Body: []byte{0, 1, 2, 0xFF}},
		{Kind: "VOTE-REQ", TxID: "tx-ünïcode-✓", Body: bytes.Repeat([]byte("x"), 4096)},
	}
	for _, m := range msgs {
		got := wireRoundTrip(t, m)
		// nil vs empty body: the wire cannot tell, so normalize.
		if len(got.Body) == 0 {
			got.Body = nil
		}
		if len(m.Body) == 0 {
			m.Body = nil
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
}

// TestWireCoalescedBatchSplitAcrossPartialReads: a coalesced batch written
// as one buffer must decode correctly even when the network delivers it one
// byte at a time — the reader reassembles frames across partial reads.
func TestWireCoalescedBatchSplitAcrossPartialReads(t *testing.T) {
	var buf []byte
	want := make([]Message, 20)
	for i := range want {
		want[i] = Message{From: 1, To: 2, Kind: "ACK", TxID: "t", Body: []byte{byte(i)}}
		buf = appendMessage(buf, want[i])
	}
	br := bufio.NewReader(iotest.OneByteReader(bytes.NewReader(buf)))
	var scratch []byte
	for i := range want {
		var m Message
		var err error
		m, scratch, err = readWireMessage(br, scratch)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, want[i]) {
			t.Fatalf("message %d: got %+v, want %+v", i, m, want[i])
		}
	}
	if _, _, err := readWireMessage(br, scratch); err != io.EOF {
		t.Fatalf("after batch: err = %v, want EOF", err)
	}
}

// TestWireUnknownVersionIsSkippable: a frame from a newer codec version is
// consumed whole and reported as errUnknownVersion, leaving the reader
// positioned at the next frame.
func TestWireUnknownVersionIsSkippable(t *testing.T) {
	unknown := []byte{99, 1, 2, 3} // version 99 payload
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(unknown)))
	buf = append(buf, unknown...)
	good := Message{From: 1, To: 2, Kind: "OK"}
	buf = appendMessage(buf, good)

	br := bufio.NewReader(bytes.NewReader(buf))
	if _, _, err := readWireMessage(br, nil); err != errUnknownVersion {
		t.Fatalf("first frame: err = %v, want errUnknownVersion", err)
	}
	m, _, err := readWireMessage(br, nil)
	if err != nil || m.Kind != "OK" {
		t.Fatalf("second frame: %+v, %v", m, err)
	}
}

// TestWireGarbageErrorsCleanly: truncated and corrupt frames error without
// panicking and without huge allocations.
func TestWireGarbageErrorsCleanly(t *testing.T) {
	cases := [][]byte{
		{},
		{0x05},                         // length 5, no payload
		{0x01, 0x01},                   // version only, missing fields
		{0x03, 0x01, 0x00, 0x00},       // fields truncated mid-message
		{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // length far beyond maxWireFrame
		appendMessage(nil, Message{Kind: "X"})[:2],
	}
	for i, raw := range cases {
		br := bufio.NewReader(bytes.NewReader(raw))
		if _, _, err := readWireMessage(br, nil); err == nil {
			t.Fatalf("case %d: garbage decoded without error", i)
		}
	}
}

// TestWireTrailingJunkRejected: a frame whose payload is longer than its
// fields is corrupt, not silently tolerated.
func TestWireTrailingJunkRejected(t *testing.T) {
	enc := appendMessage(nil, Message{Kind: "K"})
	// Re-frame the same payload with two junk bytes appended.
	payloadLen, n := binary.Uvarint(enc)
	payload := append(enc[n:n+int(payloadLen)], 0xAA, 0xBB)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	br := bufio.NewReader(bytes.NewReader(buf))
	if _, _, err := readWireMessage(br, nil); err != errTruncatedFrame {
		t.Fatalf("err = %v, want errTruncatedFrame", err)
	}
}

func BenchmarkWireEncode(b *testing.B) {
	m := Message{From: 1, To: 3, Kind: "PREPARE", TxID: "tx-000042", Body: bytes.Repeat([]byte("v"), 64)}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendMessage(buf[:0], m)
	}
}

func BenchmarkWireDecode(b *testing.B) {
	m := Message{From: 1, To: 3, Kind: "PREPARE", TxID: "tx-000042", Body: bytes.Repeat([]byte("v"), 64)}
	enc := appendMessage(nil, m)
	r := bytes.NewReader(enc)
	br := bufio.NewReader(r)
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(enc)
		br.Reset(r)
		var err error
		_, scratch, err = readWireMessage(br, scratch)
		if err != nil {
			b.Fatal(err)
		}
	}
}
