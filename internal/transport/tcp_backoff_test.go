package transport

import (
	"net"
	"sync"
	"testing"
	"time"
)

// deadAddr refuses connections: nothing listens on port 1 and the kernel
// never hands it out as an ephemeral port, so — unlike a listened-and-closed
// port — it cannot be recycled into a later ":0" bind mid-test.
const deadAddr = "127.0.0.1:1"

// reservedAddr returns an address that refuses connections right now but can
// be re-listened on later: a port that was briefly listened on and closed.
func reservedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitFor polls cond until it holds or the deadline passes. Sends are now an
// asynchronous enqueue, so drop and dial accounting settles a writer
// goroutine later, not synchronously inside Send.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPDeadPeerDropsAreCountedAndBackedOff: every send to an unreachable
// peer is eventually counted as dropped, and only the first batch dials —
// the rest fall inside the backoff window.
func TestTCPDeadPeerDropsAreCountedAndBackedOff(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", map[int]string{2: deadAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetBackoff(time.Second, time.Second) // wide window: at most one dial below

	for i := 0; i < 5; i++ {
		if err := a.Send(Message{To: 2, Kind: "X"}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, "5 drops", func() bool { return a.Dropped() == 5 })
	if dial, back := a.DroppedCause(DropDial), a.DroppedCause(DropBackoff); dial+back != 5 {
		t.Fatalf("drops dial=%d backoff=%d, want sum 5", dial, back)
	}
	a.mu.Lock()
	b := a.backoff[2]
	a.mu.Unlock()
	if b == nil || b.failures != 1 {
		t.Fatalf("backoff state = %+v, want exactly 1 dial failure", b)
	}
	if got := a.Redials(); got != 1 {
		t.Fatalf("Redials() = %d, want 1", got)
	}
}

// TestTCPBackoffIsBounded: the redial delay doubles per consecutive failure
// but never exceeds the configured maximum, even after enough failures to overflow a
// naive shift.
func TestTCPBackoffIsBounded(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetBackoff(50*time.Millisecond, 200*time.Millisecond)

	a.mu.Lock()
	for i := 0; i < 80; i++ {
		a.noteDialFailure(2)
	}
	b := a.backoff[2]
	a.mu.Unlock()
	if b.failures != 80 {
		t.Fatalf("failures = %d", b.failures)
	}
	if wait := time.Until(b.retryAt); wait > 250*time.Millisecond {
		t.Fatalf("backoff %v exceeds the 200ms bound", wait)
	}
}

// TestTCPBackoffRecovers: a peer that comes back is reachable again once the
// backoff window passes, and delivery clears the backoff state.
func TestTCPBackoffRecovers(t *testing.T) {
	addr := reservedAddr(t)
	a, err := ListenTCP(1, "127.0.0.1:0", map[int]string{2: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetBackoff(50*time.Millisecond, 50*time.Millisecond)

	if err := a.Send(Message{To: 2, Kind: "LOST"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the lost message to be counted", func() bool { return a.Dropped() == 1 })

	b, err := ListenTCP(2, addr, nil)
	if err != nil {
		t.Skipf("could not re-listen on %s: %v", addr, err)
	}
	defer b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := a.Send(Message{To: 2, Kind: "BACK"}); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-b.Recv():
			if m.Kind != "BACK" {
				t.Fatalf("got %v", m)
			}
			a.mu.Lock()
			cleared := a.backoff[2] == nil
			a.mu.Unlock()
			if !cleared {
				t.Fatal("successful dial did not clear backoff state")
			}
			return
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("delivery never resumed")
		}
	}
}

// TestTCPAddPeerClearsBackoff: re-addressing a peer forgets the backoff
// accumulated against the old address.
func TestTCPAddPeerClearsBackoff(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", map[int]string{2: deadAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetBackoff(time.Hour, time.Hour)

	if err := a.Send(Message{To: 2}); err != nil {
		t.Fatal(err)
	}
	// Wait for the dial failure to be recorded before re-addressing, so the
	// hour-long backoff is in place when AddPeer clears it.
	waitFor(t, "the dial failure", func() bool { return a.DroppedCause(DropDial) == 1 })
	b, err := ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	if err := a.Send(Message{To: 2, Kind: "HI"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, b); m.Kind != "HI" {
		t.Fatalf("got %v", m)
	}
}

// TestTCPSetBackoffConcurrentWithSend: backoff bounds may be (re)configured
// while sends are in flight — the old "must be set before first Send" plain
// fields were a data race under exactly this schedule.
func TestTCPSetBackoffConcurrentWithSend(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", map[int]string{2: deadAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			a.SetBackoff(time.Duration(i+1)*time.Millisecond, time.Second)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := a.Send(Message{To: 2, Kind: "X"}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	waitFor(t, "drops against an unreachable peer", func() bool { return a.Dropped() > 0 })
	if a.Redials() == 0 {
		t.Fatal("expected at least one dial attempt to be counted")
	}
}
