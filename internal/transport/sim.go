package transport

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// DelayKind selects the shape of a link's propagation-delay distribution.
type DelayKind int

const (
	// DelayNone delivers instantly — the classic SimNetwork behavior, and
	// the default for every link with no model installed.
	DelayNone DelayKind = iota
	// DelayFixed adds a constant delay to every message.
	DelayFixed
	// DelayUniform draws each delay uniformly from [A, B].
	DelayUniform
	// DelayLognormal draws each delay from a lognormal distribution with
	// median A and log-space standard deviation Sigma — the classic
	// heavy-tailed WAN latency shape.
	DelayLognormal
)

// DelayDist describes a per-message propagation delay. All randomness comes
// from the network's seeded generator, never from wall time, so a fixed seed
// reproduces the exact same delay sequence.
type DelayDist struct {
	Kind  DelayKind
	A     time.Duration // Fixed: the delay. Uniform: min. Lognormal: median.
	B     time.Duration // Uniform: max.
	Sigma float64       // Lognormal: log-space standard deviation.
}

// FixedDelay delivers every message after exactly d.
func FixedDelay(d time.Duration) DelayDist {
	return DelayDist{Kind: DelayFixed, A: d}
}

// UniformDelay draws each delay uniformly from [min, max].
func UniformDelay(min, max time.Duration) DelayDist {
	return DelayDist{Kind: DelayUniform, A: min, B: max}
}

// LognormalDelay draws each delay from a lognormal distribution with the
// given median and log-space standard deviation sigma (0.3–0.5 gives a
// realistic WAN tail).
func LognormalDelay(median time.Duration, sigma float64) DelayDist {
	return DelayDist{Kind: DelayLognormal, A: median, Sigma: sigma}
}

// sample draws one delay. rng must not be nil unless Kind is DelayNone or
// DelayFixed.
func (d DelayDist) sample(rng *rand.Rand) time.Duration {
	switch d.Kind {
	case DelayFixed:
		return d.A
	case DelayUniform:
		if d.B <= d.A {
			return d.A
		}
		return d.A + time.Duration(rng.Int63n(int64(d.B-d.A)+1))
	case DelayLognormal:
		return time.Duration(float64(d.A) * math.Exp(rng.NormFloat64()*d.Sigma))
	}
	return 0
}

// LinkModel is the behavior of one directed link: a delay distribution, an
// i.i.d. loss rate, and a reorder window. The zero value is the perfect
// link: instant, lossless, FIFO.
type LinkModel struct {
	// Delay is drawn once per message at send time.
	Delay DelayDist
	// Loss is the probability in [0,1) that a message is lost on the link
	// (counted under SimDropLoss).
	Loss float64
	// ReorderWindow adds uniform [0, W) jitter to each message's delivery
	// time, so messages on the same link can overtake each other without
	// any bandwidth modelling.
	ReorderWindow time.Duration
}

// SimDropCause classifies why the SimNetwork dropped a message, mirroring
// the TCP transport's transport_dropped_total{cause} split.
type SimDropCause int

const (
	// SimDropLoss: random loss drawn from the link's loss rate.
	SimDropLoss SimDropCause = iota
	// SimDropPartition: the directed link was blocked at send time.
	SimDropPartition
	// SimDropCrash: the destination was down at send time, or the message
	// was purged from the queue when its destination crashed.
	SimDropCrash
	numSimDropCauses
)

// SimDropCauses lists every cause, for metric registration loops.
var SimDropCauses = [numSimDropCauses]SimDropCause{
	SimDropLoss, SimDropPartition, SimDropCrash,
}

func (c SimDropCause) String() string {
	switch c {
	case SimDropLoss:
		return "loss"
	case SimDropPartition:
		return "partition"
	case SimDropCrash:
		return "crash"
	}
	return "unknown"
}

// simMsg is one captured message plus the virtual instant it becomes
// deliverable. A zero due time means "immediately" (no clock installed or a
// zero-delay link).
type simMsg struct {
	m   Message
	due time.Time
}

// SimNetwork is the deterministic message substrate for simulation testing
// (internal/dst). Instead of delivering messages into endpoint inboxes,
// every Send is captured into a single pending queue in send order; a
// scheduler inspects the deliverable ones with Peek/Take and hands each
// message to its destination site explicitly (engine.Site.Deliver), choosing
// the delivery order. That makes every interleaving of a cluster run
// reproducible from a seed.
//
// On top of the capture queue sits an optional hostile network model, all of
// it deterministic:
//
//   - per-link delay distributions (UseClock + SetLink): a message sent at
//     virtual time t with sampled delay d becomes deliverable at t+d, so the
//     scheduler must advance the virtual clock (NextDue) before Take sees it;
//   - per-link i.i.d. loss and reorder windows, driven by the seeded
//     generator (Seed) rather than wall-clock entropy;
//   - asymmetric partitions (BlockOneWay): each direction of a link is cut
//     independently; sends into a cut link are dropped, while messages
//     already in flight are held and flushed — not dropped — when the link
//     heals;
//   - gray sites (SetGray): every link touching the site runs N× slower,
//     while Alive still reports true — slow-but-alive, the failure mode
//     timeout-based detectors misjudge.
//
// SimNetwork also plays the paper's reliable failure reporter: Alive and
// Watch expose exactly the perfect-detector view of its crash state, so a
// SimNetwork can serve directly as a cluster's failure.Detector.
type SimNetwork struct {
	mu       sync.Mutex
	attached map[int]bool
	down     map[int]bool
	reported map[int]bool // crash watchers already notified
	blocked  map[[2]int]bool
	queue    []simMsg
	watchers []func(site int)
	sent     uint64
	drops    [numSimDropCauses]uint64

	now     func() time.Time // nil: no latency modelling, everything instant
	rng     *rand.Rand
	defLink LinkModel
	links   map[[2]int]LinkModel
	gray    map[int]float64
}

// NewSimNetwork returns an empty deterministic network with perfect links.
func NewSimNetwork() *SimNetwork {
	return &SimNetwork{
		attached: map[int]bool{},
		down:     map[int]bool{},
		reported: map[int]bool{},
		blocked:  map[[2]int]bool{},
		links:    map[[2]int]LinkModel{},
		gray:     map[int]float64{},
		rng:      rand.New(rand.NewSource(1)),
	}
}

// UseClock installs the virtual time source used to stamp message delivery
// deadlines. Without a clock every link is instant regardless of its delay
// model. The function must be cheap and is called with the network lock
// held; clock.Virtual's Now qualifies.
func (n *SimNetwork) UseClock(now func() time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now = now
}

// Seed resets the generator behind loss, delay sampling and reorder jitter.
// Same seed + same send sequence = same delivery schedule.
func (n *SimNetwork) Seed(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rng = rand.New(rand.NewSource(seed))
}

// SetDefaultLink installs the model used by every directed link that has no
// specific model.
func (n *SimNetwork) SetDefaultLink(m LinkModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defLink = m
}

// SetLink installs the model for the directed link from -> to.
func (n *SimNetwork) SetLink(from, to int, m LinkModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]int{from, to}] = m
}

// SetLinkBoth installs the same model for both directions between a and b.
func (n *SimNetwork) SetLinkBoth(a, b int, m LinkModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]int{a, b}] = m
	n.links[[2]int{b, a}] = m
}

// SetGray marks a site gray: every message to or from it takes factor times
// its sampled link delay, while Alive keeps reporting true — the site is
// slow, not dead. factor <= 1 clears the gray state.
func (n *SimNetwork) SetGray(id int, factor float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if factor <= 1 {
		delete(n.gray, id)
		return
	}
	n.gray[id] = factor
}

// Endpoint attaches (or re-attaches) site id. Re-attaching after a crash
// models the site restarting: it becomes operational again with no queued
// inbound messages (those were dropped with the crash).
func (n *SimNetwork) Endpoint(id int) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.attached[id] = true
	delete(n.down, id)
	delete(n.reported, id)
	return &simEndpoint{net: n, id: id}
}

// Silence marks a site failed without notifying crash watchers yet: its
// sends stop escaping and nothing more reaches it. A crash-point hook uses
// this mid-transition ("the site is dead as of this WAL append"); the
// scheduler completes the crash with Crash between steps, which is when the
// paper's failure report goes out.
func (n *SimNetwork) Silence(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = true
}

// Crash marks a site failed, discards pending messages addressed to it (its
// inbox dies with it; messages it already sent stay in flight), and notifies
// every crash watcher — the network's reliable failure report. Safe to call
// after Silence; the watchers still fire exactly once per crash.
func (n *SimNetwork) Crash(id int) {
	n.mu.Lock()
	if n.reported[id] {
		n.mu.Unlock()
		return
	}
	n.down[id] = true
	n.reported[id] = true
	kept := n.queue[:0]
	for _, q := range n.queue {
		if q.m.To == id {
			n.drops[SimDropCrash]++
			continue
		}
		kept = append(kept, q)
	}
	n.queue = kept
	watchers := append([]func(int){}, n.watchers...)
	n.mu.Unlock()
	for _, w := range watchers {
		w(id)
	}
}

// Alive reports whether the site is attached and not crashed — the perfect
// failure detector of the paper's model. Gray sites are alive: slowness is
// invisible to the detector, which is the point of modelling them.
func (n *SimNetwork) Alive(id int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attached[id] && !n.down[id]
}

// Watch registers a crash callback, satisfying failure.Detector.
func (n *SimNetwork) Watch(cb func(site int)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.watchers = append(n.watchers, cb)
}

// Block cuts the link between two sites in both directions. New sends across
// it are lost (the senders' retransmissions recover them after Unblock);
// messages already in flight are held and delivered after the heal.
func (n *SimNetwork) Block(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]int{a, b}] = true
	n.blocked[[2]int{b, a}] = true
}

// Unblock restores the link between two sites in both directions, flushing
// (not dropping) any held in-flight messages.
func (n *SimNetwork) Unblock(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]int{a, b})
	delete(n.blocked, [2]int{b, a})
}

// BlockOneWay cuts only the from -> to direction — the asymmetric partition:
// from's messages to to are lost while to's messages to from still deliver.
func (n *SimNetwork) BlockOneWay(from, to int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]int{from, to}] = true
}

// UnblockOneWay restores the from -> to direction.
func (n *SimNetwork) UnblockOneWay(from, to int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]int{from, to})
}

// nowLocked reads the virtual clock, or zero when none is installed.
// Requires n.mu held.
func (n *SimNetwork) nowLocked() time.Time {
	if n.now == nil {
		return time.Time{}
	}
	return n.now()
}

// deliverableLocked reports whether queue entry q can be handed to the
// scheduler now: its due instant has passed and its link is not cut. A held
// message (cut link) stays queued so a heal flushes it. Requires n.mu held.
func (n *SimNetwork) deliverableLocked(q simMsg, now time.Time) bool {
	if n.blocked[[2]int{q.m.From, q.m.To}] {
		return false
	}
	return q.due.IsZero() || !q.due.After(now)
}

// readyLocked returns the queue indices of deliverable messages, in send
// order. Requires n.mu held.
func (n *SimNetwork) readyLocked() []int {
	now := n.nowLocked()
	var idx []int
	for i, q := range n.queue {
		if n.deliverableLocked(q, now) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Pending reports the number of captured messages deliverable right now —
// due instant reached, link open. Messages still "on the wire" (delayed or
// held behind a cut link) are counted by InFlight instead.
func (n *SimNetwork) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.readyLocked())
}

// InFlight reports every captured, undelivered message, deliverable or not.
func (n *SimNetwork) InFlight() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// NextDue returns the earliest future instant at which a currently
// undeliverable message becomes deliverable, so a scheduler knows how far to
// advance the virtual clock. Messages held behind a cut link have no due
// instant (only a heal releases them) and are excluded.
func (n *SimNetwork) NextDue() (time.Time, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var best time.Time
	found := false
	for _, q := range n.queue {
		if q.due.IsZero() || n.blocked[[2]int{q.m.From, q.m.To}] {
			continue
		}
		if !found || q.due.Before(best) {
			best, found = q.due, true
		}
	}
	return best, found
}

// Peek returns the i-th deliverable message without removing it.
func (n *SimNetwork) Peek(i int) (Message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := n.readyLocked()
	if i < 0 || i >= len(idx) {
		return Message{}, false
	}
	return n.queue[idx[i]].m, true
}

// Take removes and returns the i-th deliverable message; the scheduler then
// delivers it (or drops it, if the destination crashed meanwhile).
func (n *SimNetwork) Take(i int) (Message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := n.readyLocked()
	if i < 0 || i >= len(idx) {
		return Message{}, false
	}
	j := idx[i]
	m := n.queue[j].m
	n.queue = append(n.queue[:j], n.queue[j+1:]...)
	return m, true
}

// Stats returns the number of messages captured and dropped (all causes) so
// far.
func (n *SimNetwork) Stats() (sent, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, d := range n.drops {
		dropped += d
	}
	return n.sent, dropped
}

// DroppedCause returns how many messages were dropped for one cause. The
// causes sum to the dropped total reported by Stats.
func (n *SimNetwork) DroppedCause(c SimDropCause) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c < 0 || c >= numSimDropCauses {
		return 0
	}
	return n.drops[c]
}

// linkLocked returns the model of the directed link from -> to. Requires
// n.mu held.
func (n *SimNetwork) linkLocked(from, to int) LinkModel {
	if m, ok := n.links[[2]int{from, to}]; ok {
		return m
	}
	return n.defLink
}

type simEndpoint struct {
	net *SimNetwork
	id  int
}

func (e *simEndpoint) ID() int { return e.id }

// Recv returns nil: deterministic sites never read an inbox — the scheduler
// injects messages via engine.Site.Deliver. A site accidentally run in
// non-deterministic mode over a SimNetwork would wait forever here, which is
// the loud failure mode we want.
func (e *simEndpoint) Recv() <-chan Message { return nil }

func (e *simEndpoint) Send(m Message) error {
	m.From = e.id
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.attached[e.id] || n.down[e.id] {
		return ErrClosed
	}
	if !n.attached[m.To] || n.down[m.To] {
		n.drops[SimDropCrash]++
		return nil // crash-stop: the message is lost, not an error
	}
	if n.blocked[[2]int{e.id, m.To}] {
		n.drops[SimDropPartition]++
		return nil // partitioned: lost on the cut link
	}
	lm := n.linkLocked(e.id, m.To)
	if lm.Loss > 0 && n.rng.Float64() < lm.Loss {
		n.drops[SimDropLoss]++
		return nil
	}
	q := simMsg{m: m}
	if now := n.nowLocked(); !now.IsZero() {
		d := lm.Delay.sample(n.rng)
		if lm.ReorderWindow > 0 {
			d += time.Duration(n.rng.Int63n(int64(lm.ReorderWindow)))
		}
		if f, ok := n.gray[e.id]; ok {
			d = time.Duration(float64(d) * f)
		}
		if f, ok := n.gray[m.To]; ok {
			d = time.Duration(float64(d) * f)
		}
		q.due = now.Add(d)
	}
	n.queue = append(n.queue, q)
	n.sent++
	return nil
}

func (e *simEndpoint) Close() error {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.attached, e.id)
	return nil
}
