package transport

import "sync"

// SimNetwork is the deterministic message substrate for simulation testing
// (internal/dst). Instead of delivering messages into endpoint inboxes,
// every Send is captured into a single pending queue in send order; a
// scheduler inspects the queue with Peek/Take and hands each message to its
// destination site explicitly (engine.Site.Deliver), choosing the delivery
// order. That makes every interleaving of a cluster run reproducible from a
// seed.
//
// SimNetwork also plays the paper's reliable failure reporter: Alive and
// Watch expose exactly the perfect-detector view of its crash state, so a
// SimNetwork can serve directly as a cluster's failure.Detector.
type SimNetwork struct {
	mu       sync.Mutex
	attached map[int]bool
	down     map[int]bool
	reported map[int]bool // crash watchers already notified
	blocked  map[[2]int]bool
	queue    []Message
	watchers []func(site int)
	sent     uint64
	dropped  uint64
}

// NewSimNetwork returns an empty deterministic network.
func NewSimNetwork() *SimNetwork {
	return &SimNetwork{
		attached: map[int]bool{},
		down:     map[int]bool{},
		reported: map[int]bool{},
		blocked:  map[[2]int]bool{},
	}
}

// Endpoint attaches (or re-attaches) site id. Re-attaching after a crash
// models the site restarting: it becomes operational again with no queued
// inbound messages (those were dropped with the crash).
func (n *SimNetwork) Endpoint(id int) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.attached[id] = true
	delete(n.down, id)
	delete(n.reported, id)
	return &simEndpoint{net: n, id: id}
}

// Silence marks a site failed without notifying crash watchers yet: its
// sends stop escaping and nothing more reaches it. A crash-point hook uses
// this mid-transition ("the site is dead as of this WAL append"); the
// scheduler completes the crash with Crash between steps, which is when the
// paper's failure report goes out.
func (n *SimNetwork) Silence(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = true
}

// Crash marks a site failed, discards pending messages addressed to it (its
// inbox dies with it; messages it already sent stay in flight), and notifies
// every crash watcher — the network's reliable failure report. Safe to call
// after Silence; the watchers still fire exactly once per crash.
func (n *SimNetwork) Crash(id int) {
	n.mu.Lock()
	if n.reported[id] {
		n.mu.Unlock()
		return
	}
	n.down[id] = true
	n.reported[id] = true
	kept := n.queue[:0]
	for _, m := range n.queue {
		if m.To == id {
			n.dropped++
			continue
		}
		kept = append(kept, m)
	}
	n.queue = kept
	watchers := append([]func(int){}, n.watchers...)
	n.mu.Unlock()
	for _, w := range watchers {
		w(id)
	}
}

// Alive reports whether the site is attached and not crashed — the perfect
// failure detector of the paper's model.
func (n *SimNetwork) Alive(id int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attached[id] && !n.down[id]
}

// Watch registers a crash callback, satisfying failure.Detector.
func (n *SimNetwork) Watch(cb func(site int)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.watchers = append(n.watchers, cb)
}

// Block cuts the link between two sites in both directions; messages sent
// across it are lost (the senders' retransmissions recover them after
// Unblock).
func (n *SimNetwork) Block(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[link(a, b)] = true
}

// Unblock restores the link between two sites.
func (n *SimNetwork) Unblock(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, link(a, b))
}

// Pending reports the number of captured, undelivered messages.
func (n *SimNetwork) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Peek returns the i-th pending message without removing it.
func (n *SimNetwork) Peek(i int) (Message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if i < 0 || i >= len(n.queue) {
		return Message{}, false
	}
	return n.queue[i], true
}

// Take removes and returns the i-th pending message; the scheduler then
// delivers it (or drops it, if the destination crashed meanwhile).
func (n *SimNetwork) Take(i int) (Message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if i < 0 || i >= len(n.queue) {
		return Message{}, false
	}
	m := n.queue[i]
	n.queue = append(n.queue[:i], n.queue[i+1:]...)
	return m, true
}

// Stats returns the number of messages captured and dropped so far.
func (n *SimNetwork) Stats() (sent, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.dropped
}

type simEndpoint struct {
	net *SimNetwork
	id  int
}

func (e *simEndpoint) ID() int { return e.id }

// Recv returns nil: deterministic sites never read an inbox — the scheduler
// injects messages via engine.Site.Deliver. A site accidentally run in
// non-deterministic mode over a SimNetwork would wait forever here, which is
// the loud failure mode we want.
func (e *simEndpoint) Recv() <-chan Message { return nil }

func (e *simEndpoint) Send(m Message) error {
	m.From = e.id
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.attached[e.id] || n.down[e.id] {
		return ErrClosed
	}
	if !n.attached[m.To] || n.down[m.To] || n.blocked[link(e.id, m.To)] {
		n.dropped++
		return nil // crash-stop: the message is lost, not an error
	}
	n.queue = append(n.queue, m)
	n.sent++
	return nil
}

func (e *simEndpoint) Close() error {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.attached, e.id)
	return nil
}
