// Package transport provides point-to-point message delivery between sites,
// the network substrate assumed by the paper: reliable point-to-point
// communication plus the ability to detect the failure of a site and report
// it to the operational sites.
//
// Two implementations are provided: an in-memory Network with deterministic
// fault injection (crash-stop sites, partitions, drop hooks) used by tests,
// examples and benchmarks, and a TCP transport for real multi-process
// deployments.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Message is one protocol message. Kind is the protocol-level message name
// ("VOTE-REQ", "YES", "PREPARE", ...); Body carries any payload the sender
// wants (typically gob-encoded by the caller).
type Message struct {
	From int
	To   int
	Kind string
	TxID string
	Body []byte
}

// String renders e.g. "PREPARE[1->3 tx=t42]".
func (m Message) String() string {
	return fmt.Sprintf("%s[%d->%d tx=%s]", m.Kind, m.From, m.To, m.TxID)
}

// Endpoint is one site's attachment to the network.
type Endpoint interface {
	// ID returns the site ID this endpoint belongs to.
	ID() int
	// Send delivers m to m.To. The From field is overwritten with the
	// endpoint's ID. Sending to a crashed or partitioned destination is not
	// an error: the message is silently lost, as under crash-stop
	// semantics.
	Send(m Message) error
	// Recv returns the channel on which inbound messages arrive. The
	// channel is closed when the endpoint is closed or its site crashes.
	Recv() <-chan Message
	// Close detaches the endpoint.
	Close() error
}

// ErrClosed is returned when operating on a closed or crashed endpoint.
var ErrClosed = errors.New("transport: endpoint is closed")

// inboxSize bounds each site's unread message queue. Protocol rounds are
// O(sites) messages; 4096 gives ample slack for benchmarks.
const inboxSize = 4096

// Network is an in-memory transport connecting any number of sites, with
// hooks for injecting the failures the paper studies. All methods are safe
// for concurrent use.
type Network struct {
	mu        sync.Mutex
	endpoints map[int]*memEndpoint
	down      map[int]bool
	blocked   map[[2]int]bool
	dropFn    func(Message) bool
	watchers  []func(site int)
	delivered uint64
	dropped   uint64
}

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network {
	return &Network{
		endpoints: map[int]*memEndpoint{},
		down:      map[int]bool{},
		blocked:   map[[2]int]bool{},
	}
}

// Endpoint attaches (or re-attaches) site id to the network. Re-attaching
// after a crash models the site restarting with an empty message queue.
func (n *Network) Endpoint(id int) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old := n.endpoints[id]; old != nil {
		old.closeLocked()
	}
	ep := &memEndpoint{net: n, id: id, inbox: make(chan Message, inboxSize)}
	n.endpoints[id] = ep
	delete(n.down, id)
	return ep
}

// Crash marks a site failed: its endpoint stops receiving, queued messages
// are discarded, and every crash watcher is notified — the paper's "network
// can detect the failure of a site and reliably report it".
func (n *Network) Crash(id int) {
	n.mu.Lock()
	if n.down[id] {
		n.mu.Unlock()
		return
	}
	n.down[id] = true
	if ep := n.endpoints[id]; ep != nil {
		ep.closeLocked()
		delete(n.endpoints, id)
	}
	watchers := append([]func(int){}, n.watchers...)
	n.mu.Unlock()
	for _, w := range watchers {
		w(id)
	}
}

// Alive reports whether the site is operational (attached and not crashed).
func (n *Network) Alive(id int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.endpoints[id] != nil && !n.down[id]
}

// WatchCrashes registers a callback invoked (synchronously, outside the
// network lock) whenever a site crashes.
func (n *Network) WatchCrashes(cb func(site int)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.watchers = append(n.watchers, cb)
}

// Block cuts the link between two sites in both directions (a partition
// fault — outside the paper's model, provided for extension tests).
func (n *Network) Block(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[link(a, b)] = true
}

// Unblock restores the link between two sites.
func (n *Network) Unblock(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, link(a, b))
}

// SetDropFunc installs a hook consulted for every message; returning true
// drops the message. Pass nil to clear.
func (n *Network) SetDropFunc(f func(Message) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropFn = f
}

// Stats returns the number of messages delivered and dropped so far.
func (n *Network) Stats() (delivered, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped
}

func link(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

type memEndpoint struct {
	net    *Network
	id     int
	inbox  chan Message
	closed bool
}

func (e *memEndpoint) ID() int { return e.id }

func (e *memEndpoint) Recv() <-chan Message { return e.inbox }

func (e *memEndpoint) Send(m Message) error {
	m.From = e.id
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed || n.down[e.id] {
		return ErrClosed
	}
	dst := n.endpoints[m.To]
	if dst == nil || n.down[m.To] || n.blocked[link(e.id, m.To)] ||
		(n.dropFn != nil && n.dropFn(m)) {
		n.dropped++
		return nil // crash-stop: the message is lost, not an error
	}
	select {
	case dst.inbox <- m:
		n.delivered++
	default:
		// Inbox overflow: treat as a dropped message rather than blocking
		// the sender while holding the network lock.
		n.dropped++
	}
	return nil
}

func (e *memEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closeLocked()
	if e.net.endpoints[e.id] == e {
		delete(e.net.endpoints, e.id)
	}
	return nil
}

// closeLocked requires n.mu held.
func (e *memEndpoint) closeLocked() {
	if !e.closed {
		e.closed = true
		close(e.inbox)
	}
}
