package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Gauge is an instantaneous integer value, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of counters, gauges and histograms with a
// Prometheus text-format exporter. Instruments are identified by metric name
// plus label key/value pairs; requesting the same (name, labels) series
// twice returns the same instrument, so independent components — or several
// engine sites in one process — can share series without coordinating.
// Registering one name with two different instrument types panics: that is
// a programming error, not an operational condition.
//
// Histograms whose metric name ends in "_seconds" hold time.Duration
// samples and are exported in seconds; any other histogram is exported with
// its raw sample values (e.g. records per batch).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name   string
	typ    string // "counter", "gauge" or "summary"
	help   string
	series map[string]*series // keyed by rendered label string
	order  []string           // label strings in registration order
}

type series struct {
	labels  string // rendered `{k="v",...}`, or "" for no labels
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // value source for *Func instruments
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString renders alternating key/value pairs as a canonical (sorted,
// escaped) Prometheus label block. Panics on an odd-length list.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// lookup returns (creating if needed) the series for (name, labels),
// checking the instrument type. Requires r.mu held.
func (r *Registry) lookup(name, typ string, kv []string) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, typ: typ, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.typ == "" { // placeholder created by Help before registration
		f.typ = typ
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	ls := labelString(kv)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter returns the counter series for name and the given label key/value
// pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// CounterFunc registers a counter series whose value is read from fn at
// export time — for components that maintain their own counters (e.g. a
// transport's drop count). Re-registering the same series replaces fn.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, "counter", labels).fn = fn
}

// Gauge returns the gauge series for name and labels, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is read from fn at export
// time. Re-registering the same series replaces fn, so a component restarted
// under the same identity (e.g. a recovered site) takes over its series.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, "gauge", labels).fn = fn
}

// Histogram returns the histogram series for name and labels, creating it
// on first use. It is exported as a Prometheus summary (quantiles, _sum,
// _count); a name ending in "_seconds" marks the samples as durations.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, "summary", labels)
	if s.hist == nil {
		s.hist = &Histogram{}
	}
	return s.hist
}

// Help attaches a HELP line to a metric name, emitted on export.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, series: map[string]*series{}}
	}
}

// exportQuantiles are the order statistics exported per histogram.
var exportQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if len(f.order) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, ls := range f.order {
			s := f.series[ls]
			switch {
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %g\n", f.name, ls, s.fn())
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.gauge.Value())
			case s.hist != nil:
				writeSummary(&b, f.name, ls, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSummary renders one histogram as a Prometheus summary. Duration
// histograms (name ends in "_seconds") are scaled from nanoseconds.
func writeSummary(b *strings.Builder, name, labels string, h *Histogram) {
	seconds := strings.HasSuffix(name, "_seconds")
	scale := func(d time.Duration) float64 {
		if seconds {
			return d.Seconds()
		}
		return float64(d)
	}
	for _, q := range exportQuantiles {
		fmt.Fprintf(b, "%s%s %g\n", name, withLabel(labels, fmt.Sprintf(`quantile="%g"`, q)), scale(h.Quantile(q)))
	}
	fmt.Fprintf(b, "%s_sum%s %g\n", name, labels, scale(time.Duration(h.Sum())))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

// withLabel merges one extra rendered label into an existing label block.
func withLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
