package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{30, 10, 20, 40, 50} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 30 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1.0); q != 50 {
		t.Fatalf("p100 = %v", q)
	}
	if q := h.Quantile(0.0); q != 10 {
		t.Fatalf("p0 = %v", q)
	}
	if s := h.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestTimer(t *testing.T) {
	var h Histogram
	timer := StartTimer(&h)
	time.Sleep(time.Millisecond)
	timer.Stop()
	if h.Count() != 1 || h.Max() < time.Millisecond {
		t.Fatalf("timer sample = %v", h.Max())
	}
}

// TestQuickQuantileMonotone: quantiles are monotone in q and bounded by
// min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
