package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{30, 10, 20, 40, 50} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 30 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1.0); q != 50 {
		t.Fatalf("p100 = %v", q)
	}
	if q := h.Quantile(0.0); q != 10 {
		t.Fatalf("p0 = %v", q)
	}
	if s := h.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestTimer(t *testing.T) {
	var h Histogram
	timer := StartTimer(&h)
	time.Sleep(time.Millisecond)
	timer.Stop()
	if h.Count() != 1 || h.Max() < time.Millisecond {
		t.Fatalf("timer sample = %v", h.Max())
	}
}

// TestHistogramAccuracy pins the bucketed histogram's error bound against
// exact order statistics over a skewed distribution spanning several
// decades (microseconds to hundreds of milliseconds, like commit
// latencies): every quantile must be within 2% relative error, and the
// histogram must not grow with the number of samples.
func TestHistogramAccuracy(t *testing.T) {
	var h Histogram
	var samples []time.Duration
	// Deterministic LCG so the test cannot flake.
	state := uint64(12345)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < 100000; i++ {
		// Exponential-ish skew: microseconds with a long tail.
		d := time.Duration(1000 + next()%1000*next()%300000)
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(samples)))) - 1
		exact := samples[idx]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.02 {
			t.Errorf("q=%v: got %v, exact %v (rel err %.4f)", q, got, exact, relErr)
		}
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	if got, exact := h.Mean(), sum/time.Duration(len(samples)); got != exact {
		t.Errorf("Mean = %v, exact %v", got, exact)
	}
	if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
		t.Errorf("Min/Max = %v/%v, exact %v/%v", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
	}
	// Bounded memory: the struct size is fixed, independent of sample count.
	if sz := unsafe.Sizeof(h); sz > 64<<10 {
		t.Errorf("histogram is %d bytes; expected a fixed size under 64KiB", sz)
	}
}

// TestQuickQuantileMonotone: quantiles are monotone in q and bounded by
// min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
