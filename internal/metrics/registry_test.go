package metrics

import (
	"strings"
	"testing"
	"time"
)

func export(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestRegistryCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	r.Help("requests_total", "Requests served.")
	c := r.Counter("requests_total", "code", "200")
	c.Inc()
	c.Inc()
	r.Counter("requests_total", "code", "500").Inc()
	g := r.Gauge("queue_depth")
	g.Set(7)

	out := export(t, r)
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{code="200"} 2`,
		`requests_total{code="500"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySameSeriesSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "site", "1")
	b := r.Counter("hits_total", "site", "1")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	// Label order must not matter: the rendered block is sorted by key.
	h1 := r.Histogram("lat_seconds", "phase", "votes", "protocol", "3PC")
	h2 := r.Histogram("lat_seconds", "protocol", "3PC", "phase", "votes")
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
	out := export(t, r)
	if !strings.Contains(out, `lat_seconds{phase="votes",protocol="3PC",quantile="0.5"}`) {
		t.Errorf("labels not sorted by key:\n%s", out)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestRegistryHistogramSecondsScaling(t *testing.T) {
	r := NewRegistry()
	r.Histogram("op_seconds").Observe(1500 * time.Millisecond)
	r.Histogram("batch_records").Observe(time.Duration(4))

	out := export(t, r)
	// _seconds histograms scale ns -> s; others export raw sample values.
	if !strings.Contains(out, "op_seconds_sum 1.5") {
		t.Errorf("duration histogram not scaled to seconds:\n%s", out)
	}
	if !strings.Contains(out, "batch_records_sum 4") {
		t.Errorf("raw histogram scaled unexpectedly:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE op_seconds summary",
		`op_seconds{quantile="0.5"}`,
		`op_seconds{quantile="0.99"}`,
		"op_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := 3.0
	r.GaugeFunc("depth", func() float64 { return n })
	r.CounterFunc("drops_total", func() float64 { return 12 })
	out := export(t, r)
	if !strings.Contains(out, "depth 3") || !strings.Contains(out, "drops_total 12") {
		t.Errorf("func instruments not exported:\n%s", out)
	}
	// Re-registration replaces the reader (a recovered component takes over).
	r.GaugeFunc("depth", func() float64 { return 9 })
	if out := export(t, r); !strings.Contains(out, "depth 9") {
		t.Errorf("GaugeFunc re-registration did not replace reader:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "path", "a\"b\\c\nd").Inc()
	out := export(t, r)
	if !strings.Contains(out, `weird_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}
