// Package metrics provides the counters and latency summaries used by the
// benchmark harness: lock-free counters and sample-based histograms with
// percentile extraction.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram collects duration samples and reports order statistics. Safe
// for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// sortLocked sorts samples in place; requires h.mu held.
func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-th (0..1) order statistic, or 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Min and Max return the extremes, or 0 with no samples.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Summary formats count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Timer measures one operation into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing into h.
func StartTimer(h *Histogram) Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time.
func (t Timer) Stop() { t.h.Observe(time.Since(t.start)) }
