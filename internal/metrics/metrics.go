// Package metrics provides the counters and latency summaries used by the
// benchmark harness: lock-free counters and bounded bucketed histograms
// with percentile extraction.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram bucketing: values below subCount are counted exactly (one
// bucket per nanosecond); above that, log-linear buckets with subCount
// subdivisions per power of two keep the relative quantile error below
// 1/subCount while the whole histogram stays a fixed ~30 KiB regardless of
// how many samples are observed.
const (
	subBits    = 6
	subCount   = 1 << subBits // 64
	numBuckets = (64 - subBits - 1 + 1) * subCount
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	e := uint(bits.Len64(v)) - (subBits + 1) // v>>e lands in [subCount, 2*subCount)
	return int(e)*subCount + int(v>>e)
}

// bucketMid returns a representative value (the range midpoint) for a
// bucket index; exact buckets return their value.
func bucketMid(idx int) uint64 {
	if idx < subCount {
		return uint64(idx)
	}
	e := uint(idx/subCount - 1)
	m := uint64(idx - int(e)*subCount) // in [subCount, 2*subCount)
	lo := m << e
	hi := ((m + 1) << e) - 1
	return lo + (hi-lo)/2
}

// Histogram collects duration samples into fixed-size buckets and reports
// order statistics: memory use is constant, quantiles are exact below 64ns
// and within ~1.6% relative error above, and count/sum/min/max are always
// exact. Safe for concurrent use; the zero value is ready.
type Histogram struct {
	mu       sync.Mutex
	buckets  [numBuckets]int64
	count    int64
	sum      int64
	min, max time.Duration
}

// Observe records one sample. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketOf(uint64(d))]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += int64(d)
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Quantile returns the q-th (0..1) order statistic, or 0 with no samples.
// The result is a bucket representative clamped to the observed [Min, Max].
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for idx, n := range h.buckets {
		cum += n
		if cum >= rank {
			v := time.Duration(bucketMid(idx))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Summary formats count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Timer measures one operation into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing into h.
func StartTimer(h *Histogram) Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time.
func (t Timer) Stop() { t.h.Observe(time.Since(t.start)) }
