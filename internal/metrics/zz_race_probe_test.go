package metrics

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestRegistryExportVsRegisterRace(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3000; i++ {
		r.Counter("seed_total", "l", fmt.Sprint(-i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				_ = r.WritePrometheus(io.Discard)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				r.Counter("seed_total", "l", fmt.Sprintf("%d-%d", g, i))
			}
		}()
	}
	wg.Wait()
}
