// Package clock abstracts the engine's time source so that protocol code
// never touches the wall clock directly. Real deployments use Wall, which
// delegates to package time; deterministic simulation (internal/dst) injects
// a Virtual clock whose timers fire only when the simulation advances it —
// making every timeout-driven code path replayable from a seed.
package clock

import "time"

// Timer is a cancellable pending callback, the subset of *time.Timer the
// engine needs.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Clock supplies the current time and timer scheduling.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// AfterFunc schedules f to run once d has elapsed on this clock.
	AfterFunc(d time.Duration, f func()) Timer
	// After returns a channel that receives the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Wall is the real-time clock backed by package time.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
