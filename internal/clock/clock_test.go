package clock

import (
	"testing"
	"time"
)

func TestWallBasics(t *testing.T) {
	before := time.Now()
	if Wall.Now().Before(before) {
		t.Fatal("wall clock went backwards")
	}
	fired := make(chan struct{})
	tm := Wall.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("wall AfterFunc never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
	select {
	case <-Wall.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("wall After never fired")
	}
}

func TestVirtualStepOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, 3) }) // same deadline: fires after seq-earlier
	start := v.Now()

	if v.Pending() != 3 {
		t.Fatalf("pending = %d", v.Pending())
	}
	dl, ok := v.NextDeadline()
	if !ok || dl != start.Add(10*time.Millisecond) {
		t.Fatalf("next deadline = %v, %v", dl, ok)
	}
	for v.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v", order)
	}
	if got := v.Now().Sub(start); got != 20*time.Millisecond {
		t.Fatalf("clock advanced %v", got)
	}
	if v.Step() {
		t.Fatal("Step with no timers should report false")
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual()
	fired := false
	tm := v.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if v.Step() || fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualAdvanceCascade(t *testing.T) {
	v := NewVirtual()
	var order []string
	v.AfterFunc(10*time.Millisecond, func() {
		order = append(order, "a")
		// Rearmed within the window: must also fire during the same Advance.
		v.AfterFunc(5*time.Millisecond, func() { order = append(order, "b") })
		// Beyond the window: must stay pending.
		v.AfterFunc(time.Hour, func() { order = append(order, "late") })
	})
	v.Advance(20 * time.Millisecond)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if v.Pending() != 1 {
		t.Fatalf("pending = %d", v.Pending())
	}
	start := NewVirtual().Now()
	if got := v.Now().Sub(start); got != 20*time.Millisecond {
		t.Fatalf("advanced %v", got)
	}
}

func TestVirtualAfterChannel(t *testing.T) {
	v := NewVirtual()
	ch := v.After(3 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("virtual After fired before advancing")
	default:
	}
	v.Advance(5 * time.Millisecond)
	select {
	case at := <-ch:
		if at != NewVirtual().Now().Add(3*time.Millisecond) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("virtual After did not fire after advancing")
	}
}
