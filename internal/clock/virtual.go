package clock

import (
	"sync"
	"time"
)

// Virtual is a simulated clock: time stands still until the owner advances
// it, and timers fire in a deterministic order — earliest deadline first,
// ties broken by scheduling order. Callbacks run on the goroutine that
// advances the clock, never concurrently, which is what lets a simulation
// driver interleave timer fires with message deliveries reproducibly.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers []*vtimer // pending, unordered; selection scans for the minimum
}

// NewVirtual returns a virtual clock starting at a fixed epoch, so that two
// simulations from the same seed read identical times.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

type vtimer struct {
	clk     *Virtual
	when    time.Time
	seq     uint64
	f       func()
	stopped bool
}

// Stop implements Timer.
func (t *vtimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc implements Clock. A non-positive duration schedules the callback
// for the current instant; it still fires only on the next Step or Advance.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	t := &vtimer{clk: v, when: v.now.Add(d), seq: v.seq, f: f}
	v.timers = append(v.timers, t)
	return t
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.AfterFunc(d, func() {
		ch <- v.Now()
	})
	return ch
}

// popNext removes and returns the pending timer with the earliest deadline
// (ties: lowest sequence number), or nil if none is pending. Requires v.mu
// held.
func (v *Virtual) popNext() *vtimer {
	best := -1
	for i, t := range v.timers {
		if t.stopped {
			continue
		}
		if best < 0 || t.when.Before(v.timers[best].when) ||
			(t.when.Equal(v.timers[best].when) && t.seq < v.timers[best].seq) {
			best = i
		}
	}
	if best < 0 {
		v.timers = v.timers[:0]
		return nil
	}
	t := v.timers[best]
	v.timers = append(v.timers[:best], v.timers[best+1:]...)
	return t
}

// Pending reports the number of timers still scheduled.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// NextDeadline returns the earliest pending timer deadline.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	var best *vtimer
	for _, t := range v.timers {
		if t.stopped {
			continue
		}
		if best == nil || t.when.Before(best.when) ||
			(t.when.Equal(best.when) && t.seq < best.seq) {
			best = t
		}
	}
	if best == nil {
		return time.Time{}, false
	}
	return best.when, true
}

// Step advances the clock to the earliest pending timer and fires it,
// reporting whether a timer fired. The callback runs with no clock lock
// held, so it may schedule or stop timers.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	t := v.popNext()
	if t == nil {
		v.mu.Unlock()
		return false
	}
	if t.when.After(v.now) {
		v.now = t.when
	}
	v.mu.Unlock()
	t.f()
	return true
}

// Advance moves the clock forward by d, firing every timer that becomes due
// (in deadline order) along the way; timers scheduled by fired callbacks
// fire too if they fall within the window.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	for {
		v.mu.Lock()
		var due *vtimer
		// Peek without removing so timers beyond the window stay pending.
		best := -1
		for i, t := range v.timers {
			if t.stopped || t.when.After(target) {
				continue
			}
			if best < 0 || t.when.Before(v.timers[best].when) ||
				(t.when.Equal(v.timers[best].when) && t.seq < v.timers[best].seq) {
				best = i
			}
		}
		if best >= 0 {
			due = v.timers[best]
			v.timers = append(v.timers[:best], v.timers[best+1:]...)
			if due.when.After(v.now) {
				v.now = due.when
			}
		}
		v.mu.Unlock()
		if due == nil {
			break
		}
		due.f()
	}
	v.mu.Lock()
	if target.After(v.now) {
		v.now = target
	}
	v.mu.Unlock()
}
