package clock

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fireLog collects wheel expiries for assertions.
type fireLog struct {
	mu    sync.Mutex
	fired []string
}

func (l *fireLog) fn(key string, gen uint64) {
	l.mu.Lock()
	l.fired = append(l.fired, fmt.Sprintf("%s/%d", key, gen))
	l.mu.Unlock()
}

func (l *fireLog) got() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.fired...)
}

func TestWheelFiresAtExactDeadline(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	w.Schedule(25*time.Millisecond, "a", 1)
	clk.Advance(24 * time.Millisecond)
	if got := log.got(); len(got) != 0 {
		t.Fatalf("fired early: %v", got)
	}
	clk.Advance(time.Millisecond)
	if got := log.got(); len(got) != 1 || got[0] != "a/1" {
		t.Fatalf("want [a/1], got %v", got)
	}
	if n := w.Len(); n != 0 {
		t.Fatalf("Len after fire = %d, want 0", n)
	}
}

func TestWheelStopCancels(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	h := w.Schedule(30*time.Millisecond, "a", 1)
	if !h.Armed() {
		t.Fatal("freshly scheduled timer not armed")
	}
	if !h.Stop() {
		t.Fatal("Stop of pending timer returned false")
	}
	if h.Armed() {
		t.Fatal("stopped timer still armed")
	}
	if h.Stop() {
		t.Fatal("second Stop returned true")
	}
	clk.Advance(time.Second)
	if got := log.got(); len(got) != 0 {
		t.Fatalf("cancelled timer fired: %v", got)
	}
}

// A handle from a previous arm must not cancel a node that was recycled into
// a new timer (the epoch check).
func TestWheelStaleHandleEpoch(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	old := w.Schedule(10*time.Millisecond, "a", 1)
	old.Stop() // node recycled
	// The freelist reuses the node for the next Schedule.
	w.Schedule(20*time.Millisecond, "b", 7)
	if old.Stop() {
		t.Fatal("stale handle cancelled a recycled node")
	}
	if old.Armed() {
		t.Fatal("stale handle reports armed")
	}
	clk.Advance(time.Second)
	if got := log.got(); len(got) != 1 || got[0] != "b/7" {
		t.Fatalf("want [b/7], got %v", got)
	}
}

func TestWheelRearmKeepsLatestGeneration(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	h := w.Schedule(50*time.Millisecond, "tx", 1)
	h.Stop()
	w.Schedule(20*time.Millisecond, "tx", 2)
	clk.Advance(time.Second)
	if got := log.got(); len(got) != 1 || got[0] != "tx/2" {
		t.Fatalf("want [tx/2], got %v", got)
	}
}

func TestWheelSameDeadlineFiresInArmOrder(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	for i := 0; i < 5; i++ {
		w.Schedule(30*time.Millisecond, fmt.Sprintf("k%d", i), 1)
	}
	clk.Advance(30 * time.Millisecond)
	want := []string{"k0/1", "k1/1", "k2/1", "k3/1", "k4/1"}
	got := log.got()
	if len(got) != len(want) {
		t.Fatalf("want %v, got %v", want, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("want %v, got %v", want, got)
		}
	}
}

// Deadlines far beyond level 0 must cascade down and still fire exactly.
func TestWheelCascade(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, time.Millisecond, log.fn)

	// Level 1 (64..4095 ticks), level 2 (4096..262143 ticks), overflow.
	durations := []time.Duration{
		100 * time.Millisecond,
		5 * time.Second,
		300 * time.Second,
		time.Duration(wheelSpan+10) * time.Millisecond, // overflow list
	}
	for i, d := range durations {
		w.Schedule(d, fmt.Sprintf("d%d", i), uint64(i))
	}
	if n := w.Len(); n != len(durations) {
		t.Fatalf("Len = %d, want %d", n, len(durations))
	}
	start := clk.Now()
	for i, d := range durations {
		key := fmt.Sprintf("d%d/%d", i, i)
		clk.Advance(start.Add(d - time.Millisecond).Sub(clk.Now()))
		for _, f := range log.got() {
			if f == key {
				t.Fatalf("%s fired before its deadline", key)
			}
		}
		clk.Advance(time.Millisecond)
		found := false
		for _, f := range log.got() {
			if f == key {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s did not fire at its deadline (fired: %v)", key, log.got())
		}
	}
	if n := w.Len(); n != 0 {
		t.Fatalf("Len after all fires = %d, want 0", n)
	}
}

func TestWheelStopWheel(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	w.Schedule(20*time.Millisecond, "a", 1)
	w.Stop()
	if h := w.Schedule(10*time.Millisecond, "b", 1); h.Armed() {
		t.Fatal("Schedule on a stopped wheel returned an armed handle")
	}
	clk.Advance(time.Second)
	if got := log.got(); len(got) != 0 {
		t.Fatalf("stopped wheel fired: %v", got)
	}
	if clk.Pending() != 0 {
		t.Fatalf("stopped wheel left %d virtual timers pending", clk.Pending())
	}
}

func TestWheelZeroDelayFiresOnNextAdvance(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	w.Schedule(0, "now", 3)
	clk.Step()
	if got := log.got(); len(got) != 1 || got[0] != "now/3" {
		t.Fatalf("want [now/3], got %v", got)
	}
}

// Re-arming with an earlier deadline after a later one must move the
// underlying timer up, not wait for the later fire.
func TestWheelEarlierDeadlinePreempts(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	w.Schedule(500*time.Millisecond, "late", 1)
	w.Schedule(50*time.Millisecond, "early", 1)
	clk.Advance(50 * time.Millisecond)
	if got := log.got(); len(got) != 1 || got[0] != "early/1" {
		t.Fatalf("want [early/1] at 50ms, got %v", got)
	}
	clk.Advance(450 * time.Millisecond)
	if got := log.got(); len(got) != 2 || got[1] != "late/1" {
		t.Fatalf("want late/1 second, got %v", got)
	}
}

func TestWheelManyTimersOneUnderlying(t *testing.T) {
	clk := NewVirtual()
	var log fireLog
	w := NewWheel(clk, 10*time.Millisecond, log.fn)

	for i := 0; i < 1000; i++ {
		w.Schedule(time.Duration(i%97+1)*time.Millisecond, fmt.Sprintf("t%d", i), 1)
	}
	// The whole point of the wheel: one virtual timer regardless of load.
	if p := clk.Pending(); p != 1 {
		t.Fatalf("underlying timers = %d, want 1", p)
	}
	clk.Advance(100 * time.Millisecond)
	if got := log.got(); len(got) != 1000 {
		t.Fatalf("fired %d of 1000", len(got))
	}
}

func TestWheelWallClock(t *testing.T) {
	var log fireLog
	var wg sync.WaitGroup
	wg.Add(1)
	w := NewWheel(Wall, time.Millisecond, func(key string, gen uint64) {
		log.fn(key, gen)
		wg.Done()
	})
	defer w.Stop()
	w.Schedule(5*time.Millisecond, "real", 9)
	wg.Wait()
	if got := log.got(); len(got) != 1 || got[0] != "real/9" {
		t.Fatalf("want [real/9], got %v", got)
	}
}
