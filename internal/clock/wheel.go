package clock

import (
	"sync"
	"time"
)

// Wheel is a hierarchical (hashed) timer wheel driven by an injected Clock.
// It multiplexes any number of keyed timers onto a single underlying clock
// timer: arming and cancelling are O(1) bucket operations, and the wheel
// re-arms its one clock timer for the earliest pending deadline. Because the
// only time source is the injected Clock, a wheel over a Virtual clock fires
// deterministically when the simulation advances — the property the DST
// harness depends on.
//
// Timers fire at their exact deadline, never early: the tick size only
// controls bucketing granularity (slot cascading), not firing precision.
// Every fire is delivered to the single WheelFunc given at construction with
// the key and generation it was armed with; the generation is how owners
// reject stale fires that were already in flight when the timer was re-armed
// or cancelled (node handles are pooled, so a Stop racing a fire is resolved
// by an epoch check inside the wheel, and a fire racing a re-arm is resolved
// by the owner's generation check).
type Wheel struct {
	clk  Clock
	tick time.Duration
	fire WheelFunc

	mu      sync.Mutex
	base    time.Time // tick 0 origin
	asOf    time.Time // exact instant the wheel has advanced through
	cur     int64     // tick containing asOf
	slots   [wheelLevels][wheelSlots]wheelSlot
	over    wheelSlot // deadlines beyond the wheel's span
	count   int
	free    *wheelNode // recycled nodes (bounded)
	freeN   int
	armed   Timer     // underlying clock timer, nil when idle
	armedAt time.Time // deadline the underlying timer is armed for
	stopped bool
}

// WheelFunc receives the key and generation of every fired timer.
type WheelFunc func(key string, gen uint64)

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelLevels = 4              // spans 64^4 ≈ 16.7M ticks
	wheelSpan   = 1 << (wheelBits * wheelLevels)
	maxFreeList = 1024
)

type wheelSlot struct {
	head, tail *wheelNode
}

type wheelNode struct {
	w          *Wheel
	key        string
	gen        uint64
	when       time.Time
	epoch      uint64 // bumped on every recycle; stale handles are rejected
	level      int8   // -1 when unlinked, wheelLevels for the overflow list
	slot       int16
	prev, next *wheelNode
}

// WheelTimer is a handle to one armed wheel entry. The zero value is inert.
// Handles stay valid after the entry fires or is cancelled: Stop and Armed
// simply report false once the underlying node has moved on.
type WheelTimer struct {
	node  *wheelNode
	epoch uint64
}

// Stop cancels the timer, reporting whether it was still pending. Stopping
// does not guarantee an already-collected fire will not be delivered — owners
// using generations (see Wheel doc) reject that delivery.
func (t WheelTimer) Stop() bool {
	if t.node == nil {
		return false
	}
	return t.node.w.cancel(t.node, t.epoch)
}

// Armed reports whether the timer is still pending.
func (t WheelTimer) Armed() bool {
	if t.node == nil {
		return false
	}
	w := t.node.w
	w.mu.Lock()
	defer w.mu.Unlock()
	return t.node.epoch == t.epoch && t.node.level >= 0
}

// NewWheel builds a wheel over clk with the given bucketing granularity
// (clamped to at least 1ms); fire receives every expiry. The wheel starts
// idle: no underlying clock timer exists until a timer is scheduled.
func NewWheel(clk Clock, tick time.Duration, fire WheelFunc) *Wheel {
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	now := clk.Now()
	return &Wheel{clk: clk, tick: tick, fire: fire, base: now, asOf: now}
}

// Schedule arms a timer for d from now carrying (key, gen). A non-positive d
// fires at the next underlying clock fire (immediately on a wall clock, on
// the next advance of a virtual one).
func (w *Wheel) Schedule(d time.Duration, key string, gen uint64) WheelTimer {
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return WheelTimer{}
	}
	n := w.alloc()
	n.key, n.gen = key, gen
	n.when = w.clk.Now().Add(d)
	w.place(n)
	w.count++
	h := WheelTimer{node: n, epoch: n.epoch}
	// Only re-arm when this deadline beats the armed one; later deadlines
	// are discovered when the armed timer fires.
	if w.armed == nil || n.when.Before(w.armedAt) {
		w.rearmLocked(n.when)
	}
	w.mu.Unlock()
	return h
}

// Len reports the number of pending timers.
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Stop shuts the wheel down: pending timers never fire and further Schedule
// calls return inert handles.
func (w *Wheel) Stop() {
	w.mu.Lock()
	w.stopped = true
	if w.armed != nil {
		w.armed.Stop()
		w.armed = nil
	}
	w.mu.Unlock()
}

// tickOf maps an instant to its tick index (floor).
func (w *Wheel) tickOf(tm time.Time) int64 {
	return int64(tm.Sub(w.base) / w.tick)
}

// place links n into the slot its deadline hashes to, relative to the
// current cursor. Requires w.mu held.
func (w *Wheel) place(n *wheelNode) {
	idx := w.tickOf(n.when)
	delta := idx - w.cur
	if delta >= wheelSpan {
		n.level, n.slot = wheelLevels, 0
		w.over.push(n)
		return
	}
	if delta < 0 {
		idx = w.cur // already due: current slot, fired on the next advance
	}
	level := 0
	for delta >= wheelSlots {
		delta >>= wheelBits
		level++
	}
	slot := int16((idx >> (wheelBits * level)) & (wheelSlots - 1))
	n.level, n.slot = int8(level), slot
	w.slots[level][slot].push(n)
}

func (s *wheelSlot) push(n *wheelNode) {
	n.prev, n.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = n
	} else {
		s.head = n
	}
	s.tail = n
}

func (s *wheelSlot) unlink(n *wheelNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (w *Wheel) alloc() *wheelNode {
	if n := w.free; n != nil {
		w.free = n.next
		w.freeN--
		n.next = nil
		return n
	}
	return &wheelNode{w: w}
}

// recycle invalidates every outstanding handle to n and returns it to the
// free list. Requires w.mu held and n unlinked.
func (w *Wheel) recycle(n *wheelNode) {
	n.epoch++
	n.level = -1
	n.key = ""
	if w.freeN >= maxFreeList {
		return
	}
	n.next = w.free
	w.free = n
	w.freeN++
}

// cancel removes a pending node if the handle is still current.
func (w *Wheel) cancel(n *wheelNode, epoch uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n.epoch != epoch || n.level < 0 {
		return false
	}
	if n.level >= wheelLevels {
		w.over.unlink(n)
	} else {
		w.slots[n.level][n.slot].unlink(n)
	}
	w.count--
	w.recycle(n)
	return true
}

// firedEntry is one expiry collected under the lock and delivered outside it.
type firedEntry struct {
	key string
	gen uint64
}

// onTick is the underlying clock timer's callback: advance the wheel to now,
// deliver every due expiry, and re-arm for the next deadline.
func (w *Wheel) onTick() {
	var stack [16]firedEntry
	fired := stack[:0]
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.armed = nil
	fired = w.advance(w.clk.Now(), fired)
	if next, ok := w.nextDeadlineLocked(); ok {
		w.rearmLocked(next)
	}
	w.mu.Unlock()
	for _, f := range fired {
		w.fire(f.key, f.gen)
	}
}

// rearmLocked points the underlying clock timer at deadline. Requires w.mu
// held.
func (w *Wheel) rearmLocked(deadline time.Time) {
	if w.armed != nil {
		w.armed.Stop()
	}
	w.armedAt = deadline
	w.armed = w.clk.AfterFunc(deadline.Sub(w.clk.Now()), w.onTick)
}

// advance walks the cursor to now, cascading higher levels at their window
// boundaries and collecting every node whose exact deadline has passed.
// Requires w.mu held.
func (w *Wheel) advance(now time.Time, fired []firedEntry) []firedEntry {
	if now.Before(w.asOf) {
		return fired
	}
	if w.count == 0 {
		// Fast-forward an empty wheel: nothing to cascade or fire.
		w.cur = w.tickOf(now)
		w.asOf = now
		return fired
	}
	target := w.tickOf(now)
	for {
		fired = w.expire(&w.slots[0][w.cur&(wheelSlots-1)], now, fired)
		if w.cur >= target {
			break
		}
		w.cur++
		if w.cur&(wheelSlots-1) == 0 {
			w.cascade()
		}
	}
	w.asOf = now
	return fired
}

// expire collects the nodes of one slot whose deadline is at or before now.
// Requires w.mu held.
func (w *Wheel) expire(s *wheelSlot, now time.Time, fired []firedEntry) []firedEntry {
	n := s.head
	for n != nil {
		next := n.next
		if !n.when.After(now) {
			s.unlink(n)
			w.count--
			fired = append(fired, firedEntry{key: n.key, gen: n.gen})
			w.recycle(n)
		}
		n = next
	}
	return fired
}

// cascade re-files the nodes of every higher-level slot whose window the
// cursor just entered, highest level first so entries sift down one level at
// a time. Requires w.mu held, with w.cur a multiple of wheelSlots.
func (w *Wheel) cascade() {
	top := 1
	for l := 2; l <= wheelLevels; l++ {
		if w.cur&((1<<(wheelBits*l))-1) == 0 {
			top = l
		}
	}
	for l := top; l >= 1; l-- {
		var s *wheelSlot
		if l == wheelLevels {
			s = &w.over
		} else {
			s = &w.slots[l][(w.cur>>(wheelBits*l))&(wheelSlots-1)]
		}
		n := s.head
		s.head, s.tail = nil, nil
		for n != nil {
			next := n.next
			n.prev, n.next = nil, nil
			w.place(n)
			n = next
		}
	}
}

// nextDeadlineLocked finds the earliest pending deadline: the exact minimum
// within the first non-empty slot at each level (later slots at the same
// level can only hold later deadlines). Requires w.mu held.
func (w *Wheel) nextDeadlineLocked() (time.Time, bool) {
	if w.count == 0 {
		return time.Time{}, false
	}
	var best time.Time
	for l := 0; l < wheelLevels; l++ {
		pos := w.cur >> (wheelBits * l)
		for i := int64(0); i < wheelSlots; i++ {
			s := &w.slots[l][(pos+i)&(wheelSlots-1)]
			if s.head == nil {
				continue
			}
			for n := s.head; n != nil; n = n.next {
				if best.IsZero() || n.when.Before(best) {
					best = n.when
				}
			}
			break
		}
	}
	for n := w.over.head; n != nil; n = n.next {
		if best.IsZero() || n.when.Before(best) {
			best = n.when
		}
	}
	return best, !best.IsZero()
}
