package sim

import "math/rand"

// BlockingStats summarizes a failure sweep.
type BlockingStats struct {
	Trials         int
	Blocked        int     // trials in which some operational site blocked
	Inconsistent   int     // trials violating atomicity (must be 0)
	Committed      int     // trials in which the decided outcome was commit
	Aborted        int     // trials in which the decided outcome was abort
	Undecided      int     // trials in which no operational site decided
	BlockedFrac    float64 // Blocked / Trials
	MeanDone       Time    // mean completion time over decided trials
	TotalMessages  int
	MeanMessages   float64
	MaxMessagesOne int
}

// CoordinatorCrashSweep runs `trials` transactions, each with the
// coordinator (site 1) crashing at a time drawn uniformly from [0, window],
// and reports how often the operational sites blocked. This is the paper's
// central claim made quantitative: under 2PC the fraction is positive and
// substantial; under 3PC it is exactly zero.
func CoordinatorCrashSweep(proto Protocol, n, trials int, seed int64, window Time) BlockingStats {
	rng := rand.New(rand.NewSource(seed))
	var out BlockingStats
	out.Trials = trials
	var doneSum Time
	doneCount := 0
	for i := 0; i < trials; i++ {
		crashAt := Time(rng.Int63n(int64(window) + 1))
		res := RunTransaction(Config{
			N:            n,
			Protocol:     proto,
			Seed:         rng.Int63(),
			VoteDelayMin: 200 * Microsecond,
			VoteDelayMax: 1 * Millisecond,
			CrashAt:      map[int]Time{1: crashAt},
		})
		out.merge(res, &doneSum, &doneCount)
	}
	out.finish(doneSum, doneCount)
	return out
}

// RandomCrashSweep crashes k distinct random sites at times drawn uniformly
// from [0, window] in each trial; used for the availability experiment
// ("operational sites continue transaction processing even though site
// failures have occurred").
func RandomCrashSweep(proto Protocol, n, k, trials int, seed int64, window Time) BlockingStats {
	rng := rand.New(rand.NewSource(seed))
	var out BlockingStats
	out.Trials = trials
	var doneSum Time
	doneCount := 0
	for i := 0; i < trials; i++ {
		crash := map[int]Time{}
		perm := rng.Perm(n)
		for j := 0; j < k && j < n; j++ {
			crash[perm[j]+1] = Time(rng.Int63n(int64(window) + 1))
		}
		res := RunTransaction(Config{
			N:            n,
			Protocol:     proto,
			Seed:         rng.Int63(),
			VoteDelayMin: 200 * Microsecond,
			VoteDelayMax: 1 * Millisecond,
			CrashAt:      crash,
		})
		out.merge(res, &doneSum, &doneCount)
	}
	out.finish(doneSum, doneCount)
	return out
}

func (s *BlockingStats) merge(res Result, doneSum *Time, doneCount *int) {
	if res.Blocked {
		s.Blocked++
	}
	if !res.Consistent {
		s.Inconsistent++
	}
	switch {
	case res.Committed:
		s.Committed++
	case res.Aborted:
		s.Aborted++
	default:
		s.Undecided++
	}
	s.TotalMessages += res.Messages
	if res.Messages > s.MaxMessagesOne {
		s.MaxMessagesOne = res.Messages
	}
	if res.Done > 0 {
		*doneSum += res.Done
		*doneCount++
	}
}

func (s *BlockingStats) finish(doneSum Time, doneCount int) {
	if s.Trials > 0 {
		s.BlockedFrac = float64(s.Blocked) / float64(s.Trials)
		s.MeanMessages = float64(s.TotalMessages) / float64(s.Trials)
	}
	if doneCount > 0 {
		s.MeanDone = doneSum / Time(doneCount)
	}
}

// FailureFree runs one transaction with no crashes and all YES votes,
// reporting its message count and completion time — the message-complexity
// and latency experiments.
func FailureFree(proto Protocol, n int, seed int64) Result {
	return RunTransaction(Config{N: n, Protocol: proto, Seed: seed})
}

// MessageComplexity returns the failure-free message count for each n in
// ns. Expected shapes: central 2PC ≈ 4(n-1) with the XACT round counted
// (vote-req, vote, decision), central 3PC ≈ 6(n-1); decentralized 2PC
// ≈ n(n-1), decentralized 3PC ≈ 2n(n-1) — the transaction distribution is
// not counted in the decentralized model, per the paper.
func MessageComplexity(proto Protocol, ns []int, seed int64) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = FailureFree(proto, n, seed+int64(i)).Messages
	}
	return out
}

// CommitLatency reports the mean failure-free completion time over trials.
func CommitLatency(proto Protocol, n, trials int, seed int64) Time {
	var sum Time
	for i := 0; i < trials; i++ {
		res := FailureFree(proto, n, seed+int64(i))
		sum += res.Done
	}
	return sum / Time(trials)
}
