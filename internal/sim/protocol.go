package sim

import "sort"

// Protocol selects which commit protocol a simulated transaction runs.
type Protocol int

const (
	// Central2PC is the central-site two-phase commit (slide 15).
	Central2PC Protocol = iota
	// Central3PC is the central-site three-phase commit (slide 35).
	Central3PC
	// Decentral2PC is the fully decentralized two-phase commit (slide 26).
	Decentral2PC
	// Decentral3PC is the fully decentralized three-phase commit (slide 36).
	Decentral3PC
	// Quorum3PC is the quorum-based extension (in the spirit of the paper's
	// [SKEE81a] reference): central-site 3PC whose termination protocol
	// requires a majority quorum to commit or abort, restoring safety under
	// network partitions at the price of blocking minority groups.
	Quorum3PC
	// Linear2PC chains the sites (extension beyond the paper's paradigms):
	// the vote wave travels rightward, the decision leftward. Cheapest in
	// messages, worst in latency; implemented failure-free for the cost
	// experiments.
	Linear2PC
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Central2PC:
		return "central-2PC"
	case Central3PC:
		return "central-3PC"
	case Decentral2PC:
		return "decentralized-2PC"
	case Decentral3PC:
		return "decentralized-3PC"
	case Quorum3PC:
		return "quorum-3PC"
	case Linear2PC:
		return "linear-2PC"
	default:
		return "unknown"
	}
}

// Central reports whether the protocol uses a coordinator.
func (p Protocol) Central() bool {
	return p == Central2PC || p == Central3PC || p == Quorum3PC
}

// ThreePhase reports whether the protocol has the buffer state.
func (p Protocol) ThreePhase() bool {
	return p == Central3PC || p == Decentral3PC || p == Quorum3PC
}

// Message kinds (the central ones mirror the engine's wire protocol).
const (
	kXact      = "XACT"
	kYes       = "YES"
	kNo        = "NO"
	kPrepare   = "PREPARE"
	kAck       = "ACK"
	kCommit    = "COMMIT"
	kAbort     = "ABORT"
	kNudge     = "NUDGE"      // tell the elected backup to act
	kTermState = "TERM-STATE" // backup phase 1
	kTermAck   = "TERM-ACK"
	kStatusReq = "STATUS-REQ" // cooperative termination query
	kStatusRes = "STATUS-RES"
)

// Config parameterizes one simulated transaction.
type Config struct {
	N        int      // number of sites (site 1 coordinates central protocols)
	Protocol Protocol // which commit protocol to run
	Seed     int64    // RNG seed (message latencies)

	// LatencyMin/Max bound per-message delivery time. Defaults 1–2ms.
	LatencyMin, LatencyMax Time
	// DetectDelay is how long after a crash survivors are notified.
	// Default 5ms.
	DetectDelay Time
	// Stagger is the serialization delay between the individual messages of
	// one round — a crash mid-round transmits only a prefix, the paper's
	// partially-completed state transition. Default 20us.
	Stagger Time
	// VoteDelayMin/Max model the local work (lock validation, forcing the
	// vote record to the log) between receiving the transaction and voting.
	// A site that crashes inside this window has voted nothing — the source
	// of real uncertainty windows. Default 0 (vote immediately).
	VoteDelayMin, VoteDelayMax Time

	// CrashAt schedules site failures (virtual time). Sites crash at most
	// once.
	CrashAt map[int]Time
	// RepairAt schedules repairs: the site rejoins with its durable state
	// (the phase it crashed in) and runs the recovery protocol — a repaired
	// coordinator re-broadcasts its decision or aborts an undecided
	// transaction, releasing blocked 2PC participants.
	RepairAt map[int]Time
	// VoteNo marks sites that unilaterally abort.
	VoteNo map[int]bool
	// SkipBackupPhase1 is the A1 ablation: the backup coordinator skips
	// phase 1 of the backup protocol (no synchronizing round) and sends its
	// decision immediately. Unsafe when the backup itself then crashes.
	SkipBackupPhase1 bool
	// PartitionAt, when nonzero, splits the network into PartitionGroups at
	// that virtual time — stepping outside the paper's "network never
	// fails" assumption to study its necessity (and the quorum fix).
	PartitionAt     Time
	PartitionGroups [][]int
	// Quorum is the commit/abort quorum for Quorum3PC; zero means a strict
	// majority of the total weight.
	Quorum int
	// Weights assigns per-site vote weights for Quorum3PC (default 1 each).
	// Skeen's quorum protocol supports weighted votes, e.g. to let one
	// well-provisioned site carry a partition by itself.
	Weights map[int]int
	// Horizon bounds the simulation. Default 10 virtual seconds.
	Horizon Time
}

// SiteOutcome is a site's fate in the simulation.
type SiteOutcome struct {
	Phase     byte // final local state letter: q/w/p/c/a
	Crashed   bool
	Blocked   bool // alive but unable to terminate (2PC uncertainty)
	DecidedAt Time // virtual time of local commit/abort; 0 if none
}

// Result summarizes one simulated transaction.
type Result struct {
	Sites map[int]SiteOutcome
	// Blocked reports whether any operational site ended blocked.
	Blocked bool
	// Consistent is false if any two sites (crashed ones included — they
	// hold their decision on stable storage) decided differently.
	Consistent bool
	// Committed/Aborted report the decision reached by decided sites.
	Committed bool
	Aborted   bool
	// Messages is the total network messages sent; ByKind breaks them down.
	Messages int
	ByKind   map[string]int
	// Done is the virtual time when the last operational site decided
	// (0 when some operational site never decided).
	Done Time
}

type site struct {
	r       *runner
	id      int
	phase   byte
	crashed bool
	blocked bool
	decided Time

	voted     bool
	responses map[int]byte // central coordinator: votes; decentralized: votes
	prepares  map[int]bool // decentralized 3PC: prepare round
	acks      map[int]bool
	ownNo     bool

	terminating bool
	termAcks    map[int]bool
	statuses    map[int]byte
	queried     bool

	qStates map[int]byte // quorum termination: gathered group states
	qTarget byte         // quorum termination: 'p' (commit) or 'b' (abort)
}

type runner struct {
	cfg        Config
	sim        *Sim
	net        *Net
	sites      map[int]*site
	anyCrashed bool
}

// RunTransaction simulates one distributed transaction under the given
// configuration and returns its fate.
func RunTransaction(cfg Config) Result {
	if cfg.LatencyMax == 0 {
		cfg.LatencyMin, cfg.LatencyMax = 1*Millisecond, 2*Millisecond
	}
	if cfg.DetectDelay == 0 {
		cfg.DetectDelay = 5 * Millisecond
	}
	if cfg.Stagger == 0 {
		cfg.Stagger = 20 * Microsecond
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 10 * Second
	}
	s := New(cfg.Seed)
	r := &runner{
		cfg:   cfg,
		sim:   s,
		net:   NewNet(s, cfg.LatencyMin, cfg.LatencyMax, cfg.DetectDelay),
		sites: map[int]*site{},
	}
	for i := 1; i <= cfg.N; i++ {
		i := i
		st := &site{r: r, id: i, phase: 'q'}
		r.sites[i] = st
		r.net.Handle(i, st.onMsg)
	}
	r.net.WatchSuspicions(func(observer, suspect int) {
		if st := r.sites[observer]; st != nil && !st.crashed {
			st.onSuspect(suspect)
		}
	})
	for id, at := range cfg.CrashAt {
		id, at := id, at
		s.At(at, func() {
			r.anyCrashed = true
			r.sites[id].crashed = true
			r.net.Crash(id)
		})
	}
	for id, at := range cfg.RepairAt {
		id, at := id, at
		s.At(at, func() {
			st := r.sites[id]
			if !st.crashed {
				return
			}
			st.crashed = false
			r.net.Repair(id)
			st.onRepair()
		})
	}
	if cfg.PartitionAt > 0 {
		s.At(cfg.PartitionAt, func() {
			r.anyCrashed = true // decisions must be broadcast from now on
			r.net.Partition(cfg.PartitionGroups...)
		})
	}

	// Kick off the transaction.
	if cfg.Protocol == Linear2PC {
		s.At(0, r.sites[1].startLinear)
	} else if cfg.Protocol.Central() {
		s.At(0, r.sites[1].startCoordinator)
	} else {
		for i := 1; i <= cfg.N; i++ {
			s.At(0, r.sites[i].startPeer)
		}
	}
	s.RunUntil(cfg.Horizon)

	return r.result()
}

func (r *runner) result() Result {
	res := Result{
		Sites:      map[int]SiteOutcome{},
		Consistent: true,
		ByKind:     r.net.ByKind,
		Messages:   r.net.Sent,
	}
	allDecided := true
	for id, st := range r.sites {
		res.Sites[id] = SiteOutcome{
			Phase: st.phase, Crashed: st.crashed, Blocked: st.blocked, DecidedAt: st.decided,
		}
		switch st.phase {
		case 'c':
			res.Committed = true
		case 'a':
			res.Aborted = true
		}
		if !st.crashed {
			if st.blocked {
				res.Blocked = true
			}
			if st.decided == 0 {
				allDecided = false
			} else if st.decided > res.Done {
				res.Done = st.decided
			}
		}
	}
	if res.Committed && res.Aborted {
		res.Consistent = false
	}
	if !allDecided {
		res.Done = 0
	}
	return res
}

// others returns every site ID except self, ascending.
func (r *runner) others(self int) []int {
	out := make([]int, 0, r.cfg.N-1)
	for i := 1; i <= r.cfg.N; i++ {
		if i != self {
			out = append(out, i)
		}
	}
	return out
}

// broadcast sends kind to each destination with the configured stagger; a
// crash mid-round truncates the remaining sends (partially completed
// transition).
func (st *site) broadcast(dests []int, kind string, body byte) {
	for i, d := range dests {
		d := d
		st.r.sim.After(Time(i)*st.r.cfg.Stagger, func() {
			st.r.net.Send(Msg{From: st.id, To: d, Kind: kind, Body: body})
		})
	}
}

func (st *site) send(to int, kind string, body byte) {
	st.r.net.Send(Msg{From: st.id, To: to, Kind: kind, Body: body})
}

func (st *site) decide(phase byte) {
	if st.phase == 'c' || st.phase == 'a' {
		return
	}
	st.phase = phase
	st.blocked = false
	st.decided = st.r.sim.Now()
}

func (st *site) final() bool { return st.phase == 'c' || st.phase == 'a' }

// aliveOthers lists the sites other than self that are operational AND
// reachable (a partitioned-away site is indistinguishable from a crashed
// one).
func (st *site) aliveOthers() []int {
	var out []int
	for _, id := range st.r.others(st.id) {
		if st.r.net.Reachable(st.id, id) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// weight returns a site's vote weight (default 1).
func (st *site) weight(id int) int {
	if w, ok := st.r.cfg.Weights[id]; ok && w > 0 {
		return w
	}
	return 1
}

// quorum returns the commit/abort quorum: configured, or a strict majority
// of the total weight.
func (st *site) quorum() int {
	if st.r.cfg.Quorum > 0 {
		return st.r.cfg.Quorum
	}
	total := 0
	for i := 1; i <= st.r.cfg.N; i++ {
		total += st.weight(i)
	}
	return total/2 + 1
}
