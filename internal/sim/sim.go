// Package sim is a deterministic discrete-event simulator for commit
// protocols. The quantitative experiments (blocking probability,
// availability, message complexity, latency) run here: virtual time makes a
// 10,000-trial failure sweep take milliseconds and a fixed seed makes every
// result reproducible.
//
// The simulator models the paper's environment exactly: point-to-point
// messages with configurable latency, crash-stop site failures, and a
// perfect failure detector (the network "can detect the failure of a site
// and reliably report it to an operational site" after a detection delay).
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is virtual time in microseconds.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

type event struct {
	at  Time
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (h eventHeap) Peek() (Time, bool) { // smallest timestamp
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Sim is a single-threaded discrete-event scheduler.
type Sim struct {
	now Time
	pq  eventHeap
	seq uint64
	rng *rand.Rand
}

// New returns a simulator seeded for reproducibility.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue drains or the step limit is reached,
// returning the number of events processed.
func (s *Sim) Run(maxSteps int) int {
	steps := 0
	for len(s.pq) > 0 {
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
		ev := heap.Pop(&s.pq).(event)
		s.now = ev.at
		ev.fn()
		steps++
	}
	return steps
}

// RunUntil executes events with timestamps <= deadline.
func (s *Sim) RunUntil(deadline Time) {
	for {
		at, ok := s.pq.Peek()
		if !ok || at > deadline {
			break
		}
		ev := heap.Pop(&s.pq).(event)
		s.now = ev.at
		ev.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Uniform samples a latency in [lo, hi] from the simulator's RNG.
func (s *Sim) Uniform(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(s.rng.Int63n(int64(hi-lo+1)))
}
