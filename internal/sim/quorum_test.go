package sim

import "testing"

// partitionSchedule splits {1,2} from {3,4,5} right after the coordinator's
// PREPARE reached site 2 but not the far side: with fixed 1ms latency and
// 2ms stagger, the last vote arrives at 8ms, PREPARE goes to 2 at 8ms
// (arrives 9ms), to 3 at 10ms, to 4 at 12ms, to 5 at 14ms; partitioning at
// 9.5ms leaves group A = {1 (p), 2 (p)} and group B = {3, 4, 5} all in w.
func partitionSchedule(proto Protocol) Config {
	return Config{
		N: 5, Protocol: proto, Seed: 3,
		LatencyMin: Millisecond, LatencyMax: Millisecond,
		Stagger:         2 * Millisecond,
		PartitionAt:     9*Millisecond + 500*Microsecond,
		PartitionGroups: [][]int{{1, 2}, {3, 4, 5}},
	}
}

// TestPlainThreePCUnsafeUnderPartition demonstrates why the paper's
// "network never fails" assumption is load-bearing: under a partition each
// side runs termination independently — the side holding the buffer state
// commits, the side still in w aborts. Atomicity is violated.
func TestPlainThreePCUnsafeUnderPartition(t *testing.T) {
	res := RunTransaction(partitionSchedule(Central3PC))
	if res.Consistent {
		t.Fatalf("plain 3PC stayed consistent under partition; schedule missed: %+v", res.Sites)
	}
	if !res.Committed || !res.Aborted {
		t.Fatalf("expected mixed outcomes, got %+v", res.Sites)
	}
	// Group A committed (coordinator + site 2 were prepared); group B
	// aborted from w.
	if res.Sites[1].Phase != 'c' || res.Sites[2].Phase != 'c' {
		t.Errorf("group A should commit: %+v", res.Sites)
	}
	if res.Sites[3].Phase != 'a' || res.Sites[4].Phase != 'a' || res.Sites[5].Phase != 'a' {
		t.Errorf("group B should abort: %+v", res.Sites)
	}
}

// TestQuorumThreePCSafeUnderPartition: the same schedule under the
// quorum-based termination. The majority side {3,4,5} reaches its abort
// quorum and aborts; the minority side {1,2} — despite holding prepared
// states — cannot reach a commit quorum and blocks. No mixed outcomes.
func TestQuorumThreePCSafeUnderPartition(t *testing.T) {
	res := RunTransaction(partitionSchedule(Quorum3PC))
	if !res.Consistent {
		t.Fatalf("quorum 3PC inconsistent under partition: %+v", res.Sites)
	}
	if res.Committed {
		t.Fatalf("minority must not commit: %+v", res.Sites)
	}
	if !res.Aborted {
		t.Fatalf("majority should reach its abort quorum: %+v", res.Sites)
	}
	for _, id := range []int{3, 4, 5} {
		if res.Sites[id].Phase != 'a' {
			t.Errorf("site %d phase %c, want a", id, res.Sites[id].Phase)
		}
	}
	// The minority blocks (the safety price).
	if !res.Sites[1].Blocked && !res.Sites[2].Blocked {
		t.Errorf("minority group should block: %+v", res.Sites)
	}
}

// TestQuorumMajorityWithPreparedCommits: partition the other way — the
// majority side holds prepared states, so it reaches the commit quorum and
// commits; the minority blocks. (Partition at 11.5ms: PREPARE reached 2, 3
// and 4; groups {1,2,3} and {4,5} — group A has 3 prepared sites.)
func TestQuorumMajorityWithPreparedCommits(t *testing.T) {
	cfg := Config{
		N: 5, Protocol: Quorum3PC, Seed: 3,
		LatencyMin: Millisecond, LatencyMax: Millisecond,
		Stagger:         2 * Millisecond,
		PartitionAt:     11*Millisecond + 500*Microsecond,
		PartitionGroups: [][]int{{1, 2, 3}, {4, 5}},
	}
	res := RunTransaction(cfg)
	if !res.Consistent {
		t.Fatalf("inconsistent: %+v", res.Sites)
	}
	if !res.Committed {
		t.Fatalf("majority with prepared sites should commit: %+v", res.Sites)
	}
	if res.Aborted {
		t.Fatalf("nobody may abort: %+v", res.Sites)
	}
	for _, id := range []int{1, 2, 3} {
		if res.Sites[id].Phase != 'c' {
			t.Errorf("site %d phase %c, want c", id, res.Sites[id].Phase)
		}
	}
	if !res.Sites[4].Blocked && !res.Sites[5].Blocked {
		t.Errorf("minority should block: %+v", res.Sites)
	}
}

// TestQuorumFailureFree: without failures the quorum protocol is just the
// central 3PC (same message pattern, same outcome).
func TestQuorumFailureFree(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		res := FailureFree(Quorum3PC, n, 9)
		if !res.Committed || res.Blocked || !res.Consistent {
			t.Fatalf("n=%d: %+v", n, res)
		}
		if want := 5 * (n - 1); res.Messages != want {
			t.Errorf("n=%d messages = %d, want %d", n, res.Messages, want)
		}
	}
}

// TestQuorumUnderCrashes: ordinary crash sweeps (no partitions) stay
// consistent and the majority keeps terminating.
func TestQuorumUnderCrashes(t *testing.T) {
	for k := 1; k <= 2; k++ {
		st := RandomCrashSweep(Quorum3PC, 5, k, 300, 17, 15*Millisecond)
		if st.Inconsistent != 0 {
			t.Errorf("k=%d: %d inconsistent", k, st.Inconsistent)
		}
		// With at most 2 of 5 sites down the survivors always hold a
		// majority; nothing blocks.
		if st.Blocked != 0 {
			t.Errorf("k=%d: %d blocked", k, st.Blocked)
		}
		if st.Undecided != 0 {
			t.Errorf("k=%d: %d undecided", k, st.Undecided)
		}
	}
}

// TestQuorumMinorityOfSurvivorsBlocks: with 3 of 5 sites crashed the
// survivors cannot form a quorum and must block rather than guess.
func TestQuorumMinorityOfSurvivorsBlocks(t *testing.T) {
	st := RandomCrashSweep(Quorum3PC, 5, 3, 300, 17, 15*Millisecond)
	if st.Inconsistent != 0 {
		t.Fatalf("%d inconsistent", st.Inconsistent)
	}
	if st.Blocked == 0 {
		t.Fatal("2-of-5 survivor groups should block under the quorum rule")
	}
}

// TestQuorumPartitionSweep: random partition times across the whole
// protocol window never produce an inconsistency under the quorum protocol,
// while plain 3PC does for some times.
func TestQuorumPartitionSweep(t *testing.T) {
	inconsistentPlain := 0
	for i := 0; i < 200; i++ {
		at := Time(i) * 100 * Microsecond
		cfg := partitionSchedule(Quorum3PC)
		cfg.PartitionAt = at + 1
		if res := RunTransaction(cfg); !res.Consistent {
			t.Fatalf("quorum 3PC inconsistent with partition at %d: %+v", at, res.Sites)
		}
		cfg = partitionSchedule(Central3PC)
		cfg.PartitionAt = at + 1
		if res := RunTransaction(cfg); !res.Consistent {
			inconsistentPlain++
		}
	}
	if inconsistentPlain == 0 {
		t.Error("plain 3PC never violated atomicity across the partition sweep")
	}
}

// TestQuorumWeightedVotes: Skeen's quorum protocol supports weighted votes.
// Giving site 2 weight 3 lets the {1,2} side carry the quorum (total weight
// 7, quorum 4, side weight 1+3=4): the prepared minority-by-count side
// commits and the majority-by-count side blocks.
func TestQuorumWeightedVotes(t *testing.T) {
	cfg := partitionSchedule(Quorum3PC)
	cfg.Weights = map[int]int{2: 3}
	res := RunTransaction(cfg)
	if !res.Consistent {
		t.Fatalf("inconsistent: %+v", res.Sites)
	}
	if !res.Committed || res.Aborted {
		t.Fatalf("weighted side should commit: %+v", res.Sites)
	}
	if res.Sites[1].Phase != 'c' || res.Sites[2].Phase != 'c' {
		t.Errorf("group A should commit: %+v", res.Sites)
	}
	// The other side (weight 3 < quorum 4) blocks.
	for _, id := range []int{3, 4, 5} {
		if res.Sites[id].Phase == 'a' || res.Sites[id].Phase == 'c' {
			t.Errorf("site %d decided (%c) without a quorum", id, res.Sites[id].Phase)
		}
	}
	if !res.Blocked {
		t.Error("the underweight side should block")
	}
}
